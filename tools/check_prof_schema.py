#!/usr/bin/env python3
"""Validate igen precision-profiler JSON documents (schema_version 1).

Two document kinds are accepted, distinguished by their "report" field:

  igen_profile  -- the runtime report written by igen_prof_report_json()
                   or IGEN_PROF_OUT=path.json at process exit.
  igen_sites    -- the compile-time site/region-table sidecar the driver
                   writes next to --profile or --tier output
                   (<output>.sites.json). The "regions" array is present
                   only for --tier output.

Usage: check_prof_schema.py FILE [FILE...]

Exits 0 when every file validates, 1 otherwise, printing one line per
problem. Stdlib only; used by CI as the --profile smoke gate.
"""

import json
import sys


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def fail(self, msg):
        self.errors.append(f"{self.path}: {msg}")

    def field(self, obj, key, types, where):
        if key not in obj:
            self.fail(f"{where}: missing key '{key}'")
            return None
        val = obj[key]
        # bool is an int subclass; reject it where an int is expected
        # (but accept it where bool itself is the wanted type).
        if (isinstance(val, bool) and bool not in types) or not isinstance(
            val, types
        ):
            want = "/".join(t.__name__ for t in types)
            self.fail(f"{where}: '{key}' is {type(val).__name__}, want {want}")
            return None
        return val


NUM = (int, float)

PROFILE_SITE_FIELDS = [
    ("rank", (int,)),
    ("id", (int,)),
    ("module", (str,)),
    ("op", (str,)),
    ("func", (str,)),
    ("line", (int,)),
    ("col", (int,)),
    ("text", (str,)),
    ("count", (int,)),
    ("nan_escapes", (int,)),
    ("whole_escapes", (int,)),
    ("growth_bits", (int,)),
    ("max_rel_width", NUM),
    ("mean_rel_width", NUM),
    ("max_growth_ratio", NUM),
]

SIDECAR_SITE_FIELDS = [
    ("id", (int,)),
    ("op", (str,)),
    ("func", (str,)),
    ("line", (int,)),
    ("col", (int,)),
    ("text", (str,)),
]

SIDECAR_REGION_FIELDS = [
    ("id", (int,)),
    ("func", (str,)),
    ("line", (int,)),
    ("movable", (bool,)),
]


def check_profile(c, doc):
    modules = c.field(doc, "modules", (list,), "top level")
    for i, mod in enumerate(modules or []):
        where = f"modules[{i}]"
        if not isinstance(mod, dict):
            c.fail(f"{where}: not an object")
            continue
        c.field(mod, "module", (str,), where)
        c.field(mod, "source_file", (str,), where)
        c.field(mod, "first_site", (int,), where)
        c.field(mod, "num_sites", (int,), where)

    sites = c.field(doc, "sites", (list,), "top level")
    prev_growth = None
    for i, site in enumerate(sites or []):
        where = f"sites[{i}]"
        if not isinstance(site, dict):
            c.fail(f"{where}: not an object")
            continue
        for key, types in PROFILE_SITE_FIELDS:
            site_val = c.field(site, key, types, where)
            if key == "rank" and site_val is not None and site_val != i + 1:
                c.fail(f"{where}: rank {site_val}, want {i + 1}")
        growth = site.get("growth_bits")
        if isinstance(growth, int) and not isinstance(growth, bool):
            if prev_growth is not None and growth > prev_growth:
                c.fail(f"{where}: growth_bits not ranked descending")
            prev_growth = growth
        for key in ("count", "nan_escapes", "whole_escapes", "growth_bits"):
            val = site.get(key)
            if isinstance(val, int) and not isinstance(val, bool) and val < 0:
                c.fail(f"{where}: '{key}' is negative")


def check_sidecar(c, doc):
    c.field(doc, "module", (str,), "top level")
    c.field(doc, "source_file", (str,), "top level")
    sites = c.field(doc, "sites", (list,), "top level")
    for i, site in enumerate(sites or []):
        where = f"sites[{i}]"
        if not isinstance(site, dict):
            c.fail(f"{where}: not an object")
            continue
        for key, types in SIDECAR_SITE_FIELDS:
            site_val = c.field(site, key, types, where)
            if key == "id" and site_val is not None and site_val != i:
                c.fail(f"{where}: id {site_val}, want {i}")
    if "regions" not in doc:
        return  # pre-tier sidecars have no regions array
    regions = c.field(doc, "regions", (list,), "top level")
    for i, region in enumerate(regions or []):
        where = f"regions[{i}]"
        if not isinstance(region, dict):
            c.fail(f"{where}: not an object")
            continue
        for key, types in SIDECAR_REGION_FIELDS:
            region_val = c.field(region, key, types, where)
            if key == "id" and region_val is not None and region_val != i:
                c.fail(f"{where}: id {region_val}, want {i}")


def check_file(path):
    c = Checker(path)
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        c.fail(f"cannot parse: {err}")
        return c.errors
    if not isinstance(doc, dict):
        c.fail("top level is not an object")
        return c.errors
    version = c.field(doc, "schema_version", (int,), "top level")
    if version is not None and version != 1:
        c.fail(f"unsupported schema_version {version}")
    kind = c.field(doc, "report", (str,), "top level")
    if kind == "igen_profile":
        check_profile(c, doc)
    elif kind == "igen_sites":
        check_sidecar(c, doc)
    elif kind is not None:
        c.fail(f"unknown report kind '{kind}'")
    return c.errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for err in errors:
                print(err, file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
