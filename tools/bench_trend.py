#!/usr/bin/env python3
"""Compare two igen_bench JSON reports row by row and flag regressions.

Usage: bench_trend.py BASELINE.json CURRENT.json [--threshold PCT]

Both files must be igen_bench documents (as written by the bench binaries
with --json, e.g. BENCH_batch.json) with the same schema_version. Rows are
keyed by (kernel, config, size); for each key present in both files the
relative change in iops_per_cycle is printed. Rows present in only one
file are listed as added/removed but do not affect the exit status.

Exit status: 0 when no matched row regressed by more than the threshold
(default 10%), 1 when at least one did, 2 on malformed input. Stdlib
only; used by CI to gate batched-kernel performance against the checked-in
baseline.

Throughput noise on shared/virtualized runners easily reaches a few
percent; the default threshold is deliberately loose. Tighten with
--threshold for controlled machines.
"""

import argparse
import json
import sys


def die(msg):
    print(msg, file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"bench_trend: {path}: {e}")
    if not isinstance(doc, dict) or doc.get("report") != "igen_bench":
        die(f"bench_trend: {path}: not an igen_bench report")
    if not isinstance(doc.get("schema_version"), int):
        die(f"bench_trend: {path}: missing integer schema_version")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        die(f"bench_trend: {path}: missing rows array")
    table = {}
    for i, row in enumerate(rows):
        try:
            key = (row["kernel"], row["config"], int(row["size"]))
            val = float(row["iops_per_cycle"])
        except (KeyError, TypeError, ValueError) as e:
            die(f"bench_trend: {path}: rows[{i}]: {e}")
        if key in table:
            die(f"bench_trend: {path}: duplicate row {key}")
        table[key] = val
    return doc["schema_version"], table


def main():
    ap = argparse.ArgumentParser(
        description="compare two igen_bench reports; exit 1 on regression")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    base_ver, base = load(args.baseline)
    cur_ver, cur = load(args.current)
    if base_ver != cur_ver:
        die(f"bench_trend: schema_version mismatch: "
            f"{args.baseline} is v{base_ver}, {args.current} is "
            f"v{cur_ver}; regenerate the baseline")

    regressions = []
    print(f"{'kernel':<12} {'config':<14} {'size':>8} "
          f"{'base':>9} {'cur':>9} {'delta':>8}")
    for key in sorted(base):
        if key not in cur:
            print(f"{key[0]:<12} {key[1]:<14} {key[2]:>8} "
                  f"{base[key]:>9.4f} {'--':>9} {'removed':>8}")
            continue
        b, c = base[key], cur[key]
        pct = (c - b) / b * 100.0 if b else 0.0
        mark = ""
        if pct < -args.threshold:
            mark = "  <-- REGRESSION"
            regressions.append((key, b, c, pct))
        print(f"{key[0]:<12} {key[1]:<14} {key[2]:>8} "
              f"{b:>9.4f} {c:>9.4f} {pct:>+7.1f}%{mark}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key[0]:<12} {key[1]:<14} {key[2]:>8} "
              f"{'--':>9} {cur[key]:>9.4f} {'added':>8}")

    if regressions:
        print(f"\n{len(regressions)} row(s) regressed more than "
              f"{args.threshold:g}%:", file=sys.stderr)
        for (kernel, config, size), b, c, pct in regressions:
            print(f"  {kernel}/{config}@{size}: {b:.4f} -> {c:.4f} "
                  f"({pct:+.1f}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
