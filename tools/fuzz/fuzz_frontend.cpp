//===- fuzz_frontend.cpp - Frontend/pipeline differential fuzzer ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Fuzz target: the whole compilation pipeline must never crash, hang or
// report success-without-output on arbitrary bytes -- parse errors are
// fine, undefined behavior is not. Option combinations (precision,
// target, optimizer, branch policy, profiling, hardening) are derived
// from a hash of the input so the corpus explores them without wasting
// leading bytes.
//
// Builds two ways (tools/fuzz/CMakeLists.txt):
//   * -DIGEN_LIBFUZZER=ON (clang): a real libFuzzer target; CI runs it
//     with ASan for 60 seconds per push.
//   * default (any compiler): linked against StandaloneFuzzMain.cpp,
//     which replays corpus files and runs a deterministic random smoke
//     loop -- so the harness itself is exercised by the regular build
//     even where libFuzzer does not exist.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include <cstddef>
#include <cstdint>
#include <string>

using namespace igen;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  // Bound pathological inputs: the parser's error cap and nesting guard
  // make big inputs safe but slow; fuzzing wants throughput.
  if (Size > 1 << 16)
    return 0;
  std::string Src(reinterpret_cast<const char *>(Data), Size);

  // FNV-1a over the input selects the option combination.
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I < Size; ++I)
    H = (H ^ Data[I]) * 1099511628211ull;

  TransformOptions Opts;
  Opts.Prec = (H & 1) ? TransformOptions::Precision::DoubleDouble
                      : TransformOptions::Precision::Double;
  Opts.ScalarLibrary = (H >> 1) & 1;
  Opts.OptLevel = (H >> 2) & 1;
  Opts.EnableReductions = (H >> 3) & 1;
  Opts.Branches = ((H >> 4) & 1) ? TransformOptions::BranchPolicy::Join
                                 : TransformOptions::BranchPolicy::Exception;
  Opts.Harden = (H >> 5) & 1;

  DiagnosticsEngine Diags;
  PipelineStage Failed = PipelineStage::None;
  auto Out = compileToIntervals(Src, Opts, Diags, nullptr, &Failed);

  // Contract: failure implies diagnostics and a failing stage; success
  // implies neither nullopt output nor a "failed" stage marker.
  if (!Out && !Diags.hasErrors())
    __builtin_trap();
  if (!Out && Failed == PipelineStage::None)
    __builtin_trap();
  if (Out && Failed != PipelineStage::None)
    __builtin_trap();
  return 0;
}
