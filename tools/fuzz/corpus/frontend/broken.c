double f(double x) {
  double a = x + ;
  double b = (x;
  return a * b
}
