double acc(double *v, int n) {
  double s = 0.0;
  #pragma igen reduce s
  for (int i = 0; i < n; i = i + 1) {
    s = s + v[i];
  }
  return s;
}
