/* Kernels exercising the join branch policy. */

double jbranch(double a, double b) {
  double r = 0.0;
  if (a > b) {
    r = a + 1.0;
  } else {
    r = a - 1.0;
  }
  return r;
}

double jclamp(double x) {
  double r = x;
  if (x > 1.0) {
    r = 1.0;
  }
  if (x < -1.0) {
    r = -1.0;
  }
  return r;
}
