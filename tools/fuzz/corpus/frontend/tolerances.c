double model(double:0.125 x, double y) {
  double c = 0.25t;
  return x * y + c;
}
