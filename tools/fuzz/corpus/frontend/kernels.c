/* Execution-test kernels for the IGen pipeline (double-double safe). */
#include <immintrin.h>

double poly(double x) {
  return ((x + 1.0) * x - 0.5) * x + 0.1;
}

double henon(double x, double y, int n) {
  double a = 1.05;
  double b = 0.3;
  for (int i = 0; i < n; i++) {
    double xi = x;
    x = 1 - a * xi * xi + y;
    y = b * xi;
  }
  return x;
}

double dot(double *a, double *b, int n) {
  double s = 0.0;
  #pragma igen reduce s
  for (int i = 0; i < n; i++)
    s = s + a[i] * b[i];
  return s;
}

void axpy(double alpha, double *x, double *y, int n) {
  for (int i = 0; i < n; i++)
    y[i] = y[i] + alpha * x[i];
}

double absdiff(double a, double b) {
  if (a < b)
    return b - a;
  return a - b;
}

double sensor_scale(double:0.5 a) {
  return a * 2.0;
}

/* n must be a multiple of 4. */
void vscale(double *x, double *y, int n) {
  __m256d two = _mm256_set1_pd(2.0);
  for (int i = 0; i < n; i += 4) {
    __m256d v = _mm256_loadu_pd(x + i);
    __m256d w = _mm256_mul_pd(v, two);
    _mm256_storeu_pd(y + i, _mm256_add_pd(w, v));
  }
}

double ratio(double a, double b) {
  return (a * a + 1.0) / (b * b + 2.0);
}

double grow_until(double x, double limit) {
  while (x < limit) {
    x = x * 2.0;
  }
  return x;
}

double chain_assign(double a) {
  double b = 0.0;
  double c = 0.0;
  b = c = a * 2.0;
  return b + c;
}
