/* Double-precision-only kernels (elementary functions). */

double pyth(double x) {
  return sin(x) * sin(x) + cos(x) * cos(x);
}

double softplusish(double x) {
  return log(exp(x) + 1.0);
}

double hypot2(double a, double b) {
  return sqrt(a * a + b * b);
}
