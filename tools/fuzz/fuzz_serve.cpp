//===- fuzz_serve.cpp - Serve-protocol frame fuzzer -----------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Fuzz target: ServerCore::handleFrame on arbitrary bytes. The serve
// daemon's contract is that ANY frame — truncated JSON, garbage bytes,
// hostile nesting, wrong-typed fields, valid-JSON-invalid-protocol —
// produces exactly one well-formed single-line JSON response (ok:false
// responses carrying error.code), and the core keeps serving afterwards.
// The harness traps on any violation, so a libFuzzer run (or the
// standalone corpus replay in ctest) fails loudly if a frame can crash,
// hang, or desynchronize the daemon.
//
// The core is process-global so the fuzzer also exercises state
// accumulation across frames (cache fills, evictions, stats growth),
// with a tiny cache capacity to keep the LRU path hot.
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"
#include "server/ServerCore.h"

#include <cstdint>
#include <cstdlib>
#include <string>

using namespace igen::server;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 1 << 16)
    return 0; // oversized frames are covered by a unit test; keep throughput

  // Shared across inputs: frames must not be able to poison later ones.
  static ServerCore Core(4);

  std::string Frame(reinterpret_cast<const char *>(Data), Size);
  std::string Resp = Core.handleFrame(Frame);

  // Exactly one line.
  if (Resp.empty() || Resp.find('\n') != std::string::npos)
    __builtin_trap();

  // Always valid JSON with the protocol envelope.
  JsonParseResult R = parseJson(Resp);
  if (!R.Ok || !R.Value.isObject())
    __builtin_trap();
  const JsonValue *Ok = R.Value.member("ok");
  if (!Ok || !Ok->isBool())
    __builtin_trap();
  if (!Ok->boolValue()) {
    const JsonValue *Err = R.Value.member("error");
    if (!Err || !Err->isObject())
      __builtin_trap();
    const JsonValue *Code = Err->member("code");
    if (!Code || !Code->isString() || Code->stringValue().empty())
      __builtin_trap();
  }

  // A shutdown frame must not wedge the core for subsequent inputs.
  // (ServerCore only latches a flag; the transport decides to exit.
  // Nothing to reset — but assert the core still answers.)
  if (Core.handleFrame("{\"op\":\"stats\"}").find("igen_serve_stats") ==
      std::string::npos)
    __builtin_trap();
  return 0;
}
