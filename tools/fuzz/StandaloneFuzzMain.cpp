//===- StandaloneFuzzMain.cpp - libFuzzer-free fuzz driver ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Minimal replacement for the libFuzzer runtime so the fuzz targets
// build and run with any toolchain (the default build links this; CI's
// clang job links -fsanitize=fuzzer instead -- see CMakeLists.txt).
//
// Usage:
//   <target> file...        replay each file once (corpus regression)
//   <target> [-n N] [-s S]  run N random inputs (default 10000) from
//                           seed S (default 1) through the target
//
// Exit is abnormal (the target traps/aborts) exactly when a real fuzz
// run would report a crash, so CI and tests can use the exit status.
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

namespace {

bool replayFile(const char *Path) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F) {
    std::fprintf(stderr, "fuzz: cannot read '%s'\n", Path);
    return false;
  }
  std::vector<uint8_t> Buf;
  uint8_t Chunk[4096];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  std::fclose(F);
  LLVMFuzzerTestOneInput(Buf.data(), Buf.size());
  return true;
}

/// xorshift64*: deterministic input generator for the smoke mode.
uint64_t next(uint64_t &S) {
  S ^= S >> 12;
  S ^= S << 25;
  S ^= S >> 27;
  return S * 0x2545F4914F6CDD1Dull;
}

} // namespace

int main(int Argc, char **Argv) {
  long Iterations = 10000;
  uint64_t Seed = 1;
  std::vector<const char *> Files;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-n") == 0 && I + 1 < Argc)
      Iterations = std::atol(Argv[++I]);
    else if (std::strcmp(Argv[I], "-s") == 0 && I + 1 < Argc)
      Seed = static_cast<uint64_t>(std::atoll(Argv[++I]));
    else
      Files.push_back(Argv[I]);
  }

  if (!Files.empty()) {
    int Bad = 0;
    for (const char *Path : Files)
      Bad += !replayFile(Path);
    std::fprintf(stderr, "fuzz: replayed %zu file(s)\n",
                 Files.size() - Bad);
    return Bad ? 1 : 0;
  }

  uint64_t S = Seed ? Seed : 1;
  std::vector<uint8_t> Buf;
  for (long I = 0; I < Iterations; ++I) {
    size_t Len = next(S) % 512;
    Buf.resize(Len);
    for (size_t J = 0; J < Len; ++J)
      Buf[J] = static_cast<uint8_t>(next(S));
    LLVMFuzzerTestOneInput(Buf.data(), Buf.size());
  }
  std::fprintf(stderr, "fuzz: %ld random input(s), no crash\n",
               Iterations);
  return 0;
}
