//===- fuzz_soundness.cpp - End-to-end interval soundness fuzzer ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Differential fuzz target for the soundness property itself: the input
// bytes encode a random straight-line expression program over the f64i
// runtime API (the exact ia_*_f64 calls `igen --target=ss` emits), which
// is evaluated twice --
//
//   * with the interval runtime under upward rounding, and
//   * with a __float128 oracle (113-bit mantissa) carrying a rigorous
//     absolute-error bound A alongside each value, so chained rounding
//     and libm approximation error in the oracle itself can never
//     produce a false alarm;
//
// any oracle value provably outside the computed interval (by more than
// its own error bound) is a containment violation: the one bug class
// this project exists to rule out. Violations print the failing program
// and trap -- crash-severity under libFuzzer.
//
// Program encoding (one byte per field, stream consumed left to right):
//   [0..31]   four little-endian doubles seeding registers r0..r3
//   then repeating: opcode byte, then 1-2 register bytes (mod 8); binary
//   ops write to a destination register chosen by the opcode byte's high
//   bits. The register file has 8 slots; programs run at most 48 ops.
//
//===----------------------------------------------------------------------===//

#include "interval/Rounding.h"
#include "interval/igen_lib.h"

#include <cfenv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace {

/// Oracle value: a quad-precision estimate Q of the exact real result
/// plus an absolute bound A on |Q - exact|. Ops propagate A with first-
/// order error analysis plus one quad ulp of slack; when the analysis
/// cannot bound the error (division by an interval straddling zero, log
/// near zero, non-finite values) A becomes +inf and checks are skipped.
struct Oracle {
  __float128 Q = 0;
  __float128 A = 0;
};

__float128 qabs(__float128 X) { return X < 0 ? -X : X; }

const __float128 kQuadInf = __builtin_huge_valq();

/// 2^-16000: an absolute slack floor far below every quad denormal that
/// matters. Built by repeated squaring because the 'q' literal suffix is
/// a GNU extension unavailable under -std=c++20.
inline __float128 quadTiny() {
  static const __float128 T = [] {
    __float128 V = 1;
    for (int I = 0; I < 16; ++I)
      V *= static_cast<__float128>(std::ldexp(1.0, -1000));
    return V;
  }();
  return T;
}

/// One ulp-ish of quad slack at Q's magnitude: 2^-100 relative
/// (comfortably above quad rounding, far below double widths) plus the
/// absolute floor.
__float128 qulp(__float128 Q) {
  const __float128 RelEps =
      static_cast<__float128>(std::ldexp(1.0, -100));
  return qabs(Q) * RelEps + quadTiny();
}

bool qfinite(__float128 X) { return X == X && qabs(X) < kQuadInf; }

Oracle oAdd(Oracle X, Oracle Y) {
  Oracle R{X.Q + Y.Q, X.A + Y.A};
  R.A += qulp(R.Q);
  return R;
}
Oracle oSub(Oracle X, Oracle Y) {
  Oracle R{X.Q - Y.Q, X.A + Y.A};
  R.A += qulp(R.Q);
  return R;
}
Oracle oMul(Oracle X, Oracle Y) {
  Oracle R{X.Q * Y.Q,
           X.A * qabs(Y.Q) + Y.A * qabs(X.Q) + X.A * Y.A};
  R.A += qulp(R.Q);
  return R;
}
Oracle oFma(Oracle X, Oracle Y, Oracle Z) { return oAdd(oMul(X, Y), Z); }
Oracle oNeg(Oracle X) { return {-X.Q, X.A}; }
Oracle oAbsv(Oracle X) { return {qabs(X.Q), X.A}; }

/// Unary libm-backed oracle: evaluates \p F in long double (64-bit
/// mantissa, |error| <= a few ulps) and propagates input error through a
/// Lipschitz bound \p Deriv valid near X.Q. LibmSlack covers the libm
/// approximation error relative to the result magnitude.
Oracle oLibm(Oracle X, long double (*F)(long double), __float128 Deriv,
             __float128 LibmSlack) {
  Oracle R;
  R.Q = F(static_cast<long double>(X.Q));
  R.A = X.A * Deriv + qabs(R.Q) * LibmSlack + quadTiny();
  return R;
}

// >> long-double libm error, << double interval widths.
const __float128 kLibmSlack = static_cast<__float128>(1e-17);

/// The interpreter: runs the byte program on both representations and
/// checks containment after every op. Returns true on violation.
bool runProgram(const uint8_t *Data, size_t Size) {
  constexpr int NumRegs = 8;
  constexpr int MaxOps = 48;
  if (Size < 32)
    return false;

  // Generated interval code runs inside a sound region established by
  // its caller; the fuzzer honors the same contract.
  igen::RoundUpwardScope Up;

  f64i IReg[NumRegs];
  Oracle OReg[NumRegs];
  {
    for (int R = 0; R < 4; ++R) {
      double V;
      std::memcpy(&V, Data + 8 * R, 8);
      if (!std::isfinite(V))
        V = 1.0; // non-finite seeds make the oracle vacuous
      IReg[R] = ia_cst_f64(V);
      IReg[R + 4] = ia_cst_f64(-V);
      OReg[R] = {static_cast<__float128>(V), 0};
      OReg[R + 4] = {-static_cast<__float128>(V), 0};
    }
  }

  size_t P = 32;
  int Ops = 0;
  auto NextByte = [&]() -> int { return P < Size ? Data[P++] : -1; };

  while (Ops++ < MaxOps) {
    int OpByte = NextByte();
    if (OpByte < 0)
      break;
    int Op = OpByte % 12;
    int D = (OpByte / 12) % NumRegs;
    int AByte = NextByte();
    if (AByte < 0)
      break;
    int A = AByte % NumRegs;
    int B = 0;
    bool Binary = Op <= 3 || Op == 11;
    if (Binary) {
      int BByte = NextByte();
      if (BByte < 0)
        break;
      B = BByte % NumRegs;
    }

    f64i RI;
    Oracle RO;
    switch (Op) {
    case 0:
      RI = ia_add_f64(IReg[A], IReg[B]);
      RO = oAdd(OReg[A], OReg[B]);
      break;
    case 1:
      RI = ia_sub_f64(IReg[A], IReg[B]);
      RO = oSub(OReg[A], OReg[B]);
      break;
    case 2:
      RI = ia_mul_f64(IReg[A], IReg[B]);
      RO = oMul(OReg[A], OReg[B]);
      break;
    case 3:
      RI = ia_fma_f64(IReg[A], IReg[B], IReg[D]);
      RO = oFma(OReg[A], OReg[B], OReg[D]);
      break;
    case 4:
      RI = ia_neg_f64(IReg[A]);
      RO = oNeg(OReg[A]);
      break;
    case 5:
      RI = ia_abs_f64(IReg[A]);
      RO = oAbsv(OReg[A]);
      break;
    case 6:
      RI = ia_exp_fast_f64(IReg[A]);
      // d/dx exp = exp; bound with the result magnitude (+ slack).
      RO = oLibm(OReg[A], expl, qabs(expl((long double)OReg[A].Q)) + 1,
                 kLibmSlack);
      break;
    case 7: {
      RI = ia_log_fast_f64(IReg[A]);
      __float128 X = OReg[A].Q;
      if (X - OReg[A].A <= 0) {
        RO = {0, kQuadInf}; // domain edge: oracle gives up
      } else {
        RO = oLibm(OReg[A], logl, 1 / (X - OReg[A].A), kLibmSlack);
      }
      break;
    }
    case 8:
      RI = ia_sin_fast_f64(IReg[A]);
      // |sin'| <= 1; argument reduction in long double loses relative
      // accuracy for huge args, covered by an |x|-scaled slack term.
      RO = oLibm(OReg[A], sinl, 1, kLibmSlack);
      RO.A += qabs(OReg[A].Q) * kLibmSlack;
      break;
    case 9:
      RI = ia_cos_fast_f64(IReg[A]);
      RO = oLibm(OReg[A], cosl, 1, kLibmSlack);
      RO.A += qabs(OReg[A].Q) * kLibmSlack;
      break;
    case 10: {
      RI = ia_sqrt_f64(IReg[A]);
      __float128 X = OReg[A].Q;
      if (X - OReg[A].A <= 0) {
        RO = {0, kQuadInf};
      } else {
        long double S = sqrtl(static_cast<long double>(X));
        RO.Q = S;
        RO.A = OReg[A].A / (2 * static_cast<__float128>(S)) +
               qabs(RO.Q) * kLibmSlack + quadTiny();
      }
      break;
    }
    default: // 11
      RI = ia_join_f64(IReg[A], IReg[B]);
      // join(X, Y) contains everything X contains: keep A's oracle.
      RO = OReg[A];
      break;
    }

    IReg[D] = RI;
    OReg[D] = RO;

    // Containment check, skipped when the oracle cannot vouch.
    double Lo = ia_inf_f64(RI);
    double Hi = ia_sup_f64(RI);
    if (std::isnan(Lo) || std::isnan(Hi))
      continue; // NaN interval: contains everything by convention
    if (!qfinite(RO.Q) || !qfinite(RO.A))
      continue; // oracle overflowed or gave up
    __float128 QLo = static_cast<__float128>(Lo);
    __float128 QHi = static_cast<__float128>(Hi);
    if (QLo - (RO.Q + RO.A) > 0 || (RO.Q - RO.A) - QHi > 0) {
      std::fprintf(stderr,
                   "SOUNDNESS VIOLATION: op %d produced [%a, %a] "
                   "excluding oracle %.36Lg (+/- %.6Lg)\n",
                   Op, Lo, Hi, static_cast<long double>(RO.Q),
                   static_cast<long double>(RO.A));
      return true;
    }
  }
  return false;
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size > 4096)
    return 0;
  if (runProgram(Data, Size))
    __builtin_trap(); // containment violation: crash-severity
  return 0;
}
