#!/usr/bin/env python3
"""Validate igen serve-mode stats reports (schema_version 2).

Accepts either the bare report object (report == "igen_serve_stats") or a
full stats *response* frame from the daemon ({"ok":true,...,"stats":{...}}),
in which case the embedded report is validated. Input may be a file path
or "-" for stdin, so it composes with the client:

  tools/igen_client.py --socket S --raw stats | tools/check_serve_schema.py -

Exits 0 when every input validates, 1 otherwise, printing one line per
problem. Stdlib only; used by CI as the serve smoke gate.
"""

import json
import sys


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def fail(self, msg):
        self.errors.append(f"{self.path}: {msg}")

    def field(self, obj, key, types, where):
        if key not in obj:
            self.fail(f"{where}: missing key '{key}'")
            return None
        val = obj[key]
        if (isinstance(val, bool) and bool not in types) or not isinstance(
            val, types
        ):
            want = "/".join(t.__name__ for t in types)
            self.fail(f"{where}: '{key}' is {type(val).__name__}, want {want}")
            return None
        return val

    def counter(self, obj, key, where):
        val = self.field(obj, key, (int,), where)
        if val is not None and val < 0:
            self.fail(f"{where}: '{key}' is negative")
        return val


ENDPOINTS = ["compile", "eval", "stats", "evict", "shutdown", "health",
             "invalid"]
NUM_LATENCY_BUCKETS = 32
RESILIENCE_COUNTERS = ["in_flight", "slowest_in_flight_us",
                       "deadline_exceeded", "retried", "drained",
                       "cache_replayed"]


def check_report(c, doc):
    version = c.field(doc, "schema_version", (int,), "top level")
    if version is not None and version != 2:
        c.fail(f"unsupported schema_version {version}")
    kind = c.field(doc, "report", (str,), "top level")
    if kind is not None and kind != "igen_serve_stats":
        c.fail(f"unknown report kind '{kind}'")

    cache = c.field(doc, "cache", (dict,), "top level")
    if cache is not None:
        for key in ("hits", "misses", "evictions", "insertions",
                    "resident", "capacity"):
            c.counter(cache, key, "cache")
        resident = cache.get("resident")
        capacity = cache.get("capacity")
        if isinstance(resident, int) and isinstance(capacity, int):
            if resident > capacity:
                c.fail(f"cache: resident {resident} exceeds capacity "
                       f"{capacity}")

    requests = c.field(doc, "requests", (dict,), "top level")
    if requests is not None:
        for name in ENDPOINTS:
            ep = c.field(requests, name, (dict,), "requests")
            if ep is None:
                continue
            count = c.counter(ep, "count", f"requests.{name}")
            errors = c.counter(ep, "errors", f"requests.{name}")
            if (isinstance(count, int) and isinstance(errors, int)
                    and errors > count):
                c.fail(f"requests.{name}: errors {errors} exceed count "
                       f"{count}")

    latency = c.field(doc, "latency_us", (dict,), "top level")
    if latency is not None:
        for name in ("compile", "eval"):
            hist = c.field(latency, name, (dict,), "latency_us")
            if hist is None:
                continue
            where = f"latency_us.{name}"
            count = c.counter(hist, "count", where)
            c.counter(hist, "total_us", where)
            buckets = c.field(hist, "log2_buckets", (list,), where)
            if buckets is None:
                continue
            if len(buckets) != NUM_LATENCY_BUCKETS:
                c.fail(f"{where}: {len(buckets)} buckets, want "
                       f"{NUM_LATENCY_BUCKETS}")
            total = 0
            for i, b in enumerate(buckets):
                if isinstance(b, bool) or not isinstance(b, int) or b < 0:
                    c.fail(f"{where}: log2_buckets[{i}] is not a "
                           f"non-negative int")
                else:
                    total += b
            if isinstance(count, int) and total != count:
                c.fail(f"{where}: buckets sum to {total}, count is {count}")

    evals = c.field(doc, "evals", (dict,), "top level")
    if evals is not None:
        for key in ("served", "errors", "poisoned", "interval_ops"):
            c.counter(evals, key, "evals")

    fenv = c.field(doc, "fenv", (dict,), "top level")
    if fenv is not None:
        for key in ("violations", "repairs", "poisoned"):
            c.counter(fenv, key, "fenv")

    resilience = c.field(doc, "resilience", (dict,), "top level")
    if resilience is not None:
        state = c.field(resilience, "state", (str,), "resilience")
        if state is not None and state not in ("serving", "draining"):
            c.fail(f"resilience: unknown state '{state}'")
        for key in RESILIENCE_COUNTERS:
            c.counter(resilience, key, "resilience")


def check_file(path):
    c = Checker(path)
    try:
        if path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
    except (OSError, ValueError) as err:
        c.fail(f"cannot parse: {err}")
        return c.errors
    if not isinstance(doc, dict):
        c.fail("top level is not an object")
        return c.errors
    # Unwrap a full daemon response frame.
    if "stats" in doc and doc.get("report") != "igen_serve_stats":
        if doc.get("ok") is not True:
            c.fail("response frame has ok != true")
        doc = doc["stats"]
        if not isinstance(doc, dict):
            c.fail("'stats' is not an object")
            return c.errors
    check_report(c, doc)
    return c.errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for err in errors:
                print(err, file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
