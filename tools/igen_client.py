#!/usr/bin/env python3
"""Command-line client for `igen --serve` (newline-delimited JSON over a
Unix-domain socket).

Usage:
  igen_client.py --socket PATH [--wait SECS] COMMAND [ARGS]

Commands:
  compile FILE|-        compile a C source (stdin with "-"); prints the
                        response, including the content-hash handle.
                        Options: --opt-level N --target ss|sv
                        --precision f64|dd --branch exception|join
                        --reductions --batch-loops --module NAME
  eval HANDLE FUNC ARG...
                        evaluate FUNC from a cached program. Each ARG is
                        a number (point interval), "lo,hi" (interval),
                        "int:N" (integer scalar), "point:X" (tolerance
                        input), or "array:a;b;c" (interval array, each
                        element a number or "lo,hi").
                        Options: --branch exception|join
                        --fenv-policy repair|poison --step-limit N
  stats                 fetch the daemon's counters/histograms report.
  health                fetch serving/draining state and in-flight ages.
  evict [HANDLE|--all]  drop one cached program, or all of them.
  shutdown              ask the daemon to exit cleanly.

Reliability knobs:
  --deadline-ms N       attach a wall-clock budget to the request; the
                        daemon answers a typed "deadline-exceeded"
                        error instead of running past it.
  --retries N           re-attempt (default 3) on connect failure and on
                        the retryable typed errors "queue-full" and
                        "shutting-down", with capped exponential backoff
                        plus jitter (base --retry-base-ms, cap 2s).
                        Re-sent frames carry "retry":attempt so the
                        daemon can count second-hand traffic.

Every command prints the daemon's one-line JSON response (pretty-printed
unless --raw) and exits 0 iff ok:true. Stdlib only.
"""

import argparse
import json
import random
import socket
import sys
import time

RETRYABLE_CODES = {"queue-full", "shutting-down"}
BACKOFF_CAP_S = 2.0


def connect(path, wait):
    deadline = time.monotonic() + wait
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as err:
            sock.close()
            if time.monotonic() >= deadline:
                raise OSError(f"cannot connect to {path}: {err}")
            time.sleep(0.05)


def rpc(sock, request):
    frame = json.dumps(request, separators=(",", ":")) + "\n"
    sock.sendall(frame.encode("utf-8"))
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise OSError("connection closed before response")
        buf += chunk
    line = buf.split(b"\n", 1)[0]
    try:
        return json.loads(line)
    except ValueError as err:
        raise SystemExit(f"igen_client: bad response frame: {err}: {line!r}")


def backoff_sleep(attempt, base_ms):
    """Capped exponential backoff with full jitter: sleep a uniform
    amount of [0, min(cap, base * 2^attempt)]. Full jitter keeps a
    thundering herd of retrying clients from re-synchronizing."""
    span = min(BACKOFF_CAP_S, (base_ms / 1000.0) * (2 ** attempt))
    time.sleep(random.uniform(0.0, span))


def rpc_with_retry(path, wait, req, retries, retry_base_ms):
    """One request, retried on connect failure and on retryable typed
    errors. Re-sent frames are tagged with "retry":attempt (attempt >=
    1), which the daemon surfaces in stats.resilience.retried."""
    last_err = None
    for attempt in range(retries + 1):
        if attempt > 0:
            req = dict(req)
            req["retry"] = attempt
            backoff_sleep(attempt - 1, retry_base_ms)
        try:
            sock = connect(path, wait)
        except OSError as err:
            last_err = str(err)
            continue
        try:
            resp = rpc(sock, req)
        except OSError as err:
            last_err = str(err)
            continue
        finally:
            sock.close()
        code = (resp.get("error") or {}).get("code")
        if resp.get("ok") is False and code in RETRYABLE_CODES:
            last_err = f"daemon answered {code}"
            continue
        return resp
    raise SystemExit(f"igen_client: giving up after {retries + 1} attempts: "
                     f"{last_err}")


def parse_eval_arg(text):
    if text.startswith("int:"):
        return {"int": int(text[4:])}
    if text.startswith("point:"):
        return {"point": float(text[6:])}
    if text.startswith("array:"):
        return {"array": [parse_eval_arg(e) for e in text[6:].split(";") if e]}
    if "," in text:
        lo, hi = text.split(",", 1)
        return {"lo": float(lo), "hi": float(hi)}
    return float(text)


def main(argv):
    ap = argparse.ArgumentParser(
        prog="igen_client.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--socket", required=True, help="daemon socket path")
    ap.add_argument("--wait", type=float, default=0.0,
                    help="seconds to keep retrying the connect")
    ap.add_argument("--raw", action="store_true",
                    help="print the response as one line, not pretty")
    ap.add_argument("--id", default=None, help="request id to echo")
    ap.add_argument("--deadline-ms", type=int, default=None,
                    help="wall-clock budget for the request (daemon-side)")
    ap.add_argument("--retries", type=int, default=3,
                    help="retry attempts on connect failure / queue-full / "
                         "shutting-down (0 disables)")
    ap.add_argument("--retry-base-ms", type=float, default=50.0,
                    help="backoff base; attempt k waits up to "
                         "base * 2^k ms (capped at 2s, with jitter)")
    sub = ap.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile")
    c.add_argument("file")
    c.add_argument("--opt-level", type=int, choices=(0, 1), default=None)
    c.add_argument("--target", choices=("ss", "sv"), default=None)
    c.add_argument("--precision", choices=("f64", "dd"), default=None)
    c.add_argument("--branch", choices=("exception", "join"), default=None)
    c.add_argument("--reductions", action="store_true")
    c.add_argument("--batch-loops", action="store_true")
    c.add_argument("--module", default=None)

    e = sub.add_parser("eval")
    e.add_argument("handle")
    e.add_argument("function")
    e.add_argument("args", nargs="*")
    e.add_argument("--branch", choices=("exception", "join"), default=None)
    e.add_argument("--fenv-policy", choices=("repair", "poison"), default=None)
    e.add_argument("--step-limit", type=int, default=None)

    sub.add_parser("stats")

    sub.add_parser("health")

    v = sub.add_parser("evict")
    v.add_argument("handle", nargs="?")
    v.add_argument("--all", action="store_true")

    sub.add_parser("shutdown")

    ns = ap.parse_args(argv[1:])

    req = {"op": ns.command}
    if ns.id is not None:
        req["id"] = ns.id
    if ns.deadline_ms is not None:
        req["deadline_ms"] = ns.deadline_ms
    if ns.command == "compile":
        if ns.file == "-":
            req["source"] = sys.stdin.read()
        else:
            with open(ns.file, "r", encoding="utf-8") as f:
                req["source"] = f.read()
        opts = {}
        if ns.opt_level is not None:
            opts["opt_level"] = ns.opt_level
        if ns.target:
            opts["target"] = ns.target
        if ns.precision:
            opts["precision"] = ns.precision
        if ns.branch:
            opts["branch"] = ns.branch
        if ns.reductions:
            opts["reductions"] = True
        if ns.batch_loops:
            opts["batch_loops"] = True
        if ns.module:
            opts["module"] = ns.module
        if opts:
            req["options"] = opts
    elif ns.command == "eval":
        req["handle"] = ns.handle
        req["function"] = ns.function
        req["args"] = [parse_eval_arg(a) for a in ns.args]
        opts = {}
        if ns.branch:
            opts["branch"] = ns.branch
        if ns.fenv_policy:
            opts["fenv_policy"] = ns.fenv_policy
        if ns.step_limit is not None:
            opts["step_limit"] = ns.step_limit
        if opts:
            req["options"] = opts
    elif ns.command == "evict":
        if ns.all:
            req["all"] = True
        elif ns.handle:
            req["handle"] = ns.handle
        else:
            ap.error("evict needs a HANDLE or --all")

    retries = max(0, ns.retries)
    # shutdown is not idempotent from the operator's point of view
    # (retrying one against a fresh instance would kill it too), so it
    # never retries on typed errors; connect retries are still fine.
    if ns.command == "shutdown":
        resp = None
        try:
            sock = connect(ns.socket, ns.wait)
        except OSError as err:
            raise SystemExit(f"igen_client: {err}")
        try:
            resp = rpc(sock, req)
        except OSError as err:
            raise SystemExit(f"igen_client: {err}")
        finally:
            sock.close()
    else:
        resp = rpc_with_retry(ns.socket, ns.wait, req, retries,
                              ns.retry_base_ms)

    if ns.raw:
        print(json.dumps(resp, separators=(",", ":")))
    else:
        print(json.dumps(resp, indent=2))
    return 0 if resp.get("ok") is True else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
