//===- affine_vs_interval.cpp - The dependency problem live --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Section VII-C in miniature: iterate the Henon map with (a) plain double
// intervals, (b) double-double intervals, (c) affine arithmetic, printing
// the certified bits as the iteration count grows. Intervals suffer the
// dependency problem; affine forms keep the linear correlations and stay
// accurate (at much higher cost).
//
// Build & run:  ./build/examples/affine_vs_interval
//
//===----------------------------------------------------------------------===//

#include "affine/AffineForm.h"
#include "interval/Accuracy.h"
#include "interval/igen_lib.h"

#include <cstdio>

int main() {
  igen::RoundUpwardScope Up;
  using namespace igen;

  std::printf("Henon map (a=1.05, b=0.3, x0=y0=0): certified bits\n");
  std::printf("%6s  %10s  %10s  %10s\n", "iters", "f64i", "ddi",
              "affine");

  Interval IX = Interval::fromPoint(0.0), IY = IX;
  DdInterval DX = DdInterval::fromPoint(0.0), DY = DX;
  AffineForm AX = AffineForm::fromPoint(0.0), AY = AX;

  const Interval A64 = Interval::fromPoint(1.05);
  const Interval B64 = Interval::fromPoint(0.3);
  const Interval One64 = Interval::fromPoint(1.0);
  const DdInterval ADd = DdInterval::fromPoint(1.05);
  const DdInterval BDd = DdInterval::fromPoint(0.3);
  const DdInterval OneDd = DdInterval::fromPoint(1.0);
  const AffineForm AAf = AffineForm::fromPoint(1.05);
  const AffineForm BAf = AffineForm::fromPoint(0.3);
  const AffineForm OneAf = AffineForm::fromPoint(1.0);

  for (int Iter = 1; Iter <= 120; ++Iter) {
    Interval XI = IX;
    IX = iAdd(iSub(One64, iMul(A64, iMul(XI, XI))), IY);
    IY = iMul(B64, XI);
    DdInterval XD = DX;
    DX = ddiAdd(ddiSub(OneDd, ddiMul(ADd, ddiMul(XD, XD))), DY);
    DY = ddiMul(BDd, XD);
    AffineForm XA = AX;
    AX = OneAf - AAf * XA * XA + AY;
    AY = BAf * XA;
    if (Iter % 20 == 0 || Iter == 1)
      std::printf("%6d  %10.1f  %10.1f  %10.1f\n", Iter,
                  accuracyBits(IX), accuracyBits(DX),
                  accuracyBits(AX.toInterval()));
  }

  std::printf("\nplain intervals forget that x and y are correlated; the\n"
              "affine form carries ~%zu shared noise symbols instead and\n"
              "its enclosure stays tight (Table VI of the paper).\n",
              AX.numTerms());
  return 0;
}
