//===- sensor_pipeline.cpp - Tolerances and three-valued branches --------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The cyber-physical-systems scenario of Section IV-C: sensor readings
// carry a known resolution, so computations start from genuine intervals,
// and control decisions (branches) can become *unknown*. This example
// shows both the language extension (compiling a function with a
// `double:0.05` tolerance parameter) and the runtime behaviour of the
// exception vs join branch policies, then scales the same computation to
// a whole fleet of sensors with the batched array runtime (src/runtime/):
// CPU-dispatched elementwise kernels and a deterministic parallel sum
// whose bits do not depend on the thread count.
//
// Build & run:  ./build/examples/sensor_pipeline
//
//===----------------------------------------------------------------------===//

#include "interval/igen_lib.h"
#include "runtime/BatchKernels.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <vector>

namespace {

/// The check a collision monitor might run: distance after braking.
/// Inputs: distance sensor (+-0.05 m), speed sensor (+-0.1 m/s).
igen::Interval brakingMargin(double DistReading, double SpeedReading) {
  f64i Dist = ia_set_tol_f64(DistReading, 0.05);
  f64i Speed = ia_set_tol_f64(SpeedReading, 0.1);
  // margin = dist - v^2 / (2*a_max), a_max = 6 m/s^2.
  f64i Brake = ia_div_f64(ia_mul_f64(Speed, Speed),
                          ia_cst_f64(2.0 * 6.0));
  f64i Margin = ia_sub_f64(Dist, Brake);
#if defined(IGEN_F64I_SCALAR)
  return Margin;
#else
  return Margin.toInterval();
#endif
}

} // namespace

int main() {
  igen::RoundUpwardScope Up;

  std::printf("braking margin with sensor tolerances:\n");
  for (double Dist : {30.0, 12.1, 12.02}) {
    igen::Interval M = brakingMargin(Dist, 12.0);
    tbool Safe = ia_cmpgt_f64(f64i::fromInterval(M), ia_cst_f64(0.0));
    const char *Verdict = Safe == igen::TBool::True    ? "SAFE"
                          : Safe == igen::TBool::False ? "BRAKE NOW"
                                                       : "UNKNOWN";
    std::printf("  dist=%6.2f m  margin in [%8.4f, %8.4f]  -> %s\n", Dist,
                M.lo(), M.hi(), Verdict);
  }

  // The UNKNOWN case is exactly what IGen's branch policies are about.
  // Default: signal. With --branch=join the compiler evaluates both
  // sides and joins. Show the code it generates for each.
  const char *Source = "double alarm(double:0.05 margin) {\n"
                       "  double level = 0.0;\n"
                       "  if (margin > 0.0) {\n"
                       "    level = 1.0;\n"
                       "  } else {\n"
                       "    level = -1.0;\n"
                       "  }\n"
                       "  return level;\n"
                       "}\n";
  for (auto Policy : {igen::TransformOptions::BranchPolicy::Exception,
                      igen::TransformOptions::BranchPolicy::Join}) {
    igen::TransformOptions Opts;
    Opts.Branches = Policy;
    igen::DiagnosticsEngine Diags;
    auto Out = igen::compileToIntervals(Source, Opts, Diags);
    if (!Out)
      return 1;
    std::printf("\n--- branch policy: %s ---\n%s",
                Policy == igen::TransformOptions::BranchPolicy::Exception
                    ? "exception (default)"
                    : "join",
                Out->c_str());
  }

  // A fleet of monitors: the same margin computation over N sensor pairs
  // at once with the batched runtime. The kernels pick the widest ISA
  // the CPU supports at first call (override with IGEN_ISA=scalar|sse2|
  // avx|avx2), and the parallel fleet-wide sum is bit-identical for any
  // thread count, so the report below is reproducible on 1 core or 64.
  using namespace igen::runtime;
  constexpr size_t Fleet = 4096;
  std::vector<igen::Interval> Dist(Fleet), Speed(Fleet), V2(Fleet),
      Brake(Fleet), Margin(Fleet);
  for (size_t K = 0; K < Fleet; ++K) {
    double D = 12.0 + 0.005 * static_cast<double>(K % 1000);
    double V = 11.5 + 0.001 * static_cast<double>(K % 777);
    Dist[K] = igen::Interval::fromEndpoints(D - 0.05, D + 0.05);
    Speed[K] = igen::Interval::fromEndpoints(V - 0.1, V + 0.1);
  }
  const igen::Interval InvDecel =
      igen::iDiv(igen::Interval::fromPoint(1.0),
                 igen::Interval::fromPoint(2.0 * 6.0));
  iarr_mul(V2.data(), Speed.data(), Speed.data(), Fleet);      // v^2
  iarr_scale(Brake.data(), V2.data(), InvDecel, Fleet);        // /(2 a)
  iarr_sub(Margin.data(), Dist.data(), Brake.data(), Fleet);   // d - .
  igen::Interval Total = iarr_sum_par(Margin.data(), Fleet);
  size_t Unsafe = 0, Unknown = 0;
  for (size_t K = 0; K < Fleet; ++K) {
    if (Margin[K].hi() <= 0.0)
      ++Unsafe;
    else if (Margin[K].lo() <= 0.0)
      ++Unknown;
  }
  std::printf("\nfleet of %zu monitors (batched runtime, %s kernels):\n",
              Fleet, kernels().Name);
  std::printf("  unsafe: %zu  unknown: %zu  safe: %zu\n", Unsafe, Unknown,
              Fleet - Unsafe - Unknown);
  std::printf("  fleet-wide margin sum in [%.6f, %.6f] m\n", Total.lo(),
              Total.hi());
  return 0;
}
