//===- certified_newton.cpp - Certified double-precision root finding ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The paper's headline use of double-double intervals (Section VII-A,
// "Certified double precision result"): when error accumulation stays
// below ~1 double ulp, an interval result *certifies* the double value.
// Here: interval Newton iteration for the root of f(x) = x^3 - 2x - 5
// (Wallis' classic) in plain double intervals vs double-double intervals,
// then certification of the double result.
//
// Build & run:  ./build/examples/certified_newton
//
//===----------------------------------------------------------------------===//

#include "interval/Accuracy.h"
#include "interval/igen_lib.h"

#include <cstdio>

namespace {

/// f(x) = x^3 - 2x - 5 and f'(x) = 3x^2 - 2 over double intervals.
igen::Interval f(const igen::Interval &X) {
  using namespace igen;
  return iSub(iSub(iMul(iMul(X, X), X),
                   iMul(Interval::fromPoint(2.0), X)),
              Interval::fromPoint(5.0));
}

igen::DdInterval fDd(const igen::DdInterval &X) {
  using namespace igen;
  return ddiSub(ddiSub(ddiMul(ddiMul(X, X), X),
                       ddiMul(DdInterval::fromPoint(2.0), X)),
                DdInterval::fromPoint(5.0));
}

} // namespace

int main() {
  igen::RoundUpwardScope Up;

  // Interval Newton operator N(X) = m - f([m,m]) / f'(X) with m the
  // midpoint of X: near a simple root the enclosure *contracts* (the
  // numerator is a point evaluation, so its width is only rounding).
  igen::Interval X = igen::Interval::fromEndpoints(2.0, 2.2);
  igen::DdInterval XD =
      igen::DdInterval::fromEndpoints(igen::Dd(2.0), igen::Dd(2.2));
  std::printf("interval Newton for x^3 - 2x - 5 = 0:\n");
  std::printf("%4s  %-22s %8s  %8s\n", "iter", "midpoint", "dbl bits",
              "dd bits");
  for (int K = 1; K <= 6; ++K) {
    using namespace igen;
    double M = 0.5 * (X.lo() + X.hi());
    Interval MI = Interval::fromPoint(M);
    Interval D = iSub(iMul(Interval::fromPoint(3.0), iMul(X, X)),
                      Interval::fromPoint(2.0));
    X = iSub(MI, iDiv(f(MI), D));
    double MD = 0.5 * (XD.lo().H + XD.hi().H);
    DdInterval MDI = DdInterval::fromPoint(MD);
    DdInterval DD = ddiSub(
        ddiMul(DdInterval::fromPoint(3.0), ddiMul(XD, XD)),
        DdInterval::fromPoint(2.0));
    XD = ddiSub(MDI, ddiDiv(fDd(MDI), DD));
    std::printf("%4d  %-22.17g %8.1f  %8.1f\n", K, X.hi(),
                accuracyBits(X), accuracyBits(XD));
  }

  // Certification: if the dd interval rounds to a single double, that
  // double is the certified correctly-rounded value.
  double LoD = igen::ddToDoubleNearest(XD.lo());
  double HiD = igen::ddToDoubleNearest(XD.hi());
  if (LoD == HiD)
    std::printf("\ncertified double root: %.17g (dd interval rounds to "
                "one double, %.1f bits)\n",
                HiD, igen::accuracyBits(XD));
  else
    std::printf("\nnot certified: dd interval still spans [%.17g, %.17g]\n",
                LoD, HiD);
  return 0;
}
