//===- quickstart.cpp - IGen in five minutes -----------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Tour of the two public surfaces:
//   1. the interval runtime (igen::Interval & friends) for direct use,
//   2. the source-to-source compiler (igen::compileToIntervals), which is
//      what the `igen` CLI wraps.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "interval/Accuracy.h"
#include "interval/igen_lib.h"
#include "transform/Pipeline.h"

#include <cstdio>

int main() {
  // All interval arithmetic runs with the FPU rounding upward; the scope
  // guard restores the mode on exit.
  igen::RoundUpwardScope Up;

  // --- 1. Direct interval arithmetic ------------------------------------
  igen::Interval X = igen::Interval::fromPoint(0.1);
  igen::Interval Y = igen::Interval::fromPoint(0.2);
  igen::Interval Sum = X + Y; // outward rounded: contains the real 0.1+0.2
  std::printf("0.1 + 0.2 in  [%.17g, %.17g]  (%.1f correct bits)\n",
              Sum.lo(), Sum.hi(), igen::accuracyBits(Sum));

  // Double-double intervals: ~106-bit endpoints, certified double results.
  igen::DdInterval DX = igen::DdInterval::fromPoint(2.0);
  igen::DdInterval Sqrt2;
  {
    // sqrt via the runtime API the generated code uses.
    ddi V = ddi::fromScalar(DX);
    Sqrt2 = ia_sqrt_dd(V).toScalar();
  }
  std::printf("sqrt(2)   in  [%.17g + %.3g, %.17g + %.3g]"
              "  (%.1f correct bits)\n",
              Sqrt2.lo().H, Sqrt2.lo().L, Sqrt2.hi().H, Sqrt2.hi().L,
              igen::accuracyBits(Sqrt2));

  // Accurate summation (the reduction accumulator of Section VI-B).
  igen::SumAccumulatorF64 Acc;
  Acc.init(igen::Interval::fromPoint(1e16));
  Acc.accumulate(igen::Interval::fromPoint(1.0));
  Acc.accumulate(igen::Interval::fromPoint(-1e16));
  igen::Interval S = Acc.reduce();
  std::printf("1e16 + 1 - 1e16 = [%.17g, %.17g] (no cancellation loss)\n",
              S.lo(), S.hi());

  // --- 2. The compiler ---------------------------------------------------
  const char *Source = "double foo(double a, double b) {\n"
                       "  double c;\n"
                       "  c = a + b + 0.1;\n"
                       "  if (c > a) {\n"
                       "    c = a * c;\n"
                       "  }\n"
                       "  return c;\n"
                       "}\n";
  igen::DiagnosticsEngine Diags;
  igen::TransformOptions Opts; // defaults: double precision, SIMD library
  auto Out = igen::compileToIntervals(Source, Opts, Diags);
  if (!Out) {
    std::fputs(Diags.render("<quickstart>").c_str(), stderr);
    return 1;
  }
  std::printf("\n--- igen output for foo() (Fig. 2 of the paper) ---\n%s",
              Out->c_str());
  return 0;
}
