//===- BatchLoopAnalysis.cpp - Batched array-loop detection ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BatchLoopAnalysis.h"

namespace igen {

namespace {

/// The induction variable declared or assigned in the loop init, when
/// the init has the shape `int i = 0` / `i = 0`.
const VarDecl *inductionFromInit(const Stmt *Init) {
  if (!Init)
    return nullptr;
  if (const auto *D = dynCast<DeclStmt>(Init)) {
    if (D->Decls.size() != 1)
      return nullptr;
    const VarDecl *V = D->Decls[0];
    if (!V->Init || !V->Ty || !V->Ty->isInteger())
      return nullptr;
    const auto *Zero = dynCast<IntLiteralExpr>(ignoreParens(V->Init));
    return Zero && Zero->Value == 0 ? V : nullptr;
  }
  if (const auto *E = dynCast<ExprStmt>(Init)) {
    const auto *Assign = dynCast<BinaryExpr>(ignoreParens(E->E));
    if (!Assign || Assign->O != BinaryExpr::Op::Assign)
      return nullptr;
    const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(Assign->LHS));
    const auto *Zero = dynCast<IntLiteralExpr>(ignoreParens(Assign->RHS));
    if (!Ref || !Ref->Decl || !Zero || Zero->Value != 0)
      return nullptr;
    return Ref->Decl;
  }
  return nullptr;
}

/// True when \p E is `++i`, `i++` or `i += 1` for the given variable.
bool isUnitIncrement(const Expr *E, const VarDecl *IV) {
  E = ignoreParens(E);
  if (const auto *U = dynCast<UnaryExpr>(E)) {
    if (U->O != UnaryExpr::Op::PreInc && U->O != UnaryExpr::Op::PostInc)
      return false;
    const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(U->Sub));
    return Ref && Ref->Decl == IV;
  }
  if (const auto *B = dynCast<BinaryExpr>(E)) {
    if (B->O != BinaryExpr::Op::AddAssign)
      return false;
    const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS));
    const auto *One = dynCast<IntLiteralExpr>(ignoreParens(B->RHS));
    return Ref && Ref->Decl == IV && One && One->Value == 1;
  }
  return false;
}

/// Matches `base[iv]` where base is a plain identifier of pointer/array
/// of double; returns the base DeclRef or null.
const DeclRefExpr *matchSubscript(const Expr *E, const VarDecl *IV) {
  const auto *Ix = dynCast<IndexExpr>(ignoreParens(E));
  if (!Ix)
    return nullptr;
  const auto *Idx = dynCast<DeclRefExpr>(ignoreParens(Ix->Idx));
  if (!Idx || Idx->Decl != IV)
    return nullptr;
  const auto *Base = dynCast<DeclRefExpr>(ignoreParens(Ix->Base));
  if (!Base || !Base->Decl)
    return nullptr;
  const Type *T = Base->type();
  if (!T || (!T->isPointer() && !T->isArray()) || !T->element() ||
      T->element()->kind() != Type::Kind::Double)
    return nullptr;
  return Base;
}

/// The single statement of a loop body (unwrapping a one-statement
/// compound); null when the body has any other shape.
const Stmt *singleBodyStmt(const Stmt *Body) {
  while (const auto *C = dynCast<CompoundStmt>(Body)) {
    if (C->Body.size() != 1)
      return nullptr;
    Body = C->Body[0];
  }
  return Body;
}

} // namespace

std::optional<BatchLoop> matchBatchLoop(const ForStmt *S) {
  const VarDecl *IV = inductionFromInit(S->Init);
  if (!IV || !S->Cond || !S->Inc || !S->Body)
    return std::nullopt;
  if (!isUnitIncrement(S->Inc, IV))
    return std::nullopt;

  // Condition: `i < n`, n a plain variable or an integer literal. The
  // body below references no integer variable, so n is loop-invariant.
  const auto *Cmp = dynCast<BinaryExpr>(ignoreParens(S->Cond));
  if (!Cmp || Cmp->O != BinaryExpr::Op::LT)
    return std::nullopt;
  const auto *CondIv = dynCast<DeclRefExpr>(ignoreParens(Cmp->LHS));
  if (!CondIv || CondIv->Decl != IV)
    return std::nullopt;
  const Expr *Count = ignoreParens(Cmp->RHS);
  if (const auto *Bound = dynCast<DeclRefExpr>(Count)) {
    if (!Bound->Decl || Bound->Decl == IV)
      return std::nullopt;
  } else if (!dynCast<IntLiteralExpr>(Count)) {
    return std::nullopt;
  }

  const auto *BodyStmt = dynCast<ExprStmt>(singleBodyStmt(S->Body));
  if (!BodyStmt)
    return std::nullopt;
  const auto *Assign = dynCast<BinaryExpr>(ignoreParens(BodyStmt->E));
  if (!Assign || Assign->O != BinaryExpr::Op::Assign)
    return std::nullopt;

  BatchLoop L;
  L.Count = Count;
  L.Dst = matchSubscript(Assign->LHS, IV);
  if (!L.Dst)
    return std::nullopt;

  const Expr *Rhs = ignoreParens(Assign->RHS);
  if (const auto *Call = dynCast<CallExpr>(Rhs)) {
    if (Call->Callee != "sqrt" || Call->Args.size() != 1)
      return std::nullopt;
    L.O = BatchLoop::Op::Sqrt;
    L.A = matchSubscript(Call->Args[0], IV);
    return L.A ? std::optional<BatchLoop>(L) : std::nullopt;
  }

  const auto *Bin = dynCast<BinaryExpr>(Rhs);
  if (!Bin)
    return std::nullopt;
  switch (Bin->O) {
  case BinaryExpr::Op::Add:
    L.O = BatchLoop::Op::Add;
    break;
  case BinaryExpr::Op::Sub:
    L.O = BatchLoop::Op::Sub;
    break;
  case BinaryExpr::Op::Mul:
    L.O = BatchLoop::Op::Mul;
    break;
  case BinaryExpr::Op::Div:
    L.O = BatchLoop::Op::Div;
    break;
  default:
    return std::nullopt;
  }
  L.A = matchSubscript(Bin->LHS, IV);
  L.B = matchSubscript(Bin->RHS, IV);
  if (!L.A || !L.B)
    return std::nullopt;
  return L;
}

} // namespace igen
