//===- ReductionAnalysis.h - Reduction detection ----------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detection of reduction statements (Section VI-B). The paper runs Polly
/// on the LLVM-IR to find loop-carried self-dependences like
/// Stmt[i0,i1] -> Stmt[i0,i1+1] and maps them back to AST locations; here
/// the same information is computed directly on the AST: inside a loop
/// marked `#pragma igen reduce <vars>`, a statement
///
///     target = target + t1 [+ t2 ...]      (or +=, or t + target)
///
/// is a reduction when `target` names a pragma variable (optionally
/// indexed by expressions invariant in the carrying loop). The analysis
/// also computes the loop level at which the accumulator must be
/// initialized and reduced: the outermost loop of the enclosing nest in
/// which the target is still invariant (Polly's reduction dependence gives
/// the same level).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_ANALYSIS_REDUCTIONANALYSIS_H
#define IGEN_ANALYSIS_REDUCTIONANALYSIS_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <vector>

namespace igen {

/// One additive term of a detected reduction.
struct ReductionTerm {
  Expr *Term;
  bool Negated; ///< target = target - term
};

/// A detected reduction statement.
struct ReductionSite {
  /// The full update statement (an ExprStmt holding the assignment).
  ExprStmt *Update = nullptr;
  /// The accumulation target (DeclRef or IndexExpr over the pragma var).
  Expr *Target = nullptr;
  /// The terms accumulated per iteration.
  std::vector<ReductionTerm> Terms;
  /// Loop around which the accumulator is initialized/reduced: the
  /// outermost loop in which Target is invariant.
  ForStmt *AccumLoop = nullptr;
};

/// Result of analyzing one function: reduction sites grouped by their
/// accumulation loop, plus a map from update statements to sites for the
/// transformer.
struct ReductionAnalysisResult {
  std::vector<ReductionSite> Sites;

  const ReductionSite *siteForUpdate(const Stmt *S) const {
    for (const ReductionSite &Site : Sites)
      if (Site.Update == S)
        return &Site;
    return nullptr;
  }

  /// Sites whose accumulator wraps the given loop.
  std::vector<const ReductionSite *> sitesForLoop(const Stmt *Loop) const {
    std::vector<const ReductionSite *> Out;
    for (const ReductionSite &Site : Sites)
      if (Site.AccumLoop == Loop)
        Out.push_back(&Site);
    return Out;
  }
};

/// Structural equality of expressions (used to match the target on both
/// sides of the update and to test invariance).
bool exprStructurallyEqual(const Expr *A, const Expr *B);

/// True if \p E references the variable named \p Name.
bool exprReferencesVar(const Expr *E, const std::string &Name);

/// Runs reduction detection over \p F. Emits warnings for pragma loops in
/// which no reduction could be identified.
ReductionAnalysisResult analyzeReductions(FunctionDecl *F,
                                          DiagnosticsEngine &Diags);

} // namespace igen

#endif // IGEN_ANALYSIS_REDUCTIONANALYSIS_H
