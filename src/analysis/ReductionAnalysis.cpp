//===- ReductionAnalysis.cpp - Reduction detection ---------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReductionAnalysis.h"

using namespace igen;

bool igen::exprStructurallyEqual(const Expr *A, const Expr *B) {
  A = ignoreParens(A);
  B = ignoreParens(B);
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::IntLiteral:
    return cast<IntLiteralExpr>(A)->Value == cast<IntLiteralExpr>(B)->Value;
  case Expr::Kind::FloatLiteral:
    return cast<FloatLiteralExpr>(A)->Value ==
           cast<FloatLiteralExpr>(B)->Value;
  case Expr::Kind::DeclRef:
    return cast<DeclRefExpr>(A)->Name == cast<DeclRefExpr>(B)->Name;
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(A), *UB = cast<UnaryExpr>(B);
    return UA->O == UB->O && exprStructurallyEqual(UA->Sub, UB->Sub);
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->O == BB->O && exprStructurallyEqual(BA->LHS, BB->LHS) &&
           exprStructurallyEqual(BA->RHS, BB->RHS);
  }
  case Expr::Kind::Conditional: {
    const auto *CA = cast<ConditionalExpr>(A), *CB = cast<ConditionalExpr>(B);
    return exprStructurallyEqual(CA->Cond, CB->Cond) &&
           exprStructurallyEqual(CA->Then, CB->Then) &&
           exprStructurallyEqual(CA->Else, CB->Else);
  }
  case Expr::Kind::Call: {
    const auto *CA = cast<CallExpr>(A), *CB = cast<CallExpr>(B);
    if (CA->Callee != CB->Callee || CA->Args.size() != CB->Args.size())
      return false;
    for (size_t I = 0; I < CA->Args.size(); ++I)
      if (!exprStructurallyEqual(CA->Args[I], CB->Args[I]))
        return false;
    return true;
  }
  case Expr::Kind::Index: {
    const auto *IA = cast<IndexExpr>(A), *IB = cast<IndexExpr>(B);
    return exprStructurallyEqual(IA->Base, IB->Base) &&
           exprStructurallyEqual(IA->Idx, IB->Idx);
  }
  case Expr::Kind::Cast: {
    const auto *CA = cast<CastExpr>(A), *CB = cast<CastExpr>(B);
    return CA->To == CB->To && exprStructurallyEqual(CA->Sub, CB->Sub);
  }
  case Expr::Kind::Paren:
    return false; // unreachable: parens stripped above
  }
  return false;
}

bool igen::exprReferencesVar(const Expr *E, const std::string &Name) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::FloatLiteral:
    return false;
  case Expr::Kind::DeclRef:
    return cast<DeclRefExpr>(E)->Name == Name;
  case Expr::Kind::Unary:
    return exprReferencesVar(cast<UnaryExpr>(E)->Sub, Name);
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return exprReferencesVar(B->LHS, Name) ||
           exprReferencesVar(B->RHS, Name);
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    return exprReferencesVar(C->Cond, Name) ||
           exprReferencesVar(C->Then, Name) ||
           exprReferencesVar(C->Else, Name);
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    for (const Expr *Arg : C->Args)
      if (exprReferencesVar(Arg, Name))
        return true;
    return false;
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    return exprReferencesVar(I->Base, Name) ||
           exprReferencesVar(I->Idx, Name);
  }
  case Expr::Kind::Cast:
    return exprReferencesVar(cast<CastExpr>(E)->Sub, Name);
  case Expr::Kind::Paren:
    return exprReferencesVar(cast<ParenExpr>(E)->Sub, Name);
  }
  return false;
}

namespace {

/// Induction variable name of a for-loop (from `int i = 0` or `i = 0`).
std::string loopInductionVar(const ForStmt *For) {
  if (!For->Init)
    return {};
  if (const auto *DS = dynCast<DeclStmt>(For->Init)) {
    if (DS->Decls.size() == 1)
      return DS->Decls.front()->Name;
    return {};
  }
  if (const auto *ES = dynCast<ExprStmt>(For->Init)) {
    if (const auto *B = dynCast<BinaryExpr>(ES->E))
      if (B->O == BinaryExpr::Op::Assign)
        if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS)))
          return Ref->Name;
  }
  return {};
}

/// The variable at the root of an lvalue chain ("y" in y, y[i], *y).
const DeclRefExpr *rootVariable(const Expr *E) {
  E = ignoreParens(E);
  while (true) {
    if (const auto *I = dynCast<IndexExpr>(E)) {
      E = ignoreParens(I->Base);
      continue;
    }
    if (const auto *U = dynCast<UnaryExpr>(E)) {
      if (U->O == UnaryExpr::Op::Deref) {
        E = ignoreParens(U->Sub);
        continue;
      }
      return nullptr;
    }
    return dynCast<DeclRefExpr>(E);
  }
}

/// Flattens an additive expression tree into signed terms.
void flattenAdditive(Expr *E, bool Negated,
                     std::vector<ReductionTerm> &Out) {
  Expr *Stripped = ignoreParens(E);
  if (auto *B = dynCast<BinaryExpr>(Stripped)) {
    if (B->O == BinaryExpr::Op::Add) {
      flattenAdditive(B->LHS, Negated, Out);
      flattenAdditive(B->RHS, Negated, Out);
      return;
    }
    if (B->O == BinaryExpr::Op::Sub) {
      flattenAdditive(B->LHS, Negated, Out);
      flattenAdditive(B->RHS, !Negated, Out);
      return;
    }
  }
  Out.push_back(ReductionTerm{E, Negated});
}

/// True if \p S (excluding the statement \p Skip and the subtree
/// \p SkipSubtree) references variable \p Name.
bool stmtUsesVarExcluding(const Stmt *S, const std::string &Name,
                          const Stmt *Skip, const Stmt *SkipSubtree) {
  if (S == Skip || S == SkipSubtree)
    return false;
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->Body)
      if (stmtUsesVarExcluding(Child, Name, Skip, SkipSubtree))
        return true;
    return false;
  case Stmt::Kind::DeclStmt:
    for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
      if (D->Init && exprReferencesVar(D->Init, Name))
        return true;
    return false;
  case Stmt::Kind::ExprStmt:
    return exprReferencesVar(cast<ExprStmt>(S)->E, Name);
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    return exprReferencesVar(If->Cond, Name) ||
           stmtUsesVarExcluding(If->Then, Name, Skip, SkipSubtree) ||
           (If->Else &&
            stmtUsesVarExcluding(If->Else, Name, Skip, SkipSubtree));
  }
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    return (For->Init &&
            stmtUsesVarExcluding(For->Init, Name, Skip, SkipSubtree)) ||
           (For->Cond && exprReferencesVar(For->Cond, Name)) ||
           (For->Inc && exprReferencesVar(For->Inc, Name)) ||
           stmtUsesVarExcluding(For->Body, Name, Skip, SkipSubtree);
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return exprReferencesVar(W->Cond, Name) ||
           stmtUsesVarExcluding(W->Body, Name, Skip, SkipSubtree);
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    return exprReferencesVar(D->Cond, Name) ||
           stmtUsesVarExcluding(D->Body, Name, Skip, SkipSubtree);
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    return R->Value && exprReferencesVar(R->Value, Name);
  }
  default:
    return false;
  }
}

class ReductionFinder {
public:
  ReductionFinder(DiagnosticsEngine &Diags, ReductionAnalysisResult &Result)
      : Diags(Diags), Result(Result) {}

  void visitStmt(Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (Stmt *Child : cast<CompoundStmt>(S)->Body)
        visitStmt(Child);
      return;
    case Stmt::Kind::If: {
      auto *If = cast<IfStmt>(S);
      visitStmt(If->Then);
      if (If->Else)
        visitStmt(If->Else);
      return;
    }
    case Stmt::Kind::For: {
      auto *For = cast<ForStmt>(S);
      for (const std::string &Var : For->ReduceVars)
        ActiveVars.push_back(Var);
      LoopStack.push_back(For);
      size_t SitesBefore = Result.Sites.size();
      visitStmt(For->Body);
      LoopStack.pop_back();
      if (!For->ReduceVars.empty()) {
        if (Result.Sites.size() == SitesBefore)
          Diags.warning(For->loc(),
                        "#pragma igen reduce: no reduction statement "
                        "found in this loop nest");
        ActiveVars.resize(ActiveVars.size() - For->ReduceVars.size());
      }
      return;
    }
    case Stmt::Kind::While:
      visitStmt(cast<WhileStmt>(S)->Body);
      return;
    case Stmt::Kind::Do:
      visitStmt(cast<DoStmt>(S)->Body);
      return;
    case Stmt::Kind::ExprStmt:
      visitUpdate(cast<ExprStmt>(S));
      return;
    default:
      return;
    }
  }

private:
  void visitUpdate(ExprStmt *S) {
    if (ActiveVars.empty() || LoopStack.empty())
      return;
    auto *Assign = dynCast<BinaryExpr>(ignoreParens(S->E));
    if (!Assign)
      return;
    Expr *Target = Assign->LHS;
    const DeclRefExpr *Root = rootVariable(Target);
    if (!Root)
      return;
    bool IsActive = false;
    for (const std::string &Var : ActiveVars)
      if (Var == Root->Name)
        IsActive = true;
    if (!IsActive)
      return;

    std::vector<ReductionTerm> Terms;
    if (Assign->O == BinaryExpr::Op::AddAssign) {
      flattenAdditive(Assign->RHS, false, Terms);
    } else if (Assign->O == BinaryExpr::Op::SubAssign) {
      flattenAdditive(Assign->RHS, true, Terms);
    } else if (Assign->O == BinaryExpr::Op::Assign) {
      // target = <sum containing exactly one occurrence of target>.
      std::vector<ReductionTerm> All;
      flattenAdditive(Assign->RHS, false, All);
      int TargetHits = 0;
      for (const ReductionTerm &T : All) {
        if (!T.Negated && exprStructurallyEqual(T.Term, Target)) {
          ++TargetHits;
          continue;
        }
        Terms.push_back(T);
      }
      if (TargetHits != 1)
        return; // not of the form t = t + ...
      // The remaining terms must not mention the target variable again.
      for (const ReductionTerm &T : Terms)
        if (exprReferencesVar(T.Term, Root->Name))
          return;
    } else {
      return;
    }
    if (Terms.empty())
      return;

    // Accumulator level: walk outward while the target is invariant in
    // the loop (its induction variable does not appear in the target),
    // never beyond the loop carrying the pragma, and never past a loop
    // whose body uses the target outside the update statement itself
    // (hoisting the final reduction past such a use would be wrong).
    ForStmt *PragmaLoop = nullptr;
    for (ForStmt *L : LoopStack)
      for (const std::string &V : L->ReduceVars)
        if (V == Root->Name && !PragmaLoop)
          PragmaLoop = L;
    ForStmt *Accum = nullptr;
    for (auto It = LoopStack.rbegin(); It != LoopStack.rend(); ++It) {
      std::string IV = loopInductionVar(*It);
      if (IV.empty() || exprReferencesVar(Target, IV))
        break;
      if (Accum && stmtUsesVarExcluding(*It, Root->Name, S, Accum))
        break;
      Accum = *It;
      if (*It == PragmaLoop)
        break;
    }
    if (!Accum)
      return; // varies even in the innermost loop: no reduction carried

    ReductionSite Site;
    Site.Update = S;
    Site.Target = Target;
    Site.Terms = std::move(Terms);
    Site.AccumLoop = Accum;
    Result.Sites.push_back(std::move(Site));
  }

  DiagnosticsEngine &Diags;
  ReductionAnalysisResult &Result;
  std::vector<std::string> ActiveVars;
  std::vector<ForStmt *> LoopStack;
};

} // namespace

ReductionAnalysisResult igen::analyzeReductions(FunctionDecl *F,
                                                DiagnosticsEngine &Diags) {
  ReductionAnalysisResult Result;
  if (!F->Body)
    return Result;
  ReductionFinder Finder(Diags, Result);
  Finder.visitStmt(F->Body);
  return Result;
}
