//===- BatchLoopAnalysis.h - Batched array-loop detection -------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recognition of elementwise array loops the transformer can route onto
/// the batched runtime (src/runtime/BatchKernels.h) instead of emitting a
/// per-element interval loop:
///
///     for (i = 0; i < n; i++)         // or ++i / i += 1; int or long i
///       d[i] = a[i] OP b[i];          // OP in + - * /
///     for (i = 0; i < n; i++)
///       d[i] = sqrt(a[i]);
///
/// where d, a, b are plain identifiers of pointer/array-of-double type
/// and every subscript is exactly the induction variable. The rewrite is
/// a pure strength reduction: the batch kernels compute the same
/// enclosures (div and sqrt bit-identically, via the shared
/// sign-classified routing) while amortizing the rounding-mode setup and
/// engaging the SIMD tiers. Full aliasing (d == a, d == a == b) is
/// allowed -- the runtime's kernels handle it exactly -- and partial
/// overlap cannot be expressed with plain identifier operands.
///
/// The matcher is deliberately structural and conservative: any
/// deviation (different subscript, extra statement in the body, bound
/// that is not a plain variable or literal, float element type, writes
/// to the bound inside the loop -- impossible here since the body is a
/// single recognized assignment) simply means no rewrite, never wrong
/// code.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_ANALYSIS_BATCHLOOPANALYSIS_H
#define IGEN_ANALYSIS_BATCHLOOPANALYSIS_H

#include "frontend/AST.h"

#include <optional>

namespace igen {

/// A recognized batchable loop.
struct BatchLoop {
  enum class Op { Add, Sub, Mul, Div, Sqrt };
  Op O = Op::Add;
  /// Destination, first and (binary ops only) second source arrays, as
  /// the DeclRefs appearing in the loop body.
  const DeclRefExpr *Dst = nullptr;
  const DeclRefExpr *A = nullptr;
  const DeclRefExpr *B = nullptr; ///< null for sqrt
  /// The trip-count expression (the `n` of `i < n`): a DeclRef or an
  /// integer literal.
  const Expr *Count = nullptr;

  /// ia_arr_* runtime suffix for the recognized operation.
  const char *opName() const {
    switch (O) {
    case Op::Add:
      return "add";
    case Op::Sub:
      return "sub";
    case Op::Mul:
      return "mul";
    case Op::Div:
      return "div";
    case Op::Sqrt:
      return "sqrt";
    }
    return "?";
  }
};

/// Matches \p S against the batchable-loop shape. Returns std::nullopt
/// when the loop does not match exactly.
std::optional<BatchLoop> matchBatchLoop(const ForStmt *S);

} // namespace igen

#endif // IGEN_ANALYSIS_BATCHLOOPANALYSIS_H
