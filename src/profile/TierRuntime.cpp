//===- TierRuntime.cpp - Adaptive precision-tier runtime ------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "profile/TierRuntime.h"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace {

//===----------------------------------------------------------------------===//
// Region registry
//===----------------------------------------------------------------------===//

struct RegionCounters {
  std::atomic<uint64_t> Checks{0};
  std::atomic<uint64_t> Escalations{0};
  std::atomic<uint64_t> Pruned{0};
};

struct Registry {
  std::mutex M;
  struct ModuleInfo {
    std::string Name;
    const igen_tier_region *Regions = nullptr;
    unsigned N = 0;
    unsigned Base = 0;
  };
  std::vector<ModuleInfo> Modules;
  /// Counter storage, indexed by global region id. Deque-like stable
  /// chunks are unnecessary: registration happens at static-init time,
  /// before any counting, and the counting paths only read the pointer
  /// loaded below.
  std::vector<std::unique_ptr<RegionCounters>> Counters;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Counter array pointer + size for the lock-free counting fast path.
/// Rebuilt under the registry lock on every registration; counting
/// threads load it acquire and index it without taking the lock.
std::atomic<RegionCounters *const *> CountersPtr{nullptr};
std::atomic<unsigned> CountersN{0};

RegionCounters *counters(unsigned Region) {
  if (Region >= CountersN.load(std::memory_order_acquire))
    return nullptr;
  RegionCounters *const *P = CountersPtr.load(std::memory_order_acquire);
  return P ? P[Region] : nullptr;
}

/// Raw (unowned) pointer snapshot handed to the fast path. Grows only.
std::vector<RegionCounters *> CounterView;

//===----------------------------------------------------------------------===//
// Env knobs (warn-once)
//===----------------------------------------------------------------------===//

std::once_flag WidthWarnOnce, MaxWarnOnce;

struct EnvCache {
  std::atomic<bool> WidthValid{false};
  std::atomic<bool> MaxValid{false};
  double Width = igen::tier::DefaultWidthThreshold;
  int Max = igen::tier::DefaultMaxTier;
};

EnvCache &envCache() {
  static EnvCache C;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Pure parsers (tests drive these directly)
//===----------------------------------------------------------------------===//

double igen::tier::widthFromSpec(const char *Spec, std::string *Warning) {
  if (!Spec || !*Spec)
    return DefaultWidthThreshold;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Spec, &End);
  bool Bad = End == Spec || *End != '\0' || errno == ERANGE ||
             !(V > 0.0) || V != V || V == HUGE_VAL;
  if (Bad) {
    if (Warning)
      *Warning = std::string("igen: warning: ignoring malformed "
                             "IGEN_TIER_WIDTH '") +
                 Spec + "' (want a finite decimal > 0); using default";
    return DefaultWidthThreshold;
  }
  return V;
}

int igen::tier::maxTierFromSpec(const char *Spec, std::string *Warning) {
  if (!Spec || !*Spec)
    return DefaultMaxTier;
  char *End = nullptr;
  long V = std::strtol(Spec, &End, 10);
  if (End == Spec || *End != '\0' || V < 1 || V > 3) {
    if (Warning)
      *Warning = std::string("igen: warning: ignoring malformed "
                             "IGEN_TIER_MAX '") +
                 Spec + "' (want 1, 2 or 3); using default";
    return DefaultMaxTier;
  }
  return static_cast<int>(V);
}

//===----------------------------------------------------------------------===//
// C API
//===----------------------------------------------------------------------===//

extern "C" unsigned igen_tier_register_regions(const char *Module,
                                               const igen_tier_region *Regions,
                                               unsigned N) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  unsigned Base = static_cast<unsigned>(R.Counters.size());
  Registry::ModuleInfo MI;
  MI.Name = Module ? Module : "";
  MI.Regions = Regions;
  MI.N = N;
  MI.Base = Base;
  R.Modules.push_back(std::move(MI));
  for (unsigned I = 0; I < N; ++I)
    R.Counters.push_back(std::make_unique<RegionCounters>());
  CounterView.clear();
  CounterView.reserve(R.Counters.size());
  for (auto &C : R.Counters)
    CounterView.push_back(C.get());
  CountersPtr.store(CounterView.data(), std::memory_order_release);
  CountersN.store(static_cast<unsigned>(CounterView.size()),
                  std::memory_order_release);
  return Base;
}

extern "C" void igen_tier_count_check(unsigned Region) {
  if (RegionCounters *C = counters(Region))
    C->Checks.fetch_add(1, std::memory_order_relaxed);
}

extern "C" void igen_tier_count_escalate(unsigned Region) {
  if (RegionCounters *C = counters(Region))
    C->Escalations.fetch_add(1, std::memory_order_relaxed);
}

extern "C" void igen_tier_count_pruned(unsigned Region) {
  if (RegionCounters *C = counters(Region))
    C->Pruned.fetch_add(1, std::memory_order_relaxed);
}

extern "C" double igen_tier_width_threshold(void) {
  EnvCache &C = envCache();
  if (!C.WidthValid.load(std::memory_order_acquire)) {
    std::string W;
    double V = igen::tier::widthFromSpec(std::getenv("IGEN_TIER_WIDTH"), &W);
    if (!W.empty())
      std::call_once(WidthWarnOnce, [&] {
        std::fprintf(stderr, "%s\n", W.c_str());
      });
    C.Width = V;
    C.WidthValid.store(true, std::memory_order_release);
  }
  return C.Width;
}

extern "C" int igen_tier_max(void) {
  EnvCache &C = envCache();
  if (!C.MaxValid.load(std::memory_order_acquire)) {
    std::string W;
    int V = igen::tier::maxTierFromSpec(std::getenv("IGEN_TIER_MAX"), &W);
    if (!W.empty())
      std::call_once(MaxWarnOnce, [&] {
        std::fprintf(stderr, "%s\n", W.c_str());
      });
    C.Max = V;
    C.MaxValid.store(true, std::memory_order_release);
  }
  return C.Max;
}

extern "C" void igen_tier_env_refresh(void) {
  EnvCache &C = envCache();
  C.WidthValid.store(false, std::memory_order_release);
  C.MaxValid.store(false, std::memory_order_release);
}

extern "C" void igen_tier_reset(void) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &C : R.Counters) {
    C->Checks.store(0, std::memory_order_relaxed);
    C->Escalations.store(0, std::memory_order_relaxed);
    C->Pruned.store(0, std::memory_order_relaxed);
  }
}

std::vector<igen::tier::RegionReport> igen::tier::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<RegionReport> Out;
  Out.reserve(R.Counters.size());
  for (const Registry::ModuleInfo &M : R.Modules) {
    for (unsigned I = 0; I < M.N; ++I) {
      RegionReport Rep;
      Rep.Id = M.Base + I;
      Rep.Module = M.Name;
      Rep.Func = M.Regions[I].func ? M.Regions[I].func : "";
      Rep.Line = M.Regions[I].line;
      Rep.Movable = M.Regions[I].movable != 0;
      const RegionCounters &C = *R.Counters[M.Base + I];
      Rep.Checks = C.Checks.load(std::memory_order_relaxed);
      Rep.Escalations = C.Escalations.load(std::memory_order_relaxed);
      Rep.Pruned = C.Pruned.load(std::memory_order_relaxed);
      Out.push_back(std::move(Rep));
    }
  }
  return Out;
}

extern "C" void igen_tier_report(FILE *Out) {
  if (!Out)
    Out = stderr;
  std::vector<igen::tier::RegionReport> Regions = igen::tier::snapshot();
  std::fprintf(Out, "%-4s %-24s %-8s %10s %10s %10s\n", "id", "region",
               "movable", "checks", "escalated", "pruned");
  for (const igen::tier::RegionReport &R : Regions)
    std::fprintf(Out, "%-4u %-24s %-8s %10llu %10llu %10llu\n", R.Id,
                 R.Func.c_str(), R.Movable ? "yes" : "no",
                 static_cast<unsigned long long>(R.Checks),
                 static_cast<unsigned long long>(R.Escalations),
                 static_cast<unsigned long long>(R.Pruned));
}
