//===- Profile.cpp - Interval-width profiler runtime ----------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include "interval/Rounding.h"
#include "support/JsonWriter.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace {

//===----------------------------------------------------------------------===//
// Order-independent accumulation of relative widths
//===----------------------------------------------------------------------===//

/// Deterministic fixed-point sum of non-negative doubles bounded by a
/// small constant (relative widths never exceed ~2). Each value is
/// truncated to a multiple of 2^-80 — far below any meaningful relative
/// width, so the mean loses nothing observable — and accumulated into a
/// single 128-bit integer. Quantization is a pure function of the value
/// and integer addition is commutative and associative, so the
/// thread-buffer merge is bit-identical regardless of how records were
/// partitioned across threads; a double-rounding accumulator would
/// depend on merge order. One two-word add per insertion also keeps the
/// flush loop's dependency chain short, where an earlier multiword
/// exact accumulator dominated the profiling overhead.
///
/// Capacity: values < 4 are < 2^82 units; 128 bits leave 2^46
/// insertions of headroom before overflow.
class RelwSum {
public:
  void clear() { V = 0; }

  /// Accumulates \p X truncated to units of 2^-80. Requires
  /// 0 <= X < 4 and X finite.
  void add(double X) {
    uint64_t Bits;
    std::memcpy(&Bits, &X, sizeof(Bits));
    int Exp = static_cast<int>((Bits >> 52) & 0x7FF);
    uint64_t Mant = Bits & ((uint64_t{1} << 52) - 1);
    if (Exp != 0)
      Mant |= uint64_t{1} << 52; // normal: value = Mant * 2^(Exp-1075)
    else
      Exp = 1; // subnormal: same scale, no implicit bit
    // Units of 2^-80: Mant * 2^(Exp-1075+80). Right shifts truncate;
    // anything below one unit (X < ~2^-108) contributes zero.
    int Sh = Exp - 995;
    if (Sh >= 0)
      V += static_cast<unsigned __int128>(Mant) << Sh;
    else if (Sh > -64)
      V += Mant >> -Sh;
  }

  /// Folds another sum into this one (integer add).
  void merge(const RelwSum &O) { V += O.V; }

  /// Nearest double of the represented value. Deterministic: a pure
  /// function of the integer state.
  double toDouble() const {
    return std::ldexp(static_cast<double>(static_cast<uint64_t>(V >> 64)),
                      64 - 80) +
           std::ldexp(static_cast<double>(static_cast<uint64_t>(V)), -80);
  }

private:
  unsigned __int128 V = 0;
};

//===----------------------------------------------------------------------===//
// Per-thread buffers and the global registry
//===----------------------------------------------------------------------===//

struct SiteStats {
  uint64_t Count = 0;
  uint64_t NanCount = 0;
  uint64_t WholeCount = 0;
  uint64_t GrowthBits = 0;
  double MaxRelW = 0.0;
  /// Worst out-vs-in growth as a binade-exponent difference (the
  /// reported ratio is 2^MaxGrowthE); INT_MIN = none attributable.
  int MaxGrowthE = INT_MIN;
  RelwSum SumRelW;

  SiteStats() { SumRelW.clear(); }

  void clear() { *this = SiteStats(); }

  /// All fields are integer sums, integer/floating maxima or
  /// order-independent fixed-point sums: merging is commutative and
  /// associative, hence deterministic.
  void merge(const SiteStats &O) {
    Count += O.Count;
    NanCount += O.NanCount;
    WholeCount += O.WholeCount;
    GrowthBits += O.GrowthBits;
    MaxRelW = std::fmax(MaxRelW, O.MaxRelW);
    MaxGrowthE = std::max(MaxGrowthE, O.MaxGrowthE);
    SumRelW.merge(O.SumRelW);
  }
};

struct ThreadBuf {
  igen::prof::detail::RecordRing Ring;
  std::vector<SiteStats> Stats;
};

struct Registry {
  struct ModuleInfo {
    std::string Name, Source;
    uint32_t FirstSite = 0, NumSites = 0;
  };
  struct SiteInfo {
    std::string Op, Func, Text;
    uint32_t Line = 0, Col = 0, Module = 0;
  };

  std::mutex Mu;
  std::vector<ModuleInfo> Modules;
  std::vector<SiteInfo> Sites;
  /// Owns every thread's buffer: buffers outlive their threads so late
  /// merges stay valid, and they are never removed (only reset).
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
  bool ExitHookInstalled = false;

  /// Leaked on purpose: records and the atexit report hook may run during
  /// static destruction, after a function-local static would be gone.
  static Registry &get() {
    static Registry *R = new Registry;
    return *R;
  }
};

thread_local ThreadBuf *TlsBuf = nullptr;

ThreadBuf *attachThreadBufLocked(Registry &R) {
  R.Bufs.push_back(std::make_unique<ThreadBuf>());
  TlsBuf = R.Bufs.back().get();
  TlsBuf->Stats.resize(R.Sites.size());
  igen::prof::detail::Tls.Ring = &TlsBuf->Ring;
  return TlsBuf;
}

/// The statistics fold for one queued record (registry lock held, buffer
/// sized). Rounding-mode sensitive: callers pin round-to-nearest around
/// the whole batch so a record's contribution does not depend on which
/// flush processed it.
void recordInto(SiteStats &S, int InRelWE, double OutLo, double OutHi) {
  double W = OutHi - OutLo;
  // One branch classifies every escape: W is NaN when an endpoint is NaN
  // (or both are the same infinity), infinite when the result is
  // unbounded, negative only for inverted (unsound) enclosures.
  if (__builtin_expect(!(W >= 0.0) || W == HUGE_VAL, 0)) {
    if (std::isnan(OutLo) || std::isnan(OutHi))
      ++S.NanCount;
    else
      ++S.WholeCount; // unbounded (or inverted, impossible if sound)
    return;
  }
  ++S.Count;
  if (W == 0.0)
    return; // point result: relative width 0 contributes nothing
  // W finite and nonzero implies both endpoints finite, Mag >= W/2 > 0.
  double Mag = std::fmax(std::fabs(OutLo), std::fabs(OutHi));
  double RelW = W / Mag;
  if (RelW > S.MaxRelW)
    S.MaxRelW = RelW;
  S.SumRelW.add(RelW);
  // Growth attribution: how many binary orders of magnitude wider (in
  // relative terms) the result is than the widest input, at binade
  // resolution (integer exponent arithmetic; no divisions). Point/NaN
  // inputs (RELW_NONE) have no base width to grow from; unbounded
  // inputs (RELW_WHOLE) cannot be blamed for downstream width.
  if (InRelWE > IGEN_PROF_RELW_NONE && InRelWE < IGEN_PROF_RELW_WHOLE) {
    int D = (igen_prof_ilogb_(W) - igen_prof_ilogb_(Mag)) - InRelWE;
    if (D > S.MaxGrowthE)
      S.MaxGrowthE = D;
    if (D > 0)
      S.GrowthBits += static_cast<uint64_t>(D);
  }
}

/// Drains \p B's ring into its per-site statistics. Requires \p R's lock
/// to be held; safe for both the owning thread (ring full) and a
/// reporting thread (idle ring residue at snapshot/report time).
void flushRingLocked(ThreadBuf *B, Registry &R) {
  igen::prof::detail::RecordRing &Ring = B->Ring;
  if (Ring.N == 0)
    return;
  igen::RoundNearestScope RN;
  for (uint32_t I = 0; I < Ring.N; ++I) {
    const igen::prof::detail::RingEntry &E = Ring.E[I];
    if (E.Site >= B->Stats.size()) {
      if (E.Site >= R.Sites.size())
        continue; // unregistered site: drop
      B->Stats.resize(R.Sites.size());
    }
    // Widest input's relative-width binade exponent, from the raw
    // {negated lo, hi} operand pairs the wrapper stashed.
    int InE = IGEN_PROF_RELW_NONE;
    for (uint32_t K = 0; K < E.NIn; ++K) {
      int Ek = igen_prof_relw_e(-E.V[2 * K + 2], E.V[2 * K + 3]);
      if (Ek > InE)
        InE = Ek;
    }
    recordInto(B->Stats[E.Site], InE, -E.V[0], E.V[1]);
  }
  Ring.N = 0;
}

void atExitReport() {
  const char *Path = std::getenv("IGEN_PROF_OUT");
  if (!Path || !*Path)
    return;
  if (igen_prof_report_json(Path) != 0)
    std::fprintf(stderr, "igen: cannot write IGEN_PROF_OUT='%s'\n", Path);
}

} // namespace

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

namespace igen::prof::detail {

thread_local TlsView Tls;

void recordSlow(const RingEntry &E) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> L(R.Mu);
  ThreadBuf *B = TlsBuf;
  if (!B)
    B = attachThreadBufLocked(R);
  flushRingLocked(B, R);
  B->Ring.E[B->Ring.N++] = E;
}

} // namespace igen::prof::detail

//===----------------------------------------------------------------------===//
// C API
//===----------------------------------------------------------------------===//

extern "C" unsigned igen_prof_register_sites(const char *Module,
                                             const char *SourceFile,
                                             const igen_prof_site *Sites,
                                             unsigned N) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> L(R.Mu);
  unsigned Base = static_cast<unsigned>(R.Sites.size());
  Registry::ModuleInfo M;
  M.Name = Module ? Module : "";
  M.Source = SourceFile ? SourceFile : "";
  M.FirstSite = Base;
  M.NumSites = N;
  uint32_t ModIdx = static_cast<uint32_t>(R.Modules.size());
  R.Modules.push_back(std::move(M));
  for (unsigned I = 0; I < N; ++I) {
    Registry::SiteInfo S;
    S.Op = Sites[I].op ? Sites[I].op : "";
    S.Func = Sites[I].func ? Sites[I].func : "";
    S.Text = Sites[I].text ? Sites[I].text : "";
    S.Line = Sites[I].line;
    S.Col = Sites[I].col;
    S.Module = ModIdx;
    R.Sites.push_back(std::move(S));
  }
  if (!R.ExitHookInstalled) {
    R.ExitHookInstalled = true;
    std::atexit(atExitReport);
  }
  return Base;
}

extern "C" void igen_prof_reset(void) {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> L(R.Mu);
  for (auto &B : R.Bufs) {
    B->Ring.N = 0;
    for (SiteStats &S : B->Stats)
      S.clear();
  }
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

namespace igen::prof {

std::vector<SiteReport> snapshot() {
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> L(R.Mu);
  // Pin the rounding mode: snapshot() may be called from inside an upward
  // rounding scope (kernel code) or outside one; the derived means and
  // ratios must not depend on the caller's FPU state.
  RoundNearestScope RN;

  // Drain every thread's queued-but-unfolded records first. The contract
  // (as for reset) is that no thread records concurrently; idle worker
  // threads may well hold ring residue from their last task.
  for (const auto &B : R.Bufs)
    flushRingLocked(B.get(), R);

  size_t N = R.Sites.size();
  std::vector<SiteStats> Merged(N);
  for (const auto &B : R.Bufs)
    for (size_t I = 0; I < B->Stats.size() && I < N; ++I)
      Merged[I].merge(B->Stats[I]);

  std::vector<SiteReport> Out(N);
  for (size_t I = 0; I < N; ++I) {
    const Registry::SiteInfo &Info = R.Sites[I];
    SiteReport &S = Out[I];
    S.Id = static_cast<uint32_t>(I);
    S.Module = R.Modules[Info.Module].Name;
    S.Op = Info.Op;
    S.Func = Info.Func;
    S.Text = Info.Text;
    S.Line = Info.Line;
    S.Col = Info.Col;
    S.Count = Merged[I].Count;
    S.NanCount = Merged[I].NanCount;
    S.WholeCount = Merged[I].WholeCount;
    S.GrowthBits = Merged[I].GrowthBits;
    S.MaxRelW = Merged[I].MaxRelW;
    S.MaxGrowth = Merged[I].MaxGrowthE == INT_MIN
                      ? 0.0
                      : std::ldexp(1.0, Merged[I].MaxGrowthE);
    S.MeanRelW = S.Count == 0
                     ? 0.0
                     : Merged[I].SumRelW.toDouble() /
                           static_cast<double>(S.Count);
  }
  // Blowup attribution order: total contributed growth first, busiest
  // site breaking ties, site ID as the final deterministic tiebreak.
  std::sort(Out.begin(), Out.end(),
            [](const SiteReport &A, const SiteReport &B) {
              if (A.GrowthBits != B.GrowthBits)
                return A.GrowthBits > B.GrowthBits;
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Id < B.Id;
            });
  return Out;
}

std::string reportText() {
  std::vector<SiteReport> Sites = snapshot();
  std::string Out;
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "igen precision profile: %zu site(s)\n"
                "%5s %-10s %10s %10s %10s %10s %8s %7s  %s\n",
                Sites.size(), "rank", "op", "count", "mean-relw",
                "max-relw", "max-growth", "grw-bits", "escapes",
                "where");
  Out += Buf;
  unsigned Rank = 0;
  for (const SiteReport &S : Sites) {
    ++Rank;
    std::snprintf(Buf, sizeof(Buf),
                  "%5u %-10s %10llu %10.3e %10.3e %10.3e %8llu %7llu  "
                  "%s:%u:%u (%s) %s\n",
                  Rank, S.Op.c_str(),
                  static_cast<unsigned long long>(S.Count), S.MeanRelW,
                  S.MaxRelW, S.MaxGrowth,
                  static_cast<unsigned long long>(S.GrowthBits),
                  static_cast<unsigned long long>(S.NanCount +
                                                  S.WholeCount),
                  S.Module.c_str(), S.Line, S.Col, S.Func.c_str(),
                  S.Text.c_str());
    Out += Buf;
  }
  return Out;
}

std::string reportJson() {
  std::vector<SiteReport> Sites = snapshot();
  Registry &R = Registry::get();
  igen::JsonWriter J;
  J.beginObject();
  J.field("schema_version", 1);
  J.field("report", "igen_profile");
  {
    std::lock_guard<std::mutex> L(R.Mu);
    J.key("modules");
    J.beginArray();
    for (const Registry::ModuleInfo &M : R.Modules) {
      J.beginObject();
      J.field("module", M.Name);
      J.field("source_file", M.Source);
      J.field("first_site", M.FirstSite);
      J.field("num_sites", M.NumSites);
      J.endObject();
    }
    J.endArray();
  }
  J.key("sites");
  J.beginArray();
  unsigned Rank = 0;
  for (const SiteReport &S : Sites) {
    J.beginObject();
    J.field("rank", ++Rank);
    J.field("id", S.Id);
    J.field("module", S.Module);
    J.field("op", S.Op);
    J.field("func", S.Func);
    J.field("line", S.Line);
    J.field("col", S.Col);
    J.field("text", S.Text);
    J.field("count", S.Count);
    J.field("nan_escapes", S.NanCount);
    J.field("whole_escapes", S.WholeCount);
    J.field("growth_bits", S.GrowthBits);
    J.field("max_rel_width", S.MaxRelW);
    J.field("mean_rel_width", S.MeanRelW);
    J.field("max_growth_ratio", S.MaxGrowth);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  return J.take();
}

} // namespace igen::prof

extern "C" void igen_prof_report(FILE *OutFile) {
  std::string Text = igen::prof::reportText();
  std::fputs(Text.c_str(), OutFile ? OutFile : stderr);
}

extern "C" int igen_prof_report_json(const char *Path) {
  std::string Doc = igen::prof::reportJson();
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    return 1;
  bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  return (std::fclose(F) == 0 && Ok) ? 0 : 1;
}
