//===- ServeCounters.h - Served-evaluation profile counters -----*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters for the serve-mode execution tier, kept in the
/// profile subsystem next to the precision profiler so one place owns
/// "what did this process execute". The daemon's stats endpoint reports
/// them; tests assert on them; they are monotonic and thread-safe.
///
/// Header-only (inline atomics), mirroring harden/FenvSentinel.h, so
/// the server library needs no link-time dependency on igen_profile.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_PROFILE_SERVECOUNTERS_H
#define IGEN_PROFILE_SERVECOUNTERS_H

#include <atomic>
#include <cstdint>

namespace igen::profile {

namespace detail {
inline std::atomic<uint64_t> ServeEvals{0};
inline std::atomic<uint64_t> ServeEvalErrors{0};
inline std::atomic<uint64_t> ServeEvalsPoisoned{0};
inline std::atomic<uint64_t> ServeEvalOps{0};
inline std::atomic<uint64_t> ServeCompiles{0};
inline std::atomic<uint64_t> ServeCompileErrors{0};
} // namespace detail

/// One served evaluation finished; \p Ops interval operations executed,
/// \p Err it failed with a typed error, \p Poisoned its results were
/// replaced by whole intervals after a fenv violation.
inline void serveNoteEval(uint64_t Ops, bool Err, bool Poisoned) {
  detail::ServeEvals.fetch_add(1, std::memory_order_relaxed);
  detail::ServeEvalOps.fetch_add(Ops, std::memory_order_relaxed);
  if (Err)
    detail::ServeEvalErrors.fetch_add(1, std::memory_order_relaxed);
  if (Poisoned)
    detail::ServeEvalsPoisoned.fetch_add(1, std::memory_order_relaxed);
}

/// One served compile transaction finished (hit or cold); \p Err it
/// rolled back with diagnostics.
inline void serveNoteCompile(bool Err) {
  detail::ServeCompiles.fetch_add(1, std::memory_order_relaxed);
  if (Err)
    detail::ServeCompileErrors.fetch_add(1, std::memory_order_relaxed);
}

struct ServeCounterSnapshot {
  uint64_t Evals;
  uint64_t EvalErrors;
  uint64_t EvalsPoisoned;
  uint64_t EvalOps;
  uint64_t Compiles;
  uint64_t CompileErrors;
};

inline ServeCounterSnapshot serveCounters() {
  return {detail::ServeEvals.load(std::memory_order_relaxed),
          detail::ServeEvalErrors.load(std::memory_order_relaxed),
          detail::ServeEvalsPoisoned.load(std::memory_order_relaxed),
          detail::ServeEvalOps.load(std::memory_order_relaxed),
          detail::ServeCompiles.load(std::memory_order_relaxed),
          detail::ServeCompileErrors.load(std::memory_order_relaxed)};
}

inline void resetServeCounters() {
  detail::ServeEvals.store(0, std::memory_order_relaxed);
  detail::ServeEvalErrors.store(0, std::memory_order_relaxed);
  detail::ServeEvalsPoisoned.store(0, std::memory_order_relaxed);
  detail::ServeEvalOps.store(0, std::memory_order_relaxed);
  detail::ServeCompiles.store(0, std::memory_order_relaxed);
  detail::ServeCompileErrors.store(0, std::memory_order_relaxed);
}

} // namespace igen::profile

#endif // IGEN_PROFILE_SERVECOUNTERS_H
