//===- Profile.h - Interval-width profiler runtime --------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime side of the precision-observability subsystem. Code emitted by
/// `igen --profile` calls `iap_*` wrappers (src/profile/igen_prof.h) that
/// feed every executed interval operation into this collector, keyed by a
/// static *site ID*: an index into the compile-time site table the
/// transformer embedded into the generated translation unit (op name,
/// source line/column, expression text).
///
/// Collection is per-thread (TLS buffers registered with a global
/// registry) and merge is deterministic: every per-site statistic is
/// either an integer sum, an integer/floating max, or an
/// order-independent fixed-point sum, so the merged result is
/// bit-identical no matter how the work was split across IGEN_THREADS
/// (the same contract as the batched reductions).
///
/// Per site the profiler tracks: executed-op count, max and mean relative
/// width of the produced enclosure, the worst width-growth ratio
/// (out-width relative to the widest input, at binade resolution: a power
/// of two), the total "growth bits" (sum of positive binade-exponent
/// differences, the blowup-attribution score), and NaN /
/// non-finite-width escapes. The per-operation path is append-only: the
/// wrappers store the raw operand bytes into a per-thread ring
/// (RecordRing) and all derived math — relative widths, binade
/// exponents, growth — happens in the batched flush, under a pinned
/// rounding mode. That keeps the instrumentation overhead low and the
/// statistics independent of the kernel's FPU state.
///
/// Reports: igen_prof_report() prints a ranked text table;
/// igen_prof_report_json() writes the stable-schema JSON document
/// (schema_version 1); setting IGEN_PROF_OUT=path.json writes the JSON
/// report automatically at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_PROFILE_PROFILE_H
#define IGEN_PROFILE_PROFILE_H

#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

/// Sentinel "relative-width binade exponents" (see igen_prof_relw_e):
/// RELW_NONE marks a point / NaN input (no width to grow from),
/// RELW_WHOLE an input of unbounded width. Both are excluded from
/// growth attribution.
#define IGEN_PROF_RELW_NONE (-2147483647 - 1)
#define IGEN_PROF_RELW_WHOLE 2147483647

/// Binade exponent (floor(log2 x)) of a positive finite double, branch
/// free for normals and exact for subnormals; returns 1024 for +inf.
static inline int igen_prof_ilogb_(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  int E = static_cast<int>((B >> 52) & 0x7FF);
  if (E != 0)
    return E - 1023;
  /* Subnormal: X = mant * 2^-1074, mant != 0 since X > 0. */
  return -1074 + (63 - __builtin_clzll(B & 0xFFFFFFFFFFFFFull));
}

/// Binade exponent of the relative width (hi-lo)/max(|lo|,|hi|) of an
/// enclosure, computed purely with integer exponent arithmetic (within
/// one binade of ilogb of the true ratio). IGEN_PROF_RELW_NONE for
/// point, inverted, or NaN-endpoint inputs; IGEN_PROF_RELW_WHOLE for
/// unbounded width.
static inline int igen_prof_relw_e(double Lo, double Hi) {
  double W = Hi - Lo;
  if (!(W > 0.0))
    return IGEN_PROF_RELW_NONE;
  int Ew = igen_prof_ilogb_(W);
  if (Ew > 1023)
    return IGEN_PROF_RELW_WHOLE;
  double ALo = std::fabs(Lo), AHi = std::fabs(Hi);
  return Ew - igen_prof_ilogb_(ALo < AHi ? AHi : ALo);
}

#ifdef __cplusplus
extern "C" {
#endif

/// One row of the compile-time site table embedded in generated code.
/// Field order matters: the transformer emits positional initializers.
typedef struct igen_prof_site {
  const char *op;   /* runtime op name: "mul", "fma_pu", "sub", ... */
  const char *func; /* enclosing source function */
  const char *text; /* unparsed source expression */
  unsigned line;    /* 1-based source line (0 = unknown) */
  unsigned col;     /* 1-based source column */
} igen_prof_site;

/// Registers a module's site table and returns the global base offset its
/// sites were assigned (generated code adds this base to its local site
/// indices). The table memory must stay valid for the process lifetime
/// (generated code uses static arrays). Thread-safe; typically runs from
/// a static initializer.
unsigned igen_prof_register_sites(const char *module, const char *source_file,
                                  const igen_prof_site *sites, unsigned n);

/// Prints the ranked text report to \p out (stderr when null).
void igen_prof_report(FILE *out);

/// Writes the JSON report (schema_version 1) to \p path.
/// Returns 0 on success, nonzero on I/O failure.
int igen_prof_report_json(const char *path);

/// Clears all collected statistics (registered sites are kept). Must not
/// race with concurrently recording threads.
void igen_prof_reset(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#ifdef __cplusplus

#include <string>
#include <vector>

namespace igen::prof::detail {

/// One raw recorded operation, queued on the calling thread's ring and
/// folded into per-site statistics in batches (see RecordRing). V holds
/// the untouched 16-byte interval representations ({negated lo, hi}, the
/// shared layout of the scalar and SSE runtimes): V[0..1] is the result,
/// V[2*k+2 .. 2*k+3] input k. Derived quantities (relative widths,
/// binade exponents) are computed at flush time, not on the kernel path.
struct RingEntry {
  double V[8];
  uint32_t Site;
  uint32_t NIn;
};

/// Per-thread staging buffer for recorded operations. The record fast
/// path is append-only — raw vector stores of the operands, no FP math,
/// no divisions, no read-modify-write of statistics. The expensive fold
/// into per-site statistics (relative width, fixed-point sum, growth
/// attribution) runs once per Cap records, under a pinned rounding mode,
/// which both amortizes its cost and makes the derived statistics
/// independent of the kernel's FPU state.
struct RecordRing {
  static constexpr uint32_t Cap = 256;
  uint32_t N = 0;
  RingEntry E[Cap];
};

/// The calling thread's view of its own ring; null until the first
/// record attaches the thread to the registry.
struct TlsView {
  RecordRing *Ring = nullptr;
};

extern thread_local TlsView Tls;

/// Out-of-line path: attaches this thread's buffer to the registry on
/// first use, flushes the full ring into per-site statistics, then
/// queues \p E.
void recordSlow(const RingEntry &E);

/// Returns the next free ring slot for the calling thread (bumping the
/// fill count), or null when the ring is full / the thread has not
/// attached yet — callers then fill a stack-local entry and hand it to
/// recordSlow(). Fully inline: an out-of-line call here would force the
/// caller to treat every live xmm/ymm register as clobbered around each
/// instrumented op, which measurably dominates the profiling overhead.
inline RingEntry *ringSlot() {
  RecordRing *R = Tls.Ring;
  if (!R || R->N >= RecordRing::Cap)
    return nullptr;
  return &R->E[R->N++];
}

} // namespace igen::prof::detail

namespace igen::prof {

/// Merged per-site statistics, in blowup-attribution rank order.
struct SiteReport {
  uint32_t Id = 0;
  std::string Module;
  std::string Op;
  std::string Func;
  std::string Text;
  uint32_t Line = 0;
  uint32_t Col = 0;

  uint64_t Count = 0;       ///< executed ops recorded at this site
  uint64_t NanCount = 0;    ///< results with a NaN endpoint
  uint64_t WholeCount = 0;  ///< results with non-finite width
  uint64_t GrowthBits = 0;  ///< sum of positive exponent growth (rank key)
  double MaxRelW = 0.0;     ///< max relative width of the output
  double MeanRelW = 0.0;    ///< mean relative width of the output
  /// Worst out-relw / in-relw ratio, at binade resolution (an exact
  /// power of two); 0 when no growth was attributable.
  double MaxGrowth = 0.0;
};

/// Deterministically merges every thread buffer and returns all
/// registered sites ranked by contributed growth: descending GrowthBits,
/// then descending Count, then ascending site ID. Bit-identical across
/// IGEN_THREADS for the same recorded multiset of operations.
std::vector<SiteReport> snapshot();

/// The text report as a string (what igen_prof_report prints).
std::string reportText();

/// The JSON report document (schema_version 1).
std::string reportJson();

} // namespace igen::prof

#endif // __cplusplus

#endif // IGEN_PROFILE_PROFILE_H
