//===- igen_tier.h - Tier-escalation API for generated code -----*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive precision-tiering predicate as seen by igen-generated
/// translation units (emitted when compiling with `igen --tier`). Include
/// AFTER the runtime header (interval/igen_lib.h): the helpers are
/// written against the configuration-selected f64i typedef that
/// igen_lib.h brings into scope.
///
/// The emitted checks are:
///
///   igen_tier_escalate(r, id)        at region exit of a *movable*
///                                    region. Evaluates the blowup
///                                    predicate on the f64i region result
///                                    r; returns 1 iff the caller must
///                                    re-execute the region's ddi clone
///                                    (predicate fired and IGEN_TIER_MAX
///                                    permits escalation).
///   igen_tier_note_immovable(r, id)  at region exit of a region whose
///                                    result provably cannot improve at a
///                                    higher tier. Only counts: a fired
///                                    predicate increments the region's
///                                    "pruned" counter instead of
///                                    triggering a rerun.
///
/// The predicate fires when the result escaped to a non-finite or NaN
/// endpoint (whole-interval escape) or its relative width
/// (hi-lo)/max(|lo|,|hi|) exceeds the IGEN_TIER_WIDTH threshold. It runs
/// under the kernel's upward rounding mode; the division rounding is
/// conservative in the escalation direction and the threshold is a
/// heuristic, not a soundness boundary — both the f64i result and the
/// narrowed ddi rerun are sound enclosures whatever the predicate does.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_PROFILE_IGEN_TIER_H
#define IGEN_PROFILE_IGEN_TIER_H

#include "profile/TierRuntime.h"

#include <cmath>

#if defined(IGEN_F64I_SCALAR)
namespace igen_tier_cfg_scalar {
#else
namespace igen_tier_cfg_simd {
#endif

/// The raw blowup predicate: whole-interval escape or relative width
/// above \p Threshold. NaN endpoints (sound "unknown") always fire.
inline int igen_tier_blowup(f64i R, double Threshold) {
  double Lo = ia_inf_f64(R), Hi = ia_sup_f64(R);
  double W = Hi - Lo;
  if (!(W >= 0.0))
    return 1; // NaN endpoint, or inverted (defensive): escalate
  if (std::isinf(Lo) || std::isinf(Hi))
    return 1; // whole-interval escape
  double ALo = std::fabs(Lo), AHi = std::fabs(Hi);
  double Denom = ALo < AHi ? AHi : ALo;
  double Rel = Denom > 0.0 ? W / Denom : W;
  return Rel > Threshold ? 1 : 0;
}

/// Region-exit check for a movable region: 1 iff the caller must rerun
/// the region at the ddi tier.
inline int igen_tier_escalate(f64i R, unsigned Region) {
  igen_tier_count_check(Region);
  if (!igen_tier_blowup(R, igen_tier_width_threshold()))
    return 0;
  if (igen_tier_max() < 2)
    return 0; // escalation disabled: keep the (sound) f64i result
  igen_tier_count_escalate(Region);
  return 1;
}

/// Region-exit check for an immovable region: never reruns, but records
/// when the predicate would have fired so reports show the pruning.
inline void igen_tier_note_immovable(f64i R, unsigned Region) {
  igen_tier_count_check(Region);
  if (igen_tier_blowup(R, igen_tier_width_threshold()))
    igen_tier_count_pruned(Region);
}

#if defined(IGEN_F64I_SCALAR)
} // namespace igen_tier_cfg_scalar
using namespace igen_tier_cfg_scalar;
#else
} // namespace igen_tier_cfg_simd
using namespace igen_tier_cfg_simd;
#endif

#endif // IGEN_PROFILE_IGEN_TIER_H
