//===- igen_prof.h - Instrumented interval runtime wrappers -----*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iap_* wrappers emitted by `igen --profile`: each one is the
/// corresponding ia_* runtime operation plus one igen_prof_record() call
/// carrying the operation's static site ID. The enclosure computation is
/// untouched — the wrapped result is the exact ia_* result, so profiled
/// and unprofiled code always produce identical intervals (the exec tests
/// assert this bit-for-bit).
///
/// Include after interval/igen_lib.h (the transformer emits both). Like
/// the runtime itself the wrappers live in a configuration-specific
/// namespace so one binary can link scalar- and SIMD-backed profiled
/// translation units without ODR violations.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_PROFILE_IGEN_PROF_H
#define IGEN_PROFILE_IGEN_PROF_H

#include "profile/Profile.h"

#include <cmath>

#if defined(IGEN_F64I_SCALAR)
namespace igen_prof_cfg_scalar {
#else
namespace igen_prof_cfg_simd {
#endif

//===----------------------------------------------------------------------===//
// Recording helpers
//===----------------------------------------------------------------------===//

/// Stores an operand's raw {negated lo, hi} pair into a ring-entry slot.
/// For f64i this is the in-memory representation verbatim (one 16-byte
/// copy the compiler lowers to a vector store); double-double operands
/// are collapsed to their outer f64 hull first.
inline void iap_stash(double *Slot, f64i X) {
  std::memcpy(Slot, &X, 2 * sizeof(double));
}
inline void iap_stash(double *Slot, ddi X) {
  igen::Interval H = igen_detail::ddiToScalar(X).outerHull();
  Slot[0] = H.NegLo;
  Slot[1] = H.Hi;
}

/// Queues one executed operation (result \p R, then each input) on the
/// calling thread's ring; falls back to the out-of-line slow path when
/// the ring is full or the thread is not attached yet.
template <typename T>
inline void iap_push(unsigned Site, T R, T A) {
  namespace pd = igen::prof::detail;
  pd::RingEntry Local;
  pd::RingEntry *S = pd::ringSlot();
  pd::RingEntry *E = S ? S : &Local;
  iap_stash(E->V + 0, R);
  iap_stash(E->V + 2, A);
  E->Site = Site;
  E->NIn = 1;
  if (!S)
    pd::recordSlow(Local);
}
template <typename T>
inline void iap_push(unsigned Site, T R, T A, T B) {
  namespace pd = igen::prof::detail;
  pd::RingEntry Local;
  pd::RingEntry *S = pd::ringSlot();
  pd::RingEntry *E = S ? S : &Local;
  iap_stash(E->V + 0, R);
  iap_stash(E->V + 2, A);
  iap_stash(E->V + 4, B);
  E->Site = Site;
  E->NIn = 2;
  if (!S)
    pd::recordSlow(Local);
}
template <typename T>
inline void iap_push(unsigned Site, T R, T A, T B, T C) {
  namespace pd = igen::prof::detail;
  pd::RingEntry Local;
  pd::RingEntry *S = pd::ringSlot();
  pd::RingEntry *E = S ? S : &Local;
  iap_stash(E->V + 0, R);
  iap_stash(E->V + 2, A);
  iap_stash(E->V + 4, B);
  iap_stash(E->V + 6, C);
  E->Site = Site;
  E->NIn = 3;
  if (!S)
    pd::recordSlow(Local);
}

//===----------------------------------------------------------------------===//
// Wrapper generation
//===----------------------------------------------------------------------===//

#define IGEN_PROF_WRAP1(NAME, T)                                             \
  inline T iap_##NAME(unsigned Site, T A) {                                  \
    T R = ia_##NAME(A);                                                      \
    iap_push(Site, R, A);                                                    \
    return R;                                                                \
  }

#define IGEN_PROF_WRAP2(NAME, T)                                             \
  inline T iap_##NAME(unsigned Site, T A, T B) {                             \
    T R = ia_##NAME(A, B);                                                   \
    iap_push(Site, R, A, B);                                                 \
    return R;                                                                \
  }

#define IGEN_PROF_WRAP3(NAME, T)                                             \
  inline T iap_##NAME(unsigned Site, T A, T B, T C) {                        \
    T R = ia_##NAME(A, B, C);                                                \
    iap_push(Site, R, A, B, C);                                              \
    return R;                                                                \
  }

// Double-precision scalar ops (everything the transformer instruments).
IGEN_PROF_WRAP2(add_f64, f64i)
IGEN_PROF_WRAP2(sub_f64, f64i)
IGEN_PROF_WRAP2(mul_f64, f64i)
IGEN_PROF_WRAP2(div_f64, f64i)
IGEN_PROF_WRAP1(neg_f64, f64i)
IGEN_PROF_WRAP2(mul_pp_f64, f64i)
IGEN_PROF_WRAP2(mul_pn_f64, f64i)
IGEN_PROF_WRAP2(mul_nn_f64, f64i)
IGEN_PROF_WRAP2(mul_pu_f64, f64i)
IGEN_PROF_WRAP2(mul_nu_f64, f64i)
IGEN_PROF_WRAP2(div_p_f64, f64i)
IGEN_PROF_WRAP2(div_n_f64, f64i)
IGEN_PROF_WRAP3(fma_f64, f64i)
IGEN_PROF_WRAP3(fma_pp_f64, f64i)
IGEN_PROF_WRAP3(fma_pn_f64, f64i)
IGEN_PROF_WRAP3(fma_nn_f64, f64i)
IGEN_PROF_WRAP3(fma_pu_f64, f64i)
IGEN_PROF_WRAP3(fma_nu_f64, f64i)
IGEN_PROF_WRAP1(sqrt_f64, f64i)
IGEN_PROF_WRAP1(abs_f64, f64i)
IGEN_PROF_WRAP1(floor_f64, f64i)
IGEN_PROF_WRAP1(ceil_f64, f64i)
IGEN_PROF_WRAP2(join_f64, f64i)
IGEN_PROF_WRAP2(min_f64, f64i)
IGEN_PROF_WRAP2(max_f64, f64i)
IGEN_PROF_WRAP1(f32cast_f64, f64i)
IGEN_PROF_WRAP1(exp_f64, f64i)
IGEN_PROF_WRAP1(log_f64, f64i)
IGEN_PROF_WRAP1(sin_f64, f64i)
IGEN_PROF_WRAP1(cos_f64, f64i)
IGEN_PROF_WRAP1(tan_f64, f64i)
IGEN_PROF_WRAP1(atan_f64, f64i)
IGEN_PROF_WRAP1(asin_f64, f64i)
IGEN_PROF_WRAP1(acos_f64, f64i)
IGEN_PROF_WRAP1(exp_fast_f64, f64i)
IGEN_PROF_WRAP1(log_fast_f64, f64i)
IGEN_PROF_WRAP1(sin_fast_f64, f64i)
IGEN_PROF_WRAP1(cos_fast_f64, f64i)

// Double-double scalar ops.
IGEN_PROF_WRAP2(add_dd, ddi)
IGEN_PROF_WRAP2(sub_dd, ddi)
IGEN_PROF_WRAP2(mul_dd, ddi)
IGEN_PROF_WRAP2(div_dd, ddi)
IGEN_PROF_WRAP1(neg_dd, ddi)
IGEN_PROF_WRAP1(abs_dd, ddi)
IGEN_PROF_WRAP1(sqrt_dd, ddi)
IGEN_PROF_WRAP2(join_dd, ddi)
IGEN_PROF_WRAP2(min_dd, ddi)
IGEN_PROF_WRAP2(max_dd, ddi)
IGEN_PROF_WRAP1(f32cast_dd, ddi)
IGEN_PROF_WRAP1(exp_dd, ddi)
IGEN_PROF_WRAP1(log_dd, ddi)
IGEN_PROF_WRAP1(sin_dd, ddi)
IGEN_PROF_WRAP1(cos_dd, ddi)
IGEN_PROF_WRAP1(tan_dd, ddi)
IGEN_PROF_WRAP1(atan_dd, ddi)
IGEN_PROF_WRAP1(asin_dd, ddi)
IGEN_PROF_WRAP1(acos_dd, ddi)
IGEN_PROF_WRAP1(floor_dd, ddi)
IGEN_PROF_WRAP1(ceil_dd, ddi)

#undef IGEN_PROF_WRAP1
#undef IGEN_PROF_WRAP2
#undef IGEN_PROF_WRAP3

#if defined(IGEN_F64I_SCALAR)
} // namespace igen_prof_cfg_scalar
using namespace igen_prof_cfg_scalar;
#else
} // namespace igen_prof_cfg_simd
using namespace igen_prof_cfg_simd;
#endif

#endif // IGEN_PROFILE_IGEN_PROF_H
