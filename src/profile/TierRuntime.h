//===- TierRuntime.h - Adaptive precision-tier runtime ----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime side of the adaptive precision-tiering subsystem (igen --tier,
/// ROADMAP open item 2). Code emitted with --tier runs each escalation
/// region (currently: a function body) at the f64i tier, evaluates a cheap
/// blowup predicate on the region's result at region exit, and — when the
/// predicate fires and the region is *movable* (a higher-precision rerun
/// can actually tighten the result) — re-executes the region's ddi clone
/// from a live-in snapshot captured at region entry.
///
/// This translation unit owns:
///
///  * the region registry: generated TUs embed a static igen_tier_region
///    table and self-register it (igen_tier_register_regions), mirroring
///    the --profile site table so several tiered TUs coexist per binary;
///  * per-region escalation counters (checks / escalations / pruned),
///    queried by tests and the tier benchmark and printed by
///    igen_tier_report();
///  * the env knobs: IGEN_TIER_WIDTH (relative-width escalation threshold,
///    default 1e-8) and IGEN_TIER_MAX (highest tier to run, 1 = never
///    escalate, 2 = ddi (default); 3 is reserved for the expansion tier
///    and currently behaves as 2). Both parse with the warn-once pattern:
///    a malformed value falls back to the default and says so exactly
///    once, on stderr.
///
/// The escalation predicate itself is inline in profile/igen_tier.h (it
/// needs the configuration-selected f64i typedef); only the counter
/// bumps and the cached env reads live out of line here.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_PROFILE_TIERRUNTIME_H
#define IGEN_PROFILE_TIERRUNTIME_H

#include <cstdio>

#ifdef __cplusplus
extern "C" {
#endif

/// One row of the compile-time region table embedded in generated code.
/// Field order matters: the transformer emits positional initializers.
typedef struct igen_tier_region {
  const char *func; /* source function delimiting the region */
  unsigned line;    /* 1-based source line of the function (0 = unknown) */
  int movable;      /* 0: result provably cannot improve at ddi */
} igen_tier_region;

/// Registers a module's region table and returns the global base offset
/// its regions were assigned (generated code adds this base to its local
/// region indices). The table memory must stay valid for the process
/// lifetime. Thread-safe; typically runs from a static initializer.
unsigned igen_tier_register_regions(const char *module,
                                    const igen_tier_region *regions,
                                    unsigned n);

/// Counter bumps, one per region-exit outcome. \p region is the global
/// (base-offset) region index; out-of-range indices are ignored.
void igen_tier_count_check(unsigned region);     /* predicate evaluated  */
void igen_tier_count_escalate(unsigned region);  /* ddi rerun performed  */
void igen_tier_count_pruned(unsigned region);    /* fired but immovable  */

/// Escalation threshold on the relative width of a region result
/// (IGEN_TIER_WIDTH, cached after the first read).
double igen_tier_width_threshold(void);

/// Highest tier to run (IGEN_TIER_MAX, cached): 1 disables escalation,
/// 2 (default) escalates to ddi, 3 reserved for expansions (acts as 2).
int igen_tier_max(void);

/// Drops the cached env values so the next read re-parses IGEN_TIER_WIDTH
/// and IGEN_TIER_MAX. Test/bench hook; not thread-safe against
/// concurrently executing tiered code.
void igen_tier_env_refresh(void);

/// Clears all escalation counters (registered regions are kept).
void igen_tier_reset(void);

/// Prints the per-region counter table to \p out (stderr when null).
void igen_tier_report(FILE *out);

#ifdef __cplusplus
} /* extern "C" */
#endif

#ifdef __cplusplus

#include <cstdint>
#include <string>
#include <vector>

namespace igen::tier {

/// Per-region counters as seen by tests and the tier benchmark.
struct RegionReport {
  uint32_t Id = 0;          ///< global region index
  std::string Module;
  std::string Func;
  uint32_t Line = 0;
  bool Movable = true;
  uint64_t Checks = 0;      ///< region exits that evaluated the predicate
  uint64_t Escalations = 0; ///< ddi re-executions performed
  uint64_t Pruned = 0;      ///< predicate fired, movability pruned rerun
};

/// All registered regions with their counters, in registration order.
std::vector<RegionReport> snapshot();

/// Pure parsing entry points behind the env readers, exercised by
/// tests/runtime/EnvParseTest. A null/empty \p Spec silently selects the
/// default; a malformed one selects the default and explains why in
/// \p Warning (when non-null). Valid IGEN_TIER_WIDTH values are finite
/// decimal numbers > 0; valid IGEN_TIER_MAX values are the integers 1-3.
double widthFromSpec(const char *Spec, std::string *Warning);
int maxTierFromSpec(const char *Spec, std::string *Warning);

/// Defaults the specs above fall back to.
constexpr double DefaultWidthThreshold = 1e-8;
constexpr int DefaultMaxTier = 2;

} // namespace igen::tier

#endif // __cplusplus

#endif // IGEN_PROFILE_TIERRUNTIME_H
