//===- igen_fenv.h - fenv sentinel API for generated code -------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FP-environment sentinel as seen by igen-generated translation
/// units (emitted when compiling with `igen --harden`). Include AFTER the
/// runtime header (interval/igen_lib.h): the helpers are written against
/// the configuration-selected typedef names (f64i, ddi, m256di_k, ddi_k)
/// that igen_lib.h brings into scope.
///
/// The emitted checks are:
///
///   igen_fenv_check()        at sound-region entry (function prologue)
///                            and after calls to external user functions
///                            that return nothing / non-interval values.
///                            Returns 1 when the active policy is poison
///                            and a clobber was found: the caller must
///                            degrade its interval results to whole
///                            intervals (ia_whole_*).
///   ia_fenv_guard(expr)      wraps an external call that returns an
///                            interval value. C++ evaluates the argument
///                            first, so the check runs *after* the call;
///                            under poison the call's result is replaced
///                            by a whole interval of the same type.
///
/// Both are single-load no-ops when the environment is clean; policy and
/// semantics live in FenvSentinel.h.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_HARDEN_IGEN_FENV_H
#define IGEN_HARDEN_IGEN_FENV_H

#include "harden/FenvSentinel.h"

#include <cmath>

/// Sentinel check at a generated-code site. Returns 1 iff the caller must
/// poison its interval results (IGEN_FENV_POLICY=poison and the FP
/// environment was found clobbered; it has been repaired either way).
inline int igen_fenv_check(void) {
  return igen::harden::checkFenvUpward("generated code") ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Whole-interval ([-inf, +inf]) constructors, one per generated type
//===----------------------------------------------------------------------===//

inline f64i ia_whole_f64(void) { return ia_set_f64(-HUGE_VAL, HUGE_VAL); }
inline ddi ia_whole_dd(void) { return ia_set_dd(-HUGE_VAL, HUGE_VAL); }
inline m256di_1 ia_whole_m256di_1(void) {
  return ia_set1_m256di_1(ia_whole_f64());
}
inline m256di_2 ia_whole_m256di_2(void) {
  return ia_set1_m256di_2(ia_whole_f64());
}
inline m256di_4 ia_whole_m256di_4(void) {
  f64i W[8];
  for (int I = 0; I < 8; ++I)
    W[I] = ia_whole_f64();
  return ia_loadu_m256di_4(W);
}
inline ddi_2 ia_whole_ddi_2(void) { return ia_set1_ddi_2(ia_whole_dd()); }
inline ddi_4 ia_whole_ddi_4(void) { return ia_set1_ddi_4(ia_whole_dd()); }
inline ddi_8 ia_whole_ddi_8(void) {
  ddi W[8];
  for (int I = 0; I < 8; ++I)
    W[I] = ia_whole_dd();
  return ia_loadu_ddi_8(W);
}

//===----------------------------------------------------------------------===//
// Post-external-call guards
//===----------------------------------------------------------------------===//

inline f64i ia_fenv_guard(f64i V) {
  return igen_fenv_check() ? ia_whole_f64() : V;
}
inline ddi ia_fenv_guard(ddi V) {
  return igen_fenv_check() ? ia_whole_dd() : V;
}
inline m256di_1 ia_fenv_guard(m256di_1 V) {
  return igen_fenv_check() ? ia_whole_m256di_1() : V;
}
inline m256di_2 ia_fenv_guard(m256di_2 V) {
  return igen_fenv_check() ? ia_whole_m256di_2() : V;
}
inline m256di_4 ia_fenv_guard(m256di_4 V) {
  return igen_fenv_check() ? ia_whole_m256di_4() : V;
}
inline ddi_2 ia_fenv_guard(ddi_2 V) {
  return igen_fenv_check() ? ia_whole_ddi_2() : V;
}
inline ddi_4 ia_fenv_guard(ddi_4 V) {
  return igen_fenv_check() ? ia_whole_ddi_4() : V;
}
inline ddi_8 ia_fenv_guard(ddi_8 V) {
  return igen_fenv_check() ? ia_whole_ddi_8() : V;
}

#endif // IGEN_HARDEN_IGEN_FENV_H
