//===- FenvSentinel.h - FP-environment soundness sentinel -------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime guard against floating-point-environment clobber.
///
/// Every directed-rounding bound the interval runtime computes is wrong --
/// silently -- if the FP environment is not what the runtime assumes: a
/// caller (or a library loaded into the process) that enables FTZ/DAZ in
/// MXCSR makes subnormal bounds collapse to zero, and a foreign
/// fesetround(FE_TONEAREST) behind a cached rounding scope
/// (interval/Rounding.h) makes *every* bound round the wrong way. This is
/// the environment-hazard class Revol & Théveny catalog for parallel
/// interval computations.
///
/// igen_fenv_check() reads MXCSR (one stmxcsr, ~5 cycles) and compares the
/// soundness-relevant bits -- rounding-control, FTZ, DAZ -- against the
/// expected upward-rounding/no-flush state. On a mismatch it applies the
/// policy selected by IGEN_FENV_POLICY:
///
///   repair (default)  restore the expected state (MXCSR and the x87
///                     control word via fesetround) and warn once; the
///                     computation continues with sound bounds from this
///                     point on.
///   poison            repair the environment, but additionally tell the
///                     caller to replace the affected results with whole
///                     intervals [-inf, +inf]: degraded but sound -- the
///                     enclosure property is preserved, a wrong bound is
///                     never returned.
///   abort             print the offending bits and abort(): for debugging
///                     the clobbering caller.
///
/// Check placement: the batched runtime checks once per iarr_* entry (the
/// hot loops stay clean), generated code compiled with `igen --harden`
/// checks at sound-region entry and after calls to external user
/// functions, and the certified polynomial kernels check after their
/// libm fallback paths. The check sites run *inside* an upward-rounding
/// region, so the expected state is fixed: RC=up, FTZ=0, DAZ=0.
///
/// Only MXCSR is checked: all FP arithmetic in this codebase is SSE/AVX
/// (x86-64 doubles never go through the x87 stack), and repairs still
/// rewrite both control registers through fesetround().
///
/// Everything here is header-only (C++17 inline variables) so that any
/// layer -- including the interval library itself and generated
/// translation units -- can use the sentinel without a link-time
/// dependency cycle.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_HARDEN_FENVSENTINEL_H
#define IGEN_HARDEN_FENVSENTINEL_H

#include "interval/Rounding.h"

#include <atomic>
#include <cfenv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <xmmintrin.h>

namespace igen::harden {

//===----------------------------------------------------------------------===//
// MXCSR accessors and the expected-state mask
//===----------------------------------------------------------------------===//

inline uint32_t readMxcsr() { return _mm_getcsr(); }
inline void writeMxcsr(uint32_t V) { _mm_setcsr(V); }

inline constexpr uint32_t kMxcsrFtz = 1u << 15;    ///< flush-to-zero
inline constexpr uint32_t kMxcsrDaz = 1u << 6;     ///< denormals-are-zero
inline constexpr uint32_t kMxcsrRcMask = 3u << 13; ///< rounding control
inline constexpr uint32_t kMxcsrRcUp = 2u << 13;   ///< RC = toward +inf

/// The soundness-relevant MXCSR bits and their required value inside an
/// upward-rounding sound region. Exception masks/flags are deliberately
/// excluded: they do not change computed values.
inline constexpr uint32_t kMxcsrSoundMask = kMxcsrFtz | kMxcsrDaz | kMxcsrRcMask;
inline constexpr uint32_t kMxcsrWantUpward = kMxcsrRcUp;

/// True when MXCSR is in the exact state every upward-rounding sound
/// region assumes. This is the sentinel's hot-path predicate.
inline bool fenvIsSoundUpward() {
  return (readMxcsr() & kMxcsrSoundMask) == kMxcsrWantUpward;
}

//===----------------------------------------------------------------------===//
// Policy selection (IGEN_FENV_POLICY)
//===----------------------------------------------------------------------===//

enum class FenvPolicy { Repair, Poison, Abort };

namespace detail {

/// Cached policy: -1 until first read of IGEN_FENV_POLICY.
inline std::atomic<int> CachedPolicy{-1};
inline std::atomic<bool> WarnedBadPolicy{false};
inline std::atomic<bool> WarnedRepair{false};

// Violation counters (process-wide, exposed for tests and diagnostics).
inline std::atomic<uint64_t> ViolationCount{0};
inline std::atomic<uint64_t> RepairCount{0};
inline std::atomic<uint64_t> PoisonCount{0};
inline std::atomic<uint32_t> LastViolationBits{0};

inline FenvPolicy parsePolicy(const char *Spec) {
  if (!Spec || !*Spec)
    return FenvPolicy::Repair;
  if (std::strcmp(Spec, "repair") == 0)
    return FenvPolicy::Repair;
  if (std::strcmp(Spec, "poison") == 0)
    return FenvPolicy::Poison;
  if (std::strcmp(Spec, "abort") == 0)
    return FenvPolicy::Abort;
  if (!WarnedBadPolicy.exchange(true))
    std::fprintf(stderr,
                 "igen: warning: unknown IGEN_FENV_POLICY '%s' "
                 "(expected repair|poison|abort); using 'repair'\n",
                 Spec);
  return FenvPolicy::Repair;
}

} // namespace detail

/// The active policy, read from IGEN_FENV_POLICY on first use.
inline FenvPolicy fenvPolicy() {
  int P = detail::CachedPolicy.load(std::memory_order_relaxed);
  if (P < 0) {
    P = static_cast<int>(detail::parsePolicy(std::getenv("IGEN_FENV_POLICY")));
    detail::CachedPolicy.store(P, std::memory_order_relaxed);
  }
  return static_cast<FenvPolicy>(P);
}

/// Pins the policy programmatically (tests; wins over the environment).
inline void setFenvPolicy(FenvPolicy P) {
  detail::CachedPolicy.store(static_cast<int>(P), std::memory_order_relaxed);
}

/// Drops the cached policy so the next check re-reads IGEN_FENV_POLICY.
inline void clearFenvPolicyCache() {
  detail::CachedPolicy.store(-1, std::memory_order_relaxed);
}

/// Snapshot of the violation counters.
struct FenvStats {
  uint64_t Violations; ///< sentinel checks that found a clobbered state
  uint64_t Repairs;    ///< states restored (repair and poison both repair)
  uint64_t Poisoned;   ///< batches/results replaced by whole intervals
  uint32_t LastBits;   ///< soundness-relevant MXCSR bits of the last hit
};

inline FenvStats fenvStats() {
  return {detail::ViolationCount.load(std::memory_order_relaxed),
          detail::RepairCount.load(std::memory_order_relaxed),
          detail::PoisonCount.load(std::memory_order_relaxed),
          detail::LastViolationBits.load(std::memory_order_relaxed)};
}

inline void resetFenvStats() {
  detail::ViolationCount.store(0, std::memory_order_relaxed);
  detail::RepairCount.store(0, std::memory_order_relaxed);
  detail::PoisonCount.store(0, std::memory_order_relaxed);
  detail::LastViolationBits.store(0, std::memory_order_relaxed);
  detail::WarnedRepair.store(false, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// The check
//===----------------------------------------------------------------------===//

/// Cold path of the sentinel: record, describe, and act on a clobbered FP
/// environment per the active policy. Returns true when the caller must
/// poison its results (policy == poison); never returns under abort.
[[gnu::cold, gnu::noinline]] inline bool
handleFenvViolation(const char *Where) {
  uint32_t Cur = readMxcsr();
  uint32_t Bits = Cur & kMxcsrSoundMask;
  detail::ViolationCount.fetch_add(1, std::memory_order_relaxed);
  detail::LastViolationBits.store(Bits, std::memory_order_relaxed);

  char Desc[96];
  std::snprintf(Desc, sizeof(Desc), "%s%s%s%s",
                (Bits & kMxcsrFtz) ? "FTZ " : "",
                (Bits & kMxcsrDaz) ? "DAZ " : "",
                (Bits & kMxcsrRcMask) != kMxcsrRcUp ? "rounding-mode " : "",
                "clobbered");

  FenvPolicy P = fenvPolicy();
  if (P == FenvPolicy::Abort) {
    std::fprintf(stderr,
                 "igen: fatal: FP environment %s at %s "
                 "(MXCSR=0x%04x, IGEN_FENV_POLICY=abort)\n",
                 Desc, Where, Cur);
    std::abort();
  }

  // Repair (both remaining policies): clear FTZ/DAZ and force RC=up in
  // MXCSR, then route through fesetround() so the x87 control word agrees
  // and invalidate the per-thread rounding cache -- the clobber proved it
  // stale.
  writeMxcsr((Cur & ~kMxcsrSoundMask) | kMxcsrWantUpward);
  invalidateRoundingCache();
  std::fesetround(FE_UPWARD);
  detail::RepairCount.fetch_add(1, std::memory_order_relaxed);

  if (!detail::WarnedRepair.exchange(true))
    std::fprintf(stderr,
                 "igen: warning: FP environment %s at %s (MXCSR was "
                 "0x%04x); %s. Further repairs are silent.\n",
                 Desc, Where, Cur,
                 P == FenvPolicy::Poison
                     ? "repaired, affected results poisoned to "
                       "[-inf, +inf]"
                     : "repaired");

  if (P == FenvPolicy::Poison) {
    detail::PoisonCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

/// The sentinel: verifies the FP environment inside an upward-rounding
/// sound region. Returns true when the caller must poison its results
/// (whole intervals), false when it may proceed (the environment was
/// clean, or was repaired in place). \p Where names the check site for
/// diagnostics.
inline bool checkFenvUpward(const char *Where) {
  if (__builtin_expect(fenvIsSoundUpward(), 1))
    return false;
  return handleFenvViolation(Where);
}

} // namespace igen::harden

#endif // IGEN_HARDEN_FENVSENTINEL_H
