//===- FaultInject.h - Deterministic soundness-fault injection --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-only fault injector for the soundness-hardening subsystem. It
/// simulates, deterministically, the hazards the fenv sentinel
/// (FenvSentinel.h) exists to catch -- so the tests can prove each
/// IGEN_FENV_POLICY actually detects and recovers -- plus operand and
/// allocation faults for the batched runtime's edge-case handling.
///
/// Faults are armed from the IGEN_FAULT environment variable (or
/// programmatically via armFaults()) with the grammar
///
///   IGEN_FAULT = fault ("," fault)*
///   fault      = kind [ "@" N ]          (N defaults to 0)
///   kind       = "ftz" | "daz" | "rnd" | "nan" | "inf" | "alloc"
///              | "accept" | "read" | "write" | "conreset" | "partial"
///              | "stall"
///
/// Each fault fires exactly once, at the Nth (0-based) occurrence of its
/// trigger point, then disarms itself:
///
///   ftz / daz / rnd   at the Nth upward-rounding scope *entry*
///                     (interval/Rounding.h hook): set the FTZ/DAZ MXCSR
///                     bit, or fesetround(FE_TONEAREST) -- deliberately
///                     without invalidating the rounding cache, exactly
///                     like a foreign library would.
///   nan / inf         at the Nth batched-kernel invocation
///                     (runtime/BatchKernels.h): replace element N % size
///                     of the first input array by a NaN interval / a
///                     point interval at +inf (on a scratch copy; caller
///                     arrays are const).
///   alloc             at the Nth scratch allocation in the array runtime
///                     (runtime/BatchReduce.cpp): make it behave as if
///                     std::bad_alloc had been thrown.
///
/// Transport faults (the --serve daemon's socket shim,
/// server/TransportOps.h, routes every socket syscall through these):
///
///   accept            the Nth accept() fails with EMFILE (fd
///                     exhaustion under a connection flood)
///   read / conreset   the Nth recv() fails with EIO / ECONNRESET
///                     (hard read error / peer reset mid-frame)
///   stall             the Nth recv() fails with EAGAIN (spurious
///                     poll readiness; a stalled slow client)
///   write / partial   the Nth send() fails with EPIPE (peer gone) /
///                     returns a short count (partial write, the
///                     caller's write loop must resume cleanly)
///
/// When nothing is armed (the production case) the only cost is one
/// relaxed atomic load and branch per trigger point; the rounding-scope
/// hook additionally costs one relaxed load per scope entry (measured in
/// bench/batch_runtime's sentinel rows).
///
/// Header-only for the same layering reason as FenvSentinel.h.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_HARDEN_FAULTINJECT_H
#define IGEN_HARDEN_FAULTINJECT_H

#include "harden/FenvSentinel.h"
#include "interval/Rounding.h"

#include <atomic>
#include <cfenv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace igen::harden {

enum class FaultKind : int {
  Ftz = 0,
  Daz,
  Rnd,
  Nan,
  Inf,
  Alloc,
  // Transport faults (server/TransportOps.h trigger points).
  AcceptFail,   ///< "accept": accept() -> EMFILE
  ReadFail,     ///< "read": recv() -> EIO
  WriteFail,    ///< "write": send() -> EPIPE
  ConnReset,    ///< "conreset": recv() -> ECONNRESET
  PartialWrite, ///< "partial": send() returns a short count
  ReadStall,    ///< "stall": recv() -> EAGAIN despite poll readiness
};
inline constexpr int kNumFaultKinds = 12;

namespace detail {

/// One armed fault: fires when its trigger counter reaches FireAt.
struct FaultSlot {
  std::atomic<long long> Trigger{0}; ///< occurrences seen so far
  std::atomic<long long> FireAt{-1}; ///< -1: disarmed
};

inline FaultSlot FaultSlots[kNumFaultKinds];

/// Set once any fault is armed; trigger points check this first.
inline std::atomic<bool> AnyFaultArmed{false};
inline std::atomic<bool> WarnedBadFault{false};

inline const char *faultKindName(int K) {
  static const char *Names[kNumFaultKinds] = {
      "ftz",    "daz",   "rnd",      "nan",     "inf",     "alloc",
      "accept", "read",  "write",    "conreset", "partial", "stall"};
  return Names[K];
}

inline int faultKindFromName(const char *Name, size_t Len) {
  for (int K = 0; K < kNumFaultKinds; ++K)
    if (std::strlen(faultKindName(K)) == Len &&
        std::strncmp(Name, faultKindName(K), Len) == 0)
      return K;
  return -1;
}

/// The rounding-scope hook: clobber the FP environment on entry to the
/// Nth *upward* scope, simulating a foreign thread/library racing the
/// sound region. Installed only while a ftz/daz/rnd fault is armed.
inline void scopeEntryFault(int EnteredMode) {
  if (EnteredMode != FE_UPWARD)
    return; // only sound regions are interesting targets
  auto Fire = [](FaultKind K) {
    FaultSlot &S = FaultSlots[static_cast<int>(K)];
    long long At = S.FireAt.load(std::memory_order_relaxed);
    if (At < 0)
      return false;
    if (S.Trigger.fetch_add(1, std::memory_order_relaxed) != At)
      return false;
    S.FireAt.store(-1, std::memory_order_relaxed); // one-shot
    return true;
  };
  if (Fire(FaultKind::Ftz))
    writeMxcsr(readMxcsr() | kMxcsrFtz);
  if (Fire(FaultKind::Daz))
    writeMxcsr(readMxcsr() | kMxcsrDaz);
  if (Fire(FaultKind::Rnd)) {
    // A real clobberer goes through fesetround (or raw ldmxcsr) and does
    // NOT tell the runtime: the cached rounding scope must stay stale.
    std::fesetround(FE_TONEAREST);
  }
}

} // namespace detail

/// True while any fault is armed. Trigger points gate on this so the
/// disarmed cost is one relaxed load + branch.
inline bool faultsArmed() {
  return detail::AnyFaultArmed.load(std::memory_order_relaxed);
}

/// Consumes one occurrence of \p K's trigger point; true when the armed
/// fault fires here (one-shot). Returns false instantly when disarmed.
/// \p NOut, when non-null, receives the armed @N count on firing (the
/// operand faults reuse it as the element index to corrupt).
inline bool faultFires(FaultKind K, long long *NOut = nullptr) {
  if (!faultsArmed())
    return false;
  detail::FaultSlot &S = detail::FaultSlots[static_cast<int>(K)];
  long long At = S.FireAt.load(std::memory_order_relaxed);
  if (At < 0)
    return false;
  if (S.Trigger.fetch_add(1, std::memory_order_relaxed) != At)
    return false;
  S.FireAt.store(-1, std::memory_order_relaxed);
  if (NOut)
    *NOut = At;
  return true;
}

/// Disarms everything and resets trigger counters (tests call this
/// between cases).
inline void disarmFaults() {
  detail::AnyFaultArmed.store(false, std::memory_order_relaxed);
  igen::detail::ScopeEntryHook.store(nullptr, std::memory_order_relaxed);
  for (auto &S : detail::FaultSlots) {
    S.FireAt.store(-1, std::memory_order_relaxed);
    S.Trigger.store(0, std::memory_order_relaxed);
  }
}

/// Arms faults from an IGEN_FAULT-grammar spec ("ftz@2,nan"). Unknown
/// kinds or malformed counts warn once and are skipped. Passing nullptr
/// or "" disarms.
inline void armFaults(const char *Spec) {
  disarmFaults();
  if (!Spec || !*Spec)
    return;
  bool Armed = false;
  bool NeedScopeHook = false;
  const char *P = Spec;
  while (*P) {
    const char *End = P;
    while (*End && *End != ',')
      ++End;
    // One "kind[@N]" item in [P, End).
    const char *At = P;
    while (At < End && *At != '@')
      ++At;
    int Kind = detail::faultKindFromName(P, static_cast<size_t>(At - P));
    long long N = 0;
    bool Ok = Kind >= 0;
    if (Ok && At < End) {
      char *NumEnd = nullptr;
      N = std::strtoll(At + 1, &NumEnd, 10);
      Ok = NumEnd == End && N >= 0;
    }
    if (Ok) {
      detail::FaultSlot &S = detail::FaultSlots[Kind];
      S.Trigger.store(0, std::memory_order_relaxed);
      S.FireAt.store(N, std::memory_order_relaxed);
      Armed = true;
      NeedScopeHook |= Kind <= static_cast<int>(FaultKind::Rnd);
    } else if (!detail::WarnedBadFault.exchange(true)) {
      std::fprintf(stderr,
                   "igen: warning: malformed IGEN_FAULT item '%.*s' "
                   "(grammar: kind[@N], kind in "
                   "ftz|daz|rnd|nan|inf|alloc|accept|read|write|"
                   "conreset|partial|stall); item ignored\n",
                   static_cast<int>(End - P), P);
    }
    P = *End ? End + 1 : End;
  }
  if (NeedScopeHook)
    igen::detail::ScopeEntryHook.store(detail::scopeEntryFault,
                                       std::memory_order_relaxed);
  detail::AnyFaultArmed.store(Armed, std::memory_order_relaxed);
}

/// Arms faults from the IGEN_FAULT environment variable. Called once at
/// first use by the instrumented trigger points via faultsArmedFromEnv().
inline void armFaultsFromEnv() { armFaults(std::getenv("IGEN_FAULT")); }

namespace detail {
inline std::atomic<bool> EnvChecked{false};
} // namespace detail

/// faultsArmed() with lazy one-time IGEN_FAULT parsing: the batched
/// runtime's trigger points use this so plain processes never pay more
/// than the relaxed-load gate.
inline bool faultsArmedFromEnv() {
  if (__builtin_expect(!detail::EnvChecked.load(std::memory_order_acquire),
                       0)) {
    if (!detail::EnvChecked.exchange(true))
      armFaultsFromEnv();
  }
  return faultsArmed();
}

} // namespace igen::harden

#endif // IGEN_HARDEN_FAULTINJECT_H
