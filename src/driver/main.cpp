//===- main.cpp - The igen command-line driver --------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Usage: igen [options] input.c -o igen_input.c
//
// Translates a C function using floating-point (possibly with Intel SIMD
// intrinsics) into an equivalent sound C function using interval
// arithmetic (Fig. 1).
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTDumper.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "server/SocketServer.h"
#include "support/StringExtras.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace igen;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: igen [options] <input.c>\n"
      "\n"
      "Translates floating-point C code into sound interval C code.\n"
      "\n"
      "options:\n"
      "  -o <file>             output file (default: igen_<input>)\n"
      "  --precision=<p>       interval endpoint precision: 'double'\n"
      "                        (default) or 'dd' (double-double,\n"
      "                        Section VI-A)\n"
      "  --target=<t>          'sv' (default): intervals in SIMD\n"
      "                        registers; 'ss': scalar intervals\n"
      "  --reductions          enable the reduction accuracy\n"
      "                        transformation (Section VI-B)\n"
      "  --batch-loops         route recognized elementwise array loops\n"
      "                        (d[i] = a[i] OP b[i], d[i] = sqrt(a[i]))\n"
      "                        onto the batched ia_arr_* runtime\n"
      "  --branch=<policy>     'exception' (default): unknown branch\n"
      "                        conditions signal; 'join': compute both\n"
      "                        branches and join when safe\n"
      "  -O, -O1               enable the mid-end optimizer (default):\n"
      "                        sign-specialized multiplies/divides,\n"
      "                        interval CSE/hoisting, and FMA fusion\n"
      "  -O0                   disable the mid-end optimizer; emit the\n"
      "                        naive one-op-per-call translation\n"
      "  --runtime-header=<h>  header providing the ia_* runtime\n"
      "                        (default: interval/igen_lib.h)\n"
      "  --profile             emit precision-profiling instrumentation:\n"
      "                        interval ops report per-site width\n"
      "                        statistics to the igen_profile runtime;\n"
      "                        the site table is also written next to\n"
      "                        the output as <output>.sites.json\n"
      "  --tier                emit adaptive precision tiering: eligible\n"
      "                        functions run at f64i speed, check a blowup\n"
      "                        predicate on their result, and re-execute a\n"
      "                        double-double clone from a live-in snapshot\n"
      "                        only when the result is wide AND provably\n"
      "                        improvable (movability analysis). Tuned by\n"
      "                        IGEN_TIER_WIDTH / IGEN_TIER_MAX; the region\n"
      "                        table is written as <output>.sites.json.\n"
      "                        Incompatible with --profile and\n"
      "                        --precision=dd\n"
      "  --harden              emit FP-environment sentinel checks at\n"
      "                        sound-region entry and after external\n"
      "                        calls; violations are handled per\n"
      "                        IGEN_FENV_POLICY={repair,poison,abort}\n"
      "  --dump-ast            print the type-checked AST instead of\n"
      "                        translating\n"
      "  --serve=<socket>      run as a persistent compile+evaluate\n"
      "                        daemon on a Unix socket speaking\n"
      "                        newline-delimited JSON (ops: compile,\n"
      "                        eval, stats, evict, health, shutdown).\n"
      "                        Compiled programs are cached by content\n"
      "                        hash of (source, options); capacity via\n"
      "                        IGEN_SERVE_CACHE, admission queue via\n"
      "                        IGEN_SERVE_QUEUE, frame cap via\n"
      "                        IGEN_SERVE_MAX_FRAME. Requests may carry\n"
      "                        deadline_ms (default budget via\n"
      "                        IGEN_SERVE_DEADLINE); IGEN_SERVE_CACHE_DIR\n"
      "                        journals compiles for warm restarts;\n"
      "                        IGEN_SERVE_LOG writes one JSON line per\n"
      "                        request. SIGTERM/SIGINT drain gracefully\n"
      "                        within IGEN_SERVE_DRAIN_MS (default 5000).\n"
      "                        See tools/igen_client.py\n"
      "  --serve-workers=<n>   worker threads for --serve (default: the\n"
      "                        runtime thread pool's participant count)\n"
      "\n"
      "exit codes: 0 success, 2 usage error, 3 parse error, 4 type/sema\n"
      "error, 5 transform error, 6 file I/O error\n");
}

/// Distinct exit codes so scripts and tests can tell failure classes
/// apart (1 is left unused: it is what an uncaught crash path or assert
/// typically yields, so a clean diagnostic is distinguishable from one).
enum ExitCode {
  ExitSuccess = 0,
  ExitUsage = 2,
  ExitParse = 3,
  ExitSema = 4,
  ExitTransform = 5,
  ExitIO = 6,
};

int exitCodeFor(igen::PipelineStage Stage) {
  switch (Stage) {
  case igen::PipelineStage::Parse:
    return ExitParse;
  case igen::PipelineStage::Sema:
    return ExitSema;
  case igen::PipelineStage::Transform:
    return ExitTransform;
  case igen::PipelineStage::Cancelled: // serve-mode only; not reachable
    return ExitTransform;              // from the one-shot CLI
  case igen::PipelineStage::None:
    break;
  }
  return ExitSuccess;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string InputPath;
  std::string OutputPath;
  TransformOptions Opts;
  bool DumpAst = false;
  std::string ServeSocket;
  unsigned ServeWorkers = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-h" || Arg == "--help") {
      printUsage();
      return 0;
    }
    if (Arg == "-o") {
      if (++I >= Argc) {
        std::fprintf(stderr, "igen: error: -o requires an argument\n");
        return ExitUsage;
      }
      OutputPath = Argv[I];
      continue;
    }
    if (startsWith(Arg, "--precision=")) {
      std::string Value = Arg.substr(12);
      if (Value == "double")
        Opts.Prec = TransformOptions::Precision::Double;
      else if (Value == "dd" || Value == "double-double")
        Opts.Prec = TransformOptions::Precision::DoubleDouble;
      else {
        std::fprintf(stderr, "igen: error: unknown precision '%s'\n",
                     Value.c_str());
        return ExitUsage;
      }
      continue;
    }
    if (startsWith(Arg, "--target=")) {
      std::string Value = Arg.substr(9);
      if (Value == "ss")
        Opts.ScalarLibrary = true;
      else if (Value == "sv" || Value == "vv")
        Opts.ScalarLibrary = false;
      else {
        std::fprintf(stderr, "igen: error: unknown target '%s'\n",
                     Value.c_str());
        return ExitUsage;
      }
      continue;
    }
    if (Arg == "--reductions") {
      Opts.EnableReductions = true;
      continue;
    }
    if (Arg == "--batch-loops") {
      Opts.EnableBatchLoops = true;
      continue;
    }
    if (Arg == "--dump-ast") {
      DumpAst = true;
      continue;
    }
    if (startsWith(Arg, "--branch=")) {
      std::string Value = Arg.substr(9);
      if (Value == "exception")
        Opts.Branches = TransformOptions::BranchPolicy::Exception;
      else if (Value == "join")
        Opts.Branches = TransformOptions::BranchPolicy::Join;
      else {
        std::fprintf(stderr, "igen: error: unknown branch policy '%s'\n",
                     Value.c_str());
        return ExitUsage;
      }
      continue;
    }
    if (startsWith(Arg, "--runtime-header=")) {
      Opts.RuntimeHeader = Arg.substr(17);
      continue;
    }
    if (Arg == "--profile") {
      Opts.Profile = true;
      continue;
    }
    if (Arg == "--tier") {
      Opts.Tier = true;
      continue;
    }
    if (Arg == "--harden") {
      Opts.Harden = true;
      continue;
    }
    if (startsWith(Arg, "--serve=")) {
      ServeSocket = Arg.substr(8);
      continue;
    }
    if (Arg == "--serve") {
      if (++I >= Argc) {
        std::fprintf(stderr,
                     "igen: error: --serve requires a socket path\n");
        return ExitUsage;
      }
      ServeSocket = Argv[I];
      continue;
    }
    if (startsWith(Arg, "--serve-workers=")) {
      ServeWorkers =
          (unsigned)std::strtoul(Arg.c_str() + 16, nullptr, 10);
      continue;
    }
    if (Arg == "-O" || Arg == "-O1") {
      Opts.OptLevel = 1;
      continue;
    }
    if (Arg == "-O0") {
      Opts.OptLevel = 0;
      continue;
    }
    if (startsWith(Arg, "-")) {
      std::fprintf(stderr, "igen: error: unknown option '%s'\n",
                   Arg.c_str());
      printUsage();
      return ExitUsage;
    }
    if (!InputPath.empty()) {
      std::fprintf(stderr, "igen: error: multiple input files\n");
      return ExitUsage;
    }
    InputPath = Arg;
  }

  if (!ServeSocket.empty()) {
    if (!InputPath.empty() || !OutputPath.empty() || DumpAst) {
      std::fprintf(stderr, "igen: error: --serve takes no input file; "
                           "sources arrive over the socket\n");
      return ExitUsage;
    }
    server::ServeConfig Config;
    Config.SocketPath = ServeSocket;
    Config.Workers = ServeWorkers;
    return server::runServer(Config) == 0 ? ExitSuccess : ExitIO;
  }

  if (InputPath.empty()) {
    printUsage();
    return ExitUsage;
  }
  if (OutputPath.empty()) {
    size_t Slash = InputPath.find_last_of('/');
    std::string Dir =
        Slash == std::string::npos ? "" : InputPath.substr(0, Slash + 1);
    std::string Base =
        Slash == std::string::npos ? InputPath : InputPath.substr(Slash + 1);
    OutputPath = Dir + "igen_" + Base;
  }

  std::string Source;
  if (!readFile(InputPath, Source)) {
    std::fprintf(stderr, "igen: error: cannot read '%s'\n",
                 InputPath.c_str());
    return ExitIO;
  }

  DiagnosticsEngine Diags;
  if (DumpAst) {
    ASTContext Ctx;
    Parser P(Source, Ctx, Diags);
    bool Parsed = P.parseTranslationUnit();
    if (Parsed) {
      Sema S(Ctx, Diags);
      S.run(); // annotate types; dump even with sema errors
    }
    std::fputs(Diags.render(InputPath).c_str(), stderr);
    if (!Parsed)
      return ExitParse;
    std::fputs(dumpAST(Ctx.TU).c_str(), stdout);
    return Diags.hasErrors() ? ExitSema : ExitSuccess;
  }
  if (Opts.Tier && Opts.Profile) {
    std::fprintf(stderr, "igen: error: --tier cannot be combined with "
                         "--profile (one instrumentation layer per TU)\n");
    return ExitUsage;
  }
  if (Opts.Tier && Opts.Prec == TransformOptions::Precision::DoubleDouble) {
    std::fprintf(stderr,
                 "igen: error: --tier requires --precision=double (the "
                 "double-double tier is what it escalates to)\n");
    return ExitUsage;
  }
  if (Opts.Profile || Opts.Tier) {
    Opts.SourceName = InputPath;
    // Module name: output file's basename without extension.
    size_t Slash = OutputPath.find_last_of('/');
    std::string Stem = Slash == std::string::npos
                           ? OutputPath
                           : OutputPath.substr(Slash + 1);
    size_t Dot = Stem.find_last_of('.');
    if (Dot != std::string::npos && Dot > 0)
      Stem.resize(Dot);
    Opts.ModuleName = Stem;
  }

  SiteTable Sites;
  PipelineStage Failed = PipelineStage::None;
  std::optional<std::string> Output = compileToIntervals(
      Source, Opts, Diags,
      Opts.Profile || Opts.Tier ? &Sites : nullptr, &Failed);
  std::fputs(Diags.render(InputPath).c_str(), stderr);
  if (!Output)
    return exitCodeFor(Failed);

  if (!writeFile(OutputPath, *Output)) {
    std::fprintf(stderr, "igen: error: cannot write '%s'\n",
                 OutputPath.c_str());
    return ExitIO;
  }

  if (Opts.Profile || Opts.Tier) {
    // Sidecar with the compile-time site/region table, so tooling can map
    // IDs in runtime reports back to source without executing anything.
    std::string SidecarPath = OutputPath + ".sites.json";
    if (!writeSiteSidecar(SidecarPath, Sites)) {
      std::fprintf(stderr, "igen: error: cannot write '%s'\n",
                   SidecarPath.c_str());
      return ExitIO;
    }
  }
  return ExitSuccess;
}
