//===- BaselineIntervals.cpp - Precompiled Gaol-style operations -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The Gaol-like interval's operations live here, out of line and noipa:
// the compiler cannot inline them into kernels, exactly like linking a
// prebuilt interval library (the paper's explanation for Gaol's lower
// performance in Fig. 8).
//
//===----------------------------------------------------------------------===//

#include "baselines/BaselineIntervals.h"

#include "interval/IntervalSimd.h"

using namespace igen;

#define IGEN_PRECOMPILED __attribute__((noipa))

IGEN_PRECOMPILED GaolLikeInterval igen::operator+(const GaolLikeInterval &A,
                                                  const GaolLikeInterval &B) {
  return GaolLikeInterval(_mm_add_pd(A.V, B.V));
}

IGEN_PRECOMPILED GaolLikeInterval igen::operator-(const GaolLikeInterval &A,
                                                  const GaolLikeInterval &B) {
  return GaolLikeInterval(
      _mm_add_pd(A.V, _mm_shuffle_pd(B.V, B.V, 1)));
}

IGEN_PRECOMPILED GaolLikeInterval igen::operator*(const GaolLikeInterval &A,
                                                  const GaolLikeInterval &B) {
  IntervalSse R = iMul(IntervalSse(A.V), IntervalSse(B.V));
  return GaolLikeInterval(R.V);
}

IGEN_PRECOMPILED GaolLikeInterval igen::operator/(const GaolLikeInterval &A,
                                                  const GaolLikeInterval &B) {
  IntervalSse R = iDiv(IntervalSse(A.V), IntervalSse(B.V));
  return GaolLikeInterval(R.V);
}

IGEN_PRECOMPILED GaolLikeInterval
GaolLikeInterval::sqrtI(const GaolLikeInterval &A) {
  IntervalSse R = iSqrt(IntervalSse(A.V));
  return GaolLikeInterval(R.V);
}

IGEN_PRECOMPILED GaolLikeInterval
GaolLikeInterval::maxI(const GaolLikeInterval &A, const GaolLikeInterval &B) {
  // max over the represented sets: lo' = max(lo) (== min of the negated
  // lane), hi' = max(hi). Lane-wise min/max + recombine.
  __m128d Mn = _mm_min_pd(A.V, B.V);
  __m128d Mx = _mm_max_pd(A.V, B.V);
  return GaolLikeInterval(_mm_shuffle_pd(Mn, Mx, 2));
}
