//===- BaselineIntervals.h - Library-style interval baselines ---*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementations of the *design points* of the interval libraries the
/// paper compares against (Section VII, Fig. 8). What the evaluation
/// contrasts is not those libraries' exact code but their architectural
/// choices; each type below embodies one of them (see DESIGN.md
/// substitution 5):
///
///  * BoostLikeInterval -- header-only scalar (lo, hi) pairs, upward
///    rounding with the negation trick, multiplication via the classical
///    9-case sign specialization (branchy).
///  * FilibLikeInterval -- scalar pairs with a different sign-dispatch
///    structure (nested tests per operand, as in FILIB++'s macro
///    expansion); also branchy but tighter case bodies.
///  * GaolLikeInterval -- intervals in SSE registers like IGen-sv, but all
///    operations are *precompiled* out-of-line functions (no inlining
///    across the library boundary), which is how Gaol ships.
///
/// All three are sound (verified against the igen interval core in
/// BaselineTest) and use upward rounding only, i.e. each library's
/// "fastest sound configuration" as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_BASELINES_BASELINEINTERVALS_H
#define IGEN_BASELINES_BASELINEINTERVALS_H

#include "interval/Rounding.h"
#include "interval/Ulp.h"

#include <cmath>
#include <immintrin.h>
#include <limits>

namespace igen {

//===----------------------------------------------------------------------===//
// BoostLikeInterval
//===----------------------------------------------------------------------===//

/// Scalar (lo, hi) interval with sign-case multiplication, header-only.
struct BoostLikeInterval {
  double Lo = 0.0;
  double Hi = 0.0;

  BoostLikeInterval() = default;
  BoostLikeInterval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {}
  static BoostLikeInterval fromPoint(double X) {
    return BoostLikeInterval(X, X);
  }
  static BoostLikeInterval fromEndpoints(double Lo, double Hi) {
    return BoostLikeInterval(Lo, Hi);
  }

  bool contains(double X) const { return Lo <= X && X <= Hi; }

  /// RU is active; RD via the negation identity.
  friend BoostLikeInterval operator+(const BoostLikeInterval &A,
                                     const BoostLikeInterval &B) {
    return BoostLikeInterval(-((-A.Lo) - B.Lo), A.Hi + B.Hi);
  }
  friend BoostLikeInterval operator-(const BoostLikeInterval &A,
                                     const BoostLikeInterval &B) {
    return BoostLikeInterval(-(B.Hi - A.Lo), A.Hi - B.Lo);
  }

  /// Classical 9-case multiplication (P*P, P*M, P*N, M*P, ...).
  friend BoostLikeInterval operator*(const BoostLikeInterval &A,
                                     const BoostLikeInterval &B) {
    const double AL = A.Lo, AH = A.Hi, BL = B.Lo, BH = B.Hi;
    auto MulDown = [](double X, double Y) { return -((-X) * Y); };
    if (AL >= 0) {
      if (BL >= 0) // P * P
        return BoostLikeInterval(MulDown(AL, BL), AH * BH);
      if (BH <= 0) // P * N
        return BoostLikeInterval(MulDown(AH, BL), AL * BH);
      // P * M
      return BoostLikeInterval(MulDown(AH, BL), AH * BH);
    }
    if (AH <= 0) {
      if (BL >= 0) // N * P
        return BoostLikeInterval(MulDown(AL, BH), AH * BL);
      if (BH <= 0) // N * N
        return BoostLikeInterval(MulDown(AH, BH), AL * BL);
      // N * M
      return BoostLikeInterval(MulDown(AL, BH), AL * BL);
    }
    if (BL >= 0) // M * P
      return BoostLikeInterval(MulDown(AL, BH), AH * BH);
    if (BH <= 0) // M * N
      return BoostLikeInterval(MulDown(AH, BL), AL * BL);
    // M * M: two candidates per endpoint.
    double L1 = MulDown(AL, BH), L2 = MulDown(AH, BL);
    double H1 = AL * BL, H2 = AH * BH;
    return BoostLikeInterval(L1 < L2 ? L1 : L2, H1 > H2 ? H1 : H2);
  }

  friend BoostLikeInterval operator/(const BoostLikeInterval &A,
                                     const BoostLikeInterval &B) {
    if (B.Lo <= 0 && B.Hi >= 0) {
      double Inf = std::numeric_limits<double>::infinity();
      return BoostLikeInterval(-Inf, Inf);
    }
    auto DivDown = [](double X, double Y) { return -((-X) / Y); };
    const double AL = A.Lo, AH = A.Hi, BL = B.Lo, BH = B.Hi;
    if (BL > 0) {
      if (AL >= 0)
        return BoostLikeInterval(DivDown(AL, BH), AH / BL);
      if (AH <= 0)
        return BoostLikeInterval(DivDown(AL, BL), AH / BH);
      return BoostLikeInterval(DivDown(AL, BL), AH / BL);
    }
    if (AL >= 0)
      return BoostLikeInterval(DivDown(AH, BH), AL / BL);
    if (AH <= 0)
      return BoostLikeInterval(DivDown(AH, BL), AL / BH);
    return BoostLikeInterval(DivDown(AH, BH), AL / BH);
  }

  static BoostLikeInterval sqrtI(const BoostLikeInterval &A) {
    double Lo = A.Lo <= 0 ? 0.0 : nextDown(std::sqrt(A.Lo));
    // sqrt under RU rounds up; nextDown gives a (possibly 1-ulp sloppy)
    // sound lower bound, matching library practice.
    return BoostLikeInterval(Lo, std::sqrt(A.Hi));
  }

  static BoostLikeInterval maxI(const BoostLikeInterval &A,
                                const BoostLikeInterval &B) {
    return BoostLikeInterval(A.Lo > B.Lo ? A.Lo : B.Lo,
                             A.Hi > B.Hi ? A.Hi : B.Hi);
  }
};

//===----------------------------------------------------------------------===//
// FilibLikeInterval
//===----------------------------------------------------------------------===//

/// Scalar pairs with FILIB-style nested sign dispatch.
struct FilibLikeInterval {
  double Lo = 0.0;
  double Hi = 0.0;

  FilibLikeInterval() = default;
  FilibLikeInterval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {}
  static FilibLikeInterval fromPoint(double X) {
    return FilibLikeInterval(X, X);
  }
  static FilibLikeInterval fromEndpoints(double Lo, double Hi) {
    return FilibLikeInterval(Lo, Hi);
  }

  bool contains(double X) const { return Lo <= X && X <= Hi; }

  friend FilibLikeInterval operator+(const FilibLikeInterval &A,
                                     const FilibLikeInterval &B) {
    return FilibLikeInterval(-((-A.Lo) - B.Lo), A.Hi + B.Hi);
  }
  friend FilibLikeInterval operator-(const FilibLikeInterval &A,
                                     const FilibLikeInterval &B) {
    return FilibLikeInterval(-(B.Hi - A.Lo), A.Hi - B.Lo);
  }

  /// FILIB dispatches per operand: first on A's sign class, then B's.
  friend FilibLikeInterval operator*(const FilibLikeInterval &A,
                                     const FilibLikeInterval &B) {
    auto MD = [](double X, double Y) { return -((-X) * Y); };
    double L, H;
    if (A.Hi <= 0) {
      if (B.Hi <= 0) {
        L = MD(A.Hi, B.Hi);
        H = A.Lo * B.Lo;
      } else if (B.Lo >= 0) {
        L = MD(A.Lo, B.Hi);
        H = A.Hi * B.Lo;
      } else {
        L = MD(A.Lo, B.Hi);
        H = A.Lo * B.Lo;
      }
    } else if (A.Lo >= 0) {
      if (B.Hi <= 0) {
        L = MD(A.Hi, B.Lo);
        H = A.Lo * B.Hi;
      } else if (B.Lo >= 0) {
        L = MD(A.Lo, B.Lo);
        H = A.Hi * B.Hi;
      } else {
        L = MD(A.Hi, B.Lo);
        H = A.Hi * B.Hi;
      }
    } else {
      if (B.Hi <= 0) {
        L = MD(A.Hi, B.Lo);
        H = A.Lo * B.Lo;
      } else if (B.Lo >= 0) {
        L = MD(A.Lo, B.Hi);
        H = A.Hi * B.Hi;
      } else {
        double L1 = MD(A.Lo, B.Hi), L2 = MD(A.Hi, B.Lo);
        double H1 = A.Lo * B.Lo, H2 = A.Hi * B.Hi;
        L = L1 < L2 ? L1 : L2;
        H = H1 > H2 ? H1 : H2;
      }
    }
    return FilibLikeInterval(L, H);
  }

  friend FilibLikeInterval operator/(const FilibLikeInterval &A,
                                     const FilibLikeInterval &B) {
    if (B.Lo <= 0 && B.Hi >= 0) {
      double Inf = std::numeric_limits<double>::infinity();
      return FilibLikeInterval(-Inf, Inf);
    }
    FilibLikeInterval Inv(-((-1.0) / B.Lo), 1.0 / B.Lo);
    // Tight endpoint-wise division via the sign classes.
    auto DD = [](double X, double Y) { return -((-X) / Y); };
    double L, H;
    if (B.Lo > 0) {
      L = A.Lo >= 0 ? DD(A.Lo, B.Hi) : DD(A.Lo, B.Lo);
      H = A.Hi >= 0 ? A.Hi / B.Lo : A.Hi / B.Hi;
    } else {
      L = A.Hi >= 0 ? DD(A.Hi, B.Hi) : DD(A.Hi, B.Lo);
      H = A.Lo >= 0 ? A.Lo / B.Lo : A.Lo / B.Hi;
    }
    (void)Inv;
    return FilibLikeInterval(L, H);
  }

  static FilibLikeInterval sqrtI(const FilibLikeInterval &A) {
    double Lo = A.Lo <= 0 ? 0.0 : nextDown(std::sqrt(A.Lo));
    return FilibLikeInterval(Lo, std::sqrt(A.Hi));
  }

  static FilibLikeInterval maxI(const FilibLikeInterval &A,
                                const FilibLikeInterval &B) {
    return FilibLikeInterval(A.Lo > B.Lo ? A.Lo : B.Lo,
                             A.Hi > B.Hi ? A.Hi : B.Hi);
  }
};

//===----------------------------------------------------------------------===//
// GaolLikeInterval
//===----------------------------------------------------------------------===//

/// Interval in an SSE register like IGen-sv, but every operation is a
/// precompiled out-of-line call (defined in BaselineIntervals.cpp with
/// noinline): models linking against a prebuilt library.
struct GaolLikeInterval {
  __m128d V; ///< [ -lo | hi ]

  GaolLikeInterval() : V(_mm_setzero_pd()) {}
  explicit GaolLikeInterval(__m128d V) : V(V) {}
  GaolLikeInterval(double Lo, double Hi) : V(_mm_set_pd(Hi, -Lo)) {}
  static GaolLikeInterval fromPoint(double X) {
    return GaolLikeInterval(X, X);
  }
  static GaolLikeInterval fromEndpoints(double Lo, double Hi) {
    return GaolLikeInterval(Lo, Hi);
  }

  double lo() const { return -_mm_cvtsd_f64(V); }
  double hi() const { return _mm_cvtsd_f64(_mm_unpackhi_pd(V, V)); }
  bool contains(double X) const { return lo() <= X && X <= Hi_(); }

  friend GaolLikeInterval operator+(const GaolLikeInterval &A,
                                    const GaolLikeInterval &B);
  friend GaolLikeInterval operator-(const GaolLikeInterval &A,
                                    const GaolLikeInterval &B);
  friend GaolLikeInterval operator*(const GaolLikeInterval &A,
                                    const GaolLikeInterval &B);
  friend GaolLikeInterval operator/(const GaolLikeInterval &A,
                                    const GaolLikeInterval &B);
  static GaolLikeInterval sqrtI(const GaolLikeInterval &A);
  static GaolLikeInterval maxI(const GaolLikeInterval &A,
                               const GaolLikeInterval &B);

private:
  double Hi_() const { return hi(); }
};

/// Out-of-line (precompiled) Gaol-style operators; the friend
/// declarations inside the class do not introduce namespace-scope names,
/// so declare them here for the definitions in BaselineIntervals.cpp.
GaolLikeInterval operator+(const GaolLikeInterval &A,
                           const GaolLikeInterval &B);
GaolLikeInterval operator-(const GaolLikeInterval &A,
                           const GaolLikeInterval &B);
GaolLikeInterval operator*(const GaolLikeInterval &A,
                           const GaolLikeInterval &B);
GaolLikeInterval operator/(const GaolLikeInterval &A,
                           const GaolLikeInterval &B);

} // namespace igen

#endif // IGEN_BASELINES_BASELINEINTERVALS_H
