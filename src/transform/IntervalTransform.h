//===- IntervalTransform.h - AST-to-interval-C transformer ------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IGen transformation proper (Section IV): walks the type-checked AST
/// and emits an equivalent *sound* C function over interval types.
///
///  * Types are promoted per Table II (float/double -> f64i or ddi; SIMD
///    vectors -> m256di_k or ddi_k).
///  * Expressions become calls into the interval runtime (ia_add_f64 ...),
///    with constants lifted to sound enclosures and folded when possible.
///  * Floating-point comparisons yield tbool; branches either signal on
///    unknown (default) or compute both sides and join (Section IV-B).
///  * Parameters annotated with tolerances and `t`-suffixed constants
///    (Section IV-C) become the corresponding widened intervals.
///  * With reductions enabled, detected reduction statements are rewritten
///    onto accurate accumulators (Section VI-B).
///  * SIMD intrinsics map to hand-optimized vector interval operations
///    when available, otherwise to the implementations produced by the
///    simdspec generator (Section V).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TRANSFORM_INTERVALTRANSFORM_H
#define IGEN_TRANSFORM_INTERVALTRANSFORM_H

#include "analysis/ReductionAnalysis.h"
#include "frontend/AST.h"
#include "support/Diagnostics.h"
#include "transform/SiteTable.h"

#include <string>

namespace igen {

struct TransformOptions {
  enum class Precision { Double, DoubleDouble };
  Precision Prec = Precision::Double;

  /// IGen-ss: back f64i/ddi with the scalar structs instead of SIMD
  /// registers (emits #define IGEN_F64I_SCALAR).
  bool ScalarLibrary = false;

  /// Enable the reduction accuracy transformation (Section VI-B).
  bool EnableReductions = false;

  /// Route recognized elementwise array loops (d[i] = a[i] OP b[i],
  /// d[i] = sqrt(a[i])) onto the batched runtime's ia_arr_* entry
  /// points instead of per-element interval calls (driver
  /// --batch-loops). Same enclosures, amortized rounding-mode setup,
  /// SIMD dispatch at runtime. f64i only; ddi loops stay elementwise.
  bool EnableBatchLoops = false;

  enum class BranchPolicy {
    Exception, ///< unknown branch conditions signal (default)
    Join,      ///< compute both branches and join results when safe
  };
  BranchPolicy Branches = BranchPolicy::Exception;

  /// Mid-end optimization level (driver -O/-O0). At level >= 1 the
  /// transformer runs the src/opt value-range analysis and uses it for
  /// sign-specialized multiplies/divides (ia_mul_pp/... / ia_div_p),
  /// fuses add+mul into ia_fma, reuses repeated enclosures (interval
  /// CSE), and hoists loop-invariant interval computations. Every
  /// rewrite preserves or tightens the computed enclosures; 0 disables
  /// the whole pipeline and reproduces the naive translation.
  int OptLevel = 1;

  /// Header providing the ia_* runtime (paper: "igen_lib.h").
  std::string RuntimeHeader = "interval/igen_lib.h";

  /// Header with generated interval intrinsics (_ci_*); included when the
  /// input uses intrinsics beyond the hand-optimized set.
  std::string GeneratedIntrinsicsHeader = "igen_simd.h";

  /// Emit precision-profiling instrumentation (driver --profile): every
  /// interval arithmetic call is routed through the iap_* wrappers from
  /// profile/igen_prof.h carrying a static site ID, and the generated TU
  /// self-registers its site table with the profiler runtime. The
  /// computed enclosures are unchanged; with Profile off the output is
  /// byte-identical to a build without this feature.
  bool Profile = false;

  /// Emit adaptive precision tiering (driver --tier, requires the f64
  /// precision): each eligible function becomes an escalation region that
  /// runs at f64i speed, checks a cheap blowup predicate on its result at
  /// region exit, and — when the predicate fires, the region's result is
  /// *movable* (src/opt movability lattice: a higher-precision rerun can
  /// actually tighten it) and IGEN_TIER_MAX permits — transparently
  /// re-executes a ddi clone of the region from a live-in snapshot
  /// captured at entry, returning the meet of both sound enclosures.
  /// Ineligible functions (out-parameter read/write aliasing, SIMD, calls
  /// to user functions, ...) fall back to the plain f64i translation with
  /// a warning. The generated TU self-registers its region table with the
  /// tier runtime, mirroring --profile's site table.
  bool Tier = false;

  /// Header providing igen_tier_escalate / igen_tier_note_immovable and
  /// the region-table registration API for --tier.
  std::string TierHeader = "profile/igen_tier.h";

  /// Emit FP-environment sentinel checks (driver --harden): every
  /// generated function verifies MXCSR at sound-region entry, and calls
  /// to external user functions (declared but not defined in the TU) are
  /// re-checked afterwards -- a callback that flipped FTZ/DAZ or the
  /// rounding mode is detected and handled per IGEN_FENV_POLICY (see
  /// harden/FenvSentinel.h). With the environment clean the checks cost
  /// one MXCSR read + compare each; enclosures are unchanged.
  bool Harden = false;

  /// Header providing igen_fenv_check / ia_fenv_guard for --harden.
  std::string HardenHeader = "harden/igen_fenv.h";

  /// Module name baked into the emitted site table (defaults to "igen"
  /// when empty). The driver sets it to the output file's stem.
  std::string ModuleName;

  /// Source file name recorded in the site table for report locations.
  std::string SourceName;
};

/// Transforms the (parsed and type-checked) translation unit into interval
/// C code. Reports unsupported constructs through \p Diags. When
/// \p SitesOut is non-null and Options.Profile or Options.Tier is set,
/// receives the compile-time site/region table matching the IDs embedded
/// in the generated code.
std::string transformToIntervals(ASTContext &Ctx, DiagnosticsEngine &Diags,
                                 const TransformOptions &Options,
                                 SiteTable *SitesOut = nullptr);

} // namespace igen

#endif // IGEN_TRANSFORM_INTERVALTRANSFORM_H
