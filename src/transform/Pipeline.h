//===- Pipeline.h - Full IGen compilation pipeline --------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point chaining the whole pipeline of Fig. 1:
/// parse -> type check -> (reduction analysis) -> interval transformation.
/// Used by the igen CLI driver, the build-time kernel generation, and the
/// integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TRANSFORM_PIPELINE_H
#define IGEN_TRANSFORM_PIPELINE_H

#include "support/Diagnostics.h"
#include "transform/IntervalTransform.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace igen {

class ASTContext;

/// Pipeline stage that produced the first error, for callers (the
/// driver) that map failures to distinct exit codes. Cancelled means a
/// caller-provided cancellation check fired at a stage boundary (the
/// serve daemon uses this for wall-clock compile deadlines).
enum class PipelineStage { None, Parse, Sema, Transform, Cancelled };

/// Cooperative cancellation for compileToProgram: polled at every stage
/// boundary (before parse, sema, transform, and emission). Returning
/// true abandons the pipeline; the partial AST is discarded exactly as
/// on a compile error, so cancellation leaves no state behind.
using PipelineCancelFn = std::function<bool()>;

/// A fully compiled program kept in memory: the type-checked AST (owned,
/// so references into it stay valid for the lifetime of this object)
/// plus the emitted interval C text. This is the re-entrant pipeline
/// product the serve mode caches and the AST-walking evaluator executes;
/// the one-shot CLI only ever needs \c EmittedC.
struct InMemoryProgram {
  std::unique_ptr<ASTContext> Ast;
  std::string EmittedC;
  TransformOptions Opts;

  InMemoryProgram();
  ~InMemoryProgram();
  InMemoryProgram(InMemoryProgram &&) = default;
  InMemoryProgram &operator=(InMemoryProgram &&) = default;
};

/// Re-entrant pipeline entry: compiles C source text and returns the
/// program in memory (AST + emitted interval C) instead of text only.
/// Returns nullptr (with diagnostics in \p Diags) on any error; the
/// partially built AST is discarded, so a failed run leaves no state
/// behind — callers may invoke this concurrently from many threads.
std::unique_ptr<InMemoryProgram>
compileToProgram(std::string_view Source, const TransformOptions &Opts,
                 DiagnosticsEngine &Diags,
                 ProfileSiteTable *SitesOut = nullptr,
                 PipelineStage *FailedStage = nullptr,
                 const PipelineCancelFn &Cancel = {});

/// Compiles C source text to interval C. Returns std::nullopt (with
/// diagnostics in \p Diags) on any error. With Opts.Profile set and
/// \p SitesOut non-null, receives the compile-time profile site table.
/// \p FailedStage, when non-null, receives the stage that failed (None
/// on success). Parsing continues past recoverable syntax errors, so a
/// Parse failure can carry several diagnostics.
std::optional<std::string> compileToIntervals(std::string_view Source,
                                              const TransformOptions &Opts,
                                              DiagnosticsEngine &Diags,
                                              ProfileSiteTable *SitesOut =
                                                  nullptr,
                                              PipelineStage *FailedStage =
                                                  nullptr);

} // namespace igen

#endif // IGEN_TRANSFORM_PIPELINE_H
