//===- Pipeline.h - Full IGen compilation pipeline --------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point chaining the whole pipeline of Fig. 1:
/// parse -> type check -> (reduction analysis) -> interval transformation.
/// Used by the igen CLI driver, the build-time kernel generation, and the
/// integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TRANSFORM_PIPELINE_H
#define IGEN_TRANSFORM_PIPELINE_H

#include "support/Diagnostics.h"
#include "transform/IntervalTransform.h"

#include <optional>
#include <string>

namespace igen {

/// Pipeline stage that produced the first error, for callers (the
/// driver) that map failures to distinct exit codes.
enum class PipelineStage { None, Parse, Sema, Transform };

/// Compiles C source text to interval C. Returns std::nullopt (with
/// diagnostics in \p Diags) on any error. With Opts.Profile set and
/// \p SitesOut non-null, receives the compile-time profile site table.
/// \p FailedStage, when non-null, receives the stage that failed (None
/// on success). Parsing continues past recoverable syntax errors, so a
/// Parse failure can carry several diagnostics.
std::optional<std::string> compileToIntervals(std::string_view Source,
                                              const TransformOptions &Opts,
                                              DiagnosticsEngine &Diags,
                                              ProfileSiteTable *SitesOut =
                                                  nullptr,
                                              PipelineStage *FailedStage =
                                                  nullptr);

} // namespace igen

#endif // IGEN_TRANSFORM_PIPELINE_H
