//===- Pipeline.h - Full IGen compilation pipeline --------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point chaining the whole pipeline of Fig. 1:
/// parse -> type check -> (reduction analysis) -> interval transformation.
/// Used by the igen CLI driver, the build-time kernel generation, and the
/// integration tests.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TRANSFORM_PIPELINE_H
#define IGEN_TRANSFORM_PIPELINE_H

#include "support/Diagnostics.h"
#include "transform/IntervalTransform.h"

#include <optional>
#include <string>

namespace igen {

/// Compiles C source text to interval C. Returns std::nullopt (with
/// diagnostics in \p Diags) on any error. With Opts.Profile set and
/// \p SitesOut non-null, receives the compile-time profile site table.
std::optional<std::string> compileToIntervals(std::string_view Source,
                                              const TransformOptions &Opts,
                                              DiagnosticsEngine &Diags,
                                              ProfileSiteTable *SitesOut =
                                                  nullptr);

} // namespace igen

#endif // IGEN_TRANSFORM_PIPELINE_H
