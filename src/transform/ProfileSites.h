//===- ProfileSites.h - Compile-time precision-profile site table -*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static site table produced by `igen --profile`. Every instrumented
/// interval operation in the emitted code carries a small integer site ID;
/// this table maps IDs back to the originating source operation (op name,
/// source line/column, unparsed expression text, enclosing function). The
/// transformer embeds the table into the generated TU (so reports are
/// self-describing at runtime) and the driver additionally serializes it
/// as a `<output>.sites.json` sidecar.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TRANSFORM_PROFILESITES_H
#define IGEN_TRANSFORM_PROFILESITES_H

#include <cstdint>
#include <string>
#include <vector>

namespace igen {

/// One instrumented operation. IDs are the vector index, assigned in
/// emission order; sign-specialized and FMA-fused rewrites reuse the
/// source operation's location, so a site survives optimizer rewrites.
struct ProfileSite {
  std::string Op;       ///< runtime op ("mul", "fma_pu", "sub", ...)
  std::string Func;     ///< enclosing source function
  std::string Text;     ///< unparsed source expression
  uint32_t Line = 0;    ///< 1-based source line (0 = unknown)
  uint32_t Col = 0;     ///< 1-based source column
};

struct ProfileSiteTable {
  std::string Module;     ///< module name registered with the runtime
  std::string SourceFile; ///< original input path
  std::vector<ProfileSite> Sites;
};

} // namespace igen

#endif // IGEN_TRANSFORM_PROFILESITES_H
