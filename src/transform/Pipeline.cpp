//===- Pipeline.cpp - Full IGen compilation pipeline -------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "frontend/Parser.h"
#include "frontend/Sema.h"

using namespace igen;

InMemoryProgram::InMemoryProgram() = default;
InMemoryProgram::~InMemoryProgram() = default;

std::unique_ptr<InMemoryProgram>
igen::compileToProgram(std::string_view Source, const TransformOptions &Opts,
                       DiagnosticsEngine &Diags, ProfileSiteTable *SitesOut,
                       PipelineStage *FailedStage,
                       const PipelineCancelFn &Cancel) {
  auto Fail = [&](PipelineStage S) {
    if (FailedStage)
      *FailedStage = S;
    return nullptr;
  };
  // Stage-boundary cancellation: abandoning the pipeline here is the
  // same rollback as a stage error — the partial AST dies with Prog.
  auto Cancelled = [&] { return Cancel && Cancel(); };
  if (FailedStage)
    *FailedStage = PipelineStage::None;
  if (Cancelled())
    return Fail(PipelineStage::Cancelled);
  auto Prog = std::make_unique<InMemoryProgram>();
  Prog->Ast = std::make_unique<ASTContext>();
  Prog->Opts = Opts;
  Parser P(Source, *Prog->Ast, Diags);
  if (!P.parseTranslationUnit())
    return Fail(PipelineStage::Parse);
  if (Cancelled())
    return Fail(PipelineStage::Cancelled);
  Sema S(*Prog->Ast, Diags);
  if (!S.run())
    return Fail(PipelineStage::Sema);
  if (Cancelled())
    return Fail(PipelineStage::Cancelled);
  Prog->EmittedC = transformToIntervals(*Prog->Ast, Diags, Opts, SitesOut);
  if (Diags.hasErrors())
    return Fail(PipelineStage::Transform);
  if (Cancelled())
    return Fail(PipelineStage::Cancelled);
  return Prog;
}

std::optional<std::string>
igen::compileToIntervals(std::string_view Source,
                         const TransformOptions &Opts,
                         DiagnosticsEngine &Diags,
                         ProfileSiteTable *SitesOut,
                         PipelineStage *FailedStage) {
  auto Prog = compileToProgram(Source, Opts, Diags, SitesOut, FailedStage);
  if (!Prog)
    return std::nullopt;
  return std::move(Prog->EmittedC);
}
