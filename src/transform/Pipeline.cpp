//===- Pipeline.cpp - Full IGen compilation pipeline -------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "frontend/Parser.h"
#include "frontend/Sema.h"

using namespace igen;

std::optional<std::string>
igen::compileToIntervals(std::string_view Source,
                         const TransformOptions &Opts,
                         DiagnosticsEngine &Diags,
                         ProfileSiteTable *SitesOut,
                         PipelineStage *FailedStage) {
  auto Fail = [&](PipelineStage S) {
    if (FailedStage)
      *FailedStage = S;
    return std::nullopt;
  };
  if (FailedStage)
    *FailedStage = PipelineStage::None;
  ASTContext Ctx;
  Parser P(Source, Ctx, Diags);
  if (!P.parseTranslationUnit())
    return Fail(PipelineStage::Parse);
  Sema S(Ctx, Diags);
  if (!S.run())
    return Fail(PipelineStage::Sema);
  std::string Out = transformToIntervals(Ctx, Diags, Opts, SitesOut);
  if (Diags.hasErrors())
    return Fail(PipelineStage::Transform);
  return Out;
}
