//===- SiteTable.cpp - Compile-time site/region tables --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "transform/SiteTable.h"

#include "support/JsonWriter.h"

#include <cstdlib>
#include <cstring>

using namespace igen;

std::vector<bool> igen::compactIdReferences(std::string &Body,
                                            const char *Tag,
                                            size_t NumIds) {
  const size_t TagLen = std::strlen(Tag);
  std::vector<bool> Used(NumIds, false);
  for (size_t P = Body.find(Tag); P != std::string::npos;
       P = Body.find(Tag, P + TagLen)) {
    size_t Id = std::strtoul(Body.c_str() + P + TagLen, nullptr, 10);
    if (Id < NumIds)
      Used[Id] = true;
  }
  std::vector<unsigned> Remap(NumIds, 0);
  unsigned Next = 0;
  for (size_t I = 0; I < NumIds; ++I) {
    Remap[I] = Next;
    Next += Used[I];
  }
  if (Next == NumIds)
    return Used; // dense already; nothing to rewrite
  std::string NewBody;
  NewBody.reserve(Body.size());
  size_t Last = 0;
  for (size_t P = Body.find(Tag); P != std::string::npos;
       P = Body.find(Tag, P)) {
    size_t NumBegin = P + TagLen, NumEnd = NumBegin;
    while (NumEnd < Body.size() && Body[NumEnd] >= '0' &&
           Body[NumEnd] <= '9')
      ++NumEnd;
    size_t Old = std::strtoul(Body.c_str() + NumBegin, nullptr, 10);
    NewBody.append(Body, Last, NumBegin - Last);
    NewBody += std::to_string(Old < NumIds ? Remap[Old] : 0);
    Last = P = NumEnd;
  }
  NewBody.append(Body, Last, std::string::npos);
  Body = std::move(NewBody);
  return Used;
}

std::string igen::siteSidecarJson(const SiteTable &Table) {
  JsonWriter W;
  W.beginObject();
  W.field("schema_version", 1);
  W.field("report", "igen_sites");
  W.field("module", Table.Module);
  W.field("source_file", Table.SourceFile);
  W.key("sites");
  W.beginArray();
  for (size_t I = 0; I < Table.Sites.size(); ++I) {
    const ProfileSite &S = Table.Sites[I];
    W.beginObject();
    W.field("id", static_cast<uint64_t>(I));
    W.field("op", S.Op);
    W.field("func", S.Func);
    W.field("line", static_cast<uint64_t>(S.Line));
    W.field("col", static_cast<uint64_t>(S.Col));
    W.field("text", S.Text);
    W.endObject();
  }
  W.endArray();
  if (!Table.Regions.empty()) {
    W.key("regions");
    W.beginArray();
    for (size_t I = 0; I < Table.Regions.size(); ++I) {
      const TierRegion &R = Table.Regions[I];
      W.beginObject();
      W.field("id", static_cast<uint64_t>(I));
      W.field("func", R.Func);
      W.field("line", static_cast<uint64_t>(R.Line));
      W.field("movable", R.Movable);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  return W.take();
}

bool igen::writeSiteSidecar(const std::string &Path, const SiteTable &Table) {
  std::string Text = siteSidecarJson(Table);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  return (std::fclose(F) == 0) && Ok;
}
