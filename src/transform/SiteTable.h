//===- SiteTable.h - Compile-time site/region tables ------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time tables shared by `igen --profile` and `igen --tier`.
/// Both features assign small integer IDs at emission time — per
/// instrumented interval operation (profile sites) and per escalation
/// region (tier regions) — and both need the same two services:
///
///  * a single renumbering pass after optimizer rewrites: FMA fusion and
///    sign specialization build (and thereby number) operand code before
///    deciding to replace it, which can orphan an ID; the emitted tables
///    must only describe entries whose IDs survive in the final body
///    (compactIdReferences);
///  * one sidecar-JSON writer, so the `<output>.sites.json` format has
///    exactly one producer regardless of which feature requested it
///    (writeSiteSidecar / siteSidecarJson).
///
/// The transformer embeds the same tables into the generated TU as static
/// igen_prof_site / igen_tier_region arrays, so runtime reports are
/// self-describing; the sidecar lets tooling map IDs back to source
/// without executing anything.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TRANSFORM_SITETABLE_H
#define IGEN_TRANSFORM_SITETABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace igen {

/// One instrumented operation (--profile). IDs are the vector index,
/// assigned in emission order; sign-specialized and FMA-fused rewrites
/// reuse the source operation's location, so a site survives optimizer
/// rewrites.
struct ProfileSite {
  std::string Op;       ///< runtime op ("mul", "fma_pu", "sub", ...)
  std::string Func;     ///< enclosing source function
  std::string Text;     ///< unparsed source expression
  uint32_t Line = 0;    ///< 1-based source line (0 = unknown)
  uint32_t Col = 0;     ///< 1-based source column
};

/// One escalation region (--tier). Currently a region is a whole tiered
/// function body; IDs are the vector index in emission order.
struct TierRegion {
  std::string Func;     ///< source function delimiting the region
  uint32_t Line = 0;    ///< 1-based source line of the function
  bool Movable = true;  ///< false: result provably cannot improve at ddi
};

/// The per-TU table the transformer fills and the driver serializes.
struct SiteTable {
  std::string Module;     ///< module name registered with the runtime
  std::string SourceFile; ///< original input path
  std::vector<ProfileSite> Sites;   ///< --profile operation sites
  std::vector<TierRegion> Regions;  ///< --tier escalation regions
};

/// Historical name from when --profile was the only table producer.
using ProfileSiteTable = SiteTable;

/// Renumbers the ID references "<Tag><digits>" in \p Body densely: IDs
/// never referenced are dropped, survivors keep their relative order, and
/// every reference in \p Body is rewritten to the new numbering. \p NumIds
/// is the number of IDs handed out (references must be < NumIds). Returns
/// the keep-mask indexed by old ID, so the caller can filter its table
/// rows to match:
///
///   std::vector<bool> Keep = compactIdReferences(Body, Tag, N);
///   // erase table entries whose Keep[id] is false
///
/// When every ID is referenced, \p Body is left untouched and the mask is
/// all-true.
std::vector<bool> compactIdReferences(std::string &Body, const char *Tag,
                                      size_t NumIds);

/// The `<output>.sites.json` sidecar document for \p Table: schema_version
/// 1, report "igen_sites", a "sites" array (always) and a "regions" array
/// (only when the table has tier regions, keeping pre-tier consumers
/// working unchanged).
std::string siteSidecarJson(const SiteTable &Table);

/// Writes siteSidecarJson(\p Table) to \p Path; false on I/O failure.
bool writeSiteSidecar(const std::string &Path, const SiteTable &Table);

} // namespace igen

#endif // IGEN_TRANSFORM_SITETABLE_H
