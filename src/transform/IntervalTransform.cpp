//===- IntervalTransform.cpp - AST-to-interval-C transformer ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "transform/IntervalTransform.h"

#include "analysis/BatchLoopAnalysis.h"
#include "frontend/Sema.h"
#include "interval/DdInterval.h"
#include "opt/Movability.h"
#include "opt/OptAnalysis.h"
#include "interval/DecimalFp.h"
#include "interval/Interval.h"
#include "interval/Rounding.h"
#include "interval/Ulp.h"
#include "support/StringExtras.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

using namespace igen;

namespace {

/// Category of a transformed expression.
enum class Cat {
  Plain,    ///< ordinary C value (integers, pointers, plain conditions)
  Interval, ///< an interval (f64i/ddi or a vector of intervals)
  TBool,    ///< three-valued boolean from an interval comparison
};

/// Result of transforming one expression.
struct TR {
  std::string Code;
  Cat C = Cat::Plain;
  const Type *OrigTy = nullptr;

  // Compile-time interval constant (Section IV-B, "Interval constants").
  bool IsConst = false;
  Interval CF64;  ///< enclosure used when targeting double
  DdInterval CDd; ///< enclosure used when targeting double-double
};

/// Formats a double as a C expression reconstructing it exactly.
std::string fmtDouble(double V) {
  if (std::isnan(V))
    return "__builtin_nan(\"\")";
  if (std::isinf(V))
    return V > 0 ? "__builtin_inf()" : "-__builtin_inf()";
  return formatString("%.17g", V); // always round-trips IEEE doubles
}

/// Parenthesizes plain compound expressions when embedded.
std::string maybeParen(const TR &V) {
  if (V.C != Cat::Plain)
    return V.Code;
  if (V.Code.find(' ') != std::string::npos)
    return "(" + V.Code + ")";
  return V.Code;
}

//===----------------------------------------------------------------------===//
// Profile-site support: source-text reconstruction for reports
//===----------------------------------------------------------------------===//

const char *unaryOpSpelling(UnaryExpr::Op O) {
  switch (O) {
  case UnaryExpr::Op::Neg:
    return "-";
  case UnaryExpr::Op::Plus:
    return "+";
  case UnaryExpr::Op::LogicalNot:
    return "!";
  case UnaryExpr::Op::BitNot:
    return "~";
  case UnaryExpr::Op::PreInc:
  case UnaryExpr::Op::PostInc:
    return "++";
  case UnaryExpr::Op::PreDec:
  case UnaryExpr::Op::PostDec:
    return "--";
  case UnaryExpr::Op::Deref:
    return "*";
  case UnaryExpr::Op::AddrOf:
    return "&";
  }
  return "?";
}

const char *binaryOpSpelling(BinaryExpr::Op O) {
  switch (O) {
  case BinaryExpr::Op::Add:
    return "+";
  case BinaryExpr::Op::Sub:
    return "-";
  case BinaryExpr::Op::Mul:
    return "*";
  case BinaryExpr::Op::Div:
    return "/";
  case BinaryExpr::Op::Rem:
    return "%";
  case BinaryExpr::Op::Shl:
    return "<<";
  case BinaryExpr::Op::Shr:
    return ">>";
  case BinaryExpr::Op::BitAnd:
    return "&";
  case BinaryExpr::Op::BitOr:
    return "|";
  case BinaryExpr::Op::BitXor:
    return "^";
  case BinaryExpr::Op::LT:
    return "<";
  case BinaryExpr::Op::GT:
    return ">";
  case BinaryExpr::Op::LE:
    return "<=";
  case BinaryExpr::Op::GE:
    return ">=";
  case BinaryExpr::Op::EQ:
    return "==";
  case BinaryExpr::Op::NE:
    return "!=";
  case BinaryExpr::Op::LAnd:
    return "&&";
  case BinaryExpr::Op::LOr:
    return "||";
  case BinaryExpr::Op::Assign:
    return "=";
  case BinaryExpr::Op::AddAssign:
    return "+=";
  case BinaryExpr::Op::SubAssign:
    return "-=";
  case BinaryExpr::Op::MulAssign:
    return "*=";
  case BinaryExpr::Op::DivAssign:
    return "/=";
  }
  return "?";
}

/// Reconstructs approximate source text for a profile site's "where"
/// column. Best effort only — reports consume it, nothing parses it.
std::string unparseExpr(const Expr *E) {
  if (!E)
    return "";
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return cast<IntLiteralExpr>(E)->Spelling;
  case Expr::Kind::FloatLiteral:
    return cast<FloatLiteralExpr>(E)->Spelling;
  case Expr::Kind::DeclRef:
    return cast<DeclRefExpr>(E)->Name;
  case Expr::Kind::Paren:
    return "(" + unparseExpr(cast<ParenExpr>(E)->Sub) + ")";
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->O == UnaryExpr::Op::PostInc || U->O == UnaryExpr::Op::PostDec)
      return unparseExpr(U->Sub) + unaryOpSpelling(U->O);
    return std::string(unaryOpSpelling(U->O)) + unparseExpr(U->Sub);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return unparseExpr(B->LHS) + " " + binaryOpSpelling(B->O) + " " +
           unparseExpr(B->RHS);
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    return unparseExpr(C->Cond) + " ? " + unparseExpr(C->Then) + " : " +
           unparseExpr(C->Else);
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::string S = C->Callee + "(";
    for (size_t I = 0; I < C->Args.size(); ++I)
      S += (I ? ", " : "") + unparseExpr(C->Args[I]);
    return S + ")";
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    return unparseExpr(I->Base) + "[" + unparseExpr(I->Idx) + "]";
  }
  case Expr::Kind::Cast: {
    const auto *C = cast<CastExpr>(E);
    return "(" + C->To->cName() + ")" + unparseExpr(C->Sub);
  }
  }
  return "";
}

//===----------------------------------------------------------------------===//
// --tier eligibility: can this function be an escalation region?
//===----------------------------------------------------------------------===//

/// Variable at the base of an Index/Deref lvalue chain, or null when the
/// chain bottoms out in something other than a plain variable reference
/// (e.g. pointer arithmetic).
const VarDecl *memRootDecl(const Expr *E) {
  E = ignoreParens(E);
  while (true) {
    if (const auto *I = dynCast<IndexExpr>(E)) {
      E = ignoreParens(I->Base);
      continue;
    }
    const auto *U = dynCast<UnaryExpr>(E);
    if (U && U->O == UnaryExpr::Op::Deref) {
      E = ignoreParens(U->Sub);
      continue;
    }
    break;
  }
  const auto *D = dynCast<DeclRefExpr>(E);
  return D ? D->Decl : nullptr;
}

/// Decides whether a function can be compiled as an escalation region.
/// The wrapper must capture the region's live-ins at entry (params plus
/// the memory behind pointer params) and be able to re-execute the
/// <name>__dd clone as a function of that snapshot alone. Anything that
/// lets state escape the region (address-taken values, local pointers,
/// calls into other code) or that reads param memory the f64i pass
/// already overwrote disqualifies; \p Why names the first blocker.
class TierEligibility {
public:
  std::string Why;

  bool check(const FunctionDecl &F) {
    if (!F.Body)
      return no("declaration only");
    if (!F.RetTy || !F.RetTy->isFloating())
      return no("return type is not a floating scalar");
    for (const VarDecl *P : F.Params) {
      const Type *T = P->Ty;
      if (T->isSimdVector())
        return no("SIMD vector parameter '" + P->Name + "'");
      if ((T->isPointer() || T->isArray()) &&
          (T->element()->isPointer() || T->element()->isSimdVector()))
        return no("unsupported pointer parameter '" + P->Name + "'");
    }
    if (!visitStmt(F.Body))
      return false;
    for (const VarDecl *P : F.Params)
      if (MemReads.count(P) && MemWrites.count(P))
        return no("memory behind parameter '" + P->Name +
                  "' is both read and written");
    return true;
  }

private:
  std::set<const VarDecl *> MemReads, MemWrites;

  bool no(const std::string &Reason) {
    if (Why.empty())
      Why = Reason;
    return false;
  }

  /// Records a memory access rooted at a variable and scans the chain's
  /// index expressions. \p E is the full Index/Deref chain.
  bool access(const Expr *E, bool IsWrite, bool IsRead) {
    const VarDecl *Root = memRootDecl(E);
    if (!Root)
      return no("unsupported pointer expression");
    if (IsWrite)
      MemWrites.insert(Root);
    if (IsRead)
      MemReads.insert(Root);
    const Expr *S = ignoreParens(E);
    while (true) {
      if (const auto *I = dynCast<IndexExpr>(S)) {
        if (!visitExpr(I->Idx))
          return false;
        S = ignoreParens(I->Base);
        continue;
      }
      const auto *U = dynCast<UnaryExpr>(S);
      if (U && U->O == UnaryExpr::Op::Deref) {
        S = ignoreParens(U->Sub);
        continue;
      }
      return true;
    }
  }

  bool visitExpr(const Expr *E) {
    if (!E)
      return true;
    if (E->type() && E->type()->isSimdVector())
      return no("uses SIMD vector values");
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
    case Expr::Kind::DeclRef:
      return true;
    case Expr::Kind::Paren:
      return visitExpr(cast<ParenExpr>(E)->Sub);
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->O == UnaryExpr::Op::AddrOf)
        return no("takes the address of a value");
      if (U->O == UnaryExpr::Op::Deref)
        return access(E, /*IsWrite=*/false, /*IsRead=*/true);
      if (U->O == UnaryExpr::Op::PreInc || U->O == UnaryExpr::Op::PreDec ||
          U->O == UnaryExpr::Op::PostInc ||
          U->O == UnaryExpr::Op::PostDec) {
        const Expr *S = ignoreParens(U->Sub);
        if (!dynCast<DeclRefExpr>(S))
          return access(S, /*IsWrite=*/true, /*IsRead=*/true);
        return true;
      }
      return visitExpr(U->Sub);
    }
    case Expr::Kind::Index:
      return access(E, /*IsWrite=*/false, /*IsRead=*/true);
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->isAssignment()) {
        const Expr *L = ignoreParens(B->LHS);
        if (!dynCast<DeclRefExpr>(L) &&
            !access(L, /*IsWrite=*/true,
                    /*IsRead=*/B->O != BinaryExpr::Op::Assign))
          return false;
        return visitExpr(B->RHS);
      }
      if ((B->O == BinaryExpr::Op::EQ || B->O == BinaryExpr::Op::NE) &&
          ((B->LHS->type() && B->LHS->type()->isFloating()) ||
           (B->RHS->type() && B->RHS->type()->isFloating())))
        return no("floating ==/!= has no double-double comparison");
      return visitExpr(B->LHS) && visitExpr(B->RHS);
    }
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      return visitExpr(C->Cond) && visitExpr(C->Then) &&
             visitExpr(C->Else);
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      if (classifyCallee(C->Callee) != CalleeKind::MathFunction)
        return no("calls '" + C->Callee + "'");
      for (const Expr *A : C->Args)
        if (!visitExpr(A))
          return false;
      return true;
    }
    case Expr::Kind::Cast:
      return visitExpr(cast<CastExpr>(E)->Sub);
    }
    return true;
  }

  bool visitStmt(const Stmt *S) {
    if (!S)
      return true;
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *C : cast<CompoundStmt>(S)->Body)
        if (!visitStmt(C))
          return false;
      return true;
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls) {
        if (D->Ty->isPointer())
          return no("declares local pointer '" + D->Name + "'");
        if (D->Ty->isSimdVector() ||
            (D->Ty->isArray() && D->Ty->element()->isSimdVector()))
          return no("uses SIMD vector values");
        if (!visitExpr(D->Init))
          return false;
      }
      return true;
    case Stmt::Kind::ExprStmt:
      return visitExpr(cast<ExprStmt>(S)->E);
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      return visitExpr(I->Cond) && visitStmt(I->Then) &&
             visitStmt(I->Else);
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      return visitStmt(F->Init) && visitExpr(F->Cond) &&
             visitExpr(F->Inc) && visitStmt(F->Body);
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      return visitExpr(W->Cond) && visitStmt(W->Body);
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      return visitStmt(D->Body) && visitExpr(D->Cond);
    }
    case Stmt::Kind::Return:
      return visitExpr(cast<ReturnStmt>(S)->Value);
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Null:
      return true;
    }
    return true;
  }
};

/// Escapes a string for embedding in a C string literal.
std::string escapeCString(const std::string &S) {
  std::string Out;
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += Ch;
    }
  }
  return Out;
}

class Transformer {
public:
  Transformer(ASTContext &Ctx, DiagnosticsEngine &Diags,
              const TransformOptions &Opts)
      : Ctx(Ctx), Diags(Diags), Opts(Opts) {}

  std::string run();

  const ProfileSiteTable &siteTable() const { return SiteTable; }

private:
  /// --tier emission mode for the function currently being emitted.
  /// Wrapper: the f64i fast path with snapshot + escalation codegen.
  /// DdClone: the <name>__dd body, emitted as double-double with the
  /// uniform f64i memory ABI (loads promote, stores narrow).
  enum class TierMode { Off, Wrapper, DdClone };

  bool isDd() const {
    return Opts.Prec == TransformOptions::Precision::DoubleDouble ||
           TMode == TierMode::DdClone;
  }
  std::string sfx() const { return isDd() ? "dd" : "f64"; }
  std::string scalarIntervalType() const { return isDd() ? "ddi" : "f64i"; }

  /// Promoted spelling of a SIMD vector type (Table II).
  std::string vecTypeName(const Type *T) const {
    switch (T->kind()) {
    case Type::Kind::M128D:
      return isDd() ? "ddi_2" : "m256di_1";
    case Type::Kind::M128:
    case Type::Kind::M256D:
      return isDd() ? "ddi_4" : "m256di_2";
    case Type::Kind::M256:
      return isDd() ? "ddi_8" : "m256di_4";
    default:
      return scalarIntervalType();
    }
  }

  static bool needsPromotion(const Type *T) {
    if (!T)
      return false;
    if (T->isFloatingOrVector())
      return true;
    if (T->isPointer() || T->isArray())
      return needsPromotion(T->element());
    return false;
  }

  /// \p InMemory: the spelling describes a memory element (pointee or
  /// array element). The tier clone keeps memory at the f64i ABI so the
  /// wrapper and clone can share the caller's buffers; everything else
  /// promotes to the current tier's interval type.
  std::string promoteTypeSpelling(const Type *T, bool InMemory = false) const {
    if (T->isFloating())
      return TMode == TierMode::DdClone && InMemory ? "f64i"
                                                    : scalarIntervalType();
    if (T->isSimdVector())
      return vecTypeName(T);
    if (T->isPointer())
      return promoteTypeSpelling(T->element(), /*InMemory=*/true) + " *";
    return T->cName();
  }

  /// --harden: whole-interval ([-inf, +inf]) constructor call for a
  /// promoted interval type, or "" when \p T does not promote to one.
  std::string wholeCtorFor(const Type *T) const {
    if (!T)
      return "";
    if (T->isFloating())
      return "ia_whole_" + sfx() + "()";
    if (T->isSimdVector())
      return "ia_whole_" + vecTypeName(T) + "()";
    return "";
  }

  std::string promoteTypeAndName(const Type *T, const std::string &Name) {
    std::string Dims;
    const Type *Base = T;
    while (Base->isArray()) {
      Dims +=
          formatString("[%lld]", static_cast<long long>(Base->arraySize()));
      Base = Base->element();
    }
    std::string TypeName = promoteTypeSpelling(Base, /*InMemory=*/!Dims.empty());
    return TypeName + (endsWith(TypeName, "*") ? "" : " ") + Name + Dims;
  }

  /// True when \p E is a floating lvalue that lives in f64i memory under
  /// the clone's uniform ABI (array element or pointer dereference).
  bool cloneMemLvalue(const Expr *E) const {
    if (TMode != TierMode::DdClone || !E->type() || !E->type()->isFloating())
      return false;
    const Expr *S = ignoreParens(E);
    if (S->kind() == Expr::Kind::Index)
      return true;
    const auto *U = dynCast<UnaryExpr>(S);
    return U && U->O == UnaryExpr::Op::Deref;
  }

  // Expressions.
  TR transformExpr(const Expr *E);
  TR transformBinary(const BinaryExpr *B);
  TR transformUnary(const UnaryExpr *U);
  TR transformCall(const CallExpr *C);
  TR transformCast(const CastExpr *C);

  // Mid-end optimizer hooks (src/opt). All of them degrade to "emit the
  // generic call" when the analysis proved nothing.
  bool optOn() const { return Opts.OptLevel > 0; }
  /// Scalar-double sign specialization and fusion only applies when the
  /// operation lowers to the f64 scalar runtime (not dd, not vectors).
  bool scalarF64(const Type *T) const {
    return !isDd() && T && T->isFloating();
  }
  /// 'p': enclosure proven within [0,+inf); 'n': within (-inf,0]; 'u'.
  char signClassOf(const Expr *E) const {
    ValueFact F = OptInfo.factFor(E);
    if (F.provenNonNeg())
      return 'p';
    if (F.provenNonPos())
      return 'n';
    return 'u';
  }
  std::string specializedMul(const Expr *LE, const Expr *RE,
                             const std::string &LC, const std::string &RC);
  std::string specializedDiv(const Expr *RE, const std::string &LC,
                             const std::string &RC);
  /// Fuses add/sub-of-mul into ia_fma_* (empty string: no fusion).
  std::string tryFuseFma(const Expr *MulSide, const Expr *AddendExpr,
                         const std::string &AddendCode, bool NegateMul,
                         bool NegateAddend);
  const std::string *findActiveTemp(const Expr *E) const;
  size_t emitCseTemps(const Stmt *S);
  void popTemps(size_t N) { ActiveTemps.resize(ActiveTemps.size() - N); }
  TR makeConstant(const Interval &F64, const DdInterval &Dd,
                  const Type *OrigTy);
  std::string materializeConst(const TR &V) const;
  std::string asInterval(const TR &V);
  std::string asTBool(const TR &V);
  std::string lvalueOf(const Expr *E);

  // Statements.
  void emitStmt(const Stmt *S);
  void emitCompound(const CompoundStmt *S);
  /// Emits a statement as a brace-wrapped body (flattens compounds).
  void emitBody(const Stmt *S);
  void emitIf(const IfStmt *S);
  void emitFor(const ForStmt *S);
  void emitWhileCond(std::string Keyword, const Expr *Cond);
  void emitDecl(const VarDecl *D);
  void emitExprStmt(const ExprStmt *S);
  std::string forHeader(const ForStmt *S);
  void emitFunction(FunctionDecl *F);
  void emitFunctionImpl(FunctionDecl *F, const std::string &EmitName);

  // Join-mode branch support: collects scalar interval variables assigned
  // within \p S; returns false if the branch does anything the join
  // transformation cannot handle (Section IV-B).
  bool collectJoinTargets(const Stmt *S, std::set<VarDecl *> &Targets);
  bool collectAssignTargetsInExpr(const Expr *E,
                                  std::set<VarDecl *> &Targets);

  void line(const std::string &Text) {
    Body += std::string(Indent * 2, ' ');
    Body += Text;
    Body += '\n';
  }
  std::string freshTemp() { return formatString("_t%d", ++TempCounter); }

  /// Profiling hook wrapped around every scalar ia_* arithmetic call the
  /// transformer emits. With Opts.Profile off it returns \p Call verbatim
  /// (making the unprofiled output byte-identical by construction); with
  /// it on, the call is rewritten to the corresponding iap_* wrapper
  /// carrying a freshly assigned static site ID, and the site's metadata
  /// (op, enclosing function, source location, reconstructed text) is
  /// recorded in SiteTable. Called at emission time, so sign-specialized
  /// and FMA-fused rewrites inherit the originating expression's site.
  std::string prof(std::string Call, const Expr *Origin) {
    if (!Opts.Profile)
      return Call;
    size_t Paren = Call.find('(');
    if (Paren == std::string::npos || Call.compare(0, 3, "ia_") != 0)
      return Call;
    std::string Op = Call.substr(3, Paren - 3);
    // Only the scalar f64/dd runtime has iap_* wrappers; vector calls
    // (ia_*_m256di_k / ia_*_ddi_k) pass through uninstrumented.
    if (endsWith(Op, "_f64"))
      Op.resize(Op.size() - 4);
    else if (endsWith(Op, "_dd"))
      Op.resize(Op.size() - 3);
    else
      return Call;
    ProfileSite Site;
    Site.Op = Op;
    Site.Func = CurFuncName;
    if (Origin) {
      Site.Line = Origin->loc().Line;
      Site.Col = Origin->loc().Col;
      Site.Text = unparseExpr(Origin);
      if (Site.Text.size() > 60)
        Site.Text = Site.Text.substr(0, 57) + "...";
    }
    unsigned Id = static_cast<unsigned>(SiteTable.Sites.size());
    SiteTable.Sites.push_back(std::move(Site));
    return "iap" + Call.substr(2, Paren - 2) +
           formatString("(_igen_prof_base + %uu, ", Id) +
           Call.substr(Paren + 1);
  }

  /// Drops site- and region-table rows whose IDs never appear in the
  /// emitted body and renumbers the survivors (one shared pass per table;
  /// see compactIdReferences). Rewrites like FMA fusion build (and
  /// thereby instrument) their operand code before deciding to replace
  /// it, which can orphan a site; the embedded tables must only describe
  /// entries that can actually execute.
  void compactSites() {
    std::vector<bool> KeepSite = compactIdReferences(
        Body, "_igen_prof_base + ", SiteTable.Sites.size());
    filterByMask(SiteTable.Sites, KeepSite);
    std::vector<bool> KeepRegion = compactIdReferences(
        Body, "_igen_tier_base + ", SiteTable.Regions.size());
    filterByMask(SiteTable.Regions, KeepRegion);
  }

  template <typename T>
  static void filterByMask(std::vector<T> &Rows,
                           const std::vector<bool> &Keep) {
    size_t Next = 0;
    for (size_t I = 0; I < Rows.size(); ++I)
      if (Keep[I]) {
        if (Next != I)
          Rows[Next] = std::move(Rows[I]);
        ++Next;
      }
    Rows.resize(Next);
  }

  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  TransformOptions Opts;
  std::string Body;
  int Indent = 0;
  int TempCounter = 0;
  int AccCounter = 0;
  bool UsedGeneratedIntrinsics = false;
  std::map<const VarDecl *, std::string> Renames;
  ReductionAnalysisResult Reductions;
  std::map<const Stmt *, std::pair<const ReductionSite *, std::string>>
      UpdateToAcc;

  // Profiling state (per translation unit).
  ProfileSiteTable SiteTable;
  std::string CurFuncName;

  // --tier state (set per function while emitting the wrapper).
  TierMode TMode = TierMode::Off;
  unsigned TierRegionId = 0;
  bool TierMovable = true;
  std::string TierCloneCall; ///< "<name>__dd(<snapshotted args>)"

  /// Functions *defined* in this TU (for --harden: calls to these need
  /// no post-call fenv guard, their own prologue re-checks; calls to
  /// declared-only externals do).
  std::set<std::string> DefinedFns;

  // Mid-end optimizer state (per function).
  OptFunctionInfo OptInfo;
  /// Enclosures currently available in a named temp (_cseN/_hoistN),
  /// innermost scope last. transformExpr consults this before emitting.
  std::vector<std::pair<const Expr *, std::string>> ActiveTemps;
  int HoistCounter = 0;
  int CseCounter = 0;
};

//===----------------------------------------------------------------------===//
// Constants
//===----------------------------------------------------------------------===//

TR Transformer::makeConstant(const Interval &F64, const DdInterval &Dd,
                             const Type *OrigTy) {
  TR R;
  R.C = Cat::Interval;
  R.OrigTy = OrigTy;
  R.IsConst = true;
  R.CF64 = F64;
  R.CDd = Dd;
  R.Code = materializeConst(R);
  return R;
}

std::string Transformer::materializeConst(const TR &V) const {
  if (!isDd()) {
    const Interval &I = V.CF64;
    if (I.isPoint())
      return "ia_cst_f64(" + fmtDouble(I.hi()) + ")";
    return "ia_set_f64(" + fmtDouble(I.lo()) + ", " + fmtDouble(I.hi()) +
           ")";
  }
  const DdInterval &I = V.CDd;
  bool Point = I.NegLo.H == -I.Hi.H && I.NegLo.L == -I.Hi.L;
  if (Point && I.Hi.L == 0.0)
    return "ia_cst_dd(" + fmtDouble(I.Hi.H) + ")";
  return "ia_set_ddc(" + fmtDouble(-I.NegLo.H) + ", " +
         fmtDouble(-I.NegLo.L) + ", " + fmtDouble(I.Hi.H) + ", " +
         fmtDouble(I.Hi.L) + ")";
}

//===----------------------------------------------------------------------===//
// Category conversions
//===----------------------------------------------------------------------===//

std::string Transformer::asInterval(const TR &V) {
  if (V.C == Cat::Interval)
    return V.Code;
  if (V.C == Cat::TBool) {
    Diags.error(SourceLoc(), "cannot use a comparison result as a value");
    return V.Code;
  }
  if (V.OrigTy && V.OrigTy->isInteger())
    return "ia_cst_" + sfx() + "((double)(" + V.Code + "))";
  return "ia_cst_" + sfx() + "(" + V.Code + ")";
}

std::string Transformer::asTBool(const TR &V) {
  if (V.C == Cat::TBool)
    return V.Code;
  return "ia_bool2tb(" + V.Code + ")";
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TR Transformer::transformExpr(const Expr *E) {
  if (const std::string *Temp = findActiveTemp(E)) {
    TR R;
    R.Code = *Temp;
    R.C = Cat::Interval;
    R.OrigTy = E->type();
    return R;
  }
  switch (E->kind()) {
  case Expr::Kind::IntLiteral: {
    const auto *I = cast<IntLiteralExpr>(E);
    TR R;
    R.Code = I->Spelling;
    R.OrigTy = E->type();
    return R;
  }
  case Expr::Kind::FloatLiteral: {
    const auto *F = cast<FloatLiteralExpr>(E);
    RoundUpwardScope Up;
    if (F->IsTolerance) {
      // 0.25t denotes the interval [-t, t] around zero (Section IV-C).
      DdInterval Enc = ddIntervalFromDecimal(F->Spelling);
      DdInterval DdI(Enc.Hi, Enc.Hi); // stored (-lo, hi) = (hi, hi)
      Interval Hull = Enc.outerHull();
      Interval F64I(Hull.Hi, Hull.Hi);
      return makeConstant(F64I, DdI, E->type());
    }
    // Double target follows the paper: integer-valued constants are
    // exact, others become [prev(v), next(v)]. The double-double target
    // uses the tight decimal enclosure.
    double V = F->Value;
    Interval F64I;
    if (V == std::trunc(V) && std::fabs(V) < 0x1p53)
      F64I = Interval::fromPoint(V);
    else
      F64I = Interval::fromEndpoints(nextDown(V), nextUp(V));
    DdInterval DdI = ddIntervalFromDecimal(F->Spelling);
    if (DdI.hasNaN())
      DdI = DdInterval::fromPoint(V);
    return makeConstant(F64I, DdI, E->type());
  }
  case Expr::Kind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    TR R;
    auto It = Renames.find(Ref->Decl);
    R.Code = It != Renames.end() ? It->second : Ref->Name;
    R.OrigTy = E->type();
    if (It != Renames.end() ||
        (E->type() && E->type()->isFloatingOrVector()))
      R.C = Cat::Interval;
    return R;
  }
  case Expr::Kind::Paren: {
    TR R = transformExpr(cast<ParenExpr>(E)->Sub);
    if (R.C == Cat::Plain && !R.IsConst)
      R.Code = "(" + R.Code + ")";
    return R;
  }
  case Expr::Kind::Unary:
    return transformUnary(cast<UnaryExpr>(E));
  case Expr::Kind::Binary:
    return transformBinary(cast<BinaryExpr>(E));
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    TR Cond = transformExpr(C->Cond);
    TR Then = transformExpr(C->Then);
    TR Else = transformExpr(C->Else);
    if (Cond.C == Cat::TBool)
      Diags.error(E->loc(),
                  "interval-dependent '?:' conditions are not supported; "
                  "rewrite as an if statement");
    TR R;
    R.OrigTy = E->type();
    if (E->type() && E->type()->isFloatingOrVector()) {
      R.C = Cat::Interval;
      R.Code = "(" + Cond.Code + " ? " + asInterval(Then) + " : " +
               asInterval(Else) + ")";
    } else {
      R.Code =
          "(" + Cond.Code + " ? " + Then.Code + " : " + Else.Code + ")";
    }
    return R;
  }
  case Expr::Kind::Call:
    return transformCall(cast<CallExpr>(E));
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    TR Base = transformExpr(I->Base);
    TR Idx = transformExpr(I->Idx);
    TR R;
    R.Code = Base.Code + "[" + Idx.Code + "]";
    R.OrigTy = E->type();
    if (E->type() && E->type()->isFloatingOrVector())
      R.C = Cat::Interval;
    if (cloneMemLvalue(E))
      R.Code = "ia_promote_f64_dd(" + R.Code + ")";
    return R;
  }
  case Expr::Kind::Cast:
    return transformCast(cast<CastExpr>(E));
  }
  return TR();
}

TR Transformer::transformUnary(const UnaryExpr *U) {
  TR Sub = transformExpr(U->Sub);
  TR R;
  R.OrigTy = U->type();
  switch (U->O) {
  case UnaryExpr::Op::Neg:
    if (Sub.IsConst) {
      RoundUpwardScope Up;
      return makeConstant(iNeg(Sub.CF64), ddiNeg(Sub.CDd), U->type());
    }
    if (Sub.C == Cat::Interval) {
      R.C = Cat::Interval;
      std::string OpSfx = (Sub.OrigTy && Sub.OrigTy->isSimdVector())
                              ? vecTypeName(Sub.OrigTy)
                              : sfx();
      R.Code = prof("ia_neg_" + OpSfx + "(" + Sub.Code + ")", U);
      return R;
    }
    R.Code = Sub.Code[0] == '-' ? "-(" + Sub.Code + ")"
                                : "-" + maybeParen(Sub);
    return R;
  case UnaryExpr::Op::Plus:
    return Sub;
  case UnaryExpr::Op::LogicalNot:
    if (Sub.C == Cat::TBool) {
      R.C = Cat::TBool;
      R.Code = "ia_not_tb(" + Sub.Code + ")";
      return R;
    }
    R.Code = "!" + maybeParen(Sub);
    return R;
  case UnaryExpr::Op::BitNot:
    R.Code = "~" + maybeParen(Sub);
    return R;
  case UnaryExpr::Op::PreInc:
  case UnaryExpr::Op::PreDec:
  case UnaryExpr::Op::PostInc:
  case UnaryExpr::Op::PostDec: {
    if (Sub.C == Cat::Interval) {
      Diags.error(U->loc(), "++/-- on floating-point values is not "
                            "supported in the IGen C subset");
      return Sub;
    }
    bool Pre =
        U->O == UnaryExpr::Op::PreInc || U->O == UnaryExpr::Op::PreDec;
    bool Inc =
        U->O == UnaryExpr::Op::PreInc || U->O == UnaryExpr::Op::PostInc;
    R.Code = Pre ? (std::string(Inc ? "++" : "--") + Sub.Code)
                 : (Sub.Code + (Inc ? "++" : "--"));
    return R;
  }
  case UnaryExpr::Op::Deref:
    R.Code = "*" + maybeParen(Sub);
    if (U->type() && U->type()->isFloatingOrVector())
      R.C = Cat::Interval;
    if (cloneMemLvalue(U))
      R.Code = "ia_promote_f64_dd(" + R.Code + ")";
    return R;
  case UnaryExpr::Op::AddrOf:
    R.Code = "&" + maybeParen(Sub);
    return R;
  }
  return R;
}

const std::string *Transformer::findActiveTemp(const Expr *E) const {
  if (ActiveTemps.empty())
    return nullptr;
  switch (ignoreParens(E)->kind()) {
  case Expr::Kind::Binary:
  case Expr::Kind::Unary:
  case Expr::Kind::Call:
    break; // only op nodes ever become temps
  default:
    return nullptr;
  }
  for (const auto &[Rep, Name] : ActiveTemps)
    if (exprCseEqual(Rep, E))
      return &Name;
  return nullptr;
}

std::string Transformer::specializedMul(const Expr *LE, const Expr *RE,
                                        const std::string &LC,
                                        const std::string &RC) {
  const char SL = signClassOf(LE), SR = signClassOf(RE);
  if (SL == 'u' && SR == 'u')
    return "";
  // Multiplication commutes and argument evaluation order is unspecified
  // in C anyway, but only reorder operands we know are side-effect-free.
  const bool Swappable = exprIsPureValue(LE) && exprIsPureValue(RE);
  auto call = [&](const char *V, const std::string &A,
                  const std::string &B) {
    return std::string("ia_mul_") + V + "_f64(" + A + ", " + B + ")";
  };
  if (SL == 'p' && SR == 'p')
    return call("pp", LC, RC);
  if (SL == 'n' && SR == 'n')
    return call("nn", LC, RC);
  if (SL == 'p' && SR == 'n')
    return call("pn", LC, RC);
  if (SL == 'n' && SR == 'p')
    return Swappable ? call("pn", RC, LC) : "";
  if (SL == 'p')
    return call("pu", LC, RC);
  if (SR == 'p')
    return Swappable ? call("pu", RC, LC) : "";
  if (SL == 'n')
    return call("nu", LC, RC);
  return Swappable ? call("nu", RC, LC) : ""; // SR == 'n'
}

std::string Transformer::specializedDiv(const Expr *RE,
                                        const std::string &LC,
                                        const std::string &RC) {
  const ValueFact F = OptInfo.factFor(RE);
  if (F.provenPos())
    return "ia_div_p_f64(" + LC + ", " + RC + ")";
  if (F.provenNeg())
    return "ia_div_n_f64(" + LC + ", " + RC + ")";
  return "";
}

/// Fuses `mul(a,b) + addend` (NegateMul/NegateAddend select the sub
/// forms) into one ia_fma_* call. \p MulSide must be a floating scalar
/// multiply that was not const-folded or CSE'd by the caller.
std::string Transformer::tryFuseFma(const Expr *MulSide,
                                    const Expr *AddendExpr,
                                    const std::string &AddendCode,
                                    bool NegateMul, bool NegateAddend) {
  const auto *M = dynCast<BinaryExpr>(ignoreParens(MulSide));
  if (!M || M->O != BinaryExpr::Op::Mul || !scalarF64(M->type()))
    return "";
  (void)AddendExpr;
  TR A = transformExpr(M->LHS);
  TR Bv = transformExpr(M->RHS);
  if (A.IsConst && Bv.IsConst)
    return ""; // would have folded; keep the constant path
  std::string AC = asInterval(A), BC = asInterval(Bv);
  char SA = signClassOf(M->LHS);
  const char SB = signClassOf(M->RHS);
  if (NegateMul) {
    // -(a*b) + c == (-a)*b + c; negation flips a's sign class exactly.
    AC = "ia_neg_f64(" + AC + ")";
    SA = SA == 'p' ? 'n' : SA == 'n' ? 'p' : 'u';
  }
  std::string CC = AddendCode;
  if (NegateAddend)
    CC = "ia_neg_f64(" + CC + ")";
  const bool Swappable =
      exprIsPureValue(M->LHS) && exprIsPureValue(M->RHS) && !NegateMul;
  auto call = [&](const char *V, const std::string &X,
                  const std::string &Y) {
    return std::string("ia_fma") + (*V ? "_" : "") + V + "_f64(" + X +
           ", " + Y + ", " + CC + ")";
  };
  if (SA == 'p' && SB == 'p')
    return call("pp", AC, BC);
  if (SA == 'n' && SB == 'n')
    return call("nn", AC, BC);
  if (SA == 'p' && SB == 'n')
    return call("pn", AC, BC);
  if (SA == 'n' && SB == 'p')
    return Swappable ? call("pn", BC, AC) : call("", AC, BC);
  if (SA == 'p')
    return call("pu", AC, BC);
  if (SB == 'p')
    return Swappable ? call("pu", BC, AC) : call("", AC, BC);
  if (SA == 'n')
    return call("nu", AC, BC);
  if (SB == 'n')
    return Swappable ? call("nu", BC, AC) : call("", AC, BC);
  return call("", AC, BC);
}

TR Transformer::transformBinary(const BinaryExpr *B) {
  if (B->isAssignment()) {
    std::string LHS = lvalueOf(B->LHS);
    TR RHS = transformExpr(B->RHS);
    bool IntervalTarget =
        B->LHS->type() && B->LHS->type()->isFloatingOrVector();
    TR R;
    R.OrigTy = B->type();
    if (!IntervalTarget) {
      const char *OpStr = B->O == BinaryExpr::Op::Assign      ? " = "
                          : B->O == BinaryExpr::Op::AddAssign ? " += "
                          : B->O == BinaryExpr::Op::SubAssign ? " -= "
                          : B->O == BinaryExpr::Op::MulAssign ? " *= "
                                                              : " /= ";
      R.Code = LHS + OpStr + RHS.Code;
      return R;
    }
    R.C = Cat::Interval;
    std::string OpSfx = B->LHS->type()->isSimdVector()
                            ? vecTypeName(B->LHS->type())
                            : sfx();
    std::string Value = asInterval(RHS);
    // Clone memory ABI: the stored element is f64i; compound updates
    // promote the current value into the dd arithmetic and the final
    // value narrows back to its outer f64 hull on the way out.
    const bool MemAbi = cloneMemLvalue(B->LHS);
    const std::string Cur =
        MemAbi ? "ia_promote_f64_dd(" + LHS + ")" : LHS;
    if (optOn() && scalarF64(B->LHS->type())) {
      std::string Opt;
      switch (B->O) {
      case BinaryExpr::Op::AddAssign: // y += a*b  ->  y = fma(a, b, y)
        if (!RHS.IsConst && !findActiveTemp(B->RHS) &&
            !OptInfo.FmaLoopHazards.count(B))
          Opt = tryFuseFma(B->RHS, nullptr, LHS, false, false);
        break;
      case BinaryExpr::Op::SubAssign: // y -= a*b  ->  y = fma(-a, b, y)
        if (!RHS.IsConst && !findActiveTemp(B->RHS) &&
            !OptInfo.FmaLoopHazards.count(B))
          Opt = tryFuseFma(B->RHS, nullptr, LHS, true, false);
        break;
      case BinaryExpr::Op::MulAssign:
        Opt = specializedMul(B->LHS, B->RHS, LHS, Value);
        break;
      case BinaryExpr::Op::DivAssign:
        Opt = specializedDiv(B->RHS, LHS, Value);
        break;
      default:
        break;
      }
      if (!Opt.empty()) {
        R.Code = LHS + " = " + prof(Opt, B);
        return R;
      }
    }
    switch (B->O) {
    case BinaryExpr::Op::AddAssign:
      Value = prof("ia_add_" + OpSfx + "(" + Cur + ", " + Value + ")", B);
      break;
    case BinaryExpr::Op::SubAssign:
      Value = prof("ia_sub_" + OpSfx + "(" + Cur + ", " + Value + ")", B);
      break;
    case BinaryExpr::Op::MulAssign:
      Value = prof("ia_mul_" + OpSfx + "(" + Cur + ", " + Value + ")", B);
      break;
    case BinaryExpr::Op::DivAssign:
      Value = prof("ia_div_" + OpSfx + "(" + Cur + ", " + Value + ")", B);
      break;
    default:
      break;
    }
    if (MemAbi)
      Value = "ia_narrow_dd_f64(" + Value + ")";
    R.Code = LHS + " = " + Value;
    return R;
  }

  TR L = transformExpr(B->LHS);
  TR R = transformExpr(B->RHS);
  bool FloatOp =
      (B->LHS->type() && B->LHS->type()->isFloatingOrVector()) ||
      (B->RHS->type() && B->RHS->type()->isFloatingOrVector());

  switch (B->O) {
  case BinaryExpr::Op::Add:
  case BinaryExpr::Op::Sub:
  case BinaryExpr::Op::Mul:
  case BinaryExpr::Op::Div: {
    TR Out;
    Out.OrigTy = B->type();
    if (!FloatOp) {
      const char *Op = B->O == BinaryExpr::Op::Add   ? " + "
                       : B->O == BinaryExpr::Op::Sub ? " - "
                       : B->O == BinaryExpr::Op::Mul ? " * "
                                                     : " / ";
      Out.Code = maybeParen(L) + Op + maybeParen(R);
      return Out;
    }
    // Constant folding on intervals (Section IV-B). Integer literals
    // fold too: lift them first.
    auto liftConst = [&](TR &V, const Expr *Orig) {
      if (V.IsConst)
        return true;
      const auto *IL = dynCast<IntLiteralExpr>(ignoreParens(Orig));
      if (!IL)
        return false;
      double D = static_cast<double>(IL->Value);
      V.IsConst = true;
      V.CF64 = Interval::fromPoint(D);
      V.CDd = DdInterval::fromPoint(D);
      return true;
    };
    if (liftConst(L, B->LHS) && liftConst(R, B->RHS)) {
      RoundUpwardScope Up;
      Interval F64;
      DdInterval Dd;
      switch (B->O) {
      case BinaryExpr::Op::Add:
        F64 = iAdd(L.CF64, R.CF64);
        Dd = ddiAdd(L.CDd, R.CDd);
        break;
      case BinaryExpr::Op::Sub:
        F64 = iSub(L.CF64, R.CF64);
        Dd = ddiSub(L.CDd, R.CDd);
        break;
      case BinaryExpr::Op::Mul:
        F64 = iMul(L.CF64, R.CF64);
        Dd = ddiMul(L.CDd, R.CDd);
        break;
      default:
        F64 = iDiv(L.CF64, R.CF64);
        Dd = ddiDiv(L.CDd, R.CDd);
        break;
      }
      return makeConstant(F64, Dd, B->type());
    }
    Out.C = Cat::Interval;
    bool Vector = B->type() && B->type()->isSimdVector();
    std::string OpSfx = Vector ? vecTypeName(B->type()) : sfx();
    if (optOn() && !Vector && scalarF64(B->type())) {
      std::string Opt;
      switch (B->O) {
      case BinaryExpr::Op::Mul:
        Opt = specializedMul(B->LHS, B->RHS, asInterval(L), asInterval(R));
        break;
      case BinaryExpr::Op::Div:
        Opt = specializedDiv(B->RHS, asInterval(L), asInterval(R));
        break;
      case BinaryExpr::Op::Add:
        // a*b + c (either side). A mul that is already const-folded or
        // available in a CSE/hoist temp stays a plain operand; a mul
        // feeding a loop-carried accumulation stays unfused.
        if (OptInfo.FmaLoopHazards.count(B))
          break;
        if (!L.IsConst && !findActiveTemp(B->LHS))
          Opt = tryFuseFma(B->LHS, B->RHS, asInterval(R), false, false);
        if (Opt.empty() && !R.IsConst && !findActiveTemp(B->RHS))
          Opt = tryFuseFma(B->RHS, B->LHS, asInterval(L), false, false);
        break;
      case BinaryExpr::Op::Sub:
        // a*b - c = fma(a, b, -c);  c - a*b = fma(-a, b, c).
        if (OptInfo.FmaLoopHazards.count(B))
          break;
        if (!L.IsConst && !findActiveTemp(B->LHS))
          Opt = tryFuseFma(B->LHS, B->RHS, asInterval(R), false, true);
        if (Opt.empty() && !R.IsConst && !findActiveTemp(B->RHS))
          Opt = tryFuseFma(B->RHS, B->LHS, asInterval(L), true, false);
        break;
      default:
        break;
      }
      if (!Opt.empty()) {
        Out.Code = prof(Opt, B);
        return Out;
      }
    }
    const char *Name = B->O == BinaryExpr::Op::Add   ? "add"
                       : B->O == BinaryExpr::Op::Sub ? "sub"
                       : B->O == BinaryExpr::Op::Mul ? "mul"
                                                     : "div";
    Out.Code = prof(std::string("ia_") + Name + "_" + OpSfx + "(" +
                        asInterval(L) + ", " + asInterval(R) + ")",
                    B);
    return Out;
  }
  case BinaryExpr::Op::LT:
  case BinaryExpr::Op::GT:
  case BinaryExpr::Op::LE:
  case BinaryExpr::Op::GE:
  case BinaryExpr::Op::EQ:
  case BinaryExpr::Op::NE: {
    TR Out;
    Out.OrigTy = B->type();
    if (!FloatOp) {
      const char *Op = B->O == BinaryExpr::Op::LT   ? " < "
                       : B->O == BinaryExpr::Op::GT ? " > "
                       : B->O == BinaryExpr::Op::LE ? " <= "
                       : B->O == BinaryExpr::Op::GE ? " >= "
                       : B->O == BinaryExpr::Op::EQ ? " == "
                                                    : " != ";
      Out.Code = maybeParen(L) + Op + maybeParen(R);
      return Out;
    }
    if ((B->LHS->type() && B->LHS->type()->isSimdVector()) ||
        (B->RHS->type() && B->RHS->type()->isSimdVector()))
      Diags.error(B->loc(),
                  "comparisons of SIMD vectors are not supported");
    if (isDd() &&
        (B->O == BinaryExpr::Op::EQ || B->O == BinaryExpr::Op::NE))
      Diags.error(B->loc(),
                  "==/!= on double-double intervals is not supported");
    const char *Name = B->O == BinaryExpr::Op::LT   ? "cmplt"
                       : B->O == BinaryExpr::Op::GT ? "cmpgt"
                       : B->O == BinaryExpr::Op::LE ? "cmple"
                       : B->O == BinaryExpr::Op::GE ? "cmpge"
                       : B->O == BinaryExpr::Op::EQ ? "cmpeq"
                                                    : "cmpne";
    Out.C = Cat::TBool;
    Out.Code = std::string("ia_") + Name + "_" + sfx() + "(" +
               asInterval(L) + ", " + asInterval(R) + ")";
    return Out;
  }
  case BinaryExpr::Op::LAnd:
  case BinaryExpr::Op::LOr: {
    TR Out;
    Out.OrigTy = B->type();
    if (L.C == Cat::TBool || R.C == Cat::TBool) {
      Out.C = Cat::TBool;
      Out.Code = std::string(B->O == BinaryExpr::Op::LAnd ? "ia_and_tb"
                                                          : "ia_or_tb") +
                 "(" + asTBool(L) + ", " + asTBool(R) + ")";
      return Out;
    }
    Out.Code = maybeParen(L) +
               (B->O == BinaryExpr::Op::LAnd ? " && " : " || ") +
               maybeParen(R);
    return Out;
  }
  default: {
    TR Out;
    Out.OrigTy = B->type();
    const char *Op = B->O == BinaryExpr::Op::Rem      ? " % "
                     : B->O == BinaryExpr::Op::Shl    ? " << "
                     : B->O == BinaryExpr::Op::Shr    ? " >> "
                     : B->O == BinaryExpr::Op::BitAnd ? " & "
                     : B->O == BinaryExpr::Op::BitOr  ? " | "
                                                      : " ^ ";
    Out.Code = maybeParen(L) + Op + maybeParen(R);
    return Out;
  }
  }
}

std::string Transformer::lvalueOf(const Expr *E) {
  const Expr *Stripped = ignoreParens(E);
  switch (Stripped->kind()) {
  case Expr::Kind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(Stripped);
    auto It = Renames.find(Ref->Decl);
    return It != Renames.end() ? It->second : Ref->Name;
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(Stripped);
    TR Idx = transformExpr(I->Idx);
    return lvalueOf(I->Base) + "[" + Idx.Code + "]";
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(Stripped);
    if (U->O == UnaryExpr::Op::Deref)
      return "*" + lvalueOf(U->Sub);
    break;
  }
  default:
    break;
  }
  Diags.error(Stripped->loc(), "unsupported assignment target");
  return transformExpr(Stripped).Code;
}

TR Transformer::transformCast(const CastExpr *C) {
  TR Sub = transformExpr(C->Sub);
  TR R;
  R.OrigTy = C->type();
  const Type *From = C->Sub->type();
  if (C->To->isPointer()) {
    R.Code = "(" + promoteTypeSpelling(C->To) + ")(" + Sub.Code + ")";
    return R;
  }
  if (C->To->isFloating()) {
    if (Sub.IsConst)
      return makeConstant(Sub.CF64, Sub.CDd, C->type());
    if (Sub.C == Cat::Interval) {
      if (C->To->kind() == Type::Kind::Float && From &&
          From->kind() == Type::Kind::Double) {
        R.C = Cat::Interval;
        R.Code = prof("ia_f32cast_" + sfx() + "(" + Sub.Code + ")", C);
        return R;
      }
      return Sub; // float<->double widening: intervals already double
    }
    R.C = Cat::Interval;
    R.Code = "ia_cst_" + sfx() + "((double)(" + Sub.Code + "))";
    return R;
  }
  R.Code = "(" + C->To->cName() + ")(" + Sub.Code + ")";
  return R;
}

//===----------------------------------------------------------------------===//
// Calls: math functions, SIMD intrinsics, user functions (Section V)
//===----------------------------------------------------------------------===//

namespace detail {

/// Hand-optimized interval implementations of common intrinsics
/// (Section V, "Optimized implementations"), double-precision target.
const std::map<std::string, std::string> &handOptimizedF64() {
  static const std::map<std::string, std::string> Map = {
      {"_mm256_add_pd", "ia_add_m256di_2"},
      {"_mm256_sub_pd", "ia_sub_m256di_2"},
      {"_mm256_mul_pd", "ia_mul_m256di_2"},
      {"_mm256_div_pd", "ia_div_m256di_2"},
      {"_mm256_sqrt_pd", "ia_sqrt_m256di_2"},
      {"_mm256_loadu_pd", "ia_loadu_m256di_2"},
      {"_mm256_load_pd", "ia_loadu_m256di_2"},
      {"_mm256_storeu_pd", "ia_storeu_m256di_2"},
      {"_mm256_store_pd", "ia_storeu_m256di_2"},
      {"_mm256_set1_pd", "ia_set1_m256di_2"},
      {"_mm256_set_pd", "ia_set_m256di_2"},
      {"_mm256_setzero_pd", "ia_setzero_m256di_2"},
      {"_mm_add_pd", "ia_add_m256di_1"},
      {"_mm_sub_pd", "ia_sub_m256di_1"},
      {"_mm_mul_pd", "ia_mul_m256di_1"},
      {"_mm_div_pd", "ia_div_m256di_1"},
      {"_mm_loadu_pd", "ia_loadu_m256di_1"},
      {"_mm_load_pd", "ia_loadu_m256di_1"},
      {"_mm_storeu_pd", "ia_storeu_m256di_1"},
      {"_mm_store_pd", "ia_storeu_m256di_1"},
      {"_mm_set1_pd", "ia_set1_m256di_1"},
      {"_mm_setzero_pd", "ia_setzero_m256di_1"},
      {"_mm_cvtsd_f64", "ia_extract0_m256di_1"},
      {"_mm256_extractf128_pd", "ia_extractf128_m256di_2"},
      {"_mm256_castpd256_pd128", "ia_castlow_m256di_2"},
  };
  return Map;
}

/// Memory/shuffle-free intrinsics that stay hand-written even for the
/// double-double target (arithmetic goes through the generated automatic
/// path, which is what makes IGen-vv-dd slow in the paper).
const std::map<std::string, std::string> &handOptimizedDd() {
  static const std::map<std::string, std::string> Map = {
      {"_mm256_loadu_pd", "ia_loadu_ddi_4"},
      {"_mm256_load_pd", "ia_loadu_ddi_4"},
      {"_mm256_storeu_pd", "ia_storeu_ddi_4"},
      {"_mm256_store_pd", "ia_storeu_ddi_4"},
      {"_mm256_set1_pd", "ia_set1_ddi_4"},
      {"_mm256_set_pd", "ia_set_ddi_4"},
      {"_mm256_setzero_pd", "ia_setzero_ddi_4"},
      {"_mm256_add_pd", "ia_add_ddi_4"},
      {"_mm256_sub_pd", "ia_sub_ddi_4"},
      {"_mm256_mul_pd", "ia_mul_ddi_4"},
      {"_mm256_div_pd", "ia_div_ddi_4"},
      {"_mm_loadu_pd", "ia_loadu_ddi_2"},
      {"_mm_load_pd", "ia_loadu_ddi_2"},
      {"_mm_storeu_pd", "ia_storeu_ddi_2"},
      {"_mm_store_pd", "ia_storeu_ddi_2"},
      {"_mm_set1_pd", "ia_set1_ddi_2"},
      {"_mm_setzero_pd", "ia_setzero_ddi_2"},
      {"_mm_add_pd", "ia_add_ddi_2"},
      {"_mm_sub_pd", "ia_sub_ddi_2"},
      {"_mm_mul_pd", "ia_mul_ddi_2"},
      {"_mm_div_pd", "ia_div_ddi_2"},
      {"_mm_cvtsd_f64", "ia_extract0_ddi_2"},
      {"_mm256_extractf128_pd", "ia_extractf128_ddi_4"},
      {"_mm256_castpd256_pd128", "ia_castlow_ddi_4"},
  };
  return Map;
}

} // namespace detail

TR Transformer::transformCall(const CallExpr *C) {
  TR R;
  R.OrigTy = C->type();
  CalleeKind CK = classifyCallee(C->Callee);

  if (CK == CalleeKind::MathFunction) {
    // sinf/cosf/... promote to the double interval versions.
    std::string Base = C->Callee;
    if (endsWith(Base, "f") && Base != "fabsf")
      Base.pop_back();
    if (Base == "fabsf" || Base == "fabs")
      Base = "abs";
    if (Base == "fmin")
      Base = "min";
    if (Base == "fmax")
      Base = "max";
    // Every math function has a double-double form: abs/sqrt/min/max are
    // native, the elementary functions fall back to the f64 kernel on the
    // interval's outer hull (sound, though no tighter than f64i).
    if (C->Args.empty() || ((Base == "min" || Base == "max") &&
                            C->Args.size() < 2)) {
      Diags.error(C->loc(), "wrong number of arguments to '" + C->Callee +
                                "'");
      R.C = Cat::Interval;
      R.Code = "ia_cst_" + sfx() + "(0.0)";
      return R;
    }
    TR Arg = transformExpr(C->Args[0]);
    R.C = Cat::Interval;
    if (Base == "min" || Base == "max") {
      TR Arg2 = transformExpr(C->Args[1]);
      R.Code = prof("ia_" + Base + "_" + sfx() + "(" + asInterval(Arg) +
                        ", " + asInterval(Arg2) + ")",
                    C);
      return R;
    }
    // At -O1 and above the transcendentals with certified polynomial
    // kernels (interval/PolyKernels.h) lower to the fast variants: no
    // rounding-mode switch per call, enclosure widened by the certified
    // bound instead of the libm ulp band. -O0 keeps the libm path.
    static const std::set<std::string> PolyFast = {"exp", "log", "sin",
                                                   "cos"};
    if (optOn() && !isDd() && PolyFast.count(Base))
      Base += "_fast";
    R.Code = prof("ia_" + Base + "_" + sfx() + "(" + asInterval(Arg) + ")", C);
    return R;
  }

  if (CK == CalleeKind::Intrinsic) {
    // Vector FMA fusion: _mm{256,}_add_pd(_mm{256,}_mul_pd(a, b), c) and the
    // mirrored form lower to the fused interval FMA kernels.
    if (optOn() && !isDd() &&
        (C->Callee == "_mm256_add_pd" || C->Callee == "_mm_add_pd") &&
        C->Args.size() == 2) {
      bool Wide = C->Callee == "_mm256_add_pd";
      const char *MulName = Wide ? "_mm256_mul_pd" : "_mm_mul_pd";
      const char *FmaName = Wide ? "ia_fma_m256di_2" : "ia_fma_m256di_1";
      for (int Side = 0; Side < 2; ++Side) {
        const auto *MC = dynCast<CallExpr>(ignoreParens(C->Args[Side]));
        if (!MC || MC->Callee != MulName || MC->Args.size() != 2)
          continue;
        // Mirrored form reorders argument evaluation; only do it when both
        // call operands are pure values.
        if (Side == 1 &&
            !(exprIsPureValue(C->Args[0]) && exprIsPureValue(C->Args[1])))
          continue;
        TR MA = transformExpr(MC->Args[0]);
        TR MB = transformExpr(MC->Args[1]);
        TR Addend = transformExpr(C->Args[1 - Side]);
        R.C = Cat::Interval;
        R.Code = std::string(FmaName) + "(" + asInterval(MA) + ", " +
                 asInterval(MB) + ", " + asInterval(Addend) + ")";
        return R;
      }
    }
    const auto &Hand =
        isDd() ? detail::handOptimizedDd() : detail::handOptimizedF64();
    auto It = Hand.find(C->Callee);
    std::string Name;
    if (It != Hand.end()) {
      Name = It->second;
    } else {
      // Automatic path: implementation produced by the SIMD generator
      // and compiled through IGen itself (Fig. 4).
      Name = (isDd() ? "_ci_dd" : "_ci") + C->Callee;
      UsedGeneratedIntrinsics = true;
    }
    std::string Args;
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I)
        Args += ", ";
      TR Arg = transformExpr(C->Args[I]);
      const Type *ArgTy = C->Args[I]->type();
      bool WantInterval = ArgTy && ArgTy->isFloatingOrVector();
      Args += WantInterval ? asInterval(Arg) : Arg.Code;
    }
    R.Code = Name + "(" + Args + ")";
    if (C->type() && C->type()->isFloatingOrVector())
      R.C = Cat::Interval;
    return R;
  }

  if (CK == CalleeKind::Allocation) {
    std::string Args;
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I)
        Args += ", ";
      Args += transformExpr(C->Args[I]).Code;
    }
    R.Code = C->Callee + "(" + Args + ")";
    return R;
  }

  // User function: arguments promote exactly like parameters do.
  std::string Args;
  for (size_t I = 0; I < C->Args.size(); ++I) {
    if (I)
      Args += ", ";
    TR Arg = transformExpr(C->Args[I]);
    const Type *ArgTy = C->Args[I]->type();
    bool WantInterval = ArgTy && ArgTy->isFloatingOrVector();
    Args += WantInterval ? asInterval(Arg) : Arg.Code;
  }
  R.Code = C->Callee + "(" + Args + ")";
  if (C->type() && C->type()->isFloatingOrVector()) {
    R.C = Cat::Interval;
    // --harden: an external callee (declared, not defined here) may have
    // disturbed the FP environment. ia_fenv_guard evaluates the call
    // first, checks after, and poisons its result if required.
    if (Opts.Harden && !DefinedFns.count(C->Callee))
      R.Code = "ia_fenv_guard(" + R.Code + ")";
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Transformer::emitDecl(const VarDecl *D) {
  std::string S = promoteTypeAndName(D->Ty, D->Name);
  if (D->Init) {
    TR Init = transformExpr(D->Init);
    bool WantInterval = D->Ty->isFloatingOrVector();
    S += " = " + (WantInterval ? asInterval(Init) : Init.Code);
  }
  line(S + ";");
}

void Transformer::emitExprStmt(const ExprStmt *S) {
  // Reduction update statements become accumulator feeds (Fig. 7).
  auto It = UpdateToAcc.find(S);
  if (It != UpdateToAcc.end()) {
    const ReductionSite *Site = It->second.first;
    const std::string &Acc = It->second.second;
    for (const ReductionTerm &T : Site->Terms) {
      TR Term = transformExpr(T.Term);
      std::string Code = asInterval(Term);
      if (T.Negated)
        Code = "ia_neg_" + sfx() + "(" + Code + ")";
      line("isum_accumulate_" + sfx() + "(&" + Acc + ", " + Code + ");");
    }
    return;
  }
  line(transformExpr(S->E).Code + ";");
  // --harden: a statement-position external call with a non-interval
  // result got no ia_fenv_guard wrapper; re-check the environment here.
  if (Opts.Harden) {
    const auto *CE = dynCast<CallExpr>(ignoreParens(S->E));
    if (CE && classifyCallee(CE->Callee) == CalleeKind::UserFunction &&
        !DefinedFns.count(CE->Callee) &&
        !(CE->type() && CE->type()->isFloatingOrVector()))
      line("igen_fenv_check();");
  }
}

bool Transformer::collectAssignTargetsInExpr(const Expr *E,
                                             std::set<VarDecl *> &Targets) {
  const auto *B = dynCast<BinaryExpr>(ignoreParens(E));
  if (!B)
    return !dynCast<CallExpr>(ignoreParens(E)); // calls may have effects
  if (!B->isAssignment())
    return true;
  const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS));
  if (!Ref || !Ref->Decl)
    return false; // array/pointer stores: join unsupported (paper)
  const Type *Ty = Ref->Decl->Ty;
  if (!Ty->isFloating())
    return false; // integer or vector variables: unsupported
  Targets.insert(Ref->Decl);
  return collectAssignTargetsInExpr(B->RHS, Targets);
}

bool Transformer::collectJoinTargets(const Stmt *S,
                                     std::set<VarDecl *> &Targets) {
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->Body)
      if (!collectJoinTargets(Child, Targets))
        return false;
    return true;
  case Stmt::Kind::ExprStmt:
    return collectAssignTargetsInExpr(cast<ExprStmt>(S)->E, Targets);
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    return collectJoinTargets(If->Then, Targets) &&
           (!If->Else || collectJoinTargets(If->Else, Targets));
  }
  case Stmt::Kind::Null:
    return true;
  default:
    return false; // loops, returns, declarations: bail out
  }
}

void Transformer::emitIf(const IfStmt *S) {
  TR Cond = transformExpr(S->Cond);
  if (Cond.C != Cat::TBool) {
    line("if (" + Cond.Code + ")");
    emitBody(S->Then);
    if (S->Else) {
      line("else");
      emitBody(S->Else);
    }
    return;
  }

  std::string Tmp = freshTemp();
  line("tbool " + Tmp + " = " + Cond.Code + ";");

  std::set<VarDecl *> Targets;
  bool JoinSafe = Opts.Branches == TransformOptions::BranchPolicy::Join &&
                  collectJoinTargets(S->Then, Targets) &&
                  (!S->Else || collectJoinTargets(S->Else, Targets));
  if (!JoinSafe) {
    if (Opts.Branches == TransformOptions::BranchPolicy::Join)
      Diags.warning(S->loc(),
                    "cannot join this branch (arrays, integers or control "
                    "flow are modified); unknown conditions will signal");
    // Default policy: ia_cvt2bool_tb signals on unknown (Fig. 2).
    line("if (ia_cvt2bool_tb(" + Tmp + ")) /*may signal*/");
    emitBody(S->Then);
    if (S->Else) {
      line("else");
      emitBody(S->Else);
    }
    return;
  }

  // Join mode: run both branches on the unknown state and hull the
  // results (Section IV-B, "Unknown-state in if-else statements").
  line("if (ia_istrue_tb(" + Tmp + "))");
  emitBody(S->Then);
  line("else if (ia_isfalse_tb(" + Tmp + "))");
  if (S->Else)
    emitBody(S->Else);
  else
    line("{ ; }");
  line("else");
  line("{");
  ++Indent;
  std::string Ty = scalarIntervalType();
  for (VarDecl *V : Targets)
    line(Ty + " _sav_" + V->Name + " = " + V->Name + ";");
  emitBody(S->Then);
  for (VarDecl *V : Targets) {
    line(Ty + " _res_" + V->Name + " = " + V->Name + ";");
    line(V->Name + " = _sav_" + V->Name + ";");
  }
  if (S->Else)
    emitBody(S->Else);
  else
    line("{ ; }");
  for (VarDecl *V : Targets)
    line(V->Name + " = ia_join_" + sfx() + "(" + V->Name + ", _res_" +
         V->Name + ");");
  --Indent;
  line("}");
}

std::string Transformer::forHeader(const ForStmt *S) {
  std::string Init;
  if (S->Init && S->Init->kind() == Stmt::Kind::DeclStmt) {
    const auto *DS = cast<DeclStmt>(S->Init);
    for (size_t I = 0; I < DS->Decls.size(); ++I) {
      const VarDecl *D = DS->Decls[I];
      std::string Piece = promoteTypeAndName(D->Ty, D->Name);
      if (D->Init) {
        TR InitTR = transformExpr(D->Init);
        Piece += " = " + (D->Ty->isFloatingOrVector() ? asInterval(InitTR)
                                                      : InitTR.Code);
      }
      Init += (I ? ", " : "") + Piece;
    }
  } else if (S->Init && S->Init->kind() == Stmt::Kind::ExprStmt) {
    Init = transformExpr(cast<ExprStmt>(S->Init)->E).Code;
  }
  std::string Cond;
  if (S->Cond) {
    TR CondTR = transformExpr(S->Cond);
    Cond = CondTR.C == Cat::TBool
               ? "ia_cvt2bool_tb(" + CondTR.Code + ")"
               : CondTR.Code;
  }
  std::string Inc = S->Inc ? transformExpr(S->Inc).Code : "";
  return "for (" + Init + "; " + Cond + "; " + Inc + ")";
}

size_t Transformer::emitCseTemps(const Stmt *S) {
  if (!optOn())
    return 0;
  auto It = OptInfo.CommonSubexprs.find(S);
  if (It == OptInfo.CommonSubexprs.end())
    return 0;

  // Expression roots of the statement, for occurrence counting.
  std::vector<const Expr *> Roots;
  if (const auto *DS = dynCast<DeclStmt>(S)) {
    for (const VarDecl *D : DS->Decls)
      if (D->Init)
        Roots.push_back(D->Init);
  } else if (const auto *ES = dynCast<ExprStmt>(S)) {
    Roots.push_back(ES->E);
  } else if (const auto *RS = dynCast<ReturnStmt>(S)) {
    if (RS->Value)
      Roots.push_back(RS->Value);
  }

  // Occurrences hidden inside an already-active temp (e.g. a hoisted
  // loop invariant containing this candidate) are never re-emitted, so
  // they must not count toward the reuse threshold.
  auto visibleCount = [&](const Expr *Rep) {
    int N = 0;
    for (const Expr *Root : Roots)
      forEachSubexprPruned(Root, [&](const Expr *E) {
        if (findActiveTemp(E))
          return false;
        if (exprCseEqual(E, Rep)) {
          ++N;
          return false;
        }
        return true;
      });
    return N;
  };

  size_t N = 0;
  for (const Expr *Rep : It->second) {
    if (findActiveTemp(Rep))
      continue; // already available from a hoist or an enclosing statement
    if (visibleCount(Rep) < 2)
      continue;
    TR Init = transformExpr(Rep);
    if (Init.IsConst || Init.C != Cat::Interval)
      continue; // constants fold; nothing to reuse
    std::string Name = formatString("_cse%d", ++CseCounter);
    line(scalarIntervalType() + " " + Name + " = " + Init.Code + ";");
    ActiveTemps.push_back({Rep, Name});
    ++N;
  }
  return N;
}

void Transformer::emitFor(const ForStmt *S) {
  // Batched array loops (--batch-loops): a recognized elementwise loop
  // collapses to one ia_arr_* call. f64i only -- the ddi runtime (and
  // the tier's dd clone) keeps elementwise emission -- and not under
  // --profile, which wants the per-site call instrumentation the
  // elementwise path carries.
  if (Opts.EnableBatchLoops &&
      Opts.Prec == TransformOptions::Precision::Double && !Opts.Profile &&
      TMode != TierMode::DdClone) {
    if (std::optional<BatchLoop> L = matchBatchLoop(S)) {
      TR Dst = transformExpr(L->Dst);
      TR A = transformExpr(L->A);
      TR Count = transformExpr(L->Count);
      std::string Call = std::string("ia_arr_") + L->opName() + "_" +
                         sfx() + "(" + Dst.Code + ", " + A.Code;
      if (L->B)
        Call += ", " + transformExpr(L->B).Code;
      Call += ", (unsigned long)(" + Count.Code + "));";
      line(Call);
      return;
    }
  }

  // Hoist loop-invariant enclosures ahead of the header; they stay
  // visible (via ActiveTemps) for the whole loop emission.
  size_t Hoisted = 0;
  if (optOn()) {
    auto HIt = OptInfo.LoopInvariants.find(S);
    if (HIt != OptInfo.LoopInvariants.end()) {
      for (const Expr *Rep : HIt->second) {
        if (findActiveTemp(Rep))
          continue;
        TR Init = transformExpr(Rep);
        if (Init.IsConst || Init.C != Cat::Interval)
          continue;
        std::string Name = formatString("_hoist%d", ++HoistCounter);
        line(scalarIntervalType() + " " + Name + " = " + Init.Code + ";");
        ActiveTemps.push_back({Rep, Name});
        ++Hoisted;
      }
    }
  }

  std::vector<const ReductionSite *> Sites;
  if (Opts.EnableReductions)
    Sites = Reductions.sitesForLoop(S);

  std::vector<std::pair<const ReductionSite *, std::string>> Accs;
  for (const ReductionSite *Site : Sites) {
    std::string Acc = formatString("_acc%d", ++AccCounter);
    Accs.push_back({Site, Acc});
    UpdateToAcc[Site->Update] = {Site, Acc};
    line("acc_" + sfx() + " " + Acc + ";");
    TR Target = transformExpr(Site->Target);
    line("isum_init_" + sfx() + "(&" + Acc + ", " + asInterval(Target) +
         ");");
  }

  line(forHeader(S));
  emitBody(S->Body);

  for (auto &[Site, Acc] : Accs) {
    std::string Red = "isum_reduce_" + sfx() + "(&" + Acc + ")";
    if (cloneMemLvalue(Site->Target))
      Red = "ia_narrow_dd_f64(" + Red + ")";
    line(lvalueOf(Site->Target) + " = " + Red + ";");
    UpdateToAcc.erase(Site->Update);
  }
  popTemps(Hoisted);
}

void Transformer::emitWhileCond(std::string Keyword, const Expr *Cond) {
  TR CondTR = transformExpr(Cond);
  std::string Code = CondTR.C == Cat::TBool
                         ? "ia_cvt2bool_tb(" + CondTR.Code + ")"
                         : CondTR.Code;
  line(Keyword + " (" + Code + ")");
}

void Transformer::emitCompound(const CompoundStmt *S) {
  for (const Stmt *Child : S->Body)
    emitStmt(Child);
}

void Transformer::emitBody(const Stmt *S) {
  line("{");
  ++Indent;
  if (const auto *C = dynCast<CompoundStmt>(S))
    emitCompound(C);
  else
    emitStmt(S);
  --Indent;
  line("}");
}

void Transformer::emitStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    line("{");
    ++Indent;
    emitCompound(cast<CompoundStmt>(S));
    --Indent;
    line("}");
    return;
  case Stmt::Kind::DeclStmt: {
    size_t Temps = emitCseTemps(S);
    for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
      emitDecl(D);
    popTemps(Temps);
    return;
  }
  case Stmt::Kind::ExprStmt: {
    size_t Temps = emitCseTemps(S);
    emitExprStmt(cast<ExprStmt>(S));
    popTemps(Temps);
    return;
  }
  case Stmt::Kind::If:
    emitIf(cast<IfStmt>(S));
    return;
  case Stmt::Kind::For:
    emitFor(cast<ForStmt>(S));
    return;
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    emitWhileCond("while", W->Cond);
    emitBody(W->Body);
    return;
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    line("do");
    emitBody(D->Body);
    TR CondTR = transformExpr(D->Cond);
    std::string Code = CondTR.C == Cat::TBool
                           ? "ia_cvt2bool_tb(" + CondTR.Code + ")"
                           : CondTR.Code;
    line("while (" + Code + ");");
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->Value) {
      line("return;");
      return;
    }
    size_t Temps = emitCseTemps(S);
    TR V = transformExpr(R->Value);
    if (TMode == TierMode::Wrapper) {
      // Region exit: check the blowup predicate on the f64i result and
      // re-execute the region at ddi from the entry snapshot when it
      // fires. The meet of the two enclosures is sound (both contain the
      // true result set) and never wider than the f64i answer.
      std::string Id = formatString("_igen_tier_base + %uu", TierRegionId);
      line("{");
      ++Indent;
      line("f64i _tier_ret = " + asInterval(V) + ";");
      if (TierMovable) {
        line("if (igen_tier_escalate(_tier_ret, " + Id + "))");
        ++Indent;
        line("_tier_ret = ia_meet_f64(_tier_ret, ia_narrow_dd_f64(" +
             TierCloneCall + "));");
        --Indent;
      } else {
        line("igen_tier_note_immovable(_tier_ret, " + Id + ");");
      }
      line("return _tier_ret;");
      --Indent;
      line("}");
      popTemps(Temps);
      return;
    }
    // Wrap per the function's (promoted) return type.
    bool WantInterval = R->Value->type() &&
                        R->Value->type()->isFloatingOrVector();
    line("return " + (WantInterval ? asInterval(V) : V.Code) + ";");
    popTemps(Temps);
    return;
  }
  case Stmt::Kind::Break:
    line("break;");
    return;
  case Stmt::Kind::Continue:
    line("continue;");
    return;
  case Stmt::Kind::Null:
    line(";");
    return;
  }
}

void Transformer::emitFunction(FunctionDecl *F) {
  if (Opts.Tier && F->Body) {
    TierEligibility El;
    if (El.check(*F)) {
      // Clone first so the wrapper's escalation call sees it defined.
      TMode = TierMode::DdClone;
      emitFunctionImpl(F, F->Name + "__dd");
      Body += '\n';
      TierMovable = !analyzeMovability(*F).ResultImmovable;
      TMode = TierMode::Wrapper;
      emitFunctionImpl(F, F->Name);
      TMode = TierMode::Off;
      return;
    }
    Diags.warning(F->Loc, "function '" + F->Name +
                              "' is not tier-eligible (" + El.Why +
                              "); emitting the plain f64i translation");
  }
  emitFunctionImpl(F, F->Name);
}

void Transformer::emitFunctionImpl(FunctionDecl *F,
                                   const std::string &EmitName) {
  CurFuncName = F->Name;
  if (Opts.EnableReductions)
    Reductions = analyzeReductions(F, Diags);
  else
    Reductions = ReductionAnalysisResult();
  UpdateToAcc.clear();
  Renames.clear();
  ActiveTemps.clear();
  if (Opts.OptLevel > 0 && F->Body) {
    OptOptions OO;
    // Guard-derived facts require the Exception policy: under Join both
    // branch bodies execute unconditionally.
    OO.GuardFacts =
        Opts.Branches == TransformOptions::BranchPolicy::Exception;
    OptInfo = analyzeFunctionForOpt(*F, OO);
  } else {
    OptInfo = OptFunctionInfo();
  }

  // Header (Fig. 2/3): floating types promote; tolerance parameters keep
  // their scalar type and gain an interval shadow in the body.
  std::string Header;
  if (F->IsStatic)
    Header += "static ";
  std::string Ret =
      F->RetTy->isFloatingOrVector() || needsPromotion(F->RetTy)
          ? promoteTypeSpelling(F->RetTy)
          : F->RetTy->cName();
  Header += Ret + (endsWith(Ret, "*") ? "" : " ") + EmitName + "(";
  for (size_t I = 0; I < F->Params.size(); ++I) {
    VarDecl *P = F->Params[I];
    if (I)
      Header += ", ";
    std::string TypeName = P->HasTolerance ? P->Ty->cName()
                                           : promoteTypeSpelling(P->Ty);
    Header += TypeName + (endsWith(TypeName, "*") ? "" : " ") + P->Name;
  }
  if (F->Params.empty())
    Header += "void";
  Header += ")";

  if (!F->Body) {
    line(Header + ";");
    return;
  }
  line(Header);
  line("{");
  ++Indent;
  if (Opts.Harden) {
    // Sound-region entry: the caller may arrive with any FP environment.
    std::string Whole = wholeCtorFor(F->RetTy);
    if (!Whole.empty())
      line("if (igen_fenv_check()) return " + Whole + ";");
    else
      line("igen_fenv_check();");
  }
  if (TMode == TierMode::Wrapper) {
    // Region snapshot, captured at f64i cost: the body may overwrite
    // parameters, and on blowup the dd clone re-executes from the entry
    // state. Promotion to ddi is exact, so both tiers start from
    // bit-identical intervals (what makes movability analysis possible).
    std::string Args;
    for (size_t I = 0; I < F->Params.size(); ++I) {
      VarDecl *P = F->Params[I];
      if (I)
        Args += ", ";
      if (P->HasTolerance) {
        // The body only reads its interval shadow, never the raw value,
        // and the clone applies its own dd-tight widening.
        Args += P->Name;
        continue;
      }
      const Type *T = P->Ty;
      std::string Snap = "_tier_in_" + P->Name;
      std::string Spell =
          T->isArray() ? promoteTypeSpelling(T->element(), true) + " *"
                       : promoteTypeSpelling(T);
      line(Spell + (endsWith(Spell, "*") ? "" : " ") + Snap + " = " +
           P->Name + ";");
      Args += T->isFloating() ? "ia_promote_f64_dd(" + Snap + ")" : Snap;
    }
    TierCloneCall = F->Name + "__dd(" + Args + ")";
    TierRegionId = static_cast<unsigned>(SiteTable.Regions.size());
    TierRegion Region;
    Region.Func = F->Name;
    Region.Line = F->Loc.Line;
    Region.Movable = TierMovable;
    SiteTable.Regions.push_back(Region);
  }
  for (VarDecl *P : F->Params) {
    if (!P->HasTolerance)
      continue;
    std::string Shadow = "_" + P->Name;
    // _a = a +- tol (Fig. 3). The tolerance literal is widened upward.
    RoundUpwardScope Up;
    DdInterval TolEnc = ddIntervalFromDecimal(P->ToleranceSpelling);
    double TolUp = TolEnc.hasNaN() ? P->Tolerance
                                   : ddToDoubleUp(TolEnc.Hi);
    line(scalarIntervalType() + " " + Shadow + " = ia_set_tol_" + sfx() +
         "(" + P->Name + ", " + fmtDouble(TolUp) + "); // " + P->Name +
         " +- " + P->ToleranceSpelling);
    Renames[P] = Shadow;
  }
  emitCompound(F->Body);
  --Indent;
  line("}");
}

//===----------------------------------------------------------------------===//
// Whole translation unit
//===----------------------------------------------------------------------===//

std::string Transformer::run() {
  Body.clear();
  SiteTable = ProfileSiteTable();
  SiteTable.Module = Opts.ModuleName.empty() ? "igen" : Opts.ModuleName;
  SiteTable.SourceFile = Opts.SourceName;
  DefinedFns.clear();
  for (const TopLevelItem &Item : Ctx.TU.Items)
    if (Item.Function && Item.Function->Body)
      DefinedFns.insert(Item.Function->Name);
  for (const TopLevelItem &Item : Ctx.TU.Items) {
    if (!Item.Function) {
      line(Item.Directive);
      continue;
    }
    emitFunction(Item.Function);
    Body += '\n';
  }
  if ((Opts.Profile && !SiteTable.Sites.empty()) ||
      (Opts.Tier && !SiteTable.Regions.empty()))
    compactSites();

  std::string Out;
  Out += "// Generated by igen (IGen reproduction). Do not edit.\n";
  Out += formatString("// target precision: %s, library: %s\n",
                      isDd() ? "double-double" : "double",
                      Opts.ScalarLibrary ? "scalar" : "SIMD");
  if (Opts.ScalarLibrary)
    Out += "#define IGEN_F64I_SCALAR 1\n";
  Out += "#include \"" + Opts.RuntimeHeader + "\"\n";
  if (Opts.Harden)
    Out += "#include \"" + Opts.HardenHeader + "\"\n";
  if (Opts.Profile)
    Out += "#include \"profile/igen_prof.h\"\n";
  if (Opts.Tier)
    Out += "#include \"" + Opts.TierHeader + "\"\n";
  if (UsedGeneratedIntrinsics)
    Out += "#include \"" + Opts.GeneratedIntrinsicsHeader + "\"\n";
  Out += "\n";
  if (Opts.Profile && !SiteTable.Sites.empty()) {
    // Compile-time site table: self-registers with the profiler runtime
    // at static-init time; _igen_prof_base offsets this TU's IDs so
    // several profiled TUs can coexist in one binary.
    Out += formatString("static const igen_prof_site _igen_prof_sites[%zu] "
                        "= {\n",
                        SiteTable.Sites.size());
    for (const ProfileSite &S : SiteTable.Sites)
      Out += formatString("  {\"%s\", \"%s\", \"%s\", %uu, %uu},\n",
                          escapeCString(S.Op).c_str(),
                          escapeCString(S.Func).c_str(),
                          escapeCString(S.Text).c_str(), S.Line, S.Col);
    Out += "};\n";
    Out += formatString(
        "static const unsigned _igen_prof_base = "
        "igen_prof_register_sites(\"%s\", \"%s\", _igen_prof_sites, %zu);\n",
        escapeCString(SiteTable.Module).c_str(),
        escapeCString(SiteTable.SourceFile).c_str(), SiteTable.Sites.size());
    Out += "\n";
  }
  if (Opts.Tier && !SiteTable.Regions.empty()) {
    // Compile-time region table: self-registers with the tier runtime at
    // static-init time; _igen_tier_base offsets this TU's region IDs so
    // several tiered TUs can coexist in one binary.
    Out += formatString(
        "static const igen_tier_region _igen_tier_regions[%zu] = {\n",
        SiteTable.Regions.size());
    for (const TierRegion &R : SiteTable.Regions)
      Out += formatString("  {\"%s\", %uu, %d},\n",
                          escapeCString(R.Func).c_str(), R.Line,
                          R.Movable ? 1 : 0);
    Out += "};\n";
    Out += formatString(
        "static const unsigned _igen_tier_base = "
        "igen_tier_register_regions(\"%s\", _igen_tier_regions, %zu);\n",
        escapeCString(SiteTable.Module).c_str(), SiteTable.Regions.size());
    Out += "\n";
  }
  Out += Body;
  return Out;
}

} // namespace

std::string igen::transformToIntervals(ASTContext &Ctx,
                                       DiagnosticsEngine &Diags,
                                       const TransformOptions &Options,
                                       ProfileSiteTable *SitesOut) {
  Transformer T(Ctx, Diags, Options);
  std::string Out = T.run();
  if (SitesOut)
    *SitesOut = T.siteTable();
  return Out;
}
