//===- ASTDumper.h - Human-readable AST dumps -------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Produces an indented textual dump of the AST (in the spirit of
/// `clang -ast-dump`), used by `igen --dump-ast` and by tests that assert
/// on tree structure rather than emitted C.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_ASTDUMPER_H
#define IGEN_FRONTEND_ASTDUMPER_H

#include "frontend/AST.h"

#include <string>

namespace igen {

/// Dumps the whole translation unit. Types are printed when Sema has run.
std::string dumpAST(const TranslationUnit &TU);

/// Dumps a single expression subtree (one line per node).
std::string dumpExpr(const Expr *E, int Indent = 0);

/// Dumps a statement subtree.
std::string dumpStmt(const Stmt *S, int Indent = 0);

} // namespace igen

#endif // IGEN_FRONTEND_ASTDUMPER_H
