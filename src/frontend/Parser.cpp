//===- Parser.cpp - Recursive-descent parser for the C subset --------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "support/StringExtras.h"

using namespace igen;

Parser::Parser(std::string_view Source, ASTContext &Ctx,
               DiagnosticsEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {
  Lexer L(Source, Diags);
  Tokens = L.lexAll();
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (consumeIf(K))
    return true;
  Diags.error(cur().Loc, formatString("expected %s %s, found %s",
                                      tokenKindName(K), Context,
                                      tokenKindName(cur().Kind)));
  return false;
}

bool Parser::tooDeep(const char *What) {
  if (Depth <= MaxNestingDepth)
    return false;
  if (!DepthDiagnosed) {
    Diags.error(cur().Loc,
                formatString("%s nesting exceeds the supported depth of "
                             "%d",
                             What, MaxNestingDepth));
    DepthDiagnosed = true;
  }
  return true;
}

void Parser::skipToSync() {
  // Recover at the next ';' or '}' so one error does not cascade.
  while (!cur().is(TokenKind::EndOfFile)) {
    if (cur().is(TokenKind::Semi) || cur().is(TokenKind::RBrace)) {
      consume();
      return;
    }
    consume();
  }
}

void Parser::syncStmt() {
  while (!cur().is(TokenKind::EndOfFile)) {
    switch (cur().Kind) {
    case TokenKind::Semi:
      consume();
      return;
    case TokenKind::RBrace: // enclosing block's close: let it handle
      return;
    case TokenKind::LBrace:
    case TokenKind::KwIf:
    case TokenKind::KwFor:
    case TokenKind::KwWhile:
    case TokenKind::KwDo:
    case TokenKind::KwReturn:
    case TokenKind::KwBreak:
    case TokenKind::KwContinue:
      return; // a fresh statement can start here
    default:
      if (startsType())
        return; // a declaration can start here
      consume();
    }
  }
}

bool Parser::errorLimitReached() {
  if (Diags.errorCount() < MaxParseErrors)
    return false;
  if (!ErrorLimitDiagnosed) {
    ErrorLimitDiagnosed = true;
    Diags.error(cur().Loc,
                formatString("too many errors (limit %u); giving up",
                             MaxParseErrors));
  }
  // Drain the token stream so every caller loop terminates.
  while (!cur().is(TokenKind::EndOfFile))
    consume();
  return true;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType() const {
  switch (cur().Kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwChar:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwShort:
  case TokenKind::KwUnsigned:
  case TokenKind::KwSigned:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwConst:
    return true;
  case TokenKind::Identifier:
    return startsWith(cur().Text, "__m128") ||
           startsWith(cur().Text, "__m256");
  default:
    return false;
  }
}

const Type *Parser::parseTypeSpecifier() {
  consumeIf(TokenKind::KwConst); // const is tracked only syntactically
  const Type *T = nullptr;
  switch (cur().Kind) {
  case TokenKind::KwVoid:
    consume();
    T = Ctx.Types.get(Type::Kind::Void);
    break;
  case TokenKind::KwChar:
    consume();
    T = Ctx.Types.get(Type::Kind::Char);
    break;
  case TokenKind::KwInt:
    consume();
    T = Ctx.Types.get(Type::Kind::Int);
    break;
  case TokenKind::KwShort:
    consume();
    consumeIf(TokenKind::KwInt);
    T = Ctx.Types.get(Type::Kind::Int);
    break;
  case TokenKind::KwLong:
    consume();
    consumeIf(TokenKind::KwLong);
    consumeIf(TokenKind::KwInt);
    T = Ctx.Types.get(Type::Kind::Long);
    break;
  case TokenKind::KwSigned:
    consume();
    consumeIf(TokenKind::KwInt);
    T = Ctx.Types.get(Type::Kind::Int);
    break;
  case TokenKind::KwUnsigned:
    consume();
    if (consumeIf(TokenKind::KwLong)) {
      consumeIf(TokenKind::KwLong);
      T = Ctx.Types.get(Type::Kind::ULong);
    } else {
      consumeIf(TokenKind::KwInt);
      T = Ctx.Types.get(Type::Kind::UInt);
    }
    break;
  case TokenKind::KwFloat:
    consume();
    T = Ctx.Types.get(Type::Kind::Float);
    break;
  case TokenKind::KwDouble:
    consume();
    T = Ctx.Types.get(Type::Kind::Double);
    break;
  case TokenKind::Identifier:
    if (const Type *Simd = Ctx.Types.getSimdTypeByName(cur().Text)) {
      consume();
      T = Simd;
      break;
    }
    [[fallthrough]];
  default:
    Diags.error(cur().Loc, formatString("expected a type, found %s",
                                        tokenKindName(cur().Kind)));
    consume();
    T = Ctx.Types.get(Type::Kind::Int);
    break;
  }
  consumeIf(TokenKind::KwConst);
  return parsePointerSuffix(T);
}

const Type *Parser::parsePointerSuffix(const Type *Base) {
  while (consumeIf(TokenKind::Star)) {
    consumeIf(TokenKind::KwConst);
    Base = Ctx.Types.getPointer(Base);
  }
  return Base;
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

bool Parser::parseTranslationUnit() {
  unsigned ErrorsBefore = Diags.errorCount();
  while (!cur().is(TokenKind::EndOfFile) && !errorLimitReached()) {
    if (cur().is(TokenKind::PassthroughDirective)) {
      Ctx.TU.Items.push_back(TopLevelItem{nullptr, consume().Text});
      continue;
    }
    if (cur().is(TokenKind::PragmaIgen)) {
      Diags.warning(cur().Loc, "#pragma igen outside a function; ignored");
      consume();
      continue;
    }
    if (consumeIf(TokenKind::Semi))
      continue;
    bool IsStatic = consumeIf(TokenKind::KwStatic);
    if (!startsType()) {
      Diags.error(cur().Loc,
                  formatString("expected a declaration, found %s",
                               tokenKindName(cur().Kind)));
      skipToSync();
      continue;
    }
    if (FunctionDecl *F = parseFunction(IsStatic))
      Ctx.TU.Items.push_back(TopLevelItem{F, {}});
  }
  return Diags.errorCount() == ErrorsBefore;
}

FunctionDecl *Parser::parseFunction(bool IsStatic) {
  const Type *RetTy = parseTypeSpecifier();
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected function name");
    skipToSync();
    return nullptr;
  }
  Token NameTok = consume();
  auto *F = Ctx.create<FunctionDecl>(NameTok.Loc, RetTy, NameTok.Text);
  F->IsStatic = IsStatic;
  if (!expect(TokenKind::LParen, "after function name")) {
    skipToSync();
    return nullptr;
  }
  if (!cur().is(TokenKind::RParen)) {
    if (cur().is(TokenKind::KwVoid) && peek().is(TokenKind::RParen)) {
      consume();
    } else {
      do {
        if (VarDecl *P = parseParam())
          F->Params.push_back(P);
      } while (consumeIf(TokenKind::Comma));
    }
  }
  expect(TokenKind::RParen, "after parameter list");
  if (consumeIf(TokenKind::Semi))
    return F; // prototype
  if (!cur().is(TokenKind::LBrace)) {
    Diags.error(cur().Loc, "expected function body or ';'");
    skipToSync();
    return F;
  }
  F->Body = parseCompound();
  return F;
}

VarDecl *Parser::parseParam() {
  const Type *T = parseTypeSpecifier();
  // Tolerance extension: `double:0.125 a` (Section IV-C).
  bool HasTol = false;
  double Tol = 0.0;
  std::string TolSpelling;
  if (consumeIf(TokenKind::Colon)) {
    if (cur().is(TokenKind::FloatLiteral) ||
        cur().is(TokenKind::IntegerLiteral)) {
      Token TolTok = consume();
      HasTol = true;
      Tol = TolTok.is(TokenKind::FloatLiteral)
                ? TolTok.FloatValue
                : static_cast<double>(TolTok.IntValue);
      TolSpelling = TolTok.Text;
    } else {
      Diags.error(cur().Loc, "expected tolerance literal after ':'");
    }
  }
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected parameter name");
    return nullptr;
  }
  Token NameTok = consume();
  // Array parameter suffix decays to pointer.
  while (consumeIf(TokenKind::LBracket)) {
    if (cur().is(TokenKind::IntegerLiteral))
      consume();
    expect(TokenKind::RBracket, "in array parameter");
    T = Ctx.Types.getPointer(T);
  }
  auto *P = Ctx.create<VarDecl>(NameTok.Loc, T, NameTok.Text);
  P->IsParam = true;
  P->HasTolerance = HasTol;
  P->Tolerance = Tol;
  P->ToleranceSpelling = TolSpelling;
  if (HasTol && !T->isFloating())
    Diags.error(NameTok.Loc,
                "tolerance annotations require a floating-point parameter");
  return P;
}

DeclStmt *Parser::parseDeclStmt() {
  SourceLoc Loc = cur().Loc;
  const Type *Base = parseTypeSpecifier();
  auto *DS = Ctx.create<DeclStmt>(Loc);
  do {
    const Type *T = parsePointerSuffix(Base);
    if (!cur().is(TokenKind::Identifier)) {
      Diags.error(cur().Loc, "expected variable name");
      skipToSync();
      return DS;
    }
    Token NameTok = consume();
    // Array dimensions (innermost last).
    std::vector<int64_t> Dims;
    while (consumeIf(TokenKind::LBracket)) {
      if (cur().is(TokenKind::IntegerLiteral))
        Dims.push_back(consume().IntValue);
      else {
        Diags.error(cur().Loc, "expected constant array size");
        Dims.push_back(1);
      }
      expect(TokenKind::RBracket, "after array size");
    }
    for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
      T = Ctx.Types.getArray(T, *It);
    auto *V = Ctx.create<VarDecl>(NameTok.Loc, T, NameTok.Text);
    if (consumeIf(TokenKind::Equal))
      V->Init = parseAssignment();
    DS->Decls.push_back(V);
  } while (consumeIf(TokenKind::Comma));
  if (!expect(TokenKind::Semi, "after declaration"))
    syncStmt();
  return DS;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *Parser::parseCompound() {
  SourceLoc Loc = cur().Loc;
  expect(TokenKind::LBrace, "to open block");
  auto *C = Ctx.create<CompoundStmt>(Loc);
  while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::EndOfFile) &&
         !errorLimitReached())
    C->Body.push_back(parseStmt());
  expect(TokenKind::RBrace, "to close block");
  return C;
}

Stmt *Parser::parseStmt() {
  DepthGuard Guard(*this);
  if (tooDeep("statement")) {
    SourceLoc Loc = cur().Loc;
    skipToSync();
    return Ctx.create<NullStmt>(Loc);
  }
  switch (cur().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDo();
  case TokenKind::KwReturn: {
    SourceLoc Loc = consume().Loc;
    Expr *Value = nullptr;
    if (!cur().is(TokenKind::Semi))
      Value = parseExpr();
    if (!expect(TokenKind::Semi, "after return"))
      syncStmt();
    return Ctx.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwBreak: {
    SourceLoc Loc = consume().Loc;
    if (!expect(TokenKind::Semi, "after break"))
      syncStmt();
    return Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = consume().Loc;
    if (!expect(TokenKind::Semi, "after continue"))
      syncStmt();
    return Ctx.create<ContinueStmt>(Loc);
  }
  case TokenKind::Semi:
    return Ctx.create<NullStmt>(consume().Loc);
  case TokenKind::PragmaIgen: {
    Token P = consume();
    // "#pragma igen reduce <var> <var> ..." applies to the next loop.
    std::string_view Rest = trim(P.Text);
    if (startsWith(Rest, "reduce")) {
      for (std::string_view Part : split(trim(Rest.substr(6)), ' '))
        if (!trim(Part).empty())
          PendingReduceVars.push_back(std::string(trim(Part)));
    } else {
      Diags.warning(P.Loc,
                    "unknown igen pragma '" + std::string(Rest) + "'");
    }
    return parseStmt();
  }
  case TokenKind::PassthroughDirective: {
    Diags.warning(cur().Loc, "preprocessor directive inside function "
                             "body is not supported; ignored");
    consume();
    return parseStmt();
  }
  default:
    break;
  }
  if (startsType())
    return parseDeclStmt();
  SourceLoc Loc = cur().Loc;
  Expr *E = parseExpr();
  if (!expect(TokenKind::Semi, "after expression"))
    syncStmt();
  return Ctx.create<ExprStmt>(Loc, E);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (consumeIf(TokenKind::KwElse))
    Else = parseStmt();
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = consume().Loc; // 'for'
  auto *F = Ctx.create<ForStmt>(Loc);
  F->ReduceVars = std::move(PendingReduceVars);
  PendingReduceVars.clear();
  expect(TokenKind::LParen, "after 'for'");
  if (cur().is(TokenKind::Semi)) {
    F->Init = Ctx.create<NullStmt>(consume().Loc);
  } else if (startsType()) {
    F->Init = parseDeclStmt(); // consumes ';'
  } else {
    SourceLoc ELoc = cur().Loc;
    Expr *E = parseExpr();
    expect(TokenKind::Semi, "after for-init");
    F->Init = Ctx.create<ExprStmt>(ELoc, E);
  }
  if (!cur().is(TokenKind::Semi))
    F->Cond = parseExpr();
  expect(TokenKind::Semi, "after for-condition");
  if (!cur().is(TokenKind::RParen))
    F->Inc = parseExpr();
  expect(TokenKind::RParen, "after for-increment");
  F->Body = parseStmt();
  return F;
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  Stmt *Body = parseStmt();
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseDo() {
  SourceLoc Loc = consume().Loc; // 'do'
  Stmt *Body = parseStmt();
  expect(TokenKind::KwWhile, "after do-body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  expect(TokenKind::Semi, "after do-while");
  return Ctx.create<DoStmt>(Loc, Body, Cond);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseAssignment() {
  Expr *LHS = parseConditional();
  BinaryExpr::Op O;
  switch (cur().Kind) {
  case TokenKind::Equal:
    O = BinaryExpr::Op::Assign;
    break;
  case TokenKind::PlusEqual:
    O = BinaryExpr::Op::AddAssign;
    break;
  case TokenKind::MinusEqual:
    O = BinaryExpr::Op::SubAssign;
    break;
  case TokenKind::StarEqual:
    O = BinaryExpr::Op::MulAssign;
    break;
  case TokenKind::SlashEqual:
    O = BinaryExpr::Op::DivAssign;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = consume().Loc;
  Expr *RHS = parseAssignment(); // right-associative
  return Ctx.create<BinaryExpr>(Loc, O, LHS, RHS);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinary(0);
  if (!cur().is(TokenKind::Question))
    return Cond;
  SourceLoc Loc = consume().Loc;
  Expr *Then = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *Else = parseConditional();
  return Ctx.create<ConditionalExpr>(Loc, Cond, Then, Else);
}

namespace {

/// Binary operator precedence; higher binds tighter. -1: not binary.
int binaryPrec(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Amp:
    return 5;
  case TokenKind::EqualEqual:
  case TokenKind::ExclaimEqual:
    return 6;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEqual:
  case TokenKind::GreaterEqual:
    return 7;
  case TokenKind::LessLess:
  case TokenKind::GreaterGreater:
    return 8;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  default:
    return -1;
  }
}

BinaryExpr::Op binaryOpFor(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinaryExpr::Op::LOr;
  case TokenKind::AmpAmp:
    return BinaryExpr::Op::LAnd;
  case TokenKind::Pipe:
    return BinaryExpr::Op::BitOr;
  case TokenKind::Caret:
    return BinaryExpr::Op::BitXor;
  case TokenKind::Amp:
    return BinaryExpr::Op::BitAnd;
  case TokenKind::EqualEqual:
    return BinaryExpr::Op::EQ;
  case TokenKind::ExclaimEqual:
    return BinaryExpr::Op::NE;
  case TokenKind::Less:
    return BinaryExpr::Op::LT;
  case TokenKind::Greater:
    return BinaryExpr::Op::GT;
  case TokenKind::LessEqual:
    return BinaryExpr::Op::LE;
  case TokenKind::GreaterEqual:
    return BinaryExpr::Op::GE;
  case TokenKind::LessLess:
    return BinaryExpr::Op::Shl;
  case TokenKind::GreaterGreater:
    return BinaryExpr::Op::Shr;
  case TokenKind::Plus:
    return BinaryExpr::Op::Add;
  case TokenKind::Minus:
    return BinaryExpr::Op::Sub;
  case TokenKind::Star:
    return BinaryExpr::Op::Mul;
  case TokenKind::Slash:
    return BinaryExpr::Op::Div;
  case TokenKind::Percent:
    return BinaryExpr::Op::Rem;
  default:
    return BinaryExpr::Op::Add;
  }
}

} // namespace

Expr *Parser::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  // Left-associative chains parse iteratively but still build trees whose
  // *depth* equals their length; cap it so downstream recursive passes
  // (sema, the transformer) cannot overflow either.
  constexpr int MaxChainTerms = 1024;
  int Terms = 0;
  while (true) {
    int Prec = binaryPrec(cur().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return LHS;
    if (++Terms > MaxChainTerms) {
      if (!DepthDiagnosed) {
        Diags.error(cur().Loc,
                    formatString("operator chain exceeds the supported "
                                 "length of %d terms",
                                 MaxChainTerms));
        DepthDiagnosed = true;
      }
      skipToSync();
      return LHS;
    }
    Token OpTok = consume();
    Expr *RHS = parseBinary(Prec + 1);
    LHS = Ctx.create<BinaryExpr>(OpTok.Loc, binaryOpFor(OpTok.Kind), LHS,
                                 RHS);
  }
}

Expr *Parser::parseUnary() {
  DepthGuard Guard(*this);
  SourceLoc Loc = cur().Loc;
  if (tooDeep("expression")) {
    consume();
    return Ctx.create<IntLiteralExpr>(Loc, 0, "0");
  }
  switch (cur().Kind) {
  case TokenKind::Minus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::Neg, parseUnary());
  case TokenKind::Plus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::Plus, parseUnary());
  case TokenKind::Exclaim:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::LogicalNot,
                                 parseUnary());
  case TokenKind::Tilde:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::BitNot, parseUnary());
  case TokenKind::PlusPlus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::PreInc, parseUnary());
  case TokenKind::MinusMinus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::PreDec, parseUnary());
  case TokenKind::Star:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::Deref, parseUnary());
  case TokenKind::Amp:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::AddrOf, parseUnary());
  case TokenKind::KwSizeof:
    Diags.error(Loc, "sizeof is not supported in the IGen C subset (its "
                     "value would change under interval promotion)");
    consume();
    skipToSync();
    return Ctx.create<IntLiteralExpr>(Loc, 0, "0");
  case TokenKind::LParen:
    // Cast or parenthesized expression.
    if (peek().is(TokenKind::KwConst) || peek().is(TokenKind::KwVoid) ||
        peek().is(TokenKind::KwChar) || peek().is(TokenKind::KwInt) ||
        peek().is(TokenKind::KwLong) || peek().is(TokenKind::KwShort) ||
        peek().is(TokenKind::KwUnsigned) ||
        peek().is(TokenKind::KwSigned) || peek().is(TokenKind::KwFloat) ||
        peek().is(TokenKind::KwDouble) ||
        (peek().is(TokenKind::Identifier) &&
         (startsWith(peek().Text, "__m128") ||
          startsWith(peek().Text, "__m256")))) {
      consume(); // '('
      const Type *To = parseTypeSpecifier();
      expect(TokenKind::RParen, "after cast type");
      return Ctx.create<CastExpr>(Loc, To, parseUnary());
    }
    break;
  default:
    break;
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    SourceLoc Loc = cur().Loc;
    if (consumeIf(TokenKind::LBracket)) {
      Expr *Idx = parseExpr();
      expect(TokenKind::RBracket, "after index");
      E = Ctx.create<IndexExpr>(Loc, E, Idx);
      continue;
    }
    if (consumeIf(TokenKind::PlusPlus)) {
      E = Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::PostInc, E);
      continue;
    }
    if (consumeIf(TokenKind::MinusMinus)) {
      E = Ctx.create<UnaryExpr>(Loc, UnaryExpr::Op::PostDec, E);
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntegerLiteral: {
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(Loc, T.IntValue, T.Text);
  }
  case TokenKind::FloatLiteral: {
    Token T = consume();
    return Ctx.create<FloatLiteralExpr>(Loc, T.FloatValue, T.Text,
                                        T.IsFloatSuffix, T.IsTolerance);
  }
  case TokenKind::Identifier: {
    Token T = consume();
    if (cur().is(TokenKind::LParen)) {
      consume();
      std::vector<Expr *> Args;
      if (!cur().is(TokenKind::RParen)) {
        do {
          Args.push_back(parseAssignment());
        } while (consumeIf(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return Ctx.create<CallExpr>(Loc, T.Text, std::move(Args));
    }
    return Ctx.create<DeclRefExpr>(Loc, T.Text);
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "after expression");
    return Ctx.create<ParenExpr>(Loc, E);
  }
  default:
    Diags.error(Loc, formatString("expected an expression, found %s",
                                  tokenKindName(cur().Kind)));
    // Do NOT consume ';' / '}' / EOF: they are the statement-recovery
    // sync points, and eating one here would turn a single missing
    // expression into a cascade of missed-semicolon errors.
    if (!cur().is(TokenKind::Semi) && !cur().is(TokenKind::RBrace) &&
        !cur().is(TokenKind::EndOfFile))
      consume();
    return Ctx.create<IntLiteralExpr>(Loc, 0, "0");
  }
}
