//===- Lexer.h - Lexer for the C subset -------------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the C subset IGen compiles. Comments are
/// skipped; `#pragma igen` becomes a token; other preprocessor directives
/// become passthrough tokens so the transformer can reproduce them
/// verbatim (e.g. #include <immintrin.h>).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_LEXER_H
#define IGEN_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace igen {

class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticsEngine &Diags);

  /// Lexes the next token.
  Token lex();

  /// Lexes the entire input (convenience for the parser and tests).
  std::vector<Token> lexAll();

private:
  SourceLoc currentLoc() const;
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  void skipTrivia();

  Token makeToken(TokenKind Kind, size_t Begin, SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);
  Token lexDirective(SourceLoc Loc);

  std::string_view Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  bool AtLineStart = true;
};

} // namespace igen

#endif // IGEN_FRONTEND_LEXER_H
