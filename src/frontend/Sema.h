//===- Sema.h - Semantic analysis for the C subset --------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking. Sema also enforces IGen's documented
/// limitations (Section IV-B): no bit-level manipulation of floating-point
/// values, no float-to-integer casts, and a warning on malloc (byte counts
/// do not survive the interval type promotion).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_SEMA_H
#define IGEN_FRONTEND_SEMA_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace igen {

/// Classifies known callees so Sema can type calls and the transformer can
/// translate them.
enum class CalleeKind {
  UserFunction, ///< defined/declared in this translation unit
  MathFunction, ///< sin, cos, exp, log, sqrt, fabs, floor, ceil, tan, fmin, fmax
  Intrinsic,    ///< _mm*/_mm256* SIMD intrinsic
  Allocation,   ///< malloc/calloc/free
  Unknown,
};

CalleeKind classifyCallee(const std::string &Name);

/// Return type of a SIMD intrinsic derived from its name, or null if the
/// intrinsic is unknown. (Names follow Intel's conventions; the full
/// operational semantics come from the simdspec generator.)
const Type *intrinsicReturnType(const std::string &Name, TypeContext &Types);

class Sema {
public:
  Sema(ASTContext &Ctx, DiagnosticsEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  /// Resolves and type-checks the whole translation unit. Returns false if
  /// errors were reported.
  bool run();

private:
  void checkFunction(FunctionDecl *F);
  void checkStmt(Stmt *S);
  void checkVarDecl(VarDecl *D);
  const Type *checkExpr(Expr *E);
  const Type *checkCall(CallExpr *E);
  const Type *commonArithType(const Type *A, const Type *B);

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(VarDecl *D);
  VarDecl *lookup(const std::string &Name);

  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  FunctionDecl *CurFunction = nullptr;
};

} // namespace igen

#endif // IGEN_FRONTEND_SEMA_H
