//===- Type.h - Types for the C subset --------------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the supported C subset: scalar builtins, the Intel
/// SIMD vector types (Table II), pointers and constant-size arrays. Types
/// are interned in a TypeContext so they compare by pointer.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_TYPE_H
#define IGEN_FRONTEND_TYPE_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace igen {

class Type {
public:
  enum class Kind {
    Void,
    Char,
    Int,
    UInt,
    Long,
    ULong,
    Float,
    Double,
    M128,  ///< __m128: 4 floats
    M128D, ///< __m128d: 2 doubles
    M256,  ///< __m256: 8 floats
    M256D, ///< __m256d: 4 doubles
    Pointer,
    Array,
  };

  Kind kind() const { return K; }

  bool isVoid() const { return K == Kind::Void; }
  bool isInteger() const {
    return K == Kind::Char || K == Kind::Int || K == Kind::UInt ||
           K == Kind::Long || K == Kind::ULong;
  }
  bool isFloating() const {
    return K == Kind::Float || K == Kind::Double;
  }
  bool isSimdVector() const {
    return K == Kind::M128 || K == Kind::M128D || K == Kind::M256 ||
           K == Kind::M256D;
  }
  /// Anything IGen must promote to an interval representation.
  bool isFloatingOrVector() const { return isFloating() || isSimdVector(); }
  bool isPointer() const { return K == Kind::Pointer; }
  bool isArray() const { return K == Kind::Array; }

  /// Element type for pointers and arrays; null otherwise.
  const Type *element() const { return Elem; }
  /// Array size (elements); -1 for unsized.
  int64_t arraySize() const { return ArraySize; }

  /// Number of scalar lanes in a SIMD vector type (0 for non-vectors).
  int vectorLanes() const {
    switch (K) {
    case Kind::M128:
      return 4;
    case Kind::M128D:
      return 2;
    case Kind::M256:
      return 8;
    case Kind::M256D:
      return 4;
    default:
      return 0;
    }
  }

  /// Scalar lane kind of a SIMD vector type.
  Kind vectorElementKind() const {
    assert(isSimdVector());
    return (K == Kind::M128D || K == Kind::M256D) ? Kind::Double
                                                  : Kind::Float;
  }

  /// The C spelling of this type ("double", "__m256d", "double *").
  std::string cName() const;

private:
  friend class TypeContext;
  explicit Type(Kind K, const Type *Elem = nullptr, int64_t ArraySize = -1)
      : K(K), Elem(Elem), ArraySize(ArraySize) {}

  Kind K;
  const Type *Elem;
  int64_t ArraySize;
};

/// Owns and interns all types of a compilation.
class TypeContext {
public:
  const Type *get(Type::Kind K) {
    assert(K != Type::Kind::Pointer && K != Type::Kind::Array);
    auto &Slot = Builtins[static_cast<int>(K)];
    if (!Slot)
      Slot.reset(new Type(K));
    return Slot.get();
  }

  const Type *voidType() { return get(Type::Kind::Void); }
  const Type *intType() { return get(Type::Kind::Int); }
  const Type *floatType() { return get(Type::Kind::Float); }
  const Type *doubleType() { return get(Type::Kind::Double); }

  const Type *getPointer(const Type *Elem) {
    auto &Slot = Pointers[Elem];
    if (!Slot)
      Slot.reset(new Type(Type::Kind::Pointer, Elem));
    return Slot.get();
  }

  const Type *getArray(const Type *Elem, int64_t Size) {
    auto &Slot = Arrays[{Elem, Size}];
    if (!Slot)
      Slot.reset(new Type(Type::Kind::Array, Elem, Size));
    return Slot.get();
  }

  /// Resolves a SIMD type name ("__m256d") to its type, or null.
  const Type *getSimdTypeByName(const std::string &Name) {
    if (Name == "__m128")
      return get(Type::Kind::M128);
    if (Name == "__m128d")
      return get(Type::Kind::M128D);
    if (Name == "__m256")
      return get(Type::Kind::M256);
    if (Name == "__m256d")
      return get(Type::Kind::M256D);
    return nullptr;
  }

private:
  std::unique_ptr<Type> Builtins[16];
  std::map<const Type *, std::unique_ptr<Type>> Pointers;
  std::map<std::pair<const Type *, int64_t>, std::unique_ptr<Type>> Arrays;
};

inline std::string Type::cName() const {
  switch (K) {
  case Kind::Void:
    return "void";
  case Kind::Char:
    return "char";
  case Kind::Int:
    return "int";
  case Kind::UInt:
    return "unsigned int";
  case Kind::Long:
    return "long";
  case Kind::ULong:
    return "unsigned long";
  case Kind::Float:
    return "float";
  case Kind::Double:
    return "double";
  case Kind::M128:
    return "__m128";
  case Kind::M128D:
    return "__m128d";
  case Kind::M256:
    return "__m256";
  case Kind::M256D:
    return "__m256d";
  case Kind::Pointer:
    return Elem->cName() + " *";
  case Kind::Array:
    return Elem->cName() + " []";
  }
  return "?";
}

} // namespace igen

#endif // IGEN_FRONTEND_TYPE_H
