//===- Token.h - Lexer tokens for the C subset ------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for the supported C subset (Section IV), including IGen's
/// language extensions: the ':' tolerance annotation on parameters and the
/// 't' suffix on floating-point constants (Section IV-C), and the
/// `#pragma igen` directive (Section VI-B).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_TOKEN_H
#define IGEN_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>

namespace igen {

enum class TokenKind {
  EndOfFile,
  Identifier,
  IntegerLiteral,
  FloatLiteral, ///< Includes the 0.25t tolerance form (IsTolerance set).

  // Keywords.
  KwVoid,
  KwChar,
  KwInt,
  KwLong,
  KwShort,
  KwUnsigned,
  KwSigned,
  KwFloat,
  KwDouble,
  KwConst,
  KwStatic,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSizeof,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Question,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Exclaim,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  ExclaimEqual,
  AmpAmp,
  PipePipe,
  LessLess,
  GreaterGreater,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PlusPlus,
  MinusMinus,
  Arrow,
  Period,

  // Preprocessor-ish lines the frontend understands or passes through.
  PragmaIgen,     ///< "#pragma igen <rest>": rest stored in Text.
  PassthroughDirective, ///< #include and other directives, kept verbatim.
};

/// A lexed token. Text always holds the source spelling; for literals the
/// parsed value fields are filled in by the lexer.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;

  // Literal payloads.
  long long IntValue = 0;
  double FloatValue = 0.0;
  bool IsFloatSuffix = false; ///< 1.0f
  bool IsTolerance = false;   ///< 0.25t (IGen extension)

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
  bool isOneOf(TokenKind K1, TokenKind K2) const {
    return Kind == K1 || Kind == K2;
  }
};

/// Returns a human-readable name for diagnostics ("identifier", "'+'").
const char *tokenKindName(TokenKind K);

} // namespace igen

#endif // IGEN_FRONTEND_TOKEN_H
