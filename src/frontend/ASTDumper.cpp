//===- ASTDumper.cpp - Human-readable AST dumps ------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ASTDumper.h"

#include "support/StringExtras.h"

using namespace igen;

namespace {

std::string pad(int Indent) { return std::string(Indent * 2, ' '); }

std::string typeSuffix(const Expr *E) {
  if (!E->type())
    return "";
  return " '" + E->type()->cName() + "'";
}

const char *unaryOpName(UnaryExpr::Op O) {
  switch (O) {
  case UnaryExpr::Op::Neg:
    return "-";
  case UnaryExpr::Op::Plus:
    return "+";
  case UnaryExpr::Op::LogicalNot:
    return "!";
  case UnaryExpr::Op::BitNot:
    return "~";
  case UnaryExpr::Op::PreInc:
    return "pre++";
  case UnaryExpr::Op::PreDec:
    return "pre--";
  case UnaryExpr::Op::PostInc:
    return "post++";
  case UnaryExpr::Op::PostDec:
    return "post--";
  case UnaryExpr::Op::Deref:
    return "*";
  case UnaryExpr::Op::AddrOf:
    return "&";
  }
  return "?";
}

const char *binaryOpName(BinaryExpr::Op O) {
  switch (O) {
  case BinaryExpr::Op::Add:
    return "+";
  case BinaryExpr::Op::Sub:
    return "-";
  case BinaryExpr::Op::Mul:
    return "*";
  case BinaryExpr::Op::Div:
    return "/";
  case BinaryExpr::Op::Rem:
    return "%";
  case BinaryExpr::Op::Shl:
    return "<<";
  case BinaryExpr::Op::Shr:
    return ">>";
  case BinaryExpr::Op::BitAnd:
    return "&";
  case BinaryExpr::Op::BitOr:
    return "|";
  case BinaryExpr::Op::BitXor:
    return "^";
  case BinaryExpr::Op::LT:
    return "<";
  case BinaryExpr::Op::GT:
    return ">";
  case BinaryExpr::Op::LE:
    return "<=";
  case BinaryExpr::Op::GE:
    return ">=";
  case BinaryExpr::Op::EQ:
    return "==";
  case BinaryExpr::Op::NE:
    return "!=";
  case BinaryExpr::Op::LAnd:
    return "&&";
  case BinaryExpr::Op::LOr:
    return "||";
  case BinaryExpr::Op::Assign:
    return "=";
  case BinaryExpr::Op::AddAssign:
    return "+=";
  case BinaryExpr::Op::SubAssign:
    return "-=";
  case BinaryExpr::Op::MulAssign:
    return "*=";
  case BinaryExpr::Op::DivAssign:
    return "/=";
  }
  return "?";
}

std::string dumpVarDecl(const VarDecl *D, int Indent) {
  std::string Out = pad(Indent) + (D->IsParam ? "ParamDecl " : "VarDecl ") +
                    D->Name + " '" + D->Ty->cName() + "'";
  if (D->HasTolerance)
    Out += formatString(" tolerance=%g", D->Tolerance);
  Out += "\n";
  if (D->Init)
    Out += dumpExpr(D->Init, Indent + 1);
  return Out;
}

} // namespace

std::string igen::dumpExpr(const Expr *E, int Indent) {
  std::string Out = pad(Indent);
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    Out += formatString("IntLiteral %lld",
                        cast<IntLiteralExpr>(E)->Value) +
           typeSuffix(E) + "\n";
    return Out;
  case Expr::Kind::FloatLiteral: {
    const auto *F = cast<FloatLiteralExpr>(E);
    Out += "FloatLiteral " + F->Spelling;
    if (F->IsTolerance)
      Out += " (tolerance)";
    Out += typeSuffix(E) + "\n";
    return Out;
  }
  case Expr::Kind::DeclRef:
    Out += "DeclRefExpr " + cast<DeclRefExpr>(E)->Name + typeSuffix(E) +
           "\n";
    return Out;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Out += std::string("UnaryExpr '") + unaryOpName(U->O) + "'" +
           typeSuffix(E) + "\n";
    return Out + dumpExpr(U->Sub, Indent + 1);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Out += std::string("BinaryExpr '") + binaryOpName(B->O) + "'" +
           typeSuffix(E) + "\n";
    return Out + dumpExpr(B->LHS, Indent + 1) +
           dumpExpr(B->RHS, Indent + 1);
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    Out += "ConditionalExpr" + typeSuffix(E) + "\n";
    return Out + dumpExpr(C->Cond, Indent + 1) +
           dumpExpr(C->Then, Indent + 1) + dumpExpr(C->Else, Indent + 1);
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out += "CallExpr " + C->Callee + typeSuffix(E) + "\n";
    for (const Expr *Arg : C->Args)
      Out += dumpExpr(Arg, Indent + 1);
    return Out;
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Out += "IndexExpr" + typeSuffix(E) + "\n";
    return Out + dumpExpr(I->Base, Indent + 1) +
           dumpExpr(I->Idx, Indent + 1);
  }
  case Expr::Kind::Cast: {
    const auto *C = cast<CastExpr>(E);
    Out += "CastExpr to '" + C->To->cName() + "'" + typeSuffix(E) + "\n";
    return Out + dumpExpr(C->Sub, Indent + 1);
  }
  case Expr::Kind::Paren:
    Out += "ParenExpr" + typeSuffix(E) + "\n";
    return Out + dumpExpr(cast<ParenExpr>(E)->Sub, Indent + 1);
  }
  return Out + "?\n";
}

std::string igen::dumpStmt(const Stmt *S, int Indent) {
  std::string Out = pad(Indent);
  switch (S->kind()) {
  case Stmt::Kind::Compound: {
    Out += "CompoundStmt\n";
    for (const Stmt *Child : cast<CompoundStmt>(S)->Body)
      Out += dumpStmt(Child, Indent + 1);
    return Out;
  }
  case Stmt::Kind::DeclStmt: {
    Out += "DeclStmt\n";
    for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
      Out += dumpVarDecl(D, Indent + 1);
    return Out;
  }
  case Stmt::Kind::ExprStmt:
    Out += "ExprStmt\n";
    return Out + dumpExpr(cast<ExprStmt>(S)->E, Indent + 1);
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    Out += "IfStmt\n";
    Out += dumpExpr(If->Cond, Indent + 1);
    Out += dumpStmt(If->Then, Indent + 1);
    if (If->Else)
      Out += dumpStmt(If->Else, Indent + 1);
    return Out;
  }
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    Out += "ForStmt";
    if (!For->ReduceVars.empty()) {
      Out += " reduce(";
      for (size_t I = 0; I < For->ReduceVars.size(); ++I)
        Out += (I ? " " : "") + For->ReduceVars[I];
      Out += ")";
    }
    Out += "\n";
    if (For->Init)
      Out += dumpStmt(For->Init, Indent + 1);
    if (For->Cond)
      Out += dumpExpr(For->Cond, Indent + 1);
    if (For->Inc)
      Out += dumpExpr(For->Inc, Indent + 1);
    return Out + dumpStmt(For->Body, Indent + 1);
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    Out += "WhileStmt\n";
    return Out + dumpExpr(W->Cond, Indent + 1) +
           dumpStmt(W->Body, Indent + 1);
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    Out += "DoStmt\n";
    return Out + dumpStmt(D->Body, Indent + 1) +
           dumpExpr(D->Cond, Indent + 1);
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    Out += "ReturnStmt\n";
    if (R->Value)
      Out += dumpExpr(R->Value, Indent + 1);
    return Out;
  }
  case Stmt::Kind::Break:
    return Out + "BreakStmt\n";
  case Stmt::Kind::Continue:
    return Out + "ContinueStmt\n";
  case Stmt::Kind::Null:
    return Out + "NullStmt\n";
  }
  return Out + "?\n";
}

std::string igen::dumpAST(const TranslationUnit &TU) {
  std::string Out;
  for (const TopLevelItem &Item : TU.Items) {
    if (!Item.Function) {
      Out += "Directive " + Item.Directive + "\n";
      continue;
    }
    const FunctionDecl *F = Item.Function;
    Out += "FunctionDecl " + F->Name + " ret='" + F->RetTy->cName() + "'";
    if (!F->Body)
      Out += " (prototype)";
    Out += "\n";
    for (const VarDecl *P : F->Params)
      Out += dumpVarDecl(P, 1);
    if (F->Body)
      Out += dumpStmt(F->Body, 1);
  }
  return Out;
}
