//===- Parser.h - Recursive-descent parser for the C subset -----*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST of AST.h. Supports the
/// subset of C that IGen compiles plus the IGen language extensions:
/// parameter tolerances (`double:0.125 x`), tolerance constants (`0.25t`)
/// and `#pragma igen reduce <vars>` attached to the following loop.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_PARSER_H
#define IGEN_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"
#include "support/Diagnostics.h"

#include <vector>

namespace igen {

class Parser {
public:
  Parser(std::string_view Source, ASTContext &Ctx,
         DiagnosticsEngine &Diags);

  /// Parses the whole translation unit into Ctx.TU. Returns false if any
  /// parse error was reported.
  bool parseTranslationUnit();

private:
  // Token stream helpers.
  const Token &cur() const { return Tokens[Index]; }
  const Token &peek(unsigned Ahead = 1) const {
    return Tokens[std::min(Index + Ahead, Tokens.size() - 1)];
  }
  Token consume() { return Tokens[Index++]; }
  bool consumeIf(TokenKind K) {
    if (cur().is(K)) {
      ++Index;
      return true;
    }
    return false;
  }
  bool expect(TokenKind K, const char *Context);
  void skipToSync();
  /// Statement-level recovery after a missed ';': skip to the next ';'
  /// (consumed), or stop before a '}' / end-of-file / token that can
  /// start a new statement, so one malformed statement costs exactly one
  /// diagnostic and the rest of the function still parses.
  void syncStmt();
  /// True once the error cap is hit; parsing bails out quietly (one
  /// final note) instead of spewing thousands of cascading diagnostics
  /// on pathological (fuzzed) inputs.
  bool errorLimitReached();

  /// Recoverable-diagnostic cap per parse (far above anything a real
  /// source hits; bounds the work on adversarial inputs).
  static constexpr unsigned MaxParseErrors = 256;

  // Types and declarators.
  bool startsType() const;
  const Type *parseTypeSpecifier();
  const Type *parsePointerSuffix(const Type *Base);

  // Declarations.
  FunctionDecl *parseFunction(bool IsStatic);
  VarDecl *parseParam();
  DeclStmt *parseDeclStmt();

  // Statements.
  Stmt *parseStmt();
  CompoundStmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseDo();

  // Expressions (precedence climbing).
  Expr *parseExpr() { return parseAssignment(); }
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  /// Recursion guard: pathological nesting (fuzzing, generated code)
  /// must degrade into a diagnostic, not a stack overflow.
  static constexpr int MaxNestingDepth = 256;
  struct DepthGuard {
    explicit DepthGuard(Parser &P) : P(P) { ++P.Depth; }
    ~DepthGuard() { --P.Depth; }
    Parser &P;
  };
  bool tooDeep(const char *What);

  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  std::vector<Token> Tokens;
  size_t Index = 0;
  int Depth = 0;
  bool DepthDiagnosed = false;
  bool ErrorLimitDiagnosed = false;
  std::vector<std::string> PendingReduceVars;
};

} // namespace igen

#endif // IGEN_FRONTEND_PARSER_H
