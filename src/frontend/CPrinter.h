//===- CPrinter.h - AST-to-C pretty printer ---------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the AST back to compilable C. Used by frontend tests (parse /
/// print round trips) and as the statement-structure backbone of the
/// interval transformer, which overrides expression and declaration
/// emission.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_CPRINTER_H
#define IGEN_FRONTEND_CPRINTER_H

#include "frontend/AST.h"

#include <string>

namespace igen {

class CPrinter {
public:
  virtual ~CPrinter() = default;

  /// Prints the whole translation unit.
  std::string print(const TranslationUnit &TU);

  /// Prints a single function definition or prototype.
  void printFunction(const FunctionDecl *F);

  /// Prints one statement at the current indentation.
  void printStmt(const Stmt *S);

  /// Returns the printed expression.
  virtual std::string exprToString(const Expr *E);

protected:
  /// Emission hooks the transformer overrides.
  virtual std::string declToString(const VarDecl *D);
  virtual std::string functionHeader(const FunctionDecl *F);
  /// Emits a raw line at the current indentation.
  void line(const std::string &Text);
  void append(const std::string &Text) { Out += Text; }
  std::string indentStr() const { return std::string(Indent * 2, ' '); }

  std::string typeAndName(const Type *Ty, const std::string &Name) const;

  std::string Out;
  int Indent = 0;
};

} // namespace igen

#endif // IGEN_FRONTEND_CPRINTER_H
