//===- CPrinter.cpp - AST-to-C pretty printer -------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/CPrinter.h"

#include "support/StringExtras.h"

using namespace igen;

namespace {

const char *binaryOpSpelling(BinaryExpr::Op O) {
  switch (O) {
  case BinaryExpr::Op::Add:
    return "+";
  case BinaryExpr::Op::Sub:
    return "-";
  case BinaryExpr::Op::Mul:
    return "*";
  case BinaryExpr::Op::Div:
    return "/";
  case BinaryExpr::Op::Rem:
    return "%";
  case BinaryExpr::Op::Shl:
    return "<<";
  case BinaryExpr::Op::Shr:
    return ">>";
  case BinaryExpr::Op::BitAnd:
    return "&";
  case BinaryExpr::Op::BitOr:
    return "|";
  case BinaryExpr::Op::BitXor:
    return "^";
  case BinaryExpr::Op::LT:
    return "<";
  case BinaryExpr::Op::GT:
    return ">";
  case BinaryExpr::Op::LE:
    return "<=";
  case BinaryExpr::Op::GE:
    return ">=";
  case BinaryExpr::Op::EQ:
    return "==";
  case BinaryExpr::Op::NE:
    return "!=";
  case BinaryExpr::Op::LAnd:
    return "&&";
  case BinaryExpr::Op::LOr:
    return "||";
  case BinaryExpr::Op::Assign:
    return "=";
  case BinaryExpr::Op::AddAssign:
    return "+=";
  case BinaryExpr::Op::SubAssign:
    return "-=";
  case BinaryExpr::Op::MulAssign:
    return "*=";
  case BinaryExpr::Op::DivAssign:
    return "/=";
  }
  return "?";
}

/// Precedence for minimal-parenthesis printing; mirrors the parser.
int printPrec(const Expr *E) {
  if (const auto *B = dynCast<BinaryExpr>(E)) {
    switch (B->O) {
    case BinaryExpr::Op::Assign:
    case BinaryExpr::Op::AddAssign:
    case BinaryExpr::Op::SubAssign:
    case BinaryExpr::Op::MulAssign:
    case BinaryExpr::Op::DivAssign:
      return 0;
    case BinaryExpr::Op::LOr:
      return 1;
    case BinaryExpr::Op::LAnd:
      return 2;
    case BinaryExpr::Op::BitOr:
      return 3;
    case BinaryExpr::Op::BitXor:
      return 4;
    case BinaryExpr::Op::BitAnd:
      return 5;
    case BinaryExpr::Op::EQ:
    case BinaryExpr::Op::NE:
      return 6;
    case BinaryExpr::Op::LT:
    case BinaryExpr::Op::GT:
    case BinaryExpr::Op::LE:
    case BinaryExpr::Op::GE:
      return 7;
    case BinaryExpr::Op::Shl:
    case BinaryExpr::Op::Shr:
      return 8;
    case BinaryExpr::Op::Add:
    case BinaryExpr::Op::Sub:
      return 9;
    case BinaryExpr::Op::Mul:
    case BinaryExpr::Op::Div:
    case BinaryExpr::Op::Rem:
      return 10;
    }
  }
  if (E->kind() == Expr::Kind::Conditional)
    return 0;
  if (E->kind() == Expr::Kind::Unary || E->kind() == Expr::Kind::Cast)
    return 11;
  return 12; // primary
}

} // namespace

std::string CPrinter::typeAndName(const Type *Ty,
                                  const std::string &Name) const {
  // Handles the array declarator syntax: T name[a][b].
  std::string Dims;
  const Type *T = Ty;
  while (T->isArray()) {
    Dims += formatString("[%lld", static_cast<long long>(T->arraySize()));
    Dims += "]";
    T = T->element();
  }
  return T->cName() + (endsWith(T->cName(), "*") ? "" : " ") + Name + Dims;
}

std::string CPrinter::exprToString(const Expr *E) {
  auto Sub = [&](const Expr *Child, int MinPrec) {
    std::string S = exprToString(Child);
    if (printPrec(Child) < MinPrec)
      return "(" + S + ")";
    return S;
  };
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return cast<IntLiteralExpr>(E)->Spelling;
  case Expr::Kind::FloatLiteral: {
    const auto *F = cast<FloatLiteralExpr>(E);
    std::string S = F->Spelling;
    if (F->IsFloatSuffix && !endsWith(S, "f") && !endsWith(S, "F"))
      S += "f";
    if (F->IsTolerance && !endsWith(S, "t"))
      S += "t";
    return S;
  }
  case Expr::Kind::DeclRef:
    return cast<DeclRefExpr>(E)->Name;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string S = Sub(U->Sub, 11);
    switch (U->O) {
    case UnaryExpr::Op::Neg:
      // Avoid "--a" (lexes as decrement) when negating a negative.
      return S[0] == '-' ? "-(" + S + ")" : "-" + S;
    case UnaryExpr::Op::Plus:
      return S[0] == '+' ? "+(" + S + ")" : "+" + S;
    case UnaryExpr::Op::LogicalNot:
      return "!" + S;
    case UnaryExpr::Op::BitNot:
      return "~" + S;
    case UnaryExpr::Op::PreInc:
      return "++" + S;
    case UnaryExpr::Op::PreDec:
      return "--" + S;
    case UnaryExpr::Op::PostInc:
      return S + "++";
    case UnaryExpr::Op::PostDec:
      return S + "--";
    case UnaryExpr::Op::Deref:
      return "*" + S;
    case UnaryExpr::Op::AddrOf:
      return "&" + S;
    }
    return S;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    int Prec = printPrec(E);
    bool RightAssoc = B->isAssignment();
    std::string L = Sub(B->LHS, RightAssoc ? Prec + 1 : Prec);
    std::string R = Sub(B->RHS, RightAssoc ? Prec : Prec + 1);
    return L + " " + binaryOpSpelling(B->O) + " " + R;
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    return Sub(C->Cond, 1) + " ? " + exprToString(C->Then) + " : " +
           Sub(C->Else, 0);
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::string S = C->Callee + "(";
    for (size_t I = 0; I < C->Args.size(); ++I) {
      if (I)
        S += ", ";
      S += exprToString(C->Args[I]);
    }
    return S + ")";
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    return Sub(I->Base, 12) + "[" + exprToString(I->Idx) + "]";
  }
  case Expr::Kind::Cast: {
    const auto *C = cast<CastExpr>(E);
    return "(" + C->To->cName() + ")" + Sub(C->Sub, 11);
  }
  case Expr::Kind::Paren:
    return "(" + exprToString(cast<ParenExpr>(E)->Sub) + ")";
  }
  return "?";
}

std::string CPrinter::declToString(const VarDecl *D) {
  std::string S = typeAndName(D->Ty, D->Name);
  if (D->Init)
    S += " = " + exprToString(D->Init);
  return S;
}

std::string CPrinter::functionHeader(const FunctionDecl *F) {
  std::string S;
  if (F->IsStatic)
    S += "static ";
  S += F->RetTy->cName();
  if (!endsWith(S, "*"))
    S += " ";
  S += F->Name + "(";
  for (size_t I = 0; I < F->Params.size(); ++I) {
    if (I)
      S += ", ";
    const VarDecl *P = F->Params[I];
    std::string TypeName = P->Ty->cName();
    if (P->HasTolerance)
      TypeName += ":" + P->ToleranceSpelling;
    S += TypeName;
    if (!endsWith(TypeName, "*"))
      S += " ";
    S += P->Name;
  }
  if (F->Params.empty())
    S += "void";
  S += ")";
  return S;
}

void CPrinter::line(const std::string &Text) {
  Out += indentStr();
  Out += Text;
  Out += '\n';
}

void CPrinter::printStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Compound: {
    line("{");
    ++Indent;
    for (const Stmt *Child : cast<CompoundStmt>(S)->Body)
      printStmt(Child);
    --Indent;
    line("}");
    return;
  }
  case Stmt::Kind::DeclStmt: {
    for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
      line(declToString(D) + ";");
    return;
  }
  case Stmt::Kind::ExprStmt:
    line(exprToString(cast<ExprStmt>(S)->E) + ";");
    return;
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    line("if (" + exprToString(If->Cond) + ")");
    printStmt(If->Then);
    if (If->Else) {
      line("else");
      printStmt(If->Else);
    }
    return;
  }
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    if (!For->ReduceVars.empty()) {
      std::string Vars;
      for (const std::string &V : For->ReduceVars)
        Vars += " " + V;
      line("#pragma igen reduce" + Vars);
    }
    std::string Init;
    if (For->Init && For->Init->kind() == Stmt::Kind::DeclStmt) {
      const auto *DS = cast<DeclStmt>(For->Init);
      for (size_t I = 0; I < DS->Decls.size(); ++I)
        Init += (I ? ", " : "") + declToString(DS->Decls[I]);
    } else if (For->Init && For->Init->kind() == Stmt::Kind::ExprStmt) {
      Init = exprToString(cast<ExprStmt>(For->Init)->E);
    }
    std::string Cond = For->Cond ? exprToString(For->Cond) : "";
    std::string Inc = For->Inc ? exprToString(For->Inc) : "";
    line("for (" + Init + "; " + Cond + "; " + Inc + ")");
    printStmt(For->Body);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    line("while (" + exprToString(W->Cond) + ")");
    printStmt(W->Body);
    return;
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    line("do");
    printStmt(D->Body);
    line("while (" + exprToString(D->Cond) + ");");
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    line(R->Value ? "return " + exprToString(R->Value) + ";" : "return;");
    return;
  }
  case Stmt::Kind::Break:
    line("break;");
    return;
  case Stmt::Kind::Continue:
    line("continue;");
    return;
  case Stmt::Kind::Null:
    line(";");
    return;
  }
}

void CPrinter::printFunction(const FunctionDecl *F) {
  if (!F->Body) {
    line(functionHeader(F) + ";");
    return;
  }
  line(functionHeader(F));
  printStmt(F->Body);
}

std::string CPrinter::print(const TranslationUnit &TU) {
  Out.clear();
  Indent = 0;
  for (const TopLevelItem &Item : TU.Items) {
    if (!Item.Function) {
      line(Item.Directive);
      continue;
    }
    printFunction(Item.Function);
    Out += '\n';
  }
  return Out;
}
