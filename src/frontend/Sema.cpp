//===- Sema.cpp - Semantic analysis for the C subset ------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "support/StringExtras.h"

#include <set>

using namespace igen;

CalleeKind igen::classifyCallee(const std::string &Name) {
  static const std::set<std::string> MathFns = {
      "sin",  "cos",  "tan",  "exp",   "log",  "sqrt",
      "fabs", "floor", "ceil", "fmin", "fmax",
      "atan", "asin", "acos",
      "sinf", "cosf", "tanf", "expf",  "logf", "sqrtf",
      "fabsf", "floorf", "ceilf", "fminf", "fmaxf",
      "atanf", "asinf", "acosf"};
  if (MathFns.count(Name))
    return CalleeKind::MathFunction;
  if (Name == "malloc" || Name == "calloc" || Name == "free" ||
      Name == "aligned_alloc")
    return CalleeKind::Allocation;
  if (startsWith(Name, "_mm"))
    return CalleeKind::Intrinsic;
  return CalleeKind::UserFunction;
}

const Type *igen::intrinsicReturnType(const std::string &Name,
                                      TypeContext &Types) {
  bool Is256 = startsWith(Name, "_mm256_");
  // Scalar extracts.
  if (endsWith(Name, "_cvtsd_f64"))
    return Types.get(Type::Kind::Double);
  if (endsWith(Name, "_cvtss_f32"))
    return Types.get(Type::Kind::Float);
  if (Name.find("_movemask_") != std::string::npos)
    return Types.get(Type::Kind::Int);
  // Stores return void.
  if (Name.find("_store") != std::string::npos ||
      Name.find("_stream") != std::string::npos)
    return Types.get(Type::Kind::Void);
  // Cross-width conversions and casts.
  if (Name.find("_cvtps_pd") != std::string::npos)
    return Types.get(Is256 ? Type::Kind::M256D : Type::Kind::M128D);
  if (Name.find("_cvtpd_ps") != std::string::npos)
    return Types.get(Type::Kind::M128);
  if (Name.find("_extractf128_pd") != std::string::npos)
    return Types.get(Type::Kind::M128D);
  if (Name.find("_extractf128_ps") != std::string::npos)
    return Types.get(Type::Kind::M128);
  if (Name.find("_castpd256_pd128") != std::string::npos)
    return Types.get(Type::Kind::M128D);
  if (Name.find("_castpd128_pd256") != std::string::npos)
    return Types.get(Type::Kind::M256D);
  // Packed results by suffix.
  if (endsWith(Name, "_pd") || Name.find("_pd(") != std::string::npos ||
      endsWith(Name, "_pd1") || Name.find("_pd_") != std::string::npos)
    return Types.get(Is256 ? Type::Kind::M256D : Type::Kind::M128D);
  if (endsWith(Name, "_sd"))
    return Types.get(Type::Kind::M128D);
  if (endsWith(Name, "_ps") || endsWith(Name, "_ps1"))
    return Types.get(Is256 ? Type::Kind::M256 : Type::Kind::M128);
  if (endsWith(Name, "_ss"))
    return Types.get(Type::Kind::M128);
  return nullptr;
}

bool Sema::run() {
  unsigned ErrorsBefore = Diags.errorCount();
  for (TopLevelItem &Item : Ctx.TU.Items)
    if (Item.Function && Item.Function->Body)
      checkFunction(Item.Function);
  return Diags.errorCount() == ErrorsBefore;
}

void Sema::declare(VarDecl *D) {
  assert(!Scopes.empty());
  auto [It, Inserted] = Scopes.back().insert({D->Name, D});
  if (!Inserted)
    Diags.error(D->Loc, "redefinition of '" + D->Name + "'");
}

VarDecl *Sema::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Sema::checkFunction(FunctionDecl *F) {
  CurFunction = F;
  pushScope();
  for (VarDecl *P : F->Params)
    declare(P);
  checkStmt(F->Body);
  popScope();
  CurFunction = nullptr;
}

void Sema::checkVarDecl(VarDecl *D) {
  declare(D);
  if (D->Init) {
    const Type *InitTy = checkExpr(D->Init);
    if (D->Ty->isSimdVector() && InitTy && InitTy != D->Ty &&
        !InitTy->isSimdVector())
      Diags.error(D->Loc, "cannot initialize SIMD vector '" + D->Name +
                              "' from a scalar");
  }
}

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Compound: {
    pushScope();
    for (Stmt *Child : cast<CompoundStmt>(S)->Body)
      checkStmt(Child);
    popScope();
    return;
  }
  case Stmt::Kind::DeclStmt:
    for (VarDecl *D : cast<DeclStmt>(S)->Decls)
      checkVarDecl(D);
    return;
  case Stmt::Kind::ExprStmt:
    checkExpr(cast<ExprStmt>(S)->E);
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    checkExpr(If->Cond);
    checkStmt(If->Then);
    if (If->Else)
      checkStmt(If->Else);
    return;
  }
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    pushScope();
    if (For->Init)
      checkStmt(For->Init);
    if (For->Cond)
      checkExpr(For->Cond);
    if (For->Inc)
      checkExpr(For->Inc);
    checkStmt(For->Body);
    // Reduction pragma variables must be visible here.
    for (const std::string &Var : For->ReduceVars)
      if (!lookup(Var))
        Diags.error(For->loc(), "reduction variable '" + Var +
                                    "' is not in scope");
    popScope();
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    checkExpr(W->Cond);
    checkStmt(W->Body);
    return;
  }
  case Stmt::Kind::Do: {
    auto *D = cast<DoStmt>(S);
    checkStmt(D->Body);
    checkExpr(D->Cond);
    return;
  }
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->Value)
      checkExpr(R->Value);
    else if (CurFunction && !CurFunction->RetTy->isVoid())
      Diags.error(R->loc(), "non-void function must return a value");
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Null:
    return;
  }
}

const Type *Sema::commonArithType(const Type *A, const Type *B) {
  if (!A || !B)
    return A ? A : B;
  if (A->isSimdVector())
    return A;
  if (B->isSimdVector())
    return B;
  if (A->kind() == Type::Kind::Double || B->kind() == Type::Kind::Double)
    return Ctx.Types.get(Type::Kind::Double);
  if (A->isFloating())
    return A;
  if (B->isFloating())
    return B;
  if (A->kind() == Type::Kind::ULong || B->kind() == Type::Kind::ULong)
    return Ctx.Types.get(Type::Kind::ULong);
  if (A->kind() == Type::Kind::Long || B->kind() == Type::Kind::Long)
    return Ctx.Types.get(Type::Kind::Long);
  if (A->kind() == Type::Kind::UInt || B->kind() == Type::Kind::UInt)
    return Ctx.Types.get(Type::Kind::UInt);
  return Ctx.Types.get(Type::Kind::Int);
}

const Type *Sema::checkCall(CallExpr *E) {
  for (Expr *Arg : E->Args)
    checkExpr(Arg);
  switch (classifyCallee(E->Callee)) {
  case CalleeKind::MathFunction: {
    bool IsFloat = endsWith(E->Callee, "f") && E->Callee != "fabs";
    // fminf etc. end in f; fabs/fabsf disambiguated above.
    if (E->Callee == "fabsf")
      IsFloat = true;
    return Ctx.Types.get(IsFloat ? Type::Kind::Float : Type::Kind::Double);
  }
  case CalleeKind::Intrinsic: {
    const Type *T = intrinsicReturnType(E->Callee, Ctx.Types);
    if (!T) {
      Diags.error(E->loc(),
                  "unsupported SIMD intrinsic '" + E->Callee + "'");
      return Ctx.Types.get(Type::Kind::M256D);
    }
    return T;
  }
  case CalleeKind::Allocation:
    Diags.warning(E->loc(),
                  "'" + E->Callee +
                      "' with a byte count is dangerous under interval "
                      "promotion; ensure sizes use the interval type");
    if (E->Callee == "free")
      return Ctx.Types.get(Type::Kind::Void);
    return Ctx.Types.getPointer(Ctx.Types.get(Type::Kind::Void));
  case CalleeKind::UserFunction:
  case CalleeKind::Unknown: {
    if (FunctionDecl *F = Ctx.TU.findFunction(E->Callee)) {
      if (F->Params.size() != E->Args.size())
        Diags.error(E->loc(), formatString(
                                  "call to '%s' with %zu arguments; "
                                  "%zu expected",
                                  E->Callee.c_str(), E->Args.size(),
                                  F->Params.size()));
      return F->RetTy;
    }
    Diags.error(E->loc(), "call to unknown function '" + E->Callee + "'");
    return Ctx.Types.get(Type::Kind::Double);
  }
  }
  return Ctx.Types.get(Type::Kind::Double);
}

const Type *Sema::checkExpr(Expr *E) {
  const Type *Result = nullptr;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    Result = Ctx.Types.get(Type::Kind::Int);
    break;
  case Expr::Kind::FloatLiteral: {
    auto *F = cast<FloatLiteralExpr>(E);
    Result = Ctx.Types.get(F->IsFloatSuffix ? Type::Kind::Float
                                            : Type::Kind::Double);
    break;
  }
  case Expr::Kind::DeclRef: {
    auto *Ref = cast<DeclRefExpr>(E);
    Ref->Decl = lookup(Ref->Name);
    if (!Ref->Decl) {
      Diags.error(E->loc(), "use of undeclared identifier '" + Ref->Name +
                                "'");
      Result = Ctx.Types.get(Type::Kind::Int);
    } else {
      Result = Ref->Decl->Ty;
    }
    break;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    const Type *SubTy = checkExpr(U->Sub);
    switch (U->O) {
    case UnaryExpr::Op::Deref:
      if (SubTy && (SubTy->isPointer() || SubTy->isArray()))
        Result = SubTy->element();
      else {
        Diags.error(E->loc(), "cannot dereference a non-pointer");
        Result = SubTy;
      }
      break;
    case UnaryExpr::Op::AddrOf:
      Result = Ctx.Types.getPointer(SubTy);
      break;
    case UnaryExpr::Op::LogicalNot:
      Result = Ctx.Types.get(Type::Kind::Int);
      break;
    case UnaryExpr::Op::BitNot:
      if (SubTy && SubTy->isFloatingOrVector())
        Diags.error(E->loc(), "bit-level manipulation of floating-point "
                              "values is not supported");
      Result = SubTy;
      break;
    default:
      Result = SubTy;
      break;
    }
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    const Type *L = checkExpr(B->LHS);
    const Type *R = checkExpr(B->RHS);
    switch (B->O) {
    case BinaryExpr::Op::Rem:
    case BinaryExpr::Op::Shl:
    case BinaryExpr::Op::Shr:
    case BinaryExpr::Op::BitAnd:
    case BinaryExpr::Op::BitOr:
    case BinaryExpr::Op::BitXor:
      if ((L && L->isFloatingOrVector()) || (R && R->isFloatingOrVector()))
        Diags.error(E->loc(), "bit-level manipulation of floating-point "
                              "values is not supported");
      Result = commonArithType(L, R);
      break;
    case BinaryExpr::Op::LT:
    case BinaryExpr::Op::GT:
    case BinaryExpr::Op::LE:
    case BinaryExpr::Op::GE:
    case BinaryExpr::Op::EQ:
    case BinaryExpr::Op::NE:
    case BinaryExpr::Op::LAnd:
    case BinaryExpr::Op::LOr:
      Result = Ctx.Types.get(Type::Kind::Int);
      break;
    case BinaryExpr::Op::Assign:
    case BinaryExpr::Op::AddAssign:
    case BinaryExpr::Op::SubAssign:
    case BinaryExpr::Op::MulAssign:
    case BinaryExpr::Op::DivAssign:
      Result = L;
      break;
    default:
      // Pointer arithmetic keeps the pointer type.
      if (L && (L->isPointer() || L->isArray()) &&
          (B->O == BinaryExpr::Op::Add || B->O == BinaryExpr::Op::Sub))
        Result = L;
      else if (R && (R->isPointer() || R->isArray()) &&
               B->O == BinaryExpr::Op::Add)
        Result = R;
      else
        Result = commonArithType(L, R);
      break;
    }
    break;
  }
  case Expr::Kind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    checkExpr(C->Cond);
    const Type *T = checkExpr(C->Then);
    const Type *F = checkExpr(C->Else);
    Result = commonArithType(T, F);
    break;
  }
  case Expr::Kind::Call:
    Result = checkCall(cast<CallExpr>(E));
    break;
  case Expr::Kind::Index: {
    auto *I = cast<IndexExpr>(E);
    const Type *BaseTy = checkExpr(I->Base);
    checkExpr(I->Idx);
    if (BaseTy && (BaseTy->isPointer() || BaseTy->isArray()))
      Result = BaseTy->element();
    else {
      Diags.error(E->loc(), "subscripted value is not a pointer or array");
      Result = BaseTy;
    }
    break;
  }
  case Expr::Kind::Cast: {
    auto *C = cast<CastExpr>(E);
    const Type *From = checkExpr(C->Sub);
    if (From && From->isFloating() && C->To->isInteger())
      Diags.error(E->loc(), "casts from floating-point to integer are not "
                            "supported (intervals on integers are not "
                            "implemented)");
    Result = C->To;
    break;
  }
  case Expr::Kind::Paren:
    Result = checkExpr(cast<ParenExpr>(E)->Sub);
    break;
  }
  E->setType(Result);
  return Result;
}
