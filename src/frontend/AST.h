//===- AST.h - Abstract syntax tree for the C subset ------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST of the supported C subset, following Clang's node taxonomy
/// (Section IV-B): declarations (Decl), statements (Stmt) and expressions
/// (Expr). Nodes carry kind tags for LLVM-style dispatch (no RTTI) and
/// are owned by an ASTContext arena.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_FRONTEND_AST_H
#define IGEN_FRONTEND_AST_H

#include "frontend/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace igen {

class ASTContext;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind {
    IntLiteral,
    FloatLiteral,
    DeclRef,
    Unary,
    Binary,
    Conditional,
    Call,
    Index,
    Cast,
    Paren,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The type computed by Sema (null before type checking).
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  ~Expr() = default;

private:
  Kind K;
  SourceLoc Loc;
  const Type *Ty = nullptr;
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, long long Value, std::string Spelling)
      : Expr(Kind::IntLiteral, Loc), Value(Value),
        Spelling(std::move(Spelling)) {}

  long long Value;
  std::string Spelling;

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }
};

class FloatLiteralExpr : public Expr {
public:
  FloatLiteralExpr(SourceLoc Loc, double Value, std::string Spelling,
                   bool IsFloatSuffix, bool IsTolerance)
      : Expr(Kind::FloatLiteral, Loc), Value(Value),
        Spelling(std::move(Spelling)), IsFloatSuffix(IsFloatSuffix),
        IsTolerance(IsTolerance) {}

  double Value;
  std::string Spelling;
  bool IsFloatSuffix; ///< 1.0f
  bool IsTolerance;   ///< 0.25t: tolerance constant (Section IV-C)

  static bool classof(const Expr *E) {
    return E->kind() == Kind::FloatLiteral;
  }
};

class VarDecl;

class DeclRefExpr : public Expr {
public:
  DeclRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::DeclRef, Loc), Name(std::move(Name)) {}

  std::string Name;
  VarDecl *Decl = nullptr; ///< Resolved by Sema.

  static bool classof(const Expr *E) { return E->kind() == Kind::DeclRef; }
};

class UnaryExpr : public Expr {
public:
  enum class Op {
    Neg,
    Plus,
    LogicalNot,
    BitNot,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
    Deref,
    AddrOf,
  };

  UnaryExpr(SourceLoc Loc, Op O, Expr *Sub)
      : Expr(Kind::Unary, Loc), O(O), Sub(Sub) {}

  Op O;
  Expr *Sub;

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }
};

class BinaryExpr : public Expr {
public:
  enum class Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    LT,
    GT,
    LE,
    GE,
    EQ,
    NE,
    LAnd,
    LOr,
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
  };

  BinaryExpr(SourceLoc Loc, Op O, Expr *LHS, Expr *RHS)
      : Expr(Kind::Binary, Loc), O(O), LHS(LHS), RHS(RHS) {}

  Op O;
  Expr *LHS;
  Expr *RHS;

  bool isAssignment() const {
    return O == Op::Assign || O == Op::AddAssign || O == Op::SubAssign ||
           O == Op::MulAssign || O == Op::DivAssign;
  }
  bool isComparison() const {
    return O == Op::LT || O == Op::GT || O == Op::LE || O == Op::GE ||
           O == Op::EQ || O == Op::NE;
  }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLoc Loc, Expr *Cond, Expr *Then, Expr *Else)
      : Expr(Kind::Conditional, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *Cond;
  Expr *Then;
  Expr *Else;

  static bool classof(const Expr *E) {
    return E->kind() == Kind::Conditional;
  }
};

class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, std::string Callee, std::vector<Expr *> Args)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  std::string Callee;
  std::vector<Expr *> Args;

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }
};

class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, Expr *Base, Expr *Idx)
      : Expr(Kind::Index, Loc), Base(Base), Idx(Idx) {}

  Expr *Base;
  Expr *Idx;

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }
};

class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, const Type *To, Expr *Sub)
      : Expr(Kind::Cast, Loc), To(To), Sub(Sub) {}

  const Type *To;
  Expr *Sub;

  static bool classof(const Expr *E) { return E->kind() == Kind::Cast; }
};

class ParenExpr : public Expr {
public:
  ParenExpr(SourceLoc Loc, Expr *Sub) : Expr(Kind::Paren, Loc), Sub(Sub) {}

  Expr *Sub;

  static bool classof(const Expr *E) { return E->kind() == Kind::Paren; }
};

/// Strips parentheses.
inline const Expr *ignoreParens(const Expr *E) {
  while (const auto *P = (E->kind() == Expr::Kind::Paren
                              ? static_cast<const ParenExpr *>(E)
                              : nullptr))
    E = P->Sub;
  return E;
}
inline Expr *ignoreParens(Expr *E) {
  return const_cast<Expr *>(ignoreParens(static_cast<const Expr *>(E)));
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class VarDecl {
public:
  VarDecl(SourceLoc Loc, const Type *Ty, std::string Name)
      : Loc(Loc), Ty(Ty), Name(std::move(Name)) {}

  SourceLoc Loc;
  const Type *Ty;
  std::string Name;
  Expr *Init = nullptr;
  bool IsParam = false;
  bool HasTolerance = false;
  double Tolerance = 0.0; ///< The ':0.125' annotation (Section IV-C).
  std::string ToleranceSpelling;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind {
    Compound,
    DeclStmt,
    ExprStmt,
    If,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    Null,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
  ~Stmt() = default;

private:
  Kind K;
  SourceLoc Loc;
};

class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(SourceLoc Loc) : Stmt(Kind::Compound, Loc) {}

  std::vector<Stmt *> Body;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Compound; }
};

class DeclStmt : public Stmt {
public:
  explicit DeclStmt(SourceLoc Loc) : Stmt(Kind::DeclStmt, Loc) {}

  std::vector<VarDecl *> Decls;

  static bool classof(const Stmt *S) { return S->kind() == Kind::DeclStmt; }
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, Expr *E) : Stmt(Kind::ExprStmt, Loc), E(E) {}

  Expr *E;

  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< may be null

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }
};

class ForStmt : public Stmt {
public:
  explicit ForStmt(SourceLoc Loc) : Stmt(Kind::For, Loc) {}

  Stmt *Init = nullptr; ///< DeclStmt, ExprStmt or Null.
  Expr *Cond = nullptr;
  Expr *Inc = nullptr;
  Stmt *Body = nullptr;
  /// Variables named by a preceding `#pragma igen reduce` (Section VI-B).
  std::vector<std::string> ReduceVars;

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, Stmt *Body)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *Cond;
  Stmt *Body;

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }
};

class DoStmt : public Stmt {
public:
  DoStmt(SourceLoc Loc, Stmt *Body, Expr *Cond)
      : Stmt(Kind::Do, Loc), Body(Body), Cond(Cond) {}

  Stmt *Body;
  Expr *Cond;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Do; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, Expr *Value)
      : Stmt(Kind::Return, Loc), Value(Value) {}

  Expr *Value; ///< may be null

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class NullStmt : public Stmt {
public:
  explicit NullStmt(SourceLoc Loc) : Stmt(Kind::Null, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Null; }
};

//===----------------------------------------------------------------------===//
// Functions and the translation unit
//===----------------------------------------------------------------------===//

class FunctionDecl {
public:
  FunctionDecl(SourceLoc Loc, const Type *RetTy, std::string Name)
      : Loc(Loc), RetTy(RetTy), Name(std::move(Name)) {}

  SourceLoc Loc;
  const Type *RetTy;
  std::string Name;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body = nullptr; ///< null: prototype only
  bool IsStatic = false;
};

/// One top-level item: a function or a verbatim directive line.
struct TopLevelItem {
  FunctionDecl *Function = nullptr;
  std::string Directive; ///< used when Function is null
};

class TranslationUnit {
public:
  std::vector<TopLevelItem> Items;

  FunctionDecl *findFunction(const std::string &Name) const {
    for (const TopLevelItem &I : Items)
      if (I.Function && I.Function->Name == Name && I.Function->Body)
        return I.Function;
    for (const TopLevelItem &I : Items)
      if (I.Function && I.Function->Name == Name)
        return I.Function;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// ASTContext: arena ownership for all nodes
//===----------------------------------------------------------------------===//

class ASTContext {
public:
  TypeContext Types;

  template <typename T, typename... Args> T *create(Args &&...A) {
    auto Owner = std::make_unique<Holder<T>>(std::forward<Args>(A)...);
    T *Ptr = &Owner->Value;
    Nodes.push_back(std::move(Owner));
    return Ptr;
  }

  TranslationUnit TU;

private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename T> struct Holder : HolderBase {
    template <typename... Args>
    explicit Holder(Args &&...A) : Value(std::forward<Args>(A)...) {}
    T Value;
  };
  std::vector<std::unique_ptr<HolderBase>> Nodes;
};

/// LLVM-style dyn_cast for Expr/Stmt using the classof hooks.
template <typename T, typename U> T *dynCast(U *Node) {
  if (Node && T::classof(Node))
    return static_cast<T *>(Node);
  return nullptr;
}
template <typename T, typename U> const T *dynCast(const U *Node) {
  if (Node && T::classof(Node))
    return static_cast<const T *>(Node);
  return nullptr;
}
template <typename T, typename U> T *cast(U *Node) {
  assert(Node && T::classof(Node) && "bad cast");
  return static_cast<T *>(Node);
}
template <typename T, typename U> const T *cast(const U *Node) {
  assert(Node && T::classof(Node) && "bad cast");
  return static_cast<const T *>(Node);
}

} // namespace igen

#endif // IGEN_FRONTEND_AST_H
