//===- Lexer.cpp - Lexer for the C subset -----------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StringExtras.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace igen;

const char *igen::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntegerLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "floating-point literal";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwShort:
    return "'short'";
  case TokenKind::KwUnsigned:
    return "'unsigned'";
  case TokenKind::KwSigned:
    return "'signed'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Exclaim:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::ExclaimEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Period:
    return "'.'";
  case TokenKind::PragmaIgen:
    return "'#pragma igen'";
  case TokenKind::PassthroughDirective:
    return "preprocessor directive";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view Source, DiagnosticsEngine &Diags)
    : Source(Source), Diags(Diags) {}

SourceLoc Lexer::currentLoc() const {
  return SourceLoc{static_cast<uint32_t>(Pos), Line, Col};
}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
    AtLineStart = true;
  } else {
    ++Col;
    if (!std::isspace(static_cast<unsigned char>(C)))
      AtLineStart = false;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Source.size()) {
        advance();
        advance();
      } else {
        Diags.error(currentLoc(), "unterminated block comment");
      }
      continue;
    }
    return;
  }
}

Token Lexer::lexDirective(SourceLoc Loc) {
  // Consume to end of line (no continuation lines in the subset).
  size_t Begin = Pos - 1; // at '#'
  while (Pos < Source.size() && peek() != '\n')
    advance();
  std::string_view Text = Source.substr(Begin, Pos - Begin);
  Token T;
  T.Loc = Loc;
  std::string_view Trimmed = trim(Text);
  if (startsWith(Trimmed, "#pragma")) {
    std::string_view Rest = trim(Trimmed.substr(7));
    if (startsWith(Rest, "igen")) {
      T.Kind = TokenKind::PragmaIgen;
      T.Text = std::string(trim(Rest.substr(4)));
      return T;
    }
  }
  T.Kind = TokenKind::PassthroughDirective;
  T.Text = std::string(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Begin = Pos;
  bool IsFloat = false;
  auto isDigit = [&](char C) {
    return std::isdigit(static_cast<unsigned char>(C));
  };
  // Hex integers.
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T;
    T.Kind = TokenKind::IntegerLiteral;
    T.Loc = Loc;
    T.Text = std::string(Source.substr(Begin, Pos - Begin));
    T.IntValue = std::strtoll(T.Text.c_str(), nullptr, 16);
    return T;
  }
  while (isDigit(peek()))
    advance();
  // A '.' after digits always starts a fraction ("1.", "1.5", "1.f"); the
  // member-access ambiguity only exists after identifiers.
  if (peek() == '.') {
    IsFloat = true;
    advance();
    while (isDigit(peek()))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (isDigit(peek())) {
      IsFloat = true;
      while (isDigit(peek()))
        advance();
    } else {
      Pos = Save; // not an exponent
    }
  }
  Token T;
  T.Loc = Loc;
  T.Text = std::string(Source.substr(Begin, Pos - Begin));
  bool FloatSuffix = false, TolSuffix = false;
  if (peek() == 'f' || peek() == 'F') {
    advance();
    FloatSuffix = true;
    IsFloat = true;
  } else if (peek() == 't') { // IGen tolerance extension: 0.25t
    advance();
    TolSuffix = true;
    IsFloat = true;
  }
  if (IsFloat) {
    T.Kind = TokenKind::FloatLiteral;
    T.FloatValue = std::strtod(T.Text.c_str(), nullptr);
    T.IsFloatSuffix = FloatSuffix;
    T.IsTolerance = TolSuffix;
  } else {
    T.Kind = TokenKind::IntegerLiteral;
    T.IntValue = std::strtoll(T.Text.c_str(), nullptr, 10);
  }
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  size_t Begin = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text(Source.substr(Begin, Pos - Begin));
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"void", TokenKind::KwVoid},       {"char", TokenKind::KwChar},
      {"int", TokenKind::KwInt},         {"long", TokenKind::KwLong},
      {"short", TokenKind::KwShort},     {"unsigned", TokenKind::KwUnsigned},
      {"signed", TokenKind::KwSigned},   {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},   {"const", TokenKind::KwConst},
      {"static", TokenKind::KwStatic},   {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},     {"do", TokenKind::KwDo},
      {"return", TokenKind::KwReturn},   {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"sizeof", TokenKind::KwSizeof},
  };
  Token T;
  T.Loc = Loc;
  T.Text = std::move(Text);
  auto It = Keywords.find(T.Text);
  T.Kind = It != Keywords.end() ? It->second : TokenKind::Identifier;
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  SourceLoc Loc = currentLoc();
  if (Pos >= Source.size()) {
    Token T;
    T.Kind = TokenKind::EndOfFile;
    T.Loc = Loc;
    return T;
  }
  char C = peek();
  if (C == '#' && AtLineStart) {
    advance();
    return lexDirective(Loc);
  }
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);

  advance();
  auto Simple = [&](TokenKind K) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    T.Text = std::string(1, C);
    return T;
  };
  switch (C) {
  case '(':
    return Simple(TokenKind::LParen);
  case ')':
    return Simple(TokenKind::RParen);
  case '{':
    return Simple(TokenKind::LBrace);
  case '}':
    return Simple(TokenKind::RBrace);
  case '[':
    return Simple(TokenKind::LBracket);
  case ']':
    return Simple(TokenKind::RBracket);
  case ';':
    return Simple(TokenKind::Semi);
  case ',':
    return Simple(TokenKind::Comma);
  case ':':
    return Simple(TokenKind::Colon);
  case '?':
    return Simple(TokenKind::Question);
  case '~':
    return Simple(TokenKind::Tilde);
  case '.':
    return Simple(TokenKind::Period);
  case '+':
    if (match('+'))
      return Simple(TokenKind::PlusPlus);
    if (match('='))
      return Simple(TokenKind::PlusEqual);
    return Simple(TokenKind::Plus);
  case '-':
    if (match('-'))
      return Simple(TokenKind::MinusMinus);
    if (match('='))
      return Simple(TokenKind::MinusEqual);
    if (match('>'))
      return Simple(TokenKind::Arrow);
    return Simple(TokenKind::Minus);
  case '*':
    if (match('='))
      return Simple(TokenKind::StarEqual);
    return Simple(TokenKind::Star);
  case '/':
    if (match('='))
      return Simple(TokenKind::SlashEqual);
    return Simple(TokenKind::Slash);
  case '%':
    return Simple(TokenKind::Percent);
  case '&':
    if (match('&'))
      return Simple(TokenKind::AmpAmp);
    return Simple(TokenKind::Amp);
  case '|':
    if (match('|'))
      return Simple(TokenKind::PipePipe);
    return Simple(TokenKind::Pipe);
  case '^':
    return Simple(TokenKind::Caret);
  case '!':
    if (match('='))
      return Simple(TokenKind::ExclaimEqual);
    return Simple(TokenKind::Exclaim);
  case '<':
    if (match('='))
      return Simple(TokenKind::LessEqual);
    if (match('<'))
      return Simple(TokenKind::LessLess);
    return Simple(TokenKind::Less);
  case '>':
    if (match('='))
      return Simple(TokenKind::GreaterEqual);
    if (match('>'))
      return Simple(TokenKind::GreaterGreater);
    return Simple(TokenKind::Greater);
  case '=':
    if (match('='))
      return Simple(TokenKind::EqualEqual);
    return Simple(TokenKind::Equal);
  default:
    Diags.error(Loc, formatString("unexpected character '%c'", C));
    return lex();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(lex());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}
