//===- BatchReduce.cpp - Deterministic sound parallel reductions ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Chunked sum/dot over interval arrays with a fixed accumulation order.
// Following Revol-Théveny, parallel interval reductions are only
// trustworthy when the result does not depend on the execution schedule,
// so the order here is a function of N alone:
//
//   1. The array is cut into fixed chunks of kReduceChunk intervals.
//   2. Inside a chunk, kReduceLanes interleaved double-double chains
//      (lane j accumulates elements with index ≡ j mod kReduceLanes,
//      using the upward-rounded ddAddUp of SumAccumulatorF64's
//      representation), combined pairwise into the chunk partial.
//   3. Chunk partials merge in a fixed pairwise tree over the chunk
//      index (stride 1, 2, 4, ...), on the calling thread.
//
// Threads only decide *who* computes a chunk partial, never the order in
// which values meet, so results are bit-identical from 1 to N threads.
// Every worker task establishes upward rounding with the Rounding.h RAII
// guard and restores the thread's previous mode when it finishes.
//
// The chain update runs four lanes per AVX register (two intervals, both
// endpoints): IEEE ops are lanewise, so the packed sequence is
// bit-identical to running the scalar sequence on each lane, and the
// scalar tail below reuses that exact sequence. Dot products come from
// one fixed IntervalX2 multiply compiled into this TU (the scalar iMul
// for tail elements), so reduction bits do not depend on the dispatched
// elementwise ISA tier at all.
//
//===----------------------------------------------------------------------===//

#include "harden/FaultInject.h"
#include "harden/FenvSentinel.h"
#include "interval/Accumulator.h"
#include "interval/DoubleDouble.h"
#include "interval/IntervalVector.h"
#include "runtime/BatchKernels.h"
#include "runtime/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <immintrin.h>
#include <new>
#include <vector>

namespace igen::runtime {

namespace {

/// Per-chunk partial sums: both endpoints in double-double, upper bounds
/// of the exact (negated-low, high) endpoint sums.
struct DdPartial {
  Dd NegLo;
  Dd Hi;
};

/// One step of a double-double chain: (H, L) += B for a plain double
/// addend. This is ddAddUp((H, L), Dd(B)) with the operations whose
/// inputs are exactly zero removed (twoSum against 0 and the final
/// TE + VE add are exact identities), so the result is bit-identical to
/// the general routine while costing 13 flops instead of 20.
inline void ddAccum1(double &H, double &L, double B) {
  double S = H + B;
  double A1 = S - B;
  double B1 = S - A1;
  double DA = H - A1;
  double DB = B - B1;
  double SE = DA + DB;
  double C = SE + L;
  double VH = S + C;
  double Z = VH - S;
  double VE = C - Z;
  double ZH = VH + VE;
  double Z2 = ZH - VH;
  double ZL = VE - Z2;
  H = ZH;
  L = ZL;
}

/// Four ddAccum1 chains at once (two intervals: lanes are
/// (-lo0, hi0, -lo1, hi1)). Packed IEEE ops round lanewise, so each lane
/// computes exactly the scalar sequence above.
inline void ddAccum4(__m256d &H, __m256d &L, __m256d B) {
  __m256d S = _mm256_add_pd(H, B);
  __m256d A1 = _mm256_sub_pd(S, B);
  __m256d B1 = _mm256_sub_pd(S, A1);
  __m256d DA = _mm256_sub_pd(H, A1);
  __m256d DB = _mm256_sub_pd(B, B1);
  __m256d SE = _mm256_add_pd(DA, DB);
  __m256d C = _mm256_add_pd(SE, L);
  __m256d VH = _mm256_add_pd(S, C);
  __m256d Z = _mm256_sub_pd(VH, S);
  __m256d VE = _mm256_sub_pd(C, Z);
  __m256d ZH = _mm256_add_pd(VH, VE);
  __m256d Z2 = _mm256_sub_pd(ZH, VH);
  __m256d ZL = _mm256_sub_pd(VE, Z2);
  H = ZH;
  L = ZL;
}

static_assert(kReduceLanes == 8, "chunk loops below assume 8 lanes");

/// Register-resident chain state for one chunk: four vector groups of
/// four lanes; group g holds element classes 2g and 2g+1 (mod 8), so
/// spilling group g to slots [4g, 4g+4) puts the class-k NegLo chain at
/// scalar slot 2k and its Hi chain at 2k+1.
struct ChunkAcc {
  __m256d H0, L0, H1, L1, H2, L2, H3, L3;

  ChunkAcc() {
    H0 = L0 = H1 = L1 = H2 = L2 = H3 = L3 = _mm256_setzero_pd();
  }

  void step8(__m256d B0, __m256d B1, __m256d B2, __m256d B3) {
    ddAccum4(H0, L0, B0);
    ddAccum4(H1, L1, B1);
    ddAccum4(H2, L2, B2);
    ddAccum4(H3, L3, B3);
  }

  /// Spills the vector chains and folds in the (< kReduceLanes) tail
  /// elements, \p Get mapping an element index to its Interval term;
  /// then combines the 2 * kReduceLanes chains in a fixed pairwise tree.
  template <typename GetFn>
  DdPartial finish(size_t I, size_t N, const GetFn &Get) {
    alignas(32) double HA[2 * kReduceLanes], LA[2 * kReduceLanes];
    _mm256_store_pd(HA + 0, H0);
    _mm256_store_pd(HA + 4, H1);
    _mm256_store_pd(HA + 8, H2);
    _mm256_store_pd(HA + 12, H3);
    _mm256_store_pd(LA + 0, L0);
    _mm256_store_pd(LA + 4, L1);
    _mm256_store_pd(LA + 8, L2);
    _mm256_store_pd(LA + 12, L3);
    for (; I < N; ++I) {
      size_t K = I % kReduceLanes;
      Interval T = Get(I);
      ddAccum1(HA[2 * K], LA[2 * K], T.NegLo);
      ddAccum1(HA[2 * K + 1], LA[2 * K + 1], T.Hi);
    }
    auto Combine = [&](size_t Base) {
      Dd C[kReduceLanes];
      for (size_t K = 0; K < kReduceLanes; ++K)
        C[K] = Dd(HA[2 * K + Base], LA[2 * K + Base]);
      return ddAddUp(ddAddUp(ddAddUp(C[0], C[1]), ddAddUp(C[2], C[3])),
                     ddAddUp(ddAddUp(C[4], C[5]), ddAddUp(C[6], C[7])));
    };
    return {Combine(0), Combine(1)};
  }
};

/// Accumulates N (<= kReduceChunk) intervals into a chunk partial with
/// kReduceLanes interleaved chains. Requires upward rounding.
DdPartial sumChunk(const Interval *X, size_t N) {
  assertRoundUpward();
  ChunkAcc Acc;
  size_t I = 0;
  for (; I + kReduceLanes <= N; I += kReduceLanes)
    Acc.step8(_mm256_loadu_pd(&X[I].NegLo), _mm256_loadu_pd(&X[I + 2].NegLo),
              _mm256_loadu_pd(&X[I + 4].NegLo),
              _mm256_loadu_pd(&X[I + 6].NegLo));
  return Acc.finish(I, N, [X](size_t J) { return X[J]; });
}

/// Accumulates the products X[i] * Y[i] of one chunk, the multiplies
/// fused into the accumulation loop (IntervalX2 iMul, two at a time; the
/// scalar iMul for tail elements). Requires upward rounding.
DdPartial dotChunk(const Interval *X, const Interval *Y, size_t N) {
  assertRoundUpward();
  ChunkAcc Acc;
  size_t I = 0;
  for (; I + kReduceLanes <= N; I += kReduceLanes) {
    auto Prod = [&](size_t Off) {
      return iMul(IntervalX2(_mm256_loadu_pd(&X[I + Off].NegLo)),
                  IntervalX2(_mm256_loadu_pd(&Y[I + Off].NegLo)))
          .V;
    };
    Acc.step8(Prod(0), Prod(2), Prod(4), Prod(6));
  }
  return Acc.finish(I, N, [X, Y](size_t J) { return iMul(X[J], Y[J]); });
}

/// Merges chunk partials in a fixed pairwise tree over the chunk index.
/// Requires upward rounding.
DdPartial mergePartials(std::vector<DdPartial> &P) {
  assertRoundUpward();
  for (size_t Stride = 1; Stride < P.size(); Stride *= 2)
    for (size_t I = 0; I + Stride < P.size(); I += 2 * Stride) {
      P[I].NegLo = ddAddUp(P[I].NegLo, P[I + Stride].NegLo);
      P[I].Hi = ddAddUp(P[I].Hi, P[I + Stride].Hi);
    }
  return P[0];
}

/// Sound degradation when the scratch-partial allocation fails (real
/// std::bad_alloc or the injected 'alloc' fault): the whole line encloses
/// every possible sum/dot, so the result stays correct, just useless.
[[gnu::cold]] Interval allocDegrade(const char *Where) {
  static std::atomic<bool> Warned{false};
  if (!Warned.exchange(true))
    std::fprintf(stderr,
                 "igen: warning: scratch allocation failed in %s; "
                 "returning [-inf, +inf] (sound degradation). Further "
                 "failures are silent.\n",
                 Where);
  return Interval::entire();
}

/// Shared driver: computes per-chunk partials (serially or on the pool),
/// then merges and rounds outward on the calling thread. ChunkFn maps
/// (Begin, Len) to a DdPartial and must itself establish upward rounding.
/// The fenv sentinel runs once per reduction, before any partial is
/// computed; under the poison policy a clobbered environment degrades
/// the whole result to [-inf, +inf].
template <typename ChunkFn>
Interval reduceChunked(const char *Where, size_t N, unsigned Threads,
                       const ChunkFn &Fn) {
  if (N == 0)
    return Interval::fromPoint(0.0);
  {
    RoundUpwardScope Up;
    if (__builtin_expect(harden::checkFenvUpward(Where), 0))
      return Interval::entire();
  }
  size_t NumChunks = (N + kReduceChunk - 1) / kReduceChunk;
  std::vector<DdPartial> Partials;
  if (__builtin_expect(harden::faultsArmedFromEnv(), 0) &&
      harden::faultFires(harden::FaultKind::Alloc))
    return allocDegrade(Where);
  try {
    Partials.resize(NumChunks);
  } catch (const std::bad_alloc &) {
    return allocDegrade(Where);
  }
  auto Task = [&](size_t C) {
    size_t Begin = C * kReduceChunk;
    Partials[C] = Fn(Begin, std::min(kReduceChunk, N - Begin));
  };
  if (Threads == 1 || NumChunks == 1)
    for (size_t C = 0; C < NumChunks; ++C)
      Task(C);
  else
    ThreadPool::instance().parallelFor(NumChunks, Threads, Task);
  RoundUpwardScope Up;
  DdPartial R = mergePartials(Partials);
  return Interval(ddToDoubleUp(R.NegLo), ddToDoubleUp(R.Hi));
}

Interval sumImpl(const Interval *X, size_t N, unsigned Threads) {
  return reduceChunked("iarr_sum", N, Threads,
                       [X](size_t Begin, size_t Len) {
    RoundUpwardScope Up; // Per-task: restores the worker's mode after.
    return sumChunk(X + Begin, Len);
  });
}

Interval dotImpl(const Interval *X, const Interval *Y, size_t N,
                 unsigned Threads) {
  return reduceChunked("iarr_dot", N, Threads,
                       [X, Y](size_t Begin, size_t Len) {
    RoundUpwardScope Up;
    return dotChunk(X + Begin, Y + Begin, Len);
  });
}

} // namespace

Interval iarr_sum(const Interval *X, size_t N) { return sumImpl(X, N, 1); }

Interval iarr_sum_par(const Interval *X, size_t N, unsigned Threads) {
  return sumImpl(X, N, Threads);
}

Interval iarr_dot(const Interval *X, const Interval *Y, size_t N) {
  return dotImpl(X, Y, N, 1);
}

Interval iarr_dot_par(const Interval *X, const Interval *Y, size_t N,
                      unsigned Threads) {
  return dotImpl(X, Y, N, Threads);
}

Interval iarr_norm2(const Interval *X, size_t N) {
  Interval Sq = iarr_dot(X, X, N);
  RoundUpwardScope Up;
  if (!Sq.hasNaN() && Sq.NegLo > 0.0)
    Sq.NegLo = 0.0; // True squares are >= 0: clip lo up to 0 (sound).
  return iSqrt(Sq);
}

} // namespace igen::runtime
