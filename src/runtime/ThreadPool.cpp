//===- ThreadPool.cpp - Minimal thread pool -------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace igen::runtime {

/// One parallelFor invocation. Heap-allocated and shared so that a worker
/// waking up late (after the batch already completed and a new one
/// started) still operates on a consistent, exhausted object instead of
/// racing with the next batch's setup.
struct ThreadPool::Batch {
  std::function<void(size_t)> Body;
  size_t NumTasks = 0;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
  ThreadPool *Pool = nullptr;
};

unsigned ThreadPool::participantsFromEnv(const char *Spec,
                                         unsigned Hardware) {
  return participantsFromEnv(Spec, Hardware, nullptr);
}

unsigned ThreadPool::participantsFromEnv(const char *Spec, unsigned Hardware,
                                         std::string *Warning) {
  if (!Spec || !*Spec)
    return 0;
  char *End = nullptr;
  long V = std::strtol(Spec, &End, 10);
  if (End == Spec || *End != '\0' || V < 1) {
    if (Warning)
      *Warning = std::string("igen: ignoring invalid IGEN_THREADS='") + Spec +
                 "' (expected a positive integer); using hardware default";
    return 0;
  }
  // Oversubscribing past the hardware only adds scheduling noise; the
  // floor of 4 matches the default so small machines still exercise the
  // multithreaded paths.
  long Cap = std::max(4u, Hardware);
  return static_cast<unsigned>(std::min(V, Cap));
}

namespace {

unsigned defaultParticipants() {
  std::string Warning;
  if (unsigned FromEnv = ThreadPool::participantsFromEnv(
          std::getenv("IGEN_THREADS"), std::thread::hardware_concurrency(),
          &Warning))
    return FromEnv;
  // instance() runs this once (static-init), so the warning prints at
  // most once per process.
  if (!Warning.empty())
    std::fprintf(stderr, "%s\n", Warning.c_str());
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 4 ? HW : 4;
}

} // namespace

ThreadPool &ThreadPool::instance() {
  static ThreadPool Pool(defaultParticipants() - 1);
  return Pool;
}

ThreadPool::ThreadPool(unsigned WorkerCount) {
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runTasks(Batch &B) {
  for (;;) {
    size_t I = B.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= B.NumTasks)
      return;
    B.Body(I);
    if (B.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == B.NumTasks) {
      std::lock_guard<std::mutex> L(B.Pool->M);
      B.Pool->DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::shared_ptr<Batch> B;
    {
      std::unique_lock<std::mutex> L(M);
      WorkCv.wait(L, [this] { return Stop || SlotsLeft > 0; });
      if (Stop)
        return;
      --SlotsLeft;
      B = Current;
    }
    runTasks(*B);
  }
}

void ThreadPool::parallelFor(size_t NumTasks, unsigned MaxParticipants,
                             const std::function<void(size_t)> &Body) {
  if (NumTasks == 0)
    return;
  unsigned Avail = maxParticipants();
  unsigned Participants =
      MaxParticipants == 0 ? Avail : std::min(MaxParticipants, Avail);
  if (NumTasks < Participants)
    Participants = static_cast<unsigned>(NumTasks);
  if (Participants <= 1) {
    for (size_t I = 0; I < NumTasks; ++I)
      Body(I);
    return;
  }

  std::lock_guard<std::mutex> SubmitLock(SubmitM);
  auto B = std::make_shared<Batch>();
  B->Body = Body;
  B->NumTasks = NumTasks;
  B->Pool = this;
  {
    std::lock_guard<std::mutex> L(M);
    Current = B;
    SlotsLeft = Participants - 1;
  }
  WorkCv.notify_all();

  runTasks(*B); // The caller participates.

  {
    std::unique_lock<std::mutex> L(M);
    DoneCv.wait(L, [&] {
      return B->Done.load(std::memory_order_acquire) == B->NumTasks;
    });
    // Unclaimed slots are stale once the batch is done; a late worker
    // claiming Current anyway finds it exhausted and goes back to sleep.
    if (Current == B) {
      Current.reset();
      SlotsLeft = 0;
    }
  }
}

} // namespace igen::runtime
