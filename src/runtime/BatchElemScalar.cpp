//===- BatchElemScalar.cpp - Portable batched elementary kernels ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Portable tier of the batched elementary-function kernels: plain loops
// over the certified polynomial interval kernels. The SIMD tiers must be
// bit-identical to these loops (they mirror the same operation
// sequence), which the batch tests check with EXPECT_EQ across forced
// tiers. The sin/cos loops here are shared by every dispatch table; the
// bodies are out-of-line calls into igen_interval, so no tier-specific
// instructions are emitted from this translation unit's loops.
//
//===----------------------------------------------------------------------===//

#include "interval/PolyKernels.h"
#include "runtime/BatchElem.h"

namespace igen::runtime::elem {

void expScalar(Interval *Dst, const Interval *X, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iExpFast(X[I]);
}

void logScalar(Interval *Dst, const Interval *X, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iLogFast(X[I]);
}

void sinScalar(Interval *Dst, const Interval *X, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iSinFast(X[I]);
}

void cosScalar(Interval *Dst, const Interval *X, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iCosFast(X[I]);
}

} // namespace igen::runtime::elem
