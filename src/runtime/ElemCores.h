//===- ElemCores.h - Width-generic batched elementary kernels ---*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lane-parallel transcriptions of the PolyKernels.h exp/log point cores,
/// generic over a small vector-ops backend (SSE2, AVX2, AVX-512). Every
/// vector operation corresponds 1:1 to a scalar operation of the core
/// (plain mul/add/sub/div, NO FMA even on tiers that have it, no
/// reassociation), so under the same ambient upward rounding every lane is
/// bit-identical to iExpFast/iLogFast regardless of register width — the
/// dispatch tiers agree to the last bit.
///
/// The integer parts of the cores use the same tricks as the scalar code:
/// the exponent k drops out of the shifter bit pattern
/// (bits(U) - bits(Shifter)), the 2^k scale is built by integer add+shift
/// (exact on the fast domain), and the int64 -> double conversion of the
/// log exponent goes through the shifter bias (exact for |e| <= 1024).
///
/// Intervals whose endpoints fail the vector fast-domain screen (NaN
/// fails every compare) fall back per element to the scalar kernel, which
/// re-checks and widens via libm — identical to what the scalar tier
/// would produce for that element.
///
/// A backend provides plain double/int64 lane primitives; predicates
/// return bool over all lanes so mask-register ISAs (AVX-512) and
/// movemask ISAs share one kernel body.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_ELEMCORES_H
#define IGEN_RUNTIME_ELEMCORES_H

#include "interval/PolyKernels.h"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <immintrin.h>
#include <limits>

namespace igen::runtime::elem {

//===----------------------------------------------------------------------===//
// Vector-ops backends
//===----------------------------------------------------------------------===//

/// SSE2: one interval per __m128d.
struct Sse2VecOps {
  using D = __m128d;
  using I = __m128i;
  static constexpr size_t kIntervals = 1;
  static constexpr bool kMaskedTail = false;

  static D load(const Interval *P) { return _mm_loadu_pd(&P->NegLo); }
  static void store(Interval *P, D V) { _mm_storeu_pd(&P->NegLo, V); }
  static D set1(double X) { return _mm_set1_pd(X); }
  static I set1i(int64_t X) { return _mm_set1_epi64x(X); }
  /// Sign bit of every negated-lower lane (lane 0 of each pair).
  static D signLo() {
    return _mm_castsi128_pd(
        _mm_set_epi64x(0, std::numeric_limits<int64_t>::min()));
  }
  static D absMask() {
    return _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  }
  static D add(D A, D B) { return _mm_add_pd(A, B); }
  static D sub(D A, D B) { return _mm_sub_pd(A, B); }
  static D mul(D A, D B) { return _mm_mul_pd(A, B); }
  static D div(D A, D B) { return _mm_div_pd(A, B); }
  static D and_(D A, D B) { return _mm_and_pd(A, B); }
  static D or_(D A, D B) { return _mm_or_pd(A, B); }
  static D xor_(D A, D B) { return _mm_xor_pd(A, B); }
  static I castDI(D A) { return _mm_castpd_si128(A); }
  static D castID(I A) { return _mm_castsi128_pd(A); }
  static I addI(I A, I B) { return _mm_add_epi64(A, B); }
  static I subI(I A, I B) { return _mm_sub_epi64(A, B); }
  static I andI(I A, I B) { return _mm_and_si128(A, B); }
  static I orI(I A, I B) { return _mm_or_si128(A, B); }
  template <int N> static I slli(I A) { return _mm_slli_epi64(A, N); }
  template <int N> static I srli(I A) { return _mm_srli_epi64(A, N); }
  /// Full-width compare mask (all-ones lanes), usable as a -1 integer.
  static D cmpGt(D A, D B) { return _mm_cmpgt_pd(A, B); }
  /// select(Mask, T, F): T where Mask is all-ones. The discarded value is
  /// exact, so bitwise selection preserves bit-identity with the scalar
  /// branch.
  static D select(D Mask, D T, D F) {
    return _mm_or_pd(_mm_and_pd(Mask, T), _mm_andnot_pd(Mask, F));
  }
  static bool allLe(D A, D B) {
    return _mm_movemask_pd(_mm_cmple_pd(A, B)) == 0x3;
  }
  static bool allInRange(D A, D Lo, D Hi) {
    return _mm_movemask_pd(
               _mm_and_pd(_mm_cmpge_pd(A, Lo), _mm_cmple_pd(A, Hi))) ==
           0x3;
  }
};

#if defined(__AVX2__)
/// AVX2: two intervals per __m256d. The 256-bit width and the AVX2
/// integer ops (64-bit add/sub/shift across the full register) are where
/// this tier wins, not the instruction mix.
struct Avx2VecOps {
  using D = __m256d;
  using I = __m256i;
  static constexpr size_t kIntervals = 2;
  static constexpr bool kMaskedTail = false;

  static D load(const Interval *P) { return _mm256_loadu_pd(&P->NegLo); }
  static void store(Interval *P, D V) { _mm256_storeu_pd(&P->NegLo, V); }
  static D set1(double X) { return _mm256_set1_pd(X); }
  static I set1i(int64_t X) { return _mm256_set1_epi64x(X); }
  static D signLo() {
    const int64_t S = std::numeric_limits<int64_t>::min();
    return _mm256_castsi256_pd(_mm256_set_epi64x(0, S, 0, S));
  }
  static D absMask() {
    return _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  }
  static D add(D A, D B) { return _mm256_add_pd(A, B); }
  static D sub(D A, D B) { return _mm256_sub_pd(A, B); }
  static D mul(D A, D B) { return _mm256_mul_pd(A, B); }
  static D div(D A, D B) { return _mm256_div_pd(A, B); }
  static D and_(D A, D B) { return _mm256_and_pd(A, B); }
  static D or_(D A, D B) { return _mm256_or_pd(A, B); }
  static D xor_(D A, D B) { return _mm256_xor_pd(A, B); }
  static I castDI(D A) { return _mm256_castpd_si256(A); }
  static D castID(I A) { return _mm256_castsi256_pd(A); }
  static I addI(I A, I B) { return _mm256_add_epi64(A, B); }
  static I subI(I A, I B) { return _mm256_sub_epi64(A, B); }
  static I andI(I A, I B) { return _mm256_and_si256(A, B); }
  static I orI(I A, I B) { return _mm256_or_si256(A, B); }
  template <int N> static I slli(I A) { return _mm256_slli_epi64(A, N); }
  template <int N> static I srli(I A) { return _mm256_srli_epi64(A, N); }
  static D cmpGt(D A, D B) { return _mm256_cmp_pd(A, B, _CMP_GT_OQ); }
  static D select(D Mask, D T, D F) {
    return _mm256_blendv_pd(F, T, Mask);
  }
  static bool allLe(D A, D B) {
    return _mm256_movemask_pd(_mm256_cmp_pd(A, B, _CMP_LE_OQ)) == 0xF;
  }
  static bool allInRange(D A, D Lo, D Hi) {
    return _mm256_movemask_pd(
               _mm256_and_pd(_mm256_cmp_pd(A, Lo, _CMP_GE_OQ),
                             _mm256_cmp_pd(A, Hi, _CMP_LE_OQ))) == 0xF;
  }
};
#endif // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)
/// AVX-512: four intervals per __m512d. Compares produce mask registers;
/// where the cores need an all-ones *vector* mask (the log normalization
/// select doubles as a -1 integer), _mm512_movm_epi64 (DQ) expands it.
struct Avx512VecOps {
  using D = __m512d;
  using I = __m512i;
  static constexpr size_t kIntervals = 4;
  static constexpr bool kMaskedTail = true;

  static D load(const Interval *P) { return _mm512_loadu_pd(&P->NegLo); }
  static void store(Interval *P, D V) { _mm512_storeu_pd(&P->NegLo, V); }
  /// Masked-lane tail: K live intervals, dead lanes filled with the
  /// benign 1.0 (inside every fast domain).
  static D maskLoad(const Interval *P, size_t K) {
    __mmask8 M = static_cast<__mmask8>((1u << (2 * K)) - 1);
    return _mm512_mask_loadu_pd(_mm512_set1_pd(1.0), M, &P->NegLo);
  }
  static void maskStore(Interval *P, size_t K, D V) {
    __mmask8 M = static_cast<__mmask8>((1u << (2 * K)) - 1);
    _mm512_mask_storeu_pd(&P->NegLo, M, V);
  }
  static D set1(double X) { return _mm512_set1_pd(X); }
  static I set1i(int64_t X) { return _mm512_set1_epi64(X); }
  static D signLo() {
    const int64_t S = std::numeric_limits<int64_t>::min();
    return _mm512_castsi512_pd(_mm512_set_epi64(0, S, 0, S, 0, S, 0, S));
  }
  static D absMask() {
    return _mm512_castsi512_pd(_mm512_set1_epi64(0x7FFFFFFFFFFFFFFFll));
  }
  static D add(D A, D B) { return _mm512_add_pd(A, B); }
  static D sub(D A, D B) { return _mm512_sub_pd(A, B); }
  static D mul(D A, D B) { return _mm512_mul_pd(A, B); }
  static D div(D A, D B) { return _mm512_div_pd(A, B); }
  static D and_(D A, D B) { return _mm512_and_pd(A, B); }
  static D or_(D A, D B) { return _mm512_or_pd(A, B); }
  static D xor_(D A, D B) { return _mm512_xor_pd(A, B); }
  static I castDI(D A) { return _mm512_castpd_si512(A); }
  static D castID(I A) { return _mm512_castsi512_pd(A); }
  static I addI(I A, I B) { return _mm512_add_epi64(A, B); }
  static I subI(I A, I B) { return _mm512_sub_epi64(A, B); }
  static I andI(I A, I B) { return _mm512_and_si512(A, B); }
  static I orI(I A, I B) { return _mm512_or_si512(A, B); }
  template <int N> static I slli(I A) { return _mm512_slli_epi64(A, N); }
  template <int N> static I srli(I A) { return _mm512_srli_epi64(A, N); }
  static D cmpGt(D A, D B) {
    return _mm512_castsi512_pd(
        _mm512_movm_epi64(_mm512_cmp_pd_mask(A, B, _CMP_GT_OQ)));
  }
  static D select(D Mask, D T, D F) {
    return _mm512_mask_blend_pd(
        _mm512_movepi64_mask(_mm512_castpd_si512(Mask)), F, T);
  }
  static bool allLe(D A, D B) {
    return _mm512_cmp_pd_mask(A, B, _CMP_LE_OQ) == 0xFF;
  }
  static bool allInRange(D A, D Lo, D Hi) {
    return (_mm512_cmp_pd_mask(A, Lo, _CMP_GE_OQ) &
            _mm512_cmp_pd_mask(A, Hi, _CMP_LE_OQ)) == 0xFF;
  }
};
#endif // AVX-512

//===----------------------------------------------------------------------===//
// The cores, operation for operation
//===----------------------------------------------------------------------===//

/// Every endpoint lane of expCore (PolyKernels.h).
template <class V> inline typename V::D expCoreW(typename V::D X) {
  const typename V::D Shift = V::set1(poly::Shifter);
  typename V::D P = V::mul(X, V::set1(poly::InvLn2));
  typename V::D U = V::add(V::sub(P, V::set1(0.5)), Shift);
  typename V::D Kd = V::sub(U, Shift);
  typename V::I K = V::subI(
      V::castDI(U), V::set1i(std::bit_cast<int64_t>(poly::Shifter)));
  typename V::D R0 = V::sub(X, V::mul(Kd, V::set1(poly::Ln2Hi)));
  typename V::D R = V::sub(R0, V::mul(Kd, V::set1(poly::Ln2Lo)));
  typename V::D Q = V::set1(poly::ExpC[11]);
  for (int I = 10; I >= 0; --I)
    Q = V::add(V::set1(poly::ExpC[I]), V::mul(R, Q));
  typename V::D Z = V::mul(R, R);
  typename V::D Y = V::add(V::set1(1.0), V::add(R, V::mul(Z, Q)));
  typename V::I ScaleBits =
      V::template slli<52>(V::addI(K, V::set1i(1023)));
  return V::mul(Y, V::castID(ScaleBits));
}

/// Every endpoint lane of logCore. The conditional sqrt(2) normalization
/// becomes a bitwise select (the discarded halved value is exact, so
/// selection preserves bit-identity with the scalar branch).
template <class V> inline typename V::D logCoreW(typename V::D X) {
  typename V::I Bits = V::castDI(X);
  // Positive normal input: logical shift == arithmetic shift.
  typename V::I E2 =
      V::subI(V::template srli<52>(Bits), V::set1i(1023));
  typename V::D M = V::castID(
      V::orI(V::andI(Bits, V::set1i(0xFFFFFFFFFFFFFll)),
             V::set1i(0x3FF0000000000000ll)));
  typename V::D Gt = V::cmpGt(M, V::set1(poly::Sqrt2));
  typename V::D MHalf = V::mul(M, V::set1(0.5)); // exact
  M = V::select(Gt, MHalf, M);
  E2 = V::subI(E2, V::castDI(Gt)); // true lane is -1
  // int64 -> double through the shifter bias; exact for |E2| <= 1024, so
  // identical to the scalar static_cast.
  typename V::I EdBits =
      V::addI(E2, V::set1i(std::bit_cast<int64_t>(poly::Shifter)));
  typename V::D Ed = V::sub(V::castID(EdBits), V::set1(poly::Shifter));
  typename V::D A = V::sub(M, V::set1(1.0));
  typename V::D B = V::add(M, V::set1(1.0));
  typename V::D S = V::div(A, B);
  typename V::D Z = V::mul(S, S);
  typename V::D Q = V::set1(poly::LogC[10]);
  for (int I = 9; I >= 0; --I)
    Q = V::add(V::set1(poly::LogC[I]), V::mul(Z, Q));
  typename V::D T = V::mul(V::mul(S, Z), Q);
  typename V::D S2 = V::add(S, S);
  typename V::D VHi = V::mul(Ed, V::set1(poly::Ln2Hi));
  typename V::D VLo = V::mul(Ed, V::set1(poly::Ln2Lo));
  return V::add(V::add(VHi, S2), V::add(T, VLo));
}

//===----------------------------------------------------------------------===//
// The kernel loops
//===----------------------------------------------------------------------===//

template <class V>
inline void expKernel(Interval *Dst, const Interval *X, size_t N) {
  const typename V::D SignLo = V::signLo();
  const typename V::D Abs = V::absMask();
  const typename V::D Limit = V::set1(poly::ExpFastLimit);
  const typename V::D Eps = V::set1(poly::ExpEpsRel);
  constexpr size_t P = V::kIntervals;
  size_t I = 0;
  for (; I + P <= N; I += P) {
    typename V::D Vv = V::load(&X[I]);
    typename V::D E = V::xor_(Vv, SignLo); // endpoint pairs (lo, hi)
    if (!V::allLe(V::and_(E, Abs), Limit)) {
      for (size_t J = 0; J < P; ++J)
        Dst[I + J] = iExpFast(X[I + J]); // re-checks; libm-widened
      continue;
    }
    typename V::D Y = expCoreW<V>(E);  // all lanes positive
    typename V::D Mg = V::mul(Y, Eps); // RU margins
    V::store(&Dst[I], V::add(V::xor_(Y, SignLo), Mg));
  }
  if constexpr (V::kMaskedTail) {
    if (I < N) {
      size_t K = N - I;
      typename V::D E = V::xor_(V::maskLoad(&X[I], K), SignLo);
      if (V::allLe(V::and_(E, Abs), Limit)) {
        typename V::D Y = expCoreW<V>(E);
        typename V::D Mg = V::mul(Y, Eps);
        V::maskStore(&Dst[I], K, V::add(V::xor_(Y, SignLo), Mg));
        return;
      }
    }
  }
  for (; I < N; ++I)
    Dst[I] = iExpFast(X[I]);
}

template <class V>
inline void logKernel(Interval *Dst, const Interval *X, size_t N) {
  const typename V::D SignLo = V::signLo();
  const typename V::D Abs = V::absMask();
  const typename V::D MinN = V::set1(std::numeric_limits<double>::min());
  const typename V::D MaxF = V::set1(std::numeric_limits<double>::max());
  const typename V::D Eps = V::set1(poly::LogEpsRel);
  constexpr size_t P = V::kIntervals;
  size_t I = 0;
  for (; I + P <= N; I += P) {
    typename V::D Vv = V::load(&X[I]);
    typename V::D E = V::xor_(Vv, SignLo);
    // All endpoints positive normal finite (stricter than the scalar
    // lo >= MinN && hi <= MaxF check, which these imply for lo <= hi).
    if (!V::allInRange(E, MinN, MaxF)) {
      for (size_t J = 0; J < P; ++J)
        Dst[I + J] = iLogFast(X[I + J]);
      continue;
    }
    typename V::D Y = logCoreW<V>(E);
    typename V::D Mg = V::mul(V::and_(Y, Abs), Eps);
    V::store(&Dst[I], V::add(V::xor_(Y, SignLo), Mg));
  }
  if constexpr (V::kMaskedTail) {
    if (I < N) {
      size_t K = N - I;
      typename V::D E = V::xor_(V::maskLoad(&X[I], K), SignLo);
      if (V::allInRange(E, MinN, MaxF)) {
        typename V::D Y = logCoreW<V>(E);
        typename V::D Mg = V::mul(V::and_(Y, Abs), Eps);
        V::maskStore(&Dst[I], K, V::add(V::xor_(Y, SignLo), Mg));
        return;
      }
    }
  }
  for (; I < N; ++I)
    Dst[I] = iLogFast(X[I]);
}

} // namespace igen::runtime::elem

#endif // IGEN_RUNTIME_ELEMCORES_H
