//===- CpuDispatch.cpp - Runtime ISA selection ----------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "runtime/CpuDispatch.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace igen::runtime {

// Defined in the per-ISA translation units (BatchKernels<Tier>.cpp).
extern const KernelTable kKernelsScalar;
extern const KernelTable kKernelsSse2;
extern const KernelTable kKernelsAvx;
extern const KernelTable kKernelsAvx2;
extern const KernelTable kKernelsAvx512;

// Defined in DdBatchKernels{,Avx2}.cpp.
extern const DdKernelTable kDdKernelsScalar;
extern const DdKernelTable kDdKernelsAvx2;

bool isaSupported(Isa I) {
  switch (I) {
  case Isa::Scalar:
    return true;
  case Isa::Sse2:
    return __builtin_cpu_supports("sse2");
  case Isa::Avx:
    return __builtin_cpu_supports("avx");
  case Isa::Avx2Fma:
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  case Isa::Avx512:
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("fma");
  }
  return false;
}

Isa detectIsa() {
  for (Isa I : {Isa::Avx512, Isa::Avx2Fma, Isa::Avx, Isa::Sse2})
    if (isaSupported(I))
      return I;
  return Isa::Scalar;
}

const char *isaName(Isa I) {
  switch (I) {
  case Isa::Scalar:
    return "scalar";
  case Isa::Sse2:
    return "sse2";
  case Isa::Avx:
    return "avx";
  case Isa::Avx2Fma:
    return "avx2";
  case Isa::Avx512:
    return "avx512";
  }
  return "?";
}

namespace {

/// Cached selection; -1 means "not resolved yet" (forceIsa() writes it
/// directly, clearForcedIsa() resets it).
std::atomic<int> ActiveCache{-1};

bool parseIsaName(const char *S, Isa &Out) {
  for (int I = 0; I < NumIsas; ++I)
    if (std::strcmp(S, isaName(static_cast<Isa>(I))) == 0) {
      Out = static_cast<Isa>(I);
      return true;
    }
  return false;
}

} // namespace

Isa resolveIsaFromSpec(const char *Spec, std::string *Warning) {
  if (Spec && *Spec) {
    Isa Wanted;
    if (!parseIsaName(Spec, Wanted)) {
      if (Warning)
        *Warning = std::string("igen: ignoring unknown IGEN_ISA='") + Spec +
                   "' (expected scalar|sse2|avx|avx2|avx512)";
    } else if (!isaSupported(Wanted)) {
      if (Warning)
        *Warning = std::string("igen: IGEN_ISA='") + Spec +
                   "' not supported by this CPU; auto-detecting";
    } else {
      return Wanted;
    }
  }
  return detectIsa();
}

namespace {

/// Env-override resolution, warning to stderr at most once per process
/// even though clearForcedIsa() can make activeIsa() re-resolve.
Isa resolveIsa() {
  std::string Warning;
  Isa I = resolveIsaFromSpec(std::getenv("IGEN_ISA"), &Warning);
  static std::atomic<bool> Warned{false};
  if (!Warning.empty() && !Warned.exchange(true))
    std::fprintf(stderr, "%s\n", Warning.c_str());
  return I;
}

} // namespace

Isa activeIsa() {
  int Cached = ActiveCache.load(std::memory_order_acquire);
  if (Cached < 0) {
    Cached = static_cast<int>(resolveIsa());
    ActiveCache.store(Cached, std::memory_order_release);
  }
  return static_cast<Isa>(Cached);
}

void forceIsa(Isa I) {
  if (!isaSupported(I))
    I = detectIsa();
  ActiveCache.store(static_cast<int>(I), std::memory_order_release);
}

void clearForcedIsa() { ActiveCache.store(-1, std::memory_order_release); }

const KernelTable &kernelTableFor(Isa I) {
  assert(kernelTablesComplete() && "null kernel-table entry");
  switch (I) {
  case Isa::Scalar:
    return kKernelsScalar;
  case Isa::Sse2:
    return kKernelsSse2;
  case Isa::Avx:
    return kKernelsAvx;
  case Isa::Avx2Fma:
    return kKernelsAvx2;
  case Isa::Avx512:
    return kKernelsAvx512;
  }
  return kKernelsScalar;
}

const KernelTable &kernels() { return kernelTableFor(activeIsa()); }

const DdKernelTable &ddKernelTableFor(Isa I) {
  return I >= Isa::Avx2Fma ? kDdKernelsAvx2 : kDdKernelsScalar;
}

const DdKernelTable &ddKernels() { return ddKernelTableFor(activeIsa()); }

bool kernelTablesComplete(std::string *Missing) {
  // The one-time check result is cached: kernelTableFor() asserts on it
  // in debug builds, so it runs on every dispatch.
  auto Check = [&Missing]() {
    bool Ok = true;
    auto Note = [&](Isa I, const char *Op) {
      Ok = false;
      if (Missing) {
        if (!Missing->empty())
          *Missing += ", ";
        *Missing += std::string(isaName(I)) + "." + Op;
      }
    };
    for (int N = 0; N < NumIsas; ++N) {
      Isa I = static_cast<Isa>(N);
      const KernelTable *T;
      switch (I) {
      case Isa::Scalar:
        T = &kKernelsScalar;
        break;
      case Isa::Sse2:
        T = &kKernelsSse2;
        break;
      case Isa::Avx:
        T = &kKernelsAvx;
        break;
      case Isa::Avx2Fma:
        T = &kKernelsAvx2;
        break;
      case Isa::Avx512:
        T = &kKernelsAvx512;
        break;
      }
      if (!T->Name)
        Note(I, "Name");
      if (!T->Add)
        Note(I, "Add");
      if (!T->Sub)
        Note(I, "Sub");
      if (!T->Mul)
        Note(I, "Mul");
      if (!T->Fma)
        Note(I, "Fma");
      if (!T->Scale)
        Note(I, "Scale");
      if (!T->Div)
        Note(I, "Div");
      if (!T->Sqrt)
        Note(I, "Sqrt");
      if (!T->Exp)
        Note(I, "Exp");
      if (!T->Log)
        Note(I, "Log");
      if (!T->Sin)
        Note(I, "Sin");
      if (!T->Cos)
        Note(I, "Cos");
      const DdKernelTable &D = ddKernelTableFor(I);
      if (!D.Name)
        Note(I, "Dd.Name");
      if (!D.Add)
        Note(I, "Dd.Add");
      if (!D.Sub)
        Note(I, "Dd.Sub");
      if (!D.Mul)
        Note(I, "Dd.Mul");
      if (!D.Fma)
        Note(I, "Dd.Fma");
    }
    return Ok;
  };
  if (Missing) // uncached: the caller wants the hole list
    return Check();
  static const bool Complete = Check();
  return Complete;
}

} // namespace igen::runtime
