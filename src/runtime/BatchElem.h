//===- BatchElem.h - Batched elementary-function kernels --------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal declarations of the per-ISA batched elementary-function
/// kernels (interval/PolyKernels.h cores) wired into the KernelTable of
/// each dispatch tier. The SIMD exp/log kernels evaluate both interval
/// endpoints in parallel lanes with the *exact* operation sequence of
/// the scalar cores, so results are bit-identical across tiers.
///
/// sin/cos stay scalar in every tier: the range analysis (sectionRangeUp
/// plus the modular peak/trough test) is control-flow heavy and the
/// polynomial work per endpoint is already fesetround-free, so a plain
/// loop over iSinFast/iCosFast is shared by all tables. The loop bodies
/// are out-of-line calls into igen_interval, so the shared translation
/// unit emits no tier-specific instructions.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_BATCHELEM_H
#define IGEN_RUNTIME_BATCHELEM_H

#include "interval/Interval.h"

#include <cstddef>

namespace igen::runtime::elem {

// Portable tier (BatchElemScalar.cpp): plain loops over the scalar fast
// kernels. Also the bit-level reference for the SIMD tiers, and the
// shared sin/cos implementation for every table.
void expScalar(Interval *Dst, const Interval *X, size_t N);
void logScalar(Interval *Dst, const Interval *X, size_t N);
void sinScalar(Interval *Dst, const Interval *X, size_t N);
void cosScalar(Interval *Dst, const Interval *X, size_t N);

// SSE2 tier (BatchElemSse2.cpp, -march=x86-64): one interval per
// __m128d, both endpoints per iteration. Also used by the AVX table —
// the elementary cores gain nothing from VEX encoding alone.
void expSse2(Interval *Dst, const Interval *X, size_t N);
void logSse2(Interval *Dst, const Interval *X, size_t N);

// AVX2 tier (BatchElemAvx2.cpp, -mavx2 -mfma): two intervals per
// __m256d. FMA is deliberately NOT used inside the cores (it would
// change the bits versus the other tiers); the flag only matches the
// TU's tier.
void expAvx2(Interval *Dst, const Interval *X, size_t N);
void logAvx2(Interval *Dst, const Interval *X, size_t N);

// AVX-512 tier (BatchElemAvx512.cpp, -mavx512f -mavx512dq -mavx512vl):
// four intervals per __m512d, with a masked-lane tail (dead lanes carry
// a benign 1.0 inside every fast domain) instead of a scalar remainder
// loop. Same no-FMA operation sequence as every other tier.
void expAvx512(Interval *Dst, const Interval *X, size_t N);
void logAvx512(Interval *Dst, const Interval *X, size_t N);

} // namespace igen::runtime::elem

#endif // IGEN_RUNTIME_BATCHELEM_H
