//===- BatchKernelsAvx2.cpp - AVX2+FMA batched kernels --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX2+FMA tier: the Lane.h AVX2 backend — IntervalX2 algorithms
// unrolled two packs deep, a genuinely fused elementwise A*B + C, the
// group-screened multiply (bitwise-OR special-value screen over four
// pack pairs), and non-temporal stores for batches that outgrow L2.
// Compiled with -march=x86-64 -mavx2 -mfma.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernelsImpl.h"

namespace igen::runtime {

extern const KernelTable kKernelsAvx2; // external linkage
constinit const KernelTable kKernelsAvx2 =
    impl::makeTable<lanes::Avx2Lanes>("avx2", elem::expAvx2, elem::logAvx2,
                                      elem::sinScalar, elem::cosScalar);

} // namespace igen::runtime
