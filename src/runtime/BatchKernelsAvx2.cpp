//===- BatchKernelsAvx2.cpp - AVX2+FMA batched kernels --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX2+FMA tier: the IntervalX2 algorithms unrolled several registers
// deep to cover the FP latency of the candidate products, plus a
// genuinely fused elementwise A*B + C. The multiply screens its *inputs*
// for inf/NaN (cheap bitwise OR over the batch) instead of summing the
// candidate products per pair, which removes three vector adds per pair
// from an ALU-throughput-bound loop. The fused kernel
// exploits that the hardware FMA rounds once: with the FPU rounding
// upward, fma(p, q, c) == RU(p*q + c) >= p*q + c, so adding the addend
// inside each candidate product is sound *and* tighter than the composed
// RU(RU(p*q) + c) of the other tiers. Compiled with
// -march=x86-64 -mavx2 -mfma.
//
// Batches too large for L2 are store-bound: a cached store of Dst first
// reads the line for ownership, a quarter of the total traffic for
// kernels that stream 48 B per interval. Such batches use non-temporal
// stores instead (gated on batch size and 32-byte alignment of Dst,
// reached by peeling at most one leading element).
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalVector.h"
#include "runtime/BatchElem.h"
#include "runtime/CpuDispatch.h"

#include <cstdint>

namespace igen::runtime {

namespace {

inline IntervalX2 load2(const Interval *P) {
  return IntervalX2(_mm256_loadu_pd(&P->NegLo));
}

inline void store2(Interval *P, const IntervalX2 &V) {
  _mm256_storeu_pd(&P->NegLo, V.V);
}

/// Batch size from which the three streams (~1.5 MB) outgrow a typical
/// L2 and stores switch to the non-temporal path.
constexpr size_t kNtMinBatch = 32768;

/// Decides the store flavor for a batch. When streaming pays off and Dst
/// can be 32-byte aligned by peeling at most one element (Interval is
/// 16 bytes), returns true and sets \p Peel; otherwise plain stores.
inline bool useNtStores(const Interval *Dst, size_t N, size_t &Peel) {
  Peel = 0;
  uintptr_t A = reinterpret_cast<uintptr_t>(Dst);
  if (N < kNtMinBatch || A % 16 != 0)
    return false;
  Peel = (A % 32) ? 1 : 0;
  return true;
}

template <bool NT> inline void storeV(Interval *P, __m256d V) {
  if constexpr (NT)
    _mm256_stream_pd(&P->NegLo, V); // requires 32-byte alignment
  else
    _mm256_storeu_pd(&P->NegLo, V);
}

/// Fused interval A*B + C on two packed intervals. Candidate layout is the
/// iMul scheme of IntervalVector.h with C.V as the FMA addend: lane 0 of
/// every candidate is RU(-(a_i*b_j) + (-lo C)) and lane 1 is
/// RU(a_i*b_j + hi C); the maxima over the four sign patterns bound
/// -lo(A*B + C) and hi(A*B + C) from above. A NaN in any candidate
/// (0 * inf, inf - inf, NaN endpoints) routes both elements through the
/// conservative composed scalar path.
inline IntervalX2 fmaX2(const IntervalX2 &A, const IntervalX2 &B,
                        const IntervalX2 &C) {
  using namespace igen::detail;
  __m256d Xn = broadcastLo256(A.V);
  __m256d Xh = broadcastHi256(A.V);
  __m256d Yn = broadcastLo256(B.V);
  __m256d Yh = broadcastHi256(B.V);
  __m256d YnNegLo = _mm256_xor_pd(Yn, signLoMask256());
  __m256d YnNegHi = swapLanes256(YnNegLo);
  __m256d XnNegHi = _mm256_xor_pd(Xn, signHiMask256());
  __m256d XhNegLo = _mm256_xor_pd(Xh, signLoMask256());
  __m256d W1 = _mm256_fmadd_pd(Xn, YnNegLo, C.V);
  __m256d W2 = _mm256_fmadd_pd(Xh, YnNegHi, C.V);
  __m256d W3 = _mm256_fmadd_pd(Yh, XnNegHi, C.V);
  __m256d W4 = _mm256_fmadd_pd(Yh, XhNegLo, C.V);
  __m256d Check =
      _mm256_add_pd(_mm256_add_pd(W1, W2), _mm256_add_pd(W3, W4));
  if (__builtin_expect(anyNaN256(Check), 0))
    return IntervalX2::fromIntervals(
        iAdd(iMul(A.interval(0), B.interval(0)), C.interval(0)),
        iAdd(iMul(A.interval(1), B.interval(1)), C.interval(1)));
  return IntervalX2(
      _mm256_max_pd(_mm256_max_pd(W1, W2), _mm256_max_pd(W3, W4)));
}

template <bool NT>
void addBody(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    storeV<NT>(Dst + I, iAdd(load2(X + I), load2(Y + I)).V);
    storeV<NT>(Dst + I + 2, iAdd(load2(X + I + 2), load2(Y + I + 2)).V);
  }
  for (; I + 2 <= N; I += 2)
    storeV<NT>(Dst + I, iAdd(load2(X + I), load2(Y + I)).V);
  for (; I < N; ++I)
    Dst[I] = iAdd(X[I], Y[I]);
}

void addK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t Peel;
  if (useNtStores(Dst, N, Peel)) {
    for (size_t I = 0; I < Peel; ++I)
      Dst[I] = iAdd(X[I], Y[I]);
    addBody<true>(Dst + Peel, X + Peel, Y + Peel, N - Peel);
    _mm_sfence();
  } else {
    addBody<false>(Dst, X, Y, N);
  }
}

template <bool NT>
void subBody(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    storeV<NT>(Dst + I, iSub(load2(X + I), load2(Y + I)).V);
    storeV<NT>(Dst + I + 2, iSub(load2(X + I + 2), load2(Y + I + 2)).V);
  }
  for (; I + 2 <= N; I += 2)
    storeV<NT>(Dst + I, iSub(load2(X + I), load2(Y + I)).V);
  for (; I < N; ++I)
    Dst[I] = iSub(X[I], Y[I]);
}

void subK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t Peel;
  if (useNtStores(Dst, N, Peel)) {
    for (size_t I = 0; I < Peel; ++I)
      Dst[I] = iSub(X[I], Y[I]);
    subBody<true>(Dst + Peel, X + Peel, Y + Peel, N - Peel);
    _mm_sfence();
  } else {
    subBody<false>(Dst, X, Y, N);
  }
}

/// The IntervalVector.h iMul candidate scheme reduced to one combined
/// result, with no per-pair NaN check: callers must have screened the
/// inputs (see mulBody). With all-finite inputs no candidate can be NaN
/// — finite * finite is a real, and overflow to +/-inf only loosens the
/// upper bound, which stays sound under upward rounding.
inline __m256d mulScreened(__m256d X, __m256d Y) {
  using namespace igen::detail;
  __m256d Xn = broadcastLo256(X);
  __m256d Xh = broadcastHi256(X);
  __m256d Yn = broadcastLo256(Y);
  __m256d Yh = broadcastHi256(Y);
  __m256d YnNegLo = _mm256_xor_pd(Yn, signLoMask256());
  __m256d YnNegHi = swapLanes256(YnNegLo);
  __m256d XnNegHi = _mm256_xor_pd(Xn, signHiMask256());
  __m256d XhNegLo = _mm256_xor_pd(Xh, signLoMask256());
  __m256d V1 = _mm256_mul_pd(Xn, YnNegLo);
  __m256d V2 = _mm256_mul_pd(Xh, YnNegHi);
  __m256d V3 = _mm256_mul_pd(Yh, XnNegHi);
  __m256d V4 = _mm256_mul_pd(Yh, XhNegLo);
  return _mm256_max_pd(_mm256_max_pd(V1, V2), _mm256_max_pd(V3, V4));
}

template <bool NT>
void mulBody(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  // Bitwise-OR screen over the loaded inputs: an inf or NaN lane keeps
  // its all-ones exponent through the OR, so |OR| >= inf (unordered on
  // NaN) detects every special input. A spurious all-ones exponent
  // assembled from different lanes' bits only reroutes the group through
  // the sound iMul fallback. Screening inputs instead of summing the
  // candidate products (iMul's own check) saves three vector adds per
  // pair — the loop is ALU-throughput-bound.
  const __m256d AbsMask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  const __m256d Inf = _mm256_set1_pd(__builtin_inf());
  size_t I = 0;
  // Eight intervals per iteration with one shared screen branch.
  // Prefetching a few iterations ahead hides part of the L3 latency on
  // big batches.
  for (; I + 8 <= N; I += 8) {
    _mm_prefetch(reinterpret_cast<const char *>(X + I + 16), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Y + I + 16), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(X + I + 20), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Y + I + 20), _MM_HINT_T0);
    __m256d X0 = _mm256_loadu_pd(&X[I].NegLo);
    __m256d Y0 = _mm256_loadu_pd(&Y[I].NegLo);
    __m256d X1 = _mm256_loadu_pd(&X[I + 2].NegLo);
    __m256d Y1 = _mm256_loadu_pd(&Y[I + 2].NegLo);
    __m256d X2 = _mm256_loadu_pd(&X[I + 4].NegLo);
    __m256d Y2 = _mm256_loadu_pd(&Y[I + 4].NegLo);
    __m256d X3 = _mm256_loadu_pd(&X[I + 6].NegLo);
    __m256d Y3 = _mm256_loadu_pd(&Y[I + 6].NegLo);
    __m256d O = _mm256_or_pd(
        _mm256_or_pd(_mm256_or_pd(X0, Y0), _mm256_or_pd(X1, Y1)),
        _mm256_or_pd(_mm256_or_pd(X2, Y2), _mm256_or_pd(X3, Y3)));
    __m256d Bad =
        _mm256_cmp_pd(_mm256_and_pd(O, AbsMask), Inf, _CMP_NLT_UQ);
    if (__builtin_expect(_mm256_movemask_pd(Bad) != 0, 0)) {
      for (size_t J = I; J < I + 8; J += 2)
        storeV<NT>(Dst + J, iMul(load2(X + J), load2(Y + J)).V);
      continue;
    }
    storeV<NT>(Dst + I, mulScreened(X0, Y0));
    storeV<NT>(Dst + I + 2, mulScreened(X1, Y1));
    storeV<NT>(Dst + I + 4, mulScreened(X2, Y2));
    storeV<NT>(Dst + I + 6, mulScreened(X3, Y3));
  }
  for (; I + 2 <= N; I += 2)
    storeV<NT>(Dst + I, iMul(load2(X + I), load2(Y + I)).V);
  for (; I < N; ++I)
    Dst[I] = iMul(X[I], Y[I]);
}

void mulK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t Peel;
  if (useNtStores(Dst, N, Peel)) {
    for (size_t I = 0; I < Peel; ++I)
      Dst[I] = iMul(X[I], Y[I]);
    mulBody<true>(Dst + Peel, X + Peel, Y + Peel, N - Peel);
    _mm_sfence();
  } else {
    mulBody<false>(Dst, X, Y, N);
  }
}

template <bool NT>
void fmaBody(Interval *Dst, const Interval *A, const Interval *B,
             const Interval *C, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    storeV<NT>(Dst + I, fmaX2(load2(A + I), load2(B + I), load2(C + I)).V);
    storeV<NT>(
        Dst + I + 2,
        fmaX2(load2(A + I + 2), load2(B + I + 2), load2(C + I + 2)).V);
  }
  for (; I + 2 <= N; I += 2)
    storeV<NT>(Dst + I, fmaX2(load2(A + I), load2(B + I), load2(C + I)).V);
  for (; I < N; ++I)
    Dst[I] = iAdd(iMul(A[I], B[I]), C[I]);
}

void fmaK(Interval *Dst, const Interval *A, const Interval *B,
          const Interval *C, size_t N) {
  size_t Peel;
  if (useNtStores(Dst, N, Peel)) {
    for (size_t I = 0; I < Peel; ++I)
      Dst[I] = iAdd(iMul(A[I], B[I]), C[I]);
    fmaBody<true>(Dst + Peel, A + Peel, B + Peel, C + Peel, N - Peel);
    _mm_sfence();
  } else {
    fmaBody<false>(Dst, A, B, C, N);
  }
}

template <bool NT>
void scaleBody(Interval *Dst, const Interval *X, const IntervalX2 &SV,
               size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    storeV<NT>(Dst + I, iMul(load2(X + I), SV).V);
    storeV<NT>(Dst + I + 2, iMul(load2(X + I + 2), SV).V);
  }
  for (; I + 2 <= N; I += 2)
    storeV<NT>(Dst + I, iMul(load2(X + I), SV).V);
  for (; I < N; ++I)
    Dst[I] = iMul(X[I], SV.interval(0));
}

void scaleK(Interval *Dst, const Interval *X, Interval S, size_t N) {
  IntervalX2 SV = IntervalX2::broadcast(S);
  size_t Peel;
  if (useNtStores(Dst, N, Peel)) {
    for (size_t I = 0; I < Peel; ++I)
      Dst[I] = iMul(X[I], S);
    scaleBody<true>(Dst + Peel, X + Peel, SV, N - Peel);
    _mm_sfence();
  } else {
    scaleBody<false>(Dst, X, SV, N);
  }
}

} // namespace

extern const KernelTable kKernelsAvx2 = {
    "avx2",        addK,          subK,          mulK,           fmaK,
    scaleK,        elem::expAvx2, elem::logAvx2, elem::sinScalar,
    elem::cosScalar};

} // namespace igen::runtime
