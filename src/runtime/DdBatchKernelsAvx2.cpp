//===- DdBatchKernelsAvx2.cpp - AVX2+FMA batched ddi kernels --------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX2+FMA tier of the batched double-double interval kernels: one ddi
// per __m256d through the DdSimd.h algorithms (vectorized DD_Add /
// candidate-product multiply). Results are bit-identical to the scalar
// tier: the vector sequences mirror the scalar error-free
// transformations lane for lane and every screen hit falls back to the
// scalar routine.
//
// The DdSimd register layout interleaves the endpoints' high and low
// words ([negLo.H | hi.H | negLo.L | hi.L]) while DdInterval memory
// order is (negLo.H, negLo.L, hi.H, hi.L); the 0xD8 permute (swap the
// two middle 64-bit lanes) converts between them and is its own
// inverse. Compiled with -march=x86-64 -mavx2 -mfma.
//
//===----------------------------------------------------------------------===//

#include "interval/DdSimd.h"
#include "runtime/DdBatch.h"

namespace igen::runtime {

namespace {

inline DdIntervalAvx loadDd(const DdInterval *P) {
  return DdIntervalAvx(
      _mm256_permute4x64_pd(_mm256_loadu_pd(&P->NegLo.H), 0xD8));
}

inline void storeDd(DdInterval *P, const DdIntervalAvx &V) {
  _mm256_storeu_pd(&P->NegLo.H, _mm256_permute4x64_pd(V.V, 0xD8));
}

void addK(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
          size_t N) {
  for (size_t I = 0; I < N; ++I)
    storeDd(Dst + I, ddiAdd(loadDd(X + I), loadDd(Y + I)));
}

void subK(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
          size_t N) {
  for (size_t I = 0; I < N; ++I)
    storeDd(Dst + I, ddiSub(loadDd(X + I), loadDd(Y + I)));
}

void mulK(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
          size_t N) {
  for (size_t I = 0; I < N; ++I)
    storeDd(Dst + I, ddiMul(loadDd(X + I), loadDd(Y + I)));
}

void fmaK(DdInterval *Dst, const DdInterval *A, const DdInterval *B,
          const DdInterval *C, size_t N) {
  for (size_t I = 0; I < N; ++I)
    storeDd(Dst + I,
            ddiAdd(ddiMul(loadDd(A + I), loadDd(B + I)), loadDd(C + I)));
}

} // namespace

extern const DdKernelTable kDdKernelsAvx2; // external linkage
constinit const DdKernelTable kDdKernelsAvx2 = {"dd-avx2", addK, subK, mulK,
                                                fmaK};

} // namespace igen::runtime
