//===- Lane.h - Portable lane backends for the batched kernels --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane abstraction behind the per-ISA batched-kernel TUs. A backend
/// describes one SIMD tier as a set of pack primitives (load/store,
/// add/sub/mul/fma/div/sqrt, masked tails, non-temporal stores) plus a
/// handful of compile-time traits; BatchKernelsImpl.h instantiates the
/// kernel templates over a backend, so BatchKernels{Scalar,Sse2,Avx,Avx2,
/// Avx512}.cpp are one-line table definitions instead of five hand-rolled
/// near-duplicates. A future NEON/SVE tier is a new backend struct here,
/// not a kernel rewrite.
///
/// Determinism contract (see BatchKernels.h): every backend's add/sub/
/// mul/scale/div/sqrt produce results bit-identical to the scalar tier
/// element by element. For div this is guaranteed on *all* inputs by
/// construction: each pack classifies its divisors exactly like the
/// scalar `divAuto` (lo > 0 / hi < 0 / generic), the sign-specialized
/// fast paths are lanewise transcriptions of the scalar candidate
/// schemes, and the NaN screen sums the candidates across the endpoint
/// lanes so every element sees the exact scalar check value; any screen
/// hit falls back to the scalar routine per element. The same holds for
/// sqrt (the vector fast path reproduces sqrtRoundDown's bits; anything
/// outside the open domain (0, inf) x [0, ...] goes to scalar iSqrt).
/// fma is the one exemption: the AVX2+/AVX-512 tiers fuse, which is
/// sound and *tighter* than the composed scalar reference.
///
/// Backends compile only under their ISA macros, so each TU sees exactly
/// the backends its -m flags allow.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_LANE_H
#define IGEN_RUNTIME_LANE_H

#include "interval/Interval.h"
#include "interval/IntervalSimd.h"
#if defined(__AVX__)
#include "interval/IntervalVector.h"
#endif

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

namespace igen::runtime::lanes {

//===----------------------------------------------------------------------===//
// Scalar helpers shared by every backend's slow paths
//===----------------------------------------------------------------------===//

/// The one scalar division every tier agrees on: route through the PR 2
/// sign-specialized lowerings exactly when their preconditions hold.
/// (NaN endpoints fail both compares and take the generic case analysis.)
inline Interval divAuto(const Interval &X, const Interval &Y) {
  if (-Y.NegLo > 0.0)
    return iDivP(X, Y); // divisor strictly positive
  if (Y.Hi < 0.0)
    return iDivN(X, Y); // divisor strictly negative
  return iDiv(X, Y);
}

/// The composed (unfused) fma reference shared by the scalar tails.
inline Interval fmaComposed(const Interval &A, const Interval &B,
                            const Interval &C) {
  return iAdd(iMul(A, B), C);
}

//===----------------------------------------------------------------------===//
// ScalarLanes: one Interval per pack, plain scalar ops
//===----------------------------------------------------------------------===//

struct ScalarLanes {
  using Pack = Interval;
  static constexpr size_t kIntervals = 1;
  static constexpr size_t kUnroll = 1;
  static constexpr bool kNtStores = false;
  static constexpr size_t kNtAlign = 16;
  static constexpr size_t kNtMinBatch = ~size_t(0);
  static constexpr bool kMaskedTail = false;
  static constexpr bool kGroupMul = false;

  static Pack load(const Interval *P) { return *P; }
  template <bool NT> static void store(Interval *P, const Pack &V) {
    *P = V;
  }
  static void storeFence() {}
  static Pack broadcast(const Interval &I) { return I; }
  static Pack add(const Pack &X, const Pack &Y) { return iAdd(X, Y); }
  static Pack sub(const Pack &X, const Pack &Y) { return iSub(X, Y); }
  static Pack mul(const Pack &X, const Pack &Y) { return iMul(X, Y); }
  // Explicitly composed even though this TU may be compiled with FMA
  // available: the scalar tier is the bit-reference for the others.
  static Pack fma(const Pack &A, const Pack &B, const Pack &C) {
    return fmaComposed(A, B, C);
  }
  static Pack div(const Pack &X, const Pack &Y) { return divAuto(X, Y); }
  static Pack sqrt(const Pack &X) { return iSqrt(X); }
};

//===----------------------------------------------------------------------===//
// Sse2Lanes: one interval per __m128d
//===----------------------------------------------------------------------===//

namespace sse2 {

inline __m128d signLane0() { return _mm_set_pd(0.0, -0.0); }

/// Positive-divisor division, one packed interval. Lanewise transcription
/// of the scalar iDivP: V1 = (N1, H1), V2 = (N2, H2). The screen sums
/// *across* the lanes so it equals the scalar check (N1+N2)+(H1+H2)
/// exactly; on a hit the scalar routine redoes the element bit-for-bit.
inline IntervalSse divP(const IntervalSse &X, const IntervalSse &Y) {
  __m128d Yl =
      _mm_xor_pd(igen::detail::broadcastLo(Y.V), _mm_set1_pd(-0.0));
  __m128d V1 = _mm_div_pd(X.V, Yl);
  __m128d V2 = _mm_div_pd(X.V, igen::detail::broadcastHi(Y.V));
  __m128d C = _mm_add_pd(V1, V2);
  __m128d Check = _mm_add_pd(C, igen::detail::swapLanes(C));
  if (__builtin_expect(igen::detail::anyNaN(Check), 0))
    return IntervalSse::fromInterval(
        iDivP(X.toInterval(), Y.toInterval()));
  return IntervalSse(_mm_max_pd(V1, V2));
}

/// Negative-divisor division; a/(-b) == (-a)/b under the same rounding,
/// so swapping X's lanes and negating the divisor reproduces the scalar
/// candidates N1 = (-xh)/yh, H1 = (-xn)/yh, N2 = xh/yn, H2 = xn/yn.
inline IntervalSse divN(const IntervalSse &X, const IntervalSse &Y) {
  __m128d A = igen::detail::swapLanes(X.V); // (xh, xn)
  __m128d Yh =
      _mm_xor_pd(igen::detail::broadcastHi(Y.V), _mm_set1_pd(-0.0));
  __m128d V1 = _mm_div_pd(A, Yh);
  __m128d V2 = _mm_div_pd(A, igen::detail::broadcastLo(Y.V));
  __m128d C = _mm_add_pd(V1, V2);
  __m128d Check = _mm_add_pd(C, igen::detail::swapLanes(C));
  if (__builtin_expect(igen::detail::anyNaN(Check), 0))
    return IntervalSse::fromInterval(
        iDivN(X.toInterval(), Y.toInterval()));
  return IntervalSse(_mm_max_pd(V1, V2));
}

/// Packed sqrt of one interval. Fast domain: lo in (0, inf) (finite,
/// strictly positive) and hi >= 0 with no NaN; everything else — lo <= 0,
/// lo == +inf, hi < 0, NaN endpoints — goes to scalar iSqrt. On the fast
/// path the hardware sqrt honors the ambient upward rounding for the hi
/// lane, and the lo lane reproduces sqrtRoundDown: under RU,
/// RU(s*s) == lo iff s*s == lo exactly, otherwise step one ulp down.
inline IntervalSse sqrtPack(const IntervalSse &X) {
  const __m128d Zero = _mm_setzero_pd();
  int MLt = _mm_movemask_pd(_mm_cmplt_pd(X.V, Zero));
  int MGt = _mm_movemask_pd(
      _mm_cmpgt_pd(X.V, _mm_set1_pd(-__builtin_inf())));
  int MGe = _mm_movemask_pd(_mm_cmpge_pd(X.V, Zero));
  if (__builtin_expect(!((MLt & MGt & 1) && (MGe & 2)), 0))
    return IntervalSse::fromInterval(iSqrt(X.toInterval()));
  __m128d SignLo = signLane0();
  __m128d Vpos = _mm_xor_pd(X.V, SignLo); // (lo, hi)
  __m128d S = _mm_sqrt_pd(Vpos);
  __m128d SS = _mm_mul_pd(S, S);
  __m128d Eq = _mm_cmpeq_pd(SS, Vpos);
  __m128d Sm1 = _mm_castsi128_pd(
      _mm_sub_epi64(_mm_castpd_si128(S), _mm_set1_epi64x(1)));
  __m128d Down = _mm_or_pd(_mm_and_pd(Eq, S), _mm_andnot_pd(Eq, Sm1));
  return IntervalSse(
      _mm_shuffle_pd(_mm_xor_pd(Down, SignLo), S, 0b10));
}

} // namespace sse2

struct Sse2Lanes {
  using Pack = IntervalSse;
  static constexpr size_t kIntervals = 1;
  static constexpr size_t kUnroll = 1;
  static constexpr bool kNtStores = false;
  static constexpr size_t kNtAlign = 16;
  static constexpr size_t kNtMinBatch = ~size_t(0);
  static constexpr bool kMaskedTail = false;
  static constexpr bool kGroupMul = false;

  static Pack load(const Interval *P) {
    return Pack(_mm_loadu_pd(&P->NegLo));
  }
  template <bool NT> static void store(Interval *P, const Pack &V) {
    _mm_storeu_pd(&P->NegLo, V.V);
  }
  static void storeFence() {}
  static Pack broadcast(const Interval &I) {
    return Pack::fromInterval(I);
  }
  static Pack add(const Pack &X, const Pack &Y) { return iAdd(X, Y); }
  static Pack sub(const Pack &X, const Pack &Y) { return iSub(X, Y); }
  static Pack mul(const Pack &X, const Pack &Y) { return iMul(X, Y); }
  static Pack fma(const Pack &A, const Pack &B, const Pack &C) {
    return iAdd(iMul(A, B), C);
  }
  static Pack div(const Pack &X, const Pack &Y) {
    igen::assertRoundUpward();
    int NegMask = _mm_movemask_pd(_mm_cmplt_pd(Y.V, _mm_setzero_pd()));
    if (NegMask & 1) // -lo < 0, i.e. lo > 0
      return sse2::divP(X, Y);
    if (NegMask & 2) // hi < 0
      return sse2::divN(X, Y);
    return Pack::fromInterval(divAuto(X.toInterval(), Y.toInterval()));
  }
  static Pack sqrt(const Pack &X) {
    igen::assertRoundUpward();
    return sse2::sqrtPack(X);
  }
};

//===----------------------------------------------------------------------===//
// AvxLanes / Avx2Lanes: two intervals per __m256d
//===----------------------------------------------------------------------===//

#if defined(__AVX__)

namespace avx {

/// Bit-decrement of every lane (nextDown for positive finite nonzero
/// doubles). AVX1 has no 256-bit integer subtract, so split; under AVX2
/// the single instruction produces the same bits.
inline __m256d subOneBit(__m256d S) {
#if defined(__AVX2__)
  return _mm256_castsi256_pd(
      _mm256_sub_epi64(_mm256_castpd_si256(S), _mm256_set1_epi64x(1)));
#else
  __m128i One = _mm_set1_epi64x(1);
  __m128i Lo = _mm_castpd_si128(_mm256_castpd256_pd128(S));
  __m128i Hi = _mm_castpd_si128(_mm256_extractf128_pd(S, 1));
  return _mm256_insertf128_pd(
      _mm256_castpd128_pd256(_mm_castsi128_pd(_mm_sub_epi64(Lo, One))),
      _mm_castsi128_pd(_mm_sub_epi64(Hi, One)), 1);
#endif
}

/// Two packed intervals through the scalar-equivalent division routing.
inline IntervalX2 divPack(const IntervalX2 &X, const IntervalX2 &Y) {
  int NegMask = _mm256_movemask_pd(
      _mm256_cmp_pd(Y.V, _mm256_setzero_pd(), _CMP_LT_OQ));
  if ((NegMask & 0b0101) == 0b0101) // both lo > 0
    return iDivP(X, Y);
  if ((NegMask & 0b1010) == 0b1010) // both hi < 0
    return iDivN(X, Y);
  return IntervalX2::fromIntervals(
      divAuto(X.interval(0), Y.interval(0)),
      divAuto(X.interval(1), Y.interval(1)));
}

/// Two packed intervals through the SSE2-identical sqrt scheme.
inline IntervalX2 sqrtPack(const IntervalX2 &X) {
  const __m256d Zero = _mm256_setzero_pd();
  int MLt = _mm256_movemask_pd(_mm256_cmp_pd(X.V, Zero, _CMP_LT_OQ));
  int MGt = _mm256_movemask_pd(
      _mm256_cmp_pd(X.V, _mm256_set1_pd(-__builtin_inf()), _CMP_GT_OQ));
  int MGe = _mm256_movemask_pd(_mm256_cmp_pd(X.V, Zero, _CMP_GE_OQ));
  if (__builtin_expect(!(((MLt & MGt) & 0b0101) == 0b0101 &&
                         (MGe & 0b1010) == 0b1010),
                       0))
    return IntervalX2::fromIntervals(iSqrt(X.interval(0)),
                                     iSqrt(X.interval(1)));
  __m256d SignLo = igen::detail::signLoMask256();
  __m256d Vpos = _mm256_xor_pd(X.V, SignLo);
  __m256d S = _mm256_sqrt_pd(Vpos);
  __m256d SS = _mm256_mul_pd(S, S);
  __m256d Eq = _mm256_cmp_pd(SS, Vpos, _CMP_EQ_OQ);
  __m256d Down = _mm256_blendv_pd(subOneBit(S), S, Eq);
  return IntervalX2(
      _mm256_blend_pd(_mm256_xor_pd(Down, SignLo), S, 0b1010));
}

} // namespace avx

struct AvxLanes {
  using Pack = IntervalX2;
  static constexpr size_t kIntervals = 2;
  static constexpr size_t kUnroll = 1;
  static constexpr bool kNtStores = false;
  static constexpr size_t kNtAlign = 32;
  static constexpr size_t kNtMinBatch = ~size_t(0);
  static constexpr bool kMaskedTail = false;
  static constexpr bool kGroupMul = false;

  static Pack load(const Interval *P) {
    return Pack(_mm256_loadu_pd(&P->NegLo));
  }
  template <bool NT> static void store(Interval *P, const Pack &V) {
    if constexpr (NT)
      _mm256_stream_pd(&P->NegLo, V.V); // requires 32-byte alignment
    else
      _mm256_storeu_pd(&P->NegLo, V.V);
  }
  static void storeFence() { _mm_sfence(); }
  static Pack broadcast(const Interval &I) { return Pack::broadcast(I); }
  static Pack add(const Pack &X, const Pack &Y) { return iAdd(X, Y); }
  static Pack sub(const Pack &X, const Pack &Y) { return iSub(X, Y); }
  static Pack mul(const Pack &X, const Pack &Y) { return iMul(X, Y); }
  static Pack fma(const Pack &A, const Pack &B, const Pack &C) {
    return iAdd(iMul(A, B), C);
  }
  static Pack div(const Pack &X, const Pack &Y) {
    igen::assertRoundUpward();
    return avx::divPack(X, Y);
  }
  static Pack sqrt(const Pack &X) {
    igen::assertRoundUpward();
    return avx::sqrtPack(X);
  }
};

#endif // __AVX__

#if defined(__AVX2__) && defined(__FMA__)

namespace avx2 {

/// The IntervalVector.h iMul candidate scheme reduced to one combined
/// result, with no per-pair NaN check: callers must have screened the
/// inputs (see the group multiply in BatchKernelsImpl.h). With all-finite
/// inputs no candidate can be NaN — finite * finite is a real, and
/// overflow to +/-inf only loosens the upper bound, which stays sound
/// under upward rounding.
inline __m256d mulScreened(__m256d X, __m256d Y) {
  using namespace igen::detail;
  __m256d Xn = broadcastLo256(X);
  __m256d Xh = broadcastHi256(X);
  __m256d Yn = broadcastLo256(Y);
  __m256d Yh = broadcastHi256(Y);
  __m256d YnNegLo = _mm256_xor_pd(Yn, signLoMask256());
  __m256d YnNegHi = swapLanes256(YnNegLo);
  __m256d XnNegHi = _mm256_xor_pd(Xn, signHiMask256());
  __m256d XhNegLo = _mm256_xor_pd(Xh, signLoMask256());
  __m256d V1 = _mm256_mul_pd(Xn, YnNegLo);
  __m256d V2 = _mm256_mul_pd(Xh, YnNegHi);
  __m256d V3 = _mm256_mul_pd(Yh, XnNegHi);
  __m256d V4 = _mm256_mul_pd(Yh, XhNegLo);
  return _mm256_max_pd(_mm256_max_pd(V1, V2), _mm256_max_pd(V3, V4));
}

/// Fused interval A*B + C on two packed intervals. Candidate layout is
/// the iMul scheme of IntervalVector.h with C.V as the FMA addend; the
/// hardware FMA rounds once under RU, so adding the addend inside each
/// candidate is sound *and* tighter than the composed RU(RU(p*q) + c) of
/// the other tiers. A NaN in any candidate routes both elements through
/// the conservative composed scalar path.
inline IntervalX2 fmaFused(const IntervalX2 &A, const IntervalX2 &B,
                           const IntervalX2 &C) {
  using namespace igen::detail;
  __m256d Xn = broadcastLo256(A.V);
  __m256d Xh = broadcastHi256(A.V);
  __m256d Yn = broadcastLo256(B.V);
  __m256d Yh = broadcastHi256(B.V);
  __m256d YnNegLo = _mm256_xor_pd(Yn, signLoMask256());
  __m256d YnNegHi = swapLanes256(YnNegLo);
  __m256d XnNegHi = _mm256_xor_pd(Xn, signHiMask256());
  __m256d XhNegLo = _mm256_xor_pd(Xh, signLoMask256());
  __m256d W1 = _mm256_fmadd_pd(Xn, YnNegLo, C.V);
  __m256d W2 = _mm256_fmadd_pd(Xh, YnNegHi, C.V);
  __m256d W3 = _mm256_fmadd_pd(Yh, XnNegHi, C.V);
  __m256d W4 = _mm256_fmadd_pd(Yh, XhNegLo, C.V);
  __m256d Check =
      _mm256_add_pd(_mm256_add_pd(W1, W2), _mm256_add_pd(W3, W4));
  if (__builtin_expect(anyNaN256(Check), 0))
    return IntervalX2::fromIntervals(
        iAdd(iMul(A.interval(0), B.interval(0)), C.interval(0)),
        iAdd(iMul(A.interval(1), B.interval(1)), C.interval(1)));
  return IntervalX2(
      _mm256_max_pd(_mm256_max_pd(W1, W2), _mm256_max_pd(W3, W4)));
}

} // namespace avx2

struct Avx2Lanes : AvxLanes {
  /// Batch size from which the three streams (~1.5 MB) outgrow a typical
  /// L2 and stores switch to the non-temporal path.
  static constexpr size_t kNtMinBatch = 32768;
  static constexpr size_t kUnroll = 2;
  static constexpr bool kNtStores = true;
  static constexpr size_t kNtAlign = 32;
  static constexpr bool kGroupMul = true;

  static Pack fma(const Pack &A, const Pack &B, const Pack &C) {
    igen::assertRoundUpward();
    return avx2::fmaFused(A, B, C);
  }

  static Pack mulUnchecked(const Pack &X, const Pack &Y) {
    return Pack(avx2::mulScreened(X.V, Y.V));
  }
  /// Bitwise-OR screen over four loaded pack pairs (eight intervals): an
  /// inf or NaN lane keeps its all-ones exponent through the OR, so
  /// |OR| >= inf (unordered on NaN) detects every special input. A
  /// spurious all-ones exponent assembled from different lanes' bits only
  /// reroutes the group through the sound checked fallback.
  static bool anySpecial(const Pack &X0, const Pack &Y0, const Pack &X1,
                         const Pack &Y1, const Pack &X2, const Pack &Y2,
                         const Pack &X3, const Pack &Y3) {
    const __m256d AbsMask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
    const __m256d Inf = _mm256_set1_pd(__builtin_inf());
    __m256d O = _mm256_or_pd(
        _mm256_or_pd(_mm256_or_pd(X0.V, Y0.V), _mm256_or_pd(X1.V, Y1.V)),
        _mm256_or_pd(_mm256_or_pd(X2.V, Y2.V),
                     _mm256_or_pd(X3.V, Y3.V)));
    __m256d Bad =
        _mm256_cmp_pd(_mm256_and_pd(O, AbsMask), Inf, _CMP_NLT_UQ);
    return _mm256_movemask_pd(Bad) != 0;
  }
  /// Prefetching a few iterations ahead hides part of the L3 latency on
  /// big batches.
  static void prefetchMul(const Interval *X, const Interval *Y, size_t I) {
    _mm_prefetch(reinterpret_cast<const char *>(X + I + 16), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Y + I + 16), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(X + I + 20), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Y + I + 20), _MM_HINT_T0);
  }
};

#endif // __AVX2__ && __FMA__

//===----------------------------------------------------------------------===//
// Avx512Lanes: four intervals per __m512d, masked tails
//===----------------------------------------------------------------------===//

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

namespace avx512 {

inline __m512d broadcastLo512(__m512d X) {
  return _mm512_permute_pd(X, 0x00); // every pair: (x0, x0)
}
inline __m512d broadcastHi512(__m512d X) {
  return _mm512_permute_pd(X, 0xFF); // every pair: (x1, x1)
}
inline __m512d swapLanes512(__m512d X) {
  return _mm512_permute_pd(X, 0x55); // every pair: (x1, x0)
}
inline __m512d signLo512() {
  return _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
}
inline __m512d signHi512() {
  return _mm512_set_pd(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
}
inline bool anyNaN512(__m512d X) {
  return _mm512_cmp_pd_mask(X, X, _CMP_UNORD_Q) != 0;
}
/// Benign filler for the dead lanes of a masked load: the interval
/// [1, 1], stored (-1, 1). Positive-divisor class, in every elementary
/// fast domain, and incapable of producing a NaN candidate — dead lanes
/// can ride through any kernel and are dropped by the masked store.
inline __m512d benign512() {
  return _mm512_set_pd(1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0);
}

} // namespace avx512

/// Four double intervals in one AVX-512 register.
struct IntervalX4 {
  __m512d V;
  IntervalX4() : V(_mm512_setzero_pd()) {}
  explicit IntervalX4(__m512d V) : V(V) {}

  Interval interval(int I) const {
    alignas(64) double Lanes[8];
    _mm512_store_pd(Lanes, V);
    return Interval(Lanes[2 * I], Lanes[2 * I + 1]);
  }
  static IntervalX4 fromIntervals(const Interval &I0, const Interval &I1,
                                  const Interval &I2, const Interval &I3) {
    return IntervalX4(_mm512_set_pd(I3.Hi, I3.NegLo, I2.Hi, I2.NegLo,
                                    I1.Hi, I1.NegLo, I0.Hi, I0.NegLo));
  }
  static IntervalX4 broadcast(const Interval &I) {
    return IntervalX4(_mm512_broadcast_f64x4(
        _mm256_set_pd(I.Hi, I.NegLo, I.Hi, I.NegLo)));
  }
};

struct Avx512Lanes {
  using Pack = IntervalX4;
  static constexpr size_t kIntervals = 4;
  static constexpr size_t kUnroll = 2;
  static constexpr bool kNtStores = true;
  static constexpr size_t kNtAlign = 64;
  static constexpr size_t kNtMinBatch = 32768;
  static constexpr bool kMaskedTail = true;
  static constexpr bool kGroupMul = true;

  static Pack load(const Interval *P) {
    return Pack(_mm512_loadu_pd(&P->NegLo));
  }
  template <bool NT> static void store(Interval *P, const Pack &V) {
    if constexpr (NT)
      _mm512_stream_pd(&P->NegLo, V.V); // requires 64-byte alignment
    else
      _mm512_storeu_pd(&P->NegLo, V.V);
  }
  static void storeFence() { _mm_sfence(); }

  /// Masked tail: K live intervals (1..3), dead lanes filled with the
  /// benign [1, 1] so they may flow through any kernel body; the masked
  /// store never writes them back and never touches memory past the
  /// live range.
  static Pack maskLoad(const Interval *P, size_t K) {
    __mmask8 M = static_cast<__mmask8>((1u << (2 * K)) - 1);
    return Pack(
        _mm512_mask_loadu_pd(avx512::benign512(), M, &P->NegLo));
  }
  static void maskStore(Interval *P, size_t K, const Pack &V) {
    __mmask8 M = static_cast<__mmask8>((1u << (2 * K)) - 1);
    _mm512_mask_storeu_pd(&P->NegLo, M, V.V);
  }

  static Pack broadcast(const Interval &I) { return Pack::broadcast(I); }

  static Pack add(const Pack &X, const Pack &Y) {
    igen::assertRoundUpward();
    return Pack(_mm512_add_pd(X.V, Y.V));
  }
  static Pack sub(const Pack &X, const Pack &Y) {
    igen::assertRoundUpward();
    return Pack(_mm512_add_pd(X.V, avx512::swapLanes512(Y.V)));
  }

  static Pack mul(const Pack &X, const Pack &Y) {
    igen::assertRoundUpward();
    using namespace avx512;
    __m512d Xn = broadcastLo512(X.V);
    __m512d Xh = broadcastHi512(X.V);
    __m512d Yn = broadcastLo512(Y.V);
    __m512d Yh = broadcastHi512(Y.V);
    __m512d YnNegLo = _mm512_xor_pd(Yn, signLo512());
    __m512d YnNegHi = swapLanes512(YnNegLo);
    __m512d XnNegHi = _mm512_xor_pd(Xn, signHi512());
    __m512d XhNegLo = _mm512_xor_pd(Xh, signLo512());
    __m512d V1 = _mm512_mul_pd(Xn, YnNegLo);
    __m512d V2 = _mm512_mul_pd(Xh, YnNegHi);
    __m512d V3 = _mm512_mul_pd(Yh, XnNegHi);
    __m512d V4 = _mm512_mul_pd(Yh, XhNegLo);
    __m512d Check = _mm512_add_pd(_mm512_add_pd(V1, V2),
                                  _mm512_add_pd(V3, V4));
    if (__builtin_expect(anyNaN512(Check), 0))
      return Pack::fromIntervals(iMul(X.interval(0), Y.interval(0)),
                                 iMul(X.interval(1), Y.interval(1)),
                                 iMul(X.interval(2), Y.interval(2)),
                                 iMul(X.interval(3), Y.interval(3)));
    return Pack(
        _mm512_max_pd(_mm512_max_pd(V1, V2), _mm512_max_pd(V3, V4)));
  }

  static Pack mulUnchecked(const Pack &X, const Pack &Y) {
    using namespace avx512;
    __m512d Xn = broadcastLo512(X.V);
    __m512d Xh = broadcastHi512(X.V);
    __m512d Yn = broadcastLo512(Y.V);
    __m512d Yh = broadcastHi512(Y.V);
    __m512d YnNegLo = _mm512_xor_pd(Yn, signLo512());
    __m512d YnNegHi = swapLanes512(YnNegLo);
    __m512d XnNegHi = _mm512_xor_pd(Xn, signHi512());
    __m512d XhNegLo = _mm512_xor_pd(Xh, signLo512());
    __m512d V1 = _mm512_mul_pd(Xn, YnNegLo);
    __m512d V2 = _mm512_mul_pd(Xh, YnNegHi);
    __m512d V3 = _mm512_mul_pd(Yh, XnNegHi);
    __m512d V4 = _mm512_mul_pd(Yh, XhNegLo);
    return Pack(
        _mm512_max_pd(_mm512_max_pd(V1, V2), _mm512_max_pd(V3, V4)));
  }
  static bool anySpecial(const Pack &X0, const Pack &Y0, const Pack &X1,
                         const Pack &Y1, const Pack &X2, const Pack &Y2,
                         const Pack &X3, const Pack &Y3) {
    const __m512d AbsMask = _mm512_castsi512_pd(
        _mm512_set1_epi64(0x7fffffffffffffffll));
    const __m512d Inf = _mm512_set1_pd(__builtin_inf());
    __m512d O = _mm512_or_pd(
        _mm512_or_pd(_mm512_or_pd(X0.V, Y0.V), _mm512_or_pd(X1.V, Y1.V)),
        _mm512_or_pd(_mm512_or_pd(X2.V, Y2.V),
                     _mm512_or_pd(X3.V, Y3.V)));
    return _mm512_cmp_pd_mask(_mm512_and_pd(O, AbsMask), Inf,
                              _CMP_NLT_UQ) != 0;
  }
  static void prefetchMul(const Interval *X, const Interval *Y, size_t I) {
    _mm_prefetch(reinterpret_cast<const char *>(X + I + 32), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Y + I + 32), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(X + I + 40), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Y + I + 40), _MM_HINT_T0);
  }

  /// Fused A*B + C, the 512-bit lift of the AVX2 fused kernel.
  static Pack fma(const Pack &A, const Pack &B, const Pack &C) {
    igen::assertRoundUpward();
    using namespace avx512;
    __m512d Xn = broadcastLo512(A.V);
    __m512d Xh = broadcastHi512(A.V);
    __m512d Yn = broadcastLo512(B.V);
    __m512d Yh = broadcastHi512(B.V);
    __m512d YnNegLo = _mm512_xor_pd(Yn, signLo512());
    __m512d YnNegHi = swapLanes512(YnNegLo);
    __m512d XnNegHi = _mm512_xor_pd(Xn, signHi512());
    __m512d XhNegLo = _mm512_xor_pd(Xh, signLo512());
    __m512d W1 = _mm512_fmadd_pd(Xn, YnNegLo, C.V);
    __m512d W2 = _mm512_fmadd_pd(Xh, YnNegHi, C.V);
    __m512d W3 = _mm512_fmadd_pd(Yh, XnNegHi, C.V);
    __m512d W4 = _mm512_fmadd_pd(Yh, XhNegLo, C.V);
    __m512d Check = _mm512_add_pd(_mm512_add_pd(W1, W2),
                                  _mm512_add_pd(W3, W4));
    if (__builtin_expect(anyNaN512(Check), 0))
      return Pack::fromIntervals(
          fmaComposed(A.interval(0), B.interval(0), C.interval(0)),
          fmaComposed(A.interval(1), B.interval(1), C.interval(1)),
          fmaComposed(A.interval(2), B.interval(2), C.interval(2)),
          fmaComposed(A.interval(3), B.interval(3), C.interval(3)));
    return Pack(
        _mm512_max_pd(_mm512_max_pd(W1, W2), _mm512_max_pd(W3, W4)));
  }

  static Pack div(const Pack &X, const Pack &Y) {
    igen::assertRoundUpward();
    using namespace avx512;
    __mmask8 Neg =
        _mm512_cmp_pd_mask(Y.V, _mm512_setzero_pd(), _CMP_LT_OQ);
    if ((Neg & 0x55) == 0x55) { // all four divisors strictly positive
      __m512d Yl = _mm512_xor_pd(broadcastLo512(Y.V),
                                 _mm512_set1_pd(-0.0));
      __m512d V1 = _mm512_div_pd(X.V, Yl);
      __m512d V2 = _mm512_div_pd(X.V, broadcastHi512(Y.V));
      __m512d C = _mm512_add_pd(V1, V2);
      __m512d Check = _mm512_add_pd(C, swapLanes512(C));
      if (__builtin_expect(anyNaN512(Check), 0))
        return Pack::fromIntervals(iDivP(X.interval(0), Y.interval(0)),
                                   iDivP(X.interval(1), Y.interval(1)),
                                   iDivP(X.interval(2), Y.interval(2)),
                                   iDivP(X.interval(3), Y.interval(3)));
      return Pack(_mm512_max_pd(V1, V2));
    }
    if ((Neg & 0xAA) == 0xAA) { // all four divisors strictly negative
      __m512d A = swapLanes512(X.V);
      __m512d Yh = _mm512_xor_pd(broadcastHi512(Y.V),
                                 _mm512_set1_pd(-0.0));
      __m512d V1 = _mm512_div_pd(A, Yh);
      __m512d V2 = _mm512_div_pd(A, broadcastLo512(Y.V));
      __m512d C = _mm512_add_pd(V1, V2);
      __m512d Check = _mm512_add_pd(C, swapLanes512(C));
      if (__builtin_expect(anyNaN512(Check), 0))
        return Pack::fromIntervals(iDivN(X.interval(0), Y.interval(0)),
                                   iDivN(X.interval(1), Y.interval(1)),
                                   iDivN(X.interval(2), Y.interval(2)),
                                   iDivN(X.interval(3), Y.interval(3)));
      return Pack(_mm512_max_pd(V1, V2));
    }
    return Pack::fromIntervals(divAuto(X.interval(0), Y.interval(0)),
                               divAuto(X.interval(1), Y.interval(1)),
                               divAuto(X.interval(2), Y.interval(2)),
                               divAuto(X.interval(3), Y.interval(3)));
  }

  static Pack sqrt(const Pack &X) {
    igen::assertRoundUpward();
    using namespace avx512;
    const __m512d Zero = _mm512_setzero_pd();
    __mmask8 Lt = _mm512_cmp_pd_mask(X.V, Zero, _CMP_LT_OQ);
    __mmask8 Gt = _mm512_cmp_pd_mask(
        X.V, _mm512_set1_pd(-__builtin_inf()), _CMP_GT_OQ);
    __mmask8 Ge = _mm512_cmp_pd_mask(X.V, Zero, _CMP_GE_OQ);
    if (__builtin_expect(
            !(((Lt & Gt) & 0x55) == 0x55 && (Ge & 0xAA) == 0xAA), 0))
      return Pack::fromIntervals(iSqrt(X.interval(0)),
                                 iSqrt(X.interval(1)),
                                 iSqrt(X.interval(2)),
                                 iSqrt(X.interval(3)));
    __m512d SignLo = signLo512();
    __m512d Vpos = _mm512_xor_pd(X.V, SignLo);
    __m512d S = _mm512_sqrt_pd(Vpos);
    __m512d SS = _mm512_mul_pd(S, S);
    __mmask8 Eq = _mm512_cmp_pd_mask(SS, Vpos, _CMP_EQ_OQ);
    __m512d Sm1 = _mm512_castsi512_pd(
        _mm512_sub_epi64(_mm512_castpd_si512(S), _mm512_set1_epi64(1)));
    __m512d Down = _mm512_mask_blend_pd(Eq, Sm1, S);
    return Pack(_mm512_mask_blend_pd(
        0xAA, _mm512_xor_pd(Down, SignLo), S));
  }
};

#endif // __AVX512F__ && __AVX512DQ__ && __AVX512VL__

} // namespace igen::runtime::lanes

#endif // IGEN_RUNTIME_LANE_H
