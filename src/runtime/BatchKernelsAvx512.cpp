//===- BatchKernelsAvx512.cpp - AVX-512 batched kernels -------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX-512 tier: four intervals per __m512d through the Lane.h AVX-512
// backend. Batch tails are handled with masked loads/stores (dead lanes
// carry a benign [1, 1]) instead of a scalar remainder loop, compares
// produce mask registers, and the multiply keeps the AVX2 tier's
// group-screen and non-temporal store strategies at twice the width.
// Compiled with -march=x86-64 -mavx512f -mavx512dq -mavx512vl -mfma.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernelsImpl.h"

namespace igen::runtime {

extern const KernelTable kKernelsAvx512; // external linkage
constinit const KernelTable kKernelsAvx512 =
    impl::makeTable<lanes::Avx512Lanes>("avx512", elem::expAvx512,
                                        elem::logAvx512, elem::sinScalar,
                                        elem::cosScalar);

} // namespace igen::runtime
