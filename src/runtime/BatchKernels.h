//===- BatchKernels.h - Batched interval array runtime ----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched interval array runtime: contiguous-array kernels over
/// double-precision intervals with runtime CPU dispatch (CpuDispatch.h)
/// and deterministic, sound parallel reductions (BatchReduce.cpp).
///
/// Layouts. An array of N igen::Interval values is N contiguous
/// (-lo, hi) double pairs. IntervalSse stores exactly one such pair per
/// __m128d and IntervalX2 two pairs per __m256d, so arrays of all three
/// types share one byte layout; the overloads below reinterpret the SIMD
/// types onto the canonical Interval kernels (static_asserts verify the
/// sizes).
///
/// Rounding. Every entry point establishes upward rounding internally
/// (RAII) and restores the caller's mode — callers do NOT need to be
/// inside a RoundUpwardScope, and the parallel reductions set the mode
/// per worker task. After establishing the mode, every entry point runs
/// the fenv sentinel (harden/FenvSentinel.h) exactly once — the hot loop
/// stays clean — so an FTZ/DAZ or rounding clobber left behind by
/// foreign code is detected and handled per IGEN_FENV_POLICY before any
/// bound is computed; under the poison policy the whole output batch
/// (or reduction result) degrades to [-inf, +inf], which is sound.
///
/// Aliasing. Elementwise kernels compute element i from element i only,
/// and every dispatch tier loads a block's inputs before storing its
/// outputs, so FULL aliasing (Dst == X and/or Dst == Y, identical base
/// pointer) is supported. PARTIAL overlap (Dst offset into an input
/// range) is a caller bug: debug builds assert on it; release builds
/// copy the overlapping input to scratch and proceed with defined
/// results. N == 0 is a no-op on every entry point.
///
/// Determinism. iarr_sum / iarr_dot accumulate in a fixed chunked order
/// (kReduceChunk elements per chunk, kReduceLanes interleaved
/// double-double chains per chunk, chunk partials merged in a fixed
/// pairwise tree over the chunk index). Dot products come from one
/// multiply routine compiled into BatchReduce.cpp, not from the
/// dispatched elementwise kernels. The order and the product bits
/// therefore depend only on N — never on the thread count or the
/// IGEN_ISA / forceIsa selection — so reduction results are
/// bit-reproducible from 1 to N threads and across ISA overrides.
/// Soundness (the result encloses every real sum/dot of reals drawn
/// from the inputs) holds unconditionally.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_BATCHKERNELS_H
#define IGEN_RUNTIME_BATCHKERNELS_H

#include "harden/FaultInject.h"
#include "harden/FenvSentinel.h"
#include "interval/Interval.h"
#include "interval/IntervalSimd.h"
#include "interval/IntervalVector.h"
#include "interval/Rounding.h"
#include "runtime/CpuDispatch.h"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace igen::runtime {

/// Intervals per reduction chunk. Fixed: changing it changes the
/// accumulation order and therefore the bit pattern of sum/dot results.
inline constexpr size_t kReduceChunk = 1024;

/// Interleaved double-double accumulator chains per chunk (covers the
/// ddAddUp latency chain; part of the fixed accumulation order). Lane j
/// takes elements with index ≡ j (mod kReduceLanes); the chains run four
/// per AVX register (two intervals, both endpoints).
inline constexpr size_t kReduceLanes = 8;

static_assert(sizeof(Interval) == 2 * sizeof(double));
static_assert(sizeof(IntervalSse) == sizeof(Interval));
static_assert(sizeof(IntervalX2) == 2 * sizeof(Interval));

//===----------------------------------------------------------------------===//
// Hardening helpers (sentinel, aliasing contract, fault injection)
//===----------------------------------------------------------------------===//

namespace detail {

/// True when [A, A+N) and [B, B+N) overlap other than by being the exact
/// same range (A == B, which every kernel supports). Compared as
/// integers: A and B may point into unrelated arrays, where raw pointer
/// ordering is unspecified.
inline bool partialOverlap(const Interval *A, const Interval *B, size_t N) {
  if (A == B || N == 0)
    return false;
  uintptr_t LA = reinterpret_cast<uintptr_t>(A);
  uintptr_t LB = reinterpret_cast<uintptr_t>(B);
  uintptr_t Bytes = N * sizeof(Interval);
  return LA < LB + Bytes && LB < LA + Bytes;
}

/// Poison an output batch: every element becomes the whole line. Runs on
/// the sentinel's cold path only.
[[gnu::cold]] inline void poisonBatch(Interval *Dst, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = Interval::entire();
}

/// Shared iarr_* prologue, run once per kernel invocation with upward
/// rounding already established. Returns true when the caller must
/// poison its results and return.
inline bool batchPrologue(const char *Where, Interval *Dst, size_t N) {
  if (__builtin_expect(harden::checkFenvUpward(Where), 0)) {
    poisonBatch(Dst, N);
    return true;
  }
  return false;
}

/// Fault-injection support: when a nan/inf operand fault fires for this
/// invocation, copy \p X to \p Scratch with element N % \p N corrupted
/// and return Scratch.data(); otherwise return \p X unchanged. The
/// disarmed cost is one relaxed load + branch.
inline const Interval *maybeCorrupt(const Interval *X, size_t N,
                                    std::vector<Interval> &Scratch) {
  if (__builtin_expect(!harden::faultsArmedFromEnv(), 1) || N == 0)
    return X;
  long long At = 0;
  bool Nan = harden::faultFires(harden::FaultKind::Nan, &At);
  bool Inf = !Nan && harden::faultFires(harden::FaultKind::Inf, &At);
  if (!Nan && !Inf)
    return X;
  Scratch.assign(X, X + N);
  Scratch[static_cast<size_t>(At) % N] =
      Nan ? Interval::nan() : Interval::fromPoint(HUGE_VAL);
  return Scratch.data();
}

/// Release-build fallback of the aliasing contract: copy \p In to
/// \p Scratch when it partially overlaps [Dst, Dst+N). Debug builds
/// assert instead (the overlap is a caller bug; the copy merely keeps
/// the behavior defined).
inline const Interval *resolveOverlap(Interval *Dst, const Interval *In,
                                      size_t N,
                                      std::vector<Interval> &Scratch) {
  if (__builtin_expect(!partialOverlap(Dst, In, N), 1))
    return In;
  assert(!"iarr_* input partially overlaps the output range");
  Scratch.assign(In, In + N);
  return Scratch.data();
}

} // namespace detail

//===----------------------------------------------------------------------===//
// Elementwise kernels (CPU-dispatched)
//===----------------------------------------------------------------------===//

/// Dst[i] = X[i] + Y[i].
inline void iarr_add(Interval *Dst, const Interval *X, const Interval *Y,
                     size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_add", Dst, N))
    return;
  std::vector<Interval> SX, SY, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  Y = detail::resolveOverlap(Dst, Y, N, SY);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Add(Dst, X, Y, N);
}

/// Dst[i] = X[i] - Y[i].
inline void iarr_sub(Interval *Dst, const Interval *X, const Interval *Y,
                     size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_sub", Dst, N))
    return;
  std::vector<Interval> SX, SY, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  Y = detail::resolveOverlap(Dst, Y, N, SY);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Sub(Dst, X, Y, N);
}

/// Dst[i] = X[i] * Y[i].
inline void iarr_mul(Interval *Dst, const Interval *X, const Interval *Y,
                     size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_mul", Dst, N))
    return;
  std::vector<Interval> SX, SY, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  Y = detail::resolveOverlap(Dst, Y, N, SY);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Mul(Dst, X, Y, N);
}

/// Dst[i] = A[i] * B[i] + C[i] (fused single-rounding candidates on the
/// AVX2+FMA tier, composed mul+add elsewhere; the fused result is a
/// subset of the composed one).
inline void iarr_fma(Interval *Dst, const Interval *A, const Interval *B,
                     const Interval *C, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_fma", Dst, N))
    return;
  std::vector<Interval> SA, SB, SCc, SC;
  A = detail::resolveOverlap(Dst, A, N, SA);
  B = detail::resolveOverlap(Dst, B, N, SB);
  C = detail::resolveOverlap(Dst, C, N, SCc);
  A = detail::maybeCorrupt(A, N, SC);
  kernels().Fma(Dst, A, B, C, N);
}

/// Dst[i] = X[i] * S.
inline void iarr_scale(Interval *Dst, const Interval *X, const Interval &S,
                       size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_scale", Dst, N))
    return;
  std::vector<Interval> SX, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Scale(Dst, X, S, N);
}

/// Dst[i] = X[i] / Y[i]. Every tier routes each element through the same
/// sign-specialized lowering the scalar compiler output uses (iDivP for
/// strictly positive divisors, iDivN for strictly negative ones, the
/// generic iDiv case analysis otherwise), so results are bit-identical
/// across ISA tiers on all inputs. Divisors containing zero are sound:
/// the generic path yields the half-line / entire-line / NaN enclosures
/// of iDiv per element.
inline void iarr_div(Interval *Dst, const Interval *X, const Interval *Y,
                     size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_div", Dst, N))
    return;
  std::vector<Interval> SX, SY, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  Y = detail::resolveOverlap(Dst, Y, N, SY);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Div(Dst, X, Y, N);
}

/// Dst[i] = sqrt(X[i]) with iSqrt semantics (bit-identical across tiers;
/// negative and NaN inputs degrade per element exactly like iSqrt).
inline void iarr_sqrt(Interval *Dst, const Interval *X, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_sqrt", Dst, N))
    return;
  std::vector<Interval> SX, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Sqrt(Dst, X, N);
}

/// Dst[i] = certified enclosure of exp(X[i]) (iExpFast semantics: the
/// polynomial fast path inside |x| <= 690, the libm-widened iExp
/// outside). The SIMD tiers evaluate both endpoints in parallel lanes
/// with the exact scalar operation sequence, so results are
/// bit-identical across ISA tiers.
inline void iarr_exp(Interval *Dst, const Interval *X, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_exp", Dst, N))
    return;
  std::vector<Interval> SX, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Exp(Dst, X, N);
}

/// Dst[i] = certified enclosure of log(X[i]) (iLogFast semantics).
inline void iarr_log(Interval *Dst, const Interval *X, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_log", Dst, N))
    return;
  std::vector<Interval> SX, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Log(Dst, X, N);
}

/// Dst[i] = certified enclosure of sin(X[i]) (iSinFast semantics; the
/// range analysis keeps this scalar in every tier).
inline void iarr_sin(Interval *Dst, const Interval *X, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_sin", Dst, N))
    return;
  std::vector<Interval> SX, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Sin(Dst, X, N);
}

/// Dst[i] = certified enclosure of cos(X[i]) (iCosFast semantics).
inline void iarr_cos(Interval *Dst, const Interval *X, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::batchPrologue("iarr_cos", Dst, N))
    return;
  std::vector<Interval> SX, SC;
  X = detail::resolveOverlap(Dst, X, N, SX);
  X = detail::maybeCorrupt(X, N, SC);
  kernels().Cos(Dst, X, N);
}

//===----------------------------------------------------------------------===//
// Sound reductions (deterministic chunked order; see file comment)
//===----------------------------------------------------------------------===//

/// Sum of X[0..N-1], accumulated per-endpoint in double-double
/// (SumAccumulatorF64's representation) and rounded outward once at the
/// end. N == 0 yields [0, 0].
Interval iarr_sum(const Interval *X, size_t N);

/// Dot product sum(X[i] * Y[i]); the multiplies are fused into the
/// accumulation loop (fixed routine, independent of the dispatched
/// tier), accumulation as in iarr_sum.
Interval iarr_dot(const Interval *X, const Interval *Y, size_t N);

/// Enclosure of the Euclidean norm sqrt(sum X[i]^2): the dot(X, X)
/// enclosure intersected with [0, inf) (squares of reals are
/// nonnegative), then iSqrt.
Interval iarr_norm2(const Interval *X, size_t N);

/// Multithreaded variants: identical bit patterns to the serial versions
/// for every thread count (the chunk/merge structure is fixed by N).
/// Threads == 0 uses all pool participants; Threads == 1 runs inline.
Interval iarr_sum_par(const Interval *X, size_t N, unsigned Threads = 0);
Interval iarr_dot_par(const Interval *X, const Interval *Y, size_t N,
                      unsigned Threads = 0);

//===----------------------------------------------------------------------===//
// Layout overloads: IntervalSse and IntervalX2 arrays
//===----------------------------------------------------------------------===//

inline Interval *asIntervals(IntervalSse *P) {
  return reinterpret_cast<Interval *>(P);
}
inline const Interval *asIntervals(const IntervalSse *P) {
  return reinterpret_cast<const Interval *>(P);
}
inline Interval *asIntervals(IntervalX2 *P) {
  return reinterpret_cast<Interval *>(P);
}
inline const Interval *asIntervals(const IntervalX2 *P) {
  return reinterpret_cast<const Interval *>(P);
}

inline void iarr_add(IntervalSse *Dst, const IntervalSse *X,
                     const IntervalSse *Y, size_t N) {
  iarr_add(asIntervals(Dst), asIntervals(X), asIntervals(Y), N);
}
inline void iarr_sub(IntervalSse *Dst, const IntervalSse *X,
                     const IntervalSse *Y, size_t N) {
  iarr_sub(asIntervals(Dst), asIntervals(X), asIntervals(Y), N);
}
inline void iarr_mul(IntervalSse *Dst, const IntervalSse *X,
                     const IntervalSse *Y, size_t N) {
  iarr_mul(asIntervals(Dst), asIntervals(X), asIntervals(Y), N);
}
inline void iarr_fma(IntervalSse *Dst, const IntervalSse *A,
                     const IntervalSse *B, const IntervalSse *C, size_t N) {
  iarr_fma(asIntervals(Dst), asIntervals(A), asIntervals(B), asIntervals(C),
           N);
}
inline void iarr_scale(IntervalSse *Dst, const IntervalSse *X,
                       const Interval &S, size_t N) {
  iarr_scale(asIntervals(Dst), asIntervals(X), S, N);
}
inline void iarr_div(IntervalSse *Dst, const IntervalSse *X,
                     const IntervalSse *Y, size_t N) {
  iarr_div(asIntervals(Dst), asIntervals(X), asIntervals(Y), N);
}
inline void iarr_sqrt(IntervalSse *Dst, const IntervalSse *X, size_t N) {
  iarr_sqrt(asIntervals(Dst), asIntervals(X), N);
}
inline void iarr_exp(IntervalSse *Dst, const IntervalSse *X, size_t N) {
  iarr_exp(asIntervals(Dst), asIntervals(X), N);
}
inline void iarr_log(IntervalSse *Dst, const IntervalSse *X, size_t N) {
  iarr_log(asIntervals(Dst), asIntervals(X), N);
}
inline void iarr_sin(IntervalSse *Dst, const IntervalSse *X, size_t N) {
  iarr_sin(asIntervals(Dst), asIntervals(X), N);
}
inline void iarr_cos(IntervalSse *Dst, const IntervalSse *X, size_t N) {
  iarr_cos(asIntervals(Dst), asIntervals(X), N);
}
inline Interval iarr_sum(const IntervalSse *X, size_t N) {
  return iarr_sum(asIntervals(X), N);
}
inline Interval iarr_dot(const IntervalSse *X, const IntervalSse *Y,
                         size_t N) {
  return iarr_dot(asIntervals(X), asIntervals(Y), N);
}

/// IntervalX2 overloads take N in *packs* (2 intervals each).
inline void iarr_add(IntervalX2 *Dst, const IntervalX2 *X,
                     const IntervalX2 *Y, size_t N) {
  iarr_add(asIntervals(Dst), asIntervals(X), asIntervals(Y), 2 * N);
}
inline void iarr_sub(IntervalX2 *Dst, const IntervalX2 *X,
                     const IntervalX2 *Y, size_t N) {
  iarr_sub(asIntervals(Dst), asIntervals(X), asIntervals(Y), 2 * N);
}
inline void iarr_mul(IntervalX2 *Dst, const IntervalX2 *X,
                     const IntervalX2 *Y, size_t N) {
  iarr_mul(asIntervals(Dst), asIntervals(X), asIntervals(Y), 2 * N);
}
inline void iarr_fma(IntervalX2 *Dst, const IntervalX2 *A,
                     const IntervalX2 *B, const IntervalX2 *C, size_t N) {
  iarr_fma(asIntervals(Dst), asIntervals(A), asIntervals(B), asIntervals(C),
           2 * N);
}
inline void iarr_scale(IntervalX2 *Dst, const IntervalX2 *X,
                       const Interval &S, size_t N) {
  iarr_scale(asIntervals(Dst), asIntervals(X), S, 2 * N);
}
inline void iarr_div(IntervalX2 *Dst, const IntervalX2 *X,
                     const IntervalX2 *Y, size_t N) {
  iarr_div(asIntervals(Dst), asIntervals(X), asIntervals(Y), 2 * N);
}
inline void iarr_sqrt(IntervalX2 *Dst, const IntervalX2 *X, size_t N) {
  iarr_sqrt(asIntervals(Dst), asIntervals(X), 2 * N);
}
inline void iarr_exp(IntervalX2 *Dst, const IntervalX2 *X, size_t N) {
  iarr_exp(asIntervals(Dst), asIntervals(X), 2 * N);
}
inline void iarr_log(IntervalX2 *Dst, const IntervalX2 *X, size_t N) {
  iarr_log(asIntervals(Dst), asIntervals(X), 2 * N);
}
inline void iarr_sin(IntervalX2 *Dst, const IntervalX2 *X, size_t N) {
  iarr_sin(asIntervals(Dst), asIntervals(X), 2 * N);
}
inline void iarr_cos(IntervalX2 *Dst, const IntervalX2 *X, size_t N) {
  iarr_cos(asIntervals(Dst), asIntervals(X), 2 * N);
}
inline Interval iarr_sum(const IntervalX2 *X, size_t N) {
  return iarr_sum(asIntervals(X), 2 * N);
}
inline Interval iarr_dot(const IntervalX2 *X, const IntervalX2 *Y,
                         size_t N) {
  return iarr_dot(asIntervals(X), asIntervals(Y), 2 * N);
}

} // namespace igen::runtime

#endif // IGEN_RUNTIME_BATCHKERNELS_H
