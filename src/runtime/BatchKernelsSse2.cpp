//===- BatchKernelsSse2.cpp - SSE2 batched kernels ------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// SSE2 tier: one interval per __m128d (the IntervalSse algorithms plus
// the Lane.h sign-specialized div and packed sqrt), loaded straight from
// the contiguous (-lo, hi) array layout. Compiled with -march=x86-64
// (SSE2 baseline) so the emitted code runs on any x86-64 CPU regardless
// of the flags the rest of the project is built with.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernelsImpl.h"

namespace igen::runtime {

extern const KernelTable kKernelsSse2; // external linkage
constinit const KernelTable kKernelsSse2 =
    impl::makeTable<lanes::Sse2Lanes>("sse2", elem::expSse2, elem::logSse2,
                                      elem::sinScalar, elem::cosScalar);

} // namespace igen::runtime
