//===- BatchKernelsSse2.cpp - SSE2 batched kernels ------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// SSE2 tier: one interval per __m128d (the IntervalSse algorithms), loaded
// straight from the contiguous (-lo, hi) array layout. Compiled with
// -march=x86-64 (SSE2 baseline) so the emitted code runs on any x86-64
// CPU regardless of the flags the rest of the project is built with.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalSimd.h"
#include "runtime/BatchElem.h"
#include "runtime/CpuDispatch.h"

namespace igen::runtime {

namespace {

inline IntervalSse load1(const Interval *P) {
  return IntervalSse(_mm_loadu_pd(&P->NegLo));
}

inline void store1(Interval *P, const IntervalSse &V) {
  _mm_storeu_pd(&P->NegLo, V.V);
}

void addK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    store1(Dst + I, iAdd(load1(X + I), load1(Y + I)));
}

void subK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    store1(Dst + I, iSub(load1(X + I), load1(Y + I)));
}

void mulK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    store1(Dst + I, iMul(load1(X + I), load1(Y + I)));
}

void fmaK(Interval *Dst, const Interval *A, const Interval *B,
          const Interval *C, size_t N) {
  for (size_t I = 0; I < N; ++I)
    store1(Dst + I,
           iAdd(iMul(load1(A + I), load1(B + I)), load1(C + I)));
}

void scaleK(Interval *Dst, const Interval *X, Interval S, size_t N) {
  IntervalSse SV = IntervalSse::fromInterval(S);
  for (size_t I = 0; I < N; ++I)
    store1(Dst + I, iMul(load1(X + I), SV));
}

} // namespace

extern const KernelTable kKernelsSse2 = {
    "sse2",        addK,          subK,          mulK,           fmaK,
    scaleK,        elem::expSse2, elem::logSse2, elem::sinScalar,
    elem::cosScalar};

} // namespace igen::runtime
