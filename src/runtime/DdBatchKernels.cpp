//===- DdBatchKernels.cpp - Scalar batched ddi kernels --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The portable tier of the batched double-double interval kernels: plain
// loops over the DdInterval operations, plus the fixed-order reductions
// shared by every dispatch tier. Compiled with -march=x86-64 so the
// emitted code (and the reduction bit patterns) never depend on the
// build host. FastOps::fma-based double-double primitives are correctly
// rounded regardless of -march.
//
//===----------------------------------------------------------------------===//

#include "runtime/DdBatch.h"

namespace igen::runtime {

namespace {

void addK(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
          size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = ddiAdd(X[I], Y[I]);
}

void subK(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
          size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = ddiSub(X[I], Y[I]);
}

void mulK(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
          size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = ddiMul(X[I], Y[I]);
}

void fmaK(DdInterval *Dst, const DdInterval *A, const DdInterval *B,
          const DdInterval *C, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = ddiAdd(ddiMul(A[I], B[I]), C[I]);
}

} // namespace

extern const DdKernelTable kDdKernelsScalar; // external linkage
constinit const DdKernelTable kDdKernelsScalar = {"dd-scalar", addK, subK,
                                                 mulK, fmaK};

//===----------------------------------------------------------------------===//
// Reductions (one fixed routine for every ISA tier)
//===----------------------------------------------------------------------===//

DdInterval ddarr_sum(const DdInterval *X, size_t N) {
  RoundUpwardScope Up;
  if (__builtin_expect(harden::checkFenvUpward("ddarr_sum"), 0))
    return DdInterval::entire();
  std::vector<DdInterval> SC;
  X = detail::maybeCorruptDd(X, N, SC);
  DdInterval Acc = DdInterval::fromPoint(0.0);
  for (size_t I = 0; I < N; ++I)
    Acc = ddiAdd(Acc, X[I]);
  return Acc;
}

DdInterval ddarr_dot(const DdInterval *X, const DdInterval *Y, size_t N) {
  RoundUpwardScope Up;
  if (__builtin_expect(harden::checkFenvUpward("ddarr_dot"), 0))
    return DdInterval::entire();
  std::vector<DdInterval> SC;
  X = detail::maybeCorruptDd(X, N, SC);
  DdInterval Acc = DdInterval::fromPoint(0.0);
  for (size_t I = 0; I < N; ++I)
    Acc = ddiAdd(Acc, ddiMul(X[I], Y[I]));
  return Acc;
}

} // namespace igen::runtime
