//===- BatchKernelsScalar.cpp - Portable batched kernels ------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The portable tier of the batched interval kernels: the Lane.h scalar
// backend through the shared kernel skeletons. This is both the fallback
// for CPUs without SSE2 (in practice: none on x86-64) and the bit-level
// reference the test suite compares the SIMD tiers against.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernelsImpl.h"

namespace igen::runtime {

extern const KernelTable kKernelsScalar; // external linkage
constinit const KernelTable kKernelsScalar =
    impl::makeTable<lanes::ScalarLanes>("scalar", elem::expScalar,
                                        elem::logScalar, elem::sinScalar,
                                        elem::cosScalar);

} // namespace igen::runtime
