//===- BatchKernelsScalar.cpp - Portable batched kernels ------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The portable tier of the batched interval kernels: plain loops over the
// scalar Interval operations. This is both the fallback for CPUs without
// SSE2 (in practice: none on x86-64) and the reference the test suite
// compares the SIMD tiers against.
//
//===----------------------------------------------------------------------===//

#include "interval/Interval.h"
#include "runtime/BatchElem.h"
#include "runtime/CpuDispatch.h"

namespace igen::runtime {

namespace {

void addK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iAdd(X[I], Y[I]);
}

void subK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iSub(X[I], Y[I]);
}

void mulK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iMul(X[I], Y[I]);
}

void fmaK(Interval *Dst, const Interval *A, const Interval *B,
          const Interval *C, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iAdd(iMul(A[I], B[I]), C[I]);
}

void scaleK(Interval *Dst, const Interval *X, Interval S, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = iMul(X[I], S);
}

} // namespace

extern const KernelTable kKernelsScalar = {
    "scalar",        addK,           subK,           mulK,
    fmaK,            scaleK,         elem::expScalar, elem::logScalar,
    elem::sinScalar, elem::cosScalar};

} // namespace igen::runtime
