//===- BatchKernelsImpl.h - Lane-generic batched kernel bodies --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel templates behind every per-ISA batched-kernel TU. Each
/// kernel is one loop skeleton instantiated over a Lane.h backend:
///
///   [optional NT peel]  scalar prefix until Dst reaches kNtAlign
///   [unrolled body]     kUnroll packs per iteration
///   [pack body]         one pack per iteration
///   [tail]              masked pack (kMaskedTail) or scalar loop
///
/// The scalar tail / peel elements use the same scalar routines the
/// ScalarLanes backend uses, so a batch is bit-identical no matter how
/// it is carved into peel, packs, and tail. The multiply additionally
/// runs a group-screened body (kGroupMul): four pack pairs share one
/// bitwise-OR special-value screen and skip the per-pack NaN check.
///
/// A TU instantiates makeTable<Backend>(...) and is done.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_BATCHKERNELSIMPL_H
#define IGEN_RUNTIME_BATCHKERNELSIMPL_H

#include "runtime/BatchElem.h"
#include "runtime/CpuDispatch.h"
#include "runtime/Lane.h"

#include <cstdint>

namespace igen::runtime::impl {

/// Decides the store flavor for a batch. When streaming pays off and Dst
/// can be aligned to L::kNtAlign by peeling at most a few leading
/// elements (Interval is 16 bytes), returns true and sets \p Peel;
/// otherwise plain stores.
template <class L>
inline bool useNtStores(const Interval *Dst, size_t N, size_t &Peel) {
  Peel = 0;
  uintptr_t A = reinterpret_cast<uintptr_t>(Dst);
  if (N < L::kNtMinBatch || A % 16 != 0)
    return false;
  Peel = (A % L::kNtAlign) ? (L::kNtAlign - A % L::kNtAlign) / 16 : 0;
  return true;
}

/// Two-source elementwise body: X[i] op Y[i] -> Dst[i].
template <class L, bool NT, class PackOp, class ScalarOp>
inline void body2(Interval *Dst, const Interval *X, const Interval *Y,
                  size_t N, PackOp VOp, ScalarOp SOp) {
  constexpr size_t P = L::kIntervals;
  size_t I = 0;
  if constexpr (L::kUnroll >= 2) {
    for (; I + 2 * P <= N; I += 2 * P) {
      L::template store<NT>(Dst + I, VOp(L::load(X + I), L::load(Y + I)));
      L::template store<NT>(
          Dst + I + P, VOp(L::load(X + I + P), L::load(Y + I + P)));
    }
  }
  for (; I + P <= N; I += P)
    L::template store<NT>(Dst + I, VOp(L::load(X + I), L::load(Y + I)));
  if constexpr (L::kMaskedTail) {
    if (I < N) {
      size_t K = N - I;
      L::maskStore(Dst + I, K,
                   VOp(L::maskLoad(X + I, K), L::maskLoad(Y + I, K)));
    }
  } else {
    for (; I < N; ++I)
      Dst[I] = SOp(X[I], Y[I]);
  }
}

/// One-source elementwise body: op(X[i]) -> Dst[i].
template <class L, bool NT, class PackOp, class ScalarOp>
inline void body1(Interval *Dst, const Interval *X, size_t N, PackOp VOp,
                  ScalarOp SOp) {
  constexpr size_t P = L::kIntervals;
  size_t I = 0;
  if constexpr (L::kUnroll >= 2) {
    for (; I + 2 * P <= N; I += 2 * P) {
      L::template store<NT>(Dst + I, VOp(L::load(X + I)));
      L::template store<NT>(Dst + I + P, VOp(L::load(X + I + P)));
    }
  }
  for (; I + P <= N; I += P)
    L::template store<NT>(Dst + I, VOp(L::load(X + I)));
  if constexpr (L::kMaskedTail) {
    if (I < N) {
      size_t K = N - I;
      L::maskStore(Dst + I, K, VOp(L::maskLoad(X + I, K)));
    }
  } else {
    for (; I < N; ++I)
      Dst[I] = SOp(X[I]);
  }
}

/// Three-source elementwise body: fma(A[i], B[i], C[i]) -> Dst[i].
template <class L, bool NT, class PackOp, class ScalarOp>
inline void body3(Interval *Dst, const Interval *A, const Interval *B,
                  const Interval *C, size_t N, PackOp VOp, ScalarOp SOp) {
  constexpr size_t P = L::kIntervals;
  size_t I = 0;
  if constexpr (L::kUnroll >= 2) {
    for (; I + 2 * P <= N; I += 2 * P) {
      L::template store<NT>(
          Dst + I, VOp(L::load(A + I), L::load(B + I), L::load(C + I)));
      L::template store<NT>(Dst + I + P,
                            VOp(L::load(A + I + P), L::load(B + I + P),
                                L::load(C + I + P)));
    }
  }
  for (; I + P <= N; I += P)
    L::template store<NT>(
        Dst + I, VOp(L::load(A + I), L::load(B + I), L::load(C + I)));
  if constexpr (L::kMaskedTail) {
    if (I < N) {
      size_t K = N - I;
      L::maskStore(Dst + I, K,
                   VOp(L::maskLoad(A + I, K), L::maskLoad(B + I, K),
                       L::maskLoad(C + I, K)));
    }
  } else {
    for (; I < N; ++I)
      Dst[I] = SOp(A[I], B[I], C[I]);
  }
}

/// Multiply body: group-screened where the backend supports it (four
/// pack pairs share one special-value screen and skip the per-pack
/// check), checked per pack otherwise.
template <class L, bool NT>
inline void mulBody(Interval *Dst, const Interval *X, const Interval *Y,
                    size_t N) {
  constexpr size_t P = L::kIntervals;
  size_t I = 0;
  if constexpr (L::kGroupMul) {
    for (; I + 4 * P <= N; I += 4 * P) {
      L::prefetchMul(X, Y, I);
      auto X0 = L::load(X + I), Y0 = L::load(Y + I);
      auto X1 = L::load(X + I + P), Y1 = L::load(Y + I + P);
      auto X2 = L::load(X + I + 2 * P), Y2 = L::load(Y + I + 2 * P);
      auto X3 = L::load(X + I + 3 * P), Y3 = L::load(Y + I + 3 * P);
      if (__builtin_expect(
              L::anySpecial(X0, Y0, X1, Y1, X2, Y2, X3, Y3), 0)) {
        L::template store<NT>(Dst + I, L::mul(X0, Y0));
        L::template store<NT>(Dst + I + P, L::mul(X1, Y1));
        L::template store<NT>(Dst + I + 2 * P, L::mul(X2, Y2));
        L::template store<NT>(Dst + I + 3 * P, L::mul(X3, Y3));
        continue;
      }
      L::template store<NT>(Dst + I, L::mulUnchecked(X0, Y0));
      L::template store<NT>(Dst + I + P, L::mulUnchecked(X1, Y1));
      L::template store<NT>(Dst + I + 2 * P, L::mulUnchecked(X2, Y2));
      L::template store<NT>(Dst + I + 3 * P, L::mulUnchecked(X3, Y3));
    }
  }
  for (; I + P <= N; I += P)
    L::template store<NT>(Dst + I,
                          L::mul(L::load(X + I), L::load(Y + I)));
  if constexpr (L::kMaskedTail) {
    if (I < N) {
      size_t K = N - I;
      L::maskStore(Dst + I, K,
                   L::mul(L::maskLoad(X + I, K), L::maskLoad(Y + I, K)));
    }
  } else {
    for (; I < N; ++I)
      Dst[I] = iMul(X[I], Y[I]);
  }
}

//===----------------------------------------------------------------------===//
// The kernel entry points
//===----------------------------------------------------------------------===//

template <class L>
void addK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  auto V = [](const typename L::Pack &A, const typename L::Pack &B) {
    return L::add(A, B);
  };
  auto S = [](const Interval &A, const Interval &B) { return iAdd(A, B); };
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = iAdd(X[I], Y[I]);
      body2<L, true>(Dst + Peel, X + Peel, Y + Peel, N - Peel, V, S);
      L::storeFence();
      return;
    }
  }
  body2<L, false>(Dst, X, Y, N, V, S);
}

template <class L>
void subK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  auto V = [](const typename L::Pack &A, const typename L::Pack &B) {
    return L::sub(A, B);
  };
  auto S = [](const Interval &A, const Interval &B) { return iSub(A, B); };
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = iSub(X[I], Y[I]);
      body2<L, true>(Dst + Peel, X + Peel, Y + Peel, N - Peel, V, S);
      L::storeFence();
      return;
    }
  }
  body2<L, false>(Dst, X, Y, N, V, S);
}

template <class L>
void mulK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = iMul(X[I], Y[I]);
      mulBody<L, true>(Dst + Peel, X + Peel, Y + Peel, N - Peel);
      L::storeFence();
      return;
    }
  }
  mulBody<L, false>(Dst, X, Y, N);
}

template <class L>
void fmaK(Interval *Dst, const Interval *A, const Interval *B,
          const Interval *C, size_t N) {
  auto V = [](const typename L::Pack &X, const typename L::Pack &Y,
              const typename L::Pack &Z) { return L::fma(X, Y, Z); };
  auto S = [](const Interval &X, const Interval &Y, const Interval &Z) {
    return lanes::fmaComposed(X, Y, Z);
  };
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = lanes::fmaComposed(A[I], B[I], C[I]);
      body3<L, true>(Dst + Peel, A + Peel, B + Peel, C + Peel, N - Peel,
                     V, S);
      L::storeFence();
      return;
    }
  }
  body3<L, false>(Dst, A, B, C, N, V, S);
}

template <class L>
void scaleK(Interval *Dst, const Interval *X, Interval S, size_t N) {
  const typename L::Pack SV = L::broadcast(S);
  auto V = [&SV](const typename L::Pack &A) { return L::mul(A, SV); };
  auto SOp = [&S](const Interval &A) { return iMul(A, S); };
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = iMul(X[I], S);
      body1<L, true>(Dst + Peel, X + Peel, N - Peel, V, SOp);
      L::storeFence();
      return;
    }
  }
  body1<L, false>(Dst, X, N, V, SOp);
}

template <class L>
void divK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  auto V = [](const typename L::Pack &A, const typename L::Pack &B) {
    return L::div(A, B);
  };
  auto S = [](const Interval &A, const Interval &B) {
    return lanes::divAuto(A, B);
  };
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = lanes::divAuto(X[I], Y[I]);
      body2<L, true>(Dst + Peel, X + Peel, Y + Peel, N - Peel, V, S);
      L::storeFence();
      return;
    }
  }
  body2<L, false>(Dst, X, Y, N, V, S);
}

template <class L>
void sqrtK(Interval *Dst, const Interval *X, size_t N) {
  auto V = [](const typename L::Pack &A) { return L::sqrt(A); };
  auto S = [](const Interval &A) { return iSqrt(A); };
  if constexpr (L::kNtStores) {
    size_t Peel;
    if (useNtStores<L>(Dst, N, Peel)) {
      for (size_t I = 0; I < Peel; ++I)
        Dst[I] = iSqrt(X[I]);
      body1<L, true>(Dst + Peel, X + Peel, N - Peel, V, S);
      L::storeFence();
      return;
    }
  }
  body1<L, false>(Dst, X, N, V, S);
}

/// One fully populated dispatch row for a backend. The elementary
/// kernels keep their per-ISA hand-written (or core-template) entry
/// points because their structure is screen-heavy rather than
/// loop-shaped.
template <class L>
constexpr KernelTable makeTable(const char *Name, ElemFn Exp, ElemFn Log,
                                ElemFn Sin, ElemFn Cos) {
  return KernelTable{Name,     addK<L>, subK<L>, mulK<L>,
                     fmaK<L>,  scaleK<L>, divK<L>, sqrtK<L>,
                     Exp,      Log,     Sin,     Cos};
}

} // namespace igen::runtime::impl

#endif // IGEN_RUNTIME_BATCHKERNELSIMPL_H
