//===- BatchElemSse2.cpp - SSE2 batched elementary kernels ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// SSE2 tier of the batched exp/log kernels: the width-generic cores of
// runtime/ElemCores.h instantiated over the 128-bit backend (one interval
// per __m128d, lane 0 the negated lower endpoint, lane 1 the upper).
// Compiled with -march=x86-64.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchElem.h"
#include "runtime/ElemCores.h"

namespace igen::runtime::elem {

void expSse2(Interval *Dst, const Interval *X, size_t N) {
  expKernel<Sse2VecOps>(Dst, X, N);
}

void logSse2(Interval *Dst, const Interval *X, size_t N) {
  logKernel<Sse2VecOps>(Dst, X, N);
}

} // namespace igen::runtime::elem
