//===- BatchElemSse2.cpp - SSE2 batched elementary kernels ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// SSE2 tier of the batched exp/log kernels: one interval per __m128d,
// lane 0 carrying the lower endpoint and lane 1 the upper, both run
// through a lane-parallel transcription of the PolyKernels.h point
// cores. Every vector operation corresponds 1:1 to a scalar operation of
// the core (plain mul/add/sub/div, no FMA, no reassociation), so under
// the same ambient upward rounding the lanes are bit-identical to
// iExpFast/iLogFast — the dispatch tiers agree to the last bit.
//
// The integer parts of the cores use the same tricks as the scalar code:
// the exponent k drops out of the shifter bit pattern
// (bits(U) - bits(Shifter)), the 2^k scale is built by integer add+shift
// (exact on the fast domain), and the int64 -> double conversion of the
// log exponent goes through the shifter bias (exact for |e| <= 1024).
//
// Intervals whose endpoints fail the vector fast-domain screen (NaN
// fails every compare) fall back per element to the scalar kernel,
// which re-checks and widens via libm — identical to what the scalar
// tier would produce for that element. Compiled with -march=x86-64.
//
//===----------------------------------------------------------------------===//

#include "interval/PolyKernels.h"
#include "runtime/BatchElem.h"

#include <bit>
#include <cstdint>
#include <emmintrin.h>
#include <limits>

namespace igen::runtime::elem {

namespace {

/// Sign bit of lane 0 only: XOR turns the stored (-lo, hi) pair into the
/// endpoint pair (lo, hi) and back.
inline __m128d signLane0() {
  return _mm_castsi128_pd(
      _mm_set_epi64x(0, std::numeric_limits<int64_t>::min()));
}

inline __m128d absMask() {
  return _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
}

/// Both lanes of expCore (PolyKernels.h), operation for operation.
inline __m128d expCore2(__m128d X) {
  const __m128d Shift = _mm_set1_pd(poly::Shifter);
  __m128d P = _mm_mul_pd(X, _mm_set1_pd(poly::InvLn2));
  __m128d U = _mm_add_pd(_mm_sub_pd(P, _mm_set1_pd(0.5)), Shift);
  __m128d Kd = _mm_sub_pd(U, Shift);
  __m128i K = _mm_sub_epi64(
      _mm_castpd_si128(U),
      _mm_set1_epi64x(std::bit_cast<int64_t>(poly::Shifter)));
  __m128d R0 = _mm_sub_pd(X, _mm_mul_pd(Kd, _mm_set1_pd(poly::Ln2Hi)));
  __m128d R = _mm_sub_pd(R0, _mm_mul_pd(Kd, _mm_set1_pd(poly::Ln2Lo)));
  __m128d Q = _mm_set1_pd(poly::ExpC[11]);
  for (int I = 10; I >= 0; --I)
    Q = _mm_add_pd(_mm_set1_pd(poly::ExpC[I]), _mm_mul_pd(R, Q));
  __m128d Z = _mm_mul_pd(R, R);
  __m128d Y =
      _mm_add_pd(_mm_set1_pd(1.0), _mm_add_pd(R, _mm_mul_pd(Z, Q)));
  __m128i ScaleBits =
      _mm_slli_epi64(_mm_add_epi64(K, _mm_set1_epi64x(1023)), 52);
  return _mm_mul_pd(Y, _mm_castsi128_pd(ScaleBits));
}

/// Both lanes of logCore. The conditional sqrt(2) normalization becomes
/// a bitwise select (the discarded halved value is exact, so selection
/// preserves bit-identity with the scalar branch).
inline __m128d logCore2(__m128d X) {
  __m128i Bits = _mm_castpd_si128(X);
  // Positive normal input: logical shift == arithmetic shift.
  __m128i E2 =
      _mm_sub_epi64(_mm_srli_epi64(Bits, 52), _mm_set1_epi64x(1023));
  __m128d M = _mm_castsi128_pd(
      _mm_or_si128(_mm_and_si128(Bits, _mm_set1_epi64x(0xFFFFFFFFFFFFFll)),
                   _mm_set1_epi64x(0x3FF0000000000000ll)));
  __m128d Gt = _mm_cmpgt_pd(M, _mm_set1_pd(poly::Sqrt2));
  __m128d MHalf = _mm_mul_pd(M, _mm_set1_pd(0.5)); // exact
  M = _mm_or_pd(_mm_and_pd(Gt, MHalf), _mm_andnot_pd(Gt, M));
  E2 = _mm_sub_epi64(E2, _mm_castpd_si128(Gt)); // true lane is -1
  // int64 -> double through the shifter bias; exact for |E2| <= 1024, so
  // identical to the scalar static_cast.
  __m128i EdBits = _mm_add_epi64(
      E2, _mm_set1_epi64x(std::bit_cast<int64_t>(poly::Shifter)));
  __m128d Ed =
      _mm_sub_pd(_mm_castsi128_pd(EdBits), _mm_set1_pd(poly::Shifter));
  __m128d A = _mm_sub_pd(M, _mm_set1_pd(1.0));
  __m128d B = _mm_add_pd(M, _mm_set1_pd(1.0));
  __m128d S = _mm_div_pd(A, B);
  __m128d Z = _mm_mul_pd(S, S);
  __m128d Q = _mm_set1_pd(poly::LogC[10]);
  for (int I = 9; I >= 0; --I)
    Q = _mm_add_pd(_mm_set1_pd(poly::LogC[I]), _mm_mul_pd(Z, Q));
  __m128d T = _mm_mul_pd(_mm_mul_pd(S, Z), Q);
  __m128d S2 = _mm_add_pd(S, S);
  __m128d VHi = _mm_mul_pd(Ed, _mm_set1_pd(poly::Ln2Hi));
  __m128d VLo = _mm_mul_pd(Ed, _mm_set1_pd(poly::Ln2Lo));
  return _mm_add_pd(_mm_add_pd(VHi, S2), _mm_add_pd(T, VLo));
}

} // namespace

void expSse2(Interval *Dst, const Interval *X, size_t N) {
  const __m128d SignLo = signLane0();
  const __m128d Abs = absMask();
  const __m128d Limit = _mm_set1_pd(poly::ExpFastLimit);
  const __m128d Eps = _mm_set1_pd(poly::ExpEpsRel);
  for (size_t I = 0; I < N; ++I) {
    __m128d V = _mm_loadu_pd(&X[I].NegLo);
    __m128d E = _mm_xor_pd(V, SignLo); // (lo, hi)
    __m128d InDom = _mm_cmple_pd(_mm_and_pd(E, Abs), Limit);
    if (_mm_movemask_pd(InDom) != 3) {
      Dst[I] = iExpFast(X[I]); // re-checks; libm-widened fallback
      continue;
    }
    __m128d Y = expCore2(E);        // both lanes positive
    __m128d Mg = _mm_mul_pd(Y, Eps); // RU margins
    __m128d R = _mm_add_pd(_mm_xor_pd(Y, SignLo), Mg); // (-yl+el, yh+eh)
    _mm_storeu_pd(&Dst[I].NegLo, R);
  }
}

void logSse2(Interval *Dst, const Interval *X, size_t N) {
  const __m128d SignLo = signLane0();
  const __m128d Abs = absMask();
  const __m128d MinN = _mm_set1_pd(std::numeric_limits<double>::min());
  const __m128d MaxF = _mm_set1_pd(std::numeric_limits<double>::max());
  const __m128d Eps = _mm_set1_pd(poly::LogEpsRel);
  for (size_t I = 0; I < N; ++I) {
    __m128d V = _mm_loadu_pd(&X[I].NegLo);
    __m128d E = _mm_xor_pd(V, SignLo);
    // Both endpoints positive normal finite (stricter than the scalar
    // lo >= MinN && hi <= MaxF check, which these imply for lo <= hi).
    __m128d InDom =
        _mm_and_pd(_mm_cmpge_pd(E, MinN), _mm_cmple_pd(E, MaxF));
    if (_mm_movemask_pd(InDom) != 3) {
      Dst[I] = iLogFast(X[I]);
      continue;
    }
    __m128d Y = logCore2(E);
    __m128d Mg = _mm_mul_pd(_mm_and_pd(Y, Abs), Eps);
    __m128d R = _mm_add_pd(_mm_xor_pd(Y, SignLo), Mg);
    _mm_storeu_pd(&Dst[I].NegLo, R);
  }
}

} // namespace igen::runtime::elem
