//===- BatchElemAvx2.cpp - AVX2 batched elementary kernels ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX2 tier of the batched exp/log kernels: the width-generic cores of
// runtime/ElemCores.h instantiated over the 256-bit backend (two
// intervals per __m256d). FMA is deliberately NOT used inside the cores
// (it would change the bits versus the other tiers); the -mfma flag only
// matches the TU's dispatch tier. Compiled with -mavx2 -mfma.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchElem.h"
#include "runtime/ElemCores.h"

namespace igen::runtime::elem {

void expAvx2(Interval *Dst, const Interval *X, size_t N) {
  expKernel<Avx2VecOps>(Dst, X, N);
}

void logAvx2(Interval *Dst, const Interval *X, size_t N) {
  logKernel<Avx2VecOps>(Dst, X, N);
}

} // namespace igen::runtime::elem
