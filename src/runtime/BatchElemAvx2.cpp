//===- BatchElemAvx2.cpp - AVX2 batched elementary kernels ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX2 tier of the batched exp/log kernels: two intervals per __m256d
// (lanes 0/2 the lower endpoints, 1/3 the upper). Same 1:1 transcription
// of the PolyKernels.h cores as the SSE2 tier — plain mul/add/sub/div
// intrinsics only, NO FMA even though the TU is compiled with -mfma,
// because fusing would change the bits relative to the other tiers and
// break the cross-tier determinism contract. The 256-bit width and the
// AVX2 integer ops (64-bit add/sub/shift across the full register) are
// where this tier wins, not the instruction mix.
//
// A batch whose four endpoint lanes don't all pass the fast-domain
// screen takes the per-element scalar fallback for both its intervals
// (the scalar fast path is bit-identical, so mixing is invisible).
// Compiled with -march=x86-64 -mavx2 -mfma.
//
//===----------------------------------------------------------------------===//

#include "interval/PolyKernels.h"
#include "runtime/BatchElem.h"

#include <bit>
#include <cstdint>
#include <immintrin.h>
#include <limits>

namespace igen::runtime::elem {

namespace {

/// Sign bits of the negated-lower lanes (0 and 2).
inline __m256d signLanes02() {
  const int64_t S = std::numeric_limits<int64_t>::min();
  return _mm256_castsi256_pd(_mm256_set_epi64x(0, S, 0, S));
}

inline __m256d absMask4() {
  return _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
}

/// Four lanes of expCore, operation for operation.
inline __m256d expCore4(__m256d X) {
  const __m256d Shift = _mm256_set1_pd(poly::Shifter);
  __m256d P = _mm256_mul_pd(X, _mm256_set1_pd(poly::InvLn2));
  __m256d U = _mm256_add_pd(_mm256_sub_pd(P, _mm256_set1_pd(0.5)), Shift);
  __m256d Kd = _mm256_sub_pd(U, Shift);
  __m256i K = _mm256_sub_epi64(
      _mm256_castpd_si256(U),
      _mm256_set1_epi64x(std::bit_cast<int64_t>(poly::Shifter)));
  __m256d R0 =
      _mm256_sub_pd(X, _mm256_mul_pd(Kd, _mm256_set1_pd(poly::Ln2Hi)));
  __m256d R =
      _mm256_sub_pd(R0, _mm256_mul_pd(Kd, _mm256_set1_pd(poly::Ln2Lo)));
  __m256d Q = _mm256_set1_pd(poly::ExpC[11]);
  for (int I = 10; I >= 0; --I)
    Q = _mm256_add_pd(_mm256_set1_pd(poly::ExpC[I]), _mm256_mul_pd(R, Q));
  __m256d Z = _mm256_mul_pd(R, R);
  __m256d Y = _mm256_add_pd(_mm256_set1_pd(1.0),
                            _mm256_add_pd(R, _mm256_mul_pd(Z, Q)));
  __m256i ScaleBits =
      _mm256_slli_epi64(_mm256_add_epi64(K, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(Y, _mm256_castsi256_pd(ScaleBits));
}

/// Four lanes of logCore (select instead of branch; same bits).
inline __m256d logCore4(__m256d X) {
  __m256i Bits = _mm256_castpd_si256(X);
  __m256i E2 = _mm256_sub_epi64(_mm256_srli_epi64(Bits, 52),
                                _mm256_set1_epi64x(1023));
  __m256d M = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(Bits, _mm256_set1_epi64x(0xFFFFFFFFFFFFFll)),
      _mm256_set1_epi64x(0x3FF0000000000000ll)));
  __m256d Gt = _mm256_cmp_pd(M, _mm256_set1_pd(poly::Sqrt2), _CMP_GT_OQ);
  __m256d MHalf = _mm256_mul_pd(M, _mm256_set1_pd(0.5)); // exact
  M = _mm256_blendv_pd(M, MHalf, Gt);
  E2 = _mm256_sub_epi64(E2, _mm256_castpd_si256(Gt)); // true lane is -1
  __m256i EdBits = _mm256_add_epi64(
      E2, _mm256_set1_epi64x(std::bit_cast<int64_t>(poly::Shifter)));
  __m256d Ed = _mm256_sub_pd(_mm256_castsi256_pd(EdBits),
                             _mm256_set1_pd(poly::Shifter));
  __m256d A = _mm256_sub_pd(M, _mm256_set1_pd(1.0));
  __m256d B = _mm256_add_pd(M, _mm256_set1_pd(1.0));
  __m256d S = _mm256_div_pd(A, B);
  __m256d Z = _mm256_mul_pd(S, S);
  __m256d Q = _mm256_set1_pd(poly::LogC[10]);
  for (int I = 9; I >= 0; --I)
    Q = _mm256_add_pd(_mm256_set1_pd(poly::LogC[I]), _mm256_mul_pd(Z, Q));
  __m256d T = _mm256_mul_pd(_mm256_mul_pd(S, Z), Q);
  __m256d S2 = _mm256_add_pd(S, S);
  __m256d VHi = _mm256_mul_pd(Ed, _mm256_set1_pd(poly::Ln2Hi));
  __m256d VLo = _mm256_mul_pd(Ed, _mm256_set1_pd(poly::Ln2Lo));
  return _mm256_add_pd(_mm256_add_pd(VHi, S2), _mm256_add_pd(T, VLo));
}

} // namespace

void expAvx2(Interval *Dst, const Interval *X, size_t N) {
  const __m256d SignLo = signLanes02();
  const __m256d Abs = absMask4();
  const __m256d Limit = _mm256_set1_pd(poly::ExpFastLimit);
  const __m256d Eps = _mm256_set1_pd(poly::ExpEpsRel);
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    __m256d V = _mm256_loadu_pd(&X[I].NegLo);
    __m256d E = _mm256_xor_pd(V, SignLo); // (lo0, hi0, lo1, hi1)
    __m256d InDom =
        _mm256_cmp_pd(_mm256_and_pd(E, Abs), Limit, _CMP_LE_OQ);
    if (_mm256_movemask_pd(InDom) != 0xF) {
      Dst[I] = iExpFast(X[I]);
      Dst[I + 1] = iExpFast(X[I + 1]);
      continue;
    }
    __m256d Y = expCore4(E);
    __m256d Mg = _mm256_mul_pd(Y, Eps);
    __m256d R = _mm256_add_pd(_mm256_xor_pd(Y, SignLo), Mg);
    _mm256_storeu_pd(&Dst[I].NegLo, R);
  }
  for (; I < N; ++I)
    Dst[I] = iExpFast(X[I]);
}

void logAvx2(Interval *Dst, const Interval *X, size_t N) {
  const __m256d SignLo = signLanes02();
  const __m256d Abs = absMask4();
  const __m256d MinN = _mm256_set1_pd(std::numeric_limits<double>::min());
  const __m256d MaxF = _mm256_set1_pd(std::numeric_limits<double>::max());
  const __m256d Eps = _mm256_set1_pd(poly::LogEpsRel);
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    __m256d V = _mm256_loadu_pd(&X[I].NegLo);
    __m256d E = _mm256_xor_pd(V, SignLo);
    __m256d InDom = _mm256_and_pd(_mm256_cmp_pd(E, MinN, _CMP_GE_OQ),
                                  _mm256_cmp_pd(E, MaxF, _CMP_LE_OQ));
    if (_mm256_movemask_pd(InDom) != 0xF) {
      Dst[I] = iLogFast(X[I]);
      Dst[I + 1] = iLogFast(X[I + 1]);
      continue;
    }
    __m256d Y = logCore4(E);
    __m256d Mg = _mm256_mul_pd(_mm256_and_pd(Y, Abs), Eps);
    __m256d R = _mm256_add_pd(_mm256_xor_pd(Y, SignLo), Mg);
    _mm256_storeu_pd(&Dst[I].NegLo, R);
  }
  for (; I < N; ++I)
    Dst[I] = iLogFast(X[I]);
}

} // namespace igen::runtime::elem
