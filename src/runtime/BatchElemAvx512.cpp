//===- BatchElemAvx512.cpp - AVX-512 batched elementary kernels -----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX-512 tier of the batched exp/log kernels: the width-generic cores of
// runtime/ElemCores.h instantiated over the 512-bit backend (four
// intervals per __m512d), with a masked-lane tail instead of a scalar
// remainder loop. Compiled with -mavx512f -mavx512dq -mavx512vl -mfma;
// FMA is deliberately NOT used inside the cores.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchElem.h"
#include "runtime/ElemCores.h"

namespace igen::runtime::elem {

void expAvx512(Interval *Dst, const Interval *X, size_t N) {
  expKernel<Avx512VecOps>(Dst, X, N);
}

void logAvx512(Interval *Dst, const Interval *X, size_t N) {
  logKernel<Avx512VecOps>(Dst, X, N);
}

} // namespace igen::runtime::elem
