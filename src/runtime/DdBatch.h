//===- DdBatch.h - Batched double-double interval runtime ------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched ddi (double-double interval) tier: contiguous-array
/// kernels over DdInterval values, the escalation targets of the
/// adaptive-precision work. The surface mirrors the f64i iarr_* runtime
/// (BatchKernels.h) — same rounding contract (entry points establish
/// upward rounding themselves), same fenv sentinel with whole-batch
/// poisoning to [-inf, +inf] endpoints, same aliasing rules (full
/// aliasing allowed, partial overlap asserts in debug and is copied to
/// scratch in release), same IGEN_FAULT operand-corruption hooks.
///
/// Dispatch: only two kernel tiers exist (scalar and AVX2+FMA — the
/// DdSimd layout wants 256-bit FMA); ddKernels() maps every Isa onto the
/// best available one, and the two produce bit-identical results (the
/// vectorized ddiAdd/ddiMul mirror the scalar error-free transformation
/// sequences exactly, and every screen hit falls back to the scalar
/// routine).
///
/// Reductions (ddarr_sum/ddarr_dot) accumulate sequentially in index
/// order with ddiAdd — one fixed routine compiled in the scalar TU, so
/// the result bits never depend on the ISA selection.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_DDBATCH_H
#define IGEN_RUNTIME_DDBATCH_H

#include "harden/FaultInject.h"
#include "harden/FenvSentinel.h"
#include "interval/DdInterval.h"
#include "interval/Rounding.h"
#include "runtime/CpuDispatch.h"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace igen::runtime {

static_assert(sizeof(DdInterval) == 4 * sizeof(double));

namespace detail {

/// Dd analogue of partialOverlap (BatchKernels.h): true when the ranges
/// overlap other than being identical.
inline bool partialOverlapDd(const DdInterval *A, const DdInterval *B,
                             size_t N) {
  if (A == B || N == 0)
    return false;
  uintptr_t LA = reinterpret_cast<uintptr_t>(A);
  uintptr_t LB = reinterpret_cast<uintptr_t>(B);
  uintptr_t Bytes = N * sizeof(DdInterval);
  return LA < LB + Bytes && LB < LA + Bytes;
}

[[gnu::cold]] inline void poisonBatchDd(DdInterval *Dst, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = DdInterval::entire();
}

/// Shared ddarr_* prologue: fenv sentinel once per invocation, with
/// upward rounding already established. Returns true when the caller
/// must poison its results and return.
inline bool ddBatchPrologue(const char *Where, DdInterval *Dst, size_t N) {
  if (__builtin_expect(harden::checkFenvUpward(Where), 0)) {
    poisonBatchDd(Dst, N);
    return true;
  }
  return false;
}

/// IGEN_FAULT nan/inf operand corruption, scratch-local as in the f64i
/// runtime.
inline const DdInterval *maybeCorruptDd(const DdInterval *X, size_t N,
                                        std::vector<DdInterval> &Scratch) {
  if (__builtin_expect(!harden::faultsArmedFromEnv(), 1) || N == 0)
    return X;
  long long At = 0;
  bool Nan = harden::faultFires(harden::FaultKind::Nan, &At);
  bool Inf = !Nan && harden::faultFires(harden::FaultKind::Inf, &At);
  if (!Nan && !Inf)
    return X;
  Scratch.assign(X, X + N);
  Scratch[static_cast<size_t>(At) % N] =
      Nan ? DdInterval::nan() : DdInterval::fromPoint(HUGE_VAL);
  return Scratch.data();
}

inline const DdInterval *resolveOverlapDd(DdInterval *Dst,
                                          const DdInterval *In, size_t N,
                                          std::vector<DdInterval> &Scratch) {
  if (__builtin_expect(!partialOverlapDd(Dst, In, N), 1))
    return In;
  assert(!"ddarr_* input partially overlaps the output range");
  Scratch.assign(In, In + N);
  return Scratch.data();
}

} // namespace detail

//===----------------------------------------------------------------------===//
// Elementwise kernels (CPU-dispatched)
//===----------------------------------------------------------------------===//

/// Dst[i] = X[i] + Y[i].
inline void ddarr_add(DdInterval *Dst, const DdInterval *X,
                      const DdInterval *Y, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::ddBatchPrologue("ddarr_add", Dst, N))
    return;
  std::vector<DdInterval> SX, SY, SC;
  X = detail::resolveOverlapDd(Dst, X, N, SX);
  Y = detail::resolveOverlapDd(Dst, Y, N, SY);
  X = detail::maybeCorruptDd(X, N, SC);
  ddKernels().Add(Dst, X, Y, N);
}

/// Dst[i] = X[i] - Y[i].
inline void ddarr_sub(DdInterval *Dst, const DdInterval *X,
                      const DdInterval *Y, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::ddBatchPrologue("ddarr_sub", Dst, N))
    return;
  std::vector<DdInterval> SX, SY, SC;
  X = detail::resolveOverlapDd(Dst, X, N, SX);
  Y = detail::resolveOverlapDd(Dst, Y, N, SY);
  X = detail::maybeCorruptDd(X, N, SC);
  ddKernels().Sub(Dst, X, Y, N);
}

/// Dst[i] = X[i] * Y[i].
inline void ddarr_mul(DdInterval *Dst, const DdInterval *X,
                      const DdInterval *Y, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::ddBatchPrologue("ddarr_mul", Dst, N))
    return;
  std::vector<DdInterval> SX, SY, SC;
  X = detail::resolveOverlapDd(Dst, X, N, SX);
  Y = detail::resolveOverlapDd(Dst, Y, N, SY);
  X = detail::maybeCorruptDd(X, N, SC);
  ddKernels().Mul(Dst, X, Y, N);
}

/// Dst[i] = A[i] * B[i] + C[i] (composed ddiAdd(ddiMul) on every tier;
/// the dd error-free transformations already carry products exactly).
inline void ddarr_fma(DdInterval *Dst, const DdInterval *A,
                      const DdInterval *B, const DdInterval *C, size_t N) {
  if (N == 0)
    return;
  RoundUpwardScope Up;
  if (detail::ddBatchPrologue("ddarr_fma", Dst, N))
    return;
  std::vector<DdInterval> SA, SB, SCc, SC;
  A = detail::resolveOverlapDd(Dst, A, N, SA);
  B = detail::resolveOverlapDd(Dst, B, N, SB);
  C = detail::resolveOverlapDd(Dst, C, N, SCc);
  A = detail::maybeCorruptDd(A, N, SC);
  ddKernels().Fma(Dst, A, B, C, N);
}

//===----------------------------------------------------------------------===//
// Sound reductions (fixed sequential order; ISA-independent)
//===----------------------------------------------------------------------===//

/// Sum of X[0..N-1], accumulated left to right with ddiAdd (the ~106-bit
/// endpoints make interleaved chains unnecessary for accuracy; a single
/// chain keeps the order trivially fixed). N == 0 yields [0, 0].
DdInterval ddarr_sum(const DdInterval *X, size_t N);

/// Dot product sum(X[i] * Y[i]), products by ddiMul, accumulation as in
/// ddarr_sum.
DdInterval ddarr_dot(const DdInterval *X, const DdInterval *Y, size_t N);

} // namespace igen::runtime

#endif // IGEN_RUNTIME_DDBATCH_H
