//===- BatchKernelsAvx.cpp - AVX batched kernels --------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX tier: two intervals per __m256d (the IntervalX2 lane-local lifts of
// the SSE candidate schemes). Odd-length tails fall back to the scalar
// operations, which compute the same candidate maxima. The elementary
// cores reuse the SSE2 entry points — they gain nothing from VEX
// encoding alone. Compiled with -march=x86-64 -mavx.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernelsImpl.h"

namespace igen::runtime {

extern const KernelTable kKernelsAvx; // external linkage
constinit const KernelTable kKernelsAvx =
    impl::makeTable<lanes::AvxLanes>("avx", elem::expSse2, elem::logSse2,
                                     elem::sinScalar, elem::cosScalar);

} // namespace igen::runtime
