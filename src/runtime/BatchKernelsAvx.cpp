//===- BatchKernelsAvx.cpp - AVX batched kernels --------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// AVX tier: two intervals per __m256d (the IntervalX2 lane-local lifts of
// the SSE candidate schemes). Odd-length tails fall back to the scalar
// operations, which compute the same candidate maxima. Compiled with
// -march=x86-64 -mavx.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalVector.h"
#include "runtime/BatchElem.h"
#include "runtime/CpuDispatch.h"

namespace igen::runtime {

namespace {

inline IntervalX2 load2(const Interval *P) {
  return IntervalX2(_mm256_loadu_pd(&P->NegLo));
}

inline void store2(Interval *P, const IntervalX2 &V) {
  _mm256_storeu_pd(&P->NegLo, V.V);
}

void addK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    store2(Dst + I, iAdd(load2(X + I), load2(Y + I)));
  for (; I < N; ++I)
    Dst[I] = iAdd(X[I], Y[I]);
}

void subK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    store2(Dst + I, iSub(load2(X + I), load2(Y + I)));
  for (; I < N; ++I)
    Dst[I] = iSub(X[I], Y[I]);
}

void mulK(Interval *Dst, const Interval *X, const Interval *Y, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    store2(Dst + I, iMul(load2(X + I), load2(Y + I)));
  for (; I < N; ++I)
    Dst[I] = iMul(X[I], Y[I]);
}

void fmaK(Interval *Dst, const Interval *A, const Interval *B,
          const Interval *C, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    store2(Dst + I,
           iAdd(iMul(load2(A + I), load2(B + I)), load2(C + I)));
  for (; I < N; ++I)
    Dst[I] = iAdd(iMul(A[I], B[I]), C[I]);
}

void scaleK(Interval *Dst, const Interval *X, Interval S, size_t N) {
  IntervalX2 SV = IntervalX2::broadcast(S);
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    store2(Dst + I, iMul(load2(X + I), SV));
  for (; I < N; ++I)
    Dst[I] = iMul(X[I], S);
}

} // namespace

// The AVX table reuses the SSE2 elementary kernels: the cores are
// mul/add/div-bound and gain nothing from VEX encoding alone.
extern const KernelTable kKernelsAvx = {
    "avx",         addK,          subK,          mulK,           fmaK,
    scaleK,        elem::expSse2, elem::logSse2, elem::sinScalar,
    elem::cosScalar};

} // namespace igen::runtime
