//===- ThreadPool.h - Minimal thread pool for sound reductions --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool used by the parallel interval
/// reductions. Design constraints, in order:
///
///  * Determinism of the *callers* must not depend on scheduling: the pool
///    only hands out task indices; which thread runs which index is
///    arbitrary, so callers must write results into per-index slots and do
///    any order-sensitive combining themselves (see BatchReduce.cpp).
///  * Workers make no assumption about the FPU state: each task body is
///    responsible for establishing (and restoring, via RAII) the rounding
///    mode it needs. Worker threads are created with the default
///    round-to-nearest mode and must be returned to it after every task.
///  * One parallelFor runs at a time (submissions serialize); the caller
///    participates in the work, so the pool functions correctly even with
///    zero workers.
///
/// Pool size: IGEN_THREADS environment variable if set (clamped to the
/// machine's useful participant count, see participantsFromEnv),
/// otherwise max(4, hardware_concurrency) total participants. The
/// minimum of 4 keeps the multithreaded reduction paths exercised
/// (timesliced) even on single-core CI machines.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_THREADPOOL_H
#define IGEN_RUNTIME_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace igen::runtime {

class ThreadPool {
public:
  /// The process-wide pool (created on first use).
  static ThreadPool &instance();

  /// Parses an IGEN_THREADS-style override. Returns the total
  /// participant count clamped to [1, max(4, Hardware)], or 0 when
  /// \p Spec is null, empty, or not a positive decimal integer (the
  /// caller then falls back to the hardware default). Exposed for
  /// testing; `instance()` applies it to getenv("IGEN_THREADS").
  static unsigned participantsFromEnv(const char *Spec, unsigned Hardware);

  /// Like the two-argument overload, but when \p Spec is non-empty yet not
  /// a positive decimal integer, stores an explanatory message into
  /// \p Warning (left untouched otherwise). instance() prints the warning
  /// to stderr once per process.
  static unsigned participantsFromEnv(const char *Spec, unsigned Hardware,
                                      std::string *Warning);

  /// Creates a pool with \p WorkerCount background workers (the caller of
  /// parallelFor is an additional participant).
  explicit ThreadPool(unsigned WorkerCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of background worker threads.
  unsigned workerCount() const { return Workers.size(); }

  /// Maximum useful participant count (workers + the calling thread).
  unsigned maxParticipants() const { return workerCount() + 1; }

  /// Runs Body(0) .. Body(NumTasks-1), distributing indices over at most
  /// \p MaxParticipants threads (0 = all available; the caller always
  /// participates). Blocks until every task has finished. Task-to-thread
  /// assignment is dynamic (atomic counter) and NOT deterministic.
  void parallelFor(size_t NumTasks, unsigned MaxParticipants,
                   const std::function<void(size_t)> &Body);

private:
  struct Batch;

  void workerLoop();
  static void runTasks(Batch &B);

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WorkCv; ///< Workers wait for slots here.
  std::condition_variable DoneCv; ///< The submitter waits for completion.
  std::shared_ptr<Batch> Current; ///< Batch workers may still claim.
  unsigned SlotsLeft = 0;         ///< Worker slots left in Current.
  bool Stop = false;
  std::mutex SubmitM; ///< Serializes concurrent parallelFor calls.
};

} // namespace igen::runtime

#endif // IGEN_RUNTIME_THREADPOOL_H
