//===- CpuDispatch.h - Runtime ISA selection for batched kernels -*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU dispatch for the batched interval array kernels. Each ISA
/// tier (scalar, SSE2, AVX, AVX2+FMA) provides one KernelTable, compiled in
/// its own translation unit with the matching -march flags; the dispatcher
/// picks the best supported table at first use via CPUID
/// (__builtin_cpu_supports).
///
/// The selection can be overridden two ways:
///  * environment: IGEN_ISA=scalar|sse2|avx|avx2 (read when the cached
///    selection is empty; unsupported or unknown values fall back to
///    auto-detection with a warning), and
///  * programmatically: forceIsa() / clearForcedIsa(), used by the tests
///    and benchmarks to exercise every tier in one process.
///
/// This header deliberately includes no intrinsics so that per-ISA kernel
/// translation units can include it under any -march setting.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_CPUDISPATCH_H
#define IGEN_RUNTIME_CPUDISPATCH_H

#include "interval/Interval.h"

#include <cstddef>
#include <string>

namespace igen::runtime {

/// ISA tiers, ordered from most portable to most capable.
enum class Isa { Scalar = 0, Sse2 = 1, Avx = 2, Avx2Fma = 3 };

inline constexpr int NumIsas = 4;

/// One function pointer per batched elementwise kernel. All kernels require
/// upward rounding (established by the iarr_* wrappers) and permit
/// Dst == X/Y/A/B/C aliasing of whole arrays (element I only reads inputs
/// at index I).
struct KernelTable {
  const char *Name;
  void (*Add)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  void (*Sub)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  void (*Mul)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  /// Elementwise A*B + C. The AVX2+FMA tier fuses the candidate products
  /// with the addend (single rounding: tighter and sound); other tiers
  /// compose iAdd(iMul(a, b), c).
  void (*Fma)(Interval *Dst, const Interval *A, const Interval *B,
              const Interval *C, size_t N);
  /// Elementwise X * S for a fixed interval scalar S.
  void (*Scale)(Interval *Dst, const Interval *X, Interval S, size_t N);
  /// Elementwise certified polynomial elementary functions
  /// (iExpFast-family semantics, see interval/PolyKernels.h). The SIMD
  /// tiers vectorize the exp/log point cores across both endpoints and
  /// mirror the scalar operation sequence exactly, so every lane is
  /// bit-identical to the scalar tier; intervals outside the fast domain
  /// take the per-element scalar fallback.
  void (*Exp)(Interval *Dst, const Interval *X, size_t N);
  void (*Log)(Interval *Dst, const Interval *X, size_t N);
  void (*Sin)(Interval *Dst, const Interval *X, size_t N);
  void (*Cos)(Interval *Dst, const Interval *X, size_t N);
};

/// True if the running CPU can execute the given tier.
bool isaSupported(Isa I);

/// Best tier the running CPU supports.
Isa detectIsa();

/// The tier in effect: forced > IGEN_ISA env override > CPUID detection.
Isa activeIsa();

/// Resolves an IGEN_ISA-style spec: a recognized, CPU-supported tier name
/// wins; anything else falls back to auto-detection. When \p Warning is
/// non-null and the spec was non-empty but unusable, an explanatory
/// message is stored into it (left untouched otherwise). Exposed for
/// testing; activeIsa() applies it to getenv("IGEN_ISA") and prints the
/// warning to stderr once per process.
Isa resolveIsaFromSpec(const char *Spec, std::string *Warning = nullptr);

/// Short lowercase name ("scalar", "sse2", "avx", "avx2").
const char *isaName(Isa I);

/// Pins the dispatcher to \p I for this process (clamped to a supported
/// tier). Testing/benchmarking hook; not thread-safe against concurrent
/// kernel launches.
void forceIsa(Isa I);

/// Drops the pin (and the cached selection): the next activeIsa() call
/// re-reads IGEN_ISA / CPUID.
void clearForcedIsa();

/// Kernel table of a specific tier (must be supported).
const KernelTable &kernelTableFor(Isa I);

/// Kernel table of the active tier.
const KernelTable &kernels();

} // namespace igen::runtime

#endif // IGEN_RUNTIME_CPUDISPATCH_H
