//===- CpuDispatch.h - Runtime ISA selection for batched kernels -*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU dispatch for the batched interval array kernels. Each ISA
/// tier (scalar, SSE2, AVX, AVX2+FMA, AVX-512) provides one KernelTable,
/// compiled in its own translation unit with the matching -march flags; the
/// dispatcher picks the best supported table at first use via CPUID
/// (__builtin_cpu_supports).
///
/// The selection can be overridden two ways:
///  * environment: IGEN_ISA=scalar|sse2|avx|avx2|avx512 (read when the
///    cached selection is empty; unsupported or unknown values fall back to
///    auto-detection with a warning), and
///  * programmatically: forceIsa() / clearForcedIsa(), used by the tests
///    and benchmarks to exercise every tier in one process.
///
/// This header deliberately includes no intrinsics so that per-ISA kernel
/// translation units can include it under any -march setting.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_RUNTIME_CPUDISPATCH_H
#define IGEN_RUNTIME_CPUDISPATCH_H

#include "interval/Interval.h"

#include <cstddef>
#include <string>

namespace igen {
struct DdInterval; // interval/DdInterval.h
} // namespace igen

namespace igen::runtime {

/// ISA tiers, ordered from most portable to most capable. Avx512 requires
/// AVX-512 F+DQ+VL and handles batch tails with masked lanes instead of a
/// scalar remainder loop.
enum class Isa { Scalar = 0, Sse2 = 1, Avx = 2, Avx2Fma = 3, Avx512 = 4 };

inline constexpr int NumIsas = 5;

/// Signature of the single-input elementwise kernels (exp/log/sin/cos and
/// sqrt share it).
using ElemFn = void (*)(Interval *Dst, const Interval *X, size_t N);

/// One function pointer per batched elementwise kernel. All kernels require
/// upward rounding (established by the iarr_* wrappers) and permit
/// Dst == X/Y/A/B/C aliasing of whole arrays (element I only reads inputs
/// at index I).
struct KernelTable {
  const char *Name;
  void (*Add)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  void (*Sub)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  void (*Mul)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  /// Elementwise A*B + C. The AVX2+FMA tier fuses the candidate products
  /// with the addend (single rounding: tighter and sound); other tiers
  /// compose iAdd(iMul(a, b), c).
  void (*Fma)(Interval *Dst, const Interval *A, const Interval *B,
              const Interval *C, size_t N);
  /// Elementwise X * S for a fixed interval scalar S.
  void (*Scale)(Interval *Dst, const Interval *X, Interval S, size_t N);
  /// Elementwise X / Y. Every tier routes each element through the same
  /// sign-specialized lowering the scalar tier uses (divisor strictly
  /// positive / strictly negative / generic case analysis), and the
  /// vector fast paths reproduce the scalar screen decisions exactly, so
  /// the tiers are bit-identical on *all* inputs — including divisors
  /// containing zero, which degrade to the scalar half-line/entire/NaN
  /// case analysis per element.
  void (*Div)(Interval *Dst, const Interval *X, const Interval *Y, size_t N);
  /// Elementwise sqrt(X), bit-identical across tiers (the vector fast
  /// path reproduces sqrtRoundDown; anything outside lo in (0, inf),
  /// hi >= 0 falls back to scalar iSqrt per element).
  ElemFn Sqrt;
  /// Elementwise certified polynomial elementary functions
  /// (iExpFast-family semantics, see interval/PolyKernels.h). The SIMD
  /// tiers vectorize the exp/log point cores across both endpoints and
  /// mirror the scalar operation sequence exactly, so every lane is
  /// bit-identical to the scalar tier; intervals outside the fast domain
  /// take the per-element scalar fallback.
  void (*Exp)(Interval *Dst, const Interval *X, size_t N);
  void (*Log)(Interval *Dst, const Interval *X, size_t N);
  void (*Sin)(Interval *Dst, const Interval *X, size_t N);
  void (*Cos)(Interval *Dst, const Interval *X, size_t N);
};

/// One function pointer per batched double-double-interval (ddi) kernel;
/// the escalation targets of the adaptive-precision work. Only two tiers
/// exist (scalar and AVX2+FMA — the DdSimd layout wants 256-bit FMA); the
/// dispatcher maps every Isa onto the best available one.
struct DdKernelTable {
  const char *Name;
  void (*Add)(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
              size_t N);
  void (*Sub)(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
              size_t N);
  void (*Mul)(DdInterval *Dst, const DdInterval *X, const DdInterval *Y,
              size_t N);
  /// Composed A*B + C (ddiAdd(ddiMul(a, b), c)) on every tier: the dd
  /// error-free transformations already carry the products exactly, so
  /// there is no fused/unfused split like the double table has.
  void (*Fma)(DdInterval *Dst, const DdInterval *A, const DdInterval *B,
              const DdInterval *C, size_t N);
};

/// True if the running CPU can execute the given tier.
bool isaSupported(Isa I);

/// Best tier the running CPU supports.
Isa detectIsa();

/// The tier in effect: forced > IGEN_ISA env override > CPUID detection.
Isa activeIsa();

/// Resolves an IGEN_ISA-style spec: a recognized, CPU-supported tier name
/// wins; anything else falls back to auto-detection. When \p Warning is
/// non-null and the spec was non-empty but unusable, an explanatory
/// message is stored into it (left untouched otherwise). Exposed for
/// testing; activeIsa() applies it to getenv("IGEN_ISA") and prints the
/// warning to stderr once per process.
Isa resolveIsaFromSpec(const char *Spec, std::string *Warning = nullptr);

/// Short lowercase name ("scalar", "sse2", "avx", "avx2", "avx512").
const char *isaName(Isa I);

/// Pins the dispatcher to \p I for this process (clamped to a supported
/// tier). Testing/benchmarking hook; not thread-safe against concurrent
/// kernel launches.
void forceIsa(Isa I);

/// Drops the pin (and the cached selection): the next activeIsa() call
/// re-reads IGEN_ISA / CPUID.
void clearForcedIsa();

/// Kernel table of a specific tier (must be supported).
const KernelTable &kernelTableFor(Isa I);

/// Kernel table of the active tier.
const KernelTable &kernels();

/// ddi kernel table of a specific tier (must be supported). Tiers below
/// Avx2Fma share the scalar dd table; Avx2Fma and above use the DdSimd
/// one.
const DdKernelTable &ddKernelTableFor(Isa I);

/// ddi kernel table of the active tier.
const DdKernelTable &ddKernels();

/// Verifies that every KernelTable and DdKernelTable row is populated
/// (non-null) for every Isa, so a new op can never silently fall through
/// to a null pointer on some tier. Returns true when complete; otherwise
/// false, and when \p Missing is non-null, stores a "tier.op" list of the
/// holes. Debug builds also assert this on first dispatch.
bool kernelTablesComplete(std::string *Missing = nullptr);

} // namespace igen::runtime

#endif // IGEN_RUNTIME_CPUDISPATCH_H
