//===- AffineForm.cpp - Sound affine arithmetic -------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "affine/AffineForm.h"

#include "interval/Rounding.h"

#include <algorithm>
#include <atomic>
#include <cmath>

using namespace igen;

namespace {

std::atomic<uint32_t> NextSymbol{1};

uint32_t freshSymbol() {
  return NextSymbol.fetch_add(1, std::memory_order_relaxed);
}

/// Upward-rounded |X|.
double absUp(double X) { return std::fabs(X); }

/// a+b rounded up and the width of its rounding enclosure: the caller
/// keeps the up value and absorbs the gap.
struct DirSum {
  double Up;
  double Gap; ///< RU(a+b) - RD(a+b) >= |rounding error|
};

DirSum addDir(double A, double B) {
  assertRoundUpward();
  double Up = A + B;
  double Down = -((-A) - B);
  return {Up, Up - Down};
}

DirSum mulDir(double A, double B) {
  assertRoundUpward();
  double Up = A * B;
  double Down = -((-A) * B);
  return {Up, Up - Down};
}

} // namespace

void AffineForm::absorb(double Err) {
  assertRoundUpward();
  // New error terms become a *fresh noise symbol* rather than symbol-free
  // slack: a fresh symbol's coefficient propagates linearly (signed)
  // through later operations, so contracting dynamics (e.g. a stable
  // Henon orbit) can actually shrink it; symbol-free slack would be
  // amplified through absolute values only.
  if (Err > 0.0)
    Terms.push_back({freshSymbol(), absUp(Err)});
}

AffineForm AffineForm::fromPoint(double X) {
  AffineForm F;
  F.Center = X;
  return F;
}

AffineForm AffineForm::fromInterval(double Lo, double Hi) {
  assertRoundUpward();
  AffineForm F;
  double Mid = 0.5 * Lo + 0.5 * Hi; // RU; covered by radius below
  double RadHi = Hi - Mid;          // RU(hi - mid) >= hi - mid
  double RadLo = Mid - Lo;          // RU(mid - lo) >= mid - lo
  double Rad = RadHi > RadLo ? RadHi : RadLo;
  F.Center = Mid;
  if (Rad > 0.0)
    F.Terms.push_back({freshSymbol(), Rad});
  return F;
}

double AffineForm::radius() const {
  assertRoundUpward();
  double R = Extra;
  for (const auto &[_, C] : Terms)
    R = R + absUp(C);
  return R;
}

Interval AffineForm::toInterval() const {
  assertRoundUpward();
  double R = radius();
  if (std::isnan(Center) || std::isnan(R))
    return Interval::nan();
  // lo = RD(center - rad) = -RU(rad - center); hi = RU(center + rad).
  return Interval(R - Center, Center + R);
}

AffineForm AffineForm::operator-() const {
  AffineForm F = *this;
  F.Center = -F.Center;
  for (auto &[_, C] : F.Terms)
    C = -C;
  return F;
}

AffineForm AffineForm::operator+(const AffineForm &O) const {
  assertRoundUpward();
  AffineForm F;
  DirSum C0 = addDir(Center, O.Center);
  F.Center = C0.Up;
  F.Extra = Extra + O.Extra;
  double NewErr = C0.Gap;
  F.Terms.reserve(Terms.size() + O.Terms.size() + 1);
  size_t I = 0, J = 0;
  while (I < Terms.size() || J < O.Terms.size()) {
    if (J >= O.Terms.size() ||
        (I < Terms.size() && Terms[I].first < O.Terms[J].first)) {
      F.Terms.push_back(Terms[I++]);
    } else if (I >= Terms.size() || O.Terms[J].first < Terms[I].first) {
      F.Terms.push_back(O.Terms[J++]);
    } else {
      DirSum C = addDir(Terms[I].second, O.Terms[J].second);
      if (C.Up != 0.0)
        F.Terms.push_back({Terms[I].first, C.Up});
      NewErr = NewErr + C.Gap;
      ++I;
      ++J;
    }
  }
  F.absorb(NewErr);
  F.condense(AutoCondenseLimit);
  return F;
}

AffineForm AffineForm::operator-(const AffineForm &O) const {
  return *this + (-O);
}

AffineForm AffineForm::operator*(const AffineForm &O) const {
  assertRoundUpward();
  AffineForm F;
  DirSum C0 = mulDir(Center, O.Center);
  F.Center = C0.Up;
  double NewErr = C0.Gap;
  // Linear terms: x0*yi + y0*xi.
  size_t I = 0, J = 0;
  while (I < Terms.size() || J < O.Terms.size()) {
    uint32_t Sym;
    double XC = 0.0, YC = 0.0;
    if (J >= O.Terms.size() ||
        (I < Terms.size() && Terms[I].first < O.Terms[J].first)) {
      Sym = Terms[I].first;
      XC = Terms[I++].second;
    } else if (I >= Terms.size() || O.Terms[J].first < Terms[I].first) {
      Sym = O.Terms[J].first;
      YC = O.Terms[J++].second;
    } else {
      Sym = Terms[I].first;
      XC = Terms[I++].second;
      YC = O.Terms[J++].second;
    }
    DirSum P1 = mulDir(Center, YC);
    DirSum P2 = mulDir(O.Center, XC);
    DirSum S = addDir(P1.Up, P2.Up);
    if (S.Up != 0.0)
      F.Terms.push_back({Sym, S.Up});
    NewErr = NewErr + P1.Gap + P2.Gap + S.Gap;
  }
  // Nonlinear remainder: rad(x)*rad(y) (the classical conservative
  // bound), computed upward. Radii exclude the centers.
  double RX = Extra, RY = O.Extra;
  for (const auto &[_, C] : Terms)
    RX = RX + absUp(C);
  for (const auto &[_, C] : O.Terms)
    RY = RY + absUp(C);
  NewErr = NewErr + RX * RY;
  // The input Extras (uncorrelated slack) scale with the opposite center.
  NewErr = NewErr + absUp(Center) * O.Extra + absUp(O.Center) * Extra;
  F.absorb(NewErr);
  F.condense(AutoCondenseLimit);
  return F;
}

AffineForm AffineForm::reciprocal() const {
  assertRoundUpward();
  Interval X = toInterval();
  double Lo = X.lo(), Hi = X.hi();
  AffineForm F;
  if (!(Lo > 0.0) && !(Hi < 0.0)) {
    // 0 inside: unbounded result.
    F.Center = 0.0;
    F.Extra = std::numeric_limits<double>::infinity();
    return F;
  }
  // Chebyshev linear approximation of 1/t over [Lo, Hi]:
  //   alpha = -1/(Lo*Hi); remainder bounded rigorously below with
  //   interval arithmetic over the candidate extrema.
  Interval ILo = Interval::fromPoint(Lo), IHi = Interval::fromPoint(Hi);
  Interval Alpha = iNeg(iDiv(Interval::fromPoint(1.0), iMul(ILo, IHi)));
  double AlphaMid = Alpha.hi(); // any representative; error bounded below
  // phi(t) = 1/t - alpha*t at the endpoints and at t* = +-sqrt(Lo*Hi).
  auto Phi = [&](const Interval &T) {
    return iSub(iDiv(Interval::fromPoint(1.0), T),
                iMul(Interval::fromPoint(AlphaMid), T));
  };
  Interval PhiLo = Phi(ILo);
  Interval PhiHi = Phi(IHi);
  Interval TStar = iSqrt(iMul(iAbs(ILo), iAbs(IHi)));
  if (Hi < 0.0)
    TStar = iNeg(TStar);
  Interval PhiStar = Phi(TStar);
  Interval PhiRange = iHull(iHull(PhiLo, PhiHi), PhiStar);
  // beta = midpoint of the phi range; delta covers both sides (computed
  // upward, so it over-approximates).
  double Beta = 0.5 * PhiRange.hi() + 0.5 * PhiRange.lo();
  double DeltaHi = PhiRange.hi() - Beta;
  double DeltaLo = Beta - PhiRange.lo();
  double Delta = DeltaHi > DeltaLo ? DeltaHi : DeltaLo;
  // Result: alpha*x + beta +- delta.
  DirSum C0 = mulDir(AlphaMid, Center);
  DirSum C0b = addDir(C0.Up, Beta);
  F.Center = C0b.Up;
  double NewErr = Extra * absUp(AlphaMid) + Delta + C0.Gap + C0b.Gap;
  F.Terms.reserve(Terms.size() + 1);
  for (const auto &[Sym, C] : Terms) {
    DirSum P = mulDir(AlphaMid, C);
    F.Terms.push_back({Sym, P.Up});
    NewErr = NewErr + P.Gap;
  }
  F.absorb(NewErr);
  return F;
}

AffineForm AffineForm::operator/(const AffineForm &O) const {
  return *this * O.reciprocal();
}

void AffineForm::condense(size_t MaxTerms) {
  assertRoundUpward();
  if (Terms.size() <= MaxTerms)
    return;
  // Fold the smallest-magnitude coefficients into Extra.
  std::vector<std::pair<uint32_t, double>> Sorted = Terms;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) {
              return std::fabs(A.second) < std::fabs(B.second);
            });
  size_t ToFold = Terms.size() - MaxTerms / 2;
  std::vector<uint32_t> FoldIds;
  FoldIds.reserve(ToFold);
  for (size_t I = 0; I < ToFold; ++I) {
    Extra = Extra + absUp(Sorted[I].second);
    FoldIds.push_back(Sorted[I].first);
  }
  std::sort(FoldIds.begin(), FoldIds.end());
  std::vector<std::pair<uint32_t, double>> Kept;
  Kept.reserve(Terms.size() - ToFold);
  for (const auto &T : Terms)
    if (!std::binary_search(FoldIds.begin(), FoldIds.end(), T.first))
      Kept.push_back(T);
  Terms = std::move(Kept);
}
