//===- AffineForm.h - Sound affine arithmetic -------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine arithmetic (de Figueiredo-Stolfi) with sound floating-point
/// error accounting -- the YalAA substitute for the comparison in
/// Section VII-C. A value is represented as
///
///   x = x0 + sum_i xi * eps_i  (+/- Extra),   eps_i in [-1, 1]
///
/// where the eps_i are shared noise symbols (preserving linear
/// correlations between variables, which plain intervals lose) and Extra
/// is a symbol-free error radius absorbing rounding errors, nonlinear
/// remainders and condensed terms.
///
/// Soundness: every coefficient is computed with upward rounding and the
/// gap to the downward-rounded value is added to Extra, so the concretized
/// interval always contains the exact real result. Verified against the
/// interval core and long-double references in AffineTest.
///
/// Operations must run inside a RoundUpwardScope (like the interval core).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_AFFINE_AFFINEFORM_H
#define IGEN_AFFINE_AFFINEFORM_H

#include "interval/Interval.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace igen {

class AffineForm {
public:
  AffineForm() = default;

  /// The exact point \p X (no noise symbols).
  static AffineForm fromPoint(double X);

  /// A fresh independent value ranging over [Lo, Hi] (one new symbol).
  static AffineForm fromInterval(double Lo, double Hi);

  /// A fresh value covering the interval \p I.
  static AffineForm fromInterval(const Interval &I) {
    return fromInterval(I.lo(), I.hi());
  }

  /// Concretization: the interval [x0 - rad, x0 + rad], outward rounded.
  Interval toInterval() const;

  /// Total deviation radius (sum of |coefficients| plus Extra), an upper
  /// bound.
  double radius() const;

  double center() const { return Center; }
  size_t numTerms() const { return Terms.size(); }

  AffineForm operator-() const;
  AffineForm operator+(const AffineForm &O) const;
  AffineForm operator-(const AffineForm &O) const;
  AffineForm operator*(const AffineForm &O) const;
  AffineForm operator/(const AffineForm &O) const;

  /// 1/x via a Chebyshev linear approximation with a rigorously bounded
  /// remainder; requires 0 outside the concretization (otherwise the
  /// result is the unbounded form).
  AffineForm reciprocal() const;

  /// Folds the smallest-magnitude terms into Extra until at most
  /// \p MaxTerms noise symbols remain (Kashiwagi-style reduction).
  void condense(size_t MaxTerms);

  /// Maximum number of noise symbols before ops condense automatically.
  static constexpr size_t AutoCondenseLimit = 96;

private:
  /// Adds |Err| (an upper bound of an absolute error) to Extra.
  void absorb(double Err);

  double Center = 0.0;
  double Extra = 0.0; ///< symbol-free radius, >= 0
  /// (symbol id, coefficient), ascending by id.
  std::vector<std::pair<uint32_t, double>> Terms;
};

} // namespace igen

#endif // IGEN_AFFINE_AFFINEFORM_H
