//===- Movability.h - Result-movability lattice for --tier ------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides, per tier-eligible function, whether re-executing the function
/// at the double-double tier could ever produce a tighter enclosure than
/// the f64i tier did ("movable"), or whether the two tiers provably
/// compute the identical interval ("immovable"). The tiering transform
/// uses this to skip the ddi rerun for regions whose wide output cannot
/// improve: wide because the *inputs* are wide, not because f64 outward
/// rounding inflated it.
///
/// The key fact making immovability common enough to matter is the
/// snapshot ABI: the ddi clone receives ia_promote_f64_dd of the
/// wrapper's f64i live-ins, an *exact* injection — both tiers start from
/// bit-identical intervals. Exactness is then preserved by every
/// operation whose interval transfer function introduces no rounding
/// (negation, abs, min/max, join, floor/ceil, float casts, copies) and
/// lost exactly where the tiers can differ:
///
///   * rounded arithmetic: + - * / sqrt and the elementary functions
///     (f64 rounds outward each step; dd rounds less);
///   * non-integral float literals (the dd clone lifts `0.1` to a
///     tighter enclosure than f64i can represent);
///   * tolerance widening (ia_set_tol_dd computes p +/- tol at dd
///     precision);
///   * loads after a floating store (the clone's stores narrow dd to
///     f64i memory, so a reread is not the f64i-pass value).
///
/// A function's result is immovable when every returned value is exact
/// AND every floating comparison has exact operands (exact operands give
/// identical tbool outcomes, hence identical control flow in both
/// tiers). The analysis is a forward dataflow over the set of
/// exact-valued variables, with intersection at branch joins and a
/// descending fixpoint at loops.
///
/// Wrong answers are never unsound — both tiers produce sound enclosures
/// regardless — but the two error directions differ in cost: claiming
/// "movable" for an immovable region wastes a rerun; claiming
/// "immovable" for a movable one forfeits precision the user asked for.
/// The rules above therefore only claim immovability on airtight
/// identical-value arguments, defaulting to movable everywhere else.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_OPT_MOVABILITY_H
#define IGEN_OPT_MOVABILITY_H

#include "frontend/AST.h"

namespace igen {

struct MovabilityInfo {
  /// Every return value is exact and control flow is tier-independent:
  /// a ddi rerun provably returns the identical interval, so the tiering
  /// transform must not re-execute this region.
  bool ResultImmovable = false;

  /// No floating comparison with movable operands (loops/branches take
  /// the same path in both tiers). Exposed for tests; ResultImmovable
  /// implies it.
  bool ControlExact = false;
};

/// Runs the movability analysis over one function body. Pure analysis;
/// requires a type-checked AST with a body.
MovabilityInfo analyzeMovability(const FunctionDecl &F);

} // namespace igen

#endif // IGEN_OPT_MOVABILITY_H
