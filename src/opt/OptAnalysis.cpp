//===- OptAnalysis.cpp - Mid-end facts for interval lowering --------------===//
//
// Value-range/sign analysis plus the syntactic CSE/LICM collectors.
//
// Soundness model for the range part: a ValueFact for an expression bounds
// the *endpoints* of the runtime enclosure the transformed code computes
// for that expression. Transfer functions run in the host's nearest
// arithmetic and nudge every computed bound one ulp outward (nextDown /
// nextUp), which covers the target's directed rounding regardless of the
// rounding mode either side uses: for any mode, fl(s) is one of the two
// doubles bracketing the real s, so nextDown(fl(s)) <= s <= nextUp(fl(s)).
// Anything the analysis cannot bound becomes Top, which only costs
// performance (a generic runtime call), never soundness.
//
// Runtime invariant relied upon throughout: enclosures are either fully
// valid (both endpoints non-NaN) or fully NaN; partially-NaN intervals do
// not occur (see src/interval/Interval.h).
//
//===----------------------------------------------------------------------===//

#include "opt/OptAnalysis.h"

#include "analysis/ReductionAnalysis.h"
#include "frontend/Sema.h"
#include "interval/Ulp.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

using namespace igen;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// One ulp below \p F: a lower bound for any real that rounds to F under
/// any rounding mode. NaN collapses to -inf (no information).
double outDown(double F) {
  if (std::isnan(F) || F == -Inf)
    return -Inf;
  return nextDown(F);
}

/// One ulp above \p F (see outDown).
double outUp(double F) {
  if (std::isnan(F) || F == Inf)
    return Inf;
  return nextUp(F);
}

ValueFact joinFacts(const ValueFact &A, const ValueFact &B) {
  ValueFact R;
  R.Lo = std::min(A.Lo, B.Lo);
  R.Hi = std::max(A.Hi, B.Hi);
  R.NoNaN = A.NoNaN && B.NoNaN;
  return R;
}

bool sameFact(const ValueFact &A, const ValueFact &B) {
  return A.Lo == B.Lo && A.Hi == B.Hi && A.NoNaN == B.NoNaN;
}

ValueFact vNeg(const ValueFact &A) {
  ValueFact R;
  R.Lo = -A.Hi;
  R.Hi = -A.Lo;
  R.NoNaN = A.NoNaN;
  return R;
}

ValueFact vAdd(const ValueFact &A, const ValueFact &B) {
  if (!A.NoNaN || !B.NoNaN)
    return ValueFact::top();
  // Opposite infinities can meet at runtime and produce NaN endpoints.
  if ((A.Lo == -Inf && B.Hi == Inf) || (A.Hi == Inf && B.Lo == -Inf))
    return ValueFact::top();
  return ValueFact::range(outDown(A.Lo + B.Lo), outUp(A.Hi + B.Hi));
}

ValueFact vSub(const ValueFact &A, const ValueFact &B) {
  return vAdd(A, vNeg(B));
}

ValueFact vMul(const ValueFact &A, const ValueFact &B) {
  if (!A.NoNaN || !B.NoNaN)
    return ValueFact::top();
  const double P[4] = {A.Lo * B.Lo, A.Lo * B.Hi, A.Hi * B.Lo, A.Hi * B.Hi};
  double Lo = Inf, Hi = -Inf;
  bool SawNaN = false;
  for (double V : P) {
    if (std::isnan(V)) {
      // 0 * inf corner: the runtime slow path maps it to 0.
      SawNaN = true;
      continue;
    }
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  if (SawNaN) {
    Lo = std::min(Lo, 0.0);
    Hi = std::max(Hi, 0.0);
  }
  ValueFact R = ValueFact::range(outDown(Lo), outUp(Hi));
  // Exact sign information survives directed rounding (0 is a double, so
  // rounding a nonnegative real down stays >= 0, and symmetrically).
  if ((A.provenNonNeg() && B.provenNonNeg()) ||
      (A.provenNonPos() && B.provenNonPos()))
    R.Lo = std::max(R.Lo, 0.0);
  if ((A.provenNonNeg() && B.provenNonPos()) ||
      (A.provenNonPos() && B.provenNonNeg()))
    R.Hi = std::min(R.Hi, 0.0);
  return R;
}

ValueFact vDiv(const ValueFact &A, const ValueFact &B) {
  if (!A.NoNaN || !B.NoNaN)
    return ValueFact::top();
  const bool PosDen = B.provenPos(), NegDen = B.provenNeg();
  if (!PosDen && !NegDen)
    return ValueFact::top(); // divisor may contain 0: anything can happen
  // A zero-free, NaN-free divisor keeps the runtime out of the NaN paths;
  // the worst case (inf/inf) falls back to the entire line, not NaN.
  ValueFact R;
  R.NoNaN = true;
  const bool InfNum = A.Lo == -Inf || A.Hi == Inf;
  const bool InfDen = PosDen ? B.Hi == Inf : B.Lo == -Inf;
  if (InfNum && InfDen)
    return R; // [-inf, inf], NoNaN
  const double P[4] = {A.Lo / B.Lo, A.Lo / B.Hi, A.Hi / B.Lo, A.Hi / B.Hi};
  double Lo = Inf, Hi = -Inf;
  for (double V : P) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  R.Lo = outDown(Lo);
  R.Hi = outUp(Hi);
  if ((A.provenNonNeg() && PosDen) || (A.provenNonPos() && NegDen))
    R.Lo = std::max(R.Lo, 0.0);
  if ((A.provenNonNeg() && NegDen) || (A.provenNonPos() && PosDen))
    R.Hi = std::min(R.Hi, 0.0);
  return R;
}

ValueFact vSqrt(const ValueFact &A) {
  if (!A.provenNonNeg())
    return ValueFact::top(); // a negative lo endpoint yields NaN
  ValueFact R;
  R.NoNaN = true;
  R.Lo = A.Lo > 0.0 ? std::max(0.0, outDown(std::sqrt(A.Lo))) : 0.0;
  R.Hi = A.Hi == Inf ? Inf : outUp(std::sqrt(A.Hi));
  return R;
}

ValueFact vAbs(const ValueFact &A) {
  // iAbs only selects/negates existing endpoints; no rounding happens.
  ValueFact R;
  R.NoNaN = A.NoNaN;
  if (A.Lo >= 0.0) {
    R.Lo = A.Lo;
    R.Hi = A.Hi;
  } else if (A.Hi <= 0.0) {
    R.Lo = -A.Hi;
    R.Hi = -A.Lo;
  } else {
    R.Lo = 0.0;
    R.Hi = std::max(-A.Lo, A.Hi);
  }
  return R;
}

/// Widens \p F outward to the single-precision grid, for casts to float.
ValueFact toFloatGrid(const ValueFact &A) {
  ValueFact R;
  R.NoNaN = A.NoNaN; // float overflow saturates to +-inf, never NaN
  R.Lo = A.Lo == -Inf
             ? -Inf
             : static_cast<double>(
                   std::nextafterf(static_cast<float>(A.Lo), -INFINITY));
  R.Hi = A.Hi == Inf
             ? Inf
             : static_cast<double>(
                   std::nextafterf(static_cast<float>(A.Hi), INFINITY));
  return R;
}

bool finiteBounds(const ValueFact &A) {
  return A.NoNaN && A.Lo > -Inf && A.Hi < Inf;
}

//===----------------------------------------------------------------------===//
// Range analysis
//===----------------------------------------------------------------------===//

using VarEnv = std::map<const VarDecl *, ValueFact>;

ValueFact envGet(const VarEnv &E, const VarDecl *D) {
  auto It = E.find(D);
  return It == E.end() ? ValueFact::top() : It->second;
}

VarEnv joinEnv(const VarEnv &A, const VarEnv &B) {
  VarEnv R;
  for (const auto &[D, F] : A)
    R[D] = joinFacts(F, envGet(B, D));
  for (const auto &[D, F] : B)
    if (!A.count(D))
      R[D] = ValueFact::top(); // only one side has info: unknown before
  return R;
}

bool sameEnv(const VarEnv &A, const VarEnv &B) {
  for (const auto &[D, F] : A)
    if (!sameFact(F, envGet(B, D)))
      return false;
  for (const auto &[D, F] : B)
    if (!A.count(D) && !F.isTop())
      return false;
  return true;
}

class RangeAnalyzer {
public:
  RangeAnalyzer(OptFunctionInfo &Info, const OptOptions &Opts)
      : Info(Info), Opts(Opts) {}

  void run(const FunctionDecl &F) {
    if (F.Body)
      findAddrTaken(F.Body);
    VarEnv Env; // parameters are runtime doubles: unknown, possibly NaN
    if (F.Body)
      analyzeStmt(F.Body, Env);
  }

private:
  OptFunctionInfo &Info;
  const OptOptions &Opts;
  std::set<const VarDecl *> AddrTaken;
  bool Record = true;

  bool tracked(const VarDecl *D) const {
    return D && D->Ty && D->Ty->isFloating() && !AddrTaken.count(D);
  }

  void record(const Expr *E, const ValueFact &F) {
    if (!Record || F.isTop())
      return;
    auto It = Info.Facts.find(E);
    if (It == Info.Facts.end())
      Info.Facts.emplace(E, F);
    else
      It->second = joinFacts(It->second, F);
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ValueFact evalExpr(const Expr *E, VarEnv &Env) {
    ValueFact F = evalExprImpl(E, Env);
    if (std::isnan(F.Lo))
      F.Lo = -Inf;
    if (std::isnan(F.Hi))
      F.Hi = Inf;
    record(E, F);
    return F;
  }

  ValueFact evalExprImpl(const Expr *E, VarEnv &Env) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral: {
      const double V = static_cast<double>(cast<IntLiteralExpr>(E)->Value);
      if (std::fabs(V) < 0x1p53)
        return ValueFact::range(V, V);
      return ValueFact::range(outDown(V), outUp(V));
    }
    case Expr::Kind::FloatLiteral:
      return literalFact(cast<FloatLiteralExpr>(E));
    case Expr::Kind::DeclRef: {
      const VarDecl *D = cast<DeclRefExpr>(E)->Decl;
      return tracked(D) ? envGet(Env, D) : ValueFact::top();
    }
    case Expr::Kind::Paren:
      return evalExpr(cast<ParenExpr>(E)->Sub, Env);
    case Expr::Kind::Unary:
      return evalUnary(cast<UnaryExpr>(E), Env);
    case Expr::Kind::Binary:
      return evalBinary(cast<BinaryExpr>(E), Env);
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      evalExpr(C->Cond, Env);
      ValueFact T = evalExpr(C->Then, Env);
      ValueFact El = evalExpr(C->Else, Env);
      return joinFacts(T, El);
    }
    case Expr::Kind::Call:
      return evalCall(cast<CallExpr>(E), Env);
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      evalExpr(I->Base, Env);
      evalExpr(I->Idx, Env);
      return ValueFact::top(); // memory contents are unknown
    }
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(E);
      ValueFact Sub = evalExpr(C->Sub, Env);
      if (!C->To || !C->To->isFloating())
        return ValueFact::top();
      if (C->To->kind() == Type::Kind::Float)
        return toFloatGrid(Sub);
      return Sub; // widening to double is value-preserving
    }
    }
    return ValueFact::top();
  }

  /// Mirrors the transformer's constant lifting (IntervalTransform.cpp,
  /// FloatLiteral case): integer-valued doubles become exact points,
  /// everything else the bracketing [prev(v), next(v)] pair.
  ValueFact literalFact(const FloatLiteralExpr *F) {
    const double V = F->Value;
    if (std::isnan(V))
      return ValueFact::top();
    if (F->IsTolerance) {
      const double H = outUp(std::fabs(V));
      return ValueFact::range(-H, H);
    }
    if (F->IsFloatSuffix) {
      ValueFact R = ValueFact::range(V, V);
      return toFloatGrid(R);
    }
    if (V == std::trunc(V) && std::fabs(V) < 0x1p53)
      return ValueFact::range(V, V);
    return ValueFact::range(nextDown(V), nextUp(V));
  }

  ValueFact evalUnary(const UnaryExpr *U, VarEnv &Env) {
    switch (U->O) {
    case UnaryExpr::Op::Neg:
      return vNeg(evalExpr(U->Sub, Env));
    case UnaryExpr::Op::Plus:
      return evalExpr(U->Sub, Env);
    case UnaryExpr::Op::PreInc:
    case UnaryExpr::Op::PreDec:
    case UnaryExpr::Op::PostInc:
    case UnaryExpr::Op::PostDec: {
      evalExpr(U->Sub, Env);
      if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(U->Sub)))
        if (tracked(Ref->Decl))
          Env[Ref->Decl] = ValueFact::top();
      return ValueFact::top();
    }
    case UnaryExpr::Op::Deref:
      evalExpr(U->Sub, Env);
      return ValueFact::top();
    default:
      evalExpr(U->Sub, Env);
      return ValueFact::top();
    }
  }

  ValueFact evalBinary(const BinaryExpr *B, VarEnv &Env) {
    if (B->isAssignment())
      return evalAssignment(B, Env);
    ValueFact L = evalExpr(B->LHS, Env);
    ValueFact R = evalExpr(B->RHS, Env);
    const bool Floating = B->type() && B->type()->isFloating();
    if (!Floating)
      return ValueFact::top();
    switch (B->O) {
    case BinaryExpr::Op::Add:
      return vAdd(L, R);
    case BinaryExpr::Op::Sub:
      return vSub(L, R);
    case BinaryExpr::Op::Mul:
      return vMul(L, R);
    case BinaryExpr::Op::Div:
      return vDiv(L, R);
    default:
      return ValueFact::top();
    }
  }

  ValueFact evalAssignment(const BinaryExpr *B, VarEnv &Env) {
    // Record the LHS with its pre-store fact: that is the value a
    // compound assignment reads.
    const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS));
    if (Ref) {
      ValueFact Old =
          tracked(Ref->Decl) ? envGet(Env, Ref->Decl) : ValueFact::top();
      record(B->LHS, Old);
      if (B->LHS != ignoreParens(B->LHS))
        record(ignoreParens(B->LHS), Old);
    } else {
      evalExpr(B->LHS, Env); // records index/deref subexpressions
    }
    ValueFact R = evalExpr(B->RHS, Env);
    ValueFact New = ValueFact::top();
    if (Ref && tracked(Ref->Decl)) {
      ValueFact Old = envGet(Env, Ref->Decl);
      switch (B->O) {
      case BinaryExpr::Op::Assign:
        New = R;
        break;
      case BinaryExpr::Op::AddAssign:
        New = vAdd(Old, R);
        break;
      case BinaryExpr::Op::SubAssign:
        New = vSub(Old, R);
        break;
      case BinaryExpr::Op::MulAssign:
        New = vMul(Old, R);
        break;
      case BinaryExpr::Op::DivAssign:
        New = vDiv(Old, R);
        break;
      default:
        break;
      }
      Env[Ref->Decl] = New;
    }
    return New;
  }

  ValueFact evalCall(const CallExpr *C, VarEnv &Env) {
    std::vector<ValueFact> Args;
    Args.reserve(C->Args.size());
    for (const Expr *A : C->Args)
      Args.push_back(evalExpr(A, Env));
    if (classifyCallee(C->Callee) != CalleeKind::MathFunction)
      return ValueFact::top();
    std::string N = C->Callee;
    if (N.size() > 1 && N.back() == 'f' && N != "fabsf")
      N.pop_back(); // sinf -> sin etc.
    if (N == "fabsf")
      N = "fabs";
    const ValueFact A0 = Args.empty() ? ValueFact::top() : Args[0];
    if (N == "sqrt")
      return vSqrt(A0);
    if (N == "fabs")
      return vAbs(A0);
    if (N == "exp")
      return A0.NoNaN ? ValueFact::range(0.0, Inf) : ValueFact::top();
    if ((N == "sin" || N == "cos" || N == "atan") && finiteBounds(A0))
      return ValueFact::range(-2.0, 2.0); // unit range + libm slop
    if (N == "tan" && finiteBounds(A0)) {
      ValueFact R; // poles yield the entire line, but never NaN
      R.NoNaN = true;
      return R;
    }
    if (N == "floor" && A0.NoNaN)
      return ValueFact::range(std::floor(A0.Lo), std::floor(A0.Hi));
    if (N == "ceil" && A0.NoNaN)
      return ValueFact::range(std::ceil(A0.Lo), std::ceil(A0.Hi));
    if ((N == "fmin" || N == "fmax") && Args.size() == 2 && A0.NoNaN &&
        Args[1].NoNaN) {
      const ValueFact &A1 = Args[1];
      if (N == "fmin")
        return ValueFact::range(std::min(A0.Lo, A1.Lo),
                                std::min(A0.Hi, A1.Hi));
      return ValueFact::range(std::max(A0.Lo, A1.Lo),
                              std::max(A0.Hi, A1.Hi));
    }
    return ValueFact::top();
  }

  //===--------------------------------------------------------------------===//
  // Branch-guard refinement
  //===--------------------------------------------------------------------===//

  /// Narrows \p Env assuming the condition evaluated to the given truth
  /// value. Only sound under the Exception branch policy: a branch runs
  /// iff its interval comparison is *certainly* true/false, which both
  /// orders the endpoints and excludes NaN.
  void refineByCond(const Expr *Cond, bool IsTrue, VarEnv &Env) {
    Cond = ignoreParens(Cond);
    if (const auto *U = dynCast<UnaryExpr>(Cond)) {
      if (U->O == UnaryExpr::Op::LogicalNot)
        refineByCond(U->Sub, !IsTrue, Env);
      return;
    }
    const auto *B = dynCast<BinaryExpr>(Cond);
    if (!B)
      return;
    if (B->O == BinaryExpr::Op::LAnd && IsTrue) {
      refineByCond(B->LHS, true, Env);
      refineByCond(B->RHS, true, Env);
      return;
    }
    if (B->O == BinaryExpr::Op::LOr && !IsTrue) {
      refineByCond(B->LHS, false, Env);
      refineByCond(B->RHS, false, Env);
      return;
    }
    if (!B->isComparison())
      return;
    // Normalize to L < R / L <= R by swapping operands for > and >=.
    const Expr *L = B->LHS, *R = B->RHS;
    bool Strict;
    switch (B->O) {
    case BinaryExpr::Op::LT:
      Strict = true;
      break;
    case BinaryExpr::Op::LE:
      Strict = false;
      break;
    case BinaryExpr::Op::GT:
      std::swap(L, R);
      Strict = true;
      break;
    case BinaryExpr::Op::GE:
      std::swap(L, R);
      Strict = false;
      break;
    default:
      return; // ==/!= carry no usable endpoint information
    }
    // tbool semantics (Interval.h): L < R is True iff hi(L) < lo(R) and
    // False iff lo(L) >= hi(R); L <= R is True iff hi(L) <= lo(R) and
    // False iff lo(L) > hi(R). Either verdict orders real (non-NaN)
    // endpoints, so the refined variable also gains NoNaN.
    VarEnv Snapshot = Env;
    auto factOf = [&](const Expr *E) { return evalNoSideEffects(E, Snapshot); };
    auto refineVar = [&](const Expr *Side, bool IsUpper, double Bound,
                         bool StrictBound) {
      const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(Side));
      if (!Ref || !tracked(Ref->Decl))
        return;
      if (!Ref->type() || !Ref->type()->isFloating())
        return;
      ValueFact F = envGet(Env, Ref->Decl);
      F.NoNaN = true;
      if (IsUpper)
        F.Hi = std::min(F.Hi, StrictBound ? outDown(Bound) : Bound);
      else
        F.Lo = std::max(F.Lo, StrictBound ? outUp(Bound) : Bound);
      Env[Ref->Decl] = F;
    };
    const ValueFact LF = factOf(L), RF = factOf(R);
    if (IsTrue) {
      // hi(L) < lo(R) <= RF.Hi  and  LF.Lo <= hi(L) ... lo(R) > ...
      refineVar(L, /*IsUpper=*/true, RF.Hi, Strict);
      refineVar(R, /*IsUpper=*/false, LF.Lo, Strict);
    } else {
      // lo(L) >= hi(R) >= RF.Lo  (strict for <=)
      refineVar(L, /*IsUpper=*/false, RF.Lo, !Strict);
      refineVar(R, /*IsUpper=*/true, LF.Hi, !Strict);
    }
  }

  /// Evaluates an expression for its fact only: no recording, no
  /// environment updates (used on already-evaluated condition operands).
  ValueFact evalNoSideEffects(const Expr *E, VarEnv Scratch) {
    bool Saved = Record;
    Record = false;
    ValueFact F = evalExpr(E, Scratch);
    Record = Saved;
    return F;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void analyzeStmt(const Stmt *S, VarEnv &Env) {
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        analyzeStmt(Sub, Env);
      return;
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls) {
        if (D->Init) {
          ValueFact F = evalExpr(D->Init, Env);
          if (tracked(D))
            Env[D] = F;
        } else if (tracked(D)) {
          Env[D] = ValueFact::top();
        }
      }
      return;
    case Stmt::Kind::ExprStmt:
      evalExpr(cast<ExprStmt>(S)->E, Env);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      evalExpr(I->Cond, Env);
      VarEnv ThenEnv = Env, ElseEnv = Env;
      if (Opts.GuardFacts) {
        refineByCond(I->Cond, true, ThenEnv);
        refineByCond(I->Cond, false, ElseEnv);
      }
      analyzeStmt(I->Then, ThenEnv);
      if (I->Else)
        analyzeStmt(I->Else, ElseEnv);
      Env = joinEnv(ThenEnv, ElseEnv);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (F->Init)
        analyzeStmt(F->Init, Env);
      analyzeLoop(F->Cond, F->Body, F->Inc, Env);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      analyzeLoop(W->Cond, W->Body, nullptr, Env);
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      analyzeLoop(D->Cond, D->Body, nullptr, Env);
      return;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(S)->Value)
        evalExpr(V, Env);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Null:
      return;
    }
  }

  /// Fixpoint over one loop. \p Env enters as the state after the init
  /// statement and leaves as a sound post-loop state (the loop head
  /// invariant, which also covers zero iterations).
  void analyzeLoop(const Expr *Cond, const Stmt *Body, const Expr *Inc,
                   VarEnv &Env) {
    std::set<const VarDecl *> Mod;
    if (Body)
      collectModifiedStmt(Body, Mod);
    if (Cond)
      collectModifiedExpr(Cond, Mod);
    if (Inc)
      collectModifiedExpr(Inc, Mod);
    VarEnv Head = Env;
    // break/continue exit mid-iteration, so the end-of-body join below
    // would not cover them; give up on anything the loop writes.
    const bool HasJump = Body && containsJump(Body);
    if (HasJump)
      for (const VarDecl *D : Mod)
        Head[D] = ValueFact::top();
    const bool Saved = Record;
    Record = false;
    bool Converged = HasJump; // top'd modified vars are already stable
    for (int Iter = 0; Iter < 8 && !Converged; ++Iter) {
      VarEnv B = Head;
      if (Cond)
        evalExpr(Cond, B);
      if (Body)
        analyzeStmt(Body, B);
      if (Inc)
        evalExpr(Inc, B);
      VarEnv New = joinEnv(Head, B);
      if (Iter >= 2)
        widenEnv(New, Head);
      Converged = sameEnv(New, Head);
      Head = New;
    }
    if (!Converged)
      for (const VarDecl *D : Mod)
        Head[D] = ValueFact::top();
    Record = Saved;
    // One recording pass over the stable head state.
    VarEnv B = Head;
    if (Cond)
      evalExpr(Cond, B);
    if (Body)
      analyzeStmt(Body, B);
    if (Inc)
      evalExpr(Inc, B);
    Env = Head;
  }

  /// Accelerates convergence: bounds that are still moving jump to the
  /// nearest of {0, +-inf}, preserving a proven sign where possible.
  void widenEnv(VarEnv &New, const VarEnv &Old) {
    for (auto &[D, F] : New) {
      const ValueFact O = envGet(Old, D);
      if (F.Lo < O.Lo)
        F.Lo = F.Lo >= 0.0 ? 0.0 : -Inf;
      if (F.Hi > O.Hi)
        F.Hi = F.Hi <= 0.0 ? 0.0 : Inf;
    }
  }

  void collectModifiedExpr(const Expr *E, std::set<const VarDecl *> &Mod) {
    switch (E->kind()) {
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->isAssignment())
        if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS)))
          if (Ref->Decl)
            Mod.insert(Ref->Decl);
      collectModifiedExpr(B->LHS, Mod);
      collectModifiedExpr(B->RHS, Mod);
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->O == UnaryExpr::Op::PreInc || U->O == UnaryExpr::Op::PreDec ||
          U->O == UnaryExpr::Op::PostInc || U->O == UnaryExpr::Op::PostDec)
        if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(U->Sub)))
          if (Ref->Decl)
            Mod.insert(Ref->Decl);
      collectModifiedExpr(U->Sub, Mod);
      return;
    }
    case Expr::Kind::Paren:
      collectModifiedExpr(cast<ParenExpr>(E)->Sub, Mod);
      return;
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      collectModifiedExpr(C->Cond, Mod);
      collectModifiedExpr(C->Then, Mod);
      collectModifiedExpr(C->Else, Mod);
      return;
    }
    case Expr::Kind::Call:
      for (const Expr *A : cast<CallExpr>(E)->Args)
        collectModifiedExpr(A, Mod);
      return;
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      collectModifiedExpr(I->Base, Mod);
      collectModifiedExpr(I->Idx, Mod);
      return;
    }
    case Expr::Kind::Cast:
      collectModifiedExpr(cast<CastExpr>(E)->Sub, Mod);
      return;
    default:
      return;
    }
  }

  void collectModifiedStmt(const Stmt *S, std::set<const VarDecl *> &Mod) {
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        collectModifiedStmt(Sub, Mod);
      return;
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls) {
        Mod.insert(D); // re-initialized every iteration
        if (D->Init)
          collectModifiedExpr(D->Init, Mod);
      }
      return;
    case Stmt::Kind::ExprStmt:
      collectModifiedExpr(cast<ExprStmt>(S)->E, Mod);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      collectModifiedExpr(I->Cond, Mod);
      collectModifiedStmt(I->Then, Mod);
      if (I->Else)
        collectModifiedStmt(I->Else, Mod);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (F->Init)
        collectModifiedStmt(F->Init, Mod);
      if (F->Cond)
        collectModifiedExpr(F->Cond, Mod);
      if (F->Inc)
        collectModifiedExpr(F->Inc, Mod);
      if (F->Body)
        collectModifiedStmt(F->Body, Mod);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      collectModifiedExpr(W->Cond, Mod);
      collectModifiedStmt(W->Body, Mod);
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      collectModifiedStmt(D->Body, Mod);
      collectModifiedExpr(D->Cond, Mod);
      return;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(S)->Value)
        collectModifiedExpr(V, Mod);
      return;
    default:
      return;
    }
  }

  /// break/continue belonging to THIS loop (nested loops own theirs).
  bool containsJump(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return true;
    case Stmt::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        if (containsJump(Sub))
          return true;
      return false;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      return containsJump(I->Then) || (I->Else && containsJump(I->Else));
    }
    default:
      return false; // For/While/Do capture their own jumps
    }
  }

  void findAddrTaken(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        findAddrTaken(Sub);
      return;
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
        if (D->Init)
          findAddrTakenExpr(D->Init);
      return;
    case Stmt::Kind::ExprStmt:
      findAddrTakenExpr(cast<ExprStmt>(S)->E);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      findAddrTakenExpr(I->Cond);
      findAddrTaken(I->Then);
      if (I->Else)
        findAddrTaken(I->Else);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (F->Init)
        findAddrTaken(F->Init);
      if (F->Cond)
        findAddrTakenExpr(F->Cond);
      if (F->Inc)
        findAddrTakenExpr(F->Inc);
      if (F->Body)
        findAddrTaken(F->Body);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      findAddrTakenExpr(W->Cond);
      findAddrTaken(W->Body);
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      findAddrTaken(D->Body);
      findAddrTakenExpr(D->Cond);
      return;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(S)->Value)
        findAddrTakenExpr(V);
      return;
    default:
      return;
    }
  }

  void findAddrTakenExpr(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->O == UnaryExpr::Op::AddrOf)
        if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(U->Sub)))
          if (Ref->Decl)
            AddrTaken.insert(Ref->Decl);
      findAddrTakenExpr(U->Sub);
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      findAddrTakenExpr(B->LHS);
      findAddrTakenExpr(B->RHS);
      return;
    }
    case Expr::Kind::Paren:
      findAddrTakenExpr(cast<ParenExpr>(E)->Sub);
      return;
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      findAddrTakenExpr(C->Cond);
      findAddrTakenExpr(C->Then);
      findAddrTakenExpr(C->Else);
      return;
    }
    case Expr::Kind::Call:
      for (const Expr *A : cast<CallExpr>(E)->Args)
        findAddrTakenExpr(A);
      return;
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      findAddrTakenExpr(I->Base);
      findAddrTakenExpr(I->Idx);
      return;
    }
    case Expr::Kind::Cast:
      findAddrTakenExpr(cast<CastExpr>(E)->Sub);
      return;
    default:
      return;
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// CSE / LICM collection (syntactic; independent of the range analysis)
//===----------------------------------------------------------------------===//

namespace {

/// Structural equality with DeclRefs compared by resolved declaration,
/// not by name, so shadowed variables never alias a hoisted temp.
bool cseEqualImpl(const Expr *A, const Expr *B) {
  A = ignoreParens(A);
  B = ignoreParens(B);
  if (A->kind() == Expr::Kind::DeclRef && B->kind() == Expr::Kind::DeclRef) {
    const auto *RA = cast<DeclRefExpr>(A), *RB = cast<DeclRefExpr>(B);
    if (RA->Decl || RB->Decl)
      return RA->Decl == RB->Decl;
  }
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Expr::Kind::Unary: {
    const auto *UA = cast<UnaryExpr>(A), *UB = cast<UnaryExpr>(B);
    return UA->O == UB->O && cseEqualImpl(UA->Sub, UB->Sub);
  }
  case Expr::Kind::Binary: {
    const auto *BA = cast<BinaryExpr>(A), *BB = cast<BinaryExpr>(B);
    return BA->O == BB->O && cseEqualImpl(BA->LHS, BB->LHS) &&
           cseEqualImpl(BA->RHS, BB->RHS);
  }
  case Expr::Kind::Call: {
    const auto *CA = cast<CallExpr>(A), *CB = cast<CallExpr>(B);
    if (CA->Callee != CB->Callee || CA->Args.size() != CB->Args.size())
      return false;
    for (size_t I = 0; I < CA->Args.size(); ++I)
      if (!cseEqualImpl(CA->Args[I], CB->Args[I]))
        return false;
    return true;
  }
  case Expr::Kind::Index: {
    const auto *IA = cast<IndexExpr>(A), *IB = cast<IndexExpr>(B);
    return cseEqualImpl(IA->Base, IB->Base) &&
           cseEqualImpl(IA->Idx, IB->Idx);
  }
  case Expr::Kind::Cast: {
    const auto *CA = cast<CastExpr>(A), *CB = cast<CastExpr>(B);
    return CA->To == CB->To && cseEqualImpl(CA->Sub, CB->Sub);
  }
  default:
    return exprStructurallyEqual(A, B); // literals and leaves
  }
}

/// Side-effect-free expression whose transformed form is a plain
/// expression (safe to evaluate once, early, into a temp). With
/// \p AllowLoads, Index/Deref reads are allowed (fine within one
/// statement; not across loop iterations).
bool isPureExpr(const Expr *E, bool AllowLoads) {
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::FloatLiteral:
  case Expr::Kind::DeclRef:
    return true;
  case Expr::Kind::Paren:
    return isPureExpr(cast<ParenExpr>(E)->Sub, AllowLoads);
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->O == UnaryExpr::Op::Neg || U->O == UnaryExpr::Op::Plus)
      return isPureExpr(U->Sub, AllowLoads);
    if (U->O == UnaryExpr::Op::Deref)
      return AllowLoads && isPureExpr(U->Sub, AllowLoads);
    return false;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    switch (B->O) {
    case BinaryExpr::Op::Add:
    case BinaryExpr::Op::Sub:
    case BinaryExpr::Op::Mul:
    case BinaryExpr::Op::Div:
    case BinaryExpr::Op::Rem:
    case BinaryExpr::Op::Shl:
    case BinaryExpr::Op::Shr:
    case BinaryExpr::Op::BitAnd:
    case BinaryExpr::Op::BitOr:
    case BinaryExpr::Op::BitXor:
      return isPureExpr(B->LHS, AllowLoads) && isPureExpr(B->RHS, AllowLoads);
    default:
      return false; // assignments, comparisons, && / ||
    }
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    if (classifyCallee(C->Callee) != CalleeKind::MathFunction)
      return false;
    for (const Expr *A : C->Args)
      if (!isPureExpr(A, AllowLoads))
        return false;
    return true;
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    return AllowLoads && isPureExpr(I->Base, AllowLoads) &&
           isPureExpr(I->Idx, AllowLoads);
  }
  case Expr::Kind::Cast:
    return isPureExpr(cast<CastExpr>(E)->Sub, AllowLoads);
  default:
    return false;
  }
}

/// A node worth naming: a floating-typed operation (not a bare leaf).
bool isFloatingOpNode(const Expr *E) {
  E = ignoreParens(E);
  if (!E->type() || !E->type()->isFloating())
    return false;
  switch (E->kind()) {
  case Expr::Kind::Binary: {
    const auto O = cast<BinaryExpr>(E)->O;
    return O == BinaryExpr::Op::Add || O == BinaryExpr::Op::Sub ||
           O == BinaryExpr::Op::Mul || O == BinaryExpr::Op::Div;
  }
  case Expr::Kind::Unary:
    return cast<UnaryExpr>(E)->O == UnaryExpr::Op::Neg;
  case Expr::Kind::Call:
    return classifyCallee(cast<CallExpr>(E)->Callee) ==
           CalleeKind::MathFunction;
  default:
    return false;
  }
}

void forEachDeclRef(const Expr *E,
                    const std::function<void(const DeclRefExpr *)> &Fn) {
  switch (E->kind()) {
  case Expr::Kind::DeclRef:
    Fn(cast<DeclRefExpr>(E));
    return;
  case Expr::Kind::Paren:
    forEachDeclRef(cast<ParenExpr>(E)->Sub, Fn);
    return;
  case Expr::Kind::Unary:
    forEachDeclRef(cast<UnaryExpr>(E)->Sub, Fn);
    return;
  case Expr::Kind::Binary:
    forEachDeclRef(cast<BinaryExpr>(E)->LHS, Fn);
    forEachDeclRef(cast<BinaryExpr>(E)->RHS, Fn);
    return;
  case Expr::Kind::Conditional:
    forEachDeclRef(cast<ConditionalExpr>(E)->Cond, Fn);
    forEachDeclRef(cast<ConditionalExpr>(E)->Then, Fn);
    forEachDeclRef(cast<ConditionalExpr>(E)->Else, Fn);
    return;
  case Expr::Kind::Call:
    for (const Expr *A : cast<CallExpr>(E)->Args)
      forEachDeclRef(A, Fn);
    return;
  case Expr::Kind::Index:
    forEachDeclRef(cast<IndexExpr>(E)->Base, Fn);
    forEachDeclRef(cast<IndexExpr>(E)->Idx, Fn);
    return;
  case Expr::Kind::Cast:
    forEachDeclRef(cast<CastExpr>(E)->Sub, Fn);
    return;
  default:
    return;
  }
}

int countOps(const Expr *E) {
  int N = isFloatingOpNode(E) ? 1 : 0;
  switch (E->kind()) {
  case Expr::Kind::Paren:
    return countOps(cast<ParenExpr>(E)->Sub);
  case Expr::Kind::Unary:
    return N + countOps(cast<UnaryExpr>(E)->Sub);
  case Expr::Kind::Binary:
    return N + countOps(cast<BinaryExpr>(E)->LHS) +
           countOps(cast<BinaryExpr>(E)->RHS);
  case Expr::Kind::Call: {
    for (const Expr *A : cast<CallExpr>(E)->Args)
      N += countOps(A);
    return N;
  }
  case Expr::Kind::Index:
    return countOps(cast<IndexExpr>(E)->Base) +
           countOps(cast<IndexExpr>(E)->Idx);
  case Expr::Kind::Cast:
    return countOps(cast<CastExpr>(E)->Sub);
  default:
    return 0;
  }
}

class SyntaxCollector {
public:
  explicit SyntaxCollector(OptFunctionInfo &Info) : Info(Info) {}

  void run(const FunctionDecl &F) {
    if (F.Body)
      walkStmt(F.Body);
  }

private:
  OptFunctionInfo &Info;
  unsigned LoopDepth = 0;

  void walkStmt(const Stmt *S) {
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        walkStmt(Sub);
      return;
    case Stmt::Kind::DeclStmt:
    case Stmt::Kind::Return:
      collectCse(S);
      return;
    case Stmt::Kind::ExprStmt:
      collectCse(S);
      if (LoopDepth > 0)
        collectFmaHazards(cast<ExprStmt>(S)->E);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      walkStmt(I->Then);
      if (I->Else)
        walkStmt(I->Else);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      collectLoopInvariants(F);
      if (F->Body) {
        ++LoopDepth;
        walkStmt(F->Body);
        --LoopDepth;
      }
      return;
    }
    case Stmt::Kind::While:
      ++LoopDepth;
      walkStmt(cast<WhileStmt>(S)->Body);
      --LoopDepth;
      return;
    case Stmt::Kind::Do:
      ++LoopDepth;
      walkStmt(cast<DoStmt>(S)->Body);
      --LoopDepth;
      return;
    default:
      return;
    }
  }

  //===-- Loop-carried FMA hazards ----------------------------------------===//

  /// Marks accumulation statements inside loops whose multiply-add must
  /// not fuse: when the addend of `target = ... target +- a*b ...` (or a
  /// `target +=`/`-=` form) is the assignment target itself, the add is
  /// the loop-carried dependency. Fusion would put the multiply's latency
  /// on that recurrence; unfused, the multiplies overlap across
  /// iterations and only the cheap add serializes.
  void collectFmaHazards(const Expr *E) {
    const auto *B = dynCast<BinaryExpr>(ignoreParens(E));
    if (!B || !B->isAssignment())
      return;
    if (B->O == BinaryExpr::Op::AddAssign ||
        B->O == BinaryExpr::Op::SubAssign) {
      Info.FmaLoopHazards.insert(B);
      return;
    }
    if (B->O != BinaryExpr::Op::Assign)
      return;
    markCarriedAddSub(B->LHS, B->RHS);
    collectFmaHazards(B->RHS); // chained assignments: a = b = ...
  }

  /// Walks the add/sub spine of \p E and marks every node with an operand
  /// structurally equal to \p Target.
  void markCarriedAddSub(const Expr *Target, const Expr *E) {
    const auto *B = dynCast<BinaryExpr>(ignoreParens(E));
    if (!B ||
        (B->O != BinaryExpr::Op::Add && B->O != BinaryExpr::Op::Sub))
      return;
    if (exprCseEqual(B->LHS, Target) || exprCseEqual(B->RHS, Target))
      Info.FmaLoopHazards.insert(B);
    markCarriedAddSub(Target, B->LHS);
    markCarriedAddSub(Target, B->RHS);
  }

  //===-- Loop-invariant hoisting candidates ------------------------------===//

  void collectLoopInvariants(const ForStmt *FS) {
    if (!FS->Body)
      return;
    std::set<const VarDecl *> Mod;
    RangeAnalyzerModHelper(FS, Mod);
    std::vector<const Expr *> Out;
    collectInvariantsIn(FS->Body, Mod, Out);
    if (Out.empty())
      return;
    // Contained candidates first, so an outer hoist can reuse them.
    std::stable_sort(Out.begin(), Out.end(),
                     [](const Expr *A, const Expr *B) {
                       return countOps(A) < countOps(B);
                     });
    Info.LoopInvariants[FS] = std::move(Out);
  }

  /// Everything the loop writes or declares (including its init/inc).
  static void RangeAnalyzerModHelper(const ForStmt *FS,
                                     std::set<const VarDecl *> &Mod);

  bool isInvariantCandidate(const Expr *E,
                            const std::set<const VarDecl *> &Mod) {
    if (!isFloatingOpNode(E) || !isPureExpr(E, /*AllowLoads=*/false))
      return false;
    bool Ok = true, AnyRef = false;
    forEachDeclRef(E, [&](const DeclRefExpr *Ref) {
      AnyRef = true;
      if (!Ref->Decl || Mod.count(Ref->Decl))
        Ok = false;
    });
    // Pure literal trees fold to constants anyway; require a variable.
    return Ok && AnyRef;
  }

  void collectInvariantsIn(const Stmt *S, const std::set<const VarDecl *> &Mod,
                           std::vector<const Expr *> &Out) {
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
        collectInvariantsIn(Sub, Mod, Out);
      return;
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
        if (D->Init)
          collectInvariantsInExpr(D->Init, Mod, Out);
      return;
    case Stmt::Kind::ExprStmt:
      collectInvariantsInExpr(cast<ExprStmt>(S)->E, Mod, Out);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      collectInvariantsInExpr(I->Cond, Mod, Out);
      collectInvariantsIn(I->Then, Mod, Out);
      if (I->Else)
        collectInvariantsIn(I->Else, Mod, Out);
      return;
    }
    case Stmt::Kind::For: {
      // Expressions in a nested loop still repeat per outer iteration;
      // hoisting them in front of the outer loop is strictly better.
      const auto *F = cast<ForStmt>(S);
      if (F->Init)
        collectInvariantsIn(F->Init, Mod, Out);
      if (F->Cond)
        collectInvariantsInExpr(F->Cond, Mod, Out);
      if (F->Inc)
        collectInvariantsInExpr(F->Inc, Mod, Out);
      if (F->Body)
        collectInvariantsIn(F->Body, Mod, Out);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      collectInvariantsInExpr(W->Cond, Mod, Out);
      collectInvariantsIn(W->Body, Mod, Out);
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      collectInvariantsIn(D->Body, Mod, Out);
      collectInvariantsInExpr(D->Cond, Mod, Out);
      return;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(S)->Value)
        collectInvariantsInExpr(V, Mod, Out);
      return;
    default:
      return;
    }
  }

  void collectInvariantsInExpr(const Expr *E,
                               const std::set<const VarDecl *> &Mod,
                               std::vector<const Expr *> &Out) {
    if (isInvariantCandidate(E, Mod)) {
      for (const Expr *Seen : Out)
        if (exprCseEqual(Seen, E))
          return;
      Out.push_back(E);
      return; // maximal: don't also hoist the pieces
    }
    switch (E->kind()) {
    case Expr::Kind::Paren:
      collectInvariantsInExpr(cast<ParenExpr>(E)->Sub, Mod, Out);
      return;
    case Expr::Kind::Unary:
      collectInvariantsInExpr(cast<UnaryExpr>(E)->Sub, Mod, Out);
      return;
    case Expr::Kind::Binary:
      collectInvariantsInExpr(cast<BinaryExpr>(E)->LHS, Mod, Out);
      collectInvariantsInExpr(cast<BinaryExpr>(E)->RHS, Mod, Out);
      return;
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      collectInvariantsInExpr(C->Cond, Mod, Out);
      collectInvariantsInExpr(C->Then, Mod, Out);
      collectInvariantsInExpr(C->Else, Mod, Out);
      return;
    }
    case Expr::Kind::Call:
      for (const Expr *A : cast<CallExpr>(E)->Args)
        collectInvariantsInExpr(A, Mod, Out);
      return;
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      collectInvariantsInExpr(I->Base, Mod, Out);
      collectInvariantsInExpr(I->Idx, Mod, Out);
      return;
    }
    case Expr::Kind::Cast:
      collectInvariantsInExpr(cast<CastExpr>(E)->Sub, Mod, Out);
      return;
    default:
      return;
    }
  }

  //===-- Per-statement common subexpressions -----------------------------===//

  void collectCse(const Stmt *S) {
    std::vector<const Expr *> Roots;
    std::set<const VarDecl *> OwnDecls;
    switch (S->kind()) {
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls) {
        OwnDecls.insert(D);
        if (D->Init)
          Roots.push_back(D->Init);
      }
      break;
    case Stmt::Kind::ExprStmt: {
      const Expr *E = ignoreParens(cast<ExprStmt>(S)->E);
      if (const auto *B = dynCast<BinaryExpr>(E); B && B->isAssignment()) {
        Roots.push_back(B->LHS);
        Roots.push_back(B->RHS);
      } else {
        Roots.push_back(E);
      }
      break;
    }
    case Stmt::Kind::Return:
      if (const Expr *V = cast<ReturnStmt>(S)->Value)
        Roots.push_back(V);
      break;
    default:
      return;
    }
    if (Roots.empty())
      return;
    // A nested side effect (assignment, ++/--, unknown call) could change
    // a value between the hoisted temp and its original use: bail.
    for (const Expr *R : Roots)
      if (hasSideEffects(R))
        return;
    std::vector<const Expr *> Reps;
    std::vector<int> Counts;
    for (const Expr *R : Roots)
      countPureSubtrees(R, OwnDecls, Reps, Counts);
    std::vector<const Expr *> Out;
    for (size_t I = 0; I < Reps.size(); ++I)
      if (Counts[I] >= 2)
        Out.push_back(Reps[I]); // post-order append: innermost first
    if (!Out.empty())
      Info.CommonSubexprs[S] = std::move(Out);
  }

  bool hasSideEffects(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return B->isAssignment() || hasSideEffects(B->LHS) ||
             hasSideEffects(B->RHS);
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      if (U->O == UnaryExpr::Op::PreInc || U->O == UnaryExpr::Op::PreDec ||
          U->O == UnaryExpr::Op::PostInc || U->O == UnaryExpr::Op::PostDec)
        return true;
      return hasSideEffects(U->Sub);
    }
    case Expr::Kind::Paren:
      return hasSideEffects(cast<ParenExpr>(E)->Sub);
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      return hasSideEffects(C->Cond) || hasSideEffects(C->Then) ||
             hasSideEffects(C->Else);
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      if (classifyCallee(C->Callee) == CalleeKind::UserFunction ||
          classifyCallee(C->Callee) == CalleeKind::Allocation ||
          classifyCallee(C->Callee) == CalleeKind::Unknown)
        return true;
      for (const Expr *A : C->Args)
        if (hasSideEffects(A))
          return true;
      return false;
    }
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      return hasSideEffects(I->Base) || hasSideEffects(I->Idx);
    }
    case Expr::Kind::Cast:
      return hasSideEffects(cast<CastExpr>(E)->Sub);
    default:
      return false;
    }
  }

  void countPureSubtrees(const Expr *E, const std::set<const VarDecl *> &Own,
                         std::vector<const Expr *> &Reps,
                         std::vector<int> &Counts) {
    // Post-order: count children before the node itself.
    switch (E->kind()) {
    case Expr::Kind::Paren:
      countPureSubtrees(cast<ParenExpr>(E)->Sub, Own, Reps, Counts);
      return; // the inner node already counted; parens add nothing
    case Expr::Kind::Unary:
      countPureSubtrees(cast<UnaryExpr>(E)->Sub, Own, Reps, Counts);
      break;
    case Expr::Kind::Binary:
      countPureSubtrees(cast<BinaryExpr>(E)->LHS, Own, Reps, Counts);
      countPureSubtrees(cast<BinaryExpr>(E)->RHS, Own, Reps, Counts);
      break;
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      countPureSubtrees(C->Cond, Own, Reps, Counts);
      countPureSubtrees(C->Then, Own, Reps, Counts);
      countPureSubtrees(C->Else, Own, Reps, Counts);
      break;
    }
    case Expr::Kind::Call:
      for (const Expr *A : cast<CallExpr>(E)->Args)
        countPureSubtrees(A, Own, Reps, Counts);
      break;
    case Expr::Kind::Index: {
      const auto *I = cast<IndexExpr>(E);
      countPureSubtrees(I->Base, Own, Reps, Counts);
      countPureSubtrees(I->Idx, Own, Reps, Counts);
      break;
    }
    case Expr::Kind::Cast:
      countPureSubtrees(cast<CastExpr>(E)->Sub, Own, Reps, Counts);
      break;
    default:
      break;
    }
    if (!isFloatingOpNode(E) || !isPureExpr(E, /*AllowLoads=*/true))
      return;
    bool RefsOwn = false;
    forEachDeclRef(E, [&](const DeclRefExpr *Ref) {
      if (Ref->Decl && Own.count(Ref->Decl))
        RefsOwn = true;
    });
    if (RefsOwn)
      return; // would be emitted before its variable is declared
    for (size_t I = 0; I < Reps.size(); ++I)
      if (exprCseEqual(Reps[I], E)) {
        ++Counts[I];
        return;
      }
    Reps.push_back(E);
    Counts.push_back(1);
  }
};

void SyntaxCollector::RangeAnalyzerModHelper(const ForStmt *FS,
                                             std::set<const VarDecl *> &Mod) {
  // Reuse the statement walkers via a throwaway analyzer-free path: the
  // collectors only need assignment/decl targets.
  struct Walker {
    std::set<const VarDecl *> &Mod;
    void stmt(const Stmt *S) {
      switch (S->kind()) {
      case Stmt::Kind::Compound:
        for (const Stmt *Sub : cast<CompoundStmt>(S)->Body)
          stmt(Sub);
        return;
      case Stmt::Kind::DeclStmt:
        for (const VarDecl *D : cast<DeclStmt>(S)->Decls) {
          Mod.insert(D);
          if (D->Init)
            expr(D->Init);
        }
        return;
      case Stmt::Kind::ExprStmt:
        expr(cast<ExprStmt>(S)->E);
        return;
      case Stmt::Kind::If: {
        const auto *I = cast<IfStmt>(S);
        expr(I->Cond);
        stmt(I->Then);
        if (I->Else)
          stmt(I->Else);
        return;
      }
      case Stmt::Kind::For: {
        const auto *F = cast<ForStmt>(S);
        if (F->Init)
          stmt(F->Init);
        if (F->Cond)
          expr(F->Cond);
        if (F->Inc)
          expr(F->Inc);
        if (F->Body)
          stmt(F->Body);
        return;
      }
      case Stmt::Kind::While: {
        const auto *W = cast<WhileStmt>(S);
        expr(W->Cond);
        stmt(W->Body);
        return;
      }
      case Stmt::Kind::Do: {
        const auto *D = cast<DoStmt>(S);
        stmt(D->Body);
        expr(D->Cond);
        return;
      }
      case Stmt::Kind::Return:
        if (const Expr *V = cast<ReturnStmt>(S)->Value)
          expr(V);
        return;
      default:
        return;
      }
    }
    void expr(const Expr *E) {
      switch (E->kind()) {
      case Expr::Kind::Binary: {
        const auto *B = cast<BinaryExpr>(E);
        if (B->isAssignment())
          if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS)))
            if (Ref->Decl)
              Mod.insert(Ref->Decl);
        expr(B->LHS);
        expr(B->RHS);
        return;
      }
      case Expr::Kind::Unary: {
        const auto *U = cast<UnaryExpr>(E);
        if (U->O == UnaryExpr::Op::PreInc || U->O == UnaryExpr::Op::PreDec ||
            U->O == UnaryExpr::Op::PostInc ||
            U->O == UnaryExpr::Op::PostDec)
          if (const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(U->Sub)))
            if (Ref->Decl)
              Mod.insert(Ref->Decl);
        expr(U->Sub);
        return;
      }
      case Expr::Kind::Paren:
        expr(cast<ParenExpr>(E)->Sub);
        return;
      case Expr::Kind::Conditional: {
        const auto *C = cast<ConditionalExpr>(E);
        expr(C->Cond);
        expr(C->Then);
        expr(C->Else);
        return;
      }
      case Expr::Kind::Call:
        for (const Expr *A : cast<CallExpr>(E)->Args)
          expr(A);
        return;
      case Expr::Kind::Index: {
        const auto *I = cast<IndexExpr>(E);
        expr(I->Base);
        expr(I->Idx);
        return;
      }
      case Expr::Kind::Cast:
        expr(cast<CastExpr>(E)->Sub);
        return;
      default:
        return;
      }
    }
  } W{Mod};
  if (FS->Init)
    W.stmt(FS->Init);
  if (FS->Cond)
    W.expr(FS->Cond);
  if (FS->Inc)
    W.expr(FS->Inc);
  if (FS->Body)
    W.stmt(FS->Body);
}

} // namespace

bool igen::exprCseEqual(const Expr *A, const Expr *B) {
  return cseEqualImpl(A, B);
}

bool igen::exprIsPureValue(const Expr *E) {
  return isPureExpr(E, /*AllowLoads=*/true);
}

void igen::forEachSubexprPruned(const Expr *E,
                                const std::function<bool(const Expr *)> &Fn) {
  if (!E || !Fn(E))
    return;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::FloatLiteral:
  case Expr::Kind::DeclRef:
    return;
  case Expr::Kind::Unary:
    forEachSubexprPruned(cast<UnaryExpr>(E)->Sub, Fn);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    forEachSubexprPruned(B->LHS, Fn);
    forEachSubexprPruned(B->RHS, Fn);
    return;
  }
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    forEachSubexprPruned(C->Cond, Fn);
    forEachSubexprPruned(C->Then, Fn);
    forEachSubexprPruned(C->Else, Fn);
    return;
  }
  case Expr::Kind::Call:
    for (const Expr *Arg : cast<CallExpr>(E)->Args)
      forEachSubexprPruned(Arg, Fn);
    return;
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    forEachSubexprPruned(I->Base, Fn);
    forEachSubexprPruned(I->Idx, Fn);
    return;
  }
  case Expr::Kind::Cast:
    forEachSubexprPruned(cast<CastExpr>(E)->Sub, Fn);
    return;
  case Expr::Kind::Paren:
    forEachSubexprPruned(cast<ParenExpr>(E)->Sub, Fn);
    return;
  }
}

OptFunctionInfo igen::analyzeFunctionForOpt(const FunctionDecl &F,
                                            const OptOptions &Opts) {
  OptFunctionInfo Info;
  RangeAnalyzer(Info, Opts).run(F);
  SyntaxCollector(Info).run(F);
  return Info;
}
