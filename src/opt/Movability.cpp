//===- Movability.cpp - Result-movability lattice for --tier --------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "opt/Movability.h"

#include <cmath>
#include <set>
#include <vector>

using namespace igen;

namespace {

/// Largest double below which every integer is exactly representable.
const double MaxExactInt = 9007199254740992.0; // 2^53

/// The math calls whose interval transfer functions are exact given
/// exact inputs: they only select, copy or round-to-integer endpoint
/// values, never round real results. (Sema has already normalized the
/// spelling variants; we accept both forms defensively.)
bool isExactMathCall(const std::string &Callee) {
  return Callee == "fabs" || Callee == "abs" || Callee == "fmin" ||
         Callee == "min" || Callee == "fmax" || Callee == "max" ||
         Callee == "floor" || Callee == "ceil" || Callee == "fabsf" ||
         Callee == "fminf" || Callee == "fmaxf" || Callee == "floorf" ||
         Callee == "ceilf";
}

class MovabilityAnalysis {
public:
  explicit MovabilityAnalysis(const FunctionDecl &F) : F(F) {}

  MovabilityInfo run() {
    MovabilityInfo Info;
    if (!F.Body)
      return Info;
    HasFloatStore = bodyHasFloatStore(F.Body);
    for (const VarDecl *P : F.Params)
      if (!P->HasTolerance)
        Exact.insert(P);
    AllReturnsExact = true;
    ControlExact = true;
    SawValueReturn = false;
    transferStmt(F.Body);
    Info.ControlExact = ControlExact;
    Info.ResultImmovable = SawValueReturn && AllReturnsExact && ControlExact;
    return Info;
  }

private:
  //===--------------------------------------------------------------------===//
  // Float-store prescan
  //===--------------------------------------------------------------------===//

  static bool isFloatMemWrite(const Expr *E) {
    const auto *B = dynCast<BinaryExpr>(ignoreParens(E));
    if (!B || !B->isAssignment())
      return false;
    const Expr *L = ignoreParens(B->LHS);
    bool IsMem = L->kind() == Expr::Kind::Index ||
                 (L->kind() == Expr::Kind::Unary &&
                  cast<UnaryExpr>(L)->O == UnaryExpr::Op::Deref);
    return IsMem && L->type() && L->type()->isFloating();
  }

  static bool exprHasFloatStore(const Expr *E) {
    if (!E)
      return false;
    if (isFloatMemWrite(E))
      return true;
    bool Found = false;
    forEachChild(E, [&](const Expr *C) { Found |= exprHasFloatStore(C); });
    return Found;
  }

  static bool bodyHasFloatStore(const Stmt *S) {
    if (!S)
      return false;
    switch (S->kind()) {
    case Stmt::Kind::Compound: {
      for (const Stmt *C : cast<CompoundStmt>(S)->Body)
        if (bodyHasFloatStore(C))
          return true;
      return false;
    }
    case Stmt::Kind::DeclStmt: {
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
        if (exprHasFloatStore(D->Init))
          return true;
      return false;
    }
    case Stmt::Kind::ExprStmt:
      return exprHasFloatStore(cast<ExprStmt>(S)->E);
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      return exprHasFloatStore(I->Cond) || bodyHasFloatStore(I->Then) ||
             bodyHasFloatStore(I->Else);
    }
    case Stmt::Kind::For: {
      const auto *L = cast<ForStmt>(S);
      return bodyHasFloatStore(L->Init) || exprHasFloatStore(L->Cond) ||
             exprHasFloatStore(L->Inc) || bodyHasFloatStore(L->Body);
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      return exprHasFloatStore(W->Cond) || bodyHasFloatStore(W->Body);
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      return exprHasFloatStore(D->Cond) || bodyHasFloatStore(D->Body);
    }
    case Stmt::Kind::Return:
      return exprHasFloatStore(cast<ReturnStmt>(S)->Value);
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Null:
      return false;
    }
    return false;
  }

  template <typename Fn> static void forEachChild(const Expr *E, Fn F) {
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
    case Expr::Kind::FloatLiteral:
    case Expr::Kind::DeclRef:
      return;
    case Expr::Kind::Unary:
      F(cast<UnaryExpr>(E)->Sub);
      return;
    case Expr::Kind::Binary:
      F(cast<BinaryExpr>(E)->LHS);
      F(cast<BinaryExpr>(E)->RHS);
      return;
    case Expr::Kind::Conditional:
      F(cast<ConditionalExpr>(E)->Cond);
      F(cast<ConditionalExpr>(E)->Then);
      F(cast<ConditionalExpr>(E)->Else);
      return;
    case Expr::Kind::Call:
      for (const Expr *A : cast<CallExpr>(E)->Args)
        F(A);
      return;
    case Expr::Kind::Index:
      F(cast<IndexExpr>(E)->Base);
      F(cast<IndexExpr>(E)->Idx);
      return;
    case Expr::Kind::Cast:
      F(cast<CastExpr>(E)->Sub);
      return;
    case Expr::Kind::Paren:
      F(cast<ParenExpr>(E)->Sub);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Expression exactness under the current variable state
  //===--------------------------------------------------------------------===//

  /// True when both tiers provably compute the identical value for \p E.
  /// Non-floating expressions are trivially exact: integer and pointer
  /// code is emitted verbatim in both tiers.
  bool exprExact(const Expr *E) {
    if (!E)
      return true;
    E = ignoreParens(E);
    const Type *T = E->type();
    if (T && !T->isFloating())
      return !T->isSimdVector(); // int/pointer identical; SIMD ineligible
    switch (E->kind()) {
    case Expr::Kind::IntLiteral:
      return true;
    case Expr::Kind::FloatLiteral: {
      const auto *L = cast<FloatLiteralExpr>(E);
      if (L->IsTolerance)
        return false; // dd widens v +/- tol more tightly
      // Integral values are exactly representable in double, so both
      // tiers lift them to the same point interval. Non-integral
      // spellings may round (0.1), where the dd lift is tighter.
      return std::floor(L->Value) == L->Value &&
             std::fabs(L->Value) <= MaxExactInt;
    }
    case Expr::Kind::DeclRef: {
      const auto *D = cast<DeclRefExpr>(E);
      return D->Decl && Exact.count(D->Decl) != 0;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      switch (U->O) {
      case UnaryExpr::Op::Neg:
      case UnaryExpr::Op::Plus:
        return exprExact(U->Sub);
      case UnaryExpr::Op::Deref:
        return !HasFloatStore && exprExact(U->Sub);
      default:
        return false;
      }
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      if (B->O == BinaryExpr::Op::Assign)
        return exprExact(B->RHS); // value of the assignment expression
      return false; // rounded arithmetic (incl. compound assigns)
    }
    case Expr::Kind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      return condExact(C->Cond) && exprExact(C->Then) && exprExact(C->Else);
    }
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(E);
      if (!isExactMathCall(C->Callee))
        return false;
      for (const Expr *A : C->Args)
        if (!exprExact(A))
          return false;
      return true;
    }
    case Expr::Kind::Index:
      return !HasFloatStore; // load of untouched (exact param) memory
    case Expr::Kind::Cast:
      // float <-> double casts round identically given identical inputs.
      return exprExact(cast<CastExpr>(E)->Sub);
    case Expr::Kind::Paren:
      return exprExact(cast<ParenExpr>(E)->Sub);
    }
    return false;
  }

  /// Condition exactness: every floating comparison reachable in \p E
  /// must have exact operands for both tiers to branch identically.
  /// Integer-only conditions are always exact.
  bool condExact(const Expr *E) {
    if (!E)
      return true;
    E = ignoreParens(E);
    if (const auto *B = dynCast<BinaryExpr>(E)) {
      if (B->isComparison()) {
        const Type *LT = ignoreParens(B->LHS)->type();
        const Type *RT = ignoreParens(B->RHS)->type();
        bool Floating = (LT && LT->isFloating()) || (RT && RT->isFloating());
        return !Floating || (exprExact(B->LHS) && exprExact(B->RHS));
      }
      if (B->O == BinaryExpr::Op::LAnd || B->O == BinaryExpr::Op::LOr)
        return condExact(B->LHS) && condExact(B->RHS);
    }
    if (const auto *U = dynCast<UnaryExpr>(E))
      if (U->O == UnaryExpr::Op::LogicalNot)
        return condExact(U->Sub);
    // A bare value used as a condition: exact iff the value is.
    return exprExact(E);
  }

  //===--------------------------------------------------------------------===//
  // Dataflow over statements
  //===--------------------------------------------------------------------===//

  /// Applies assignments in \p E to the variable state (in evaluation
  /// order for the few compound forms the subset allows).
  void transferExpr(const Expr *E) {
    if (!E)
      return;
    E = ignoreParens(E);
    const auto *B = dynCast<BinaryExpr>(E);
    if (B && B->isAssignment()) {
      transferExpr(B->RHS);
      const Expr *L = ignoreParens(B->LHS);
      if (const auto *D = dynCast<DeclRefExpr>(L)) {
        if (D->Decl) {
          bool IsExact =
              B->O == BinaryExpr::Op::Assign && exprExact(B->RHS);
          if (IsExact)
            Exact.insert(D->Decl);
          else
            Exact.erase(D->Decl);
        }
      }
      return;
    }
    if (const auto *C = dynCast<ConditionalExpr>(E))
      if (!condExact(C->Cond))
        ControlExact = false;
    forEachChild(E, [&](const Expr *C) { transferExpr(C); });
  }

  void transferStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Compound:
      for (const Stmt *C : cast<CompoundStmt>(S)->Body)
        transferStmt(C);
      return;
    case Stmt::Kind::DeclStmt:
      for (const VarDecl *D : cast<DeclStmt>(S)->Decls) {
        transferExpr(D->Init);
        if (D->Init && exprExact(D->Init))
          Exact.insert(D);
        else
          Exact.erase(D);
      }
      return;
    case Stmt::Kind::ExprStmt:
      transferExpr(cast<ExprStmt>(S)->E);
      return;
    case Stmt::Kind::If: {
      const auto *I = cast<IfStmt>(S);
      if (!condExact(I->Cond))
        ControlExact = false;
      transferExpr(I->Cond);
      std::set<const VarDecl *> In = Exact;
      transferStmt(I->Then);
      std::set<const VarDecl *> ThenOut = std::move(Exact);
      Exact = In;
      transferStmt(I->Else); // no-op state change when Else is null
      intersectInto(Exact, ThenOut);
      return;
    }
    case Stmt::Kind::For: {
      const auto *L = cast<ForStmt>(S);
      transferStmt(L->Init);
      loopFixpoint(L->Cond, L->Body, L->Inc);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      loopFixpoint(W->Cond, W->Body, nullptr);
      return;
    }
    case Stmt::Kind::Do: {
      const auto *D = cast<DoStmt>(S);
      // Body runs at least once; the fixpoint below covers repeats.
      loopFixpoint(D->Cond, D->Body, nullptr);
      transferStmt(D->Body);
      if (!condExact(D->Cond))
        ControlExact = false;
      transferExpr(D->Cond);
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->Value) {
        SawValueReturn = true;
        transferExpr(R->Value);
        if (!exprExact(R->Value))
          AllReturnsExact = false;
      }
      return;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      // Conservative: loop-exit state is the head fixpoint, which the
      // state at any break/continue always contains.
      return;
    case Stmt::Kind::Null:
      return;
    }
  }

  /// Descending fixpoint for a loop: the state at the loop head is the
  /// largest exact-set stable under one more body execution. Also the
  /// loop-exit state (zero-trip loops keep the entry state, so exit =
  /// entry intersect stable-head = stable-head).
  void loopFixpoint(const Expr *Cond, const Stmt *Body, const Expr *Inc) {
    for (;;) {
      std::set<const VarDecl *> Head = Exact;
      if (!condExact(Cond))
        ControlExact = false;
      transferExpr(Cond);
      transferStmt(Body);
      transferExpr(Inc);
      intersectInto(Exact, Head);
      if (Exact == Head)
        return;
    }
  }

  static void intersectInto(std::set<const VarDecl *> &A,
                            const std::set<const VarDecl *> &B) {
    for (auto It = A.begin(); It != A.end();)
      It = B.count(*It) ? std::next(It) : A.erase(It);
  }

  const FunctionDecl &F;
  std::set<const VarDecl *> Exact;
  bool HasFloatStore = false;
  bool AllReturnsExact = true;
  bool ControlExact = true;
  bool SawValueReturn = false;
};

} // namespace

MovabilityInfo igen::analyzeMovability(const FunctionDecl &F) {
  return MovabilityAnalysis(F).run();
}
