//===- OptAnalysis.h - Mid-end facts for interval lowering ------*- C++ -*-===//
//
// Conservative static analysis that runs between Sema and the interval
// transformer. It derives three kinds of information the transformer can
// exploit without ever weakening soundness:
//
//  * Value-range/sign facts per expression node: a ValueFact bounds the
//    endpoints of the runtime enclosure an expression will produce, so the
//    transformer may lower a multiply to the sign-specialized ia_mul_pp /
//    ia_mul_pn / ... variants (which themselves still fall back to the
//    generic op when the precondition does not hold at runtime).
//  * Loop-invariant pure subexpressions per for-statement, so their
//    ia_* call chains can be hoisted in front of the loop header.
//  * Repeated pure subexpressions per statement, so one enclosure can be
//    computed once into a temporary and reused (interval CSE).
//
// All facts are conservative: a missing fact means "unknown", and every
// recorded fact is an over-approximation of the runtime enclosure
// endpoints. Wrong code can never be emitted from a missing fact — only a
// generic (slower) call.
//
//===----------------------------------------------------------------------===//

#ifndef IGEN_OPT_OPTANALYSIS_H
#define IGEN_OPT_OPTANALYSIS_H

#include "frontend/AST.h"

#include <functional>
#include <limits>
#include <map>
#include <set>
#include <vector>

namespace igen {

/// A sound bound on the runtime enclosure of a floating expression: every
/// non-NaN endpoint e of the enclosure satisfies Lo <= e <= Hi, and when
/// NoNaN is set the endpoints are additionally guaranteed not to be NaN.
/// The default-constructed fact is Top ("anything, possibly NaN").
struct ValueFact {
  double Lo = -std::numeric_limits<double>::infinity();
  double Hi = std::numeric_limits<double>::infinity();
  bool NoNaN = false;

  static ValueFact top() { return ValueFact(); }
  /// A NaN-free fact with the given endpoint bounds.
  static ValueFact range(double Lo, double Hi) {
    ValueFact F;
    F.Lo = Lo;
    F.Hi = Hi;
    F.NoNaN = true;
    return F;
  }

  bool isTop() const {
    return !NoNaN && Lo == -std::numeric_limits<double>::infinity() &&
           Hi == std::numeric_limits<double>::infinity();
  }

  /// Enclosure is certainly a subset of [0, +inf).
  bool provenNonNeg() const { return NoNaN && Lo >= 0.0; }
  /// Enclosure is certainly a subset of (-inf, 0].
  bool provenNonPos() const { return NoNaN && Hi <= 0.0; }
  /// Enclosure is certainly a subset of (0, +inf) — usable as a divisor.
  bool provenPos() const { return NoNaN && Lo > 0.0; }
  /// Enclosure is certainly a subset of (-inf, 0) — usable as a divisor.
  bool provenNeg() const { return NoNaN && Hi < 0.0; }
};

struct OptOptions {
  /// Derive facts from branch guards. Only sound under the Exception
  /// branch policy, where a then-branch runs iff the comparison is
  /// certainly true; under Join both sides execute unconditionally.
  bool GuardFacts = true;
};

/// Analysis results for one function, keyed by AST node identity.
struct OptFunctionInfo {
  /// Endpoint bounds for expression nodes. Sparse: absent means Top.
  std::map<const Expr *, ValueFact> Facts;

  /// Per for-statement: maximal pure, load-free, loop-invariant floating
  /// subexpressions worth hoisting ahead of the loop header. Ordered
  /// with subexpressions before the expressions containing them.
  std::map<const Stmt *, std::vector<const Expr *>> LoopInvariants;

  /// Per statement: pure floating subexpressions occurring at least
  /// twice (structurally) in that statement, ordered innermost-first so
  /// a temp's initializer can reuse earlier temps.
  std::map<const Stmt *, std::vector<const Expr *>> CommonSubexprs;

  /// Expression nodes where add/sub-of-mul FMA fusion must be skipped
  /// because the addend is the loop-carried accumulator itself (`y += a*b`
  /// or `y = y + a*b` inside a loop). Fusing there moves the multiply's
  /// full latency onto the recurrence and serializes the loop (the mvm
  /// regression); left unfused, the multiplies pipeline and only the add
  /// chains. Contains the compound-assignment node for `y +=`/`y -=` and
  /// the Add/Sub node whose operand equals the assignment target for
  /// plain `y = y + ...` forms.
  std::set<const Expr *> FmaLoopHazards;

  ValueFact factFor(const Expr *E) const {
    auto It = Facts.find(E);
    return It == Facts.end() ? ValueFact::top() : It->second;
  }
};

/// Runs the value-range/sign analysis plus the CSE/LICM collectors over
/// one function body. Pure analysis: the AST is not modified.
OptFunctionInfo analyzeFunctionForOpt(const FunctionDecl &F,
                                      const OptOptions &Opts);

/// Structural equality for CSE/hoist matching. Unlike
/// exprStructurallyEqual this compares DeclRefs by their resolved
/// declaration, so a shadowing variable of the same name never aliases a
/// hoisted temporary.
bool exprCseEqual(const Expr *A, const Expr *B);

/// True when \p E is a side-effect-free value computation (memory loads
/// allowed): safe to re-evaluate or reorder against other pure values.
bool exprIsPureValue(const Expr *E);

/// Pre-order walk over \p E and its subexpressions. When \p Fn returns
/// false the node's children are skipped. Lets the transformer count
/// which CSE occurrences remain visible once enclosing expressions have
/// been replaced by temporaries.
void forEachSubexprPruned(const Expr *E,
                          const std::function<bool(const Expr *)> &Fn);

} // namespace igen

#endif // IGEN_OPT_OPTANALYSIS_H
