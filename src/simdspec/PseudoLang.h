//===- PseudoLang.h - Intel operation pseudo-language -----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer, parser and AST for the C-like pseudo-language in which the
/// Intel Intrinsics Guide specifies each intrinsic's <operation>
/// (Section V, Fig. 4/5):
///
///   FOR j := 0 to 3
///     i := j*64
///     dst[i+63:i] := a[i+63:i] + b[i+63:i]
///   ENDFOR
///   dst[MAX:256] := 0
///
/// Statements are newline-separated; v[hi:lo] denotes a bit range of a
/// vector; helper functions (SQRT, MIN, ABS, Convert_FP32_To_FP64, ...)
/// appear as calls.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SIMDSPEC_PSEUDOLANG_H
#define IGEN_SIMDSPEC_PSEUDOLANG_H

#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace igen {
namespace pseudo {

//===----------------------------------------------------------------------===//
// AST
//===----------------------------------------------------------------------===//

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    Number,   ///< integer literal
    Var,      ///< identifier (scalar or whole vector)
    BitRange, ///< v[hi:lo] or v[bit]
    Binary,   ///< arithmetic/comparison/logical operator
    Unary,    ///< -x, NOT x
    Call,     ///< HELPER(args)
  };

  Kind K;
  // Number
  long long Num = 0;
  // Var / BitRange / Call
  std::string Name;
  // BitRange: Hi/Lo bit expressions (Lo null for single-bit access).
  ExprPtr Hi, Lo;
  // Binary/Unary
  std::string Op;
  ExprPtr LHS, RHS;
  // Call
  std::vector<ExprPtr> Args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    Assign, ///< lvalue := expr
    For,    ///< FOR v := lo to hi ... ENDFOR
    If,     ///< IF cond ... [ELSE ...] FI
  };

  Kind K;
  // Assign
  ExprPtr Target; ///< Var or BitRange
  ExprPtr Value;
  // For
  std::string LoopVar;
  ExprPtr From, To;
  std::vector<StmtPtr> Body;
  // If
  ExprPtr Cond;
  std::vector<StmtPtr> Then, Else;
};

/// A parsed <operation> body.
struct Operation {
  std::vector<StmtPtr> Stmts;
};

/// Parses the operation text; returns nullopt on error (diagnosed).
std::optional<Operation> parseOperation(std::string_view Text,
                                        DiagnosticsEngine &Diags);

//===----------------------------------------------------------------------===//
// Affine analysis (symbolic bit-range widths, Section V)
//===----------------------------------------------------------------------===//

/// An affine form: Constant + sum Coeffs[v]*v. Used to prove that a bit
/// range like [i+63 : i] has the constant width 64.
struct Affine {
  long long Constant = 0;
  std::map<std::string, long long> Coeffs;

  bool isConstant() const { return Coeffs.empty(); }
};

/// Evaluates \p E as an affine form over its variables; nullopt if the
/// expression is not affine (e.g. contains j*k).
std::optional<Affine> tryAffine(const Expr &E);

/// Width in bits of the range [Hi:Lo] if provably constant.
std::optional<long long> rangeWidth(const Expr &Range);

} // namespace pseudo
} // namespace igen

#endif // IGEN_SIMDSPEC_PSEUDOLANG_H
