//===- PseudoLang.cpp - Intel operation pseudo-language ----------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "simdspec/PseudoLang.h"

#include "support/StringExtras.h"

#include <cctype>
#include <cstdlib>

using namespace igen;
using namespace igen::pseudo;

namespace {

enum class Tok {
  End,
  Newline,
  Ident,
  Number,
  Assign, // :=
  LBracket,
  RBracket,
  LParen,
  RParen,
  Colon,
  Comma,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  Greater,
  LessEq,
  GreaterEq,
  KwFor,
  KwTo,
  KwEndFor,
  KwIf,
  KwElse,
  KwFi,
  KwEndIf,
  KwAnd,
  KwOr,
  KwNot,
  Question,
};

struct Token {
  Tok K = Tok::End;
  std::string Text;
  long long Num = 0;
  uint32_t Line = 1;
};

class PLexer {
public:
  PLexer(std::string_view Text, DiagnosticsEngine &Diags)
      : Text(Text), Diags(Diags) {}

  std::vector<Token> lexAll() {
    std::vector<Token> Out;
    while (true) {
      Token T = lex();
      // Collapse consecutive newlines.
      if (T.K == Tok::Newline && !Out.empty() &&
          Out.back().K == Tok::Newline)
        continue;
      Out.push_back(T);
      if (T.K == Tok::End)
        return Out;
    }
  }

private:
  char peek(unsigned A = 0) const {
    return Pos + A < Text.size() ? Text[Pos + A] : '\0';
  }
  char advance() {
    char C = Text[Pos++];
    if (C == '\n')
      ++Line;
    return C;
  }

  Token make(Tok K, std::string S = {}) {
    Token T;
    T.K = K;
    T.Text = std::move(S);
    T.Line = Line;
    return T;
  }

  Token lex() {
    while (Pos < Text.size()) {
      char C = peek();
      if (C == '\n') {
        advance();
        return make(Tok::Newline);
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (Pos < Text.size() && peek() != '\n')
          advance();
        continue;
      }
      break;
    }
    if (Pos >= Text.size())
      return make(Tok::End);

    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Num;
      // Hex?
      if (C == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        Num.push_back(advance());
        Num.push_back(advance());
        while (std::isxdigit(static_cast<unsigned char>(peek())))
          Num.push_back(advance());
        Token T = make(Tok::Number, Num);
        T.Num = std::strtoll(Num.c_str(), nullptr, 16);
        return T;
      }
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Num.push_back(advance());
      // Reject fractional constants (do not appear in supported specs).
      Token T = make(Tok::Number, Num);
      T.Num = std::strtoll(Num.c_str(), nullptr, 10);
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Id;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        Id.push_back(advance());
      if (Id == "FOR")
        return make(Tok::KwFor);
      if (Id == "to" || Id == "TO")
        return make(Tok::KwTo);
      if (Id == "ENDFOR")
        return make(Tok::KwEndFor);
      if (Id == "IF")
        return make(Tok::KwIf);
      if (Id == "ELSE")
        return make(Tok::KwElse);
      if (Id == "FI")
        return make(Tok::KwFi);
      if (Id == "ENDIF")
        return make(Tok::KwEndIf);
      if (Id == "AND")
        return make(Tok::KwAnd);
      if (Id == "OR")
        return make(Tok::KwOr);
      if (Id == "NOT")
        return make(Tok::KwNot);
      return make(Tok::Ident, Id);
    }
    advance();
    switch (C) {
    case ':':
      if (peek() == '=') {
        advance();
        return make(Tok::Assign);
      }
      return make(Tok::Colon);
    case '[':
      return make(Tok::LBracket);
    case ']':
      return make(Tok::RBracket);
    case '(':
      return make(Tok::LParen);
    case ')':
      return make(Tok::RParen);
    case ',':
      return make(Tok::Comma);
    case '+':
      return make(Tok::Plus);
    case '-':
      return make(Tok::Minus);
    case '*':
      return make(Tok::Star);
    case '/':
      return make(Tok::Slash);
    case '%':
      return make(Tok::Percent);
    case '?':
      return make(Tok::Question);
    case '=':
      if (peek() == '=')
        advance();
      return make(Tok::EqEq); // '=' in specs means comparison
    case '!':
      if (peek() == '=') {
        advance();
        return make(Tok::NotEq);
      }
      return make(Tok::KwNot);
    case '<':
      if (peek() == '=') {
        advance();
        return make(Tok::LessEq);
      }
      return make(Tok::Less);
    case '>':
      if (peek() == '=') {
        advance();
        return make(Tok::GreaterEq);
      }
      return make(Tok::Greater);
    case '&':
      if (peek() == '&')
        advance();
      return make(Tok::KwAnd);
    case '|':
      if (peek() == '|')
        advance();
      return make(Tok::KwOr);
    default:
      Diags.error(SourceLoc{0, Line, 0},
                  formatString("pseudo-language: unexpected '%c'", C));
      return lex();
    }
  }

  std::string_view Text;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
};

class PParser {
public:
  PParser(std::vector<Token> Tokens, DiagnosticsEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::optional<Operation> parse() {
    Operation Op;
    skipNewlines();
    while (!at(Tok::End)) {
      StmtPtr S = parseStmt();
      if (!S)
        return std::nullopt;
      Op.Stmts.push_back(std::move(S));
      skipNewlines();
    }
    if (HadError)
      return std::nullopt;
    return Op;
  }

private:
  const Token &cur() const { return Tokens[Index]; }
  bool at(Tok K) const { return cur().K == K; }
  /// Advances, but never past the trailing End sentinel: error recovery
  /// (expect() skipping a token) must not run cur() off the buffer.
  void bump() {
    if (!at(Tok::End))
      ++Index;
  }
  Token consume() {
    Token T = cur();
    bump();
    return T;
  }
  bool accept(Tok K) {
    if (at(K)) {
      bump();
      return true;
    }
    return false;
  }
  void expect(Tok K, const char *What) {
    if (!accept(K)) {
      Diags.error(SourceLoc{0, cur().Line, 0},
                  std::string("pseudo-language: expected ") + What);
      HadError = true;
      bump();
    }
  }
  void skipNewlines() {
    while (accept(Tok::Newline))
      ;
  }

  StmtPtr parseStmt() {
    skipNewlines();
    if (at(Tok::KwFor))
      return parseFor();
    if (at(Tok::KwIf))
      return parseIf();
    return parseAssign();
  }

  StmtPtr parseFor() {
    consume(); // FOR
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::For;
    if (!at(Tok::Ident)) {
      fail("loop variable after FOR");
      return nullptr;
    }
    S->LoopVar = consume().Text;
    expect(Tok::Assign, "':=' in FOR");
    S->From = parseExpr();
    expect(Tok::KwTo, "'to' in FOR");
    S->To = parseExpr();
    skipNewlines();
    while (!at(Tok::KwEndFor) && !at(Tok::End)) {
      StmtPtr Child = parseStmt();
      if (!Child)
        return nullptr;
      S->Body.push_back(std::move(Child));
      skipNewlines();
    }
    expect(Tok::KwEndFor, "ENDFOR");
    return S;
  }

  StmtPtr parseIf() {
    consume(); // IF
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::If;
    S->Cond = parseExpr();
    skipNewlines();
    while (!at(Tok::KwElse) && !at(Tok::KwFi) && !at(Tok::KwEndIf) &&
           !at(Tok::End)) {
      StmtPtr Child = parseStmt();
      if (!Child)
        return nullptr;
      S->Then.push_back(std::move(Child));
      skipNewlines();
    }
    if (accept(Tok::KwElse)) {
      skipNewlines();
      while (!at(Tok::KwFi) && !at(Tok::KwEndIf) && !at(Tok::End)) {
        StmtPtr Child = parseStmt();
        if (!Child)
          return nullptr;
        S->Else.push_back(std::move(Child));
        skipNewlines();
      }
    }
    if (!accept(Tok::KwFi))
      expect(Tok::KwEndIf, "FI/ENDIF");
    return S;
  }

  StmtPtr parseAssign() {
    ExprPtr Target = parsePrimary();
    if (!Target)
      return nullptr;
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::Assign;
    S->Target = std::move(Target);
    expect(Tok::Assign, "':='");
    S->Value = parseExpr();
    return S;
  }

  // expr := ternary over comparisons over additive over multiplicative.
  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    ExprPtr Cond = parseLogical();
    if (!accept(Tok::Question))
      return Cond;
    // cond ? a : b (used in some specs).
    ExprPtr Then = parseExpr();
    expect(Tok::Colon, "':' in '?:'");
    ExprPtr Else = parseExpr();
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Call;
    E->Name = "SELECT";
    E->Args.push_back(std::move(Cond));
    E->Args.push_back(std::move(Then));
    E->Args.push_back(std::move(Else));
    return E;
  }

  ExprPtr parseLogical() {
    ExprPtr L = parseComparison();
    while (at(Tok::KwAnd) || at(Tok::KwOr)) {
      std::string Op = at(Tok::KwAnd) ? "&&" : "||";
      consume();
      ExprPtr R = parseComparison();
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseComparison() {
    ExprPtr L = parseAdditive();
    while (true) {
      std::string Op;
      if (at(Tok::EqEq))
        Op = "==";
      else if (at(Tok::NotEq))
        Op = "!=";
      else if (at(Tok::Less))
        Op = "<";
      else if (at(Tok::Greater))
        Op = ">";
      else if (at(Tok::LessEq))
        Op = "<=";
      else if (at(Tok::GreaterEq))
        Op = ">=";
      else
        return L;
      consume();
      ExprPtr R = parseAdditive();
      L = makeBinary(Op, std::move(L), std::move(R));
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      std::string Op = at(Tok::Plus) ? "+" : "-";
      consume();
      ExprPtr R = parseMultiplicative();
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      std::string Op = at(Tok::Star) ? "*" : at(Tok::Slash) ? "/" : "%";
      consume();
      ExprPtr R = parseUnary();
      L = makeBinary(Op, std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (accept(Tok::Minus)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Unary;
      E->Op = "-";
      E->LHS = parseUnary();
      return E;
    }
    if (accept(Tok::KwNot)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Unary;
      E->Op = "!";
      E->LHS = parseUnary();
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (at(Tok::Number)) {
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Number;
      E->Num = consume().Num;
      return E;
    }
    if (accept(Tok::LParen)) {
      ExprPtr E = parseExpr();
      expect(Tok::RParen, "')'");
      return E;
    }
    if (!at(Tok::Ident)) {
      fail("expression");
      ++Index;
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Number;
      return E;
    }
    std::string Name = consume().Text;
    if (accept(Tok::LParen)) { // helper call
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::Call;
      E->Name = Name;
      if (!at(Tok::RParen)) {
        do {
          E->Args.push_back(parseExpr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "')' after call");
      return E;
    }
    if (accept(Tok::LBracket)) { // bit range
      auto E = std::make_unique<Expr>();
      E->K = Expr::Kind::BitRange;
      E->Name = Name;
      E->Hi = parseExpr();
      if (accept(Tok::Colon))
        E->Lo = parseExpr();
      expect(Tok::RBracket, "']' after bit range");
      return E;
    }
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Var;
    E->Name = Name;
    return E;
  }

  ExprPtr makeBinary(std::string Op, ExprPtr L, ExprPtr R) {
    auto E = std::make_unique<Expr>();
    E->K = Expr::Kind::Binary;
    E->Op = std::move(Op);
    E->LHS = std::move(L);
    E->RHS = std::move(R);
    return E;
  }

  void fail(const char *What) {
    Diags.error(SourceLoc{0, cur().Line, 0},
                std::string("pseudo-language: expected ") + What);
    HadError = true;
  }

  std::vector<Token> Tokens;
  DiagnosticsEngine &Diags;
  size_t Index = 0;
  bool HadError = false;
};

} // namespace

std::optional<Operation>
igen::pseudo::parseOperation(std::string_view Text,
                             DiagnosticsEngine &Diags) {
  unsigned Before = Diags.errorCount();
  PLexer L(Text, Diags);
  PParser P(L.lexAll(), Diags);
  std::optional<Operation> Op = P.parse();
  if (Diags.errorCount() != Before)
    return std::nullopt;
  return Op;
}

std::optional<Affine> igen::pseudo::tryAffine(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::Number: {
    Affine A;
    A.Constant = E.Num;
    return A;
  }
  case Expr::Kind::Var: {
    Affine A;
    A.Coeffs[E.Name] = 1;
    return A;
  }
  case Expr::Kind::Unary: {
    if (E.Op != "-")
      return std::nullopt;
    auto Sub = tryAffine(*E.LHS);
    if (!Sub)
      return std::nullopt;
    Sub->Constant = -Sub->Constant;
    for (auto &[_, C] : Sub->Coeffs)
      C = -C;
    return Sub;
  }
  case Expr::Kind::Binary: {
    auto L = tryAffine(*E.LHS);
    auto R = tryAffine(*E.RHS);
    if (!L || !R)
      return std::nullopt;
    if (E.Op == "+" || E.Op == "-") {
      long long Sign = E.Op == "+" ? 1 : -1;
      Affine Out = *L;
      Out.Constant += Sign * R->Constant;
      for (auto &[V, C] : R->Coeffs) {
        Out.Coeffs[V] += Sign * C;
        if (Out.Coeffs[V] == 0)
          Out.Coeffs.erase(V);
      }
      return Out;
    }
    if (E.Op == "*") {
      // One side must be constant.
      const Affine *Const = L->isConstant() ? &*L : nullptr;
      const Affine *Other = Const ? &*R : &*L;
      if (!Const && R->isConstant()) {
        Const = &*R;
        Other = &*L;
      }
      if (!Const)
        return std::nullopt;
      Affine Out;
      Out.Constant = Other->Constant * Const->Constant;
      for (auto &[V, C] : Other->Coeffs)
        if (C * Const->Constant != 0)
          Out.Coeffs[V] = C * Const->Constant;
      return Out;
    }
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

std::optional<long long> igen::pseudo::rangeWidth(const Expr &Range) {
  if (Range.K != Expr::Kind::BitRange)
    return std::nullopt;
  if (!Range.Lo)
    return 1; // single-bit access
  auto Hi = tryAffine(*Range.Hi);
  auto Lo = tryAffine(*Range.Lo);
  if (!Hi || !Lo)
    return std::nullopt;
  Affine Diff = *Hi;
  Diff.Constant -= Lo->Constant;
  for (auto &[V, C] : Lo->Coeffs) {
    Diff.Coeffs[V] -= C;
    if (Diff.Coeffs[V] == 0)
      Diff.Coeffs.erase(V);
  }
  if (!Diff.isConstant())
    return std::nullopt;
  return Diff.Constant + 1;
}
