//===- igen-simdgen-main.cpp - SIMD generator CLI -----------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Usage: igen-simdgen <spec.xml> --mode=<c|scalar|wrap> [options] -o <out>
//
//   --mode=c        union-based C implementations (_c_*), Fig. 5
//   --mode=scalar   element-array C subset implementations (--prefix=)
//   --mode=wrap     interval wrappers (_ci_*/_ci_dd_*) declaring the
//                   IGen-compiled implementations (--prefix64=/--prefixdd=)
//
//===----------------------------------------------------------------------===//

#include "simdspec/SimdGen.h"
#include "support/StringExtras.h"

#include <cstdio>
#include <string>

using namespace igen;

int main(int Argc, char **Argv) {
  std::string Input, Output, Mode = "c";
  std::string Prefix = "_s64", Prefix64 = "_s64", PrefixDd = "_sdd";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 < Argc) {
      Output = Argv[++I];
    } else if (startsWith(Arg, "--mode=")) {
      Mode = Arg.substr(7);
    } else if (startsWith(Arg, "--prefix=")) {
      Prefix = Arg.substr(9);
    } else if (startsWith(Arg, "--prefix64=")) {
      Prefix64 = Arg.substr(11);
    } else if (startsWith(Arg, "--prefixdd=")) {
      PrefixDd = Arg.substr(11);
    } else if (!startsWith(Arg, "-")) {
      Input = Arg;
    } else {
      std::fprintf(stderr, "igen-simdgen: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (Input.empty() || Output.empty()) {
    std::fprintf(stderr,
                 "usage: igen-simdgen <spec.xml> --mode=<c|scalar|wrap> "
                 "-o <out>\n");
    return 1;
  }
  std::string Xml;
  if (!readFile(Input, Xml)) {
    std::fprintf(stderr, "igen-simdgen: cannot read '%s'\n", Input.c_str());
    return 1;
  }
  DiagnosticsEngine Diags;
  std::vector<IntrinsicSpec> Specs = parseIntrinsicsXml(Xml, Diags);
  std::string Out;
  if (Mode == "c")
    Out = emitUnionC(Specs, Diags);
  else if (Mode == "scalar")
    Out = emitScalarC(Specs, Prefix, Diags);
  else if (Mode == "wrap")
    Out = emitWrappers(Specs, Prefix64, PrefixDd, Diags);
  else {
    std::fprintf(stderr, "igen-simdgen: unknown mode '%s'\n", Mode.c_str());
    return 1;
  }
  std::fputs(Diags.render(Input).c_str(), stderr);
  if (Diags.hasErrors())
    return 1;
  if (!writeFile(Output, Out)) {
    std::fprintf(stderr, "igen-simdgen: cannot write '%s'\n",
                 Output.c_str());
    return 1;
  }
  return 0;
}
