//===- XmlParser.cpp - Minimal XML parser -------------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "simdspec/XmlParser.h"

#include "support/StringExtras.h"

#include <cctype>

using namespace igen;

namespace {

class XmlParserImpl {
public:
  XmlParserImpl(std::string_view Input, DiagnosticsEngine &Diags)
      : Input(Input), Diags(Diags) {}

  std::unique_ptr<XmlNode> parseDocument() {
    skipProlog();
    std::unique_ptr<XmlNode> Root = parseElement();
    if (!Root)
      error("expected a root element");
    return Root;
  }

private:
  SourceLoc loc() const {
    return SourceLoc{static_cast<uint32_t>(Pos), Line, Col};
  }
  void error(const std::string &Msg) { Diags.error(loc(), Msg); }

  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Input.size() ? Input[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Input[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  bool startsWithHere(std::string_view S) const {
    return Input.substr(Pos, S.size()) == S;
  }
  void skip(size_t N) {
    for (size_t I = 0; I < N && Pos < Input.size(); ++I)
      advance();
  }
  void skipWs() {
    while (Pos < Input.size() &&
           std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }

  void skipProlog() {
    while (true) {
      skipWs();
      if (startsWithHere("<?")) {
        while (Pos < Input.size() && !startsWithHere("?>"))
          advance();
        skip(2);
        continue;
      }
      if (startsWithHere("<!--")) {
        skipComment();
        continue;
      }
      if (startsWithHere("<!")) { // DOCTYPE etc.
        while (Pos < Input.size() && peek() != '>')
          advance();
        skip(1);
        continue;
      }
      return;
    }
  }

  void skipComment() {
    skip(4); // "<!--"
    while (Pos < Input.size() && !startsWithHere("-->"))
      advance();
    skip(3);
  }

  std::string parseName() {
    std::string Name;
    while (Pos < Input.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_' || peek() == '-' || peek() == '.' ||
            peek() == ':'))
      Name.push_back(advance());
    return Name;
  }

  std::string decodeEntities(std::string S) {
    S = replaceAll(std::move(S), "&lt;", "<");
    S = replaceAll(std::move(S), "&gt;", ">");
    S = replaceAll(std::move(S), "&quot;", "\"");
    S = replaceAll(std::move(S), "&apos;", "'");
    S = replaceAll(std::move(S), "&amp;", "&");
    return S;
  }

  std::string parseAttrValue() {
    char Quote = peek();
    if (Quote != '"' && Quote != '\'') {
      error("expected quoted attribute value");
      return {};
    }
    advance();
    std::string Value;
    while (Pos < Input.size() && peek() != Quote)
      Value.push_back(advance());
    if (Pos >= Input.size()) {
      error("unterminated attribute value");
      return Value;
    }
    advance();
    return decodeEntities(Value);
  }

  std::unique_ptr<XmlNode> parseElement() {
    if (peek() != '<')
      return nullptr;
    advance();
    auto Node = std::make_unique<XmlNode>();
    Node->Name = parseName();
    if (Node->Name.empty()) {
      error("expected element name after '<'");
      return nullptr;
    }
    // Attributes.
    while (true) {
      skipWs();
      if (startsWithHere("/>")) {
        skip(2);
        return Node;
      }
      if (peek() == '>') {
        advance();
        break;
      }
      std::string Key = parseName();
      if (Key.empty()) {
        error("malformed attribute in <" + Node->Name + ">");
        return Node;
      }
      skipWs();
      if (peek() == '=') {
        advance();
        skipWs();
        Node->Attributes[Key] = parseAttrValue();
      } else {
        Node->Attributes[Key] = "";
      }
    }
    // Content.
    while (Pos < Input.size()) {
      if (startsWithHere("<!--")) {
        skipComment();
        continue;
      }
      if (startsWithHere("</")) {
        skip(2);
        std::string Closing = parseName();
        skipWs();
        if (peek() == '>')
          advance();
        if (Closing != Node->Name)
          error("mismatched closing tag </" + Closing + "> for <" +
                Node->Name + ">");
        return Node;
      }
      if (peek() == '<') {
        std::unique_ptr<XmlNode> Child = parseElement();
        if (!Child)
          return Node;
        Node->Children.push_back(std::move(Child));
        continue;
      }
      std::string Text;
      while (Pos < Input.size() && peek() != '<')
        Text.push_back(advance());
      Node->Text += decodeEntities(Text);
    }
    error("unterminated element <" + Node->Name + ">");
    return Node;
  }

  std::string_view Input;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace

std::unique_ptr<XmlNode> igen::parseXml(std::string_view Input,
                                        DiagnosticsEngine &Diags) {
  XmlParserImpl P(Input, Diags);
  unsigned Before = Diags.errorCount();
  std::unique_ptr<XmlNode> Root = P.parseDocument();
  if (Diags.errorCount() != Before)
    return nullptr;
  return Root;
}
