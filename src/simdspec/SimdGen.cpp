//===- SimdGen.cpp - SIMD intrinsic implementation generator -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "simdspec/SimdGen.h"

#include "simdspec/XmlParser.h"
#include "support/StringExtras.h"

#include <map>
#include <set>

using namespace igen;
using namespace igen::pseudo;

VecTypeInfo igen::vecTypeInfo(const std::string &TypeName) {
  if (TypeName == "__m128d")
    return {2, 64};
  if (TypeName == "__m256d")
    return {4, 64};
  if (TypeName == "__m128")
    return {4, 32};
  if (TypeName == "__m256")
    return {8, 32};
  return {};
}

std::vector<IntrinsicSpec>
igen::parseIntrinsicsXml(std::string_view Xml, DiagnosticsEngine &Diags) {
  std::vector<IntrinsicSpec> Specs;
  std::unique_ptr<XmlNode> Root = parseXml(Xml, Diags);
  if (!Root)
    return Specs;
  for (const XmlNode *Node : Root->children("intrinsic")) {
    IntrinsicSpec Spec;
    Spec.Name = Node->attr("name");
    Spec.RetType = Node->attr("rettype");
    if (const XmlNode *Cat = Node->child("category"))
      Spec.Category = std::string(trim(Cat->Text));
    if (const XmlNode *Cpu = Node->child("CPUID"))
      Spec.CpuId = std::string(trim(Cpu->Text));
    for (const XmlNode *P : Node->children("parameter"))
      Spec.Params.push_back(
          IntrinsicParam{P->attr("type"), P->attr("varname")});
    const XmlNode *OpNode = Node->child("operation");
    if (!OpNode) {
      Diags.warning(SourceLoc(), "intrinsic " + Spec.Name +
                                     " has no <operation>; skipped");
      continue;
    }
    std::optional<Operation> Op = parseOperation(OpNode->Text, Diags);
    if (!Op) {
      Diags.warning(SourceLoc(), "intrinsic " + Spec.Name +
                                     ": unparsable operation; skipped");
      continue;
    }
    Spec.Op = std::move(*Op);
    Specs.push_back(std::move(Spec));
  }
  return Specs;
}

namespace {

/// How a named entity is accessed during emission.
struct VarInfo {
  enum class Kind { Vector, IntParam, LocalInt, LoopVar } K;
  VecTypeInfo Vec;   ///< for Kind::Vector
  bool IsUnion = false;
};

/// Shared C emission for both the union and the array flavours.
class BodyEmitter {
public:
  BodyEmitter(const IntrinsicSpec &Spec, bool UnionMode,
              DiagnosticsEngine &Diags)
      : Spec(Spec), UnionMode(UnionMode), Diags(Diags) {
    VecTypeInfo Ret = vecTypeInfo(Spec.RetType);
    if (Ret.isVector())
      Vars["dst"] = VarInfo{VarInfo::Kind::Vector, Ret, UnionMode};
    for (const IntrinsicParam &P : Spec.Params) {
      VecTypeInfo VI = vecTypeInfo(P.Type);
      if (VI.isVector())
        Vars[P.Name] = VarInfo{VarInfo::Kind::Vector, VI, UnionMode};
      else
        Vars[P.Name] = VarInfo{VarInfo::Kind::IntParam, {}, false};
    }
  }

  /// Emits the statements; returns false if an unsupported construct was
  /// found (the caller then skips this intrinsic).
  bool emit(std::string &Out, int Indent) {
    // Pre-pass: find scalar locals (assigned plain identifiers).
    collectLocals(Spec.Op.Stmts);
    for (const std::string &L : LocalOrder)
      Out += std::string(Indent, ' ') + "int " + L + ";\n";
    return emitStmts(Spec.Op.Stmts, Out, Indent);
  }

  bool HadUnsupported = false;

private:
  void note(const std::string &Msg) {
    if (!HadUnsupported)
      Diags.warning(SourceLoc(),
                    "intrinsic " + Spec.Name + ": " + Msg + "; skipped");
    HadUnsupported = true;
  }

  void collectLocals(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts) {
      switch (S->K) {
      case Stmt::Kind::Assign:
        if (S->Target->K == Expr::Kind::Var &&
            !Vars.count(S->Target->Name)) {
          Vars[S->Target->Name] = VarInfo{VarInfo::Kind::LocalInt, {},
                                          false};
          LocalOrder.push_back(S->Target->Name);
        }
        break;
      case Stmt::Kind::For:
        if (!Vars.count(S->LoopVar)) {
          Vars[S->LoopVar] = VarInfo{VarInfo::Kind::LoopVar, {}, false};
          LocalOrder.push_back(S->LoopVar); // declared at function top
        }
        collectLocals(S->Body);
        break;
      case Stmt::Kind::If:
        collectLocals(S->Then);
        collectLocals(S->Else);
        break;
      }
    }
  }

  /// Emits a bit-range access over \p V; width must match the element
  /// size for vectors or be <= 32 for integer operands.
  std::string emitBitRange(const Expr &E) {
    auto It = Vars.find(E.Name);
    if (It == Vars.end()) {
      note("unknown operand '" + E.Name + "'");
      return "0";
    }
    const VarInfo &VI = It->second;
    std::optional<long long> Width = rangeWidth(E);
    if (!Width) {
      note("non-constant bit-range width on '" + E.Name + "'");
      return "0";
    }
    std::string Lo = emitExpr(E.Lo ? *E.Lo : *E.Hi);
    if (VI.K == VarInfo::Kind::Vector) {
      if (*Width != VI.Vec.ElemBits) {
        note(formatString("bit range of width %lld does not match the "
                          "%d-bit elements of '%s'",
                          *Width, VI.Vec.ElemBits, E.Name.c_str()));
        return "0";
      }
      std::string Index =
          "(" + Lo + ") / " + std::to_string(VI.Vec.ElemBits);
      if (UnionMode)
        return E.Name + (VI.Vec.ElemBits == 64 ? ".f[" : ".f32[") + Index +
               "]";
      return E.Name + "[" + Index + "]";
    }
    // Integer operand: bit extraction (used for imm8 control bits).
    if (*Width > 32) {
      note("wide bit range on integer operand");
      return "0";
    }
    long long Mask = (1LL << *Width) - 1;
    return "((" + E.Name + " >> (" + Lo + ")) & " + std::to_string(Mask) +
           ")";
  }

  std::string emitCall(const Expr &E) {
    auto Arg = [&](size_t I) { return emitExpr(*E.Args[I]); };
    if (E.Name == "SQRT")
      return "sqrt(" + Arg(0) + ")";
    if (E.Name == "ABS")
      return "fabs(" + Arg(0) + ")";
    if (E.Name == "MIN")
      return "fmin(" + Arg(0) + ", " + Arg(1) + ")";
    if (E.Name == "MAX")
      return "fmax(" + Arg(0) + ", " + Arg(1) + ")";
    if (E.Name == "FLOOR")
      return "floor(" + Arg(0) + ")";
    if (E.Name == "CEIL")
      return "ceil(" + Arg(0) + ")";
    if (E.Name == "Convert_FP32_To_FP64")
      return "(double)(" + Arg(0) + ")";
    if (E.Name == "Convert_FP64_To_FP32")
      return "(float)(" + Arg(0) + ")";
    if (E.Name == "SELECT")
      return "((" + Arg(0) + ") ? " + Arg(1) + " : " + Arg(2) + ")";
    note("unknown helper function '" + E.Name + "'");
    return "0";
  }

  std::string emitExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::Number:
      return std::to_string(E.Num);
    case Expr::Kind::Var: {
      auto It = Vars.find(E.Name);
      if (It == Vars.end() || It->second.K == VarInfo::Kind::Vector) {
        if (E.Name == "MAX") // dst[MAX:..] handled at the stmt level
          return "MAX";
        note("whole-vector operand '" + E.Name + "' in expression");
        return "0";
      }
      return E.Name;
    }
    case Expr::Kind::BitRange:
      return emitBitRange(E);
    case Expr::Kind::Binary:
      return "(" + emitExpr(*E.LHS) + " " + E.Op + " " + emitExpr(*E.RHS) +
             ")";
    case Expr::Kind::Unary:
      return E.Op + "(" + emitExpr(*E.LHS) + ")";
    case Expr::Kind::Call:
      return emitCall(E);
    }
    return "0";
  }

  static bool isMaxRange(const Expr &E) {
    return E.K == Expr::Kind::BitRange && E.Hi &&
           E.Hi->K == Expr::Kind::Var && E.Hi->Name == "MAX";
  }

  bool emitStmts(const std::vector<StmtPtr> &Stmts, std::string &Out,
                 int Indent) {
    std::string Pad(Indent, ' ');
    for (const StmtPtr &S : Stmts) {
      switch (S->K) {
      case Stmt::Kind::Assign: {
        // dst[MAX:256] := 0 zeroes bits beyond the result width: a no-op
        // for same-width results.
        if (isMaxRange(*S->Target)) {
          Out += Pad + "/* dst[MAX:...] := 0 (upper bits, no-op) */\n";
          break;
        }
        std::string Target = S->Target->K == Expr::Kind::BitRange
                                 ? emitBitRange(*S->Target)
                                 : S->Target->Name;
        Out += Pad + Target + " = " + emitExpr(*S->Value) + ";\n";
        break;
      }
      case Stmt::Kind::For: {
        Out += Pad + "for (" + S->LoopVar + " = " + emitExpr(*S->From) +
               "; " + S->LoopVar + " <= " + emitExpr(*S->To) + "; " +
               S->LoopVar + " = " + S->LoopVar + " + 1) {\n";
        if (!emitStmts(S->Body, Out, Indent + 2))
          return false;
        Out += Pad + "}\n";
        break;
      }
      case Stmt::Kind::If: {
        Out += Pad + "if (" + emitExpr(*S->Cond) + ") {\n";
        if (!emitStmts(S->Then, Out, Indent + 2))
          return false;
        if (!S->Else.empty()) {
          Out += Pad + "} else {\n";
          if (!emitStmts(S->Else, Out, Indent + 2))
            return false;
        }
        Out += Pad + "}\n";
        break;
      }
      }
      if (HadUnsupported)
        return false;
    }
    return !HadUnsupported;
  }

  const IntrinsicSpec &Spec;
  bool UnionMode;
  DiagnosticsEngine &Diags;
  std::map<std::string, VarInfo> Vars;
  std::vector<std::string> LocalOrder;
};

const char *unionTypeFor(const std::string &VecType) {
  if (VecType == "__m128d")
    return "vec128d";
  if (VecType == "__m256d")
    return "vec256d";
  if (VecType == "__m128")
    return "vec128";
  if (VecType == "__m256")
    return "vec256";
  return nullptr;
}

} // namespace

std::string igen::emitUnionC(const std::vector<IntrinsicSpec> &Specs,
                             DiagnosticsEngine &Diags) {
  std::string Out;
  Out += "// Generated by igen-simdgen (SIMD2C, Fig. 5). Do not edit.\n";
  Out += "#ifndef IGEN_SIMD_C_IMPL_H\n#define IGEN_SIMD_C_IMPL_H\n";
  Out += "#include <immintrin.h>\n#include <math.h>\n";
  Out += "#include <stdint.h>\n\n";
  Out += "typedef union {\n  __m128d v;\n  uint64_t i[2];\n"
         "  double f[2];\n} vec128d;\n";
  Out += "typedef union {\n  __m256d v;\n  uint64_t i[4];\n"
         "  double f[4];\n} vec256d;\n";
  Out += "typedef union {\n  __m128 v;\n  uint32_t i[4];\n"
         "  float f32[4];\n} vec128;\n";
  Out += "typedef union {\n  __m256 v;\n  uint32_t i[8];\n"
         "  float f32[8];\n} vec256;\n\n";

  for (const IntrinsicSpec &Spec : Specs) {
    const char *RetUnion = unionTypeFor(Spec.RetType);
    if (!RetUnion) {
      Diags.warning(SourceLoc(), "intrinsic " + Spec.Name +
                                     ": non-vector return; skipped in "
                                     "union mode");
      continue;
    }
    std::string Body;
    BodyEmitter Emitter(Spec, /*UnionMode=*/true, Diags);
    std::string Inner;
    if (!Emitter.emit(Inner, 2))
      continue;

    Body += "static inline " + Spec.RetType + " _c" + Spec.Name + "(";
    for (size_t I = 0; I < Spec.Params.size(); ++I) {
      if (I)
        Body += ", ";
      const IntrinsicParam &P = Spec.Params[I];
      Body += P.Type + " " + (unionTypeFor(P.Type) ? "_" : "") + P.Name;
    }
    Body += ") {\n";
    Body += "  " + std::string(RetUnion) + " dst";
    for (const IntrinsicParam &P : Spec.Params)
      if (const char *U = unionTypeFor(P.Type)) {
        Body += ";\n  " + std::string(U) + " " + P.Name + " = {.v = _" +
                P.Name + "}";
      }
    Body += ";\n";
    Body += Inner;
    Body += "  return dst.v;\n}\n\n";
    Out += Body;
  }
  Out += "#endif // IGEN_SIMD_C_IMPL_H\n";
  return Out;
}

std::string igen::emitScalarC(const std::vector<IntrinsicSpec> &Specs,
                              const std::string &Prefix,
                              DiagnosticsEngine &Diags) {
  std::string Out;
  Out += "/* Generated by igen-simdgen: element-array implementations in\n"
         "   the IGen C subset, to be compiled by igen (Fig. 4). */\n\n";
  for (const IntrinsicSpec &Spec : Specs) {
    VecTypeInfo Ret = vecTypeInfo(Spec.RetType);
    if (!Ret.isVector()) {
      Diags.warning(SourceLoc(), "intrinsic " + Spec.Name +
                                     ": non-vector return; skipped in "
                                     "scalar mode");
      continue;
    }
    std::string Inner;
    BodyEmitter Emitter(Spec, /*UnionMode=*/false, Diags);
    if (!Emitter.emit(Inner, 2))
      continue;
    std::string Sig = "void " + Prefix + Spec.Name + "(" +
                      std::string(Ret.ElemBits == 64 ? "double" : "float") +
                      " *dst";
    for (const IntrinsicParam &P : Spec.Params) {
      VecTypeInfo VI = vecTypeInfo(P.Type);
      if (VI.isVector())
        Sig += std::string(", ") +
               (VI.ElemBits == 64 ? "double" : "float") + " *" + P.Name;
      else
        Sig += ", " + P.Type + " " + P.Name;
    }
    Sig += ")";
    Out += Sig + " {\n" + Inner + "}\n\n";
  }
  return Out;
}

namespace {

/// Interval vector type for a SIMD type (Table II).
std::string intervalVecType(const std::string &VecType, bool Dd) {
  VecTypeInfo VI = vecTypeInfo(VecType);
  if (Dd) {
    if (VI.Lanes == 2)
      return "ddi_2";
    if (VI.Lanes == 4)
      return "ddi_4";
    return "ddi_8";
  }
  if (VI.Lanes == 2)
    return "m256di_1";
  if (VI.Lanes == 4)
    return "m256di_2";
  return "m256di_4";
}

void emitWrapperSet(const std::vector<IntrinsicSpec> &Specs, bool Dd,
                    const std::string &ScalarPrefix,
                    const std::string &WrapPrefix, std::string &Out,
                    DiagnosticsEngine &Diags) {
  std::string Elem = Dd ? "ddi" : "f64i";
  for (const IntrinsicSpec &Spec : Specs) {
    VecTypeInfo Ret = vecTypeInfo(Spec.RetType);
    if (!Ret.isVector())
      continue;
    // Check emittability once more (mirrors emitScalarC's filter).
    {
      DiagnosticsEngine Scratch;
      std::string Tmp;
      BodyEmitter Probe(Spec, false, Scratch);
      if (!Probe.emit(Tmp, 0))
        continue;
    }
    (void)Diags;
    // Declaration of the IGen-compiled array implementation.
    std::string Decl = "void " + ScalarPrefix + Spec.Name + "(" + Elem +
                       " *dst";
    for (const IntrinsicParam &P : Spec.Params) {
      VecTypeInfo VI = vecTypeInfo(P.Type);
      Decl += VI.isVector() ? (", " + Elem + " *" + P.Name)
                            : (", " + P.Type + " " + P.Name);
    }
    Decl += ");\n";
    Out += Decl;

    std::string RetVt = intervalVecType(Spec.RetType, Dd);
    std::string Sig = "static inline " + RetVt + " " + WrapPrefix +
                      Spec.Name + "(";
    for (size_t I = 0; I < Spec.Params.size(); ++I) {
      if (I)
        Sig += ", ";
      const IntrinsicParam &P = Spec.Params[I];
      VecTypeInfo VI = vecTypeInfo(P.Type);
      Sig += VI.isVector() ? (intervalVecType(P.Type, Dd) + " " + P.Name)
                           : (P.Type + " " + P.Name);
    }
    Sig += ")";
    Out += Sig + " {\n";
    Out += "  " + Elem + " _dst[" + std::to_string(Ret.Lanes) + "];\n";
    std::string Args = "_dst";
    for (const IntrinsicParam &P : Spec.Params) {
      VecTypeInfo VI = vecTypeInfo(P.Type);
      if (!VI.isVector()) {
        Args += ", " + P.Name;
        continue;
      }
      std::string Vt = intervalVecType(P.Type, Dd);
      Out += "  " + Elem + " _" + P.Name + "[" +
             std::to_string(VI.Lanes) + "];\n";
      Out += "  ia_storeu_" + Vt + "(_" + P.Name + ", " + P.Name + ");\n";
      Args += ", _" + P.Name;
    }
    Out += "  " + ScalarPrefix + Spec.Name + "(" + Args + ");\n";
    Out += "  return ia_loadu_" + RetVt + "(_dst);\n";
    Out += "}\n\n";
  }
}

} // namespace

std::string igen::emitWrappers(const std::vector<IntrinsicSpec> &Specs,
                               const std::string &Prefix64,
                               const std::string &PrefixDd,
                               DiagnosticsEngine &Diags) {
  std::string Out;
  Out += "// Generated by igen-simdgen: interval wrappers over the\n"
         "// IGen-compiled array implementations. Do not edit.\n";
  Out += "#ifndef IGEN_SIMD_H\n#define IGEN_SIMD_H\n";
  Out += "#include \"interval/igen_lib.h\"\n\n";
  Out += "// ---- double-precision interval intrinsics (_ci_*) ----\n";
  emitWrapperSet(Specs, /*Dd=*/false, Prefix64, "_ci", Out, Diags);
  Out += "// ---- double-double interval intrinsics (_ci_dd_*) ----\n";
  emitWrapperSet(Specs, /*Dd=*/true, PrefixDd, "_ci_dd", Out, Diags);
  Out += "#endif // IGEN_SIMD_H\n";
  return Out;
}
