//===- SimdGen.h - SIMD intrinsic implementation generator ------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMD2C generator of Section V (Fig. 4): reads the vendor XML
/// specification of SIMD intrinsics and emits
///
///  1. emitUnionC():  plain C implementations over union-wrapped vectors
///     (exactly Fig. 5's output), used to validate the generator against
///     the hardware intrinsics;
///  2. emitScalarC(): equivalent implementations over element arrays in
///     the IGen-supported C subset -- these are fed through IGen itself to
///     obtain sound interval implementations ("igen_simd.c" of Fig. 4);
///  3. emitWrappers(): thin marshalling wrappers (_ci_<name> and
///     _ci_dd_<name>) exposing the IGen-compiled array implementations on
///     the m256di_k / ddi_k vector-of-interval types the transformer emits
///     for unrecognized intrinsics.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SIMDSPEC_SIMDGEN_H
#define IGEN_SIMDSPEC_SIMDGEN_H

#include "simdspec/PseudoLang.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace igen {

/// One parameter of an intrinsic.
struct IntrinsicParam {
  std::string Type; ///< "__m256d", "int", ...
  std::string Name;
};

/// A parsed intrinsic specification.
struct IntrinsicSpec {
  std::string Name; ///< "_mm256_add_pd"
  std::string RetType;
  std::string Category;
  std::string CpuId;
  std::vector<IntrinsicParam> Params;
  pseudo::Operation Op;
};

/// Lane/element info for the SIMD types handled by the generator.
struct VecTypeInfo {
  int Lanes = 0;
  int ElemBits = 0; ///< 32 or 64
  bool isVector() const { return Lanes > 0; }
};
VecTypeInfo vecTypeInfo(const std::string &TypeName);

/// Parses the intrinsics data file. Intrinsics whose operation cannot be
/// handled are skipped with a warning (the paper's generator also covers
/// only a large subset).
std::vector<IntrinsicSpec> parseIntrinsicsXml(std::string_view Xml,
                                              DiagnosticsEngine &Diags);

/// Fig. 5-style C implementations over vec unions; function names are
/// prefixed "_c" (e.g. _c_mm256_add_pd).
std::string emitUnionC(const std::vector<IntrinsicSpec> &Specs,
                       DiagnosticsEngine &Diags);

/// Element-array implementations in the IGen C subset; function names get
/// \p Prefix (e.g. "_s64" -> _s64_mm256_add_pd(double *dst, ...)).
std::string emitScalarC(const std::vector<IntrinsicSpec> &Specs,
                        const std::string &Prefix,
                        DiagnosticsEngine &Diags);

/// Wrapper header exposing _ci_*/_ci_dd_* over the interval vector types;
/// declares the IGen-compiled array implementations with prefixes
/// \p Prefix64 and \p PrefixDd.
std::string emitWrappers(const std::vector<IntrinsicSpec> &Specs,
                         const std::string &Prefix64,
                         const std::string &PrefixDd,
                         DiagnosticsEngine &Diags);

} // namespace igen

#endif // IGEN_SIMDSPEC_SIMDGEN_H
