//===- XmlParser.h - Minimal XML parser for intrinsic specs -----*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small XML parser sufficient for the Intel Intrinsics Guide data file
/// format (Fig. 5): nested elements, single- or double-quoted attributes,
/// text content, comments, and entity references. No namespaces, CDATA or
/// DTDs (the data file uses none).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SIMDSPEC_XMLPARSER_H
#define IGEN_SIMDSPEC_XMLPARSER_H

#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace igen {

/// One XML element: name, attributes, child elements and text content
/// (concatenation of all text nodes directly below this element).
struct XmlNode {
  std::string Name;
  std::map<std::string, std::string> Attributes;
  std::vector<std::unique_ptr<XmlNode>> Children;
  std::string Text;

  /// Attribute value or "" when absent.
  const std::string &attr(const std::string &Key) const {
    static const std::string Empty;
    auto It = Attributes.find(Key);
    return It == Attributes.end() ? Empty : It->second;
  }

  /// First child with the given element name, or null.
  const XmlNode *child(const std::string &ChildName) const {
    for (const auto &C : Children)
      if (C->Name == ChildName)
        return C.get();
    return nullptr;
  }

  /// All children with the given element name.
  std::vector<const XmlNode *> children(const std::string &ChildName) const {
    std::vector<const XmlNode *> Out;
    for (const auto &C : Children)
      if (C->Name == ChildName)
        Out.push_back(C.get());
    return Out;
  }
};

/// Parses an XML document; returns the root element or null on error
/// (diagnostics report the position).
std::unique_ptr<XmlNode> parseXml(std::string_view Input,
                                  DiagnosticsEngine &Diags);

} // namespace igen

#endif // IGEN_SIMDSPEC_XMLPARSER_H
