//===- StringExtras.h - Small string helpers --------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the frontend, the transformer, and the SIMD
/// specification parser.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SUPPORT_STRINGEXTRAS_H
#define IGEN_SUPPORT_STRINGEXTRAS_H

#include <string>
#include <string_view>
#include <vector>

namespace igen {

/// Returns true if \p S starts with \p Prefix.
inline bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

/// Returns true if \p S ends with \p Suffix.
inline bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

/// Strips ASCII whitespace from both ends of \p S.
inline std::string_view trim(std::string_view S) {
  const char *WS = " \t\r\n\f\v";
  size_t B = S.find_first_not_of(WS);
  if (B == std::string_view::npos)
    return {};
  size_t E = S.find_last_not_of(WS);
  return S.substr(B, E - B + 1);
}

/// Splits \p S on character \p Sep; empty pieces are kept.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Replaces every occurrence of \p From in \p S with \p To.
std::string replaceAll(std::string S, std::string_view From,
                       std::string_view To);

/// Formats like printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Reads a whole file into a string. Returns false on I/O failure.
bool readFile(const std::string &Path, std::string &Out);

/// Writes \p Contents to \p Path, replacing the file. Returns false on
/// failure.
bool writeFile(const std::string &Path, const std::string &Contents);

} // namespace igen

#endif // IGEN_SUPPORT_STRINGEXTRAS_H
