//===- SourceLoc.h - Source locations and ranges ----------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations used by the frontend and diagnostics.
/// A SourceLoc is a byte offset into a SourceBuffer plus the 1-based
/// line/column pair computed when the token was lexed.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SUPPORT_SOURCELOC_H
#define IGEN_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace igen {

/// A position in a source buffer. Line and column are 1-based; a value of
/// zero for Line means "invalid/unknown location".
struct SourceLoc {
  uint32_t Offset = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }

  static SourceLoc invalid() { return SourceLoc(); }
};

/// A half-open range [Begin, End) of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;
};

} // namespace igen

#endif // IGEN_SUPPORT_SOURCELOC_H
