//===- Diagnostics.cpp - Error and warning reporting ----------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace igen;

void DiagnosticsEngine::report(DiagSeverity Severity, SourceLoc Loc,
                               std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticsEngine::render(const std::string &FileName) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += FileName;
    if (D.Loc.isValid()) {
      Out += ':';
      Out += std::to_string(D.Loc.Line);
      Out += ':';
      Out += std::to_string(D.Loc.Col);
    }
    Out += ": ";
    Out += severityName(D.Severity);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}
