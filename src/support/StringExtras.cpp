//===- StringExtras.cpp - Small string helpers ----------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "support/StringExtras.h"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace igen;

std::vector<std::string_view> igen::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string igen::replaceAll(std::string S, std::string_view From,
                             std::string_view To) {
  if (From.empty())
    return S;
  size_t Pos = 0;
  while ((Pos = S.find(From, Pos)) != std::string::npos) {
    S.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return S;
}

std::string igen::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

bool igen::readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool igen::writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream OutFile(Path, std::ios::binary | std::ios::trunc);
  if (!OutFile)
    return false;
  OutFile << Contents;
  return static_cast<bool>(OutFile);
}
