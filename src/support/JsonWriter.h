//===- JsonWriter.h - Minimal streaming JSON emitter ------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shared JSON emitter for every machine-readable report the project
/// writes: the bench `--json` files, the profiler report
/// (IGEN_PROF_OUT / igen_prof_report_json) and the driver's `--profile`
/// site-table sidecar. Streaming with explicit begin/end calls, comma and
/// indentation management, and full string escaping; every report carries
/// a top-level "schema_version" field so downstream tooling can detect
/// format changes.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SUPPORT_JSONWRITER_H
#define IGEN_SUPPORT_JSONWRITER_H

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace igen {

/// Streaming JSON writer with 2-space pretty printing. Values inside an
/// object must be preceded by key(); values inside an array are appended
/// directly. Non-finite doubles are emitted as JSON strings ("inf",
/// "-inf", "nan") since JSON has no literal for them.
class JsonWriter {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(std::string_view K) {
    prepareValue();
    appendQuoted(K);
    Out += ": ";
    PendingKey = true;
  }

  void value(std::string_view S) {
    prepareValue();
    appendQuoted(S);
  }
  void value(const char *S) { value(std::string_view(S)); }
  void value(bool B) {
    prepareValue();
    Out += B ? "true" : "false";
  }
  void value(double D) {
    prepareValue();
    if (!std::isfinite(D)) {
      Out += std::isnan(D) ? "\"nan\"" : (D > 0 ? "\"inf\"" : "\"-inf\"");
      return;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
  }
  void value(uint64_t V) {
    prepareValue();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
    Out += Buf;
  }
  void value(int64_t V) {
    prepareValue();
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
    Out += Buf;
  }
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }

  /// key() + value() in one call.
  template <typename T> void field(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// The finished document (call after the outermost end*()).
  std::string take() {
    Out += '\n';
    return std::move(Out);
  }

  /// Writes the finished document to \p Path; false on I/O failure.
  bool writeTo(const char *Path) {
    std::string Text = take();
    std::FILE *F = std::fopen(Path, "w");
    if (!F)
      return false;
    bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
    return (std::fclose(F) == 0) && Ok;
  }

private:
  struct Level {
    bool HasItems = false;
  };

  void open(char C) {
    prepareValue();
    Out += C;
    Levels.push_back({});
  }

  void close(char C) {
    bool Had = !Levels.empty() && Levels.back().HasItems;
    if (!Levels.empty())
      Levels.pop_back();
    if (Had) {
      Out += '\n';
      indent();
    }
    Out += C;
  }

  /// Comma/newline/indent before the next value (or key) at this level.
  void prepareValue() {
    if (PendingKey) { // value completing a "key": pair
      PendingKey = false;
      return;
    }
    if (Levels.empty())
      return;
    if (Levels.back().HasItems)
      Out += ',';
    Levels.back().HasItems = true;
    Out += '\n';
    indent();
  }

  void indent() { Out.append(Levels.size() * 2, ' '); }

  void appendQuoted(std::string_view S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      case '\r':
        Out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  std::string Out;
  std::vector<Level> Levels;
  bool PendingKey = false;
};

} // namespace igen

#endif // IGEN_SUPPORT_JSONWRITER_H
