//===- Diagnostics.h - Error and warning reporting --------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine in the style of Clang's: diagnostics carry a
/// severity, a source location, and a message. The engine collects them so
/// tools can print them and tests can assert on them. Library code never
/// aborts on user errors; it reports and lets the driver decide.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SUPPORT_DIAGNOSTICS_H
#define IGEN_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace igen {

enum class DiagSeverity { Note, Warning, Error };

/// A single reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced during a compilation.
class DiagnosticsEngine {
public:
  /// Reports a diagnostic with severity \p Severity at \p Loc.
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "file:line:col: severity: message" lines.
  /// \p FileName is used as the file component for valid locations.
  std::string render(const std::string &FileName) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace igen

#endif // IGEN_SUPPORT_DIAGNOSTICS_H
