//===- Json.h - Minimal JSON value parser for serve frames ------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the serve protocol. The
/// repo already has a streaming *writer* (support/JsonWriter.h); this is
/// its input-side counterpart, sized for one request frame at a time.
/// It is deliberately strict (RFC 8259 grammar, no comments, no
/// trailing commas) and hardened for untrusted input: nesting depth and
/// total element counts are capped so a hostile frame cannot stack- or
/// heap-exhaust the daemon. Errors carry a byte offset for typed error
/// responses.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_JSON_H
#define IGEN_SERVER_JSON_H

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace igen {
namespace server {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps member iteration deterministic, which the tests rely
/// on when comparing rendered errors.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// A parsed JSON value. Numbers keep both the double value and the raw
/// spelling: eval requests may pass interval endpoints as decimal text,
/// and the raw spelling lets callers re-parse with directed rounding.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  explicit JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  explicit JsonValue(double D, std::string Raw = "")
      : K(Kind::Number), NumV(D), StrV(std::move(Raw)) {}
  explicit JsonValue(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  explicit JsonValue(JsonArray A)
      : K(Kind::Array), ArrV(std::make_shared<JsonArray>(std::move(A))) {}
  explicit JsonValue(JsonObject O)
      : K(Kind::Object), ObjV(std::make_shared<JsonObject>(std::move(O))) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolV; }
  double numberValue() const { return NumV; }
  /// Raw spelling for numbers; the decoded text for strings.
  const std::string &stringValue() const { return StrV; }
  const JsonArray &arrayValue() const { return *ArrV; }
  const JsonObject &objectValue() const { return *ObjV; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue *member(std::string_view Name) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = ObjV->find(Name);
    return It == ObjV->end() ? nullptr : &It->second;
  }

private:
  Kind K;
  bool BoolV = false;
  double NumV = 0.0;
  std::string StrV;
  // shared_ptr keeps JsonValue copyable without deep copies; parsed
  // frames are read-only after construction.
  std::shared_ptr<JsonArray> ArrV;
  std::shared_ptr<JsonObject> ObjV;
};

/// Parse limits. The defaults comfortably fit every legitimate serve
/// frame while bounding adversarial ones.
struct JsonLimits {
  size_t MaxDepth = 32;
  size_t MaxElements = 1 << 16; ///< total values across the document
  size_t MaxStringBytes = 1 << 20;
};

struct JsonParseResult {
  bool Ok = false;
  JsonValue Value;
  std::string Error;   ///< empty on success
  size_t ErrorOffset = 0;
};

/// Parses exactly one JSON document from \p Text (trailing whitespace
/// allowed, trailing garbage is an error).
JsonParseResult parseJson(std::string_view Text,
                          const JsonLimits &Limits = JsonLimits());

/// Escapes \p S as the body of a JSON string literal (no quotes added).
/// Mirrors support/JsonWriter.h so server code composing error strings
/// by hand stays consistent with the streaming writer.
std::string jsonEscape(std::string_view S);

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_JSON_H
