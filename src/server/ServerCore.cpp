//===- ServerCore.cpp - Serve-mode request dispatch --------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/ServerCore.h"

#include "frontend/AST.h"
#include "harden/FenvSentinel.h"
#include "interval/Rounding.h"
#include "profile/ServeCounters.h"
#include "server/Evaluator.h"
#include "server/Json.h"
#include "support/JsonWriter.h"

#include <cerrno>
#include <cfenv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace igen;
using namespace igen::server;

namespace {

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

/// JsonWriter pretty-prints; the protocol is one line per frame. Raw
/// newlines never occur inside JSON string literals (the writer escapes
/// them), so dropping each '\n' plus its following indent is lossless.
std::string flattenOneLine(std::string Pretty) {
  std::string Out;
  Out.reserve(Pretty.size());
  size_t I = 0;
  while (I < Pretty.size()) {
    char C = Pretty[I];
    if (C == '\n') {
      ++I;
      while (I < Pretty.size() && Pretty[I] == ' ')
        ++I;
      continue;
    }
    Out.push_back(C);
    ++I;
  }
  return Out;
}

std::string doubleToHex(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Bits);
  return Buf;
}

bool hexToDouble(std::string_view S, double &Out) {
  uint64_t Bits;
  if (!parseHandle(S, Bits)) // same 16-hex-digit grammar
    return false;
  std::memcpy(&Out, &Bits, sizeof(Out));
  return true;
}

/// Echoable request id: strings and numbers only (objects/arrays as ids
/// are rejected as bad requests before this runs).
struct RequestId {
  bool Present = false;
  bool IsString = false;
  std::string Str; ///< string value, or the raw number spelling
};

void writeId(JsonWriter &W, const RequestId &Id) {
  if (!Id.Present)
    return;
  if (Id.IsString) {
    W.field("id", std::string_view(Id.Str));
    return;
  }
  // Re-emit the number exactly as sent.
  W.key("id");
  char *End = nullptr;
  long long LL = std::strtoll(Id.Str.c_str(), &End, 10);
  if (End && *End == '\0')
    W.value(static_cast<int64_t>(LL));
  else
    W.value(std::strtod(Id.Str.c_str(), nullptr));
}

std::string errorResponse(const RequestId &Id, std::string_view Op,
                          std::string_view Code, std::string_view Msg) {
  JsonWriter W;
  W.beginObject();
  W.field("ok", false);
  writeId(W, Id);
  if (!Op.empty())
    W.field("op", Op);
  W.key("error");
  W.beginObject();
  W.field("code", Code);
  W.field("message", Msg);
  W.endObject();
  W.endObject();
  return flattenOneLine(W.take());
}

/// Thrown by request handlers; rendered as a typed error response.
struct RequestError {
  std::string Code;
  std::string Message;
};

[[noreturn]] void bad(std::string Code, std::string Msg) {
  throw RequestError{std::move(Code), std::move(Msg)};
}

//===----------------------------------------------------------------------===//
// Option parsing (shared by compile hashing and the compile op)
//===----------------------------------------------------------------------===//

bool getBool(const JsonValue &O, const char *Name, bool Def) {
  const JsonValue *V = O.member(Name);
  if (!V)
    return Def;
  if (!V->isBool())
    bad("bad-option", std::string("option '") + Name + "' must be a bool");
  return V->boolValue();
}

TransformOptions parseCompileOptions(const JsonValue *O) {
  TransformOptions Opts;
  if (!O)
    return Opts;
  if (!O->isObject())
    bad("bad-option", "'options' must be an object");
  if (const JsonValue *P = O->member("precision")) {
    if (!P->isString() ||
        (P->stringValue() != "f64" && P->stringValue() != "dd"))
      bad("bad-option", "precision must be \"f64\" or \"dd\"");
    if (P->stringValue() == "dd")
      Opts.Prec = TransformOptions::Precision::DoubleDouble;
  }
  if (const JsonValue *T = O->member("target")) {
    if (!T->isString() ||
        (T->stringValue() != "sv" && T->stringValue() != "ss"))
      bad("bad-option", "target must be \"sv\" or \"ss\"");
    Opts.ScalarLibrary = T->stringValue() == "ss";
  }
  if (const JsonValue *B = O->member("branch")) {
    if (!B->isString() || (B->stringValue() != "exception" &&
                           B->stringValue() != "join"))
      bad("bad-option", "branch must be \"exception\" or \"join\"");
    if (B->stringValue() == "join")
      Opts.Branches = TransformOptions::BranchPolicy::Join;
  }
  if (const JsonValue *L = O->member("opt_level")) {
    if (!L->isNumber() ||
        L->numberValue() != static_cast<int>(L->numberValue()) ||
        L->numberValue() < 0 || L->numberValue() > 1)
      bad("bad-option", "opt_level must be 0 or 1");
    Opts.OptLevel = static_cast<int>(L->numberValue());
  }
  Opts.EnableReductions = getBool(*O, "reductions", false);
  Opts.EnableBatchLoops = getBool(*O, "batch_loops", false);
  Opts.Profile = getBool(*O, "profile", false);
  Opts.Tier = getBool(*O, "tier", false);
  Opts.Harden = getBool(*O, "harden", false);
  if (const JsonValue *M = O->member("module")) {
    if (!M->isString())
      bad("bad-option", "module must be a string");
    Opts.ModuleName = M->stringValue();
  }
  if (Opts.Tier &&
      (Opts.Profile ||
       Opts.Prec == TransformOptions::Precision::DoubleDouble))
    bad("bad-option",
        "tier cannot be combined with profile or dd precision");
  return Opts;
}

//===----------------------------------------------------------------------===//
// Eval argument marshalling
//===----------------------------------------------------------------------===//

Interval intervalFromJson(const JsonValue &V) {
  if (V.isNumber())
    return Interval::fromPoint(V.numberValue());
  if (V.isObject()) {
    if (const JsonValue *H = V.member("hex")) {
      double D;
      if (!H->isString() || !hexToDouble(H->stringValue(), D))
        bad("bad-argument", "hex must be 16 hex digits");
      return Interval::fromPoint(D);
    }
    const JsonValue *LoH = V.member("lo_hex"), *HiH = V.member("hi_hex");
    if (LoH || HiH) {
      double Lo, Hi;
      if (!LoH || !HiH || !LoH->isString() || !HiH->isString() ||
          !hexToDouble(LoH->stringValue(), Lo) ||
          !hexToDouble(HiH->stringValue(), Hi))
        bad("bad-argument", "lo_hex/hi_hex must be 16 hex digits each");
      return Interval::fromEndpoints(Lo, Hi);
    }
    const JsonValue *Lo = V.member("lo"), *Hi = V.member("hi");
    if (Lo && Hi && Lo->isNumber() && Hi->isNumber())
      return Interval::fromEndpoints(Lo->numberValue(), Hi->numberValue());
  }
  bad("bad-argument",
      "interval argument must be a number, {lo,hi}, {hex} or "
      "{lo_hex,hi_hex}");
}

EvalArg parseEvalArg(const JsonValue &V) {
  EvalArg A;
  if (V.isObject()) {
    if (const JsonValue *I = V.member("int")) {
      if (!I->isNumber() ||
          I->numberValue() != static_cast<long long>(I->numberValue()))
        bad("bad-argument", "int argument must be an integer");
      A.K = EvalArg::Kind::Int;
      A.IntValue = static_cast<long long>(I->numberValue());
      return A;
    }
    if (const JsonValue *P = V.member("point")) {
      if (!P->isNumber())
        bad("bad-argument", "point argument must be a number");
      A.K = EvalArg::Kind::Tolerance;
      A.Point = P->numberValue();
      return A;
    }
    if (const JsonValue *Arr = V.member("array")) {
      if (!Arr->isArray())
        bad("bad-argument", "array argument must carry a JSON array");
      A.K = EvalArg::Kind::Array;
      A.Elements.reserve(Arr->arrayValue().size());
      for (const JsonValue &E : Arr->arrayValue())
        A.Elements.push_back(intervalFromJson(E));
      return A;
    }
  }
  A.K = EvalArg::Kind::Scalar;
  A.Scalar = intervalFromJson(V);
  return A;
}

void writeInterval(JsonWriter &W, const Interval &I) {
  W.beginObject();
  W.field("lo", I.lo());
  W.field("hi", I.hi());
  W.field("lo_hex", std::string_view(doubleToHex(I.lo())));
  W.field("hi_hex", std::string_view(doubleToHex(I.hi())));
  W.endObject();
}

//===----------------------------------------------------------------------===//
// Per-request fenv sentinel
//===----------------------------------------------------------------------===//

/// igen_fenv_check with a *request-local* policy: the process-global
/// IGEN_FENV_POLICY cache is never consulted or written, so concurrent
/// tenants with different policies cannot race on it. Returns true when
/// the caller must poison its results. Always repairs.
bool requestFenvCheck(bool PoisonPolicy) {
  if (__builtin_expect(harden::fenvIsSoundUpward(), 1))
    return false;
  uint32_t Cur = harden::readMxcsr();
  harden::detail::ViolationCount.fetch_add(1, std::memory_order_relaxed);
  harden::detail::LastViolationBits.store(Cur & harden::kMxcsrSoundMask,
                                          std::memory_order_relaxed);
  harden::writeMxcsr((Cur & ~harden::kMxcsrSoundMask) |
                     harden::kMxcsrWantUpward);
  invalidateRoundingCache();
  std::fesetround(FE_UPWARD);
  harden::detail::RepairCount.fetch_add(1, std::memory_order_relaxed);
  if (PoisonPolicy) {
    harden::detail::PoisonCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::vector<std::string> definedFunctions(const InMemoryProgram &Prog) {
  std::vector<std::string> Out;
  if (!Prog.Ast)
    return Out;
  for (const TopLevelItem &Item : Prog.Ast->TU.Items)
    if (Item.Function && Item.Function->Body)
      Out.push_back(Item.Function->Name);
  return Out;
}

int log2Bucket(uint64_t Us) {
  int B = 0;
  while (Us > 1 && B < EndpointStats::NumBuckets - 1) {
    Us >>= 1;
    ++B;
  }
  return B;
}

/// Recovers the typed error code from a rendered error response. Every
/// error line is produced by this file, so the spelling below is
/// canonical; string values in responses have their quotes escaped, so
/// the needle can only match the real error object.
std::string outcomeOf(const std::string &Resp, bool IsError) {
  if (!IsError)
    return "ok";
  static constexpr std::string_view Needle = "\"error\": {\"code\": \"";
  size_t P = Resp.find(Needle);
  if (P == std::string::npos)
    return "error";
  P += Needle.size();
  size_t E = Resp.find('"', P);
  if (E == std::string::npos)
    return "error";
  return Resp.substr(P, E - P);
}

uint64_t monotonicUsOf(std::chrono::steady_clock::time_point T) {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             T.time_since_epoch())
      .count();
}

} // namespace

size_t igen::server::maxFrameBytes() {
  static const size_t V = [] {
    size_t Def = 4u << 20;
    if (const char *E = std::getenv("IGEN_SERVE_MAX_FRAME")) {
      char *End = nullptr;
      long long N = std::strtoll(E, &End, 10);
      if (End && *End == '\0' && N > 0)
        return (size_t)N;
    }
    return Def;
  }();
  return V;
}

void EndpointStats::record(uint64_t Us, bool Error) {
  Count.fetch_add(1, std::memory_order_relaxed);
  if (Error)
    Errors.fetch_add(1, std::memory_order_relaxed);
  TotalUs.fetch_add(Us, std::memory_order_relaxed);
  Buckets[log2Bucket(Us)].fetch_add(1, std::memory_order_relaxed);
}

long long igen::server::deadlineMsFromSpec(const char *Spec,
                                           std::string *Warning) {
  if (!Spec || !*Spec)
    return 0;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(Spec, &End, 10);
  if (errno != 0 || !End || *End != '\0' || V <= 0) {
    if (Warning)
      *Warning = std::string("ignoring IGEN_SERVE_DEADLINE '") + Spec +
                 "' (expected a positive integer millisecond count); "
                 "requests get no default deadline";
    return 0;
  }
  return V;
}

ServerCoreConfig ServerCoreConfig::fromEnv(long CacheCapacity) {
  ServerCoreConfig C;
  C.CacheCapacity = CacheCapacity;
  std::string Warn;
  C.DefaultDeadlineMs =
      deadlineMsFromSpec(std::getenv("IGEN_SERVE_DEADLINE"), &Warn);
  if (!Warn.empty())
    std::fprintf(stderr, "igen: serve: warning: %s\n", Warn.c_str());
  Warn.clear();
  C.CacheDir = cacheDirFromSpec(std::getenv("IGEN_SERVE_CACHE_DIR"), &Warn);
  if (!Warn.empty())
    std::fprintf(stderr, "igen: serve: warning: %s\n", Warn.c_str());
  if (const char *L = std::getenv("IGEN_SERVE_LOG"))
    C.LogPath = L;
  return C;
}

ServerCore::ServerCore(long CacheCapacity)
    : ServerCore(ServerCoreConfig::fromEnv(CacheCapacity)) {}

ServerCore::ServerCore(const ServerCoreConfig &Config)
    : Cache(Config.CacheCapacity), Persist(Config.CacheDir),
      Log(Config.LogPath), DefaultDeadlineMs(Config.DefaultDeadlineMs),
      StartTime(std::chrono::steady_clock::now()) {
  if (Persist.enabled()) {
    // Disk residency mirrors LRU residency from here on: anything the
    // in-memory cache drops is unlinked from the journal too.
    Cache.setEvictionListener(
        [this](uint64_t Hash) { Persist.remove(Hash); });
    PersistentCacheDir::ReplayStats RS =
        Persist.replay(Cache, Cache.stats().Capacity);
    CacheReplayed.store(RS.Replayed, std::memory_order_relaxed);
    if (RS.Replayed || RS.Skipped)
      Log.event("cache_replay", "replayed=" + std::to_string(RS.Replayed) +
                                    " skipped=" + std::to_string(RS.Skipped));
  }
}

void ServerCore::beginDrain() {
  bool Expected = false;
  if (Draining.compare_exchange_strong(Expected, true,
                                       std::memory_order_acq_rel))
    Log.event("drain_begin", "mutating ops now answer shutting-down");
}

ServerCore::InFlightSnapshot ServerCore::inFlight() const {
  InFlightSnapshot S;
  uint64_t Now = monotonicUsOf(std::chrono::steady_clock::now());
  for (const auto &Slot : Heartbeat) {
    uint64_t Start = Slot.load(std::memory_order_acquire);
    if (!Start)
      continue;
    ++S.Count;
    uint64_t Age = Now > Start ? Now - Start : 0;
    if (Age > S.SlowestUs)
      S.SlowestUs = Age;
  }
  return S;
}

std::string
ServerCore::handleFrame(std::string_view Frame,
                        std::chrono::steady_clock::time_point Arrival) {
  auto Start = std::chrono::steady_clock::now();

  // Heartbeat slot for the health probe's in-flight report. A full
  // table only costs visibility, never admission.
  uint64_t ArrivalUs = monotonicUsOf(Arrival);
  if (ArrivalUs == 0)
    ArrivalUs = 1;
  int Slot = -1;
  for (int I = 0; I < kHeartbeatSlots; ++I) {
    uint64_t Expected = 0;
    if (Heartbeat[I].compare_exchange_strong(Expected, ArrivalUs,
                                             std::memory_order_acq_rel)) {
      Slot = I;
      break;
    }
  }

  Endpoint E = EpInvalid;
  bool IsError = false;
  FrameInfo Info;
  std::string Resp;
  try {
    Resp = dispatch(Frame, Arrival, Start, E, IsError, Info);
  } catch (const std::bad_alloc &) {
    IsError = true;
    Resp = errorResponse(RequestId(), "", "internal-error",
                         "out of memory handling request");
  } catch (const std::exception &Ex) {
    IsError = true;
    Resp = errorResponse(RequestId(), "", "internal-error", Ex.what());
  } catch (...) {
    IsError = true;
    Resp = errorResponse(RequestId(), "", "internal-error",
                         "unexpected exception handling request");
  }
  auto Us = (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  Ep[E].record(Us, IsError);

  Info.Outcome = outcomeOf(Resp, IsError);
  if (Info.Outcome == "deadline-exceeded")
    DeadlineExceeded.fetch_add(1, std::memory_order_relaxed);
  else if (Info.Outcome == "shutting-down")
    Drained.fetch_add(1, std::memory_order_relaxed);
  if (Log.enabled())
    Log.request(Info.Verb.empty() ? std::string_view("invalid")
                                  : std::string_view(Info.Verb),
                Info.Hash, Us, Info.Outcome);

  if (Slot >= 0)
    Heartbeat[Slot].store(0, std::memory_order_release);
  return Resp;
}

std::string ServerCore::dispatch(std::string_view Frame,
                                 std::chrono::steady_clock::time_point Arrival,
                                 std::chrono::steady_clock::time_point Start,
                                 Endpoint &EpOut, bool &IsError,
                                 FrameInfo &Info) {
  EpOut = EpInvalid;
  IsError = true; // cleared on each success path
  RequestId Id;

  if (Frame.size() > maxFrameBytes())
    return errorResponse(Id, "", "frame-too-large",
                         "request frame exceeds IGEN_SERVE_MAX_FRAME (" +
                             std::to_string(maxFrameBytes()) + " bytes)");

  JsonParseResult P = parseJson(Frame);
  if (!P.Ok)
    return errorResponse(Id, "", "bad-json",
                         P.Error + " at byte " +
                             std::to_string(P.ErrorOffset));
  const JsonValue &Req = P.Value;
  if (!Req.isObject())
    return errorResponse(Id, "", "bad-request",
                         "request must be a JSON object");

  if (const JsonValue *IdV = Req.member("id")) {
    if (IdV->isString()) {
      Id.Present = true;
      Id.IsString = true;
      Id.Str = IdV->stringValue();
    } else if (IdV->isNumber()) {
      Id.Present = true;
      Id.Str = IdV->stringValue(); // raw spelling
    } else {
      return errorResponse(Id, "", "bad-request",
                           "id must be a string or a number");
    }
  }

  const JsonValue *OpV = Req.member("op");
  if (!OpV || !OpV->isString())
    return errorResponse(Id, "", "bad-request",
                         "missing required string field 'op'");
  const std::string &Op = OpV->stringValue();
  Info.Verb = Op;

  // Clients tag re-sent frames with "retry":N so operators can see how
  // much traffic is second attempts (stats.resilience.retried). It is
  // observability only — the request is handled identically.
  if (const JsonValue *R = Req.member("retry"))
    if (R->isNumber() && R->numberValue() >= 1)
      Retried.fetch_add(1, std::memory_order_relaxed);

  // Drain gate: once draining, only observation (stats/health) and the
  // final shutdown get through; everything else is told to go away in
  // a way a retrying client understands.
  if (draining() && Op != "stats" && Op != "health" && Op != "shutdown") {
    EpOut = Op == "compile" ? EpCompile
            : Op == "eval"  ? EpEval
            : Op == "evict" ? EpEvict
                            : EpInvalid;
    return errorResponse(Id, Op, "shutting-down",
                         "daemon is draining and no longer accepts this "
                         "op; retry against a fresh instance");
  }

  try {
    // Wall-clock budget, measured from frame arrival so queue time
    // counts: request's own deadline_ms wins, IGEN_SERVE_DEADLINE fills
    // in for requests that don't send one.
    long long DeadlineMs = DefaultDeadlineMs;
    if (const JsonValue *D = Req.member("deadline_ms")) {
      if (!D->isNumber() || !(D->numberValue() > 0))
        bad("bad-request", "deadline_ms must be a positive number");
      DeadlineMs = (long long)D->numberValue();
    }
    const bool HasDeadline = DeadlineMs > 0;
    const std::chrono::steady_clock::time_point Deadline =
        Arrival + std::chrono::milliseconds(HasDeadline ? DeadlineMs : 0);
    if (Op == "compile") {
      EpOut = EpCompile;
      const JsonValue *Src = Req.member("source");
      if (!Src || !Src->isString())
        bad("bad-request", "compile requires a string 'source'");
      TransformOptions Opts = parseCompileOptions(Req.member("options"));
      Opts.SourceName = "<serve>";
      uint64_t Hash = hashCompileRequest(Src->stringValue(), Opts);
      Info.Hash = formatHandle(Hash);

      bool Cached = true;
      std::shared_ptr<const InMemoryProgram> Prog = Cache.lookup(Hash);
      if (!Prog) {
        Cached = false;
        if (HasDeadline && std::chrono::steady_clock::now() >= Deadline)
          bad("deadline-exceeded",
              "request deadline expired before compilation began");
        DiagnosticsEngine Diags;
        PipelineStage Failed = PipelineStage::None;
        PipelineCancelFn Cancel;
        if (HasDeadline)
          Cancel = [Deadline] {
            return std::chrono::steady_clock::now() >= Deadline;
          };
        auto Fresh =
            compileToProgram(Src->stringValue(), Opts, Diags, nullptr,
                             &Failed, Cancel);
        if (!Fresh && Failed == PipelineStage::Cancelled)
          bad("deadline-exceeded",
              "compilation exceeded the request's wall-clock deadline");
        if (!Fresh) {
          // Transaction rollback: the partial AST died with Fresh; the
          // cache was never touched; the daemon state is exactly as
          // before this request.
          profile::serveNoteCompile(/*Err=*/true);
          const char *Code = Failed == PipelineStage::Parse ? "parse-error"
                             : Failed == PipelineStage::Sema
                                 ? "sema-error"
                                 : "transform-error";
          const char *Stage = Failed == PipelineStage::Parse ? "parse"
                              : Failed == PipelineStage::Sema
                                  ? "sema"
                                  : "transform";
          JsonWriter W;
          W.beginObject();
          W.field("ok", false);
          writeId(W, Id);
          W.field("op", std::string_view("compile"));
          W.key("error");
          W.beginObject();
          W.field("code", std::string_view(Code));
          W.field("stage", std::string_view(Stage));
          W.field("message",
                  std::string_view("compilation failed; see diagnostics"));
          W.key("diagnostics");
          W.beginArray();
          for (const Diagnostic &D : Diags.diagnostics()) {
            const char *Sev = D.Severity == DiagSeverity::Error ? "error"
                              : D.Severity == DiagSeverity::Warning
                                  ? "warning"
                                  : "note";
            W.value(std::string_view(std::string(Sev) + ": " + D.Message));
          }
          W.endArray();
          W.endObject();
          W.endObject();
          return flattenOneLine(W.take());
        }
        Prog = std::shared_ptr<const InMemoryProgram>(std::move(Fresh));
        Cache.insert(Hash, Prog);
        // Journal the inputs (not the program) so a restarted daemon
        // can rebuild this entry bit-identically via the same pipeline.
        Persist.persist(Hash, Src->stringValue(), Opts);
      }
      profile::serveNoteCompile(/*Err=*/false);

      JsonWriter W;
      W.beginObject();
      W.field("ok", true);
      writeId(W, Id);
      W.field("op", std::string_view("compile"));
      W.field("handle", std::string_view(formatHandle(Hash)));
      W.field("cached", Cached);
      W.key("functions");
      W.beginArray();
      for (const std::string &F : definedFunctions(*Prog))
        W.value(std::string_view(F));
      W.endArray();
      W.field("emitted_bytes", (uint64_t)Prog->EmittedC.size());
      W.endObject();
      IsError = false;
      return flattenOneLine(W.take());
    }

    if (Op == "eval") {
      EpOut = EpEval;
      const JsonValue *HandleV = Req.member("handle");
      if (!HandleV || !HandleV->isString())
        bad("bad-request", "eval requires a string 'handle'");
      uint64_t Hash;
      if (!parseHandle(HandleV->stringValue(), Hash))
        bad("bad-request", "malformed handle (expected 16 hex digits)");
      Info.Hash = HandleV->stringValue();
      std::shared_ptr<const InMemoryProgram> Prog =
          Cache.lookup(Hash, /*CountMiss=*/false);
      if (!Prog)
        bad("no-such-handle",
            "handle " + HandleV->stringValue() +
                " is not resident (compile first, or it was evicted)");

      const JsonValue *FnV = Req.member("function");
      if (!FnV || !FnV->isString())
        bad("bad-request", "eval requires a string 'function'");

      std::vector<EvalArg> Args;
      if (const JsonValue *ArgsV = Req.member("args")) {
        if (!ArgsV->isArray())
          bad("bad-request", "'args' must be an array");
        Args.reserve(ArgsV->arrayValue().size());
        for (const JsonValue &A : ArgsV->arrayValue())
          Args.push_back(parseEvalArg(A));
      }

      // Per-request option isolation: defaults come from the program's
      // own compile options (so eval matches the AOT artifact), and the
      // request may override each knob without touching any process
      // global.
      EvalOptions EO;
      EO.JoinBranches =
          Prog->Opts.Branches == TransformOptions::BranchPolicy::Join;
      EO.EnableReductions = Prog->Opts.EnableReductions;
      EO.HasDeadline = HasDeadline;
      EO.Deadline = Deadline;
      bool PoisonPolicy = false;
      double TierWidth = 0.0;
      bool HasTierWidth = false;
      if (const JsonValue *O = Req.member("options")) {
        if (!O->isObject())
          bad("bad-option", "'options' must be an object");
        if (const JsonValue *B = O->member("branch")) {
          if (!B->isString() || (B->stringValue() != "exception" &&
                                 B->stringValue() != "join"))
            bad("bad-option", "branch must be \"exception\" or \"join\"");
          EO.JoinBranches = B->stringValue() == "join";
        }
        if (O->member("reductions"))
          EO.EnableReductions = getBool(*O, "reductions", false);
        if (const JsonValue *FP = O->member("fenv_policy")) {
          if (!FP->isString())
            bad("bad-option", "fenv_policy must be a string");
          if (FP->stringValue() == "poison")
            PoisonPolicy = true;
          else if (FP->stringValue() == "repair")
            PoisonPolicy = false;
          else if (FP->stringValue() == "abort")
            bad("bad-option",
                "fenv_policy \"abort\" is not allowed in serve mode (a "
                "tenant may not terminate the daemon); use \"poison\"");
          else
            bad("bad-option",
                "fenv_policy must be \"repair\" or \"poison\"");
        }
        if (const JsonValue *TW = O->member("tier_width")) {
          if (!TW->isNumber() || !(TW->numberValue() > 0.0))
            bad("bad-option", "tier_width must be a positive number");
          TierWidth = TW->numberValue();
          HasTierWidth = true;
        }
        if (const JsonValue *SL = O->member("step_limit")) {
          if (!SL->isNumber() || SL->numberValue() < 1)
            bad("bad-option", "step_limit must be a positive integer");
          EO.StepLimit = (unsigned long long)SL->numberValue();
        }
      }

      // Sound-rounding scope for this request, with the sentinel on
      // entry (a previous tenant or foreign library may have clobbered
      // the environment after scope entry hooks ran) and again on exit
      // (to catch mid-request clobber before results ship).
      // Pre-expiry against the dispatch-entry timestamp: no extra
      // clock read on the hot path, and queue time still counts.
      if (HasDeadline && Start >= Deadline)
        bad("deadline-exceeded",
            "request deadline expired before evaluation began (queued "
            "too long)");

      EvalResult R;
      bool Poisoned = false;
      {
        RoundUpwardScope Up;
        bool EntryPoison = requestFenvCheck(PoisonPolicy);
        EvalOptions EOReq = EO;
        EOReq.PoisonedEntry = EntryPoison;
        Poisoned = EntryPoison;
        R = evalFunction(*Prog, FnV->stringValue(), Args, EOReq);
        if (requestFenvCheck(PoisonPolicy) && R.Ok) {
          // Mid-request violation under the poison policy: degrade the
          // shipped results to whole intervals (sound, never wrong).
          Poisoned = true;
          if (R.HasReturn && !R.ReturnIsInt)
            R.Return = Interval::entire();
          for (auto &Arr : R.ArrayOutputs)
            for (Interval &I : Arr)
              I = Interval::entire();
        }
      }

      EvalsServed.fetch_add(1, std::memory_order_relaxed);
      EvalOps.fetch_add(R.OpsExecuted, std::memory_order_relaxed);
      profile::serveNoteEval(R.OpsExecuted, !R.Ok, Poisoned && R.Ok);
      if (!R.Ok) {
        EvalErrors.fetch_add(1, std::memory_order_relaxed);
        bad(R.Error.Code, R.Error.Message);
      }
      if (Poisoned)
        EvalsPoisoned.fetch_add(1, std::memory_order_relaxed);

      bool Wide = false;
      if (HasTierWidth && R.HasReturn && !R.ReturnIsInt) {
        double Width = R.Return.hi() - R.Return.lo();
        Wide = !(Width <= TierWidth); // NaN widths count as wide
      }
      bool AotExact = Prog->Opts.OptLevel == 0 &&
                      Prog->Opts.ScalarLibrary &&
                      Prog->Opts.Prec == TransformOptions::Precision::Double;

      JsonWriter W;
      W.beginObject();
      W.field("ok", true);
      writeId(W, Id);
      W.field("op", std::string_view("eval"));
      W.key("result");
      if (!R.HasReturn) {
        W.beginObject();
        W.field("kind", std::string_view("void"));
        W.endObject();
      } else if (R.ReturnIsInt) {
        W.beginObject();
        W.field("kind", std::string_view("int"));
        W.field("value", (int64_t)R.ReturnInt);
        W.endObject();
      } else {
        W.beginObject();
        W.field("kind", std::string_view("interval"));
        W.field("lo", R.Return.lo());
        W.field("hi", R.Return.hi());
        W.field("lo_hex", std::string_view(doubleToHex(R.Return.lo())));
        W.field("hi_hex", std::string_view(doubleToHex(R.Return.hi())));
        W.endObject();
      }
      W.key("arrays");
      W.beginArray();
      for (const auto &Arr : R.ArrayOutputs) {
        W.beginArray();
        for (const Interval &I : Arr)
          writeInterval(W, I);
        W.endArray();
      }
      W.endArray();
      W.field("poisoned", Poisoned);
      W.field("wide", Wide);
      W.field("aot_exact", AotExact);
      W.field("ops", (uint64_t)R.OpsExecuted);
      W.endObject();
      IsError = false;
      return flattenOneLine(W.take());
    }

    if (Op == "stats") {
      EpOut = EpStats;
      // Count this request before rendering so the report includes it.
      JsonWriter W;
      W.beginObject();
      W.field("ok", true);
      writeId(W, Id);
      W.field("op", std::string_view("stats"));
      W.key("stats");
      // statsJson() renders the report object; splice it in via a
      // nested parse-free path: build it inline instead.
      {
        CacheStats CS = Cache.stats();
        W.beginObject();
        W.field("schema_version", (int64_t)2);
        W.field("report", std::string_view("igen_serve_stats"));
        W.key("cache");
        W.beginObject();
        W.field("hits", CS.Hits);
        W.field("misses", CS.Misses);
        W.field("evictions", CS.Evictions);
        W.field("insertions", CS.Insertions);
        W.field("resident", (uint64_t)CS.Resident);
        W.field("capacity", (uint64_t)CS.Capacity);
        W.endObject();
        W.key("requests");
        W.beginObject();
        static const char *Names[EpCount] = {"compile", "eval", "stats",
                                             "evict", "shutdown",
                                             "health", "invalid"};
        for (int I = 0; I < EpCount; ++I) {
          W.key(Names[I]);
          W.beginObject();
          W.field("count", Ep[I].Count.load(std::memory_order_relaxed));
          W.field("errors", Ep[I].Errors.load(std::memory_order_relaxed));
          W.endObject();
        }
        W.endObject();
        W.key("latency_us");
        W.beginObject();
        for (int I = 0; I < EpCount; ++I) {
          if (I != EpCompile && I != EpEval)
            continue; // histograms only where latency matters
          W.key(Names[I]);
          W.beginObject();
          W.field("count", Ep[I].Count.load(std::memory_order_relaxed));
          W.field("total_us",
                  Ep[I].TotalUs.load(std::memory_order_relaxed));
          W.key("log2_buckets");
          W.beginArray();
          for (const auto &B : Ep[I].Buckets)
            W.value(B.load(std::memory_order_relaxed));
          W.endArray();
          W.endObject();
        }
        W.endObject();
        W.key("evals");
        W.beginObject();
        W.field("served", EvalsServed.load(std::memory_order_relaxed));
        W.field("errors", EvalErrors.load(std::memory_order_relaxed));
        W.field("poisoned",
                EvalsPoisoned.load(std::memory_order_relaxed));
        W.field("interval_ops", EvalOps.load(std::memory_order_relaxed));
        W.endObject();
        W.key("fenv");
        {
          harden::FenvStats FS = harden::fenvStats();
          W.beginObject();
          W.field("violations", FS.Violations);
          W.field("repairs", FS.Repairs);
          W.field("poisoned", FS.Poisoned);
          W.endObject();
        }
        W.key("resilience");
        {
          InFlightSnapshot IF = inFlight();
          W.beginObject();
          W.field("state", std::string_view(draining() ? "draining"
                                                       : "serving"));
          W.field("in_flight", IF.Count);
          W.field("slowest_in_flight_us", IF.SlowestUs);
          W.field("deadline_exceeded",
                  DeadlineExceeded.load(std::memory_order_relaxed));
          W.field("retried", Retried.load(std::memory_order_relaxed));
          W.field("drained", Drained.load(std::memory_order_relaxed));
          W.field("cache_replayed",
                  CacheReplayed.load(std::memory_order_relaxed));
          W.endObject();
        }
        W.endObject();
      }
      W.endObject();
      IsError = false;
      return flattenOneLine(W.take());
    }

    if (Op == "evict") {
      EpOut = EpEvict;
      JsonWriter W;
      W.beginObject();
      W.field("ok", true);
      writeId(W, Id);
      W.field("op", std::string_view("evict"));
      if (const JsonValue *All = Req.member("all")) {
        if (!All->isBool() || !All->boolValue())
          bad("bad-request", "'all' must be true when present");
        W.field("evicted", (uint64_t)Cache.clear());
      } else {
        const JsonValue *HandleV = Req.member("handle");
        uint64_t Hash;
        if (!HandleV || !HandleV->isString() ||
            !parseHandle(HandleV->stringValue(), Hash))
          bad("bad-request",
              "evict requires 'handle' (16 hex digits) or all:true");
        W.field("evicted", Cache.evict(Hash) ? (uint64_t)1 : (uint64_t)0);
      }
      W.endObject();
      IsError = false;
      return flattenOneLine(W.take());
    }

    if (Op == "health") {
      EpOut = EpHealth;
      InFlightSnapshot IF = inFlight();
      uint64_t UptimeUs =
          (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - StartTime)
              .count();
      JsonWriter W;
      W.beginObject();
      W.field("ok", true);
      writeId(W, Id);
      W.field("op", std::string_view("health"));
      W.field("state",
              std::string_view(draining() ? "draining" : "serving"));
      W.field("in_flight", IF.Count);
      W.field("slowest_in_flight_us", IF.SlowestUs);
      W.field("uptime_us", UptimeUs);
      W.endObject();
      IsError = false;
      return flattenOneLine(W.take());
    }

    if (Op == "shutdown") {
      EpOut = EpShutdown;
      Shutdown.store(true, std::memory_order_release);
      Log.event("shutdown", "shutdown op received");
      JsonWriter W;
      W.beginObject();
      W.field("ok", true);
      writeId(W, Id);
      W.field("op", std::string_view("shutdown"));
      W.endObject();
      IsError = false;
      return flattenOneLine(W.take());
    }

    return errorResponse(Id, Op, "bad-request",
                         "unknown op '" + Op +
                             "' (expected compile|eval|stats|evict|"
                             "health|shutdown)");
  } catch (const RequestError &RE) {
    const char *OpName = EpOut == EpCompile   ? "compile"
                         : EpOut == EpEval    ? "eval"
                         : EpOut == EpStats   ? "stats"
                         : EpOut == EpEvict   ? "evict"
                         : EpOut == EpShutdown ? "shutdown"
                         : EpOut == EpHealth   ? "health"
                                               : "";
    return errorResponse(Id, OpName, RE.Code, RE.Message);
  }
}

std::string ServerCore::statsJson() const {
  // The stats op body, minus the envelope: reuse dispatch through a
  // const_cast-free path is not worth a refactor; render directly.
  ServerCore *Self = const_cast<ServerCore *>(this);
  std::string Line = Self->handleFrame("{\"op\":\"stats\"}");
  return Line;
}
