//===- ServerCore.h - Serve-mode request dispatch ---------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of `igen --serve`: one newline-
/// delimited JSON frame in, one JSON response line out. The Unix-socket
/// layer (SocketServer), the tests, the fuzzer, and the bench harness
/// all drive this same entry point, so every protocol behavior is
/// exercisable in-process without a socket.
///
/// Protocol (one JSON object per line; `id` is echoed when present):
///
///   {"op":"compile","source":"...","options":{...}}
///     -> {"ok":true,"handle":"<16 hex>","cached":bool,
///         "functions":[...],"emitted_bytes":N}
///     Options: precision ("f64"|"dd"), target ("sv"|"ss"), reductions,
///     batch_loops, branch ("exception"|"join"), opt_level, profile,
///     tier, harden, module. The request is a transaction: failures
///     report {code:"parse-error"|"sema-error"|"transform-error",
///     stage, diagnostics:[...]} and leave no daemon state behind.
///
///   {"op":"eval","handle":"...","function":"...","args":[...],
///    "options":{...}}
///     Args: number | {"lo":..,"hi":..} | {"hex":"<16hex>"} |
///     {"lo_hex":..,"hi_hex":..} | {"int":N} | {"point":X} |
///     {"array":[...]}. Options: branch, reductions, fenv_policy
///     ("repair"|"poison"), tier_width, step_limit.
///     -> {"ok":true,"result":{...},"arrays":[...],"poisoned":bool,
///         "wide":bool,"aot_exact":bool,"ops":N}
///     Endpoints come back both as decimal and as IEEE bit patterns
///     (lo_hex/hi_hex), so bit-exact transport survives JSON.
///
///   {"op":"stats"}   -> the igen_serve_stats v1 schema (cache
///                       hit/miss/evict, per-endpoint counts, log2
///                       latency histograms, fenv + eval counters).
///   {"op":"evict","handle":"..."} or {"op":"evict","all":true}
///   {"op":"shutdown"}
///
/// Isolation: every eval runs under its own RoundUpwardScope with an
/// igen_fenv_check-style sentinel on entry and exit. The per-request
/// fenv policy is applied locally (never through the process-global
/// IGEN_FENV_POLICY cache, which concurrent tenants must not touch);
/// "abort" is rejected as a typed error because a tenant must not be
/// able to bring the daemon down. All evaluator options are plain
/// per-call values, so concurrent requests with different options
/// cannot observe each other.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_SERVERCORE_H
#define IGEN_SERVER_SERVERCORE_H

#include "server/FunctionCache.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace igen {
namespace server {

/// Maximum accepted frame size (bytes). Longer frames get a typed
/// "frame-too-large" error. Overridable via IGEN_SERVE_MAX_FRAME.
size_t maxFrameBytes();

/// Per-endpoint request accounting plus a log2(microseconds) latency
/// histogram: bucket k counts requests with latency in [2^k, 2^(k+1))
/// microseconds.
struct EndpointStats {
  static constexpr int NumBuckets = 32;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> TotalUs{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};

  void record(uint64_t Us, bool Error);
};

class ServerCore {
public:
  explicit ServerCore(long CacheCapacity = 0);

  /// Handles one frame (newline already stripped); returns exactly one
  /// JSON line without the trailing newline. Never throws; any internal
  /// failure becomes a typed error response.
  std::string handleFrame(std::string_view Frame);

  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  FunctionCache &cache() { return Cache; }

  /// Renders the stats report body (same JSON the stats op returns).
  std::string statsJson() const;

private:
  FunctionCache Cache;
  std::atomic<bool> Shutdown{false};

  enum Endpoint { EpCompile, EpEval, EpStats, EpEvict, EpShutdown,
                  EpInvalid, EpCount };
  mutable std::array<EndpointStats, EpCount> Ep;

  // Served-evaluation counters (mirrored into profile/ServeCounters.h).
  std::atomic<uint64_t> EvalsServed{0};
  std::atomic<uint64_t> EvalErrors{0};
  std::atomic<uint64_t> EvalsPoisoned{0};
  std::atomic<uint64_t> EvalOps{0};

  std::string dispatch(std::string_view Frame, Endpoint &EpOut,
                       bool &IsError);
};

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_SERVERCORE_H
