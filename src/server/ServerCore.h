//===- ServerCore.h - Serve-mode request dispatch ---------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of `igen --serve`: one newline-
/// delimited JSON frame in, one JSON response line out. The Unix-socket
/// layer (SocketServer), the tests, the fuzzer, and the bench harness
/// all drive this same entry point, so every protocol behavior is
/// exercisable in-process without a socket.
///
/// Protocol (one JSON object per line; `id` is echoed when present):
///
///   {"op":"compile","source":"...","options":{...}}
///     -> {"ok":true,"handle":"<16 hex>","cached":bool,
///         "functions":[...],"emitted_bytes":N}
///     Options: precision ("f64"|"dd"), target ("sv"|"ss"), reductions,
///     batch_loops, branch ("exception"|"join"), opt_level, profile,
///     tier, harden, module. The request is a transaction: failures
///     report {code:"parse-error"|"sema-error"|"transform-error",
///     stage, diagnostics:[...]} and leave no daemon state behind.
///
///   {"op":"eval","handle":"...","function":"...","args":[...],
///    "options":{...}}
///     Args: number | {"lo":..,"hi":..} | {"hex":"<16hex>"} |
///     {"lo_hex":..,"hi_hex":..} | {"int":N} | {"point":X} |
///     {"array":[...]}. Options: branch, reductions, fenv_policy
///     ("repair"|"poison"), tier_width, step_limit.
///     -> {"ok":true,"result":{...},"arrays":[...],"poisoned":bool,
///         "wide":bool,"aot_exact":bool,"ops":N}
///     Endpoints come back both as decimal and as IEEE bit patterns
///     (lo_hex/hi_hex), so bit-exact transport survives JSON.
///
///   {"op":"stats"}   -> the igen_serve_stats v2 schema (cache
///                       hit/miss/evict, per-endpoint counts, log2
///                       latency histograms, fenv + eval counters, and
///                       the resilience block: drain state, in-flight
///                       requests, deadline/retry/drain/replay totals).
///   {"op":"health"}  -> {"ok":true,"state":"serving"|"draining",
///                        "in_flight":N,"slowest_in_flight_us":N,
///                        "uptime_us":N}. Answerable even while every
///                        worker is busy (the socket layer fast-paths
///                        it on the reactor thread).
///   {"op":"evict","handle":"..."} or {"op":"evict","all":true}
///   {"op":"shutdown"}
///
/// Deadlines: any request may carry "deadline_ms":N (wall-clock budget
/// measured from frame *arrival*, so queue time counts); the
/// IGEN_SERVE_DEADLINE environment value supplies a default for
/// requests that don't. Expiry is detected cooperatively — at
/// evaluator loop back-edges and call entries, and at pipeline stage
/// boundaries during compile — and surfaces as a typed
/// "deadline-exceeded" error; the worker thread survives and keeps
/// serving. Clients may tag re-sent frames with "retry":N, which the
/// daemon counts (stats.resilience.retried) but otherwise ignores.
///
/// Draining: beginDrain() (wired to SIGTERM/SIGINT by the socket
/// layer) flips the core into a mode where compile/eval/evict answer a
/// typed "shutting-down" error while stats/health/shutdown still work,
/// so a load balancer can observe the drain instead of seeing the
/// connection die.
///
/// Isolation: every eval runs under its own RoundUpwardScope with an
/// igen_fenv_check-style sentinel on entry and exit. The per-request
/// fenv policy is applied locally (never through the process-global
/// IGEN_FENV_POLICY cache, which concurrent tenants must not touch);
/// "abort" is rejected as a typed error because a tenant must not be
/// able to bring the daemon down. All evaluator options are plain
/// per-call values, so concurrent requests with different options
/// cannot observe each other.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_SERVERCORE_H
#define IGEN_SERVER_SERVERCORE_H

#include "server/FunctionCache.h"
#include "server/PersistCache.h"
#include "server/RequestLog.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace igen {
namespace server {

/// Maximum accepted frame size (bytes). Longer frames get a typed
/// "frame-too-large" error. Overridable via IGEN_SERVE_MAX_FRAME.
size_t maxFrameBytes();

/// Parses an IGEN_SERVE_DEADLINE spelling: a positive integer number of
/// milliseconds, the default wall-clock budget for requests that don't
/// send their own "deadline_ms". Null/empty disables the default
/// (returns 0); anything unparsable or non-positive sets *Warning and
/// returns 0 — a bad knob never changes semantics silently.
long long deadlineMsFromSpec(const char *Spec, std::string *Warning);

/// Per-endpoint request accounting plus a log2(microseconds) latency
/// histogram: bucket k counts requests with latency in [2^k, 2^(k+1))
/// microseconds.
struct EndpointStats {
  static constexpr int NumBuckets = 32;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Errors{0};
  std::atomic<uint64_t> TotalUs{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};

  void record(uint64_t Us, bool Error);
};

/// Construction knobs. The long-only ServerCore constructor fills the
/// rest from the environment (IGEN_SERVE_CACHE_DIR, IGEN_SERVE_DEADLINE,
/// IGEN_SERVE_LOG); tests pass explicit values to stay hermetic.
struct ServerCoreConfig {
  long CacheCapacity = 0;       ///< <=0: IGEN_SERVE_CACHE or 64
  std::string CacheDir;         ///< validated dir ("" = no persistence)
  std::string LogPath;          ///< request log ("" = off, "-" = stderr)
  long long DefaultDeadlineMs = 0; ///< 0 = no default deadline

  /// Reads the serve environment (with warn-once on malformed values)
  /// and returns the resulting config.
  static ServerCoreConfig fromEnv(long CacheCapacity = 0);
};

class ServerCore {
public:
  explicit ServerCore(long CacheCapacity = 0);
  explicit ServerCore(const ServerCoreConfig &Config);

  /// Handles one frame (newline already stripped); returns exactly one
  /// JSON line without the trailing newline. Never throws; any internal
  /// failure becomes a typed error response. \p Arrival is when the
  /// frame was read off the wire — deadlines are measured from it, so
  /// time spent queued behind other requests counts against the budget.
  std::string handleFrame(std::string_view Frame,
                          std::chrono::steady_clock::time_point Arrival);
  std::string handleFrame(std::string_view Frame) {
    return handleFrame(Frame, std::chrono::steady_clock::now());
  }

  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }
  /// Forces the shutdown flag (drain-deadline enforcement in the
  /// socket layer; equivalent to receiving {"op":"shutdown"}).
  void requestShutdown() { Shutdown.store(true, std::memory_order_release); }

  /// Enters drain mode (idempotent): mutating ops answer
  /// "shutting-down"; stats/health/shutdown keep working.
  void beginDrain();
  bool draining() const { return Draining.load(std::memory_order_acquire); }

  /// In-flight snapshot from the per-worker heartbeat slots: how many
  /// requests are executing right now, and the age of the oldest one.
  struct InFlightSnapshot {
    uint64_t Count = 0;
    uint64_t SlowestUs = 0;
  };
  InFlightSnapshot inFlight() const;

  FunctionCache &cache() { return Cache; }
  RequestLog &log() { return Log; }
  /// Entries replayed from IGEN_SERVE_CACHE_DIR at construction.
  uint64_t cacheReplayed() const {
    return CacheReplayed.load(std::memory_order_relaxed);
  }

  /// Renders the stats report body (same JSON the stats op returns).
  std::string statsJson() const;

private:
  FunctionCache Cache;
  PersistentCacheDir Persist;
  RequestLog Log;
  long long DefaultDeadlineMs;
  std::chrono::steady_clock::time_point StartTime;
  std::atomic<bool> Shutdown{false};
  std::atomic<bool> Draining{false};

  enum Endpoint { EpCompile, EpEval, EpStats, EpEvict, EpShutdown,
                  EpHealth, EpInvalid, EpCount };
  mutable std::array<EndpointStats, EpCount> Ep;

  // Served-evaluation counters (mirrored into profile/ServeCounters.h).
  std::atomic<uint64_t> EvalsServed{0};
  std::atomic<uint64_t> EvalErrors{0};
  std::atomic<uint64_t> EvalsPoisoned{0};
  std::atomic<uint64_t> EvalOps{0};

  // Resilience counters (stats.resilience).
  std::atomic<uint64_t> DeadlineExceeded{0};
  std::atomic<uint64_t> Retried{0};
  std::atomic<uint64_t> Drained{0};
  std::atomic<uint64_t> CacheReplayed{0};

  // Worker heartbeat: one slot per concurrently executing request,
  // holding its arrival time in monotonic microseconds (0 = free).
  // Sized for far more workers than the pool will ever run; requests
  // beyond that are simply not tracked (never blocked).
  static constexpr int kHeartbeatSlots = 64;
  mutable std::array<std::atomic<uint64_t>, kHeartbeatSlots> Heartbeat{};

  /// What dispatch learned about a frame, for the request log and the
  /// resilience counters.
  struct FrameInfo {
    std::string Verb;           ///< op string ("" when none was parsed)
    std::string Hash;           ///< content hash when one was derived
    std::string Outcome = "ok"; ///< "ok" or the typed error code
  };

  /// \p Start is handleFrame's entry timestamp, reused for deadline
  /// pre-expiry checks so the hot dispatch path reads the clock once.
  std::string dispatch(std::string_view Frame,
                       std::chrono::steady_clock::time_point Arrival,
                       std::chrono::steady_clock::time_point Start,
                       Endpoint &EpOut, bool &IsError, FrameInfo &Info);
};

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_SERVERCORE_H
