//===- RequestLog.h - Structured serve-mode request log ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One JSON line per request (and per lifecycle event) for the --serve
/// daemon, enabled by IGEN_SERVE_LOG=<path> ("-" for stderr). The log is
/// the operator's flight recorder: every line carries a monotonic
/// timestamp, the verb, the content hash when one is known, the
/// latency, and the outcome code ("ok" or the typed error.code), so a
/// drained or crashed daemon can be reconstructed after the fact.
///
/// Request lines:
///   {"ts_us":N,"kind":"request","verb":"eval","hash":"<16hex>",
///    "latency_us":N,"outcome":"ok"}
/// Event lines (drain, recovery, shutdown):
///   {"ts_us":N,"kind":"event","event":"cache_replay",
///    "detail":"replayed=3 skipped=1"}
///
/// Writes are line-buffered under a mutex — concurrent workers never
/// interleave partial lines — and every line is flushed, so a kill -9
/// loses at most the request in flight. A log that cannot be opened
/// warns once and disables itself; logging failures must never take
/// the daemon down.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_REQUESTLOG_H
#define IGEN_SERVER_REQUESTLOG_H

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace igen {
namespace server {

class RequestLog {
public:
  /// \p Path: "" disables, "-" logs to stderr, anything else appends to
  /// that file (created if missing). Open failures warn on stderr and
  /// leave the log disabled.
  explicit RequestLog(const std::string &Path);
  ~RequestLog();

  RequestLog(const RequestLog &) = delete;
  RequestLog &operator=(const RequestLog &) = delete;

  bool enabled() const { return Out != nullptr; }

  /// One completed request. \p Hash may be empty (no content hash was
  /// derivable, e.g. malformed frames); \p Outcome is "ok" or the typed
  /// error code.
  void request(std::string_view Verb, std::string_view Hash,
               uint64_t LatencyUs, std::string_view Outcome);

  /// One lifecycle event (drain_begin, drain_complete, cache_replay,
  /// shutdown, ...) with a free-form detail string.
  void event(std::string_view Event, std::string_view Detail);

private:
  FILE *Out = nullptr;
  bool OwnsFile = false;
  std::mutex Mu;

  void line(const std::string &Json);
};

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_REQUESTLOG_H
