//===- FunctionCache.cpp - Content-hashed compiled-program cache -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/FunctionCache.h"

#include <cstdio>
#include <cstdlib>

using namespace igen;
using namespace igen::server;

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

void feed(uint64_t &H, std::string_view Bytes) {
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= FnvPrime;
  }
}

void feedTag(uint64_t &H, char Tag, long long V) {
  unsigned char Buf[9];
  Buf[0] = (unsigned char)Tag;
  for (int I = 0; I < 8; ++I)
    Buf[1 + I] = (unsigned char)((unsigned long long)V >> (8 * I));
  feed(H, std::string_view(reinterpret_cast<const char *>(Buf), 9));
}

} // namespace

uint64_t igen::server::hashCompileRequest(std::string_view Source,
                                          const TransformOptions &Opts) {
  uint64_t H = FnvOffset;
  feed(H, Source);
  feedTag(H, 'P', Opts.Prec == TransformOptions::Precision::DoubleDouble);
  feedTag(H, 'S', Opts.ScalarLibrary);
  feedTag(H, 'R', Opts.EnableReductions);
  feedTag(H, 'B', Opts.EnableBatchLoops);
  feedTag(H, 'J',
          Opts.Branches == TransformOptions::BranchPolicy::Join);
  feedTag(H, 'O', Opts.OptLevel);
  feedTag(H, 'F', Opts.Profile);
  feedTag(H, 'T', Opts.Tier);
  feedTag(H, 'H', Opts.Harden);
  // Headers/module names only change emitted-C cosmetics, but two
  // requests differing there should not share an artifact either.
  feedTag(H, 'h', 0);
  feed(H, Opts.RuntimeHeader);
  feedTag(H, 'm', 0);
  feed(H, Opts.ModuleName);
  return H;
}

std::string igen::server::formatHandle(uint64_t Hash) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                (unsigned long long)Hash);
  return Buf;
}

bool igen::server::parseHandle(std::string_view Text, uint64_t &Hash) {
  if (Text.size() != 16)
    return false;
  uint64_t H = 0;
  for (char C : Text) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = unsigned(C - 'a' + 10);
    else
      return false;
    H = (H << 4) | D;
  }
  Hash = H;
  return true;
}

FunctionCache::FunctionCache(long Capacity) {
  long C = Capacity;
  if (C <= 0) {
    C = 64;
    if (const char *E = std::getenv("IGEN_SERVE_CACHE")) {
      char *End = nullptr;
      long V = std::strtol(E, &End, 10);
      if (End && *End == '\0' && V > 0)
        C = V;
    }
  }
  Cap = (size_t)C;
  S.Capacity = Cap;
}

std::shared_ptr<const InMemoryProgram>
FunctionCache::lookup(uint64_t Hash, bool CountMiss) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Hash);
  if (It == Index.end()) {
    if (CountMiss)
      ++S.Misses;
    return nullptr;
  }
  ++S.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  return It->second->Prog;
}

void FunctionCache::insert(uint64_t Hash,
                           std::shared_ptr<const InMemoryProgram> Prog) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Hash);
  if (It != Index.end()) {
    It->second->Prog = std::move(Prog);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(Entry{Hash, std::move(Prog)});
  Index[Hash] = Lru.begin();
  ++S.Insertions;
  evictOverflowLocked();
  S.Resident = Lru.size();
}

void FunctionCache::evictOverflowLocked() {
  while (Lru.size() > Cap) {
    uint64_t Victim = Lru.back().Hash;
    Index.erase(Victim);
    Lru.pop_back();
    ++S.Evictions;
    if (OnEvict)
      OnEvict(Victim);
  }
}

bool FunctionCache::evict(uint64_t Hash) {
  std::lock_guard<std::mutex> G(M);
  auto It = Index.find(Hash);
  if (It == Index.end())
    return false;
  Lru.erase(It->second);
  Index.erase(It);
  ++S.Evictions;
  S.Resident = Lru.size();
  if (OnEvict)
    OnEvict(Hash);
  return true;
}

size_t FunctionCache::clear() {
  std::lock_guard<std::mutex> G(M);
  size_t N = Lru.size();
  S.Evictions += N;
  if (OnEvict)
    for (const Entry &E : Lru)
      OnEvict(E.Hash);
  Lru.clear();
  Index.clear();
  S.Resident = 0;
  return N;
}

CacheStats FunctionCache::stats() const {
  std::lock_guard<std::mutex> G(M);
  CacheStats Out = S;
  Out.Resident = Lru.size();
  Out.Capacity = Cap;
  return Out;
}

std::vector<std::string> FunctionCache::residentHandles() const {
  std::lock_guard<std::mutex> G(M);
  std::vector<std::string> Out;
  Out.reserve(Lru.size());
  for (const Entry &E : Lru)
    Out.push_back(formatHandle(E.Hash));
  return Out;
}
