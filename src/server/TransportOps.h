//===- TransportOps.h - Injectable socket syscalls for --serve --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every socket syscall the --serve transport makes (recv, send,
/// accept) is routed through this table, so tests can make the kernel
/// lie on command. The default entries forward to the real syscalls
/// after consulting harden/FaultInject.h, which extends the IGEN_FAULT
/// grammar with the transport fault classes:
///
///   accept@N     the Nth accept() fails with EMFILE
///   read@N       the Nth recv() fails with EIO
///   conreset@N   the Nth recv() fails with ECONNRESET
///   stall@N      the Nth recv() fails with EAGAIN (spurious readiness)
///   write@N      the Nth send() fails with EPIPE
///   partial@N    the Nth send() transfers only half the buffer
///
/// The contract under test (ServeResilienceTest's fault matrix): every
/// one of these leaves the daemon serving other clients with
/// uncorrupted frames and a stable fd count. Disarmed cost is one
/// relaxed atomic load per syscall.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_TRANSPORTOPS_H
#define IGEN_SERVER_TRANSPORTOPS_H

#include <sys/socket.h>
#include <sys/types.h>

namespace igen {
namespace server {

/// The injectable syscall table. Signatures mirror the libc calls the
/// transport uses; Accept takes only the listening fd (the daemon never
/// wants the peer address).
struct TransportOps {
  ssize_t (*Recv)(int Fd, void *Buf, size_t Len, int Flags);
  ssize_t (*Send)(int Fd, const void *Buf, size_t Len, int Flags);
  int (*Accept)(int ListenFd);
};

/// Process-wide ops table, initialized to the fault-aware defaults.
/// Tests may overwrite individual entries; not synchronized, so swap
/// them only while no server is running.
TransportOps &transportOps();

/// Restores the fault-aware default entries.
void resetTransportOps();

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_TRANSPORTOPS_H
