//===- Evaluator.cpp - AST-walking interval evaluator ------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Bit-identity contract: every rule here is the runtime image of the
// corresponding `-O0 --target=ss` emission in
// transform/IntervalTransform.cpp (cross-referenced per case below).
// The transform's compile-time constant folding needs no mirroring: it
// evaluates the same pure interval ops under FE_UPWARD that we execute
// here, and %.17g materialization round-trips, so folded and
// interpreted constants carry identical bits.
//
//===----------------------------------------------------------------------===//

#include "server/Evaluator.h"

#include "analysis/ReductionAnalysis.h"
#include "frontend/AST.h"
#include "frontend/Sema.h"
#include "interval/Accumulator.h"
#include "interval/DecimalFp.h"
#include "interval/Elementary.h"
#include "interval/Interval32.h"
#include "interval/TBool.h"
#include "interval/Ulp.h"
#include "support/Diagnostics.h"

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

using namespace igen;
using namespace igen::server;

namespace {

/// Thrown to unwind out of any depth of interpretation; converted to a
/// typed EvalResult at the evalFunction boundary.
struct EvalAbort {
  EvalError E;
};

[[noreturn]] void fail(std::string Code, std::string Msg) {
  throw EvalAbort{{std::move(Code), std::move(Msg)}};
}

/// A pointer value: base buffer plus a signed offset, with the extent
/// carried along so the interpreter can bounds-check accesses the AOT
/// code would execute blind. (Out-of-range access is undefined behavior
/// in the compiled artifact; in the daemon it must be a typed error,
/// not a memory-safety hole.)
struct PtrVal {
  Interval *Base = nullptr;
  long long Size = 0;
  long long Off = 0;
};

struct Value {
  enum class K { None, Int, Iv, TB, Ptr };
  K Kind = K::None;
  long long I = 0;
  Interval V = Interval::fromPoint(0.0);
  TBool B = TBool::False;
  PtrVal P;

  static Value makeInt(long long X) {
    Value R;
    R.Kind = K::Int;
    R.I = X;
    return R;
  }
  static Value makeIv(const Interval &X) {
    Value R;
    R.Kind = K::Iv;
    R.V = X;
    return R;
  }
  static Value makeTB(TBool X) {
    Value R;
    R.Kind = K::TB;
    R.B = X;
    return R;
  }
  static Value makePtr(PtrVal X) {
    Value R;
    R.Kind = K::Ptr;
    R.P = X;
    return R;
  }
};

struct Flow {
  enum class K { Normal, Break, Continue, Return };
  K Kind = K::Normal;
  Value Ret; ///< K::Return with a value expression
  bool HasRet = false;
};

/// An addressable storage slot, for lvalues.
struct LValue {
  enum class K { Slot, Element };
  K Kind = K::Slot;
  Value *Slot = nullptr;     ///< variable slot
  Interval *Element = nullptr; ///< bounds-checked array element
};

struct Frame {
  std::unordered_map<const VarDecl *, Value *> Slots;
  std::deque<Value> Storage; ///< stable addresses for AddrOf
  std::deque<std::vector<Interval>> LocalArrays;
};

class Interp {
public:
  Interp(const InMemoryProgram &Prog, const EvalOptions &Opts)
      : Prog(Prog), Opts(Opts) {
    if (Opts.HasDeadline)
      NextDeadlineCheck = DeadlineCheckEvery;
  }

  EvalResult run(const std::string &Function,
                 const std::vector<EvalArg> &Args);

private:
  const InMemoryProgram &Prog;
  const EvalOptions &Opts;
  unsigned long long Steps = 0;
  unsigned Depth = 0;
  /// Reduction sites are a per-function static analysis; cache them so
  /// recursive calls do not re-run the pass per invocation.
  std::map<const FunctionDecl *, ReductionAnalysisResult> ReductionCache;
  /// Active accumulator feeds (transform: UpdateToAcc), keyed by the
  /// update statement. A stack because loops nest and functions recurse.
  struct AccEntry {
    const ReductionSite *Site;
    SumAccumulatorF64 *Acc;
  };
  std::map<const ExprStmt *, std::vector<AccEntry>> UpdateToAcc;

  /// Amortization interval for wall-clock deadline polls: frequent
  /// enough that a hung loop is cancelled within microseconds of the
  /// deadline, rare enough that the clock read vanishes in the noise.
  static constexpr unsigned long long DeadlineCheckEvery = 512;
  /// Next Steps value at which to poll the clock; ~0 when no deadline
  /// is set, so disabled requests pay one always-false compare per op.
  unsigned long long NextDeadlineCheck = ~0ull;
  /// Call-entry polls are strided too: deep recursion that makes
  /// little Steps progress still reaches a cancellation point every
  /// DeadlineCheckCalls frames, while a short request's single
  /// top-level call never pays a clock read at all.
  static constexpr unsigned DeadlineCheckCalls = 64;
  unsigned CallsSincePoll = 0;

  void checkDeadlineNow() {
    NextDeadlineCheck = Steps + DeadlineCheckEvery;
    if (std::chrono::steady_clock::now() >= Opts.Deadline)
      fail("deadline-exceeded",
           "evaluation exceeded the request's wall-clock deadline");
  }

  void step(unsigned long long N = 1) {
    Steps += N;
    if (Steps > Opts.StepLimit)
      fail("step-limit", "evaluation exceeded the per-request step budget");
    if (Steps >= NextDeadlineCheck)
      checkDeadlineNow();
  }

  const FunctionDecl *findDefined(const std::string &Name) const {
    for (const TopLevelItem &Item : Prog.Ast->TU.Items)
      if (Item.Function && Item.Function->Body &&
          Item.Function->Name == Name)
        return Item.Function;
    return nullptr;
  }

  const ReductionAnalysisResult &reductionsFor(const FunctionDecl *F) {
    auto It = ReductionCache.find(F);
    if (It != ReductionCache.end())
      return It->second;
    DiagnosticsEngine Scratch;
    auto *MutF = const_cast<FunctionDecl *>(F);
    return ReductionCache.emplace(F, analyzeReductions(MutF, Scratch))
        .first->second;
  }

  // --- category helpers (transform: Cat / asInterval / asTBool) ---

  /// Static mirror of the transform's TBool category: float comparisons,
  /// logical ops over them, and their negations.
  static bool isTBoolExpr(const Expr *E);

  Interval asInterval(const Value &V) {
    switch (V.Kind) {
    case Value::K::Iv:
      return V.V;
    case Value::K::Int:
      // transform asInterval: ia_cst_f64((double)(i))
      return Interval::fromPoint(static_cast<double>(V.I));
    case Value::K::TB:
      fail("unsupported", "cannot use a comparison result as a value");
    default:
      fail("unsupported", "cannot use a pointer as a scalar value");
    }
  }

  TBool asTBool(const Value &V) {
    if (V.Kind == Value::K::TB)
      return V.B;
    if (V.Kind == Value::K::Int)
      return tboolFromBool(V.I != 0); // ia_bool2tb
    fail("unsupported", "cannot use this value as a condition");
  }

  bool cvtCond(const Value &V, const char *Where) {
    if (V.Kind == Value::K::Int)
      return V.I != 0;
    if (V.Kind == Value::K::TB) {
      // ia_cvt2bool_tb, with Unknown surfaced as a typed error instead
      // of the process-global UnknownBranchHandler (which a concurrent
      // daemon cannot safely retarget per request).
      if (V.B == TBool::Unknown)
        fail("unknown-branch",
             std::string("interval condition is unknown at ") + Where);
      return V.B == TBool::True;
    }
    fail("unsupported", "invalid condition value");
  }

  Interval &element(const PtrVal &P, long long Idx) {
    long long At = P.Off + Idx;
    if (!P.Base || At < 0 || At >= P.Size)
      fail("out-of-bounds",
           "array access at index " + std::to_string(At) +
               " outside buffer of " + std::to_string(P.Size));
    return P.Base[At];
  }

  Value *slotFor(Frame &F, const VarDecl *D) {
    auto It = F.Slots.find(D);
    if (It != F.Slots.end())
      return It->second;
    F.Storage.emplace_back();
    Value *S = &F.Storage.back();
    F.Slots[D] = S;
    return S;
  }

  // --- expressions ---

  Value evalExpr(const Expr *E, Frame &F);
  Value evalUnary(const UnaryExpr *U, Frame &F);
  Value evalBinary(const BinaryExpr *B, Frame &F);
  Value evalCall(const CallExpr *C, Frame &F);
  Value evalCast(const CastExpr *C, Frame &F);
  LValue evalLValue(const Expr *E, Frame &F);
  Value loadLValue(const LValue &L, const Type *Ty);
  void storeLValue(const LValue &L, const Value &V);

  // --- statements ---

  Flow execStmt(const Stmt *S, Frame &F);
  Flow execCompound(const CompoundStmt *S, Frame &F);
  Flow execIf(const IfStmt *S, Frame &F);
  Flow execFor(const ForStmt *S, Frame &F, const FunctionDecl *Fn);
  void execDecl(const VarDecl *D, Frame &F);

  // transform: collectJoinTargets / collectAssignTargetsInExpr
  static bool collectAssignTargets(const Expr *E,
                                   std::set<const VarDecl *> &Targets);
  static bool collectJoinTargets(const Stmt *S,
                                 std::set<const VarDecl *> &Targets);

  Value callFunction(const FunctionDecl *Fn, std::vector<Value> Args);

  const FunctionDecl *CurFn = nullptr;
};

bool Interp::isTBoolExpr(const Expr *E) {
  E = ignoreParens(E);
  if (const auto *B = dynCast<BinaryExpr>(E)) {
    bool FloatOp =
        (B->LHS->type() && B->LHS->type()->isFloatingOrVector()) ||
        (B->RHS->type() && B->RHS->type()->isFloatingOrVector());
    switch (B->O) {
    case BinaryExpr::Op::LT:
    case BinaryExpr::Op::GT:
    case BinaryExpr::Op::LE:
    case BinaryExpr::Op::GE:
    case BinaryExpr::Op::EQ:
    case BinaryExpr::Op::NE:
      return FloatOp;
    case BinaryExpr::Op::LAnd:
    case BinaryExpr::Op::LOr:
      return isTBoolExpr(B->LHS) || isTBoolExpr(B->RHS);
    default:
      return false;
    }
  }
  if (const auto *U = dynCast<UnaryExpr>(E))
    if (U->O == UnaryExpr::Op::LogicalNot)
      return isTBoolExpr(U->Sub);
  return false;
}

Value Interp::evalExpr(const Expr *E, Frame &F) {
  step();
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
    return Value::makeInt(cast<IntLiteralExpr>(E)->Value);
  case Expr::Kind::FloatLiteral: {
    const auto *FL = cast<FloatLiteralExpr>(E);
    if (FL->IsTolerance) {
      // transform FloatLiteral/IsTolerance: [-t, t] via the decimal
      // enclosure's outer hull.
      DdInterval Enc = ddIntervalFromDecimal(FL->Spelling);
      Interval Hull = Enc.outerHull();
      return Value::makeIv(Interval(Hull.Hi, Hull.Hi));
    }
    double V = FL->Value;
    if (V == std::trunc(V) && std::fabs(V) < 0x1p53)
      return Value::makeIv(Interval::fromPoint(V));
    return Value::makeIv(Interval::fromEndpoints(nextDown(V), nextUp(V)));
  }
  case Expr::Kind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    if (!Ref->Decl)
      fail("unsupported", "reference to undeclared name '" + Ref->Name +
                              "'");
    auto It = F.Slots.find(Ref->Decl);
    if (It == F.Slots.end())
      fail("unsupported",
           "read of uninitialized variable '" + Ref->Name + "'");
    return *It->second;
  }
  case Expr::Kind::Paren:
    return evalExpr(cast<ParenExpr>(E)->Sub, F);
  case Expr::Kind::Unary:
    return evalUnary(cast<UnaryExpr>(E), F);
  case Expr::Kind::Binary:
    return evalBinary(cast<BinaryExpr>(E), F);
  case Expr::Kind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    if (isTBoolExpr(C->Cond))
      fail("unsupported", "interval-dependent '?:' conditions are not "
                          "supported; rewrite as an if statement");
    Value Cond = evalExpr(C->Cond, F);
    // Plain condition: C evaluates only the taken side, and the emitted
    // `(c ? a : b)` does the same.
    const Expr *Side = cvtCond(Cond, "?:") ? C->Then : C->Else;
    Value V = evalExpr(Side, F);
    if (E->type() && E->type()->isFloatingOrVector())
      return Value::makeIv(asInterval(V));
    return V;
  }
  case Expr::Kind::Call:
    return evalCall(cast<CallExpr>(E), F);
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value Base = evalExpr(I->Base, F);
    Value Idx = evalExpr(I->Idx, F);
    if (Base.Kind != Value::K::Ptr || Idx.Kind != Value::K::Int)
      fail("unsupported", "invalid array subscript");
    if (!(E->type() && E->type()->isFloating()))
      fail("unsupported", "only double arrays are supported by eval");
    return Value::makeIv(element(Base.P, Idx.I));
  }
  case Expr::Kind::Cast:
    return evalCast(cast<CastExpr>(E), F);
  }
  fail("unsupported", "unsupported expression kind");
}

Value Interp::evalUnary(const UnaryExpr *U, Frame &F) {
  switch (U->O) {
  case UnaryExpr::Op::Neg: {
    Value Sub = evalExpr(U->Sub, F);
    if (Sub.Kind == Value::K::Iv)
      return Value::makeIv(iNeg(Sub.V));
    if (Sub.Kind == Value::K::Int)
      return Value::makeInt(-Sub.I);
    fail("unsupported", "invalid operand to unary '-'");
  }
  case UnaryExpr::Op::Plus:
    return evalExpr(U->Sub, F);
  case UnaryExpr::Op::LogicalNot: {
    Value Sub = evalExpr(U->Sub, F);
    if (Sub.Kind == Value::K::TB)
      return Value::makeTB(tboolNot(Sub.B));
    if (Sub.Kind == Value::K::Int)
      return Value::makeInt(Sub.I == 0 ? 1 : 0);
    fail("unsupported", "invalid operand to '!'");
  }
  case UnaryExpr::Op::BitNot: {
    Value Sub = evalExpr(U->Sub, F);
    if (Sub.Kind != Value::K::Int)
      fail("unsupported", "invalid operand to '~'");
    return Value::makeInt(~Sub.I);
  }
  case UnaryExpr::Op::PreInc:
  case UnaryExpr::Op::PreDec:
  case UnaryExpr::Op::PostInc:
  case UnaryExpr::Op::PostDec: {
    LValue L = evalLValue(U->Sub, F);
    if (L.Kind != LValue::K::Slot || L.Slot->Kind != Value::K::Int)
      fail("unsupported", "++/-- on floating-point values is not "
                          "supported in the IGen C subset");
    bool Pre = U->O == UnaryExpr::Op::PreInc ||
               U->O == UnaryExpr::Op::PreDec;
    bool Inc = U->O == UnaryExpr::Op::PreInc ||
               U->O == UnaryExpr::Op::PostInc;
    long long Old = L.Slot->I;
    L.Slot->I = Inc ? Old + 1 : Old - 1;
    return Value::makeInt(Pre ? L.Slot->I : Old);
  }
  case UnaryExpr::Op::Deref: {
    Value Sub = evalExpr(U->Sub, F);
    if (Sub.Kind != Value::K::Ptr)
      fail("unsupported", "dereference of a non-pointer value");
    if (!(U->type() && U->type()->isFloating()))
      fail("unsupported", "only double pointers are supported by eval");
    return Value::makeIv(element(Sub.P, 0));
  }
  case UnaryExpr::Op::AddrOf: {
    LValue L = evalLValue(U->Sub, F);
    PtrVal P;
    if (L.Kind == LValue::K::Element) {
      P.Base = L.Element;
      P.Size = 1; // a borrowed one-element view; AOT has the same UB edge
    } else {
      if (L.Slot->Kind != Value::K::Iv)
        fail("unsupported", "'&' is only supported on double variables");
      P.Base = &L.Slot->V;
      P.Size = 1;
    }
    return Value::makePtr(P);
  }
  }
  fail("unsupported", "unsupported unary operator");
}

Value Interp::evalBinary(const BinaryExpr *B, Frame &F) {
  if (B->isAssignment()) {
    // transform transformBinary/assignment: lvalue first, then RHS.
    LValue L = evalLValue(B->LHS, F);
    Value RHS = evalExpr(B->RHS, F);
    bool IntervalTarget =
        B->LHS->type() && B->LHS->type()->isFloatingOrVector();
    if (!IntervalTarget) {
      // Plain (integer) compound assignment.
      Value Cur = loadLValue(L, B->LHS->type());
      if (Cur.Kind == Value::K::Ptr || RHS.Kind == Value::K::Ptr)
        fail("unsupported", "pointer assignment is not supported by eval");
      long long A = Cur.I, Bv = RHS.I, R = 0;
      switch (B->O) {
      case BinaryExpr::Op::Assign:
        R = RHS.Kind == Value::K::Int ? Bv : 0;
        if (RHS.Kind != Value::K::Int)
          fail("unsupported", "invalid integer assignment");
        break;
      case BinaryExpr::Op::AddAssign: R = A + Bv; break;
      case BinaryExpr::Op::SubAssign: R = A - Bv; break;
      case BinaryExpr::Op::MulAssign: R = A * Bv; break;
      case BinaryExpr::Op::DivAssign:
        if (Bv == 0)
          fail("int-div-zero", "integer division by zero");
        R = A / Bv;
        break;
      default:
        fail("unsupported", "unsupported assignment operator");
      }
      Value Out = Value::makeInt(R);
      storeLValue(L, Out);
      return Out;
    }
    Interval Value_ = asInterval(RHS);
    if (B->O != BinaryExpr::Op::Assign) {
      Interval Cur = asInterval(loadLValue(L, B->LHS->type()));
      switch (B->O) {
      case BinaryExpr::Op::AddAssign: Value_ = iAdd(Cur, Value_); break;
      case BinaryExpr::Op::SubAssign: Value_ = iSub(Cur, Value_); break;
      case BinaryExpr::Op::MulAssign: Value_ = iMul(Cur, Value_); break;
      case BinaryExpr::Op::DivAssign: Value_ = iDiv(Cur, Value_); break;
      default:
        fail("unsupported", "unsupported assignment operator");
      }
    }
    Value Out = Value::makeIv(Value_);
    storeLValue(L, Out);
    return Out;
  }

  bool FloatOp =
      (B->LHS->type() && B->LHS->type()->isFloatingOrVector()) ||
      (B->RHS->type() && B->RHS->type()->isFloatingOrVector());

  switch (B->O) {
  case BinaryExpr::Op::Add:
  case BinaryExpr::Op::Sub:
  case BinaryExpr::Op::Mul:
  case BinaryExpr::Op::Div: {
    Value L = evalExpr(B->LHS, F);
    Value R = evalExpr(B->RHS, F);
    if (!FloatOp) {
      // Pointer arithmetic stays plain C (transform leaves it alone).
      if (L.Kind == Value::K::Ptr && R.Kind == Value::K::Int &&
          (B->O == BinaryExpr::Op::Add || B->O == BinaryExpr::Op::Sub)) {
        PtrVal P = L.P;
        P.Off += B->O == BinaryExpr::Op::Add ? R.I : -R.I;
        return Value::makePtr(P);
      }
      if (L.Kind != Value::K::Int || R.Kind != Value::K::Int)
        fail("unsupported", "invalid integer arithmetic operands");
      switch (B->O) {
      case BinaryExpr::Op::Add: return Value::makeInt(L.I + R.I);
      case BinaryExpr::Op::Sub: return Value::makeInt(L.I - R.I);
      case BinaryExpr::Op::Mul: return Value::makeInt(L.I * R.I);
      default:
        if (R.I == 0)
          fail("int-div-zero", "integer division by zero");
        return Value::makeInt(L.I / R.I);
      }
    }
    Interval A = asInterval(L), Bv = asInterval(R);
    switch (B->O) {
    case BinaryExpr::Op::Add: return Value::makeIv(iAdd(A, Bv));
    case BinaryExpr::Op::Sub: return Value::makeIv(iSub(A, Bv));
    case BinaryExpr::Op::Mul: return Value::makeIv(iMul(A, Bv));
    default: return Value::makeIv(iDiv(A, Bv));
    }
  }
  case BinaryExpr::Op::LT:
  case BinaryExpr::Op::GT:
  case BinaryExpr::Op::LE:
  case BinaryExpr::Op::GE:
  case BinaryExpr::Op::EQ:
  case BinaryExpr::Op::NE: {
    Value L = evalExpr(B->LHS, F);
    Value R = evalExpr(B->RHS, F);
    if (!FloatOp) {
      if (L.Kind != Value::K::Int || R.Kind != Value::K::Int)
        fail("unsupported", "invalid comparison operands");
      bool Res;
      switch (B->O) {
      case BinaryExpr::Op::LT: Res = L.I < R.I; break;
      case BinaryExpr::Op::GT: Res = L.I > R.I; break;
      case BinaryExpr::Op::LE: Res = L.I <= R.I; break;
      case BinaryExpr::Op::GE: Res = L.I >= R.I; break;
      case BinaryExpr::Op::EQ: Res = L.I == R.I; break;
      default: Res = L.I != R.I; break;
      }
      return Value::makeInt(Res ? 1 : 0);
    }
    if ((B->LHS->type() && B->LHS->type()->isSimdVector()) ||
        (B->RHS->type() && B->RHS->type()->isSimdVector()))
      fail("unsupported", "comparisons of SIMD vectors are not supported");
    Interval A = asInterval(L), Bv = asInterval(R);
    switch (B->O) {
    case BinaryExpr::Op::LT: return Value::makeTB(iCmpLT(A, Bv));
    case BinaryExpr::Op::GT: return Value::makeTB(iCmpGT(A, Bv));
    case BinaryExpr::Op::LE: return Value::makeTB(iCmpLE(A, Bv));
    case BinaryExpr::Op::GE: return Value::makeTB(iCmpGE(A, Bv));
    case BinaryExpr::Op::EQ: return Value::makeTB(iCmpEQ(A, Bv));
    default: return Value::makeTB(iCmpNE(A, Bv));
    }
  }
  case BinaryExpr::Op::LAnd:
  case BinaryExpr::Op::LOr: {
    if (isTBoolExpr(B->LHS) || isTBoolExpr(B->RHS)) {
      // ia_and_tb/ia_or_tb are plain calls: both operands evaluate.
      TBool A = asTBool(evalExpr(B->LHS, F));
      TBool Bb = asTBool(evalExpr(B->RHS, F));
      return Value::makeTB(B->O == BinaryExpr::Op::LAnd ? tboolAnd(A, Bb)
                                                        : tboolOr(A, Bb));
    }
    // Plain: C short-circuit semantics.
    Value L = evalExpr(B->LHS, F);
    bool LB = cvtCond(L, "&&/||");
    if (B->O == BinaryExpr::Op::LAnd && !LB)
      return Value::makeInt(0);
    if (B->O == BinaryExpr::Op::LOr && LB)
      return Value::makeInt(1);
    return Value::makeInt(cvtCond(evalExpr(B->RHS, F), "&&/||") ? 1 : 0);
  }
  default: {
    Value L = evalExpr(B->LHS, F);
    Value R = evalExpr(B->RHS, F);
    if (L.Kind != Value::K::Int || R.Kind != Value::K::Int)
      fail("unsupported", "invalid bitwise/shift operands");
    switch (B->O) {
    case BinaryExpr::Op::Rem:
      if (R.I == 0)
        fail("int-div-zero", "integer remainder by zero");
      return Value::makeInt(L.I % R.I);
    case BinaryExpr::Op::Shl: return Value::makeInt(L.I << (R.I & 63));
    case BinaryExpr::Op::Shr: return Value::makeInt(L.I >> (R.I & 63));
    case BinaryExpr::Op::BitAnd: return Value::makeInt(L.I & R.I);
    case BinaryExpr::Op::BitOr: return Value::makeInt(L.I | R.I);
    default: return Value::makeInt(L.I ^ R.I);
    }
  }
  }
}

Value Interp::evalCast(const CastExpr *C, Frame &F) {
  Value Sub = evalExpr(C->Sub, F);
  const Type *From = C->Sub->type();
  if (C->To->isPointer()) {
    if (Sub.Kind == Value::K::Ptr)
      return Sub;
    fail("unsupported", "pointer casts are not supported by eval");
  }
  if (C->To->isFloating()) {
    if (Sub.Kind == Value::K::Iv) {
      if (C->To->kind() == Type::Kind::Float && From &&
          From->kind() == Type::Kind::Double)
        // ia_f32cast_f64: round outward to the float grid.
        return Value::makeIv(Interval32::fromInterval(Sub.V).widen());
      return Sub; // float<->double widening: intervals already double
    }
    if (Sub.Kind == Value::K::Int)
      return Value::makeIv(
          Interval::fromPoint(static_cast<double>(Sub.I)));
    fail("unsupported", "invalid cast operand");
  }
  // Integer casts: emitted C applies the target width; mirror int.
  if (Sub.Kind != Value::K::Int)
    fail("unsupported", "cannot cast an interval to an integer");
  if (C->To->kind() == Type::Kind::Int)
    return Value::makeInt(static_cast<int>(Sub.I));
  if (C->To->kind() == Type::Kind::UInt)
    return Value::makeInt(
        static_cast<long long>(static_cast<unsigned>(Sub.I)));
  return Sub;
}

Value Interp::evalCall(const CallExpr *C, Frame &F) {
  CalleeKind CK = classifyCallee(C->Callee);

  if (CK == CalleeKind::MathFunction) {
    // transform transformCall: strip the f suffix, canonicalize names.
    std::string Base = C->Callee;
    if (!Base.empty() && Base.back() == 'f' && Base != "fabsf")
      Base.pop_back();
    if (Base == "fabsf" || Base == "fabs")
      Base = "abs";
    if (Base == "fmin")
      Base = "min";
    if (Base == "fmax")
      Base = "max";
    if (C->Args.empty() ||
        ((Base == "min" || Base == "max") && C->Args.size() < 2))
      fail("bad-argument",
           "wrong number of arguments to '" + C->Callee + "'");
    Interval Arg = asInterval(evalExpr(C->Args[0], F));
    if (Base == "min" || Base == "max") {
      Interval Arg2 = asInterval(evalExpr(C->Args[1], F));
      return Value::makeIv(Base == "min" ? iMin(Arg, Arg2)
                                         : iMax(Arg, Arg2));
    }
    // -O0 semantics: always the libm-backed kernels, never the _fast
    // polynomial variants (those are -O1 rewrites).
    if (Base == "sqrt") return Value::makeIv(iSqrt(Arg));
    if (Base == "abs") return Value::makeIv(iAbs(Arg));
    if (Base == "floor") return Value::makeIv(iFloor(Arg));
    if (Base == "ceil") return Value::makeIv(iCeil(Arg));
    if (Base == "exp") return Value::makeIv(iExp(Arg));
    if (Base == "log") return Value::makeIv(iLog(Arg));
    if (Base == "sin") return Value::makeIv(iSin(Arg));
    if (Base == "cos") return Value::makeIv(iCos(Arg));
    if (Base == "tan") return Value::makeIv(iTan(Arg));
    if (Base == "atan") return Value::makeIv(iAtan(Arg));
    if (Base == "asin") return Value::makeIv(iAsin(Arg));
    if (Base == "acos") return Value::makeIv(iAcos(Arg));
    fail("unsupported",
         "math function '" + C->Callee + "' has no interval kernel");
  }

  if (CK == CalleeKind::Intrinsic)
    fail("unsupported",
         "SIMD intrinsics are not supported by the eval tier; "
         "compile ahead of time for vector kernels");
  if (CK == CalleeKind::Allocation)
    fail("unsupported", "allocation calls are not supported by eval");

  const FunctionDecl *Callee = findDefined(C->Callee);
  if (!Callee)
    fail("unsupported", "call to external function '" + C->Callee +
                            "' cannot be evaluated in-process");
  if (Callee->Params.size() != C->Args.size())
    fail("bad-argument",
         "wrong number of arguments to '" + C->Callee + "'");
  std::vector<Value> Args;
  Args.reserve(C->Args.size());
  for (size_t I = 0; I < C->Args.size(); ++I) {
    Value A = evalExpr(C->Args[I], F);
    const Type *ArgTy = C->Args[I]->type();
    if (ArgTy && ArgTy->isFloatingOrVector())
      A = Value::makeIv(asInterval(A));
    Args.push_back(std::move(A));
  }
  return callFunction(Callee, std::move(Args));
}

LValue Interp::evalLValue(const Expr *E, Frame &F) {
  E = ignoreParens(E);
  switch (E->kind()) {
  case Expr::Kind::DeclRef: {
    const auto *Ref = cast<DeclRefExpr>(E);
    if (!Ref->Decl)
      fail("unsupported", "assignment to undeclared name");
    LValue L;
    L.Kind = LValue::K::Slot;
    L.Slot = slotFor(F, Ref->Decl);
    return L;
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value Base = evalExpr(I->Base, F);
    Value Idx = evalExpr(I->Idx, F);
    if (Base.Kind != Value::K::Ptr || Idx.Kind != Value::K::Int)
      fail("unsupported", "invalid array subscript");
    LValue L;
    L.Kind = LValue::K::Element;
    L.Element = &element(Base.P, Idx.I);
    return L;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->O == UnaryExpr::Op::Deref) {
      Value Sub = evalExpr(U->Sub, F);
      if (Sub.Kind != Value::K::Ptr)
        fail("unsupported", "dereference of a non-pointer value");
      LValue L;
      L.Kind = LValue::K::Element;
      L.Element = &element(Sub.P, 0);
      return L;
    }
    break;
  }
  default:
    break;
  }
  fail("unsupported", "unsupported assignment target");
}

Value Interp::loadLValue(const LValue &L, const Type *Ty) {
  if (L.Kind == LValue::K::Element)
    return Value::makeIv(*L.Element);
  if (L.Slot->Kind == Value::K::None) {
    // Reading an uninitialized variable is UB in the AOT artifact; give
    // compound assignment a deterministic typed error instead.
    if (Ty && Ty->isFloating())
      fail("unsupported", "read of uninitialized variable");
    fail("unsupported", "read of uninitialized variable");
  }
  return *L.Slot;
}

void Interp::storeLValue(const LValue &L, const Value &V) {
  if (L.Kind == LValue::K::Element) {
    if (V.Kind != Value::K::Iv)
      fail("unsupported", "invalid store to a double array element");
    *L.Element = V.V;
    return;
  }
  *L.Slot = V;
}

// --- statements ---

void Interp::execDecl(const VarDecl *D, Frame &F) {
  Value *S = slotFor(F, D);
  if (D->Ty->isArray()) {
    const Type *Elem = D->Ty->element();
    if (!Elem->isFloating() || Elem->isArray())
      fail("unsupported", "only 1-D double local arrays are supported");
    F.LocalArrays.emplace_back(
        static_cast<size_t>(D->Ty->arraySize()),
        Interval::fromPoint(0.0));
    PtrVal P;
    P.Base = F.LocalArrays.back().data();
    P.Size = static_cast<long long>(D->Ty->arraySize());
    *S = Value::makePtr(P);
    if (D->Init)
      fail("unsupported", "array initializers are not supported");
    return;
  }
  if (D->Ty->isSimdVector())
    fail("unsupported", "SIMD vector locals are not supported by eval");
  if (!D->Init) {
    *S = Value();
    if (D->Ty->isInteger())
      S->Kind = Value::K::None; // uninitialized until first store
    return;
  }
  Value Init = evalExpr(D->Init, F);
  if (D->Ty->isFloatingOrVector())
    *S = Value::makeIv(asInterval(Init));
  else if (D->Ty->isPointer()) {
    if (Init.Kind != Value::K::Ptr)
      fail("unsupported", "invalid pointer initializer");
    *S = Init;
  } else {
    if (Init.Kind != Value::K::Int)
      fail("unsupported", "invalid integer initializer");
    *S = Init;
  }
}

bool Interp::collectAssignTargets(const Expr *E,
                                  std::set<const VarDecl *> &Targets) {
  const auto *B = dynCast<BinaryExpr>(ignoreParens(E));
  if (!B)
    return !dynCast<CallExpr>(ignoreParens(E)); // calls may have effects
  if (!B->isAssignment())
    return true;
  const auto *Ref = dynCast<DeclRefExpr>(ignoreParens(B->LHS));
  if (!Ref || !Ref->Decl)
    return false; // array/pointer stores: join unsupported (paper)
  if (!Ref->Decl->Ty->isFloating())
    return false; // integer or vector variables: unsupported
  Targets.insert(Ref->Decl);
  return collectAssignTargets(B->RHS, Targets);
}

bool Interp::collectJoinTargets(const Stmt *S,
                                std::set<const VarDecl *> &Targets) {
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->Body)
      if (!collectJoinTargets(Child, Targets))
        return false;
    return true;
  case Stmt::Kind::ExprStmt:
    return collectAssignTargets(cast<ExprStmt>(S)->E, Targets);
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    return collectJoinTargets(If->Then, Targets) &&
           (!If->Else || collectJoinTargets(If->Else, Targets));
  }
  case Stmt::Kind::Null:
    return true;
  default:
    return false; // loops, returns, declarations: bail out
  }
}

Flow Interp::execIf(const IfStmt *S, Frame &F) {
  if (!isTBoolExpr(S->Cond)) {
    Value Cond = evalExpr(S->Cond, F);
    if (cvtCond(Cond, "if"))
      return execStmt(S->Then, F);
    if (S->Else)
      return execStmt(S->Else, F);
    return Flow();
  }

  TBool Cond = asTBool(evalExpr(S->Cond, F));
  std::set<const VarDecl *> Targets;
  bool JoinSafe = Opts.JoinBranches && collectJoinTargets(S->Then, Targets) &&
                  (!S->Else || collectJoinTargets(S->Else, Targets));
  if (!JoinSafe) {
    // Exception policy (transform: ia_cvt2bool_tb, may signal).
    if (Cond == TBool::Unknown)
      fail("unknown-branch", "interval branch condition is unknown");
    if (Cond == TBool::True)
      return execStmt(S->Then, F);
    if (S->Else)
      return execStmt(S->Else, F);
    return Flow();
  }

  // Join mode (transform emitIf): run both branches on the unknown
  // state and hull the results.
  if (Cond == TBool::True)
    return execStmt(S->Then, F);
  if (Cond == TBool::False) {
    if (S->Else)
      return execStmt(S->Else, F);
    return Flow();
  }
  std::map<const VarDecl *, Interval> Saved, ThenRes;
  for (const VarDecl *V : Targets) {
    Value *Slot = slotFor(F, V);
    if (Slot->Kind != Value::K::Iv)
      fail("unsupported", "join target is not an initialized interval");
    Saved.emplace(V, Slot->V);
  }
  Flow Fl = execStmt(S->Then, F); // join-safe bodies cannot break/return
  (void)Fl;
  for (const VarDecl *V : Targets) {
    Value *Slot = slotFor(F, V);
    ThenRes.emplace(V, Slot->V);
    Slot->V = Saved.at(V);
  }
  if (S->Else)
    execStmt(S->Else, F);
  for (const VarDecl *V : Targets) {
    Value *Slot = slotFor(F, V);
    Slot->V = iHull(Slot->V, ThenRes.at(V));
  }
  return Flow();
}

Flow Interp::execFor(const ForStmt *S, Frame &F, const FunctionDecl *Fn) {
  if (S->Init) {
    if (const auto *DS = dynCast<DeclStmt>(S->Init)) {
      for (const VarDecl *D : DS->Decls)
        execDecl(D, F);
    } else if (const auto *ES = dynCast<ExprStmt>(S->Init)) {
      evalExpr(ES->E, F);
    }
  }

  // Reduction accumulators (transform emitFor): initialize with the
  // current target enclosure before the loop, feed terms at the update
  // statement, finalize after the loop.
  std::vector<const ReductionSite *> Sites;
  if (Opts.EnableReductions)
    Sites = reductionsFor(Fn).sitesForLoop(S);
  std::deque<SumAccumulatorF64> Accs;
  for (const ReductionSite *Site : Sites) {
    Accs.emplace_back();
    Accs.back().init(asInterval(evalExpr(Site->Target, F)));
    UpdateToAcc[Site->Update].push_back({Site, &Accs.back()});
  }
  auto PopFeeds = [&] {
    for (const ReductionSite *Site : Sites) {
      auto &Vec = UpdateToAcc[Site->Update];
      Vec.pop_back();
      if (Vec.empty())
        UpdateToAcc.erase(Site->Update);
    }
  };

  Flow Out;
  while (true) {
    step();
    if (S->Cond) {
      Value Cond = evalExpr(S->Cond, F);
      if (!cvtCond(Cond, "for"))
        break;
    }
    Flow Fl = execStmt(S->Body, F);
    if (Fl.Kind == Flow::K::Return) {
      // A return inside the loop skips the reduce finalization, exactly
      // as the emitted code jumps past the post-loop assignment.
      PopFeeds();
      return Fl;
    }
    if (Fl.Kind == Flow::K::Break)
      break;
    if (S->Inc)
      evalExpr(S->Inc, F);
  }
  PopFeeds();
  for (size_t I = 0; I < Sites.size(); ++I) {
    LValue L = evalLValue(Sites[I]->Target, F);
    storeLValue(L, Value::makeIv(Accs[I].reduce()));
  }
  return Out;
}

Flow Interp::execCompound(const CompoundStmt *S, Frame &F) {
  for (const Stmt *Child : S->Body) {
    Flow Fl = execStmt(Child, F);
    if (Fl.Kind != Flow::K::Normal)
      return Fl;
  }
  return Flow();
}

Flow Interp::execStmt(const Stmt *S, Frame &F) {
  step();
  switch (S->kind()) {
  case Stmt::Kind::Compound:
    return execCompound(cast<CompoundStmt>(S), F);
  case Stmt::Kind::DeclStmt:
    for (const VarDecl *D : cast<DeclStmt>(S)->Decls)
      execDecl(D, F);
    return Flow();
  case Stmt::Kind::ExprStmt: {
    const auto *ES = cast<ExprStmt>(S);
    auto It = UpdateToAcc.find(ES);
    if (It != UpdateToAcc.end() && !It->second.empty()) {
      // Reduction update: feed each term into the accumulator instead
      // of executing the assignment (transform emitExprStmt).
      const AccEntry &E = It->second.back();
      for (const ReductionTerm &T : E.Site->Terms) {
        Interval Term = asInterval(evalExpr(T.Term, F));
        if (T.Negated)
          Term = iNeg(Term);
        E.Acc->accumulate(Term);
      }
      return Flow();
    }
    evalExpr(ES->E, F);
    return Flow();
  }
  case Stmt::Kind::If:
    return execIf(cast<IfStmt>(S), F);
  case Stmt::Kind::For:
    return execFor(cast<ForStmt>(S), F, CurFn);
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (true) {
      step();
      if (!cvtCond(evalExpr(W->Cond, F), "while"))
        break;
      Flow Fl = execStmt(W->Body, F);
      if (Fl.Kind == Flow::K::Return)
        return Fl;
      if (Fl.Kind == Flow::K::Break)
        break;
    }
    return Flow();
  }
  case Stmt::Kind::Do: {
    const auto *D = cast<DoStmt>(S);
    while (true) {
      step();
      Flow Fl = execStmt(D->Body, F);
      if (Fl.Kind == Flow::K::Return)
        return Fl;
      if (Fl.Kind == Flow::K::Break)
        break;
      if (!cvtCond(evalExpr(D->Cond, F), "do-while"))
        break;
    }
    return Flow();
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    Flow Fl;
    Fl.Kind = Flow::K::Return;
    if (R->Value) {
      Value V = evalExpr(R->Value, F);
      bool WantInterval =
          R->Value->type() && R->Value->type()->isFloatingOrVector();
      Fl.Ret = WantInterval ? Value::makeIv(asInterval(V)) : V;
      Fl.HasRet = true;
    }
    return Fl;
  }
  case Stmt::Kind::Break: {
    Flow Fl;
    Fl.Kind = Flow::K::Break;
    return Fl;
  }
  case Stmt::Kind::Continue: {
    Flow Fl;
    Fl.Kind = Flow::K::Continue;
    return Fl;
  }
  case Stmt::Kind::Null:
    return Flow();
  }
  return Flow();
}

Value Interp::callFunction(const FunctionDecl *Fn, std::vector<Value> Args) {
  if (++Depth > Opts.MaxCallDepth) {
    --Depth;
    fail("recursion-limit", "user-function call depth exceeded");
  }
  // Strided deadline poll at call entry: recursion that makes little
  // per-frame progress still hits a cancellation point every few
  // frames without taxing call-light requests with a clock read.
  if (Opts.HasDeadline && ++CallsSincePoll >= DeadlineCheckCalls) {
    CallsSincePoll = 0;
    checkDeadlineNow();
  }
  const FunctionDecl *PrevFn = CurFn;
  CurFn = Fn;

  Frame F;
  // Harden prologue (transform emitFunctionImpl): a dirty FP
  // environment on entry poisons an interval-returning function to the
  // whole line. The serve layer already repaired the environment; we
  // only honor the verdict here, and only at the outermost frame
  // (callees run under the now-sound environment, like AOT code whose
  // igen_fenv_check repaired on the way in).
  if (Opts.PoisonedEntry && Depth == 1 && Fn->RetTy->isFloating()) {
    --Depth;
    CurFn = PrevFn;
    return Value::makeIv(Interval::entire());
  }

  for (size_t I = 0; I < Fn->Params.size(); ++I) {
    const VarDecl *P = Fn->Params[I];
    Value *S = slotFor(F, P);
    Value &A = Args[I];
    if (P->HasTolerance) {
      // Tolerance shadow (transform: _a = ia_set_tol(a, TolUp)). All
      // body references resolve through Renames to the shadow, so the
      // slot holds the widened interval directly.
      if (A.Kind != Value::K::Iv || !A.V.isPoint())
        fail("bad-argument", "tolerance parameter '" + P->Name +
                                 "' takes a point value");
      DdInterval TolEnc = ddIntervalFromDecimal(P->ToleranceSpelling);
      double TolUp =
          TolEnc.hasNaN() ? P->Tolerance : ddToDoubleUp(TolEnc.Hi);
      *S = Value::makeIv(iSetTol(A.V.Hi, TolUp));
      continue;
    }
    if (P->Ty->isSimdVector())
      fail("unsupported", "SIMD vector parameters are not supported");
    if (P->Ty->isFloating()) {
      if (A.Kind != Value::K::Iv)
        fail("bad-argument",
             "parameter '" + P->Name + "' takes an interval");
      *S = A;
    } else if (P->Ty->isInteger()) {
      if (A.Kind != Value::K::Int)
        fail("bad-argument",
             "parameter '" + P->Name + "' takes an integer");
      *S = A;
    } else if (P->Ty->isPointer() || P->Ty->isArray()) {
      if (A.Kind != Value::K::Ptr)
        fail("bad-argument",
             "parameter '" + P->Name + "' takes an array");
      *S = A;
    } else {
      fail("unsupported", "unsupported parameter type for '" + P->Name +
                              "'");
    }
  }

  Flow Fl = execCompound(Fn->Body, F);
  --Depth;
  CurFn = PrevFn;

  if (Fl.Kind == Flow::K::Return && Fl.HasRet)
    return Fl.Ret;
  if (Fn->RetTy->isFloating())
    // Falling off the end of a value-returning function is UB in C;
    // surface it as a typed error instead of an indeterminate value.
    fail("unsupported",
         "function '" + Fn->Name + "' returned without a value");
  return Value();
}

EvalResult Interp::run(const std::string &Function,
                       const std::vector<EvalArg> &Args) {
  EvalResult R;
  try {
    const FunctionDecl *Fn = findDefined(Function);
    if (!Fn)
      fail("no-such-function",
           "no defined function '" + Function + "' in this program");
    if (Fn->Params.size() != Args.size())
      fail("bad-argument",
           "function '" + Function + "' takes " +
               std::to_string(Fn->Params.size()) + " arguments, got " +
               std::to_string(Args.size()));

    // Marshal the wire arguments; array arguments are copied into the
    // result up front and mutated in place, so outputs fall out for
    // free and the caller's request object stays untouched.
    std::vector<Value> CallArgs;
    std::vector<size_t> ArrayIndex(Args.size(), SIZE_MAX);
    for (size_t I = 0; I < Args.size(); ++I) {
      const EvalArg &A = Args[I];
      switch (A.K) {
      case EvalArg::Kind::Scalar:
        CallArgs.push_back(Value::makeIv(A.Scalar));
        break;
      case EvalArg::Kind::Int:
        CallArgs.push_back(Value::makeInt(A.IntValue));
        break;
      case EvalArg::Kind::Tolerance:
        CallArgs.push_back(
            Value::makeIv(Interval::fromPoint(A.Point)));
        break;
      case EvalArg::Kind::Array: {
        ArrayIndex[I] = R.ArrayOutputs.size();
        R.ArrayOutputs.push_back(A.Elements);
        PtrVal P;
        P.Base = R.ArrayOutputs.back().data();
        P.Size = static_cast<long long>(R.ArrayOutputs.back().size());
        CallArgs.push_back(Value::makePtr(P));
        break;
      }
      }
    }
    // ArrayOutputs must not reallocate once pointers are taken.
    for (size_t I = 0; I < Args.size(); ++I)
      if (ArrayIndex[I] != SIZE_MAX)
        CallArgs[I].P.Base = R.ArrayOutputs[ArrayIndex[I]].data();

    Value Ret = callFunction(Fn, std::move(CallArgs));
    if (Ret.Kind == Value::K::Iv) {
      R.HasReturn = true;
      R.Return = Ret.V;
    } else if (Ret.Kind == Value::K::Int) {
      R.HasReturn = true;
      R.ReturnIsInt = true;
      R.ReturnInt = Ret.I;
    }
    R.Ok = true;
  } catch (const EvalAbort &A) {
    R.Ok = false;
    R.Error = A.E;
    R.ArrayOutputs.clear();
  }
  R.OpsExecuted = Steps;
  return R;
}

} // namespace

EvalResult igen::server::evalFunction(const InMemoryProgram &Prog,
                                      const std::string &Function,
                                      const std::vector<EvalArg> &Args,
                                      const EvalOptions &Opts) {
  if (!Prog.Ast) {
    EvalResult R;
    R.Error = {"unsupported", "program has no retained AST"};
    return R;
  }
  if (Prog.Opts.Prec == TransformOptions::Precision::DoubleDouble) {
    EvalResult R;
    R.Error = {"unsupported",
               "double-double programs are not supported by the eval "
               "tier; use the emitted C artifact"};
    return R;
  }
  return Interp(Prog, Opts).run(Function, Args);
}

bool igen::server::describeFunction(const InMemoryProgram &Prog,
                                    const std::string &Function,
                                    std::vector<std::string> &ParamKinds,
                                    std::string &ReturnKind) {
  ParamKinds.clear();
  ReturnKind.clear();
  if (!Prog.Ast)
    return false;
  for (const TopLevelItem &Item : Prog.Ast->TU.Items) {
    if (!Item.Function || !Item.Function->Body ||
        Item.Function->Name != Function)
      continue;
    const FunctionDecl *Fn = Item.Function;
    for (const VarDecl *P : Fn->Params) {
      if (P->HasTolerance)
        ParamKinds.push_back("tolerance:" + P->ToleranceSpelling);
      else if (P->Ty->isFloating())
        ParamKinds.push_back("interval");
      else if (P->Ty->isInteger())
        ParamKinds.push_back("int");
      else if (P->Ty->isPointer() || P->Ty->isArray())
        ParamKinds.push_back("array");
      else
        ParamKinds.push_back("unsupported");
    }
    if (Fn->RetTy->isFloating())
      ReturnKind = "interval";
    else if (Fn->RetTy->isInteger())
      ReturnKind = "int";
    else
      ReturnKind = "void";
    return true;
  }
  return false;
}
