//===- PersistCache.h - Crash-recoverable compile-cache journal -*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable backing for the in-memory FunctionCache, enabled by
/// IGEN_SERVE_CACHE_DIR=<dir>. The daemon never serializes compiled
/// programs — it journals the *inputs*: each successful compile writes
/// one `<handle>.igenc` file holding the source text and the semantic
/// compile options, where <handle> is the same 16-hex content hash the
/// protocol hands to clients. On startup the directory is replayed
/// through the ordinary compileToProgram() pipeline, so a warm restart
/// reconstructs bit-identical programs from first principles rather
/// than trusting serialized state.
///
/// Durability discipline:
///  - writes go to a temp file in the same directory, fsync'd, then
///    rename(2)'d into place — a kill -9 at any instant leaves either
///    the old state or the new state, never a torn entry;
///  - replay treats the directory as untrusted: unparseable JSON,
///    missing fields, and stale entries (the stored source + options no
///    longer hash to the filename, e.g. after a hash-function change)
///    are skipped with a warn-once diagnostic and never abort startup;
///  - eviction from the in-memory LRU unlinks the journal entry, so
///    disk residency tracks memory residency and replay respects the
///    same capacity bound.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_PERSISTCACHE_H
#define IGEN_SERVER_PERSISTCACHE_H

#include "transform/Pipeline.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace igen {
namespace server {

class FunctionCache;

/// Validates an IGEN_SERVE_CACHE_DIR spelling. Null/empty specs
/// disable persistence silently (returns ""). A non-empty spec names a
/// directory that is created if missing (one level, like mkdir); when
/// the directory cannot be created or is not writable, *Warning gets a
/// one-line explanation and "" is returned — a bad cache dir degrades
/// to a memory-only daemon, it never prevents startup.
std::string cacheDirFromSpec(const char *Spec, std::string *Warning);

class PersistentCacheDir {
public:
  /// \p Dir is a validated directory path from cacheDirFromSpec(), or
  /// "" for a disabled (no-op) journal.
  explicit PersistentCacheDir(std::string Dir) : Dir(std::move(Dir)) {}

  bool enabled() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }

  /// Journals one successful compile. Failures warn once and are
  /// otherwise ignored — persistence is best-effort, serving is not.
  void persist(uint64_t Hash, std::string_view Source,
               const TransformOptions &Opts);

  /// Unlinks the journal entry for \p Hash (eviction mirror).
  void remove(uint64_t Hash);

  struct ReplayStats {
    size_t Replayed = 0; ///< entries recompiled and inserted
    size_t Skipped = 0;  ///< corrupt, stale, or uncompilable entries
  };

  /// Replays the directory into \p Cache via compileToProgram(),
  /// newest entries last (so they end up most-recent in the LRU).
  /// At most \p MaxEntries newest files are considered; surplus older
  /// files are left on disk untouched. Never throws, never exits.
  ReplayStats replay(FunctionCache &Cache, size_t MaxEntries);

private:
  std::string Dir;
  bool WarnedPersist = false;
  bool WarnedReplay = false;

  std::string pathFor(uint64_t Hash) const;
};

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_PERSISTCACHE_H
