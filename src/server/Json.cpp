//===- Json.cpp - Minimal JSON value parser for serve frames -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <cerrno>
#include <cstdlib>
#include <cstdio>
#include <cstring>

using namespace igen;
using namespace igen::server;

namespace {

class Parser {
public:
  Parser(std::string_view Text, const JsonLimits &Limits)
      : Text(Text), Limits(Limits) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    JsonValue V;
    if (!parseValue(V, 0)) {
      R.Error = Err;
      R.ErrorOffset = ErrOff;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = "trailing characters after JSON value";
      R.ErrorOffset = Pos;
      return R;
    }
    R.Ok = true;
    R.Value = std::move(V);
    return R;
  }

private:
  std::string_view Text;
  const JsonLimits &Limits;
  size_t Pos = 0;
  size_t Elements = 0;
  std::string Err;
  size_t ErrOff = 0;

  bool fail(const char *Msg) {
    if (Err.empty()) {
      Err = Msg;
      ErrOff = Pos;
    }
    return false;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!atEnd()) {
      char C = Text[Pos];
      if (C == ' ' || C == '\t' || C == '\n' || C == '\r')
        ++Pos;
      else
        break;
    }
  }

  bool countElement() {
    if (++Elements > Limits.MaxElements)
      return fail("document has too many elements");
    return true;
  }

  bool literal(const char *Word) {
    size_t N = std::strlen(Word);
    if (Text.size() - Pos < N || Text.compare(Pos, N, Word) != 0)
      return fail("invalid literal");
    Pos += N;
    return true;
  }

  bool parseValue(JsonValue &Out, size_t Depth) {
    if (Depth > Limits.MaxDepth)
      return fail("nesting too deep");
    if (!countElement())
      return false;
    if (atEnd())
      return fail("unexpected end of input");
    char C = peek();
    switch (C) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber(Out);
      return fail("unexpected character");
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    if (atEnd() || peek() < '0' || peek() > '9')
      return fail("invalid number");
    if (peek() == '0') {
      ++Pos;
    } else {
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && peek() == '.') {
      ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("invalid number");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("invalid number");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    std::string Raw(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    double V = std::strtod(Raw.c_str(), &End);
    if (End != Raw.c_str() + Raw.size())
      return fail("invalid number");
    // Overflow to +-inf is accepted; the raw spelling is preserved so
    // callers that care can reject or re-round it themselves.
    Out = JsonValue(V, std::move(Raw));
    return true;
  }

  static bool hexDigit(char C, unsigned &V) {
    if (C >= '0' && C <= '9') {
      V = unsigned(C - '0');
      return true;
    }
    if (C >= 'a' && C <= 'f') {
      V = unsigned(C - 'a' + 10);
      return true;
    }
    if (C >= 'A' && C <= 'F') {
      V = unsigned(C - 'A' + 10);
      return true;
    }
    return false;
  }

  bool parseHex4(unsigned &Out) {
    if (Text.size() - Pos < 4)
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      unsigned D;
      if (!hexDigit(Text[Pos + size_t(I)], D))
        return fail("invalid \\u escape");
      Out = (Out << 4) | D;
    }
    Pos += 4;
    return true;
  }

  void appendUtf8(std::string &S, unsigned CP) {
    if (CP < 0x80) {
      S.push_back(char(CP));
    } else if (CP < 0x800) {
      S.push_back(char(0xC0 | (CP >> 6)));
      S.push_back(char(0x80 | (CP & 0x3F)));
    } else if (CP < 0x10000) {
      S.push_back(char(0xE0 | (CP >> 12)));
      S.push_back(char(0x80 | ((CP >> 6) & 0x3F)));
      S.push_back(char(0x80 | (CP & 0x3F)));
    } else {
      S.push_back(char(0xF0 | (CP >> 18)));
      S.push_back(char(0x80 | ((CP >> 12) & 0x3F)));
      S.push_back(char(0x80 | ((CP >> 6) & 0x3F)));
      S.push_back(char(0x80 | (CP & 0x3F)));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (atEnd())
        return fail("unterminated string");
      if (Out.size() > Limits.MaxStringBytes)
        return fail("string too long");
      unsigned char C = (unsigned char)Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(char(C));
        ++Pos;
        continue;
      }
      ++Pos;
      if (atEnd())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        unsigned CP;
        if (!parseHex4(CP))
          return false;
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          // Surrogate pair.
          if (Text.size() - Pos < 2 || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Low;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("invalid low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Low - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, CP);
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
  }

  bool parseArray(JsonValue &Out, size_t Depth) {
    ++Pos; // '['
    JsonArray A;
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      Out = JsonValue(std::move(A));
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      A.push_back(std::move(V));
      skipWs();
      if (atEnd())
        return fail("unterminated array");
      char C = Text[Pos];
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == ']') {
        ++Pos;
        Out = JsonValue(std::move(A));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(JsonValue &Out, size_t Depth) {
    ++Pos; // '{'
    JsonObject O;
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      Out = JsonValue(std::move(O));
      return true;
    }
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (atEnd() || peek() != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      O[std::move(Key)] = std::move(V); // last duplicate key wins
      skipWs();
      if (atEnd())
        return fail("unterminated object");
      char C = Text[Pos];
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == '}') {
        ++Pos;
        Out = JsonValue(std::move(O));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

} // namespace

JsonParseResult igen::server::parseJson(std::string_view Text,
                                        const JsonLimits &Limits) {
  return Parser(Text, Limits).run();
}

std::string igen::server::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(char(C));
      }
    }
  }
  return Out;
}
