//===- SocketServer.cpp - Unix-socket transport for igen --serve -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/SocketServer.h"

#include "runtime/ThreadPool.h"
#include "server/Json.h"
#include "server/TransportOps.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace igen;
using namespace igen::server;

namespace {

/// SIGTERM/SIGINT land here; the reactor polls this flag every 50 ms
/// and turns it into a graceful drain. sig_atomic_t is the only thing
/// a handler may touch.
volatile std::sig_atomic_t DrainRequested = 0;

extern "C" void onDrainSignal(int) { DrainRequested = 1; }

/// One accepted client. Workers may outlive the reactor's interest in
/// the fd (a frame can still be in flight when the peer disconnects),
/// so connections are shared_ptr-owned by both sides and the fd is
/// closed exactly once, when the last owner drops it.
struct Connection {
  int Fd = -1;
  std::mutex WriteMu;
  std::atomic<bool> Open{true};
  std::string ReadBuf;
  /// Oversized-frame recovery: drop bytes until the next newline, then
  /// resume normal framing on the same connection.
  bool Discarding = false;

  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Serializes whole lines onto the socket; concurrent workers for the
  /// same connection cannot interleave partial responses.
  void writeLine(const std::string &Line) {
    std::lock_guard<std::mutex> G(WriteMu);
    if (!Open.load(std::memory_order_relaxed))
      return;
    std::string Out = Line;
    Out.push_back('\n');
    size_t Off = 0;
    while (Off < Out.size()) {
      // MSG_NOSIGNAL + the process-wide SIGPIPE ignore: a peer that
      // closes mid-frame costs this connection, never the daemon. Short
      // counts (including injected "partial" faults) just resume here.
      ssize_t N = transportOps().Send(Fd, Out.data() + Off,
                                      Out.size() - Off, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Open.store(false, std::memory_order_relaxed);
        return;
      }
      Off += (size_t)N;
    }
  }
};

struct WorkItem {
  std::shared_ptr<Connection> Conn;
  std::string Frame;
  /// When the frame came off the wire; deadlines count from here, so
  /// time queued behind other requests is not free.
  std::chrono::steady_clock::time_point Arrival;
};

/// Bounded MPMC admission queue. push() never blocks (the reactor must
/// stay responsive); a full queue is the caller's signal to shed load.
class AdmissionQueue {
public:
  explicit AdmissionQueue(size_t Cap) : Cap(Cap) {}

  bool tryPush(WorkItem Item) {
    {
      std::lock_guard<std::mutex> G(Mu);
      if (Closed || Items.size() >= Cap)
        return false;
      Items.push_back(std::move(Item));
    }
    Ready.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained.
  /// A successful pop counts as in-process until the worker calls
  /// done(), so idle() can tell "queue empty" from "work finished".
  bool pop(WorkItem &Out) {
    std::unique_lock<std::mutex> G(Mu);
    Ready.wait(G, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    ++InProcess;
    return true;
  }

  /// The worker finished (response written) for one popped item.
  void done() {
    std::lock_guard<std::mutex> G(Mu);
    if (InProcess)
      --InProcess;
  }

  /// Nothing queued and nothing executing: safe to complete a drain.
  bool idle() {
    std::lock_guard<std::mutex> G(Mu);
    return Items.empty() && InProcess == 0;
  }

  void close() {
    {
      std::lock_guard<std::mutex> G(Mu);
      Closed = true;
    }
    Ready.notify_all();
  }

private:
  const size_t Cap;
  std::mutex Mu;
  std::condition_variable Ready;
  std::deque<WorkItem> Items;
  size_t InProcess = 0;
  bool Closed = false;
};

std::string typedErrorLine(const char *Code, const char *Msg) {
  std::string Out = "{\"ok\": false, \"error\": {\"code\": \"";
  Out += Code;
  Out += "\", \"message\": \"";
  Out += Msg;
  Out += "\"}}";
  return Out;
}

/// Reactor: accepts clients and slices their byte streams into frames.
class Reactor {
public:
  Reactor(int ListenFd, ServerCore &Core, AdmissionQueue &Queue,
          long long DrainMs)
      : ListenFd(ListenFd), Core(Core), Queue(Queue), DrainMs(DrainMs) {}

  void run() {
    while (!Core.shutdownRequested()) {
      pollDrain();
      std::vector<pollfd> Fds;
      Fds.push_back({ListenFd, POLLIN, 0});
      std::vector<std::shared_ptr<Connection>> Order;
      Order.reserve(Conns.size());
      for (auto &KV : Conns) {
        Order.push_back(KV.second);
        Fds.push_back({KV.first, POLLIN, 0});
      }
      // Short timeout: shutdown is signaled by a worker thread (or a
      // drain deadline), so the reactor has to wake up on its own to
      // observe it.
      int N = ::poll(Fds.data(), Fds.size(), 50);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (Fds[0].revents & POLLIN)
        acceptOne();
      for (size_t I = 1; I < Fds.size(); ++I)
        if (Fds[I].revents & (POLLIN | POLLHUP | POLLERR))
          serviceConnection(Order[I - 1]);
      // Drop connections the peer or a failed write closed.
      for (auto It = Conns.begin(); It != Conns.end();)
        if (!It->second->Open.load(std::memory_order_relaxed))
          It = Conns.erase(It);
        else
          ++It;
    }
  }

private:
  /// Drain state machine, one step per reactor iteration. SIGTERM/
  /// SIGINT flips ServerCore to draining (queued and new frames get
  /// typed "shutting-down" answers from the workers); the drain
  /// completes — and becomes a shutdown — when all in-flight work
  /// finishes or IGEN_SERVE_DRAIN_MS runs out, whichever is first.
  void pollDrain() {
    if (DrainRequested && !Core.draining()) {
      Core.beginDrain();
      DrainDeadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(DrainMs);
    }
    if (!Core.draining())
      return;
    bool Idle = Queue.idle();
    bool TimedOut = std::chrono::steady_clock::now() >= DrainDeadline;
    if (!Idle && !TimedOut)
      return;
    Core.log().event(Idle ? "drain_complete" : "drain_timeout",
                     Idle ? "all in-flight requests finished"
                          : "drain deadline expired with work in flight");
    Core.requestShutdown();
    Queue.close();
  }

  void acceptOne() {
    int Fd = transportOps().Accept(ListenFd);
    if (Fd < 0)
      return;
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conns[Fd] = std::move(Conn);
  }

  void serviceConnection(const std::shared_ptr<Connection> &Conn) {
    char Buf[64 * 1024];
    ssize_t N = transportOps().Recv(Conn->Fd, Buf, sizeof(Buf), 0);
    if (N == 0 || (N < 0 && errno != EINTR && errno != EAGAIN)) {
      Conn->Open.store(false, std::memory_order_relaxed);
      return;
    }
    if (N < 0)
      return;
    size_t Start = 0;
    for (ssize_t I = 0; I < N; ++I) {
      if (Buf[I] != '\n')
        continue;
      if (Conn->Discarding) {
        Conn->Discarding = false;
      } else {
        Conn->ReadBuf.append(Buf + Start, (size_t)(I - Start));
        dispatchFrame(Conn, std::move(Conn->ReadBuf));
        Conn->ReadBuf.clear();
      }
      Start = (size_t)I + 1;
    }
    if (!Conn->Discarding) {
      Conn->ReadBuf.append(Buf + Start, (size_t)(N - Start));
      if (Conn->ReadBuf.size() > maxFrameBytes()) {
        // The frame can only grow; answer now and resynchronize at the
        // next newline so the connection keeps serving.
        Conn->writeLine(typedErrorLine(
            "frame-too-large",
            "request frame exceeds IGEN_SERVE_MAX_FRAME"));
        Conn->ReadBuf.clear();
        Conn->Discarding = true;
      }
    }
  }

  /// Health probes must not depend on worker availability — a daemon
  /// with every worker wedged in a long evaluation still has to answer
  /// "I'm alive, and here is how long the slowest request has been
  /// running". Small frames that could plausibly be health ops are
  /// parsed on the reactor thread; only a confirmed {"op":"health"} is
  /// handled inline (cheap: a counter scan), everything else takes the
  /// normal queue path.
  bool tryInlineHealth(const std::shared_ptr<Connection> &Conn,
                       const std::string &Frame,
                       std::chrono::steady_clock::time_point Arrival) {
    if (Frame.size() > 2048 || Frame.find("\"health\"") == std::string::npos)
      return false;
    JsonParseResult P = parseJson(Frame);
    if (!P.Ok || !P.Value.isObject())
      return false;
    const JsonValue *Op = P.Value.member("op");
    if (!Op || !Op->isString() || Op->stringValue() != "health")
      return false;
    Conn->writeLine(Core.handleFrame(Frame, Arrival));
    return true;
  }

  void dispatchFrame(const std::shared_ptr<Connection> &Conn,
                     std::string Frame) {
    // Trim a trailing '\r' so CRLF clients work.
    if (!Frame.empty() && Frame.back() == '\r')
      Frame.pop_back();
    if (Frame.empty())
      return;
    auto Arrival = std::chrono::steady_clock::now();
    if (tryInlineHealth(Conn, Frame, Arrival))
      return;
    if (!Queue.tryPush(WorkItem{Conn, std::move(Frame), Arrival}))
      Conn->writeLine(typedErrorLine(
          Core.draining() ? "shutting-down" : "queue-full",
          Core.draining()
              ? "daemon is draining; retry against a fresh instance"
              : "admission queue is full (IGEN_SERVE_QUEUE); retry "
                "later"));
  }

  int ListenFd;
  ServerCore &Core;
  AdmissionQueue &Queue;
  long long DrainMs;
  std::chrono::steady_clock::time_point DrainDeadline{};
  std::unordered_map<int, std::shared_ptr<Connection>> Conns;
};

} // namespace

long long igen::server::drainMsFromSpec(const char *Spec,
                                        std::string *Warning) {
  constexpr long long Def = 5000;
  if (!Spec || !*Spec)
    return Def;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(Spec, &End, 10);
  if (errno != 0 || !End || *End != '\0' || V <= 0) {
    if (Warning)
      *Warning = std::string("ignoring IGEN_SERVE_DRAIN_MS '") + Spec +
                 "' (expected a positive integer millisecond count); "
                 "using the default " +
                 std::to_string(Def);
    return Def;
  }
  return V;
}

size_t igen::server::serveQueueCapacity() {
  static const size_t V = [] {
    size_t Def = 128;
    if (const char *E = std::getenv("IGEN_SERVE_QUEUE")) {
      char *End = nullptr;
      long N = std::strtol(E, &End, 10);
      if (End && *End == '\0' && N > 0)
        return (size_t)N;
    }
    return Def;
  }();
  return V;
}

int igen::server::runServer(const ServeConfig &Config) {
  if (Config.SocketPath.empty() ||
      Config.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "igen: serve: invalid socket path\n");
    return 1;
  }

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "igen: serve: socket(): %s\n",
                 std::strerror(errno));
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Config.SocketPath.c_str()); // stale socket from a crash
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    std::fprintf(stderr, "igen: serve: bind/listen %s: %s\n",
                 Config.SocketPath.c_str(), std::strerror(errno));
    ::close(ListenFd);
    return 1;
  }

  ServerCore Core(Config.CacheCapacity);
  AdmissionQueue Queue(serveQueueCapacity());

  std::string DrainWarn;
  long long DrainMs =
      drainMsFromSpec(std::getenv("IGEN_SERVE_DRAIN_MS"), &DrainWarn);
  if (!DrainWarn.empty())
    std::fprintf(stderr, "igen: serve: warning: %s\n", DrainWarn.c_str());

  // A client that disappears mid-response raises SIGPIPE on the next
  // send; MSG_NOSIGNAL covers our writes, this covers everything else
  // (and future code paths). SIGTERM/SIGINT start a graceful drain
  // instead of killing the process with responses half-written.
  ::signal(SIGPIPE, SIG_IGN);
  DrainRequested = 0;
  struct sigaction Sa{};
  Sa.sa_handler = onDrainSignal;
  ::sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);

  if (Config.Announce) {
    std::fprintf(stderr, "igen: serving on %s\n",
                 Config.SocketPath.c_str());
    std::fflush(stderr);
  }

  std::thread Acceptor(
      [&] { Reactor(ListenFd, Core, Queue, DrainMs).run(); });

  // Request handling on the process-wide pool: one parallelFor whose
  // body is a worker loop, alive for the whole daemon lifetime. The
  // calling thread participates too, so --serve works even on a
  // single-core pool.
  runtime::ThreadPool &Pool = runtime::ThreadPool::instance();
  unsigned Workers = Config.Workers ? Config.Workers
                                    : Pool.maxParticipants();
  if (Workers == 0)
    Workers = 1;
  Pool.parallelFor(Workers, Workers, [&](size_t) {
    WorkItem Item;
    while (Queue.pop(Item)) {
      std::string Resp = Core.handleFrame(Item.Frame, Item.Arrival);
      Item.Conn->writeLine(Resp);
      Item.Conn.reset(); // response is on the wire; release the fd ref
      Queue.done();      // only now may a drain observe "idle"
      if (Core.shutdownRequested())
        Queue.close(); // wake idle siblings; drains remaining items
    }
  });

  Queue.close();
  Acceptor.join();
  ::close(ListenFd);
  ::unlink(Config.SocketPath.c_str());
  return 0;
}
