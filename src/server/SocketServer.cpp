//===- SocketServer.cpp - Unix-socket transport for igen --serve -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/SocketServer.h"

#include "runtime/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace igen;
using namespace igen::server;

namespace {

/// One accepted client. Workers may outlive the reactor's interest in
/// the fd (a frame can still be in flight when the peer disconnects),
/// so connections are shared_ptr-owned by both sides and the fd is
/// closed exactly once, when the last owner drops it.
struct Connection {
  int Fd = -1;
  std::mutex WriteMu;
  std::atomic<bool> Open{true};
  std::string ReadBuf;
  /// Oversized-frame recovery: drop bytes until the next newline, then
  /// resume normal framing on the same connection.
  bool Discarding = false;

  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Serializes whole lines onto the socket; concurrent workers for the
  /// same connection cannot interleave partial responses.
  void writeLine(const std::string &Line) {
    std::lock_guard<std::mutex> G(WriteMu);
    if (!Open.load(std::memory_order_relaxed))
      return;
    std::string Out = Line;
    Out.push_back('\n');
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Open.store(false, std::memory_order_relaxed);
        return;
      }
      Off += (size_t)N;
    }
  }
};

struct WorkItem {
  std::shared_ptr<Connection> Conn;
  std::string Frame;
};

/// Bounded MPMC admission queue. push() never blocks (the reactor must
/// stay responsive); a full queue is the caller's signal to shed load.
class AdmissionQueue {
public:
  explicit AdmissionQueue(size_t Cap) : Cap(Cap) {}

  bool tryPush(WorkItem Item) {
    {
      std::lock_guard<std::mutex> G(Mu);
      if (Closed || Items.size() >= Cap)
        return false;
      Items.push_back(std::move(Item));
    }
    Ready.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained.
  bool pop(WorkItem &Out) {
    std::unique_lock<std::mutex> G(Mu);
    Ready.wait(G, [&] { return Closed || !Items.empty(); });
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> G(Mu);
      Closed = true;
    }
    Ready.notify_all();
  }

private:
  const size_t Cap;
  std::mutex Mu;
  std::condition_variable Ready;
  std::deque<WorkItem> Items;
  bool Closed = false;
};

std::string typedErrorLine(const char *Code, const char *Msg) {
  std::string Out = "{\"ok\": false, \"error\": {\"code\": \"";
  Out += Code;
  Out += "\", \"message\": \"";
  Out += Msg;
  Out += "\"}}";
  return Out;
}

/// Reactor: accepts clients and slices their byte streams into frames.
class Reactor {
public:
  Reactor(int ListenFd, ServerCore &Core, AdmissionQueue &Queue)
      : ListenFd(ListenFd), Core(Core), Queue(Queue) {}

  void run() {
    while (!Core.shutdownRequested()) {
      std::vector<pollfd> Fds;
      Fds.push_back({ListenFd, POLLIN, 0});
      std::vector<std::shared_ptr<Connection>> Order;
      Order.reserve(Conns.size());
      for (auto &KV : Conns) {
        Order.push_back(KV.second);
        Fds.push_back({KV.first, POLLIN, 0});
      }
      // Short timeout: shutdown is signaled by a worker thread, so the
      // reactor has to wake up on its own to observe it.
      int N = ::poll(Fds.data(), Fds.size(), 50);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (Fds[0].revents & POLLIN)
        acceptOne();
      for (size_t I = 1; I < Fds.size(); ++I)
        if (Fds[I].revents & (POLLIN | POLLHUP | POLLERR))
          serviceConnection(Order[I - 1]);
      // Drop connections the peer or a failed write closed.
      for (auto It = Conns.begin(); It != Conns.end();)
        if (!It->second->Open.load(std::memory_order_relaxed))
          It = Conns.erase(It);
        else
          ++It;
    }
  }

private:
  void acceptOne() {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return;
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conns[Fd] = std::move(Conn);
  }

  void serviceConnection(const std::shared_ptr<Connection> &Conn) {
    char Buf[64 * 1024];
    ssize_t N = ::recv(Conn->Fd, Buf, sizeof(Buf), 0);
    if (N == 0 || (N < 0 && errno != EINTR && errno != EAGAIN)) {
      Conn->Open.store(false, std::memory_order_relaxed);
      return;
    }
    if (N < 0)
      return;
    size_t Start = 0;
    for (ssize_t I = 0; I < N; ++I) {
      if (Buf[I] != '\n')
        continue;
      if (Conn->Discarding) {
        Conn->Discarding = false;
      } else {
        Conn->ReadBuf.append(Buf + Start, (size_t)(I - Start));
        dispatchFrame(Conn, std::move(Conn->ReadBuf));
        Conn->ReadBuf.clear();
      }
      Start = (size_t)I + 1;
    }
    if (!Conn->Discarding) {
      Conn->ReadBuf.append(Buf + Start, (size_t)(N - Start));
      if (Conn->ReadBuf.size() > maxFrameBytes()) {
        // The frame can only grow; answer now and resynchronize at the
        // next newline so the connection keeps serving.
        Conn->writeLine(typedErrorLine(
            "frame-too-large",
            "request frame exceeds IGEN_SERVE_MAX_FRAME"));
        Conn->ReadBuf.clear();
        Conn->Discarding = true;
      }
    }
  }

  void dispatchFrame(const std::shared_ptr<Connection> &Conn,
                     std::string Frame) {
    // Trim a trailing '\r' so CRLF clients work.
    if (!Frame.empty() && Frame.back() == '\r')
      Frame.pop_back();
    if (Frame.empty())
      return;
    if (!Queue.tryPush(WorkItem{Conn, std::move(Frame)}))
      Conn->writeLine(typedErrorLine(
          "queue-full",
          "admission queue is full (IGEN_SERVE_QUEUE); retry later"));
  }

  int ListenFd;
  ServerCore &Core;
  AdmissionQueue &Queue;
  std::unordered_map<int, std::shared_ptr<Connection>> Conns;
};

} // namespace

size_t igen::server::serveQueueCapacity() {
  static const size_t V = [] {
    size_t Def = 128;
    if (const char *E = std::getenv("IGEN_SERVE_QUEUE")) {
      char *End = nullptr;
      long N = std::strtol(E, &End, 10);
      if (End && *End == '\0' && N > 0)
        return (size_t)N;
    }
    return Def;
  }();
  return V;
}

int igen::server::runServer(const ServeConfig &Config) {
  if (Config.SocketPath.empty() ||
      Config.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "igen: serve: invalid socket path\n");
    return 1;
  }

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "igen: serve: socket(): %s\n",
                 std::strerror(errno));
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ::unlink(Config.SocketPath.c_str()); // stale socket from a crash
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    std::fprintf(stderr, "igen: serve: bind/listen %s: %s\n",
                 Config.SocketPath.c_str(), std::strerror(errno));
    ::close(ListenFd);
    return 1;
  }

  ServerCore Core(Config.CacheCapacity);
  AdmissionQueue Queue(serveQueueCapacity());

  if (Config.Announce) {
    std::fprintf(stderr, "igen: serving on %s\n",
                 Config.SocketPath.c_str());
    std::fflush(stderr);
  }

  std::thread Acceptor([&] { Reactor(ListenFd, Core, Queue).run(); });

  // Request handling on the process-wide pool: one parallelFor whose
  // body is a worker loop, alive for the whole daemon lifetime. The
  // calling thread participates too, so --serve works even on a
  // single-core pool.
  runtime::ThreadPool &Pool = runtime::ThreadPool::instance();
  unsigned Workers = Config.Workers ? Config.Workers
                                    : Pool.maxParticipants();
  if (Workers == 0)
    Workers = 1;
  Pool.parallelFor(Workers, Workers, [&](size_t) {
    WorkItem Item;
    while (Queue.pop(Item)) {
      std::string Resp = Core.handleFrame(Item.Frame);
      Item.Conn->writeLine(Resp);
      if (Core.shutdownRequested())
        Queue.close(); // wake idle siblings; drains remaining items
    }
  });

  Queue.close();
  Acceptor.join();
  ::close(ListenFd);
  ::unlink(Config.SocketPath.c_str());
  return 0;
}
