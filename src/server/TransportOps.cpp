//===- TransportOps.cpp - Injectable socket syscalls for --serve -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/TransportOps.h"

#include "harden/FaultInject.h"

#include <cerrno>

using namespace igen;
using namespace igen::server;

namespace {

ssize_t defaultRecv(int Fd, void *Buf, size_t Len, int Flags) {
  if (harden::faultsArmedFromEnv()) {
    if (harden::faultFires(harden::FaultKind::ReadFail)) {
      errno = EIO;
      return -1;
    }
    if (harden::faultFires(harden::FaultKind::ConnReset)) {
      errno = ECONNRESET;
      return -1;
    }
    if (harden::faultFires(harden::FaultKind::ReadStall)) {
      errno = EAGAIN;
      return -1;
    }
  }
  return ::recv(Fd, Buf, Len, Flags);
}

ssize_t defaultSend(int Fd, const void *Buf, size_t Len, int Flags) {
  if (harden::faultsArmedFromEnv()) {
    if (harden::faultFires(harden::FaultKind::WriteFail)) {
      errno = EPIPE;
      return -1;
    }
    if (harden::faultFires(harden::FaultKind::PartialWrite) && Len > 1)
      Len /= 2; // a real short write: transfer some bytes, report fewer
  }
  return ::send(Fd, Buf, Len, Flags);
}

int defaultAccept(int ListenFd) {
  if (harden::faultsArmedFromEnv() &&
      harden::faultFires(harden::FaultKind::AcceptFail)) {
    errno = EMFILE;
    return -1;
  }
  return ::accept(ListenFd, nullptr, nullptr);
}

} // namespace

TransportOps &igen::server::transportOps() {
  static TransportOps Ops{defaultRecv, defaultSend, defaultAccept};
  return Ops;
}

void igen::server::resetTransportOps() {
  transportOps() = TransportOps{defaultRecv, defaultSend, defaultAccept};
}
