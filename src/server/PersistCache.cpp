//===- PersistCache.cpp - Crash-recoverable compile-cache journal ------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/PersistCache.h"

#include "server/FunctionCache.h"
#include "server/Json.h"
#include "support/Diagnostics.h"
#include "support/JsonWriter.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace igen;
using namespace igen::server;

namespace {

constexpr int kEntrySchema = 1;
constexpr const char *kEntrySuffix = ".igenc";

bool readWholeFile(const std::string &Path, std::string &Out,
                   size_t MaxBytes = 8u << 20) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[16384];
  size_t N;
  bool Ok = true;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0) {
    Out.append(Buf, N);
    if (Out.size() > MaxBytes) { // pathological entry; treat as corrupt
      Ok = false;
      break;
    }
  }
  std::fclose(F);
  return Ok;
}

std::string getString(const JsonObject &O, std::string_view Key) {
  auto It = O.find(Key);
  if (It == O.end() || !It->second.isString())
    return "";
  return It->second.stringValue();
}

bool getBool(const JsonObject &O, std::string_view Key) {
  auto It = O.find(Key);
  return It != O.end() && It->second.isBool() && It->second.boolValue();
}

/// Reconstructs the semantic compile options from a journal entry's
/// "options" object. Mirrors serializeOptions below and the serve
/// protocol's parseCompileOptions: any field this forgets would make
/// the recomputed hash diverge and the entry read as stale.
bool optionsFromJson(const JsonValue &V, TransformOptions &Opts) {
  if (!V.isObject())
    return false;
  const JsonObject &O = V.objectValue();
  if (getString(O, "precision") == "dd")
    Opts.Prec = TransformOptions::Precision::DoubleDouble;
  Opts.ScalarLibrary = getString(O, "target") == "ss";
  if (getString(O, "branch") == "join")
    Opts.Branches = TransformOptions::BranchPolicy::Join;
  auto It = O.find("opt_level");
  if (It != O.end() && It->second.isNumber())
    Opts.OptLevel = (int)It->second.numberValue();
  Opts.EnableReductions = getBool(O, "reductions");
  Opts.EnableBatchLoops = getBool(O, "batch_loops");
  Opts.Profile = getBool(O, "profile");
  Opts.Tier = getBool(O, "tier");
  Opts.Harden = getBool(O, "harden");
  Opts.ModuleName = getString(O, "module");
  auto Rh = O.find("runtime_header");
  if (Rh != O.end() && Rh->second.isString())
    Opts.RuntimeHeader = Rh->second.stringValue();
  return true;
}

void serializeOptions(JsonWriter &W, const TransformOptions &Opts) {
  W.beginObject();
  W.field("precision",
          std::string_view(Opts.Prec == TransformOptions::Precision::DoubleDouble
                               ? "dd"
                               : "f64"));
  W.field("target", std::string_view(Opts.ScalarLibrary ? "ss" : "sv"));
  W.field("branch",
          std::string_view(Opts.Branches == TransformOptions::BranchPolicy::Join
                               ? "join"
                               : "exception"));
  W.field("opt_level", Opts.OptLevel);
  W.field("reductions", Opts.EnableReductions);
  W.field("batch_loops", Opts.EnableBatchLoops);
  W.field("profile", Opts.Profile);
  W.field("tier", Opts.Tier);
  W.field("harden", Opts.Harden);
  W.field("module", std::string_view(Opts.ModuleName));
  W.field("runtime_header", std::string_view(Opts.RuntimeHeader));
  W.endObject();
}

} // namespace

std::string igen::server::cacheDirFromSpec(const char *Spec,
                                           std::string *Warning) {
  if (!Spec || !*Spec)
    return "";
  std::string Dir(Spec);
  while (Dir.size() > 1 && Dir.back() == '/')
    Dir.pop_back();
  if (::mkdir(Dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (Warning)
      *Warning = "cannot create IGEN_SERVE_CACHE_DIR '" + Dir + "' (" +
                 std::strerror(errno) + "); persistence disabled";
    return "";
  }
  struct stat St;
  if (::stat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode)) {
    if (Warning)
      *Warning = "IGEN_SERVE_CACHE_DIR '" + Dir +
                 "' is not a directory; persistence disabled";
    return "";
  }
  if (::access(Dir.c_str(), W_OK | X_OK) != 0) {
    if (Warning)
      *Warning = "IGEN_SERVE_CACHE_DIR '" + Dir +
                 "' is not writable; persistence disabled";
    return "";
  }
  return Dir;
}

std::string PersistentCacheDir::pathFor(uint64_t Hash) const {
  return Dir + "/" + formatHandle(Hash) + kEntrySuffix;
}

void PersistentCacheDir::persist(uint64_t Hash, std::string_view Source,
                                 const TransformOptions &Opts) {
  if (Dir.empty())
    return;

  JsonWriter W;
  W.beginObject();
  W.field("schema", kEntrySchema);
  W.field("hash", std::string_view(formatHandle(Hash)));
  W.field("source", Source);
  W.key("options");
  serializeOptions(W, Opts);
  W.endObject();
  std::string Body = W.take();

  // Write-then-rename in the same directory: the entry becomes visible
  // atomically, so a crash mid-write can only lose this entry, never
  // corrupt the journal.
  std::string Tmp =
      Dir + "/.tmp-" + formatHandle(Hash) + "-" + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  bool Ok = Fd >= 0;
  if (Ok) {
    size_t Off = 0;
    while (Off < Body.size()) {
      ssize_t N = ::write(Fd, Body.data() + Off, Body.size() - Off);
      if (N <= 0) {
        Ok = false;
        break;
      }
      Off += (size_t)N;
    }
    if (Ok && ::fsync(Fd) != 0)
      Ok = false;
    ::close(Fd);
  }
  if (Ok && ::rename(Tmp.c_str(), pathFor(Hash).c_str()) != 0)
    Ok = false;
  if (!Ok) {
    ::unlink(Tmp.c_str());
    if (!WarnedPersist) {
      WarnedPersist = true;
      std::fprintf(stderr,
                   "igen: serve: warning: cannot journal compile cache "
                   "entry under '%s' (%s); continuing without "
                   "persistence for failed entries\n",
                   Dir.c_str(), std::strerror(errno));
    }
  }
}

void PersistentCacheDir::remove(uint64_t Hash) {
  if (Dir.empty())
    return;
  ::unlink(pathFor(Hash).c_str());
}

PersistentCacheDir::ReplayStats
PersistentCacheDir::replay(FunctionCache &Cache, size_t MaxEntries) {
  ReplayStats Stats;
  if (Dir.empty())
    return Stats;

  struct File {
    std::string Name;
    time_t Mtime;
  };
  std::vector<File> Files;

  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Stats;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() != 16 + std::strlen(kEntrySuffix) ||
        Name.compare(16, std::string::npos, kEntrySuffix) != 0)
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Files.push_back({std::move(Name), St.st_mtime});
  }
  ::closedir(D);

  // Oldest first so the newest entries land most-recent in the LRU; when
  // the journal outgrew the cache cap (e.g. the cap shrank between
  // runs), only the newest MaxEntries are replayed.
  std::sort(Files.begin(), Files.end(),
            [](const File &A, const File &B) { return A.Mtime < B.Mtime; });
  if (Files.size() > MaxEntries)
    Files.erase(Files.begin(), Files.end() - (ptrdiff_t)MaxEntries);

  auto Skip = [&](const std::string &Name, const char *Why) {
    ++Stats.Skipped;
    if (!WarnedReplay) {
      WarnedReplay = true;
      std::fprintf(stderr,
                   "igen: serve: warning: skipping cache entry '%s/%s' "
                   "(%s); further skips are silent\n",
                   Dir.c_str(), Name.c_str(), Why);
    }
  };

  for (const File &F : Files) {
    std::string Body;
    if (!readWholeFile(Dir + "/" + F.Name, Body)) {
      Skip(F.Name, "unreadable");
      continue;
    }
    JsonParseResult P = parseJson(Body);
    if (!P.Ok || !P.Value.isObject()) {
      Skip(F.Name, "corrupt JSON");
      continue;
    }
    const JsonValue *Schema = P.Value.member("schema");
    if (!Schema || !Schema->isNumber() ||
        (int)Schema->numberValue() != kEntrySchema) {
      Skip(F.Name, "unknown schema");
      continue;
    }
    const JsonValue *Src = P.Value.member("source");
    const JsonValue *OptsV = P.Value.member("options");
    TransformOptions Opts;
    if (!Src || !Src->isString() || !OptsV ||
        !optionsFromJson(*OptsV, Opts)) {
      Skip(F.Name, "missing source/options");
      continue;
    }
    Opts.SourceName = "<serve>";

    // Staleness gate: the filename must still be the content hash of
    // what we are about to compile. A renamed file, a hash-function
    // change, or a truncated source all fail here.
    uint64_t Expected;
    if (!parseHandle(std::string_view(F.Name).substr(0, 16), Expected) ||
        hashCompileRequest(Src->stringValue(), Opts) != Expected) {
      Skip(F.Name, "stale (content hash mismatch)");
      continue;
    }

    DiagnosticsEngine Diags;
    auto Prog = compileToProgram(Src->stringValue(), Opts, Diags);
    if (!Prog) {
      Skip(F.Name, "no longer compiles");
      continue;
    }
    Cache.insert(Expected, std::shared_ptr<const InMemoryProgram>(
                               std::move(Prog)));
    ++Stats.Replayed;
  }
  return Stats;
}
