//===- SocketServer.h - Unix-socket transport for igen --serve --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport shell around ServerCore: a Unix-domain stream socket
/// speaking one JSON object per line. An acceptor thread multiplexes
/// all connections with poll() and slices the byte stream into frames;
/// complete frames go into a bounded admission queue (IGEN_SERVE_QUEUE,
/// default 128) and are handled by the process-wide runtime ThreadPool
/// via one long-lived parallelFor whose body is a queue-draining worker
/// loop. (The pool admits one parallelFor at a time, which is exactly
/// what a daemon wants: serving owns the pool for its lifetime, and the
/// scalar evaluator never nests another parallelFor inside it.)
///
/// When the queue is full the acceptor answers the frame immediately
/// with a typed "queue-full" error instead of blocking the reactor;
/// back-pressure is thus visible to clients rather than silent.
///
/// Resilience wiring added around that skeleton:
///  - every socket syscall goes through the injectable TransportOps
///    table, so IGEN_FAULT=accept|read|write|conreset|partial|stall can
///    simulate transport failures deterministically;
///  - SIGTERM/SIGINT trigger a graceful drain: ServerCore flips to
///    draining (mutating ops answer "shutting-down"), in-flight work
///    finishes within IGEN_SERVE_DRAIN_MS (default 5000), then the
///    socket is unlinked and runServer returns 0. SIGPIPE is ignored
///    (writes already use MSG_NOSIGNAL; a racing client close must
///    never kill the process);
///  - {"op":"health"} frames are answered on the reactor thread itself,
///    so liveness probes work even when every worker is wedged in a
///    long evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_SOCKETSERVER_H
#define IGEN_SERVER_SOCKETSERVER_H

#include "server/ServerCore.h"

#include <string>

namespace igen {
namespace server {

/// Admission-queue capacity (IGEN_SERVE_QUEUE override, default 128).
size_t serveQueueCapacity();

/// Parses an IGEN_SERVE_DRAIN_MS spelling: how long a SIGTERM/SIGINT
/// drain waits for in-flight requests before forcing shutdown.
/// Null/empty selects the 5000 ms default; unparsable or non-positive
/// values set *Warning and return the default.
long long drainMsFromSpec(const char *Spec, std::string *Warning);

struct ServeConfig {
  std::string SocketPath;
  long CacheCapacity = 0; ///< 0 = IGEN_SERVE_CACHE / default
  /// Worker threads handling requests; 0 = the runtime pool's full
  /// participant count.
  unsigned Workers = 0;
  /// Print a "listening on <path>" line to stderr once ready (the CI
  /// smoke job and igen_client.py --wait key on it).
  bool Announce = true;
};

/// Binds \p Config.SocketPath, serves until a shutdown request, a
/// completed SIGTERM/SIGINT drain, or a serve-loop failure, then
/// unlinks the socket. Returns 0 on a clean shutdown- or
/// drain-initiated exit, 1 on a transport-level failure (bind, listen,
/// ...) with a message on stderr. Blocks the calling thread; installs
/// SIGTERM/SIGINT drain handlers and ignores SIGPIPE for the process.
int runServer(const ServeConfig &Config);

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_SOCKETSERVER_H
