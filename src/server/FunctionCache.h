//===- FunctionCache.h - Content-hashed compiled-program cache --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's transaction store: each successful compile request
/// lands here as an immutable InMemoryProgram keyed by a content hash
/// of (source text, normalized compile options). Hits return the
/// cached handle without re-running any pipeline stage; a failed
/// compile never inserts anything, which is the whole rollback story —
/// the pipeline builds into a fresh ASTContext, so aborting a
/// transaction is dropping the unique_ptr.
///
/// Residency is bounded by an LRU cap (IGEN_SERVE_CACHE, default 64
/// programs). Entries are handed out as shared_ptr so an eval running
/// on one thread keeps its program alive even if another thread's
/// compile evicts it concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_FUNCTIONCACHE_H
#define IGEN_SERVER_FUNCTIONCACHE_H

#include "transform/Pipeline.h"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace igen {
namespace server {

/// FNV-1a over the source and every semantically meaningful transform
/// option. Two requests collide only if they would compile to the very
/// same program.
uint64_t hashCompileRequest(std::string_view Source,
                            const TransformOptions &Opts);

/// Renders the hash the way the protocol spells handles: 16 lowercase
/// hex digits.
std::string formatHandle(uint64_t Hash);
/// Inverse of formatHandle; false if \p Text is not a 16-digit handle.
bool parseHandle(std::string_view Text, uint64_t &Hash);

struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Insertions = 0;
  size_t Resident = 0;
  size_t Capacity = 0;
};

class FunctionCache {
public:
  /// Observes every entry leaving residency — LRU overflow, explicit
  /// evict, and clear all fire it. The persistent cache layer uses this
  /// to keep on-disk entries in lockstep with the in-memory LRU. Called
  /// with the cache mutex held: the listener must not call back into
  /// the cache.
  using EvictionListener = std::function<void(uint64_t Hash)>;

  /// \p Capacity <= 0 selects the IGEN_SERVE_CACHE environment value,
  /// defaulting to 64.
  explicit FunctionCache(long Capacity = 0);

  /// Installs \p L (replacing any previous listener). Not thread-safe
  /// against concurrent cache traffic; set it during server setup.
  void setEvictionListener(EvictionListener L) { OnEvict = std::move(L); }

  /// Returns the program for \p Hash and refreshes its LRU position, or
  /// nullptr (counted as a miss only when \p CountMiss).
  std::shared_ptr<const InMemoryProgram> lookup(uint64_t Hash,
                                                bool CountMiss = true);

  /// Inserts a freshly compiled program, evicting LRU entries past the
  /// cap. Re-inserting an existing hash refreshes the entry.
  void insert(uint64_t Hash, std::shared_ptr<const InMemoryProgram> Prog);

  /// Drops one entry; false if it was not resident.
  bool evict(uint64_t Hash);
  /// Drops everything; returns how many entries were evicted.
  size_t clear();

  CacheStats stats() const;
  std::vector<std::string> residentHandles() const;

private:
  mutable std::mutex M;
  size_t Cap;
  // LRU list front = most recent. Map values point into the list.
  struct Entry {
    uint64_t Hash;
    std::shared_ptr<const InMemoryProgram> Prog;
  };
  std::list<Entry> Lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
  CacheStats S;
  EvictionListener OnEvict;

  void evictOverflowLocked();
};

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_FUNCTIONCACHE_H
