//===- RequestLog.cpp - Structured serve-mode request log --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/RequestLog.h"

#include "support/JsonWriter.h"

#include <chrono>

using namespace igen;
using namespace igen::server;

namespace {

uint64_t monotonicUs() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JsonWriter pretty-prints; log lines must be single lines. Newlines
/// inside string values are escaped by the writer, so this is lossless.
std::string oneLine(std::string Pretty) {
  std::string Out;
  Out.reserve(Pretty.size());
  for (size_t I = 0; I < Pretty.size(); ++I) {
    if (Pretty[I] == '\n') {
      while (I + 1 < Pretty.size() && Pretty[I + 1] == ' ')
        ++I;
      continue;
    }
    Out.push_back(Pretty[I]);
  }
  return Out;
}

} // namespace

RequestLog::RequestLog(const std::string &Path) {
  if (Path.empty())
    return;
  if (Path == "-") {
    Out = stderr;
    return;
  }
  Out = std::fopen(Path.c_str(), "a");
  if (!Out) {
    std::fprintf(stderr,
                 "igen: serve: warning: cannot open IGEN_SERVE_LOG "
                 "'%s'; request logging disabled\n",
                 Path.c_str());
    return;
  }
  OwnsFile = true;
}

RequestLog::~RequestLog() {
  if (Out && OwnsFile)
    std::fclose(Out);
}

void RequestLog::line(const std::string &Json) {
  std::lock_guard<std::mutex> G(Mu);
  std::fprintf(Out, "%s\n", Json.c_str());
  std::fflush(Out);
}

void RequestLog::request(std::string_view Verb, std::string_view Hash,
                         uint64_t LatencyUs, std::string_view Outcome) {
  if (!Out)
    return;
  JsonWriter W;
  W.beginObject();
  W.field("ts_us", monotonicUs());
  W.field("kind", std::string_view("request"));
  W.field("verb", Verb);
  if (!Hash.empty())
    W.field("hash", Hash);
  W.field("latency_us", LatencyUs);
  W.field("outcome", Outcome);
  W.endObject();
  line(oneLine(W.take()));
}

void RequestLog::event(std::string_view Event, std::string_view Detail) {
  if (!Out)
    return;
  JsonWriter W;
  W.beginObject();
  W.field("ts_us", monotonicUs());
  W.field("kind", std::string_view("event"));
  W.field("event", Event);
  W.field("detail", Detail);
  W.endObject();
  line(oneLine(W.take()));
}
