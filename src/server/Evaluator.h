//===- Evaluator.h - AST-walking interval evaluator -------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve-mode execution tier: interprets a type-checked IGen AST
/// directly against src/interval/, with no C compiler round-trip. The
/// interpreter mirrors the *naive* translation — what the transform
/// emits at `-O0 --target=ss` — operation for operation: every float
/// expression is an igen::Interval, every float comparison a TBool,
/// constants get the same enclosure rules (Section IV-B), tolerance
/// parameters the same upward-widened shadow, reductions the same
/// SumAccumulatorF64 feeds, and the join branch policy the same
/// save/run/restore/hull sequence. Because both paths compose the same
/// pure interval operations in the same order under FE_UPWARD, eval
/// results are bit-identical to AOT-compiled `-O0 --target=ss` output
/// (ExecServeCompareTest pins this).
///
/// The -O1 rewrites (sign-specialized mul/div, FMA fusion, CSE/hoist,
/// _fast poly kernels) are value-changing-but-still-sound, so the
/// interpreter deliberately does not replicate them; a request that
/// asks for opt_level > 0 is still answered with the -O0 semantics and
/// says so in the response.
///
/// Anything outside the interpretable subset (double-double precision,
/// SIMD vectors, external calls, allocation) produces a *typed* error —
/// never an abort — so a hostile or unlucky request cannot take the
/// daemon down. All state is per-call; the evaluator is re-entrant and
/// safe to run concurrently on many threads against one shared AST.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_SERVER_EVALUATOR_H
#define IGEN_SERVER_EVALUATOR_H

#include "interval/Interval.h"
#include "transform/Pipeline.h"

#include <chrono>
#include <string>
#include <vector>

namespace igen {

class FunctionDecl;

namespace server {

/// One evaluation argument. Scalars carry an interval (points are
/// degenerate intervals); integer parameters take \c IntValue; array and
/// pointer parameters take \c Elements (mutated in place, returned to
/// the caller as an output).
struct EvalArg {
  enum class Kind { Scalar, Int, Array, Tolerance };
  Kind K = Kind::Scalar;
  Interval Scalar = Interval::fromPoint(0.0);
  long long IntValue = 0;
  /// Tolerance parameters keep their scalar double in the signature;
  /// the evaluator applies the declared +-tol widening itself.
  double Point = 0.0;
  std::vector<Interval> Elements;
};

/// Typed evaluation failure. Codes are stable protocol vocabulary:
///   unsupported        construct outside the interpretable subset
///   unknown-branch     a branch condition evaluated to TBool::Unknown
///   bad-argument       argument count/shape does not match the signature
///   no-such-function   the cached program has no such defined function
///   step-limit         runaway loop tripped the per-request step budget
///   recursion-limit    call depth exceeded the per-request bound
///   int-div-zero       integer division or remainder by zero
///   deadline-exceeded  the request's wall-clock deadline passed; checked
///                      cooperatively at loop back-edges and call entries,
///                      so the worker survives and keeps serving
struct EvalError {
  std::string Code;
  std::string Message;
};

struct EvalResult {
  bool Ok = false;
  EvalError Error; ///< set when !Ok

  bool HasReturn = false;
  bool ReturnIsInt = false;
  Interval Return = Interval::fromPoint(0.0);
  long long ReturnInt = 0;
  /// Post-call contents of every Array argument, in argument order.
  std::vector<std::vector<Interval>> ArrayOutputs;
  /// Interval operations executed (profile counter food).
  unsigned long long OpsExecuted = 0;
};

/// Per-request knobs, mirroring the IGEN_* environment the AOT runtime
/// reads globally — isolated here so concurrent tenants cannot leak
/// options into each other.
struct EvalOptions {
  /// Branch policy for TBool conditions: false = exception semantics
  /// (Unknown is a typed error), true = join where safe.
  bool JoinBranches = false;
  /// Harden prologue: poison (return whole line) instead of evaluating
  /// when the FP environment was found dirty on entry. The caller does
  /// the actual sentinel check; this just tells the evaluator the
  /// verdict.
  bool PoisonedEntry = false;
  /// Reduction transformation (loops marked `#pragma igen reduce`).
  bool EnableReductions = false;
  /// Abort interpretation after this many executed operations.
  unsigned long long StepLimit = 50u * 1000u * 1000u;
  /// Maximum user-function call depth.
  unsigned MaxCallDepth = 128;
  /// Wall-clock deadline (monotonic). When HasDeadline, the interpreter
  /// polls the clock at call entries and (amortized, every few hundred
  /// ops) at loop back-edges, yielding a typed "deadline-exceeded"
  /// error. Disabled requests pay one integer compare per op, nothing
  /// more — measured in bench/serve_bench's deadline rows.
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline{};
};

/// Evaluates \p Function from \p Prog on \p Args. The caller must hold a
/// sound upward-rounding scope (RoundUpwardScope) for the duration of
/// the call; the serve layer pairs that with its fenv sentinel.
EvalResult evalFunction(const InMemoryProgram &Prog,
                        const std::string &Function,
                        const std::vector<EvalArg> &Args,
                        const EvalOptions &Opts);

/// Signature probe used for argument marshalling and error messages:
/// describes parameter kinds of \p Function ("interval", "int", "array",
/// "tolerance:<spelling>"), or empty + false if not defined.
bool describeFunction(const InMemoryProgram &Prog, const std::string &Function,
                      std::vector<std::string> &ParamKinds,
                      std::string &ReturnKind);

} // namespace server
} // namespace igen

#endif // IGEN_SERVER_EVALUATOR_H
