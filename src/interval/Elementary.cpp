//===- Elementary.cpp - Interval elementary functions ---------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Elementary.h"

#include "interval/Rounding.h"
#include "interval/Ulp.h"

#include <algorithm>
#include <cmath>

using namespace igen;

namespace {

/// Calls F(X) in round-to-nearest and widens the result by LibmUlpBound
/// ulps in direction \p Dir (+1 up, -1 down), yielding a directed bound.
template <typename Fn> double libmDirected(Fn F, double X, int Dir) {
  double V;
  {
    RoundNearestScope RN;
    V = F(X);
  }
  return addUlps(V, Dir > 0 ? LibmUlpBound : -LibmUlpBound);
}

constexpr double SectionArgLimit = 0x1p45;

/// High and low words of 2/pi, accurate as a pair to ~2^-110. Computed
/// once from a quad-precision reconstruction of pi (three-double pi).
struct TwoOverPiConst {
  double H;
  double L;
  TwoOverPiConst() {
    __float128 Pi = (__float128)3.141592653589793116e+00 +
                    1.224646799147353207e-16 +
                    (-2.994769809718339666e-33);
    __float128 T = (__float128)2.0 / Pi;
    H = (double)T;
    L = (double)(T - (__float128)H);
  }
};

const TwoOverPiConst &twoOverPi() {
  static const TwoOverPiConst C;
  return C;
}

} // namespace

void igen::detail::sectionRange(double X, long long &KMin, long long &KMax) {
  // t = X * 2/pi in double-double, evaluated in round-to-nearest; absolute
  // error <= ~|t| * 2^-104 + a few ulps of the tail term, far below the
  // 2^-40 ambiguity threshold for |X| <= 2^45.
  RoundNearestScope RN;
  const TwoOverPiConst &C = twoOverPi();
  X = opaque(X); // pin below the mode switch
  double P = X * C.H;
  double E = __builtin_fma(X, C.H, -P); // exact residue
  double E2 = E + X * C.L;
  double S = P + E2;
  double K = std::floor(S);
  double D = (P - K) + E2; // fractional part, nearly exact
  const double Eps = 0x1p-40;
  KMin = static_cast<long long>(K) - (D < Eps ? 1 : 0);
  KMax = static_cast<long long>(K) + (D > 1.0 - Eps ? 1 : 0);
}

Interval igen::iExp(const Interval &X) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  double HiE = libmDirected([](double V) { return std::exp(V); }, X.Hi, +1);
  double LoE =
      libmDirected([](double V) { return std::exp(V); }, -X.NegLo, -1);
  if (LoE < 0.0)
    LoE = 0.0; // exp > 0; the widening may have crossed below zero.
  return Interval::fromEndpoints(LoE, HiE);
}

Interval igen::iLog(const Interval &X) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  if (X.Hi <= 0.0)
    return Interval::nan(); // log of a nonpositive interval: invalid.
  double HiL = libmDirected([](double V) { return std::log(V); }, X.Hi, +1);
  double Lo = -X.NegLo;
  if (Lo < 0.0)
    return Interval(std::numeric_limits<double>::quiet_NaN(), HiL);
  if (Lo == 0.0)
    return Interval(std::numeric_limits<double>::infinity(), HiL);
  double LoL = libmDirected([](double V) { return std::log(V); }, Lo, -1);
  return Interval::fromEndpoints(LoL, HiL);
}

namespace {

Interval unitClamp(double Lo, double Hi) {
  return Interval::fromEndpoints(std::max(Lo, -1.0), std::min(Hi, 1.0));
}

/// Shared sin/cos evaluation. \p PeakMod4 is the residue (mod 4) of the
/// section boundary index m at which the function attains +1; the trough
/// is at PeakMod4 + 2 (mod 4). sin peaks at m == 1 (x == pi/2 + 2pi n),
/// cos peaks at m == 0 (x == 2pi n).
template <typename Fn>
Interval sinCosImpl(const Interval &X, Fn F, long long PeakMod4) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  double Lo = -X.NegLo, Hi = X.Hi;
  if (std::isinf(Lo) || std::isinf(Hi) ||
      std::fabs(Lo) > SectionArgLimit || std::fabs(Hi) > SectionArgLimit)
    return Interval::fromEndpoints(-1.0, 1.0);
  long long KLoMin, KLoMax, KHiMin, KHiMax;
  igen::detail::sectionRange(Lo, KLoMin, KLoMax);
  igen::detail::sectionRange(Hi, KHiMin, KHiMax);
  // Boundaries possibly interior to [Lo, Hi]: m in (KLoMin, KHiMax].
  if (KHiMax - KLoMin >= 5) // conservatively spans a peak and a trough
    return Interval::fromEndpoints(-1.0, 1.0);
  double LoF = libmDirected(F, Lo, -1);
  double HiF = libmDirected(F, Hi, +1);
  double RLo = std::min(LoF, libmDirected(F, Hi, -1));
  double RHi = std::max(HiF, libmDirected(F, Lo, +1));
  long long TroughMod4 = (PeakMod4 + 2) & 3;
  for (long long M = KLoMin + 1; M <= KHiMax; ++M) {
    long long Mod = ((M % 4) + 4) & 3;
    if (Mod == PeakMod4)
      RHi = 1.0;
    else if (Mod == TroughMod4)
      RLo = -1.0;
  }
  return unitClamp(RLo, RHi);
}

} // namespace

Interval igen::iSin(const Interval &X) {
  return sinCosImpl(X, [](double V) { return std::sin(V); }, /*PeakMod4=*/1);
}

Interval igen::iCos(const Interval &X) {
  return sinCosImpl(X, [](double V) { return std::cos(V); }, /*PeakMod4=*/0);
}

Interval igen::iAtan(const Interval &X) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  double HiA =
      libmDirected([](double V) { return std::atan(V); }, X.Hi, +1);
  double LoA =
      libmDirected([](double V) { return std::atan(V); }, -X.NegLo, -1);
  // Clamp to the function's range (+-pi/2, which is itself irrational:
  // use the next double beyond pi/2).
  const double HalfPiUp = 1.5707963267948968; // > pi/2
  if (HiA > HalfPiUp)
    HiA = HalfPiUp;
  if (LoA < -HalfPiUp)
    LoA = -HalfPiUp;
  return Interval::fromEndpoints(LoA, HiA);
}

namespace {

/// Shared asin/acos: monotone on [-1, 1]; F must be evaluated at clamped
/// endpoints. Increasing selects asin-like orientation.
template <typename Fn>
Interval arcImpl(const Interval &X, Fn F, bool Increasing, double RangeLo,
                 double RangeHi) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  double Lo = -X.NegLo, Hi = X.Hi;
  if (Hi < -1.0 || Lo > 1.0)
    return Interval::nan(); // entirely outside the domain: invalid
  bool LoOutside = Lo < -1.0, HiOutside = Hi > 1.0;
  double CLo = LoOutside ? -1.0 : Lo;
  double CHi = HiOutside ? 1.0 : Hi;
  double FLo = libmDirected(F, Increasing ? CLo : CHi, -1);
  double FHi = libmDirected(F, Increasing ? CHi : CLo, +1);
  if (FLo < RangeLo)
    FLo = RangeLo;
  if (FHi > RangeHi)
    FHi = RangeHi;
  Interval R = Interval::fromEndpoints(FLo, FHi);
  // An endpoint outside [-1, 1] means the value may be invalid, like
  // sqrt of a partially negative interval (Section IV-A).
  if (LoOutside)
    R.NegLo = std::numeric_limits<double>::quiet_NaN();
  if (HiOutside)
    R.Hi = std::numeric_limits<double>::quiet_NaN();
  return R;
}

} // namespace

Interval igen::iAsin(const Interval &X) {
  const double HalfPiUp = 1.5707963267948968;
  return arcImpl(X, [](double V) { return std::asin(V); },
                 /*Increasing=*/true, -HalfPiUp, HalfPiUp);
}

Interval igen::iAcos(const Interval &X) {
  const double PiUp = 3.1415926535897936; // > pi
  return arcImpl(X, [](double V) { return std::acos(V); },
                 /*Increasing=*/false, 0.0, PiUp);
}

Interval igen::iTan(const Interval &X) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  double Lo = -X.NegLo, Hi = X.Hi;
  if (std::isinf(Lo) || std::isinf(Hi) ||
      std::fabs(Lo) > SectionArgLimit || std::fabs(Hi) > SectionArgLimit)
    return Interval::entire();
  long long KLoMin, KLoMax, KHiMin, KHiMax;
  igen::detail::sectionRange(Lo, KLoMin, KLoMax);
  igen::detail::sectionRange(Hi, KHiMin, KHiMax);
  // tan has a pole at every odd section boundary m*pi/2.
  for (long long M = KLoMin + 1; M <= KHiMax; ++M)
    if (((M % 2) + 2) % 2 == 1)
      return Interval::entire();
  // Within a pole-free range tan is increasing.
  double LoT = libmDirected([](double V) { return std::tan(V); }, Lo, -1);
  double HiT = libmDirected([](double V) { return std::tan(V); }, Hi, +1);
  return Interval::fromEndpoints(LoT, HiT);
}
