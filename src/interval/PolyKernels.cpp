//===- PolyKernels.cpp - Certified polynomial elementary kernels ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/PolyKernels.h"

#include "harden/FenvSentinel.h"
#include "interval/Elementary.h"
#include "interval/Rounding.h"

#include <algorithm>
#include <cmath>

using namespace igen;

namespace {

/// High and low words of 2/pi (same quad-precision reconstruction as
/// Elementary.cpp's sectionRange; accurate as a pair to ~2^-110).
struct TwoOverPiConst {
  double H;
  double L;
  TwoOverPiConst() {
    __float128 Pi = (__float128)3.141592653589793116e+00 +
                    1.224646799147353207e-16 +
                    (-2.994769809718339666e-33);
    __float128 T = (__float128)2.0 / Pi;
    H = (double)T;
    L = (double)(T - (__float128)H);
  }
};

const TwoOverPiConst &twoOverPi() {
  static const TwoOverPiConst C;
  return C;
}

/// Sentinel check after a libm fallback (the external call could have
/// disturbed MXCSR). Under the poison policy the fallback's result is
/// replaced by the whole line -- a sound enclosure of any elementary
/// function value.
inline Interval guardFallback(Interval R, const char *Where) {
  if (__builtin_expect(harden::checkFenvUpward(Where), 0))
    return Interval::entire();
  return R;
}

} // namespace

void poly::detail::sectionRangeUp(double X, long long &KMin, long long &KMax) {
  // The round-to-nearest sectionRange rewritten for the ambient (upward)
  // mode: the FMA residue of the double-double product is exact in any
  // rounding mode, and the remaining directed-rounding errors are below
  // 2^-50 for |X| <= 2^20, far under the 2^-40 ambiguity threshold. The
  // +-1 adjustments absorb a floor(S) that rounding pushed across an
  // integer, exactly as in the nearest-mode original.
  const TwoOverPiConst &C = twoOverPi();
  double P = X * C.H;
  double E = __builtin_fma(X, C.H, -P); // exact residue
  double E2 = E + X * C.L;
  double S = P + E2;
  double K = std::floor(S);
  double D = (P - K) + E2; // fractional part, nearly exact
  const double Eps = 0x1p-40;
  KMin = static_cast<long long>(K) - (D < Eps ? 1 : 0);
  KMax = static_cast<long long>(K) + (D > 1.0 - Eps ? 1 : 0);
}

Interval igen::iExpFast(const Interval &X) {
  assertRoundUpward();
  double Lo = -X.NegLo, Hi = X.Hi;
  if (!poly::expFastDomain(Lo, Hi)) // NaN and out-of-range endpoints
    return guardFallback(iExp(X), "iExpFast libm fallback");
  // Monotone: two endpoint evaluations. The certified relative bound is
  // folded outward with ambient-mode directed adds: the upper endpoint
  // RU(y + e) >= y + e and the stored negated-lower RU(-y + e) = -RD(y-e).
  double YL = poly::expCore(Lo);
  double YH = poly::expCore(Hi);
  double EL = YL * poly::ExpEpsRel; // RU: >= the exact margin; exp > 0
  double EH = YH * poly::ExpEpsRel;
  return Interval((-YL) + EL, YH + EH);
}

Interval igen::iLogFast(const Interval &X) {
  assertRoundUpward();
  double Lo = -X.NegLo, Hi = X.Hi;
  if (!poly::logFastDomain(Lo, Hi)) // NaN, nonpositive/subnormal lower,
                                    // inf upper
    return guardFallback(iLog(X), "iLogFast libm fallback");
  double YL = poly::logCore(Lo);
  double YH = poly::logCore(Hi);
  double EL = std::fabs(YL) * poly::LogEpsRel;
  double EH = std::fabs(YH) * poly::LogEpsRel;
  return Interval((-YL) + EL, YH + EH);
}

namespace {

/// Shared sin/cos fast path. Monotone between section boundaries; only
/// boundaries where the function attains +-1 (peak PeakMod4, trough at
/// PeakMod4 + 2 mod 4) break monotonicity, so the hull of the endpoint
/// enclosures plus injected +-1 covers the true range. The boundary scan
/// of Elementary.cpp's sinCosImpl is replaced by a modular membership
/// test, so the whole path is loop- and fesetround-free.
/// Point evaluation with its certified margin: absolute SinCosEpsAbs in
/// general, the relative SinCosEpsRel when the reduction was the identity
/// (n == 0 implies r == x exactly; every remaining error term scales with
/// the result).
template <bool IsSin> double pointWithMargin(double X, double &E) {
  int64_t N;
  double R = poly::sinCosReduce(X, N);
  int64_t J = N & 3;
  double V;
  if (IsSin) {
    V = (J & 1) ? poly::cosPolyR(R) : poly::sinPolyR(R);
    V = (J & 2) ? -V : V;
  } else {
    V = (J & 1) ? poly::sinPolyR(R) : poly::cosPolyR(R);
    V = ((J + 1) & 2) ? -V : V;
  }
  E = N == 0 ? std::fabs(V) * poly::SinCosEpsRel : poly::SinCosEpsAbs;
  return V;
}

template <bool IsSin> Interval sinCosFastImpl(const Interval &X) {
  assertRoundUpward();
  double Lo = -X.NegLo, Hi = X.Hi;
  if (!poly::sinCosFastDomain(Lo, Hi))
    return guardFallback(IsSin ? iSin(X) : iCos(X),
                         "iSinFast/iCosFast libm fallback");
  long long KLoMin, KLoMax, KHiMin, KHiMax;
  poly::detail::sectionRangeUp(Lo, KLoMin, KLoMax);
  poly::detail::sectionRangeUp(Hi, KHiMin, KHiMax);
  if (KHiMax - KLoMin >= 5) // conservatively spans a peak and a trough
    return Interval::fromEndpoints(-1.0, 1.0);
  double EL, EH;
  double FL = pointWithMargin<IsSin>(Lo, EL);
  double FH = pointWithMargin<IsSin>(Hi, EH);
  double RHi = std::max(FL + EL, FH + EH);         // RU(f + e)
  double NegRLo = std::max((-FL) + EL, (-FH) + EH); // -RD(f - e)
  // Section boundaries possibly interior to [Lo, Hi]: m in (KLoMin,
  // KHiMax], i.e. Count values starting at First.
  long long First = KLoMin + 1;
  long long Count = KHiMax - KLoMin; // 0..5 here
  constexpr long long PeakMod4 = IsSin ? 1 : 0;
  constexpr long long TroughMod4 = IsSin ? 3 : 2;
  auto hasBoundaryMod4 = [&](long long Mod) {
    long long Delta = ((Mod - First) % 4 + 4) & 3; // distance to first hit
    return Delta < Count;
  };
  RHi = hasBoundaryMod4(PeakMod4) ? 1.0 : std::min(RHi, 1.0);
  NegRLo = hasBoundaryMod4(TroughMod4) ? 1.0 : std::min(NegRLo, 1.0);
  return Interval(NegRLo, RHi);
}

} // namespace

Interval igen::iSinFast(const Interval &X) { return sinCosFastImpl<true>(X); }

Interval igen::iCosFast(const Interval &X) { return sinCosFastImpl<false>(X); }
