//===- TBool.cpp - Three-valued booleans ----------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/TBool.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

using namespace igen;

static std::atomic<uint64_t> UnknownBranches{0};

static void defaultUnknownBranchHandler(const char *Where) {
  std::fprintf(stderr,
               "igen: unknown interval branch condition at %s; the interval "
               "result would be unsound, aborting\n",
               Where);
  std::abort();
}

static std::atomic<UnknownBranchHandler> Handler{defaultUnknownBranchHandler};

UnknownBranchHandler igen::setUnknownBranchHandler(UnknownBranchHandler H) {
  return Handler.exchange(H ? H : defaultUnknownBranchHandler);
}

uint64_t igen::unknownBranchCount() { return UnknownBranches.load(); }

void igen::resetUnknownBranchCount() { UnknownBranches.store(0); }

void igen::countingUnknownBranchHandler(const char *) {
  // The count is maintained by cvt2Bool; nothing else to do.
}

bool igen::cvt2Bool(TBool B, const char *Where) {
  if (B == TBool::Unknown) {
    UnknownBranches.fetch_add(1, std::memory_order_relaxed);
    Handler.load()(Where);
    return true;
  }
  return B == TBool::True;
}
