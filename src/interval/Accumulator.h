//===- Accumulator.h - Accurate reduction accumulators ----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accumulators behind IGen's reduction transformation (Section VI-B).
///
/// * SumAccumulatorF64 -- used when the target is double-precision
///   intervals: each endpoint is accumulated in double-double, which makes
///   the accumulated rounding error of the reduction itself negligible.
///
/// * ExactAccumulator / SumAccumulatorDd -- used when the target is
///   double-double intervals: an exponent-indexed array of n = 4096 slots
///   (index = 2*biasedExponent + lsb, two slots per exponent) in the style
///   of Malcolm and Demmel-Hida. Two doubles with the same exponent and
///   the same least-significant bit add *exactly* (their sum is an even
///   multiple of the common ulp and fits the significand), so insertion is
///   error-free in any rounding mode; rounding happens only in the final
///   double-double reduction over the occupied slots.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_ACCUMULATOR_H
#define IGEN_INTERVAL_ACCUMULATOR_H

#include "interval/DdInterval.h"
#include "interval/Interval.h"
#include "interval/IntervalSimd.h"

#include <bit>
#include <cstdint>
#include <cstring>

namespace igen {

//===----------------------------------------------------------------------===//
// Double-double accumulator for f64i reductions
//===----------------------------------------------------------------------===//

/// The paper's acc_f64: both (negated-low and high) endpoint sums kept in
/// double-double. All operations require upward rounding.
class SumAccumulatorF64 {
public:
  /// Initializes the accumulator with the first element (the paper's
  /// isum_init_f64).
  void init(const Interval &First) {
    NegLo = Dd(First.NegLo);
    Hi = Dd(First.Hi);
  }
  void init(const IntervalSse &First) { init(First.toInterval()); }

  /// Adds one interval term (isum_accumulate_f64).
  void accumulate(const Interval &T) {
    NegLo = ddAddUp(NegLo, Dd(T.NegLo));
    Hi = ddAddUp(Hi, Dd(T.Hi));
  }
  void accumulate(const IntervalSse &T) { accumulate(T.toInterval()); }

  /// Rounds the double-double endpoint sums outward to a double interval
  /// (isum_reduce_f64).
  Interval reduce() const {
    return Interval(ddToDoubleUp(NegLo), ddToDoubleUp(Hi));
  }

private:
  Dd NegLo;
  Dd Hi;
};

//===----------------------------------------------------------------------===//
// Exponent-indexed exact accumulator
//===----------------------------------------------------------------------===//

/// Error-free accumulation of doubles into 4096 exponent/lsb-indexed
/// slots; see the file comment. NaN or infinite inputs set a sticky
/// special value that the reduction returns.
class ExactAccumulator {
public:
  static constexpr int NumSlots = 4096;

  ExactAccumulator() { clear(); }

  void clear() {
    std::memset(Slots, 0, sizeof(Slots));
    Special = 0.0;
    HasSpecial = false;
  }

  /// Inserts \p X exactly (any rounding mode).
  void add(double X) {
    while (X != 0.0) {
      uint64_t Bits = std::bit_cast<uint64_t>(X);
      unsigned Exp = static_cast<unsigned>((Bits >> 52) & 0x7FF);
      if (Exp == 0x7FF) { // inf or NaN: track separately.
        noteSpecial(X);
        return;
      }
      unsigned Idx = 2 * Exp + static_cast<unsigned>(Bits & 1);
      double Old = Slots[Idx];
      if (Old == 0.0) {
        Slots[Idx] = X;
        return;
      }
      Slots[Idx] = 0.0;
      // Same exponent, same lsb: exact in any rounding mode. The sum may
      // carry into the next exponent class (or cancel to zero).
      X = X + Old;
    }
  }

  /// Adds both words of a double-double value exactly.
  void add(const Dd &X) {
    add(X.H);
    add(X.L);
  }

  /// Upper bound of the accumulated sum as a double-double: sums the
  /// occupied slots from the smallest magnitude class upward with directed
  /// double-double addition. Requires upward rounding.
  Dd reduceUp() const {
    assertRoundUpward();
    if (HasSpecial)
      return Dd(Special);
    Dd Sum(0.0);
    for (int I = 0; I < NumSlots; ++I)
      if (Slots[I] != 0.0)
        Sum = ddAddUp(Sum, Dd(Slots[I]));
    return Sum;
  }

  bool hasSpecial() const { return HasSpecial; }

private:
  void noteSpecial(double X) {
    if (!HasSpecial) {
      Special = X;
      HasSpecial = true;
      return;
    }
    double S = Special + X; // inf + -inf -> NaN, NaN sticky.
    Special = S;
  }

  double Slots[NumSlots];
  double Special;
  bool HasSpecial;
};

/// The paper's acc_dd: one exact accumulator per endpoint.
class SumAccumulatorDd {
public:
  void init(const DdInterval &First) {
    NegLo.clear();
    Hi.clear();
    accumulate(First);
  }

  void accumulate(const DdInterval &T) {
    NegLo.add(T.NegLo);
    Hi.add(T.Hi);
  }

  DdInterval reduce() const {
    return DdInterval(NegLo.reduceUp(), Hi.reduceUp());
  }

private:
  ExactAccumulator NegLo;
  ExactAccumulator Hi;
};

} // namespace igen

#endif // IGEN_INTERVAL_ACCUMULATOR_H
