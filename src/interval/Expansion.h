//===- Expansion.h - Exact floating-point expansions ------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shewchuk-style floating-point expansions: a value represented exactly as
/// a sum of nonoverlapping doubles of increasing magnitude. Used as the
/// exactness oracle in tests and by the certified variant of double-double
/// division (sign-exact evaluation of residuals like q*y - x).
///
/// IMPORTANT: the underlying error-free transformations are only exact in
/// round-to-nearest. Every public entry point asserts the rounding mode;
/// callers wrap uses in RoundNearestScope.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_EXPANSION_H
#define IGEN_INTERVAL_EXPANSION_H

#include "interval/DoubleDouble.h"
#include "interval/Rounding.h"

#include <cassert>
#include <cfenv>
#include <cmath>
#include <limits>
#include <vector>

namespace igen {

/// An exact, arbitrary-length sum of doubles. Components are kept
/// nonoverlapping and sorted by increasing magnitude; the value is the
/// exact mathematical sum of the components.
class Expansion {
public:
  Expansion() = default;

  /// Creates the expansion holding the single value \p X.
  explicit Expansion(double X) {
    if (X != 0.0)
      Components.push_back(X);
  }

  /// Adds the double \p B exactly (Shewchuk's GROW-EXPANSION). Defined
  /// out of line: the error-free transformations must execute under the
  /// round-to-nearest mode established by the caller, and out-of-line
  /// calls cannot be scheduled across the caller's fesetround().
  void add(double B);

  /// Adds the exact product A*B (TwoProd + two grows).
  void addProduct(double A, double B);

  /// Adds another expansion exactly.
  void add(const Expansion &Other) {
    for (double C : Other.Components)
      add(C);
  }

  /// Sign of the exact value: -1, 0 or +1. The largest-magnitude component
  /// of a nonoverlapping expansion determines the sign.
  int sign() const {
    if (Components.empty())
      return 0;
    double Top = Components.back();
    return Top > 0.0 ? 1 : (Top < 0.0 ? -1 : 0);
  }

  /// True if the exact value is zero.
  bool isZero() const { return sign() == 0; }

  /// Nearest-double estimate of the value (sum from small to large).
  double estimate() const {
    double S = 0.0;
    for (double C : Components)
      S += C;
    return S;
  }

  /// Most significant component (0 if empty); exact value lies within
  /// one ulp of it relative to itself.
  double leading() const {
    return Components.empty() ? 0.0 : Components.back();
  }

  size_t size() const { return Components.size(); }

  const std::vector<double> &components() const { return Components; }

private:
  std::vector<double> Components;
};

/// Exact sign of (Q * Y - X) for double-double Q, Y, X. Switches to
/// round-to-nearest internally. Used to verify directed division results.
inline int ddResidualSign(const Dd &Q, const Dd &Y, const Dd &X) {
  RoundNearestScope RN;
  Expansion E;
  E.addProduct(Q.H, Y.H);
  E.addProduct(Q.H, Y.L);
  E.addProduct(Q.L, Y.H);
  E.addProduct(Q.L, Y.L);
  E.add(-X.H);
  E.add(-X.L);
  return E.sign();
}

/// Certified upward-rounded double-double division: starts from the fast
/// widened candidate and, unnecessary in practice but belt-and-braces,
/// verifies Q >= X/Y by the exact residual sign, nudging upward until the
/// bound holds. Requires Y != 0 and finite operands.
template <class Ops = FastOps>
inline Dd ddDivUpCertified(const Dd &X, const Dd &Y) {
  Dd Q = ddDivUp<Ops>(X, Y);
  if (Q.hasNaN() || Q.isInf())
    return Q;
  // Q >= X/Y  <=>  Q*Y >= X (Y > 0)  or  Q*Y <= X (Y < 0).
  int YSign = Y.sign();
  assert(YSign != 0 && "division by zero must be handled by the caller");
  for (int Iter = 0; Iter < 8; ++Iter) {
    int RSign = ddResidualSign(Q, Y, X); // sign of Q*Y - X
    bool Holds = YSign > 0 ? RSign >= 0 : RSign <= 0;
    if (Holds)
      return Q;
    Q.L = nextUp(Q.L);
    if (Q.L == 0.0) // crossed zero exactly; keep moving
      Q.L = std::numeric_limits<double>::denorm_min();
  }
  // Could not verify (pathological operands): fall back to +inf bound.
  return Dd(std::numeric_limits<double>::infinity(), 0.0);
}

} // namespace igen

#endif // IGEN_INTERVAL_EXPANSION_H
