//===- Interval.h - Scalar double-precision intervals -----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar double-precision interval type (the paper's f64i) and its
/// operations (Table I). An interval [a, b] is the set of reals
/// { x | a <= x <= b } and is stored as the pair (-a, b) so that, with the
/// FPU rounding upward, both endpoint computations round outward without
/// ever switching the rounding mode (Section II).
///
/// Soundness contract: for every operation op and reals u in X, v in Y,
/// the real op(u, v) is contained in op(X, Y). NaN endpoints mean "the
/// represented value may be anything, including NaN" (Section IV-A); all
/// operations propagate this conservatively.
///
/// All operations require the FPU to round upward (RoundUpwardScope) unless
/// documented otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_INTERVAL_H
#define IGEN_INTERVAL_INTERVAL_H

#include "interval/Rounding.h"
#include "interval/TBool.h"
#include "interval/Ulp.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace igen {

/// A double-precision interval stored as (-lo, hi).
struct Interval {
  double NegLo = 0.0; ///< Negated lower endpoint.
  double Hi = 0.0;    ///< Upper endpoint.

  Interval() = default;
  constexpr Interval(double NegLo, double Hi) : NegLo(NegLo), Hi(Hi) {}

  double lo() const { return -NegLo; }
  double hi() const { return Hi; }

  /// Builds [Lo, Hi]. Requires Lo <= Hi (or NaNs).
  static Interval fromEndpoints(double Lo, double Hi) {
    return Interval(-Lo, Hi);
  }

  /// The degenerate interval [X, X].
  static Interval fromPoint(double X) { return Interval(-X, X); }

  /// The whole real line [-inf, +inf].
  static Interval entire() {
    double Inf = std::numeric_limits<double>::infinity();
    return Interval(Inf, Inf);
  }

  /// The invalid interval [NaN, NaN]: the value may be anything.
  static Interval nan() {
    double N = std::numeric_limits<double>::quiet_NaN();
    return Interval(N, N);
  }

  /// True if either endpoint is NaN.
  bool hasNaN() const { return std::isnan(NegLo) || std::isnan(Hi); }

  /// True if the real \p X is contained in this interval. NaN endpoints
  /// contain everything.
  bool contains(double X) const {
    if (hasNaN())
      return true;
    return -NegLo <= X && X <= Hi;
  }

  /// True if \p Other is a subset of this interval.
  bool containsInterval(const Interval &Other) const {
    if (hasNaN())
      return true;
    if (Other.hasNaN())
      return false;
    return Other.NegLo <= NegLo && Other.Hi <= Hi;
  }

  /// True if the interval is a single point (and finite).
  bool isPoint() const { return -NegLo == Hi && !std::isinf(Hi); }

  /// Upper bound of the width hi - lo (requires upward rounding).
  double width() const {
    assertRoundUpward();
    return Hi + NegLo;
  }
};

//===----------------------------------------------------------------------===//
// Basic arithmetic
//===----------------------------------------------------------------------===//

/// X + Y: [RD(a+c), RU(b+d)], two additions with the negated-low trick.
inline Interval iAdd(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  return Interval(X.NegLo + Y.NegLo, X.Hi + Y.Hi);
}

/// -X: swap the stored endpoints (exact).
inline Interval iNeg(const Interval &X) { return Interval(X.Hi, X.NegLo); }

/// X - Y == X + (-Y).
inline Interval iSub(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  return Interval(X.NegLo + Y.Hi, X.Hi + Y.NegLo);
}

namespace detail {

/// max of four doubles; inputs must not be NaN.
inline double max4(double A, double B, double C, double D) {
  double M1 = A > B ? A : B;
  double M2 = C > D ? C : D;
  return M1 > M2 ? M1 : M2;
}

/// Product for the conservative slow path: uses the interval convention
/// 0 * +-inf == 0 (an exact zero times any *real*, however large, is zero;
/// infinite endpoints still denote bounds on reals, Section IV-A).
inline double mulZeroFix(double U, double V) {
  double P = U * V;
  if (std::isnan(P) && (U == 0.0 || V == 0.0))
    return 0.0;
  return P;
}

/// Slow path of interval multiplication: taken when a fast-path product
/// was NaN (inputs contain 0 * inf combinations or NaN endpoints).
inline Interval mulSlow(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return Interval::nan();
  double NegLo = max4(mulZeroFix(-X.NegLo, Y.NegLo), mulZeroFix(X.NegLo, Y.Hi),
                      mulZeroFix(X.Hi, Y.NegLo), mulZeroFix(-X.Hi, Y.Hi));
  double Hi = max4(mulZeroFix(X.NegLo, Y.NegLo), mulZeroFix(-X.NegLo, Y.Hi),
                   mulZeroFix(X.Hi, -Y.NegLo), mulZeroFix(X.Hi, Y.Hi));
  return Interval(NegLo, Hi);
}

} // namespace detail

/// X * Y: eight upward-rounded products and two 4-way maxima (Section II).
/// With a = -X.NegLo, b = X.Hi, c = -Y.NegLo, d = Y.Hi:
///   -lo' = max(RU(-ac), RU(-ad), RU(-bc), RU(-bd))
///    hi' = max(RU(ac), RU(ad), RU(bc), RU(bd))
/// where each negated product is computed by negating one (stored) factor
/// before the multiplication, which is exact.
inline Interval iMul(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  double Xn = X.NegLo, Xh = X.Hi, Yn = Y.NegLo, Yh = Y.Hi;
  // Candidates for the negated lower endpoint.
  double N1 = (-Xn) * Yn; // -(a*c)
  double N2 = Xn * Yh;    // -(a*d)
  double N3 = Xh * Yn;    // -(b*c)
  double N4 = (-Xh) * Yh; // -(b*d)
  // Candidates for the upper endpoint.
  double H1 = Xn * Yn;    // a*c
  double H2 = (-Xn) * Yh; // a*d
  double H3 = Xh * (-Yn); // b*c
  double H4 = Xh * Yh;    // b*d
  // 0 * inf (or NaN input endpoints) poison the candidates; detect via a
  // NaN-propagating sum and fall back to the careful path.
  double Check = ((N1 + N2) + (N3 + N4)) + ((H1 + H2) + (H3 + H4));
  if (__builtin_expect(std::isnan(Check), 0))
    return detail::mulSlow(X, Y);
  return Interval(detail::max4(N1, N2, N3, N4), detail::max4(H1, H2, H3, H4));
}

namespace detail {

/// Slow path of interval division for 0-free divisors whose quotients
/// produced NaN (inf/inf with infinite endpoints on both sides).
inline Interval divSlow(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return Interval::nan();
  return Interval::entire();
}

/// Division when Y contains zero. If X may also be zero the quotient 0/0
/// is possible and the result is invalid; otherwise the result is a
/// half-line or the entire line depending on which side of Y touches 0.
inline Interval divByZeroContaining(const Interval &X, const Interval &Y) {
  double Inf = std::numeric_limits<double>::infinity();
  bool XHasZero = X.NegLo >= 0.0 && X.Hi >= 0.0;
  if (XHasZero)
    return Interval::nan(); // 0/0 possible: invalid operation.
  if (Y.NegLo == 0.0 && Y.Hi == 0.0)
    return Interval::nan(); // x/[0,0]: invalid.
  bool YLoIsZero = Y.NegLo == 0.0; // Y = [0, d], d > 0.
  bool YHiIsZero = Y.Hi == 0.0;    // Y = [c, 0], c < 0.
  if (!YLoIsZero && !YHiIsZero)
    return Interval::entire(); // 0 interior to Y: both signs possible.
  bool XPos = X.NegLo <= 0.0; // lo(X) >= 0 (and X is 0-free, so lo > 0).
  if (YLoIsZero) {
    // X / (0, d]: positive X gives [lo/d, +inf), negative X (-inf, hi/d].
    if (XPos)
      return Interval(X.NegLo / Y.Hi, Inf); // -lo' = RU((-lo)/d).
    return Interval(Inf, X.Hi / Y.Hi);      // hi' = RU(hi/d).
  }
  // X / [c, 0): signs flip.
  if (XPos)
    return Interval(Inf, X.NegLo / Y.NegLo); // hi' = RU((-lo)/(-c)).
  return Interval((-X.Hi) / (-Y.NegLo), Inf); // -lo' = RU(hi/c), c<0.
}

} // namespace detail

/// X / Y: eight upward-rounded quotients when 0 is outside Y, otherwise
/// the half-line/entire/invalid case analysis of divByZeroContaining().
inline Interval iDiv(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  if (__builtin_expect(X.hasNaN() || Y.hasNaN(), 0))
    return Interval::nan();
  // Y contains zero iff lo(Y) <= 0 <= hi(Y) iff NegLo >= 0 && Hi >= 0.
  if (__builtin_expect(Y.NegLo >= 0.0 && Y.Hi >= 0.0, 0))
    return detail::divByZeroContaining(X, Y);
  double Xn = X.NegLo, Xh = X.Hi, Yn = Y.NegLo, Yh = Y.Hi;
  double N1 = (-Xn) / Yn; // -(a/c)
  double N2 = Xn / Yh;    // -(a/d)
  double N3 = Xh / Yn;    // -(b/c)
  double N4 = (-Xh) / Yh; // -(b/d)
  double H1 = Xn / Yn;    // a/c
  double H2 = (-Xn) / Yh; // a/d
  double H3 = Xh / (-Yn); // b/c
  double H4 = Xh / Yh;    // b/d
  double Check = ((N1 + N2) + (N3 + N4)) + ((H1 + H2) + (H3 + H4));
  if (__builtin_expect(std::isnan(Check), 0))
    return detail::divSlow(X, Y);
  return Interval(detail::max4(N1, N2, N3, N4), detail::max4(H1, H2, H3, H4));
}

//===----------------------------------------------------------------------===//
// Sign-specialized multiply/divide and fused multiply-add
//===----------------------------------------------------------------------===//
//
// The transformer's -O mid-end emits these variants when its value-range
// analysis proves operand signs. Naming: p = subset of [0, +inf),
// n = subset of (-inf, 0], u = unknown sign; the divide variants require a
// strictly 0-free divisor. Each variant evaluates only the candidate
// products/quotients that can attain the extrema given the proven signs
// (2 instead of 8 when both signs are known), still rounds every endpoint
// outward, and keeps the NaN-propagating check of the generic operation so
// that 0 * inf candidates -- or inputs that violate the precondition at
// runtime -- fall back to the fully general code path. The preconditions
// are therefore a matter of speed, not of soundness; they are
// debug-asserted to surface analysis bugs in the test suite.

namespace detail {

/// Debug check for a "provably nonnegative" operand: no non-NaN endpoint
/// may contradict lo >= 0 (NaN endpoints pass; the runtime check catches
/// them).
inline bool nonNegOk(const Interval &X) { return !(X.NegLo > 0.0); }

/// Debug check for a "provably nonpositive" operand.
inline bool nonPosOk(const Interval &X) { return !(X.Hi > 0.0); }

} // namespace detail

/// X * Y with lo(X) >= 0 and lo(Y) >= 0: the extrema are lo*lo and hi*hi.
inline Interval iMulPP(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(detail::nonNegOk(X) && detail::nonNegOk(Y));
  double N = X.NegLo * (-Y.NegLo); // -(lo(X)*lo(Y))
  double H = X.Hi * Y.Hi;
  if (__builtin_expect(std::isnan(N + H), 0))
    return iMul(X, Y);
  return Interval(N, H);
}

/// X * Y with lo(X) >= 0 and hi(Y) <= 0: extrema are hi(X)*lo(Y) and
/// lo(X)*hi(Y).
inline Interval iMulPN(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(detail::nonNegOk(X) && detail::nonPosOk(Y));
  double N = X.Hi * Y.NegLo;    // -(hi(X)*lo(Y))
  double H = (-X.NegLo) * Y.Hi; // lo(X)*hi(Y)
  if (__builtin_expect(std::isnan(N + H), 0))
    return iMul(X, Y);
  return Interval(N, H);
}

/// X * Y with hi(X) <= 0 and hi(Y) <= 0: extrema are hi*hi and lo*lo.
inline Interval iMulNN(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(detail::nonPosOk(X) && detail::nonPosOk(Y));
  double N = (-X.Hi) * Y.Hi;    // -(hi(X)*hi(Y))
  double H = X.NegLo * Y.NegLo; // lo(X)*lo(Y)
  if (__builtin_expect(std::isnan(N + H), 0))
    return iMul(X, Y);
  return Interval(N, H);
}

/// X * Y with lo(X) >= 0 and Y of unknown sign: x >= 0 makes x*lo(Y) the
/// only lower and x*hi(Y) the only upper family, four candidates total.
inline Interval iMulPU(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(detail::nonNegOk(X));
  double N1 = X.NegLo * (-Y.NegLo); // -(lo(X)*lo(Y))
  double N2 = X.Hi * Y.NegLo;       // -(hi(X)*lo(Y))
  double H1 = (-X.NegLo) * Y.Hi;    // lo(X)*hi(Y)
  double H2 = X.Hi * Y.Hi;          // hi(X)*hi(Y)
  double Check = (N1 + N2) + (H1 + H2);
  if (__builtin_expect(std::isnan(Check), 0))
    return iMul(X, Y);
  return Interval(N1 > N2 ? N1 : N2, H1 > H2 ? H1 : H2);
}

/// X * Y with hi(X) <= 0 and Y of unknown sign.
inline Interval iMulNU(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(detail::nonPosOk(X));
  double N1 = X.NegLo * Y.Hi;    // -(lo(X)*hi(Y))
  double N2 = (-X.Hi) * Y.Hi;    // -(hi(X)*hi(Y))
  double H1 = X.NegLo * Y.NegLo; // lo(X)*lo(Y)
  double H2 = X.Hi * (-Y.NegLo); // hi(X)*lo(Y)
  double Check = (N1 + N2) + (H1 + H2);
  if (__builtin_expect(std::isnan(Check), 0))
    return iMul(X, Y);
  return Interval(N1 > N2 ? N1 : N2, H1 > H2 ? H1 : H2);
}

/// X / Y with lo(Y) > 0: the divisor is 0-free by precondition, so the
/// zero-containment case analysis and half the quotients disappear.
inline Interval iDivP(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(!(-Y.NegLo <= 0.0)); // lo(Y) > 0 (NaN endpoints pass)
  double Yl = -Y.NegLo;
  double N1 = X.NegLo / Yl;   // -(lo(X)/lo(Y))
  double N2 = X.NegLo / Y.Hi; // -(lo(X)/hi(Y))
  double H1 = X.Hi / Yl;      // hi(X)/lo(Y)
  double H2 = X.Hi / Y.Hi;    // hi(X)/hi(Y)
  double Check = (N1 + N2) + (H1 + H2);
  if (__builtin_expect(std::isnan(Check), 0))
    return iDiv(X, Y);
  return Interval(N1 > N2 ? N1 : N2, H1 > H2 ? H1 : H2);
}

/// X / Y with hi(Y) < 0.
inline Interval iDivN(const Interval &X, const Interval &Y) {
  assertRoundUpward();
  assert(!(Y.Hi >= 0.0)); // hi(Y) < 0 (NaN endpoints pass)
  double N1 = (-X.Hi) / Y.Hi;    // -(hi(X)/hi(Y))
  double N2 = X.Hi / Y.NegLo;    // -(hi(X)/lo(Y))
  double H1 = (-X.NegLo) / Y.Hi; // lo(X)/hi(Y)
  double H2 = X.NegLo / Y.NegLo; // lo(X)/lo(Y)
  double Check = (N1 + N2) + (H1 + H2);
  if (__builtin_expect(std::isnan(Check), 0))
    return iDiv(X, Y);
  return Interval(N1 > N2 ? N1 : N2, H1 > H2 ? H1 : H2);
}

/// X*Y + C as one fused operation: each candidate product of iMul gains
/// the addend through a hardware fma, so every endpoint is rounded once
/// instead of twice. The result contains {u*v + w : u in X, v in Y,
/// w in C} and is a subset of iAdd(iMul(X, Y), C) (single rounding can
/// only tighten). Hardware FMA honours the dynamic rounding mode; libm's
/// software fallback does not, so without __FMA__ this degrades to the
/// unfused composition instead.
inline Interval iFma(const Interval &X, const Interval &Y,
                     const Interval &C) {
#if defined(__FMA__)
  assertRoundUpward();
  double Xn = X.NegLo, Xh = X.Hi, Yn = Y.NegLo, Yh = Y.Hi;
  double Cn = C.NegLo, Ch = C.Hi;
  // RU(-(p) + (-lo(C))) >= -(p + lo(C)) for each candidate product p; the
  // max over all candidates bounds -(lo(X*Y) + lo(C)) from above.
  double N1 = __builtin_fma(-Xn, Yn, Cn);
  double N2 = __builtin_fma(Xn, Yh, Cn);
  double N3 = __builtin_fma(Xh, Yn, Cn);
  double N4 = __builtin_fma(-Xh, Yh, Cn);
  double H1 = __builtin_fma(Xn, Yn, Ch);
  double H2 = __builtin_fma(-Xn, Yh, Ch);
  double H3 = __builtin_fma(Xh, -Yn, Ch);
  double H4 = __builtin_fma(Xh, Yh, Ch);
  double Check = ((N1 + N2) + (N3 + N4)) + ((H1 + H2) + (H3 + H4));
  if (__builtin_expect(std::isnan(Check), 0))
    return iAdd(iMul(X, Y), C);
  return Interval(detail::max4(N1, N2, N3, N4),
                  detail::max4(H1, H2, H3, H4));
#else
  return iAdd(iMul(X, Y), C);
#endif
}

/// Fused X*Y + C with lo(X) >= 0 and lo(Y) >= 0: one fma per endpoint.
inline Interval iFmaPP(const Interval &X, const Interval &Y,
                       const Interval &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonNegOk(X) && detail::nonNegOk(Y));
  double N = __builtin_fma(X.NegLo, -Y.NegLo, C.NegLo);
  double H = __builtin_fma(X.Hi, Y.Hi, C.Hi);
  if (__builtin_expect(std::isnan(N + H), 0))
    return iAdd(iMul(X, Y), C);
  return Interval(N, H);
#else
  return iAdd(iMulPP(X, Y), C);
#endif
}

/// Fused X*Y + C with lo(X) >= 0 and hi(Y) <= 0.
inline Interval iFmaPN(const Interval &X, const Interval &Y,
                       const Interval &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonNegOk(X) && detail::nonPosOk(Y));
  double N = __builtin_fma(X.Hi, Y.NegLo, C.NegLo);
  double H = __builtin_fma(-X.NegLo, Y.Hi, C.Hi);
  if (__builtin_expect(std::isnan(N + H), 0))
    return iAdd(iMul(X, Y), C);
  return Interval(N, H);
#else
  return iAdd(iMulPN(X, Y), C);
#endif
}

/// Fused X*Y + C with hi(X) <= 0 and hi(Y) <= 0.
inline Interval iFmaNN(const Interval &X, const Interval &Y,
                       const Interval &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonPosOk(X) && detail::nonPosOk(Y));
  double N = __builtin_fma(-X.Hi, Y.Hi, C.NegLo);
  double H = __builtin_fma(X.NegLo, Y.NegLo, C.Hi);
  if (__builtin_expect(std::isnan(N + H), 0))
    return iAdd(iMul(X, Y), C);
  return Interval(N, H);
#else
  return iAdd(iMulNN(X, Y), C);
#endif
}

/// Fused X*Y + C with lo(X) >= 0, Y of unknown sign.
inline Interval iFmaPU(const Interval &X, const Interval &Y,
                       const Interval &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonNegOk(X));
  double N1 = __builtin_fma(X.NegLo, -Y.NegLo, C.NegLo);
  double N2 = __builtin_fma(X.Hi, Y.NegLo, C.NegLo);
  double H1 = __builtin_fma(-X.NegLo, Y.Hi, C.Hi);
  double H2 = __builtin_fma(X.Hi, Y.Hi, C.Hi);
  double Check = (N1 + N2) + (H1 + H2);
  if (__builtin_expect(std::isnan(Check), 0))
    return iAdd(iMul(X, Y), C);
  return Interval(N1 > N2 ? N1 : N2, H1 > H2 ? H1 : H2);
#else
  return iAdd(iMulPU(X, Y), C);
#endif
}

/// Fused X*Y + C with hi(X) <= 0, Y of unknown sign.
inline Interval iFmaNU(const Interval &X, const Interval &Y,
                       const Interval &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonPosOk(X));
  double N1 = __builtin_fma(X.NegLo, Y.Hi, C.NegLo);
  double N2 = __builtin_fma(-X.Hi, Y.Hi, C.NegLo);
  double H1 = __builtin_fma(X.NegLo, Y.NegLo, C.Hi);
  double H2 = __builtin_fma(X.Hi, -Y.NegLo, C.Hi);
  double Check = (N1 + N2) + (H1 + H2);
  if (__builtin_expect(std::isnan(Check), 0))
    return iAdd(iMul(X, Y), C);
  return Interval(N1 > N2 ? N1 : N2, H1 > H2 ? H1 : H2);
#else
  return iAdd(iMulNU(X, Y), C);
#endif
}

//===----------------------------------------------------------------------===//
// Elementary point operations (sqrt, abs, floor, ceil)
//===----------------------------------------------------------------------===//

namespace detail {

/// Largest double S with S*S <= X, given SUp = RU(sqrt(X)) and X >= 0
/// finite. Uses the exactness of the FMA residue: SUp*SUp - X is exactly
/// representable (standard square-root residue argument), so
/// fma(SUp, SUp, -X) computes it exactly in any rounding mode.
inline double sqrtRoundDown(double X, double SUp) {
  if (SUp * SUp == X && std::fma(SUp, SUp, -X) == 0.0)
    return SUp; // RU(sqrt(X)) is exact.
  return nextDown(SUp);
}

} // namespace detail

/// sqrt(X). A negative lower endpoint yields a NaN lower endpoint (the
/// paper's sqrt([-1,1]) == [NaN, 1]); an entirely negative X is invalid.
inline Interval iSqrt(const Interval &X) {
  assertRoundUpward();
  if (X.hasNaN())
    return Interval::nan();
  if (X.Hi < 0.0)
    return Interval::nan();
  double HiUp = std::sqrt(X.Hi); // Hardware sqrt honours RU: upper bound.
  double Lo = -X.NegLo;
  if (Lo < 0.0)
    return Interval(std::numeric_limits<double>::quiet_NaN(), HiUp);
  if (Lo == 0.0)
    return Interval(-0.0, HiUp);
  double SUp = std::sqrt(Lo);
  return Interval(-detail::sqrtRoundDown(Lo, SUp), HiUp);
}

/// |X|: exact endpoint selection.
inline Interval iAbs(const Interval &X) {
  if (X.hasNaN())
    return Interval::nan();
  if (X.NegLo <= 0.0) // lo >= 0: already nonnegative.
    return X;
  if (X.Hi <= 0.0) // hi <= 0: entirely nonpositive.
    return iNeg(X);
  // Straddles zero: [0, max(-lo, hi)].
  return Interval(0.0, X.NegLo > X.Hi ? X.NegLo : X.Hi);
}

/// floor(X): exact and monotone; floor(lo) == -ceil(-lo).
inline Interval iFloor(const Interval &X) {
  return Interval(std::ceil(X.NegLo), std::floor(X.Hi));
}

/// ceil(X): exact and monotone.
inline Interval iCeil(const Interval &X) {
  return Interval(std::floor(X.NegLo), std::ceil(X.Hi));
}

/// min(X, Y): endpoint-wise minimum (the set {min(u,v)}).
inline Interval iMin(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return Interval::nan();
  return Interval(X.NegLo > Y.NegLo ? X.NegLo : Y.NegLo,
                  X.Hi < Y.Hi ? X.Hi : Y.Hi);
}

/// max(X, Y): endpoint-wise maximum.
inline Interval iMax(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return Interval::nan();
  return Interval(X.NegLo < Y.NegLo ? X.NegLo : Y.NegLo,
                  X.Hi > Y.Hi ? X.Hi : Y.Hi);
}

//===----------------------------------------------------------------------===//
// Comparisons (Section IV-B): three-valued results
//===----------------------------------------------------------------------===//

inline TBool iCmpLT(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return TBool::Unknown;
  if (X.Hi < -Y.NegLo)
    return TBool::True; // hi(X) < lo(Y)
  if (-X.NegLo >= Y.Hi)
    return TBool::False; // lo(X) >= hi(Y)
  return TBool::Unknown;
}

inline TBool iCmpLE(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return TBool::Unknown;
  if (X.Hi <= -Y.NegLo)
    return TBool::True;
  if (-X.NegLo > Y.Hi)
    return TBool::False;
  return TBool::Unknown;
}

inline TBool iCmpGT(const Interval &X, const Interval &Y) {
  return iCmpLT(Y, X);
}

inline TBool iCmpGE(const Interval &X, const Interval &Y) {
  return iCmpLE(Y, X);
}

inline TBool iCmpEQ(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return TBool::Unknown;
  if (X.isPoint() && Y.isPoint() && X.Hi == Y.Hi)
    return TBool::True;
  // Disjoint intervals are certainly unequal.
  if (X.Hi < -Y.NegLo || Y.Hi < -X.NegLo)
    return TBool::False;
  return TBool::Unknown;
}

inline TBool iCmpNE(const Interval &X, const Interval &Y) {
  return tboolNot(iCmpEQ(X, Y));
}

//===----------------------------------------------------------------------===//
// Set operations and conversions
//===----------------------------------------------------------------------===//

/// Smallest interval containing both X and Y (used to join branches).
inline Interval iHull(const Interval &X, const Interval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return Interval::nan();
  return Interval(X.NegLo > Y.NegLo ? X.NegLo : Y.NegLo,
                  X.Hi > Y.Hi ? X.Hi : Y.Hi);
}

/// Builds the interval X +- Tol (the language extension of Section IV-C).
/// Requires Tol >= 0.
inline Interval iSetTol(double X, double Tol) {
  assertRoundUpward();
  return Interval((-X) + Tol, X + Tol);
}

/// Tightest interval around a value known only as a double: the exact
/// degenerate interval (a double *is* a real).
inline Interval iFromDouble(double X) { return Interval::fromPoint(X); }

//===----------------------------------------------------------------------===//
// Operator sugar for the C++ API (examples, tests)
//===----------------------------------------------------------------------===//

inline Interval operator+(const Interval &X, const Interval &Y) {
  return iAdd(X, Y);
}
inline Interval operator-(const Interval &X, const Interval &Y) {
  return iSub(X, Y);
}
inline Interval operator*(const Interval &X, const Interval &Y) {
  return iMul(X, Y);
}
inline Interval operator/(const Interval &X, const Interval &Y) {
  return iDiv(X, Y);
}
inline Interval operator-(const Interval &X) { return iNeg(X); }

} // namespace igen

#endif // IGEN_INTERVAL_INTERVAL_H
