//===- DecimalFp.h - Sound decimal-literal enclosures -----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts decimal floating-point literals to guaranteed interval
/// enclosures of the *real* value they denote.
///
/// IGen lifts every constant to an interval (Section IV-B); when compiling
/// to double-double precision the enclosure must be tight at ~2^-100
/// relative width or the constants would dominate the error budget. The
/// conversion parses the digit string exactly (chunks of <= 15 digits,
/// each an exact double) and evaluates sum(chunk_i * 10^e_i) in
/// double-double *interval* arithmetic, with the powers of ten themselves
/// sound interval enclosures -- so the result is correct by construction.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_DECIMALFP_H
#define IGEN_INTERVAL_DECIMALFP_H

#include "interval/DdInterval.h"
#include "interval/Interval.h"

#include <string_view>

namespace igen {

/// Sound double-double interval enclosure of the decimal literal \p Text
/// ("3.25", "1e-3", "-0.1", "12.5e+7"). Requires upward rounding. Returns
/// a NaN interval for malformed input.
DdInterval ddIntervalFromDecimal(std::string_view Text);

/// Sound double-precision enclosure (outer hull of the above). Requires
/// upward rounding.
Interval intervalFromDecimal(std::string_view Text);

/// Sound dd interval enclosure of 10^N. Requires upward rounding.
DdInterval pow10Interval(int N);

} // namespace igen

#endif // IGEN_INTERVAL_DECIMALFP_H
