//===- Ulp.h - Unit-in-the-last-place utilities -----------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-level utilities on IEEE-754 doubles and floats: neighbouring values,
/// ulp-distance, and conservative widening. Used for lifting constants to
/// intervals, for the accuracy metric, and for the libm error margins in
/// the elementary functions.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_ULP_H
#define IGEN_INTERVAL_ULP_H

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace igen {

/// Maps a double onto a signed integer such that the ordering of finite
/// doubles matches the ordering of the integers and adjacent doubles map to
/// adjacent integers ("Bruce Dawson" ordering). NaNs are not valid inputs.
inline int64_t toOrdered(double X) {
  int64_t Bits = std::bit_cast<int64_t>(X);
  return Bits < 0 ? static_cast<int64_t>(0x8000000000000000ULL) - Bits : Bits;
}

/// Inverse of toOrdered().
inline double fromOrdered(int64_t N) {
  int64_t Bits =
      N < 0 ? static_cast<int64_t>(0x8000000000000000ULL) - N : N;
  return std::bit_cast<double>(Bits);
}

/// Next double strictly above \p X (next below for nextDown). Saturates at
/// +-infinity; NaN maps to NaN.
inline double nextUp(double X) {
  if (std::isnan(X) || X == std::numeric_limits<double>::infinity())
    return X;
  if (X == 0.0)
    return std::numeric_limits<double>::denorm_min();
  return fromOrdered(toOrdered(X) + 1);
}

inline double nextDown(double X) {
  if (std::isnan(X) || X == -std::numeric_limits<double>::infinity())
    return X;
  if (X == 0.0)
    return -std::numeric_limits<double>::denorm_min();
  return fromOrdered(toOrdered(X) - 1);
}

/// Moves \p X by \p N ulps upward (N may make it cross zero). Saturates at
/// +-infinity in the outward direction; stepping *inward* from an infinity
/// yields the corresponding finite neighbours. The inward behaviour is what
/// makes libm error margins sound at overflow: when round-to-nearest exp()
/// returns +inf the true value still exceeds every double within the libm
/// ulp bound of +inf, so addUlps(+inf, -Bound) is a valid lower bound —
/// the old early-return of +inf produced the empty-looking [+inf, +inf].
inline double addUlps(double X, int64_t N) {
  if (std::isnan(X))
    return X;
  // toOrdered(+-inf) is ~2^62 away from the int64 limits, but N is caller
  // controlled: keep extreme N defined instead of overflowing.
  int64_t Ordered;
  if (__builtin_add_overflow(toOrdered(X), N, &Ordered))
    Ordered = N > 0 ? std::numeric_limits<int64_t>::max()
                    : std::numeric_limits<int64_t>::min();
  // Saturate at the infinities.
  const int64_t PosInf = toOrdered(std::numeric_limits<double>::infinity());
  const int64_t NegInf = toOrdered(-std::numeric_limits<double>::infinity());
  if (Ordered >= PosInf)
    return std::numeric_limits<double>::infinity();
  if (Ordered <= NegInf)
    return -std::numeric_limits<double>::infinity();
  return fromOrdered(Ordered);
}

/// Number of double-precision values strictly between \p Lo and \p Hi plus
/// one, i.e. the ulp-distance. Requires Lo <= Hi and both finite.
inline uint64_t ulpDistance(double Lo, double Hi) {
  return static_cast<uint64_t>(toOrdered(Hi) - toOrdered(Lo));
}

/// The unit in the last place of \p X: the gap between the two finite
/// doubles enclosing it (for a representable X, the distance to the next
/// double away from zero).
inline double ulpOf(double X) {
  if (std::isnan(X) || std::isinf(X))
    return std::numeric_limits<double>::quiet_NaN();
  double A = std::fabs(X);
  return nextUp(A) - A;
}

} // namespace igen

#endif // IGEN_INTERVAL_ULP_H
