//===- DoubleDouble.h - Directed double-double arithmetic -------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Double-double ("double-word") arithmetic with *upward* rounding
/// (Section VI-A). A double-double a is an unevaluated sum ah + al of two
/// doubles. The classical error-free transformations (TwoSum, FastTwoSum,
/// TwoProd) are only error-free in round-to-nearest; under a directed
/// rounding mode they instead yield *directed bounds*: computed entirely
/// with upward rounding, DD_Add/DD_Mul/DD_Div return z with
/// zh + zl >= exact result (the paper's Lemma 1, after Graillat-Jezequel).
/// Combined with the negated-lower-endpoint representation this is all the
/// interval layer needs.
///
/// All algorithms are templated over an operation policy so that the
/// Table III benchmark can count flops with CountingOps while the hot path
/// uses FastOps with zero overhead.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_DOUBLEDOUBLE_H
#define IGEN_INTERVAL_DOUBLEDOUBLE_H

#include "interval/Rounding.h"
#include "interval/Ulp.h"

#include <cmath>
#include <cstdint>

namespace igen {

/// A double-double value ah + al. Normalized when |al| <= ulp(ah)/2-ish;
/// the directed algorithms keep results normalized via their final
/// renormalization step.
struct Dd {
  double H = 0.0;
  double L = 0.0;

  Dd() = default;
  constexpr Dd(double H, double L) : H(H), L(L) {}
  explicit constexpr Dd(double H) : H(H), L(0.0) {}

  bool hasNaN() const { return std::isnan(H) || std::isnan(L); }
  bool isInf() const { return std::isinf(H); }

  /// Sign of the represented value (normalized inputs: the high word
  /// dominates). Returns -1, 0, or +1.
  int sign() const {
    if (H > 0.0)
      return 1;
    if (H < 0.0)
      return -1;
    if (L > 0.0)
      return 1;
    if (L < 0.0)
      return -1;
    return 0;
  }
};

/// Exact negation.
inline Dd ddNeg(const Dd &X) { return Dd(-X.H, -X.L); }

/// Ordering of double-double values (valid for normalized operands and for
/// +-inf; NaN compares false like IEEE).
inline bool ddLess(const Dd &X, const Dd &Y) {
  return X.H < Y.H || (X.H == Y.H && X.L < Y.L);
}

inline Dd ddMax(const Dd &X, const Dd &Y) { return ddLess(X, Y) ? Y : X; }

/// Default operation policy: plain hardware arithmetic.
struct FastOps {
  static double add(double A, double B) { return A + B; }
  static double sub(double A, double B) { return A - B; }
  static double mul(double A, double B) { return A * B; }
  static double div(double A, double B) { return A / B; }
  static double fma(double A, double B, double C) {
    return __builtin_fma(A, B, C);
  }
};

/// Counting policy used by the Table III reproduction: counts every
/// floating-point operation (an FMA counts as two flops). The counters
/// are inline (defined in every TU) rather than out-of-line: an extern
/// thread_local member is reached through a weak TLS wrapper function,
/// which -fsanitize=null flags as a possibly-null store (GCC false
/// positive); inline thread_locals need no wrapper.
struct CountingOps {
  static inline thread_local uint64_t Adds = 0, Muls = 0, Divs = 0,
                                      Fmas = 0;
  static void reset() { Adds = Muls = Divs = Fmas = 0; }
  static uint64_t flops() { return Adds + Muls + Divs + 2 * Fmas; }

  static double add(double A, double B) {
    ++Adds;
    return A + B;
  }
  static double sub(double A, double B) {
    ++Adds;
    return A - B;
  }
  static double mul(double A, double B) {
    ++Muls;
    return A * B;
  }
  static double div(double A, double B) {
    ++Divs;
    return A / B;
  }
  static double fma(double A, double B, double C) {
    ++Fmas;
    return __builtin_fma(A, B, C);
  }
};

//===----------------------------------------------------------------------===//
// Error "bounding" transformations under directed rounding
//===----------------------------------------------------------------------===//

/// TwoSum of Fig. 6 (6 flops). Under upward rounding, S + E >= A + B
/// (under downward rounding, <=); in round-to-nearest it is the classical
/// error-free transformation S + E == A + B.
template <class Ops = FastOps>
inline void twoSum(double A, double B, double &S, double &E) {
  S = Ops::add(A, B);
  double A1 = Ops::sub(S, B);
  double B1 = Ops::sub(S, A1);
  double DA = Ops::sub(A, A1);
  double DB = Ops::sub(B, B1);
  E = Ops::add(DA, DB);
}

/// FastTwoSum (3 flops); requires |A| >= |B| (or A == 0). Same directed
/// bound property as twoSum.
template <class Ops = FastOps>
inline void fastTwoSum(double A, double B, double &S, double &E) {
  S = Ops::add(A, B);
  double Z = Ops::sub(S, A);
  E = Ops::sub(B, Z);
}

/// TwoProd via FMA (2 flops, counted as 3). P = RU(A*B) and E is the
/// *exact* residue A*B - P: the residue of a directed-rounded product is
/// exactly representable (barring underflow), so the FMA computes it
/// exactly in any rounding mode. Hence P + E == A * B exactly.
/// (The paper uses Dekker splitting to stay FMA-free; see DESIGN.md
/// substitution 8. Underflow of the residue makes E an upper bound rather
/// than exact under RU, which preserves the directed-bound property.)
template <class Ops = FastOps>
inline void twoProd(double A, double B, double &P, double &E) {
  P = Ops::mul(A, B);
  E = Ops::fma(A, B, -P);
}

//===----------------------------------------------------------------------===//
// Double-double operations, upward-rounded (results are upper bounds)
//===----------------------------------------------------------------------===//

/// DD_Add of Fig. 6 (20 flops). With the FPU rounding upward, returns
/// Z with Z.H + Z.L >= (X.H + X.L) + (Y.H + Y.L) -- Lemma 1.
template <class Ops = FastOps>
inline Dd ddAddUp(const Dd &X, const Dd &Y) {
  assertRoundUpward();
  double SH, SE, TH, TE;
  twoSum<Ops>(X.H, Y.H, SH, SE);
  twoSum<Ops>(X.L, Y.L, TH, TE);
  double C = Ops::add(SE, TH);
  double VH, VE;
  fastTwoSum<Ops>(SH, C, VH, VE);
  double W = Ops::add(TE, VE);
  double ZH, ZL;
  fastTwoSum<Ops>(VH, W, ZH, ZL);
  return Dd(ZH, ZL);
}

template <class Ops = FastOps>
inline Dd ddSubUp(const Dd &X, const Dd &Y) {
  return ddAddUp<Ops>(X, ddNeg(Y));
}

/// Upward-rounded double-double product (14 flops + one FMA):
///   (P, E) = TwoProd(xh, yh)                exact
///   E' = RU(E + RU(RU(xh*yl) + RU(xl*yh)) + RU(xl*yl))  >= true tail
///   Z  = TwoSum(P, E')                      >= P + E' under RU
/// hence Z >= exact product by monotonicity of RU.
template <class Ops = FastOps>
inline Dd ddMulUp(const Dd &X, const Dd &Y) {
  assertRoundUpward();
  double P, E;
  twoProd<Ops>(X.H, Y.H, P, E);
  double C1 = Ops::mul(X.H, Y.L);
  double C2 = Ops::mul(X.L, Y.H);
  double C3 = Ops::mul(X.L, Y.L);
  double S1 = Ops::add(C1, C2);
  double S2 = Ops::add(S1, C3);
  double E2 = Ops::add(E, S2);
  double ZH, ZL;
  twoSum<Ops>(P, E2, ZH, ZL);
  return Dd(ZH, ZL);
}

/// Relative widening margin used by ddDivUp: the double-double division
/// candidate below has relative error well under 2^-102 (Joldes et al.
/// bound degraded by directed rounding); widening by 2^-96 is a 64x safety
/// margin. The absolute floor covers the subnormal range, where rounding
/// errors are multiples of 2^-1074 (a handful per operation); 2^-1065 is
/// 512x headroom while staying negligible for any quotient above ~1e-305.
/// Validated against the expansion oracle in the dd test suites.
inline constexpr double DdDivRelMargin = 0x1p-96;
inline constexpr double DdDivAbsMargin = 0x1p-1065;

/// Upward-rounded double-double quotient: computes an accurate candidate
/// (DWDivDW-style refinement) and widens it upward past the worst-case
/// error so that the result is >= the exact quotient. Requires Y != 0.
template <class Ops = FastOps>
inline Dd ddDivUp(const Dd &X, const Dd &Y) {
  assertRoundUpward();
  double Q1 = Ops::div(X.H, Y.H);
  if (std::isnan(Q1) || std::isinf(Q1))
    return Dd(Q1, 0.0);
  // Residual R = X - Q1*Y, accumulated in plain doubles (the widening
  // absorbs the rounding of the residual path).
  double P, E;
  twoProd<Ops>(Q1, Y.H, P, E);
  double DH = Ops::sub(X.H, P); // Nearly exact (Sterbenz-like cancellation).
  double T1 = Ops::fma(Q1, Y.L, E);
  double D = Ops::add(DH, Ops::sub(X.L, T1));
  double Q2 = Ops::div(D, Y.H);
  double ZH, ZL;
  fastTwoSum<Ops>(Q1, Q2, ZH, ZL);
  // Widen upward beyond the worst-case relative error of the candidate.
  double Margin =
      Ops::add(Ops::mul(std::fabs(ZH), DdDivRelMargin), DdDivAbsMargin);
  double WH, WL;
  twoSum<Ops>(ZH, Ops::add(ZL, Margin), WH, WL);
  return Dd(WH, WL);
}

/// Upward-rounded double-double square root for X >= 0: one Heron step
/// from the hardware sqrt. Soundness is by AM-GM, not by error analysis:
/// for *any* s > 0, (s + x/s)/2 >= sqrt(x), so with ddDivUp and ddAddUp
/// the computed value is an upper bound; starting from s ~ sqrt(x) within
/// 1 ulp it is also tight to ~2^-104 relative.
template <class Ops = FastOps> inline Dd ddSqrtUp(const Dd &X) {
  assertRoundUpward();
  int Sign = X.sign();
  if (Sign == 0)
    return Dd(0.0);
  if (Sign < 0 || X.hasNaN())
    return Dd(std::numeric_limits<double>::quiet_NaN(), 0.0);
  if (X.H <= 0.0 || std::isinf(X.H)) // denormal-high or infinite: crude
    return Dd(std::sqrt(X.H + X.L) * (1 + 0x1p-50), 0.0);
  double S = std::sqrt(X.H); // RU hardware sqrt: fine as Heron seed
  Dd Q = ddDivUp<Ops>(X, Dd(S));
  Dd Sum = ddAddUp<Ops>(Dd(S), Q);
  return Dd(0.5 * Sum.H, 0.5 * Sum.L); // exact halving
}

/// Downward-rounded double-double square root for X >= 0: x/sqrt_up(x)
/// computed downward (sqrt(x) == x / sqrt(x), and dividing by an upper
/// bound from below yields a lower bound).
template <class Ops = FastOps> inline Dd ddSqrtDown(const Dd &X) {
  assertRoundUpward();
  int Sign = X.sign();
  if (Sign == 0)
    return Dd(0.0);
  if (Sign < 0 || X.hasNaN())
    return Dd(std::numeric_limits<double>::quiet_NaN(), 0.0);
  Dd Up = ddSqrtUp<Ops>(X);
  if (Up.hasNaN() || Up.sign() <= 0)
    return Dd(0.0); // sound: sqrt(x) >= 0
  // RD(x / up) == -RU((-x) / up).
  return ddNeg(ddDivUp<Ops>(ddNeg(X), Up));
}

/// Upper bound of the double-double X as a single double: RU(H + L).
inline double ddToDoubleUp(const Dd &X) {
  assertRoundUpward();
  return X.H + X.L;
}

/// Converts X to the nearest double (used when rounding certified
/// double-double results back to double precision). Under directed
/// rounding the H word is *not* the nearest double, so the words are
/// re-added once in round-to-nearest: a single RN addition correctly
/// rounds the exact sum H + L.
inline double ddToDoubleNearest(const Dd &X) {
  RoundNearestScope RN;
  // Both barriers matter: the first pins the operands below the mode
  // switch, the second pins the addition above the mode restore (GCC may
  // otherwise schedule FP operations across fesetround()).
  return opaque(opaque(X.H) + X.L);
}

} // namespace igen

#endif // IGEN_INTERVAL_DOUBLEDOUBLE_H
