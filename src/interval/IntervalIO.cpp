//===- IntervalIO.cpp - Textual formatting of intervals ----------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalIO.h"

#include "support/StringExtras.h"

using namespace igen;

std::string igen::toString(const Interval &X) {
  return formatString("[%.17g, %.17g]", -X.NegLo, X.Hi);
}

std::string igen::toString(const Dd &X) {
  return formatString("(%.17g + %.9g)", X.H, X.L);
}

std::string igen::toString(const DdInterval &X) {
  return "[" + toString(ddNeg(X.NegLo)) + ", " + toString(X.Hi) + "]";
}
