//===- igen_lib.h - Runtime API for IGen-generated code ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval runtime interface that IGen-generated code compiles
/// against (the `#include "igen_lib.h"` of Fig. 2). It exposes C-style
/// type names and functions (f64i, ddi, tbool, ia_add_f64, ...) backed by
/// the C++ interval library; generated sources are compiled as C++.
///
/// Configuration macros (define before including):
///   IGEN_F64I_SCALAR  -- f64i is the scalar two-double struct and ddi the
///                        scalar double-double struct (the IGen-ss
///                        configuration). Default: SIMD-backed types
///                        (f64i in one SSE register, ddi in one AVX
///                        register; IGen-sv / IGen-vv / *-dd).
///   IGEN_BATCH_RUNTIME -- back the ia_arr_* batched array operations
///                        with the runtime-dispatched SIMD kernels from
///                        runtime/BatchKernels.h (requires linking
///                        igen_runtime). Default: portable per-element
///                        loops with identical enclosures.
///
/// The caller must run generated functions inside igen::RoundUpwardScope.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_IGEN_LIB_H
#define IGEN_INTERVAL_IGEN_LIB_H

#include "interval/Accumulator.h"
#include "interval/DdInterval.h"
#include "interval/DdSimd.h"
#include "interval/Elementary.h"
#include "interval/Interval.h"
#include "interval/Interval32.h"
#include "interval/IntervalSimd.h"
#include "interval/IntervalVector.h"
#include "interval/PolyKernels.h"
#include "interval/TBool.h"

#if defined(IGEN_BATCH_RUNTIME)
#include "runtime/BatchKernels.h"
#endif

#include <cmath>

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

// The whole API lives in a configuration-specific namespace pulled in by a
// using-directive: a binary may then link translation units built with
// *different* configurations (e.g. an IGen-ss kernel next to an IGen-sv
// kernel in one benchmark) without ODR violations between same-named
// inline functions whose definitions differ.
#if defined(IGEN_F64I_SCALAR)
namespace igen_cfg_scalar {
#else
namespace igen_cfg_simd {
#endif

#if defined(IGEN_F64I_SCALAR)
typedef igen::Interval f64i;
typedef igen::DdInterval ddi;
#else
typedef igen::IntervalSse f64i;
typedef igen::DdIntervalAvx ddi;
#endif

typedef igen::TBool tbool;
typedef igen::SumAccumulatorF64 acc_f64;

/// Vector-of-interval types (Table II): 2k double intervals in k AVX
/// registers.
typedef igen::M256di1 m256di_1;
typedef igen::M256di2 m256di_2;
typedef igen::M256di4 m256di_4;

/// Double-double vectors: SIMD inputs compiled to double-double use k
/// element-wise ddi values (the automatic path of Section V).
struct ddi_2 {
  ddi v[2];
};
struct ddi_4 {
  ddi v[4];
};
struct ddi_8 {
  ddi v[8];
};

//===----------------------------------------------------------------------===//
// f64i operations
//===----------------------------------------------------------------------===//

inline f64i ia_set_f64(double Lo, double Hi) {
  return f64i::fromEndpoints(Lo, Hi);
}
inline f64i ia_cst_f64(double X) { return f64i::fromPoint(X); }
inline f64i ia_set_tol_f64(double X, double Tol) {
#if defined(IGEN_F64I_SCALAR)
  return igen::iSetTol(X, Tol);
#else
  return f64i::fromInterval(igen::iSetTol(X, Tol));
#endif
}

inline double ia_inf_f64(f64i X) {
#if defined(IGEN_F64I_SCALAR)
  return -X.NegLo;
#else
  return X.lo();
#endif
}
inline double ia_sup_f64(f64i X) {
#if defined(IGEN_F64I_SCALAR)
  return X.Hi;
#else
  return X.hi();
#endif
}

inline f64i ia_add_f64(f64i A, f64i B) { return igen::iAdd(A, B); }
inline f64i ia_sub_f64(f64i A, f64i B) { return igen::iSub(A, B); }
inline f64i ia_mul_f64(f64i A, f64i B) { return igen::iMul(A, B); }
inline f64i ia_div_f64(f64i A, f64i B) { return igen::iDiv(A, B); }
inline f64i ia_neg_f64(f64i A) { return igen::iNeg(A); }

// Sign-specialized variants and fused multiply-add, emitted by the
// transformer's -O mid-end when its value-range analysis proves operand
// signs (p = nonnegative, n = nonpositive, u = unknown; the last letter of
// a mul/fma suffix describes the second operand). Semantically identical
// to the generic calls -- each falls back to them at runtime if its
// precondition turns out violated -- just cheaper.
inline f64i ia_mul_pp_f64(f64i A, f64i B) { return igen::iMulPP(A, B); }
inline f64i ia_mul_pn_f64(f64i A, f64i B) { return igen::iMulPN(A, B); }
inline f64i ia_mul_nn_f64(f64i A, f64i B) { return igen::iMulNN(A, B); }
inline f64i ia_mul_pu_f64(f64i A, f64i B) { return igen::iMulPU(A, B); }
inline f64i ia_mul_nu_f64(f64i A, f64i B) { return igen::iMulNU(A, B); }
inline f64i ia_div_p_f64(f64i A, f64i B) { return igen::iDivP(A, B); }
inline f64i ia_div_n_f64(f64i A, f64i B) { return igen::iDivN(A, B); }
inline f64i ia_fma_f64(f64i A, f64i B, f64i C) {
  return igen::iFma(A, B, C);
}
inline f64i ia_fma_pp_f64(f64i A, f64i B, f64i C) {
  return igen::iFmaPP(A, B, C);
}
inline f64i ia_fma_pn_f64(f64i A, f64i B, f64i C) {
  return igen::iFmaPN(A, B, C);
}
inline f64i ia_fma_nn_f64(f64i A, f64i B, f64i C) {
  return igen::iFmaNN(A, B, C);
}
inline f64i ia_fma_pu_f64(f64i A, f64i B, f64i C) {
  return igen::iFmaPU(A, B, C);
}
inline f64i ia_fma_nu_f64(f64i A, f64i B, f64i C) {
  return igen::iFmaNU(A, B, C);
}

inline f64i ia_sqrt_f64(f64i A) { return igen::iSqrt(A); }
inline f64i ia_abs_f64(f64i A) { return igen::iAbs(A); }
inline f64i ia_floor_f64(f64i A) { return igen::iFloor(A); }
inline f64i ia_ceil_f64(f64i A) { return igen::iCeil(A); }
inline f64i ia_join_f64(f64i A, f64i B) { return igen::iHull(A, B); }
inline f64i ia_min_f64(f64i A, f64i B) {
#if defined(IGEN_F64I_SCALAR)
  return igen::iMin(A, B);
#else
  return f64i::fromInterval(igen::iMin(A.toInterval(), B.toInterval()));
#endif
}
inline f64i ia_max_f64(f64i A, f64i B) {
#if defined(IGEN_F64I_SCALAR)
  return igen::iMax(A, B);
#else
  return f64i::fromInterval(igen::iMax(A.toInterval(), B.toInterval()));
#endif
}
/// Rounds the interval outward to the single-precision grid: sound
/// replacement for a (float) cast in the source (values are promoted to
/// double intervals, Table II).
inline f64i ia_f32cast_f64(f64i A) {
#if defined(IGEN_F64I_SCALAR)
  return igen::Interval32::fromInterval(A).widen();
#else
  return f64i::fromInterval(
      igen::Interval32::fromInterval(A.toInterval()).widen());
#endif
}

#if defined(IGEN_F64I_SCALAR)
inline f64i ia_exp_f64(f64i A) { return igen::iExp(A); }
inline f64i ia_log_f64(f64i A) { return igen::iLog(A); }
inline f64i ia_sin_f64(f64i A) { return igen::iSin(A); }
inline f64i ia_cos_f64(f64i A) { return igen::iCos(A); }
inline f64i ia_tan_f64(f64i A) { return igen::iTan(A); }
inline f64i ia_atan_f64(f64i A) { return igen::iAtan(A); }
inline f64i ia_asin_f64(f64i A) { return igen::iAsin(A); }
inline f64i ia_acos_f64(f64i A) { return igen::iAcos(A); }
#else
inline f64i ia_exp_f64(f64i A) {
  return f64i::fromInterval(igen::iExp(A.toInterval()));
}
inline f64i ia_log_f64(f64i A) {
  return f64i::fromInterval(igen::iLog(A.toInterval()));
}
inline f64i ia_sin_f64(f64i A) {
  return f64i::fromInterval(igen::iSin(A.toInterval()));
}
inline f64i ia_cos_f64(f64i A) {
  return f64i::fromInterval(igen::iCos(A.toInterval()));
}
inline f64i ia_tan_f64(f64i A) {
  return f64i::fromInterval(igen::iTan(A.toInterval()));
}
inline f64i ia_atan_f64(f64i A) {
  return f64i::fromInterval(igen::iAtan(A.toInterval()));
}
inline f64i ia_asin_f64(f64i A) {
  return f64i::fromInterval(igen::iAsin(A.toInterval()));
}
inline f64i ia_acos_f64(f64i A) {
  return f64i::fromInterval(igen::iAcos(A.toInterval()));
}
#endif

/// Certified polynomial fast paths (interval/PolyKernels.h), emitted by
/// the transform at -O1 and above in place of the libm-widened versions:
/// no rounding-mode switch per call, and the enclosure is widened by the
/// statically certified kernel bound instead of the libm ulp band.
/// Outside the fast domain they defer to the libm path, so they accept
/// the same inputs as the plain versions.
#if defined(IGEN_F64I_SCALAR)
inline f64i ia_exp_fast_f64(f64i A) { return igen::iExpFast(A); }
inline f64i ia_log_fast_f64(f64i A) { return igen::iLogFast(A); }
inline f64i ia_sin_fast_f64(f64i A) { return igen::iSinFast(A); }
inline f64i ia_cos_fast_f64(f64i A) { return igen::iCosFast(A); }
#else
inline f64i ia_exp_fast_f64(f64i A) {
  return f64i::fromInterval(igen::iExpFast(A.toInterval()));
}
inline f64i ia_log_fast_f64(f64i A) {
  return f64i::fromInterval(igen::iLogFast(A.toInterval()));
}
inline f64i ia_sin_fast_f64(f64i A) {
  return f64i::fromInterval(igen::iSinFast(A.toInterval()));
}
inline f64i ia_cos_fast_f64(f64i A) {
  return f64i::fromInterval(igen::iCosFast(A.toInterval()));
}
#endif

inline tbool ia_cmplt_f64(f64i A, f64i B) { return igen::iCmpLT(A, B); }
inline tbool ia_cmple_f64(f64i A, f64i B) { return igen::iCmpLE(A, B); }
inline tbool ia_cmpgt_f64(f64i A, f64i B) { return igen::iCmpGT(A, B); }
inline tbool ia_cmpge_f64(f64i A, f64i B) { return igen::iCmpGE(A, B); }
inline tbool ia_cmpeq_f64(f64i A, f64i B) { return igen::iCmpEQ(A, B); }
inline tbool ia_cmpne_f64(f64i A, f64i B) { return igen::iCmpNE(A, B); }

//===----------------------------------------------------------------------===//
// Batched array operations (driver --batch-loops)
//===----------------------------------------------------------------------===//
//
// Elementwise whole-array forms of the core operations, emitted by the
// transform for recognized `d[i] = a[i] OP b[i]` loops. With
// IGEN_BATCH_RUNTIME defined they dispatch to the runtime's SIMD-tiered
// kernels (one rounding-mode switch per call instead of per element);
// otherwise they are portable per-element loops. Both modes compute
// identical enclosures. Division bit patterns may differ between the two
// modes on inputs where the sign-specialized routing and the generic
// quotient enumeration resolve signed-zero candidate ties differently;
// within either mode results are deterministic.

#if defined(IGEN_BATCH_RUNTIME)
inline void ia_arr_add_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  igen::runtime::iarr_add(D, A, B, N);
}
inline void ia_arr_sub_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  igen::runtime::iarr_sub(D, A, B, N);
}
inline void ia_arr_mul_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  igen::runtime::iarr_mul(D, A, B, N);
}
inline void ia_arr_div_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  igen::runtime::iarr_div(D, A, B, N);
}
inline void ia_arr_sqrt_f64(f64i *D, const f64i *A, unsigned long N) {
  igen::runtime::iarr_sqrt(D, A, N);
}
#else
inline void ia_arr_add_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  for (unsigned long I = 0; I < N; ++I)
    D[I] = ia_add_f64(A[I], B[I]);
}
inline void ia_arr_sub_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  for (unsigned long I = 0; I < N; ++I)
    D[I] = ia_sub_f64(A[I], B[I]);
}
inline void ia_arr_mul_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  for (unsigned long I = 0; I < N; ++I)
    D[I] = ia_mul_f64(A[I], B[I]);
}
inline void ia_arr_div_f64(f64i *D, const f64i *A, const f64i *B,
                           unsigned long N) {
  for (unsigned long I = 0; I < N; ++I)
    D[I] = ia_div_f64(A[I], B[I]);
}
inline void ia_arr_sqrt_f64(f64i *D, const f64i *A, unsigned long N) {
  for (unsigned long I = 0; I < N; ++I)
    D[I] = ia_sqrt_f64(A[I]);
}
#endif

//===----------------------------------------------------------------------===//
// tbool operations
//===----------------------------------------------------------------------===//

inline bool ia_cvt2bool_tb(tbool B) { return igen::cvt2Bool(B); }
inline tbool ia_and_tb(tbool A, tbool B) { return igen::tboolAnd(A, B); }
inline tbool ia_or_tb(tbool A, tbool B) { return igen::tboolOr(A, B); }
inline tbool ia_not_tb(tbool A) { return igen::tboolNot(A); }
inline tbool ia_bool2tb(int B) { return igen::tboolFromBool(B != 0); }
inline bool ia_istrue_tb(tbool B) { return B == igen::TBool::True; }
inline bool ia_isfalse_tb(tbool B) { return B == igen::TBool::False; }

//===----------------------------------------------------------------------===//
// f64i reduction accumulator (Section VI-B)
//===----------------------------------------------------------------------===//

inline void isum_init_f64(acc_f64 *Acc, f64i First) { Acc->init(First); }
inline void isum_accumulate_f64(acc_f64 *Acc, f64i T) {
  Acc->accumulate(T);
}
inline f64i isum_reduce_f64(const acc_f64 *Acc) {
#if defined(IGEN_F64I_SCALAR)
  return Acc->reduce();
#else
  return f64i::fromInterval(Acc->reduce());
#endif
}

//===----------------------------------------------------------------------===//
// ddi operations
//===----------------------------------------------------------------------===//

namespace igen_detail {
#if defined(IGEN_F64I_SCALAR)
inline ddi ddiFromScalar(const igen::DdInterval &I) { return I; }
inline igen::DdInterval ddiToScalar(const ddi &I) { return I; }
#else
inline ddi ddiFromScalar(const igen::DdInterval &I) {
  return ddi::fromScalar(I);
}
inline igen::DdInterval ddiToScalar(const ddi &I) { return I.toScalar(); }
#endif
} // namespace igen_detail

inline ddi ia_set_dd(double Lo, double Hi) {
  return igen_detail::ddiFromScalar(
      igen::DdInterval(igen::Dd(-Lo), igen::Dd(Hi)));
}
/// Full double-double endpoints: [LoH + LoL, HiH + HiL].
inline ddi ia_set_ddc(double LoH, double LoL, double HiH, double HiL) {
  return igen_detail::ddiFromScalar(igen::DdInterval(
      igen::Dd(-LoH, -LoL), igen::Dd(HiH, HiL)));
}
inline ddi ia_cst_dd(double X) {
  return igen_detail::ddiFromScalar(igen::DdInterval::fromPoint(X));
}
inline ddi ia_set_tol_dd(double X, double Tol) {
  return igen_detail::ddiFromScalar(
      igen::DdInterval::fromInterval(igen::iSetTol(X, Tol)));
}

inline ddi ia_add_dd(ddi A, ddi B) { return igen::ddiAdd(A, B); }
inline ddi ia_sub_dd(ddi A, ddi B) { return igen::ddiSub(A, B); }
inline ddi ia_mul_dd(ddi A, ddi B) { return igen::ddiMul(A, B); }
inline ddi ia_div_dd(ddi A, ddi B) { return igen::ddiDiv(A, B); }
inline ddi ia_neg_dd(ddi A) { return igen::ddiNeg(A); }

/// Double-double sqrt/abs are computed on the scalar representation.
inline ddi ia_abs_dd(ddi A) {
  igen::DdInterval S = igen_detail::ddiToScalar(A);
  if (S.hasNaN())
    return igen_detail::ddiFromScalar(igen::DdInterval::nan());
  if (S.NegLo.sign() <= 0)
    return A;
  if (S.Hi.sign() <= 0)
    return ia_neg_dd(A);
  return igen_detail::ddiFromScalar(igen::DdInterval(
      igen::Dd(0.0), igen::ddMax(S.NegLo, S.Hi)));
}

/// sqrt on ddi endpoints at full double-double accuracy: Heron-step
/// directed bounds (ddSqrtUp/ddSqrtDown). Negative lower endpoints yield
/// a NaN lower endpoint, as in the double-precision sqrt (Section IV-A).
inline ddi ia_sqrt_dd(ddi A) {
  igen::DdInterval S = igen_detail::ddiToScalar(A);
  if (S.hasNaN() || S.Hi.sign() < 0)
    return igen_detail::ddiFromScalar(igen::DdInterval::nan());
  igen::Dd Hi = igen::ddSqrtUp(S.Hi);
  igen::Dd Lo = igen::ddNeg(S.NegLo);
  if (Lo.sign() < 0)
    return igen_detail::ddiFromScalar(igen::DdInterval(
        igen::Dd(std::numeric_limits<double>::quiet_NaN(), 0.0), Hi));
  return igen_detail::ddiFromScalar(
      igen::DdInterval::fromEndpoints(igen::ddSqrtDown(Lo), Hi));
}

inline ddi ia_min_dd(ddi A, ddi B) {
  return igen_detail::ddiFromScalar(igen::ddiMin(
      igen_detail::ddiToScalar(A), igen_detail::ddiToScalar(B)));
}
inline ddi ia_max_dd(ddi A, ddi B) {
  return igen_detail::ddiFromScalar(igen::ddiMax(
      igen_detail::ddiToScalar(A), igen_detail::ddiToScalar(B)));
}
inline ddi ia_f32cast_dd(ddi A) {
  igen::Interval Hull = igen_detail::ddiToScalar(A).outerHull();
  return igen_detail::ddiFromScalar(igen::DdInterval::fromInterval(
      igen::Interval32::fromInterval(Hull).widen()));
}

/// Elementary functions on ddi fall back to the double-precision kernels
/// applied to the outer f64 hull of the argument: the result encloses the
/// true image (the hull encloses the argument, the f64 kernel is sound on
/// the hull), it is just no tighter than the f64 enclosure of a hull-wide
/// input. This is what makes transcendental kernels *compile* at the ddi
/// tier — the error amplification through exp/log/sin/cos is still
/// computed at dd precision everywhere else, and for the adaptive tiering
/// path (igen --tier) the escalated re-execution only needs the dd
/// arithmetic around these calls to recover the cancellation losses.
#define IGEN_DD_HULL_FALLBACK(NAME, F64_KERNEL)                              \
  inline ddi ia_##NAME##_dd(ddi A) {                                         \
    igen::Interval H = igen_detail::ddiToScalar(A).outerHull();              \
    return igen_detail::ddiFromScalar(                                       \
        igen::DdInterval::fromInterval(igen::F64_KERNEL(H)));                \
  }

IGEN_DD_HULL_FALLBACK(exp, iExp)
IGEN_DD_HULL_FALLBACK(log, iLog)
IGEN_DD_HULL_FALLBACK(sin, iSin)
IGEN_DD_HULL_FALLBACK(cos, iCos)
IGEN_DD_HULL_FALLBACK(tan, iTan)
IGEN_DD_HULL_FALLBACK(atan, iAtan)
IGEN_DD_HULL_FALLBACK(asin, iAsin)
IGEN_DD_HULL_FALLBACK(acos, iAcos)
IGEN_DD_HULL_FALLBACK(floor, iFloor)
IGEN_DD_HULL_FALLBACK(ceil, iCeil)

#undef IGEN_DD_HULL_FALLBACK

//===----------------------------------------------------------------------===//
// Precision-tier conversions (igen --tier, Section VI-A ladder)
//===----------------------------------------------------------------------===//

/// Exact f64i -> ddi promotion: every double endpoint is representable as
/// a double-double, so the promoted interval is the same set of reals.
/// Free of rounding; used to lift an escalation region's live-in snapshot
/// onto the ddi tier.
inline ddi ia_promote_f64_dd(f64i X) {
#if defined(IGEN_F64I_SCALAR)
  return igen_detail::ddiFromScalar(igen::DdInterval::fromInterval(X));
#else
  return igen_detail::ddiFromScalar(
      igen::DdInterval::fromInterval(X.toInterval()));
#endif
}

/// Sound ddi -> f64i narrowing: the outer double hull (lo rounded down,
/// hi rounded up), i.e. the tightest f64i superset of the ddi enclosure.
inline f64i ia_narrow_dd_f64(ddi X) {
  igen::Interval H = igen_detail::ddiToScalar(X).outerHull();
#if defined(IGEN_F64I_SCALAR)
  return H;
#else
  return f64i::fromInterval(H);
#endif
}

/// Intersection of two enclosures of the same real value: both are sound,
/// so their intersection is sound and at least as tight as either. NaN
/// endpoints act as "unbounded" (fmax/fmin ignore them); a numerically
/// empty meet — impossible for two sound enclosures of one value, but
/// reachable if a caller intersects unrelated intervals — degrades to the
/// first argument. Used by --tier to combine the f64i result with the
/// narrowed re-executed ddi result.
inline f64i ia_meet_f64(f64i A, f64i B) {
  double Lo = std::fmax(ia_inf_f64(A), ia_inf_f64(B));
  double Hi = std::fmin(ia_sup_f64(A), ia_sup_f64(B));
  if (!(Lo <= Hi))
    return A;
  return ia_set_f64(Lo, Hi);
}

inline tbool ia_cmplt_dd(ddi A, ddi B) { return igen::ddiCmpLT(A, B); }
inline tbool ia_cmple_dd(ddi A, ddi B) { return igen::ddiCmpLE(A, B); }
inline tbool ia_cmpgt_dd(ddi A, ddi B) { return igen::ddiCmpGT(A, B); }
inline tbool ia_cmpge_dd(ddi A, ddi B) { return igen::ddiCmpGE(A, B); }

inline ddi ia_join_dd(ddi A, ddi B) {
  return igen_detail::ddiFromScalar(igen::ddiHull(
      igen_detail::ddiToScalar(A), igen_detail::ddiToScalar(B)));
}

/// Double-double reduction accumulator (exponent-indexed exact array).
typedef igen::SumAccumulatorDd acc_dd;

inline void isum_init_dd(acc_dd *Acc, ddi First) {
  Acc->init(igen_detail::ddiToScalar(First));
}
inline void isum_accumulate_dd(acc_dd *Acc, ddi T) {
  Acc->accumulate(igen_detail::ddiToScalar(T));
}
inline ddi isum_reduce_dd(const acc_dd *Acc) {
  return igen_detail::ddiFromScalar(Acc->reduce());
}

//===----------------------------------------------------------------------===//
// Vector-of-interval operations (IGen-vv)
//===----------------------------------------------------------------------===//

inline m256di_1 ia_add_m256di_1(m256di_1 A, m256di_1 B) {
  return igen::iAdd(A, B);
}
inline m256di_1 ia_sub_m256di_1(m256di_1 A, m256di_1 B) {
  return igen::iSub(A, B);
}
inline m256di_1 ia_mul_m256di_1(m256di_1 A, m256di_1 B) {
  return igen::iMul(A, B);
}
inline m256di_1 ia_div_m256di_1(m256di_1 A, m256di_1 B) {
  return igen::iDiv(A, B);
}
inline m256di_1 ia_fma_m256di_1(m256di_1 A, m256di_1 B, m256di_1 C) {
  return igen::iFma(A, B, C);
}

inline m256di_2 ia_add_m256di_2(m256di_2 A, m256di_2 B) {
  return igen::iAdd(A, B);
}
inline m256di_2 ia_sub_m256di_2(m256di_2 A, m256di_2 B) {
  return igen::iSub(A, B);
}
inline m256di_2 ia_mul_m256di_2(m256di_2 A, m256di_2 B) {
  return igen::iMul(A, B);
}
inline m256di_2 ia_div_m256di_2(m256di_2 A, m256di_2 B) {
  return igen::iDiv(A, B);
}
inline m256di_2 ia_fma_m256di_2(m256di_2 A, m256di_2 B, m256di_2 C) {
  return igen::iFma(A, B, C);
}
inline m256di_2 ia_sqrt_m256di_2(m256di_2 A) { return igen::iSqrt(A); }

inline m256di_4 ia_add_m256di_4(m256di_4 A, m256di_4 B) {
  return igen::iAdd(A, B);
}
inline m256di_4 ia_sub_m256di_4(m256di_4 A, m256di_4 B) {
  return igen::iSub(A, B);
}
inline m256di_4 ia_mul_m256di_4(m256di_4 A, m256di_4 B) {
  return igen::iMul(A, B);
}
inline m256di_4 ia_div_m256di_4(m256di_4 A, m256di_4 B) {
  return igen::iDiv(A, B);
}
inline m256di_4 ia_fma_m256di_4(m256di_4 A, m256di_4 B, m256di_4 C) {
  return igen::iFma(A, B, C);
}

/// Loads/stores: an array of f64i has the layout [-lo0|hi0|-lo1|hi1|...],
/// exactly the m256di layout, so a __m256d load of 4 doubles becomes two
/// AVX loads of 4 interval halves.
inline m256di_2 ia_loadu_m256di_2(const f64i *P) {
  const double *D = reinterpret_cast<const double *>(P);
  m256di_2 R;
  R.Part[0] = igen::IntervalX2(_mm256_loadu_pd(D));
  R.Part[1] = igen::IntervalX2(_mm256_loadu_pd(D + 4));
  return R;
}
inline void ia_storeu_m256di_2(f64i *P, m256di_2 V) {
  double *D = reinterpret_cast<double *>(P);
  _mm256_storeu_pd(D, V.Part[0].V);
  _mm256_storeu_pd(D + 4, V.Part[1].V);
}
inline m256di_4 ia_loadu_m256di_4(const f64i *P) {
  const double *D = reinterpret_cast<const double *>(P);
  m256di_4 R;
  for (int I = 0; I < 4; ++I)
    R.Part[I] = igen::IntervalX2(_mm256_loadu_pd(D + 4 * I));
  return R;
}
inline void ia_storeu_m256di_4(f64i *P, m256di_4 V) {
  double *D = reinterpret_cast<double *>(P);
  for (int I = 0; I < 4; ++I)
    _mm256_storeu_pd(D + 4 * I, V.Part[I].V);
}
inline m256di_1 ia_loadu_m256di_1(const f64i *P) {
  m256di_1 R;
  R.Part[0] =
      igen::IntervalX2(_mm256_loadu_pd(reinterpret_cast<const double *>(P)));
  return R;
}
inline void ia_storeu_m256di_1(f64i *P, m256di_1 V) {
  _mm256_storeu_pd(reinterpret_cast<double *>(P), V.Part[0].V);
}
inline m256di_2 ia_set1_m256di_2(f64i X) {
#if defined(IGEN_F64I_SCALAR)
  igen::Interval I = X;
#else
  igen::Interval I = X.toInterval();
#endif
  m256di_2 R;
  R.Part[0] = igen::IntervalX2::broadcast(I);
  R.Part[1] = igen::IntervalX2::broadcast(I);
  return R;
}
inline m256di_1 ia_setzero_m256di_1() { return m256di_1(); }
inline m256di_2 ia_setzero_m256di_2() { return m256di_2(); }
inline m256di_4 ia_setzero_m256di_4() { return m256di_4(); }
inline m256di_1 ia_set1_m256di_1(f64i X) {
#if defined(IGEN_F64I_SCALAR)
  igen::Interval I = X;
#else
  igen::Interval I = X.toInterval();
#endif
  m256di_1 R;
  R.Part[0] = igen::IntervalX2::broadcast(I);
  return R;
}
/// Mirrors _mm256_set_pd(e3, e2, e1, e0): element i of the result is Ei.
inline m256di_2 ia_set_m256di_2(f64i E3, f64i E2, f64i E1, f64i E0) {
#if defined(IGEN_F64I_SCALAR)
  igen::Interval I0 = E0, I1 = E1, I2 = E2, I3 = E3;
#else
  igen::Interval I0 = E0.toInterval(), I1 = E1.toInterval(),
                 I2 = E2.toInterval(), I3 = E3.toInterval();
#endif
  m256di_2 R;
  R.Part[0] = igen::IntervalX2::fromIntervals(I0, I1);
  R.Part[1] = igen::IntervalX2::fromIntervals(I2, I3);
  return R;
}
/// Extracts interval lane \p I.
inline f64i ia_extract_m256di_1(m256di_1 V, int I) {
#if defined(IGEN_F64I_SCALAR)
  return V.Part[0].interval(I);
#else
  return f64i::fromInterval(V.Part[0].interval(I));
#endif
}
inline f64i ia_extract_m256di_2(m256di_2 V, int I) {
#if defined(IGEN_F64I_SCALAR)
  return V.interval(I);
#else
  return f64i::fromInterval(V.interval(I));
#endif
}
/// _mm_cvtsd_f64 equivalent: the low interval of the vector.
inline f64i ia_extract0_m256di_1(m256di_1 V) {
  return ia_extract_m256di_1(V, 0);
}

/// _mm256_extractf128_pd equivalent: intervals {2*Imm, 2*Imm+1}.
inline m256di_1 ia_extractf128_m256di_2(m256di_2 V, int Imm) {
  m256di_1 R;
  R.Part[0] = V.Part[Imm & 1];
  return R;
}
/// _mm256_castpd256_pd128 equivalent: the low two intervals.
inline m256di_1 ia_castlow_m256di_2(m256di_2 V) {
  m256di_1 R;
  R.Part[0] = V.Part[0];
  return R;
}

//===----------------------------------------------------------------------===//
// Element-wise double-double vectors (IGen-vv-dd)
//===----------------------------------------------------------------------===//

inline ddi_2 ia_add_ddi_2(ddi_2 A, ddi_2 B) {
  ddi_2 R;
  for (int I = 0; I < 2; ++I)
    R.v[I] = ia_add_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_2 ia_sub_ddi_2(ddi_2 A, ddi_2 B) {
  ddi_2 R;
  for (int I = 0; I < 2; ++I)
    R.v[I] = ia_sub_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_2 ia_mul_ddi_2(ddi_2 A, ddi_2 B) {
  ddi_2 R;
  for (int I = 0; I < 2; ++I)
    R.v[I] = ia_mul_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_4 ia_add_ddi_4(ddi_4 A, ddi_4 B) {
  ddi_4 R;
  for (int I = 0; I < 4; ++I)
    R.v[I] = ia_add_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_4 ia_sub_ddi_4(ddi_4 A, ddi_4 B) {
  ddi_4 R;
  for (int I = 0; I < 4; ++I)
    R.v[I] = ia_sub_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_4 ia_mul_ddi_4(ddi_4 A, ddi_4 B) {
  ddi_4 R;
  for (int I = 0; I < 4; ++I)
    R.v[I] = ia_mul_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_4 ia_mul_ddi_4(ddi_4 A, ddi_4 B);
inline ddi_2 ia_loadu_ddi_2(const ddi *P) {
  ddi_2 R;
  R.v[0] = P[0];
  R.v[1] = P[1];
  return R;
}
inline void ia_storeu_ddi_2(ddi *P, ddi_2 V) {
  P[0] = V.v[0];
  P[1] = V.v[1];
}
inline ddi_2 ia_set1_ddi_2(ddi X) {
  ddi_2 R;
  R.v[0] = X;
  R.v[1] = X;
  return R;
}
inline ddi_4 ia_loadu_ddi_4(const ddi *P) {
  ddi_4 R;
  for (int I = 0; I < 4; ++I)
    R.v[I] = P[I];
  return R;
}
inline void ia_storeu_ddi_4(ddi *P, ddi_4 V) {
  for (int I = 0; I < 4; ++I)
    P[I] = V.v[I];
}
inline ddi_4 ia_set1_ddi_4(ddi X) {
  ddi_4 R;
  for (int I = 0; I < 4; ++I)
    R.v[I] = X;
  return R;
}
inline ddi_4 ia_set_ddi_4(ddi E3, ddi E2, ddi E1, ddi E0) {
  ddi_4 R;
  R.v[0] = E0;
  R.v[1] = E1;
  R.v[2] = E2;
  R.v[3] = E3;
  return R;
}
inline ddi_2 ia_setzero_ddi_2() {
  return ia_set1_ddi_2(ia_cst_dd(0.0));
}
inline ddi_4 ia_setzero_ddi_4() {
  return ia_set1_ddi_4(ia_cst_dd(0.0));
}
inline ddi_8 ia_loadu_ddi_8(const ddi *P) {
  ddi_8 R;
  for (int I = 0; I < 8; ++I)
    R.v[I] = P[I];
  return R;
}
inline void ia_storeu_ddi_8(ddi *P, ddi_8 V) {
  for (int I = 0; I < 8; ++I)
    P[I] = V.v[I];
}
inline ddi_2 ia_extractf128_ddi_4(ddi_4 V, int Imm) {
  ddi_2 R;
  R.v[0] = V.v[2 * (Imm & 1)];
  R.v[1] = V.v[2 * (Imm & 1) + 1];
  return R;
}
inline ddi_2 ia_castlow_ddi_4(ddi_4 V) {
  ddi_2 R;
  R.v[0] = V.v[0];
  R.v[1] = V.v[1];
  return R;
}
inline ddi ia_extract0_ddi_2(ddi_2 V) { return V.v[0]; }
inline ddi ia_extract_ddi_2(ddi_2 V, int I) { return V.v[I]; }
inline ddi ia_extract_ddi_4(ddi_4 V, int I) { return V.v[I]; }
inline ddi_4 ia_div_ddi_4(ddi_4 A, ddi_4 B) {
  ddi_4 R;
  for (int I = 0; I < 4; ++I)
    R.v[I] = ia_div_dd(A.v[I], B.v[I]);
  return R;
}
inline ddi_2 ia_div_ddi_2(ddi_2 A, ddi_2 B) {
  ddi_2 R;
  for (int I = 0; I < 2; ++I)
    R.v[I] = ia_div_dd(A.v[I], B.v[I]);
  return R;
}

#if defined(IGEN_F64I_SCALAR)
} // namespace igen_cfg_scalar
using namespace igen_cfg_scalar;
#else
} // namespace igen_cfg_simd
using namespace igen_cfg_simd;
#endif

#endif // IGEN_INTERVAL_IGEN_LIB_H
