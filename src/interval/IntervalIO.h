//===- IntervalIO.h - Textual formatting of intervals -----------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable formatting of interval values ("[0.09999999999999999,
/// 0.10000000000000001]"), for logging, debugging and the examples. The
/// printed endpoints round-trip (%.17g).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_INTERVALIO_H
#define IGEN_INTERVAL_INTERVALIO_H

#include "interval/DdInterval.h"
#include "interval/Interval.h"

#include <string>

namespace igen {

/// "[lo, hi]"; NaN endpoints print as "nan".
std::string toString(const Interval &X);

/// "[loH + loL, hiH + hiL]".
std::string toString(const DdInterval &X);

/// "(H + L)" for a double-double value.
std::string toString(const Dd &X);

} // namespace igen

#endif // IGEN_INTERVAL_INTERVALIO_H
