//===- IntervalSimd.h - SSE-vectorized double intervals ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorized double-precision interval of Section IV-A: a full
/// interval (-lo, hi) fits exactly in one __m128d, so interval addition is
/// a single SIMD instruction and multiplication is four packed products,
/// three maxima and a few sign flips (after Goualard's SIMD interval
/// algorithms). This is the interval type behind the IGen-sv configuration
/// and the per-128-bit-lane building block of the m256di_k vector types.
///
/// Layout: lane 0 holds the negated lower endpoint, lane 1 the upper
/// endpoint. All operations require upward rounding (MXCSR), which
/// fesetround(FE_UPWARD) establishes on x86-64.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_INTERVALSIMD_H
#define IGEN_INTERVAL_INTERVALSIMD_H

#include "interval/Interval.h"

#include <immintrin.h>

namespace igen {

/// A double interval in one SSE register: [ -lo | hi ].
struct IntervalSse {
  __m128d V;

  IntervalSse() : V(_mm_setzero_pd()) {}
  explicit IntervalSse(__m128d V) : V(V) {}
  IntervalSse(double NegLo, double Hi) : V(_mm_set_pd(Hi, NegLo)) {}

  static IntervalSse fromEndpoints(double Lo, double Hi) {
    return IntervalSse(-Lo, Hi);
  }
  static IntervalSse fromPoint(double X) { return IntervalSse(-X, X); }
  static IntervalSse fromInterval(const Interval &I) {
    return IntervalSse(I.NegLo, I.Hi);
  }

  Interval toInterval() const {
    return Interval(_mm_cvtsd_f64(V),
                    _mm_cvtsd_f64(_mm_unpackhi_pd(V, V)));
  }

  double negLo() const { return _mm_cvtsd_f64(V); }
  double hi() const { return _mm_cvtsd_f64(_mm_unpackhi_pd(V, V)); }
  double lo() const { return -negLo(); }

  static IntervalSse entire() {
    return fromInterval(Interval::entire());
  }
  static IntervalSse nan() { return fromInterval(Interval::nan()); }
};

namespace detail {

/// [-0.0, 0.0]: XOR negates lane 0 (the neg-lo lane).
inline __m128d signLoMask() { return _mm_set_pd(0.0, -0.0); }
/// [0.0, -0.0]: XOR negates lane 1 (the hi lane).
inline __m128d signHiMask() { return _mm_set_pd(-0.0, 0.0); }

inline __m128d broadcastLo(__m128d X) {
  return _mm_shuffle_pd(X, X, 0); // [x0, x0]
}
inline __m128d broadcastHi(__m128d X) {
  return _mm_shuffle_pd(X, X, 3); // [x1, x1]
}
inline __m128d swapLanes(__m128d X) {
  return _mm_shuffle_pd(X, X, 1); // [x1, x0]
}

/// True if any lane of \p X is NaN.
inline bool anyNaN(__m128d X) {
  return _mm_movemask_pd(_mm_cmpunord_pd(X, X)) != 0;
}

} // namespace detail

/// X + Y: one SIMD addition.
inline IntervalSse iAdd(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  return IntervalSse(_mm_add_pd(X.V, Y.V));
}

/// -X: swap the two lanes.
inline IntervalSse iNeg(const IntervalSse &X) {
  return IntervalSse(detail::swapLanes(X.V));
}

/// X - Y == X + swap(Y).
inline IntervalSse iSub(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  return IntervalSse(_mm_add_pd(X.V, detail::swapLanes(Y.V)));
}

/// X * Y: the scalar candidate scheme evaluated two-per-vector:
///   R = max(xn*[-yn,yn], xh*[yn,-yn], yh*[xn,-xn], yh*[-xh,xh])
/// where lane 0 accumulates the negated-low candidates and lane 1 the
/// high candidates. A NaN anywhere (0*inf, NaN endpoints) falls back to
/// the careful scalar path, because _mm_max_pd does not propagate NaNs.
inline IntervalSse iMul(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  __m128d Xn = detail::broadcastLo(X.V); // [xn, xn]
  __m128d Xh = detail::broadcastHi(X.V); // [xh, xh]
  __m128d Yn = detail::broadcastLo(Y.V);
  __m128d Yh = detail::broadcastHi(Y.V);
  __m128d YnNegLo = _mm_xor_pd(Yn, detail::signLoMask()); // [-yn, yn]
  __m128d YnNegHi = detail::swapLanes(YnNegLo);           // [yn, -yn]
  __m128d XnNegHi = _mm_xor_pd(Xn, detail::signHiMask()); // [xn, -xn]
  __m128d XhNegLo = _mm_xor_pd(Xh, detail::signLoMask()); // [-xh, xh]
  __m128d V1 = _mm_mul_pd(Xn, YnNegLo);
  __m128d V2 = _mm_mul_pd(Xh, YnNegHi);
  __m128d V3 = _mm_mul_pd(Yh, XnNegHi);
  __m128d V4 = _mm_mul_pd(Yh, XhNegLo);
  __m128d Check =
      _mm_add_pd(_mm_add_pd(V1, V2), _mm_add_pd(V3, V4));
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return IntervalSse::fromInterval(
        iMul(X.toInterval(), Y.toInterval()));
  return IntervalSse(
      _mm_max_pd(_mm_max_pd(V1, V2), _mm_max_pd(V3, V4)));
}

/// X / Y: four packed quotients when 0 is outside Y; otherwise the scalar
/// case analysis.
inline IntervalSse iDiv(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  // 0 in Y <=> NegLo(Y) >= 0 && Hi(Y) >= 0 <=> no lane negative.
  int NegMask = _mm_movemask_pd(
      _mm_cmplt_pd(Y.V, _mm_setzero_pd()));
  if (__builtin_expect(NegMask == 0 || detail::anyNaN(Y.V), 0))
    return IntervalSse::fromInterval(
        iDiv(X.toInterval(), Y.toInterval()));
  __m128d Xn = detail::broadcastLo(X.V);
  __m128d Xh = detail::broadcastHi(X.V);
  __m128d Yn = detail::broadcastLo(Y.V);
  __m128d Yh = detail::broadcastHi(Y.V);
  // Candidates (cf. iDiv scalar):
  //  lane0 (neg-lo): (-xn)/yn, xn/yh, xh/yn, (-xh)/yh
  //  lane1 (hi):       xn/yn, (-xn)/yh, xh/(-yn), xh/yh
  __m128d XnNegLo = _mm_xor_pd(Xn, detail::signLoMask()); // [-xn, xn]
  __m128d XnNegHi = detail::swapLanes(XnNegLo);           // [xn, -xn]
  __m128d XhNegLo = _mm_xor_pd(Xh, detail::signLoMask()); // [-xh, xh]
  __m128d YnNegHi = _mm_xor_pd(Yn, detail::signHiMask()); // [yn, -yn]
  __m128d V1 = _mm_div_pd(XnNegLo, Yn);
  __m128d V2 = _mm_div_pd(XnNegHi, Yh);
  __m128d V3 = _mm_div_pd(Xh, YnNegHi);
  __m128d V4 = _mm_div_pd(XhNegLo, Yh);
  __m128d Check =
      _mm_add_pd(_mm_add_pd(V1, V2), _mm_add_pd(V3, V4));
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return IntervalSse::fromInterval(
        iDiv(X.toInterval(), Y.toInterval()));
  return IntervalSse(
      _mm_max_pd(_mm_max_pd(V1, V2), _mm_max_pd(V3, V4)));
}

//===----------------------------------------------------------------------===//
// Sign-specialized multiply/divide and fused multiply-add
//===----------------------------------------------------------------------===//
//
// SSE counterparts of the scalar iMulPP/... family (see Interval.h for the
// preconditions and the soundness discussion). With both operand signs
// proven, the four packed products and three maxima of the generic iMul
// collapse to a single packed multiply plus one or two sign-flip
// shuffles -- both extremal endpoint candidates sit in the right lanes of
// one product. Every variant keeps a NaN check with fallback to the
// generic operation, so a violated precondition costs speed, never
// soundness.

/// X * Y with lo(X) >= 0 and lo(Y) >= 0: R = X * [lo(Y), hi(Y)].
inline IntervalSse iMulPP(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(detail::nonNegOk(X.toInterval()) &&
         detail::nonNegOk(Y.toInterval()));
  // [xn, xh] * [-yn, yh] = [-(lo*lo), hi*hi]
  __m128d R = _mm_mul_pd(X.V, _mm_xor_pd(Y.V, detail::signLoMask()));
  if (__builtin_expect(detail::anyNaN(R), 0))
    return iMul(X, Y);
  return IntervalSse(R);
}

/// X * Y with lo(X) >= 0 and hi(Y) <= 0.
inline IntervalSse iMulPN(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(detail::nonNegOk(X.toInterval()) &&
         detail::nonPosOk(Y.toInterval()));
  // [xh, -xn] * [yn, yh] = [-(hi(X)*lo(Y)), lo(X)*hi(Y)]
  __m128d A = _mm_xor_pd(detail::swapLanes(X.V), detail::signHiMask());
  __m128d R = _mm_mul_pd(A, Y.V);
  if (__builtin_expect(detail::anyNaN(R), 0))
    return iMul(X, Y);
  return IntervalSse(R);
}

/// X * Y with hi(X) <= 0 and hi(Y) <= 0.
inline IntervalSse iMulNN(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(detail::nonPosOk(X.toInterval()) &&
         detail::nonPosOk(Y.toInterval()));
  // [-xh, xn] * [yh, yn] = [-(hi*hi), lo*lo]
  __m128d A = _mm_xor_pd(detail::swapLanes(X.V), detail::signLoMask());
  __m128d R = _mm_mul_pd(A, detail::swapLanes(Y.V));
  if (__builtin_expect(detail::anyNaN(R), 0))
    return iMul(X, Y);
  return IntervalSse(R);
}

/// X * Y with lo(X) >= 0, Y of unknown sign: two products and one max.
inline IntervalSse iMulPU(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(detail::nonNegOk(X.toInterval()));
  // [xn, -xn] * [-yn, yh] = [-(lo(X)*lo(Y)), lo(X)*hi(Y)]
  __m128d A1 = _mm_xor_pd(detail::broadcastLo(X.V), detail::signHiMask());
  __m128d B1 = _mm_xor_pd(Y.V, detail::signLoMask());
  __m128d V1 = _mm_mul_pd(A1, B1);
  // [xh, xh] * [yn, yh] = [-(hi(X)*lo(Y)), hi(X)*hi(Y)]
  __m128d V2 = _mm_mul_pd(detail::broadcastHi(X.V), Y.V);
  __m128d Check = _mm_add_pd(V1, V2);
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iMul(X, Y);
  return IntervalSse(_mm_max_pd(V1, V2));
}

/// X * Y with hi(X) <= 0, Y of unknown sign.
inline IntervalSse iMulNU(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(detail::nonPosOk(X.toInterval()));
  // [xn, xn] * [yh, yn] = [-(lo(X)*hi(Y)), lo(X)*lo(Y)]
  __m128d V1 =
      _mm_mul_pd(detail::broadcastLo(X.V), detail::swapLanes(Y.V));
  // [-xh, xh] * [yh, -yn] = [-(hi(X)*hi(Y)), hi(X)*lo(Y)]
  __m128d A2 = _mm_xor_pd(detail::broadcastHi(X.V), detail::signLoMask());
  __m128d B2 = _mm_xor_pd(detail::swapLanes(Y.V), detail::signHiMask());
  __m128d V2 = _mm_mul_pd(A2, B2);
  __m128d Check = _mm_add_pd(V1, V2);
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iMul(X, Y);
  return IntervalSse(_mm_max_pd(V1, V2));
}

/// X / Y with lo(Y) > 0: two packed divisions, no zero-containment test.
inline IntervalSse iDivP(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(!(Y.toInterval().lo() <= 0.0));
  // X / [lo(Y), lo(Y)] and X / [hi(Y), hi(Y)] cover all four candidates.
  __m128d Yl = _mm_xor_pd(detail::broadcastLo(Y.V), _mm_set1_pd(-0.0));
  __m128d V1 = _mm_div_pd(X.V, Yl);
  __m128d V2 = _mm_div_pd(X.V, detail::broadcastHi(Y.V));
  __m128d Check = _mm_add_pd(V1, V2);
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iDiv(X, Y);
  return IntervalSse(_mm_max_pd(V1, V2));
}

/// X / Y with hi(Y) < 0.
inline IntervalSse iDivN(const IntervalSse &X, const IntervalSse &Y) {
  assertRoundUpward();
  assert(!(Y.toInterval().hi() >= 0.0));
  // [xh, xn] / [-yh, -yh] = [-(hi(X)/hi(Y)), lo(X)/hi(Y)]
  __m128d A = detail::swapLanes(X.V);
  __m128d Yh = _mm_xor_pd(detail::broadcastHi(Y.V), _mm_set1_pd(-0.0));
  __m128d V1 = _mm_div_pd(A, Yh);
  // [xh, xn] / [yn, yn] = [-(hi(X)/lo(Y)), lo(X)/lo(Y)]
  __m128d V2 = _mm_div_pd(A, detail::broadcastLo(Y.V));
  __m128d Check = _mm_add_pd(V1, V2);
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iDiv(X, Y);
  return IntervalSse(_mm_max_pd(V1, V2));
}

/// Fused X*Y + C: the four candidate products of iMul each gain the
/// addend lanes [-lo(C), hi(C)] through one packed fma (single outward
/// rounding per candidate; subset of iAdd(iMul(X, Y), C)). Requires
/// hardware FMA, which honours MXCSR; without it the unfused composition
/// is used.
inline IntervalSse iFma(const IntervalSse &X, const IntervalSse &Y,
                        const IntervalSse &C) {
#if defined(__FMA__)
  assertRoundUpward();
  __m128d Xn = detail::broadcastLo(X.V);
  __m128d Xh = detail::broadcastHi(X.V);
  __m128d Yn = detail::broadcastLo(Y.V);
  __m128d Yh = detail::broadcastHi(Y.V);
  __m128d YnNegLo = _mm_xor_pd(Yn, detail::signLoMask());
  __m128d YnNegHi = detail::swapLanes(YnNegLo);
  __m128d XnNegHi = _mm_xor_pd(Xn, detail::signHiMask());
  __m128d XhNegLo = _mm_xor_pd(Xh, detail::signLoMask());
  __m128d V1 = _mm_fmadd_pd(Xn, YnNegLo, C.V);
  __m128d V2 = _mm_fmadd_pd(Xh, YnNegHi, C.V);
  __m128d V3 = _mm_fmadd_pd(Yh, XnNegHi, C.V);
  __m128d V4 = _mm_fmadd_pd(Yh, XhNegLo, C.V);
  __m128d Check = _mm_add_pd(_mm_add_pd(V1, V2), _mm_add_pd(V3, V4));
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalSse(_mm_max_pd(_mm_max_pd(V1, V2), _mm_max_pd(V3, V4)));
#else
  return iAdd(iMul(X, Y), C);
#endif
}

/// Fused X*Y + C with lo(X) >= 0 and lo(Y) >= 0: one packed fma.
inline IntervalSse iFmaPP(const IntervalSse &X, const IntervalSse &Y,
                          const IntervalSse &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonNegOk(X.toInterval()) &&
         detail::nonNegOk(Y.toInterval()));
  __m128d R =
      _mm_fmadd_pd(X.V, _mm_xor_pd(Y.V, detail::signLoMask()), C.V);
  if (__builtin_expect(detail::anyNaN(R), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalSse(R);
#else
  return iAdd(iMulPP(X, Y), C);
#endif
}

/// Fused X*Y + C with lo(X) >= 0 and hi(Y) <= 0.
inline IntervalSse iFmaPN(const IntervalSse &X, const IntervalSse &Y,
                          const IntervalSse &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonNegOk(X.toInterval()) &&
         detail::nonPosOk(Y.toInterval()));
  __m128d A = _mm_xor_pd(detail::swapLanes(X.V), detail::signHiMask());
  __m128d R = _mm_fmadd_pd(A, Y.V, C.V);
  if (__builtin_expect(detail::anyNaN(R), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalSse(R);
#else
  return iAdd(iMulPN(X, Y), C);
#endif
}

/// Fused X*Y + C with hi(X) <= 0 and hi(Y) <= 0.
inline IntervalSse iFmaNN(const IntervalSse &X, const IntervalSse &Y,
                          const IntervalSse &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonPosOk(X.toInterval()) &&
         detail::nonPosOk(Y.toInterval()));
  __m128d A = _mm_xor_pd(detail::swapLanes(X.V), detail::signLoMask());
  __m128d R = _mm_fmadd_pd(A, detail::swapLanes(Y.V), C.V);
  if (__builtin_expect(detail::anyNaN(R), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalSse(R);
#else
  return iAdd(iMulNN(X, Y), C);
#endif
}

/// Fused X*Y + C with lo(X) >= 0, Y of unknown sign.
inline IntervalSse iFmaPU(const IntervalSse &X, const IntervalSse &Y,
                          const IntervalSse &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonNegOk(X.toInterval()));
  __m128d A1 = _mm_xor_pd(detail::broadcastLo(X.V), detail::signHiMask());
  __m128d B1 = _mm_xor_pd(Y.V, detail::signLoMask());
  __m128d V1 = _mm_fmadd_pd(A1, B1, C.V);
  __m128d V2 = _mm_fmadd_pd(detail::broadcastHi(X.V), Y.V, C.V);
  __m128d Check = _mm_add_pd(V1, V2);
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalSse(_mm_max_pd(V1, V2));
#else
  return iAdd(iMulPU(X, Y), C);
#endif
}

/// Fused X*Y + C with hi(X) <= 0, Y of unknown sign.
inline IntervalSse iFmaNU(const IntervalSse &X, const IntervalSse &Y,
                          const IntervalSse &C) {
#if defined(__FMA__)
  assertRoundUpward();
  assert(detail::nonPosOk(X.toInterval()));
  __m128d V1 =
      _mm_fmadd_pd(detail::broadcastLo(X.V), detail::swapLanes(Y.V), C.V);
  __m128d A2 = _mm_xor_pd(detail::broadcastHi(X.V), detail::signLoMask());
  __m128d B2 = _mm_xor_pd(detail::swapLanes(Y.V), detail::signHiMask());
  __m128d V2 = _mm_fmadd_pd(A2, B2, C.V);
  __m128d Check = _mm_add_pd(V1, V2);
  if (__builtin_expect(detail::anyNaN(Check), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalSse(_mm_max_pd(V1, V2));
#else
  return iAdd(iMulNU(X, Y), C);
#endif
}

/// Remaining operations route through the scalar implementation (they are
/// rare in inner loops; sqrt dominates only in potrf where it is O(n) of
/// an O(n^3) computation).
inline IntervalSse iSqrt(const IntervalSse &X) {
  return IntervalSse::fromInterval(iSqrt(X.toInterval()));
}
inline IntervalSse iAbs(const IntervalSse &X) {
  return IntervalSse::fromInterval(iAbs(X.toInterval()));
}
inline IntervalSse iFloor(const IntervalSse &X) {
  return IntervalSse::fromInterval(iFloor(X.toInterval()));
}
inline IntervalSse iCeil(const IntervalSse &X) {
  return IntervalSse::fromInterval(iCeil(X.toInterval()));
}

inline TBool iCmpLT(const IntervalSse &X, const IntervalSse &Y) {
  return iCmpLT(X.toInterval(), Y.toInterval());
}
inline TBool iCmpLE(const IntervalSse &X, const IntervalSse &Y) {
  return iCmpLE(X.toInterval(), Y.toInterval());
}
inline TBool iCmpGT(const IntervalSse &X, const IntervalSse &Y) {
  return iCmpGT(X.toInterval(), Y.toInterval());
}
inline TBool iCmpGE(const IntervalSse &X, const IntervalSse &Y) {
  return iCmpGE(X.toInterval(), Y.toInterval());
}
inline TBool iCmpEQ(const IntervalSse &X, const IntervalSse &Y) {
  return iCmpEQ(X.toInterval(), Y.toInterval());
}
inline TBool iCmpNE(const IntervalSse &X, const IntervalSse &Y) {
  return iCmpNE(X.toInterval(), Y.toInterval());
}

inline IntervalSse iHull(const IntervalSse &X, const IntervalSse &Y) {
  if (detail::anyNaN(X.V) || detail::anyNaN(Y.V))
    return IntervalSse::nan();
  return IntervalSse(_mm_max_pd(X.V, Y.V));
}

inline IntervalSse operator+(const IntervalSse &X, const IntervalSse &Y) {
  return iAdd(X, Y);
}
inline IntervalSse operator-(const IntervalSse &X, const IntervalSse &Y) {
  return iSub(X, Y);
}
inline IntervalSse operator*(const IntervalSse &X, const IntervalSse &Y) {
  return iMul(X, Y);
}
inline IntervalSse operator/(const IntervalSse &X, const IntervalSse &Y) {
  return iDiv(X, Y);
}
inline IntervalSse operator-(const IntervalSse &X) { return iNeg(X); }

} // namespace igen

#endif // IGEN_INTERVAL_INTERVALSIMD_H
