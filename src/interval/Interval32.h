//===- Interval32.h - Scalar single-precision intervals ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-precision interval type f32i (Table I). IGen promotes float
/// computations to double intervals by default, so this type exists for
/// library completeness (casts, tests, users who want the narrow type);
/// only the core arithmetic is provided. Same (-lo, hi) representation and
/// upward-rounding contract as Interval.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_INTERVAL32_H
#define IGEN_INTERVAL_INTERVAL32_H

#include "interval/Interval.h"

namespace igen {

/// A single-precision interval stored as (-lo, hi).
struct Interval32 {
  float NegLo = 0.0f;
  float Hi = 0.0f;

  Interval32() = default;
  constexpr Interval32(float NegLo, float Hi) : NegLo(NegLo), Hi(Hi) {}

  float lo() const { return -NegLo; }
  float hi() const { return Hi; }

  static Interval32 fromEndpoints(float Lo, float Hi) {
    return Interval32(-Lo, Hi);
  }
  static Interval32 fromPoint(float X) { return Interval32(-X, X); }

  bool hasNaN() const { return std::isnan(NegLo) || std::isnan(Hi); }

  bool contains(float X) const {
    if (hasNaN())
      return true;
    return -NegLo <= X && X <= Hi;
  }

  /// Widening to a double interval is exact.
  Interval widen() const {
    return Interval(static_cast<double>(NegLo), static_cast<double>(Hi));
  }

  /// Narrowing conversion from a double interval: rounds each endpoint
  /// outward to float (requires upward rounding; float conversion honours
  /// the rounding mode).
  static Interval32 fromInterval(const Interval &X) {
    assertRoundUpward();
    return Interval32(static_cast<float>(X.NegLo),
                      static_cast<float>(X.Hi));
  }
};

inline Interval32 iAdd(const Interval32 &X, const Interval32 &Y) {
  assertRoundUpward();
  return Interval32(X.NegLo + Y.NegLo, X.Hi + Y.Hi);
}

inline Interval32 iNeg(const Interval32 &X) {
  return Interval32(X.Hi, X.NegLo);
}

inline Interval32 iSub(const Interval32 &X, const Interval32 &Y) {
  assertRoundUpward();
  return Interval32(X.NegLo + Y.Hi, X.Hi + Y.NegLo);
}

/// Multiplication/division/sqrt route through the double implementation:
/// exact widening, double-interval op, outward narrowing. This is sound
/// and, because every float pair is exactly representable in double, also
/// tight to within the final float rounding.
inline Interval32 iMul(const Interval32 &X, const Interval32 &Y) {
  return Interval32::fromInterval(iMul(X.widen(), Y.widen()));
}

inline Interval32 iDiv(const Interval32 &X, const Interval32 &Y) {
  return Interval32::fromInterval(iDiv(X.widen(), Y.widen()));
}

inline Interval32 iSqrt(const Interval32 &X) {
  return Interval32::fromInterval(iSqrt(X.widen()));
}

inline TBool iCmpLT(const Interval32 &X, const Interval32 &Y) {
  return iCmpLT(X.widen(), Y.widen());
}
inline TBool iCmpGT(const Interval32 &X, const Interval32 &Y) {
  return iCmpGT(X.widen(), Y.widen());
}

} // namespace igen

#endif // IGEN_INTERVAL_INTERVAL32_H
